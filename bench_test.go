// Benchmarks regenerating each of the paper's tables and figures (at
// reduced trace scale; use cmd/baexp for full-scale runs), plus
// micro-benchmarks of the substrates: the alignment algorithms, the
// predictors, the walker and the VM.
package balign_test

import (
	"io"
	"runtime"
	"testing"

	"balign"
	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/experiments"
	"balign/internal/icache"
	"balign/internal/ir"
	"balign/internal/kernel"
	"balign/internal/obs"
	"balign/internal/predict"
	"balign/internal/sim"
	"balign/internal/trace"
	"balign/internal/workload"
)

func benchCfg(programs ...string) experiments.Config {
	return experiments.Config{Scale: 0.1, Window: 10, Programs: programs}
}

// BenchmarkTable1CostModel prices a procedure layout under every
// architecture cost model (the Table 1 machinery).
func BenchmarkTable1CostModel(b *testing.B) {
	w, err := workload.ByName("doduc", workload.Config{Scale: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	pf, _, err := w.CollectProfile()
	if err != nil {
		b.Fatal(err)
	}
	models := []cost.Model{cost.FallthroughModel{}, cost.BTFNTModel{},
		cost.LikelyModel{}, cost.PHTModel{}, cost.BTBModel{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			_ = cost.ProgramCost(w.Prog, pf, m)
		}
	}
}

// BenchmarkTable2Attributes measures one program's Table 2 attributes.
func BenchmarkTable2Attributes(b *testing.B) {
	cfg := benchCfg("ora")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Static runs the static-architecture evaluation matrix.
func BenchmarkTable3Static(b *testing.B) {
	cfg := benchCfg("ora", "compress")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Dynamic runs the dynamic-architecture evaluation matrix.
func BenchmarkTable4Dynamic(b *testing.B) {
	cfg := benchCfg("ora", "compress")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Espresso reproduces the Figure 1 fragment analysis.
func BenchmarkFig1Espresso(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Alvinn reproduces the Figure 2 loop trick.
func BenchmarkFig2Alvinn(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3LoopBreak reproduces the Figure 3 loop-breaking comparison.
func BenchmarkFig3LoopBreak(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4ExecutionTime runs the pipeline-model timing comparison.
func BenchmarkFig4ExecutionTime(b *testing.B) {
	cfg := benchCfg("compress")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDesignChoices runs the §6.1 design-choice comparisons.
func BenchmarkAblationDesignChoices(b *testing.B) {
	cfg := benchCfg("ora")
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- experiment engine benchmarks ---

// suiteBenchOpts is the RunSuite configuration both engine benchmarks share:
// a multi-program grid large enough that sharding matters.
func suiteBenchOpts(parallelism int) balign.SuiteOptions {
	return balign.SuiteOptions{
		Scale: 0.1, Window: 10,
		Programs:    []string{"ora", "compress", "espresso", "db++", "doduc", "li"},
		Parallelism: parallelism,
	}
}

// BenchmarkSuiteSerial runs the evaluation grid on the serial oracle path
// (Parallelism = 1). Compare against BenchmarkSuiteParallel for the
// engine's wall-clock speedup; the outputs themselves are byte-identical.
func BenchmarkSuiteSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := balign.RunSuite(suiteBenchOpts(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteParallel runs the same grid sharded across 8 workers. On a
// single-core host this matches the serial time (the engine adds no real
// overhead); with cores available the speedup tracks min(8, cores) until
// per-program preparation becomes the critical path.
func BenchmarkSuiteParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := balign.RunSuite(suiteBenchOpts(8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteKernelRef runs the evaluation grid end-to-end on the
// reference simulators (-kernel=ref): the committed baseline the flat
// kernel is measured against in BENCH_kernel.json.
func BenchmarkSuiteKernelRef(b *testing.B) {
	opts := suiteBenchOpts(1)
	opts.Kernel = "ref"
	for i := 0; i < b.N; i++ {
		if _, err := balign.RunSuite(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteKernelFlat runs the same grid on the compiled flat kernel
// (-kernel=flat, the default). The output is byte-identical to
// BenchmarkSuiteKernelRef; only the simulation executor differs. End-to-end
// time includes trace generation, so the gap understates the kernel's own
// speedup — BenchmarkSimulateGrid* isolates that.
func BenchmarkSuiteKernelFlat(b *testing.B) {
	opts := suiteBenchOpts(1)
	opts.Kernel = "flat"
	for i := 0; i < b.N; i++ {
		if _, err := balign.RunSuite(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// simulateGridFixture records one multi-program trace set once, so the
// SimulateGrid benchmarks time pure simulation (the executor's run phase)
// with trace generation and alignment excluded.
func simulateGridFixture(b *testing.B) (units []struct {
	prog *ir.Program
	prof *balign.Profile
	rec  *sim.Recorded
}) {
	b.Helper()
	for _, name := range []string{"ora", "compress", "espresso", "db++", "doduc", "li"} {
		w, err := workload.ByName(name, workload.Config{Scale: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		pf, _, err := w.CollectProfile()
		if err != nil {
			b.Fatal(err)
		}
		rec, err := sim.Record(func(sink trace.Sink) (uint64, error) {
			return w.Run(w.Prog, pf, sink, nil)
		})
		if err != nil {
			b.Fatal(err)
		}
		units = append(units, struct {
			prog *ir.Program
			prof *balign.Profile
			rec  *sim.Recorded
		}{w.Prog, pf, rec})
	}
	return units
}

// benchSimulateGrid replays every recorded trace through every architecture
// on the given executor mode.
func benchSimulateGrid(b *testing.B, mode string) {
	units := simulateGridFixture(b)
	archs := predict.AllArchs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := sim.NewExecutor(mode, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, u := range units {
			for _, arch := range archs {
				if _, err := x.Simulate(arch, u.prog, u.prof, u.rec); err != nil {
					b.Fatal(err)
				}
			}
		}
		events = x.Stats().Events
	}
	b.ReportMetric(float64(events)/float64(len(units)*len(archs)), "events/cell")
}

// BenchmarkSimulateGridRef times the {program x architecture} simulation
// grid over pre-recorded traces on the reference simulators.
func BenchmarkSimulateGridRef(b *testing.B) { benchSimulateGrid(b, "ref") }

// BenchmarkSimulateGridFlat times the same grid on the compiled flat
// kernel. The ratio to BenchmarkSimulateGridRef is the kernel's simulation
// speedup.
func BenchmarkSimulateGridFlat(b *testing.B) { benchSimulateGrid(b, "flat") }

// BenchmarkSimulateGridFlatBatch times the same grid through the packed
// batch path (kernel.RunBatch over pre-packed int32 batches) — the
// representation every streamed cell consumes in production (-stream=on,
// the default). Per event this loads one int32 op instead of copying a
// 48-byte Event, so it is the executor's true steady-state ns/event.
func BenchmarkSimulateGridFlatBatch(b *testing.B) {
	units := simulateGridFixture(b)
	archs := predict.AllArchs()
	type packed struct {
		prog    *ir.Program
		prof    *balign.Profile
		lay     *trace.Layout
		batches []*trace.Batch
	}
	var ps []packed
	for _, u := range units {
		lay, err := trace.CompileLayout(u.prog)
		if err != nil {
			b.Fatal(err)
		}
		var batches []*trace.Batch
		cur := &trace.Batch{}
		for _, e := range u.rec.Events {
			if err := lay.Append(cur, e); err != nil {
				b.Fatal(err)
			}
			if cur.Len() >= trace.DefaultBatchCap {
				batches = append(batches, cur)
				cur = &trace.Batch{}
			}
		}
		if cur.Len() > 0 {
			batches = append(batches, cur)
		}
		ps = append(ps, packed{u.prog, u.prof, lay, batches})
	}
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events = 0
		for _, p := range ps {
			for _, arch := range archs {
				k, err := kernel.CompileArch(p.lay, p.prog, p.prof, arch, nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, batch := range p.batches {
					if err := k.RunBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
				events += k.Result().Events
			}
		}
	}
	b.ReportMetric(float64(events)/float64(len(ps)*len(archs)), "events/cell")
}

// --- streaming pipeline benchmarks ---

// walkerBenchFixture builds the walker-traced workload the generation
// benchmarks share and counts its events once, outside any timer.
func walkerBenchFixture(b *testing.B) (*workload.Workload, *trace.Layout, uint64) {
	b.Helper()
	w, err := workload.ByName("hydro2d", workload.Config{Scale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	lay, err := trace.CompileLayout(w.Prog)
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	if _, err := w.Run(w.Prog, nil, trace.SinkFunc(func(trace.Event) { events++ }), nil); err != nil {
		b.Fatal(err)
	}
	return w, lay, events
}

// BenchmarkWalkerGenerate measures push-style synthetic trace generation —
// the Walker driving a per-event sink, as the recorded path's generator
// does.
func BenchmarkWalkerGenerate(b *testing.B) {
	w, _, events := walkerBenchFixture(b)
	sink := trace.SinkFunc(func(trace.Event) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(w.Prog, nil, sink, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(uint64(b.N)*events), "ns/event")
}

// BenchmarkWalkerGenerateStream measures the same generation through the
// compiled streaming walker (trace.WalkSource): packed int32 batches pulled
// by Fill, no per-event interface dispatch. The ratio to
// BenchmarkWalkerGenerate is the compiled walker's generation speedup.
func BenchmarkWalkerGenerateStream(b *testing.B) {
	w, lay, events := walkerBenchFixture(b)
	var batch trace.Batch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := w.Stream(w.Prog, nil, lay, 0)
		if err != nil {
			b.Fatal(err)
		}
		for {
			ok, err := src.Fill(&batch)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		src.Close()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(uint64(b.N)*events), "ns/event")
}

// benchSuiteStream runs the end-to-end evaluation grid in the given stream
// mode, reporting the heap-allocation delta per op (runtime.ReadMemStats)
// and the run's peak live trace bytes (the streaming ring's high-water
// gauge, or the recorded cache's).
func benchSuiteStream(b *testing.B, mode string) {
	cfg := experiments.Config{
		Scale: 0.1, Window: 10,
		Programs:    []string{"ora", "compress", "espresso", "db++", "doduc", "li"},
		Parallelism: 1,
		Stream:      mode,
	}
	var peak int64
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	alloc0 := ms.TotalAlloc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := obs.New("bench")
		cfg.Obs = rec
		if _, err := experiments.Summaries(cfg, predict.AllArchs()); err != nil {
			b.Fatal(err)
		}
		g := rec.Report().Gauges
		if mode == "off" {
			peak = g["sim.cache.peak_live_bytes"]
		} else {
			peak = g["sim.stream.peak_live_bytes"]
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.TotalAlloc-alloc0)/float64(b.N), "allocbytes/op")
	b.ReportMetric(float64(peak), "peak_trace_bytes")
}

// BenchmarkSuiteStreamOff runs the evaluation grid through the recorded
// trace cache (-stream=off): each variant's whole trace is materialized and
// replayed once per architecture.
func BenchmarkSuiteStreamOff(b *testing.B) { benchSuiteStream(b, "off") }

// BenchmarkSuiteStreamOn runs the same grid through the streamed broadcast
// pipeline (-stream=on, the default): each variant's stream is generated
// once into a bounded buffer ring and fanned out to all architectures. The
// output is byte-identical to BenchmarkSuiteStreamOff; compare ns/op for
// the end-to-end speedup and peak_trace_bytes for the memory bound.
func BenchmarkSuiteStreamOn(b *testing.B) { benchSuiteStream(b, "on") }

// BenchmarkSuiteStreamOnWorkers runs the streamed grid under GOMAXPROCS=4
// with a 16-worker budget: the engine splits it between variant-level
// parallelism and intra-variant stream shards (consumers that forward
// unowned batches and merge their tallies). The output stays byte-identical
// to every other leg — the GOMAXPROCS determinism oracle in
// internal/experiments enforces it — so this row measures overlap only.
// On a single-core host it matches BenchmarkSuiteStreamOn to within noise;
// with cores available the generation/simulation overlap and the shard
// fan-out cut wall clock until the producer is the critical path.
func BenchmarkSuiteStreamOnWorkers(b *testing.B) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	cfg := experiments.Config{
		Scale: 0.1, Window: 10,
		Programs: []string{"ora", "compress", "espresso", "db++", "doduc", "li"},
		Workers:  16,
		Stream:   "on",
	}
	var peak, stalls int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := obs.New("bench")
		cfg.Obs = rec
		if _, err := experiments.Summaries(cfg, predict.AllArchs()); err != nil {
			b.Fatal(err)
		}
		rep := rec.Report()
		peak = rep.Gauges["sim.stream.peak_live_bytes"]
		stalls = rep.Counters["sim.stream.stalls_ns"]
	}
	b.ReportMetric(float64(peak), "peak_trace_bytes")
	b.ReportMetric(float64(stalls)/float64(b.N), "stall_ns/op")
}

// --- substrate micro-benchmarks ---

func alignBenchFixture(b *testing.B) (*ir.Program, *balign.Profile) {
	b.Helper()
	w, err := workload.ByName("gcc", workload.Config{Scale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	pf, _, err := w.CollectProfile()
	if err != nil {
		b.Fatal(err)
	}
	return w.Prog, pf
}

// BenchmarkAlignGreedy measures Pettis-Hansen alignment of a gcc-sized
// program.
func BenchmarkAlignGreedy(b *testing.B) {
	prog, pf := alignBenchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AlignProgram(prog, pf, core.Options{Algorithm: core.AlgoGreedy}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlignCost measures the Cost algorithm.
func BenchmarkAlignCost(b *testing.B) {
	prog, pf := alignBenchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AlignProgram(prog, pf, core.Options{
			Algorithm: core.AlgoCost, Model: cost.FallthroughModel{},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlignTryN measures the TryN algorithm at the paper's window.
func BenchmarkAlignTryN(b *testing.B) {
	prog, pf := alignBenchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AlignProgram(prog, pf, core.Options{
			Algorithm: core.AlgoTryN, Model: cost.FallthroughModel{}, Window: 15,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalker measures synthetic trace generation throughput
// (instructions walked per op).
func BenchmarkWalker(b *testing.B) {
	w, err := workload.ByName("hydro2d", workload.Config{Scale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(w.Prog, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMExecution measures interpreter throughput on a real kernel.
func BenchmarkVMExecution(b *testing.B) {
	w, err := workload.ByName("tomcatv", workload.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(w.Prog, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGshare measures correlation-PHT event throughput.
func BenchmarkGshare(b *testing.B) {
	sim := predict.NewStaticSim(predict.NewGsharePHT(4096))
	ev := trace.Event{Kind: ir.CondBr, Taken: true, PC: 0x1040, Target: 0x1000, Fall: 0x1044}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Taken = i&3 != 0
		sim.Event(ev)
	}
}

// BenchmarkBTB measures BTB event throughput.
func BenchmarkBTB(b *testing.B) {
	sim := predict.NewBTBSim(256, 4)
	ev := trace.Event{Kind: ir.CondBr, Taken: true, PC: 0x1040, Target: 0x1000, Fall: 0x1044}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.PC = 0x1000 + uint64(i&1023)*4
		sim.Event(ev)
	}
}

// --- extension benchmarks ---

// BenchmarkExtUnrollStudy measures the loop-unrolling study (paper's ALVINN
// suggestion).
func BenchmarkExtUnrollStudy(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.UnrollStudy([]string{"alvinn"}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtPenaltySweep measures the wide-issue penalty sweep.
func BenchmarkExtPenaltySweep(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PenaltySweep("compress", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtCrossTraining measures the profile cross-training study.
func BenchmarkExtCrossTraining(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CrossTraining([]string{"compress"}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnrollLoops measures the unrolling transformation itself.
func BenchmarkUnrollLoops(b *testing.B) {
	w, err := workload.ByName("alvinn", workload.Config{})
	if err != nil {
		b.Fatal(err)
	}
	pf, _, err := w.CollectProfile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := core.UnrollLoops(w.Prog, pf, core.DefaultUnrollOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReorderProcs measures hottest-first procedure reordering.
func BenchmarkReorderProcs(b *testing.B) {
	prog, pf := alignBenchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReorderProcs(prog, pf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalPHT measures the PAg extension predictor's throughput.
func BenchmarkLocalPHT(b *testing.B) {
	sim := predict.NewStaticSim(predict.NewLocalPHT(1024, 4096))
	ev := trace.Event{Kind: ir.CondBr, Taken: true, PC: 0x1040, Target: 0x1000, Fall: 0x1044}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Taken = i&3 != 0
		sim.Event(ev)
	}
}

// BenchmarkTraceFileWrite measures event serialization throughput.
func BenchmarkTraceFileWrite(b *testing.B) {
	fw := trace.NewFileWriter(io.Discard)
	ev := trace.Event{Kind: ir.CondBr, Taken: true, PC: 0x1040, Target: 0x1000, Fall: 0x1044}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.PC += 8
		fw.Event(ev)
	}
	if err := fw.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkICacheSim measures the I-cache simulator's event throughput.
func BenchmarkICacheSim(b *testing.B) {
	sim := icache.New(icache.DefaultConfig())
	ev := trace.Event{Kind: ir.Br, Taken: true, PC: 0x1000, Target: 0x1200, Fall: 0x1004}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.PC = 0x1000 + uint64(i&255)*4
		ev.Target = ev.PC ^ 0x700
		sim.Event(ev)
	}
}

// BenchmarkExtICacheStudy measures the I-cache locality study.
func BenchmarkExtICacheStudy(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ICacheStudy([]string{"espresso"}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtHintStudy measures the LIKELY hint-source comparison.
func BenchmarkExtHintStudy(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HintStudy([]string{"espresso"}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtSeedSweep measures the seed-robustness sweep.
func BenchmarkExtSeedSweep(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SeedSweep([]string{"ora"}, 3, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
