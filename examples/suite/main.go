// Suite: a miniature run of the paper's evaluation over a few benchmark
// programs, printing Table 3-style relative CPI rows and a Figure 4-style
// execution-time comparison on the dual-issue pipeline model. This example
// drives the evaluation harness directly (the suite workloads live inside
// the module); downstream users align their own programs via the balign
// package as shown in examples/quickstart.
package main

import (
	"flag"
	"fmt"
	"log"

	"balign/internal/experiments"
	"balign/internal/predict"
)

func main() {
	scale := flag.Float64("scale", 0.2, "trace budget scale")
	flag.Parse()

	cfg := experiments.Config{
		Scale:    *scale,
		Window:   10,
		Programs: []string{"compress", "espresso", "ora", "db++"},
	}

	fmt.Println("Static architectures (relative CPI; lower is better):")
	results, err := experiments.Table3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatCPITable(results, predict.StaticArchs(), true))

	fmt.Println()
	fmt.Println("Execution time on the dual-issue Alpha-like pipeline (original = 1.0):")
	rows, err := experiments.Figure4(experiments.Config{
		Scale: *scale, Window: 10, Programs: []string{"compress", "espresso"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatFigure4(rows))
}
