// The ALVINN story (paper Figure 2): a neural-net inner loop that is a
// single 11-instruction basic block branching to itself. On a FALLTHROUGH
// architecture the loop's taken back-branch is mispredicted every iteration
// (5 cycles); the Cost/Try15 algorithms invert the conditional and insert a
// jump, cutting it to 3 cycles per iteration.
package main

import (
	"fmt"
	"log"

	"balign"
)

const src = `
mem 8192
proc main
    li r20, 10
pass:
    call input_hidden
    addi r20, r20, -1
    bnez r20, pass
    halt
endproc

; hidden-layer accumulation: the paper's 11-instruction single-block loop
proc input_hidden
    li r1, 0
    li r11, 960
iloop:
    ld r5, 0(r1)
    add r6, r4, r1
    andi r6, r6, 4095
    ld r7, 0(r6)
    mul r8, r5, r7
    add r3, r3, r8
    mov r12, r3
    add r13, r12, r5
    xor r13, r13, r7
    addi r1, r1, 1
    blt r1, r11, iloop
    ret
endproc
`

func main() {
	prog, err := balign.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	setup := func(v *balign.VM) {
		words := make([]int64, 4096)
		for i := range words {
			words[i] = int64(i%97 - 48)
		}
		v.SetMem(0, words)
	}

	prof, origInstrs, err := balign.ProfileVM(prog, setup)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("architecture   algorithm   relative CPI   fall-through%")
	for _, arch := range []balign.ArchID{balign.ArchFallthrough, balign.ArchBTFNT} {
		before, _, err := balign.SimulateVM(arch, prog, prof, setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-11s %12.3f %14.0f\n", arch, "orig",
			balign.RelativeCPI(origInstrs, origInstrs, balign.BEP(before)),
			balign.FallthroughPct(before))

		model, err := balign.ModelFor(arch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := balign.Align(prog, prof, balign.Options{
			Algorithm: balign.AlgoCost, Model: model,
		})
		if err != nil {
			log.Fatal(err)
		}
		after, instrs, err := balign.SimulateVM(arch, res.Prog, res.Prof, setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-11s %12.3f %14.0f   (%d jumps inserted, %d branches inverted)\n",
			arch, "cost",
			balign.RelativeCPI(origInstrs, instrs, balign.BEP(after)),
			balign.FallthroughPct(after),
			res.Stats.JumpsInserted, res.Stats.BranchesInverted)
	}
	fmt.Println()
	fmt.Println("Under FALLTHROUGH the loop trick fires (jump inserted, branch inverted);")
	fmt.Println("under BT/FNT the backward loop branch is already predicted, so it does not.")
}
