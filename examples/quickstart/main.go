// Quickstart: assemble a small program, profile it, align it with the
// paper's Try15 algorithm, and compare branch costs before and after on a
// static prediction architecture.
package main

import (
	"fmt"
	"log"

	"balign"
)

// A branchy program: a loop that classifies numbers by residue mod 3. The
// compiler-style layout puts the common case behind a taken branch, which
// is exactly what branch alignment fixes.
const src = `
mem 64
proc main
    li r1, 3000        ; n iterations
    li r2, 0           ; counter of multiples of 3
loop:
    li r3, 3
    mod r4, r1, r3
    bnez r4, notmult   ; most numbers are NOT multiples of 3 (hot taken edge)
    addi r2, r2, 1     ; rare path laid out as the fall-through
    br next
notmult:
    addi r5, r5, 1
next:
    addi r1, r1, -1
    bnez r1, loop
    st r2, 0(r0)
    halt
endproc
`

func main() {
	prog, err := balign.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Profile: run the program once, recording every edge traversal.
	prof, origInstrs, err := balign.ProfileVM(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d instructions, %d edge traversals\n",
		origInstrs, prof.TotalEdgeWeight())

	// 2. Align with Try15 under the FALLTHROUGH cost model.
	res, err := balign.Align(prog, prof, balign.Options{
		Algorithm: balign.AlgoTryN,
		Model:     balign.ModelFallthrough,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewriter: %d jumps inserted, %d removed, %d branches inverted\n",
		res.Stats.JumpsInserted, res.Stats.JumpsRemoved, res.Stats.BranchesInverted)

	// 3. Simulate both layouts on the FALLTHROUGH architecture.
	before, _, err := balign.SimulateVM(balign.ArchFallthrough, prog, prof, nil)
	if err != nil {
		log.Fatal(err)
	}
	after, alignedInstrs, err := balign.SimulateVM(balign.ArchFallthrough, res.Prog, res.Prof, nil)
	if err != nil {
		log.Fatal(err)
	}

	cpiBefore := balign.RelativeCPI(origInstrs, origInstrs, balign.BEP(before))
	cpiAfter := balign.RelativeCPI(origInstrs, alignedInstrs, balign.BEP(after))
	fmt.Printf("fall-through conditionals: %.0f%% -> %.0f%%\n",
		balign.FallthroughPct(before), balign.FallthroughPct(after))
	fmt.Printf("relative CPI: %.3f -> %.3f (%.1f%% faster)\n",
		cpiBefore, cpiAfter, 100*(1-cpiAfter/cpiBefore))
}
