// The ESPRESSO story (paper Figure 1): irregular, data-dependent
// conditionals in bit-set manipulation code, where the compiler's layout
// leaves hot paths behind taken branches. This example compares the three
// alignment algorithms (Greedy, Cost, Try15) across the static
// architectures — the algorithm ladder of the paper's Section 4.
package main

import (
	"fmt"
	"log"

	"balign"
)

// A cover-style kernel over two bit sets: the branch pattern depends
// entirely on the data (sparse intersections make the skip path hot).
const src = `
mem 4096
proc main
    li r20, 40
rep:
    call cover
    addi r20, r20, -1
    bnez r20, rep
    halt
endproc

proc cover
    li r1, 0
    li r10, 512
    li r15, 0
wloop:
    ld r2, 0(r1)
    addi r3, r1, 512
    ld r3, 0(r3)
    and r4, r2, r3
    beqz r4, skip      ; hot taken edge with sparse sets
    or r5, r2, r3
    addi r6, r1, 1024
    st r5, 0(r6)
    addi r15, r15, 1
skip:
    addi r1, r1, 1
    blt r1, r10, wloop
    st r15, 2048(r0)
    ret
endproc
`

func main() {
	prog, err := balign.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	setup := func(v *balign.VM) {
		words := make([]int64, 1024)
		x := int64(4242)
		for i := range words {
			x = x*6364136223846793005 + 1442695040888963407
			if (x>>40)%4 != 0 {
				words[i] = 0 // sparse: ~3/4 empty intersections
			} else {
				words[i] = (x >> 13) & 0xffff
			}
		}
		v.SetMem(0, words)
	}

	prof, origInstrs, err := balign.ProfileVM(prog, setup)
	if err != nil {
		log.Fatal(err)
	}

	archs := []balign.ArchID{balign.ArchFallthrough, balign.ArchBTFNT, balign.ArchLikely}
	fmt.Printf("%-12s", "algorithm")
	for _, a := range archs {
		fmt.Printf(" %12s", a)
	}
	fmt.Println()

	printRow := func(name string, progV *balign.Program, profV *balign.Profile) {
		fmt.Printf("%-12s", name)
		for _, arch := range archs {
			r, instrs, err := balign.SimulateVM(arch, progV, profV, setup)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.3f", balign.RelativeCPI(origInstrs, instrs, balign.BEP(r)))
		}
		fmt.Println()
	}

	printRow("orig", prog, prof)

	greedy, err := balign.Align(prog, prof, balign.Options{Algorithm: balign.AlgoGreedy})
	if err != nil {
		log.Fatal(err)
	}
	printRow("greedy", greedy.Prog, greedy.Prof)

	for _, arch := range archs {
		model, err := balign.ModelFor(arch)
		if err != nil {
			log.Fatal(err)
		}
		costRes, err := balign.Align(prog, prof, balign.Options{Algorithm: balign.AlgoCost, Model: model})
		if err != nil {
			log.Fatal(err)
		}
		tryRes, err := balign.Align(prog, prof, balign.Options{Algorithm: balign.AlgoTryN, Model: model})
		if err != nil {
			log.Fatal(err)
		}
		rc, ic, err := balign.SimulateVM(arch, costRes.Prog, costRes.Prof, setup)
		if err != nil {
			log.Fatal(err)
		}
		rt, it, err := balign.SimulateVM(arch, tryRes.Prog, tryRes.Prof, setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cost/try15 aligned for %-12s  cost: %.3f   try15: %.3f\n",
			arch,
			balign.RelativeCPI(origInstrs, ic, balign.BEP(rc)),
			balign.RelativeCPI(origInstrs, it, balign.BEP(rt)))
	}
}
