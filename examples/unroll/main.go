// Unroll: composing the paper's optional loop transformation with branch
// alignment. A matrix-vector kernel whose single-block inner loop dominates
// (the ALVINN shape) is measured under the FALLTHROUGH architecture in
// three configurations: original, aligned, and unrolled-then-aligned.
package main

import (
	"fmt"
	"log"

	"balign"
)

const src = `
mem 8192
proc main
    li r20, 12
pass:
    call mv
    addi r20, r20, -1
    bnez r20, pass
    halt
endproc

; y = A*x for a 48x48 matrix: the inner loop is a single basic block
proc mv
    li r1, 0           ; row
    li r10, 48
row:
    li r2, 0           ; col
    li r3, 0           ; acc
    muli r4, r1, 48
col:
    add r5, r4, r2
    ld r6, 0(r5)       ; A[row][col]
    addi r7, r2, 4096
    ld r7, 0(r7)       ; x[col]
    mul r8, r6, r7
    add r3, r3, r8
    addi r2, r2, 1
    blt r2, r10, col
    addi r9, r1, 4200
    st r3, 0(r9)
    addi r1, r1, 1
    blt r1, r10, row
    ret
endproc
`

func main() {
	prog, err := balign.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	setup := func(v *balign.VM) {
		words := make([]int64, 4200)
		for i := range words {
			words[i] = int64(i%23 - 11)
		}
		v.SetMem(0, words)
	}
	prof, origInstrs, err := balign.ProfileVM(prog, setup)
	if err != nil {
		log.Fatal(err)
	}

	report := func(label string, p *balign.Program, pf *balign.Profile) {
		r, instrs, err := balign.SimulateVM(balign.ArchFallthrough, p, pf, setup)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s relative CPI %.3f   fall-through %.0f%%   (%d instructions)\n",
			label, balign.RelativeCPI(origInstrs, instrs, balign.BEP(r)),
			balign.FallthroughPct(r), instrs)
	}

	report("original", prog, prof)

	aligned, err := balign.Align(prog, prof, balign.Options{
		Algorithm: balign.AlgoTryN, Model: balign.ModelFallthrough,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("aligned", aligned.Prog, aligned.Prof)

	up, uprof, stats, err := balign.Unroll(prog, prof, balign.DefaultUnrollOptions())
	if err != nil {
		log.Fatal(err)
	}
	ualigned, err := balign.Align(up, uprof, balign.Options{
		Algorithm: balign.AlgoTryN, Model: balign.ModelFallthrough,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("unroll+aligned", ualigned.Prog, ualigned.Prof)
	fmt.Printf("\nunrolled %d loop(s), %d block copies added\n", stats.LoopsUnrolled, stats.BlocksAdded)
}
