package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	names := strings.Fields(out.String())
	if len(names) != 24 {
		t.Errorf("listed %d names, want 24", len(names))
	}
}

func TestRunBench(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-bench", "ora", "-scale", "0.02"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ora") || !strings.Contains(out.String(), "%Taken") {
		t.Errorf("output malformed:\n%s", out.String())
	}
}

func TestRunBenchWithReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-bench", "ora", "-scale", "0.02", "-report", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ora") {
		t.Errorf("table output malformed:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Tool     string                     `json:"tool"`
		Counters map[string]int64           `json:"counters"`
		Sections map[string]json.RawMessage `json:"sections"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Tool != "bastat" || rep.Counters["sim.tasks"] == 0 {
		t.Errorf("report malformed: tool=%q counters=%v", rep.Tool, rep.Counters)
	}
	if _, ok := rep.Sections["table2"]; !ok {
		t.Errorf("report missing table2 section: %s", data)
	}
}

func TestRunNoModeIsError(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf, &buf); err == nil {
		t.Error("run with no mode should error")
	}
	if err := run([]string{"-bench", "nope"}, &buf, &buf); err == nil {
		t.Error("unknown benchmark should error")
	}
}
