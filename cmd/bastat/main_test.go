package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	names := strings.Fields(out.String())
	if len(names) != 24 {
		t.Errorf("listed %d names, want 24", len(names))
	}
}

func TestRunBench(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-bench", "ora", "-scale", "0.02"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ora") || !strings.Contains(out.String(), "%Taken") {
		t.Errorf("output malformed:\n%s", out.String())
	}
}

func TestRunNoModeIsError(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf, &buf); err == nil {
		t.Error("run with no mode should error")
	}
	if err := run([]string{"-bench", "nope"}, &buf, &buf); err == nil {
		t.Error("unknown benchmark should error")
	}
}
