package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// cfgFixture is the committed real-shaped CFG document (a simplified
// pprof-derived Go runtime scan loop) shared by the cmd-level golden tests.
const cfgFixture = "../../testdata/cfg/go_scanobject.dot"

// checkGolden compares got to testdata/golden/<name>, rewriting under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden (run with -update after intended changes)\n got: %s\nwant: %s",
			name, got, want)
	}
}

// TestGoldenCFGTable pins the exact Table 2 row bastat derives from the
// committed CFG fixture: the imported program's native trace model is
// deterministic, so the measured attributes are stable bytes.
func TestGoldenCFGTable(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-cfg", cfgFixture}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cfg_table2.txt", out.Bytes())
}

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-list"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	names := strings.Fields(out.String())
	if len(names) != 24 {
		t.Errorf("listed %d names, want 24", len(names))
	}
}

func TestRunBench(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-bench", "ora", "-scale", "0.02"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ora") || !strings.Contains(out.String(), "%Taken") {
		t.Errorf("output malformed:\n%s", out.String())
	}
}

func TestRunBenchWithReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-bench", "ora", "-scale", "0.02", "-report", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ora") {
		t.Errorf("table output malformed:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Tool     string                     `json:"tool"`
		Counters map[string]int64           `json:"counters"`
		Sections map[string]json.RawMessage `json:"sections"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Tool != "bastat" || rep.Counters["sim.tasks"] == 0 {
		t.Errorf("report malformed: tool=%q counters=%v", rep.Tool, rep.Counters)
	}
	if _, ok := rep.Sections["table2"]; !ok {
		t.Errorf("report missing table2 section: %s", data)
	}
}

func TestRunNoModeIsError(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf, &buf); err == nil {
		t.Error("run with no mode should error")
	}
	if err := run([]string{"-bench", "nope"}, &buf, &buf); err == nil {
		t.Error("unknown benchmark should error")
	}
}
