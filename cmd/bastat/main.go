// Command bastat reports Table 2-style attributes for suite benchmarks:
// instructions traced, break density, branch-site quantiles, taken rate
// and the break-kind mix.
//
// Usage:
//
//	bastat -list
//	bastat -bench gcc [-scale 1.0] [-seed 0]
//	bastat -cfg prog.cfg.json
//	bastat -all [-scale 1.0] [-seed 0]
//
// With -report f the run additionally writes a JSON run report (timing
// spans, engine stats, counters, the measured attribute rows) to f; with
// -pprof addr it serves net/http/pprof and expvar on addr while the
// measurement runs. -kernel flat|ref selects the compiled flat simulation
// kernel (default) or the reference simulators; -stream on|off selects the
// streamed-broadcast trace lifecycle (default) or record-then-replay;
// -workers/-shards budget the worker goroutines across variant-level
// parallelism and intra-variant stream shards. None of these flags change
// any measured output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"balign/internal/experiments"
	"balign/internal/obs"
	"balign/internal/sim"
	"balign/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bastat:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bastat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list suite benchmark names")
	bench := fs.String("bench", "", "single benchmark to measure (suite or extended name)")
	all := fs.Bool("all", false, "measure the full suite (paper Table 2)")
	cfgPath := fs.String("cfg", "", "measure an imported CFG document (JSON or DOT) instead of a suite benchmark")
	scale := fs.Float64("scale", 1.0, "trace budget scale")
	seed := fs.Int64("seed", 0, "workload seed")
	parallel := fs.Int("parallel", 0, "concurrent measurement shards (0 = GOMAXPROCS, 1 = serial)")
	workers := fs.Int("workers", 0, "total worker budget split across variants and stream shards (0 = unbudgeted)")
	shards := fs.Int("shards", 0, "intra-variant stream shards per architecture (0 = derive from -workers, 1 = unsharded)")
	kernelMode := fs.String("kernel", "flat", "simulation executor: flat (compiled kernel) or ref (reference simulators)")
	streamMode := fs.String("stream", "on", "trace lifecycle: on (streamed broadcast) or off (record then replay)")
	report := fs.String("report", "", "write a JSON run report to this file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range workload.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}
	if _, err := sim.ParseKernelMode(*kernelMode); err != nil {
		return err
	}
	if _, err := sim.ParseStreamMode(*streamMode); err != nil {
		return err
	}
	cfg := experiments.Config{
		Scale: *scale, Seed: *seed,
		Parallelism: *parallel, Workers: *workers, Shards: *shards,
		Kernel: *kernelMode, Stream: *streamMode,
	}
	switch {
	case *bench != "":
		cfg.Programs = []string{*bench}
		if *cfgPath != "" {
			cfg.CFG = []string{*cfgPath}
		}
	case *cfgPath != "":
		cfg.CFG = []string{*cfgPath}
	case *all:
	default:
		return fmt.Errorf("one of -list, -bench, -cfg or -all is required")
	}
	if *report != "" || *pprofAddr != "" {
		cfg.Obs = obs.New("bastat")
	}
	if *pprofAddr != "" {
		cfg.Obs.Publish("bastat")
		go func() {
			if err := obs.ListenAndServeDebug(*pprofAddr); err != nil {
				fmt.Fprintln(stderr, "bastat: pprof server:", err)
			}
		}()
	}
	rows, err := experiments.Table2(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, experiments.FormatTable2(rows))
	if *report != "" {
		cfg.Obs.Attach("table2", rows)
		f, err := os.Create(*report)
		if err != nil {
			return fmt.Errorf("writing run report: %w", err)
		}
		if err := cfg.Obs.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("writing run report: %w", err)
		}
		return f.Close()
	}
	return nil
}
