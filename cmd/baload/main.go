// Command baload is the closed-loop load generator for balignd and the
// balignd shard router. It drives a piecewise-constant RPS schedule over a
// seeded deterministic request corpus covering every request encoding the
// daemon accepts, records log-bucketed latency histograms, and emits a
// stable JSON report (the document BENCH_serve.json embeds).
//
// Modes:
//
//	real     wall clock + HTTP against -base (the benchmarking mode)
//	virtual  virtual clocks + a seeded fake transport: the whole report is
//	         a pure function of -seed, pinned byte-identical by tests
//	model    discrete-event shard-scaling model over the real router ring;
//	         emits modeled 1→2→4… shard rows instead of a load report
//
// Usage:
//
//	baload [-mode real] [-base http://127.0.0.1:8421]
//	       [-schedule constant|ramp|sweep|burst] [-rps 50] [-rps-max 0]
//	       [-rps-step 0] [-slot 2s] [-duration 10s] [-workers 16]
//	       [-mix align-asm=40,simulate-suite=10,...] [-corpus 32] [-seed 1]
//	       [-timeout 30s] [-report -] [-shards 1,2,4]
//	       [-min-rps 0] [-max-unexpected -1]
//
// Exit status is nonzero if the run fails, if achieved RPS falls below
// -min-rps, or if unexpected errors (non-200 excluding 429/503/504
// backpressure) exceed -max-unexpected — the gates CI's load smoke uses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"balign/internal/load"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "baload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("baload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "real", "real | virtual | model")
	base := fs.String("base", "http://127.0.0.1:8421", "target base URL (real mode)")
	schedule := fs.String("schedule", "constant", "constant | ramp | sweep | burst")
	rps := fs.Float64("rps", 50, "base request rate")
	rpsMax := fs.Float64("rps-max", 0, "peak rate for ramp/sweep/burst (0 = kind default)")
	rpsStep := fs.Float64("rps-step", 0, "sweep step (0 = -rps)")
	slot := fs.Duration("slot", 2*time.Second, "slot length for ramp/sweep/burst")
	duration := fs.Duration("duration", 10*time.Second, "total schedule length (constant/ramp/burst)")
	workers := fs.Int("workers", 16, "closed-loop worker count")
	mixSpec := fs.String("mix", "", "request mix as kind=weight,... (default: realistic align-heavy mix)")
	corpusSize := fs.Int("corpus", 32, "distinct requests in the corpus")
	seed := fs.Int64("seed", 1, "corpus + plan seed")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline (real mode)")
	report := fs.String("report", "-", "report path (- = stdout)")
	shardsSpec := fs.String("shards", "1,2,4", "shard counts for model mode")
	errEvery := fs.Int("err-every", 0, "virtual mode: inject one 429 per N requests (0 = off)")
	minRPS := fs.Float64("min-rps", 0, "fail if achieved RPS is below this")
	maxUnexpected := fs.Int64("max-unexpected", -1, "fail if unexpected errors exceed this (-1 = no gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mix, err := load.ParseMix(*mixSpec)
	if err != nil {
		return err
	}
	sched, err := load.ParseSchedule(*schedule, *rps, *rpsMax, *rpsStep, *slot, *duration)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "baload: building corpus (%d entries, seed %d)\n", *corpusSize, *seed)
	corpus, err := load.BuildCorpus(*seed, *corpusSize, mix)
	if err != nil {
		return err
	}

	var out []byte
	var rep *load.Report
	switch *mode {
	case "model":
		counts, err := parseShards(*shardsSpec)
		if err != nil {
			return err
		}
		results, err := load.ModelScaling(corpus, sched, counts)
		if err != nil {
			return err
		}
		doc := struct {
			Mode   string              `json:"mode"`
			Seed   int64               `json:"seed"`
			Shards []*load.ModelResult `json:"shards"`
			Caveat string              `json:"caveat"`
		}{
			Mode:   "model",
			Seed:   *seed,
			Shards: results,
			Caveat: "discrete-event queueing model over the real router ring; not a measurement",
		}
		out, err = marshalIndent(doc)
		if err != nil {
			return err
		}
	case "real", "virtual":
		cfg := load.RunConfig{
			Schedule: sched,
			Corpus:   corpus,
			Workers:  *workers,
			Seed:     *seed,
		}
		if *mode == "virtual" {
			cfg.Virtual = true
			cfg.Clocks = load.NewVirtualClocks()
			cfg.Doer = &load.FakeDoer{Seed: *seed, ErrEvery: *errEvery}
		} else {
			cfg.Clocks = load.NewWallClocks()
			cfg.Doer = load.NewHTTPDoer(strings.TrimRight(*base, "/"), *timeout)
		}
		fmt.Fprintf(stderr, "baload: %s run, %s schedule, %.0fs, %d workers\n",
			*mode, *schedule, sched.Duration().Seconds(), *workers)
		rep, err = load.Run(context.Background(), cfg)
		if err != nil {
			return err
		}
		out, err = rep.JSON()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q (known: model, real, virtual)", *mode)
	}

	if *report == "-" {
		if _, err := stdout.Write(out); err != nil {
			return err
		}
	} else if err := os.WriteFile(*report, out, 0o644); err != nil {
		return err
	}

	if rep != nil {
		fmt.Fprintf(stderr, "baload: %d requests, %.1f rps achieved, %d ok, %d cache hits, %d unexpected errors\n",
			rep.Requests, rep.AchievedRPS, rep.OK, rep.CacheHits, rep.UnexpectedErrors)
		if *minRPS > 0 && rep.AchievedRPS < *minRPS {
			return fmt.Errorf("achieved %.1f rps below the -min-rps %.1f gate", rep.AchievedRPS, *minRPS)
		}
		if *maxUnexpected >= 0 && rep.UnexpectedErrors > uint64(*maxUnexpected) {
			return fmt.Errorf("%d unexpected errors over the -max-unexpected %d gate",
				rep.UnexpectedErrors, *maxUnexpected)
		}
	}
	return nil
}

// parseShards reads a "1,2,4" list.
func parseShards(spec string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad shard count %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -shards list")
	}
	return out, nil
}

func marshalIndent(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
