package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestRunVirtualReportDeterministic(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-mode", "virtual", "-schedule", "constant", "-rps", "100",
		"-duration", "1s", "-corpus", "8", "-workers", "4", "-seed", "2",
		"-max-unexpected", "0",
	}
	runOnce := func(path string) []byte {
		t.Helper()
		if err := run(append(args, "-report", path), io.Discard, io.Discard); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := runOnce(filepath.Join(dir, "a.json"))
	b := runOnce(filepath.Join(dir, "b.json"))
	if !bytes.Equal(a, b) {
		t.Fatal("two identical virtual runs wrote different report files")
	}
	var rep map[string]any
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep["mode"] != "virtual" {
		t.Errorf("mode = %v, want virtual", rep["mode"])
	}
}

func TestRunModelMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-mode", "model", "-schedule", "constant", "-rps", "20000",
		"-duration", "1s", "-corpus", "32", "-seed", "3", "-shards", "1,2",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Mode   string `json:"mode"`
		Shards []struct {
			Shards    int     `json:"shards"`
			Speedup   float64 `json:"speedup_vs_1"`
			CacheHits uint64  `json:"cache_hits"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Mode != "model" || len(doc.Shards) != 2 {
		t.Fatalf("model doc malformed: %s", out.Bytes())
	}
	if doc.Shards[0].CacheHits != doc.Shards[1].CacheHits {
		t.Error("modeled cache hits differ across shard counts")
	}
}

func TestRunGatesAndBadFlags(t *testing.T) {
	base := []string{"-mode", "virtual", "-rps", "50", "-duration", "1s", "-corpus", "4"}
	if err := run(append(base, "-min-rps", "1000000"), io.Discard, io.Discard); err == nil {
		t.Error("-min-rps gate did not trip")
	}
	// Injected 429s are backpressure: the unexpected-error gate must pass.
	if err := run(append(base, "-err-every", "5", "-max-unexpected", "0"), io.Discard, io.Discard); err != nil {
		t.Errorf("429 backpressure tripped the unexpected-error gate: %v", err)
	}
	for _, bad := range [][]string{
		{"-mode", "bogus"},
		{"-schedule", "bogus"},
		{"-mix", "nope=1"},
		{"-mix", "align-asm"},
		{"-rps", "-5"},
		{"-corpus", "0"},
		{"-mode", "model", "-shards", "0"},
		{"-mode", "model", "-shards", "x"},
	} {
		if err := run(bad, io.Discard, io.Discard); err == nil {
			t.Errorf("run(%v): expected error, got nil", bad)
		}
	}
}
