package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the shard-child entry point: the supervisor spawns
// os.Executable() — in tests, this binary — with BALIGND_CHILD=1, and the
// dispatch below turns that invocation into a real balignd daemon.
func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		if err := run(os.Args[1:], os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "balignd child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestRunRejectsBadConfig(t *testing.T) {
	cases := [][]string{
		{"-kernel", "bogus"},
		{"-stream", "sideways"},
		{"-not-a-flag"},
		{"-shards", "2", "-backends", "http://127.0.0.1:1"},
		{"-backends", "http://ok, "},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v): expected error, got nil", args)
		}
	}
}

// TestRunServesAndDrains boots the daemon on an ephemeral port, exercises
// /healthz and /v1/align over real HTTP, then delivers SIGTERM to the test
// process and asserts run returns cleanly. The signal is only sent after a
// successful health check, i.e. after run has installed its handler.
func TestRunServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-drain", "10s",
		}, io.Discard)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for addr file")
		}
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(b))
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: got %d, want 200", resp.StatusCode)
	}

	asmSrc, err := os.ReadFile(filepath.Join("..", "..", "internal", "serve", "testdata", "sample.asm"))
	if err != nil {
		t.Fatal(err)
	}
	profSrc, err := os.ReadFile(filepath.Join("..", "..", "internal", "serve", "testdata", "sample.prof"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"asm": string(asmSrc), "profile": string(profSrc),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/align", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/align: got %d: %s", resp.StatusCode, out)
	}
	if !json.Valid(out) {
		t.Fatalf("/v1/align: invalid JSON response: %q", out)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}

	if _, err := http.Get(fmt.Sprintf("%s/healthz", base)); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

// TestRunShardedServes boots `balignd -shards 2` — a real supervisor with
// two re-exec'd child daemons and a router front end — and checks routed
// requests succeed, repeat requests hit the owning shard's cache, health
// aggregates across shards, and SIGTERM drains the whole tree.
func TestRunShardedServes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-shards", "2",
			"-drain", "10s",
		}, io.Discard)
	}()

	addr, err := waitForAddrFile(addrFile, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: got %d: %s", resp.StatusCode, health)
	}
	if !strings.Contains(string(health), `"shards":2`) {
		t.Fatalf("/healthz: want 2 shards, got %s", health)
	}

	asmSrc, err := os.ReadFile(filepath.Join("..", "..", "internal", "serve", "testdata", "sample.asm"))
	if err != nil {
		t.Fatal(err)
	}
	profSrc, err := os.ReadFile(filepath.Join("..", "..", "internal", "serve", "testdata", "sample.prof"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"asm": string(asmSrc), "profile": string(profSrc),
	})
	if err != nil {
		t.Fatal(err)
	}

	post := func() (*http.Response, []byte) {
		resp, err := http.Post(base+"/v1/align", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}
	r1, out1 := post()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("/v1/align via router: got %d: %s", r1.StatusCode, out1)
	}
	shard1 := r1.Header.Get("X-Balign-Shard")
	if shard1 == "" {
		t.Fatal("routed response missing X-Balign-Shard")
	}
	r2, out2 := post()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("repeat /v1/align: got %d: %s", r2.StatusCode, out2)
	}
	if got := r2.Header.Get("X-Balign-Shard"); got != shard1 {
		t.Errorf("repeat request routed to shard %s, first went to %s", got, shard1)
	}
	if got := r2.Header.Get("X-Balign-Cache"); got != "hit" {
		t.Errorf("repeat request X-Balign-Cache = %q, want hit (per-shard cache should survive routing)", got)
	}
	if !bytes.Equal(out1, out2) {
		t.Error("repeat routed request returned different bytes")
	}

	resp, err = http.Get(base + "/shardz")
	if err != nil {
		t.Fatal(err)
	}
	shardz, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sh struct {
		Draining bool `json:"draining"`
		Shards   []struct {
			Status string `json:"status"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(shardz, &sh); err != nil {
		t.Fatalf("/shardz: %v: %s", err, shardz)
	}
	if len(sh.Shards) != 2 {
		t.Fatalf("/shardz: want 2 shards, got %s", shardz)
	}
	for i, s := range sh.Shards {
		if s.Status != "ok" {
			t.Errorf("/shardz: shard %d status %q, want ok", i, s.Status)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sharded run returned error after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sharded run did not return after SIGTERM")
	}
}
