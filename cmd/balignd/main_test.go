package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunRejectsBadConfig(t *testing.T) {
	cases := [][]string{
		{"-kernel", "bogus"},
		{"-stream", "sideways"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v): expected error, got nil", args)
		}
	}
}

// TestRunServesAndDrains boots the daemon on an ephemeral port, exercises
// /healthz and /v1/align over real HTTP, then delivers SIGTERM to the test
// process and asserts run returns cleanly. The signal is only sent after a
// successful health check, i.e. after run has installed its handler.
func TestRunServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-drain", "10s",
		}, io.Discard)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for addr file")
		}
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(b))
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: got %d, want 200", resp.StatusCode)
	}

	asmSrc, err := os.ReadFile(filepath.Join("..", "..", "internal", "serve", "testdata", "sample.asm"))
	if err != nil {
		t.Fatal(err)
	}
	profSrc, err := os.ReadFile(filepath.Join("..", "..", "internal", "serve", "testdata", "sample.prof"))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"asm": string(asmSrc), "profile": string(profSrc),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/align", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/align: got %d: %s", resp.StatusCode, out)
	}
	if !json.Valid(out) {
		t.Fatalf("/v1/align: invalid JSON response: %q", out)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned error after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}

	if _, err := http.Get(fmt.Sprintf("%s/healthz", base)); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}
