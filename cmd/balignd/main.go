// Command balignd serves the branch-alignment pipeline over HTTP: the
// hardened alignment-as-a-service daemon built on internal/serve.
//
//	POST /v1/align     assemble + align + per-algorithm/per-site cost deltas
//	POST /v1/simulate  align + simulate across architectures (suite or inline)
//	GET  /healthz      liveness (503 while draining)
//	GET  /debug/vars   expvar, including the live balignd telemetry report
//	GET  /debug/pprof  standard Go profiling endpoints
//
// Usage:
//
//	balignd [-addr :8421] [-addr-file path] [-inflight 8] [-queue-wait 250ms]
//	        [-timeout 60s] [-max-body 8388608] [-cache-entries 256]
//	        [-cache-bytes 67108864] [-kernel flat|ref] [-stream on|off]
//	        [-parallel N] [-drain 30s] [-shards N] [-backends url,url] [-v]
//
// With -shards N the process becomes a supervisor: it spawns N
// shared-nothing balignd shard processes (each with its own result cache
// and streamer arena), consistent-hashes every request's cache key over
// them, restarts crashed shards in place (key ownership is by ring slot,
// so a restart moves no keys), and serves the aggregated /healthz and
// per-shard /shardz. With -backends the same router fronts externally
// managed backends instead of spawning its own.
//
// On SIGINT/SIGTERM the daemon drains gracefully: /healthz flips to 503,
// new work is rejected, in-flight requests run to completion (bounded by
// -drain), then the process exits — in sharded mode the router drains
// first, then every shard. With -addr :0 the kernel picks a free port;
// -addr-file publishes the bound address for scripts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"balign/internal/obs"
	"balign/internal/serve"
)

var publishOnce sync.Once

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "balignd:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("balignd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8421", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	inflight := fs.Int("inflight", serve.DefaultMaxInFlight, "max concurrently executing requests")
	queueWait := fs.Duration("queue-wait", serve.DefaultQueueWait, "max admission queue wait before 429 (0 = reject immediately)")
	timeout := fs.Duration("timeout", serve.DefaultTimeout, "per-request deadline")
	maxBody := fs.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size limit in bytes")
	cacheEntries := fs.Int("cache-entries", serve.DefaultCacheEntries, "result cache entry bound (-1 disables the cache)")
	cacheBytes := fs.Int64("cache-bytes", serve.DefaultCacheBytes, "result cache byte bound")
	kernel := fs.String("kernel", "", "simulation executor: flat | ref (default flat)")
	stream := fs.String("stream", "", "trace lifecycle: on (streamed) | off (recorded) (default on)")
	parallel := fs.Int("parallel", 0, "per-request experiment-engine shards (0 = GOMAXPROCS)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown bound for in-flight work")
	verbose := fs.Bool("v", false, "write the telemetry report to stderr on exit")
	shards := fs.Int("shards", 0, "spawn N shard backends and route over them (0 = single node)")
	backendsSpec := fs.String("backends", "", "route over externally managed backends (comma-separated URLs)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rec := obs.New("balignd")
	// expvar panics on duplicate names; only the first run in a process
	// (the only one outside tests) claims the exported slot.
	publishOnce.Do(func() { rec.Publish("balignd") })

	if *shards > 0 || *backendsSpec != "" {
		if *shards > 0 && *backendsSpec != "" {
			return errors.New("-shards and -backends are mutually exclusive")
		}
		backends, err := parseBackends(*backendsSpec)
		if err != nil {
			return err
		}
		tuning := shardTuning{
			inflight:     *inflight,
			queueWait:    *queueWait,
			timeout:      *timeout,
			maxBody:      *maxBody,
			cacheEntries: *cacheEntries,
			cacheBytes:   *cacheBytes,
			kernel:       *kernel,
			stream:       *stream,
			parallel:     *parallel,
			drain:        *drain,
		}
		return runSharded(*addr, *addrFile, *shards, backends, tuning, rec, *drain, stderr)
	}
	qw := *queueWait
	if qw == 0 {
		qw = -1 // flag 0 means reject immediately; Config 0 means default
	}
	srv, err := serve.New(serve.Config{
		MaxInFlight:  *inflight,
		QueueWait:    qw,
		Timeout:      *timeout,
		MaxBodyBytes: *maxBody,
		CacheEntries: *cacheEntries,
		CacheBytes:   *cacheBytes,
		Kernel:       *kernel,
		Stream:       *stream,
		Parallelism:  *parallel,
		Obs:          rec,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(stderr, "balignd: listening on %s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: flip the drain flag first so probes and new work
	// see 503 immediately, then let http.Server wait out the in-flight
	// requests the flag is protecting.
	fmt.Fprintln(stderr, "balignd: draining")
	srv.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "balignd: shutdown: %v\n", err)
		hs.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if *verbose {
		rec.Attach("serve_cache", srv.CacheStats())
		rec.Attach("stream", srv.Streamer().Stats())
		if err := rec.WriteJSON(stderr); err != nil {
			return err
		}
	}
	return nil
}
