package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"balign/internal/obs"
	"balign/internal/serve/router"
)

// childEnv marks a spawned shard process. The production binary ignores it
// (main always serves); the test binary's TestMain dispatches on it so the
// supervisor can re-exec the test executable as a real shard daemon.
const childEnv = "BALIGND_CHILD"

// shardTuning is the subset of balignd flags the supervisor forwards to
// every shard it spawns.
type shardTuning struct {
	inflight     int
	queueWait    time.Duration
	timeout      time.Duration
	maxBody      int64
	cacheEntries int
	cacheBytes   int64
	kernel       string
	stream       string
	parallel     int
	drain        time.Duration
}

func (t shardTuning) args(addrFile string) []string {
	a := []string{
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-inflight", fmt.Sprint(t.inflight),
		"-queue-wait", t.queueWait.String(),
		"-timeout", t.timeout.String(),
		"-max-body", fmt.Sprint(t.maxBody),
		"-cache-entries", fmt.Sprint(t.cacheEntries),
		"-cache-bytes", fmt.Sprint(t.cacheBytes),
		"-parallel", fmt.Sprint(t.parallel),
		"-drain", t.drain.String(),
	}
	if t.kernel != "" {
		a = append(a, "-kernel", t.kernel)
	}
	if t.stream != "" {
		a = append(a, "-stream", t.stream)
	}
	return a
}

// shardProc is one supervised backend process.
type shardProc struct {
	idx      int
	addrFile string
	mu       sync.Mutex
	cmd      *exec.Cmd
	exited   chan struct{} // closed by the monitor after cmd.Wait returns
}

// supervisor runs N shard children plus a router front end in one process
// tree: `balignd -shards N`.
type supervisor struct {
	tuning   shardTuning
	stderr   io.Writer
	dir      string
	exe      string
	shards   []*shardProc
	rt       *router.Router
	stopping atomic.Bool
}

// runSharded is the `-shards N` / `-backends ...` entry point: a router
// listening on addr, backed either by N freshly spawned shard processes or
// by externally managed backends.
func runSharded(addr, addrFile string, shards int, backends []string, tuning shardTuning, rec *obs.Recorder, drain time.Duration, stderr io.Writer) error {
	sup := &supervisor{tuning: tuning, stderr: stderr}
	urls := backends

	if shards > 0 {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("locating own executable: %w", err)
		}
		dir, err := os.MkdirTemp("", "balignd-shards-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		sup.dir, sup.exe = dir, exe

		urls = make([]string, shards)
		for i := 0; i < shards; i++ {
			sp := &shardProc{idx: i, addrFile: filepath.Join(dir, fmt.Sprintf("shard-%d.addr", i))}
			sup.shards = append(sup.shards, sp)
			u, err := sup.start(sp)
			if err != nil {
				sup.killAll()
				return fmt.Errorf("starting shard %d: %w", i, err)
			}
			urls[i] = u
			fmt.Fprintf(stderr, "balignd: shard %d up at %s\n", i, u)
		}
	}

	rt, err := router.New(router.Config{
		Backends: urls,
		Timeout:  tuning.timeout,
		Obs:      rec,
	})
	if err != nil {
		sup.killAll()
		return err
	}
	sup.rt = rt

	// Monitors restart crashed shards and swap the fresh address into the
	// shard's ring slot; key ownership never moves.
	var wg sync.WaitGroup
	for _, sp := range sup.shards {
		wg.Add(1)
		go func(sp *shardProc) {
			defer wg.Done()
			sup.monitor(sp)
		}(sp)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		sup.shutdownChildren(drain)
		wg.Wait()
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			sup.shutdownChildren(drain)
			wg.Wait()
			return err
		}
	}
	fmt.Fprintf(stderr, "balignd: router listening on %s (%d shards)\n", bound, rt.Shards())

	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		sup.stopping.Store(true)
		sup.shutdownChildren(drain)
		wg.Wait()
		return err
	case <-ctx.Done():
	}

	// Drain ordering: stop admitting at the router first, let in-flight
	// forwards finish, then drain the children — so no request is admitted
	// upstream of a shard that is already refusing work.
	fmt.Fprintln(stderr, "balignd: router draining")
	sup.stopping.Store(true)
	rt.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "balignd: router shutdown: %v\n", err)
		hs.Close()
	}
	<-errc
	sup.shutdownChildren(drain)
	wg.Wait()
	return nil
}

// start launches sp's process and waits for it to publish its address.
func (sup *supervisor) start(sp *shardProc) (string, error) {
	os.Remove(sp.addrFile)
	cmd := exec.Command(sup.exe, sup.tuning.args(sp.addrFile)...)
	cmd.Env = append(os.Environ(), childEnv+"=1")
	cmd.Stderr = sup.stderr
	if err := cmd.Start(); err != nil {
		return "", err
	}
	sp.mu.Lock()
	sp.cmd = cmd
	sp.exited = make(chan struct{})
	sp.mu.Unlock()
	addr, err := waitForAddrFile(sp.addrFile, 10*time.Second)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return "", err
	}
	return "http://" + addr, nil
}

// monitor waits on sp's process and restarts it until shutdown, swapping
// the new address into the router.
func (sup *supervisor) monitor(sp *shardProc) {
	for {
		sp.mu.Lock()
		cmd, exited := sp.cmd, sp.exited
		sp.mu.Unlock()
		err := cmd.Wait()
		close(exited)
		if sup.stopping.Load() {
			return
		}
		fmt.Fprintf(sup.stderr, "balignd: shard %d exited (%v); restarting\n", sp.idx, err)
		time.Sleep(100 * time.Millisecond)
		u, serr := sup.start(sp)
		if serr != nil {
			if sup.stopping.Load() {
				return
			}
			fmt.Fprintf(sup.stderr, "balignd: shard %d restart failed: %v\n", sp.idx, serr)
			time.Sleep(time.Second)
			continue
		}
		if swapErr := sup.rt.SetBackend(sp.idx, u); swapErr != nil {
			fmt.Fprintf(sup.stderr, "balignd: shard %d: %v\n", sp.idx, swapErr)
		}
		fmt.Fprintf(sup.stderr, "balignd: shard %d back at %s\n", sp.idx, u)
	}
}

// shutdownChildren drains every shard: SIGTERM (the daemon's graceful
// path), escalating to SIGKILL after the drain bound.
func (sup *supervisor) shutdownChildren(drain time.Duration) {
	sup.stopping.Store(true)
	var wg sync.WaitGroup
	for _, sp := range sup.shards {
		sp.mu.Lock()
		cmd, exited := sp.cmd, sp.exited
		sp.mu.Unlock()
		if cmd == nil || cmd.Process == nil {
			continue
		}
		wg.Add(1)
		go func(cmd *exec.Cmd, exited chan struct{}) {
			defer wg.Done()
			cmd.Process.Signal(syscall.SIGTERM)
			select {
			case <-exited:
			case <-time.After(drain + 2*time.Second):
				cmd.Process.Kill()
				<-exited
			}
		}(cmd, exited)
	}
	wg.Wait()
}

// killAll hard-stops every child (startup-failure path).
func (sup *supervisor) killAll() {
	sup.stopping.Store(true)
	for _, sp := range sup.shards {
		sp.mu.Lock()
		cmd := sp.cmd
		sp.mu.Unlock()
		if cmd != nil && cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
}

// waitForAddrFile polls for the "host:port\n" file a booting daemon writes.
func waitForAddrFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		b, err := os.ReadFile(path)
		if err == nil {
			if addr := strings.TrimSpace(string(b)); addr != "" {
				return addr, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("timed out waiting for %s", path)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// parseBackends reads the -backends flag ("url,url").
func parseBackends(spec string) ([]string, error) {
	if spec == "" {
		return nil, nil
	}
	var out []string
	for _, p := range strings.Split(spec, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, errors.New("empty backend URL in -backends")
		}
		out = append(out, strings.TrimRight(p, "/"))
	}
	return out, nil
}
