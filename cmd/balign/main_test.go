package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"balign/internal/asm"
	"balign/internal/cfgio"
	"balign/internal/profile"
	"balign/internal/vm"
)

var update = flag.Bool("update", false, "rewrite golden files")

// cfgFixture is the committed real-shaped CFG document (a simplified
// pprof-derived Go runtime scan loop) shared by the cmd-level golden tests.
const cfgFixture = "../../testdata/cfg/go_scanobject.dot"

// checkGolden compares got to testdata/golden/<name>, rewriting under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden (run with -update after intended changes)\n got: %s\nwant: %s",
			name, got, want)
	}
}

// TestGoldenCFGAlign pins the end-to-end CFG front door: align the committed
// fixture and emit the transformed program plus transferred profile as a
// DOT document. The emitted document must re-import (the transfer preserves
// validity) and re-export byte-identically (the encoding is canonical).
func TestGoldenCFGAlign(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-cfg", cfgFixture, "-algo", "tryn", "-arch", "btfnt", "-emit", "dot"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	checkGolden(t, "cfg_aligned.dot", stdout.Bytes())

	prog, pf, err := cfgio.Import(stdout.Bytes())
	if err != nil {
		t.Fatalf("aligned CFG document does not re-import: %v", err)
	}
	again, err := cfgio.ExportDOT(prog, pf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, stdout.Bytes()) {
		t.Errorf("aligned CFG document is not byte-stable under re-import/re-export\n got: %s\nwant: %s",
			again, stdout.Bytes())
	}
}

const testSrc = `
mem 16
proc main
    li r1, 100
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`

// writeFixture assembles, profiles and writes both files to dir.
func writeFixture(t *testing.T, dir string) (progPath, profPath string) {
	t.Helper()
	progPath = filepath.Join(dir, "p.asm")
	if err := os.WriteFile(progPath, []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(testSrc)
	if err != nil {
		t.Fatal(err)
	}
	col := profile.NewCollector(prog)
	if _, err := vm.New(prog).Run(nil, col); err != nil {
		t.Fatal(err)
	}
	profPath = filepath.Join(dir, "p.prof")
	f, err := os.Create(profPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.Profile().WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return progPath, profPath
}

func TestRunAlignsAndWritesAssembly(t *testing.T) {
	dir := t.TempDir()
	progPath, profPath := writeFixture(t, dir)
	outPath := filepath.Join(dir, "out.asm")

	var stdout, stderr bytes.Buffer
	err := run([]string{"-prog", progPath, "-profile", profPath,
		"-algo", "tryn", "-arch", "fallthrough", "-v", "-o", outPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "layout cost") {
		t.Errorf("verbose output missing: %s", stderr.String())
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	// The transformed output must reassemble and still execute to the same
	// result.
	prog2, err := asm.Assemble(string(out))
	if err != nil {
		t.Fatalf("output does not reassemble: %v\n%s", err, out)
	}
	m := vm.New(prog2)
	if _, err := m.Run(nil, nil); err != nil {
		t.Fatal(err)
	}
	if m.Reg(2) != 100 {
		t.Errorf("aligned program computed r2 = %d, want 100", m.Reg(2))
	}
}

func TestRunToStdout(t *testing.T) {
	dir := t.TempDir()
	progPath, profPath := writeFixture(t, dir)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-prog", progPath, "-profile", profPath, "-algo", "greedy"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "proc main") {
		t.Errorf("stdout missing assembly: %s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	progPath, profPath := writeFixture(t, dir)
	var out bytes.Buffer
	cases := [][]string{
		{},
		{"-prog", progPath},
		{"-prog", progPath, "-profile", profPath, "-algo", "bogus"},
		{"-prog", progPath, "-profile", profPath, "-arch", "bogus"},
		{"-prog", progPath, "-profile", profPath, "-order", "bogus"},
		{"-prog", filepath.Join(dir, "missing.asm"), "-profile", profPath},
		{"-prog", progPath, "-profile", filepath.Join(dir, "missing.prof")},
	}
	for _, args := range cases {
		if err := run(args, &out, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
