// Command balign performs profile-guided branch alignment on an assembly
// program — the paper's OM-style link-time transformation. It reads a
// program and an edge profile (from batrace), or a single CFG document
// carrying both (JSON or DOT, see internal/cfgio), applies the selected
// algorithm and architecture cost model, and writes the transformed
// program as assembly or as a CFG document with the transferred profile.
//
// Usage:
//
//	balign -prog file.asm -profile file.prof [-algo tryn] [-arch btfnt]
//	       [-order hottest|btfnt] [-window 15] [-procorder] [-o out.asm] [-v]
//	balign -cfg prog.cfg.json [-emit json|dot|asm] [flags]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"balign/internal/asm"
	"balign/internal/cfgio"
	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/profile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "balign:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("balign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	progFile := fs.String("prog", "", "assembly file to transform (required unless -cfg)")
	profFile := fs.String("profile", "", "edge profile from batrace (required unless -cfg)")
	cfgFile := fs.String("cfg", "", "CFG document (JSON or DOT) carrying both program and profile")
	emit := fs.String("emit", "", "output encoding: asm (default) | json | dot (CFG with the transferred profile)")
	algo := fs.String("algo", "tryn", "alignment algorithm: orig | greedy | cost | tryn | exttsp")
	arch := fs.String("arch", "btfnt", "architecture cost model: "+strings.Join(predict.KnownArchNames(), " | "))
	order := fs.String("order", "hottest", "chain layout order: hottest | btfnt")
	window := fs.Int("window", core.DefaultWindow, "TryN window size")
	procOrder := fs.Bool("procorder", false, "also reorder whole procedures by the ExtTSP call-graph objective")
	out := fs.String("o", "", "output assembly file (default: stdout)")
	verbose := fs.Bool("v", false, "print rewrite statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var prog *ir.Program
	var pf *profile.Profile
	switch {
	case *cfgFile != "":
		if *progFile != "" || *profFile != "" {
			return fmt.Errorf("-cfg replaces both -prog and -profile")
		}
		data, err := os.ReadFile(*cfgFile)
		if err != nil {
			return err
		}
		prog, pf, err = cfgio.Import(data)
		if err != nil {
			return err
		}
	case *progFile != "" && *profFile != "":
		src, err := os.ReadFile(*progFile)
		if err != nil {
			return err
		}
		prog, err = asm.Assemble(string(src))
		if err != nil {
			return err
		}
		pfFile, err := os.Open(*profFile)
		if err != nil {
			return err
		}
		pf, err = profile.Read(pfFile)
		pfFile.Close()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -cfg, or both -prog and -profile, are required")
	}

	opts := core.Options{Window: *window}
	switch *algo {
	case "greedy":
		opts.Algorithm = core.AlgoGreedy
	case "cost":
		opts.Algorithm = core.AlgoCost
	case "tryn":
		opts.Algorithm = core.AlgoTryN
	case "exttsp":
		opts.Algorithm = core.AlgoExtTSP
	case "orig":
		opts.Algorithm = core.AlgoOriginal
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if opts.Algorithm == core.AlgoCost || opts.Algorithm == core.AlgoTryN {
		m, err := cost.ForArch(predict.ArchID(*arch))
		if err != nil {
			return err
		}
		opts.Model = m
	}
	switch *order {
	case "hottest":
		opts.Order = core.OrderHottest
	case "btfnt":
		opts.Order = core.OrderBTFNT
	default:
		return fmt.Errorf("unknown chain order %q", *order)
	}

	res, err := core.AlignProgram(prog, pf, opts)
	if err != nil {
		return err
	}
	if *procOrder {
		reordered, err := core.ReorderProcsExtTSP(res.Prog, res.Prof)
		if err != nil {
			return err
		}
		res.Prog = reordered
	}

	if *verbose {
		m := opts.Model
		if m == nil {
			m = cost.FallthroughModel{}
		}
		fmt.Fprintf(stderr, "jumps inserted: %d, removed: %d; branches inverted: %d; dynamic instruction delta: %+d\n",
			res.Stats.JumpsInserted, res.Stats.JumpsRemoved, res.Stats.BranchesInverted, res.Stats.DynInstrDelta)
		fmt.Fprintf(stderr, "layout cost under %s model: %.0f -> %.0f cycles\n",
			m.Name(), cost.ProgramCost(prog, pf, m), cost.ProgramCost(res.Prog, res.Prof, m))
	}

	var output []byte
	switch *emit {
	case "", "asm":
		output = []byte(res.Prog.Format())
	case "json":
		output, err = cfgio.ExportJSON(res.Prog, res.Prof)
	case "dot":
		output, err = cfgio.ExportDOT(res.Prog, res.Prof)
	default:
		return fmt.Errorf("unknown -emit encoding %q (want asm, json or dot)", *emit)
	}
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Fprintf(stdout, "%s", output)
		return nil
	}
	return os.WriteFile(*out, output, 0o644)
}
