// Command batrace executes a program and records its edge profile — the
// ATOM-style instrumentation step of the paper's workflow. The input is
// either an assembly file (executed on the VM) or a named suite benchmark
// (executed or walked, per its kind).
//
// Usage:
//
//	batrace -prog file.asm [-o file.prof] [-stats]
//	batrace -bench espresso [-scale 1.0] [-seed 0] [-o file.prof] [-stats]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"balign/internal/asm"
	"balign/internal/metrics"
	"balign/internal/profile"
	"balign/internal/trace"
	"balign/internal/vm"
	"balign/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "batrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("batrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	progFile := fs.String("prog", "", "assembly file to execute")
	bench := fs.String("bench", "", "suite benchmark name (see bastat -list)")
	out := fs.String("o", "", "profile output file (default: stdout)")
	events := fs.String("events", "", "also write the raw break-event trace to this file")
	stats := fs.Bool("stats", false, "print summary statistics to stderr")
	scale := fs.Float64("scale", 1.0, "trace budget scale for suite benchmarks")
	seed := fs.Int64("seed", 0, "seed for suite benchmarks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*progFile == "") == (*bench == "") {
		return fmt.Errorf("exactly one of -prog or -bench is required")
	}

	sinks := trace.MultiSink{}
	col := metrics.NewCollector()
	sinks = append(sinks, col)
	var evWriter *trace.FileWriter
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		defer f.Close()
		evWriter = trace.NewFileWriter(f)
		sinks = append(sinks, evWriter)
	}

	var pf *profile.Profile
	if *progFile != "" {
		src, err := os.ReadFile(*progFile)
		if err != nil {
			return err
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			return err
		}
		pcol := profile.NewCollector(prog)
		res, err := vm.New(prog).Run(sinks, pcol)
		if err != nil {
			return err
		}
		pf = pcol.Profile()
		pf.Instrs = res.Instrs
		col.Instrs = res.Instrs
	} else {
		w, err := workload.ByName(*bench, workload.Config{Scale: *scale, Seed: *seed})
		if err != nil {
			return err
		}
		pcol := profile.NewCollector(w.Prog)
		instrs, err := w.Run(w.Prog, nil, sinks, pcol)
		if err != nil {
			return err
		}
		pf = pcol.Profile()
		pf.Instrs = instrs
		col.Instrs = instrs
	}
	if evWriter != nil {
		if err := evWriter.Flush(); err != nil {
			return err
		}
	}

	if *stats {
		c := col.Counter()
		cond := c.CondTaken + c.CondFall
		if cond == 0 {
			cond = 1
		}
		fmt.Fprintf(stderr, "instructions traced: %d\n", col.Instrs)
		fmt.Fprintf(stderr, "breaks: %d (%.2f%% of instructions)\n",
			c.Total, 100*float64(c.Total)/float64(col.Instrs))
		fmt.Fprintf(stderr, "conditional taken rate: %.1f%%\n",
			100*float64(c.CondTaken)/float64(cond))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = pf.WriteTo(f)
		return err
	}
	_, err := pf.WriteTo(stdout)
	return err
}
