package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
)

func TestRunProgFile(t *testing.T) {
	dir := t.TempDir()
	progPath := filepath.Join(dir, "p.asm")
	src := "mem 8\nproc main\n li r1, 5\nloop:\n addi r1, r1, -1\n bnez r1, loop\n halt\nendproc\n"
	if err := os.WriteFile(progPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-prog", progPath, "-stats"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	pf, err := profile.Read(&stdout)
	if err != nil {
		t.Fatalf("output is not a valid profile: %v", err)
	}
	if pf.Instrs == 0 || pf.TotalEdgeWeight() == 0 {
		t.Error("empty profile")
	}
	if !strings.Contains(stderr.String(), "taken rate") {
		t.Errorf("stats missing: %s", stderr.String())
	}
}

func TestRunBenchToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "w.prof")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bench", "ora", "-scale", "0.02", "-o", out}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pf, err := profile.Read(f)
	if err != nil {
		t.Fatalf("profile unreadable: %v", err)
	}
	if len(pf.Procs) == 0 {
		t.Error("profile has no procedures")
	}
}

func TestRunArgErrors(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{},
		{"-prog", "a.asm", "-bench", "ora"},
		{"-bench", "not-a-benchmark"},
		{"-prog", "does-not-exist.asm"},
	} {
		if err := run(args, &buf, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunEventsFile(t *testing.T) {
	dir := t.TempDir()
	progPath := filepath.Join(dir, "p.asm")
	src := "mem 8\nproc main\n li r1, 9\nloop:\n addi r1, r1, -1\n bnez r1, loop\n halt\nendproc\n"
	if err := os.WriteFile(progPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	evPath := filepath.Join(dir, "p.trc")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-prog", progPath, "-events", evPath, "-o", filepath.Join(dir, "p.prof")}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(evPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var taken, fall int
	if err := trace.ReadFile(f, func(e trace.Event) error {
		if e.Kind == ir.CondBr {
			if e.Taken {
				taken++
			} else {
				fall++
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if taken != 8 || fall != 1 {
		t.Errorf("replayed taken/fall = %d/%d, want 8/1", taken, fall)
	}
}
