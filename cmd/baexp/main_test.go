package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"balign/internal/experiments"
	"balign/internal/predict"
)

var update = flag.Bool("update", false, "rewrite golden files")

// cfgFixture is the committed real-shaped CFG document (a simplified
// pprof-derived Go runtime scan loop) shared by the cmd-level golden tests.
const cfgFixture = "../../testdata/cfg/go_scanobject.dot"

// checkGolden compares got to testdata/golden/<name>, rewriting under
// -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden (run with -update after intended changes)\n got: %s\nwant: %s",
			name, got, want)
	}
}

// TestGoldenCFGExperiments pins the full evaluation grid over the committed
// CFG fixture: with -cfg and no -programs the imported program is the whole
// workload set, and both the Table 2 attributes and the suite grid encoding
// must be byte-stable.
func TestGoldenCFGExperiments(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-cfg", cfgFixture, "table2", "suite"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cfg_experiments.txt", out.Bytes())
}

func TestRunTable1(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"table1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Mispredicted") {
		t.Errorf("table1 output malformed:\n%s", out.String())
	}
}

func TestRunSmallExperiments(t *testing.T) {
	var out, errBuf bytes.Buffer
	args := []string{"-scale", "0.02", "-window", "5", "-programs", "ora",
		"table2", "fig2", "fig3"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 2", "Figure 2", "Figure 3", "ora", "paper: 5 -> 3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// runReport is the decoded shape of a baexp -report document, under the
// stable field names the schema tests assert.
type runReport struct {
	Tool     string           `json:"tool"`
	WallNs   int64            `json:"wall_ns"`
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"`
	Spans    []struct {
		Name     string `json:"name"`
		DurNs    int64  `json:"dur_ns"`
		Children []struct {
			Name  string           `json:"name"`
			DurNs int64            `json:"dur_ns"`
			Attrs map[string]int64 `json:"attrs"`
		} `json:"children"`
	} `json:"spans"`
	Sections struct {
		Engine struct {
			Tasks       uint64 `json:"tasks"`
			Errors      uint64 `json:"errors"`
			BusyNs      int64  `json:"busy_ns"`
			QueueWaitNs int64  `json:"queue_wait_ns"`
		} `json:"engine"`
		TraceCache struct {
			Hits           uint64 `json:"hits"`
			Misses         uint64 `json:"misses"`
			Freed          uint64 `json:"freed"`
			Live           int    `json:"live"`
			PeakLiveBytes  uint64 `json:"peak_live_bytes"`
			PeakLiveEvents uint64 `json:"peak_live_events"`
		} `json:"trace_cache"`
		Stream struct {
			Broadcasts    uint64 `json:"broadcasts"`
			Batches       uint64 `json:"batches"`
			Events        uint64 `json:"events"`
			StallsNs      int64  `json:"stalls_ns"`
			LiveBuffers   int64  `json:"live_buffers"`
			LiveBytes     uint64 `json:"live_bytes"`
			PeakLiveBytes uint64 `json:"peak_live_bytes"`
		} `json:"stream"`
		Executor struct {
			Mode        string `json:"mode"`
			Cells       uint64 `json:"cells"`
			StreamCells uint64 `json:"stream_cells"`
			Events      uint64 `json:"events"`
			CompileNs   int64  `json:"compile_ns"`
			RunNs       int64  `json:"run_ns"`
		} `json:"executor"`
		Grid []struct {
			Program string  `json:"Program"`
			Arch    string  `json:"Arch"`
			Algo    string  `json:"Algo"`
			CPI     float64 `json:"CPI"`
		} `json:"grid"`
	} `json:"sections"`
}

// reportFor runs a tiny suite with -report plus extra flags and decodes the
// resulting document, checking the parts common to both stream modes.
func reportFor(t *testing.T, extra ...string) *runReport {
	t.Helper()
	path := filepath.Join(t.TempDir(), "report.json")
	var out, errBuf bytes.Buffer
	args := append([]string{"-scale", "0.02", "-window", "5", "-programs", "ora",
		"-parallel", "2", "-report", path}, extra...)
	args = append(args, "suite")
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	rep := new(runReport)
	if err := json.Unmarshal(data, rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Tool != "baexp" || rep.WallNs <= 0 {
		t.Errorf("tool/wall_ns malformed: %q / %d", rep.Tool, rep.WallNs)
	}
	if rep.Counters["sim.tasks"] == 0 {
		t.Errorf("engine counters missing: %v", rep.Counters)
	}
	if rep.Counters["core.plan.tryn.ns"] == 0 || rep.Counters["core.plan.greedy.procs"] == 0 {
		t.Errorf("alignment timing counters missing: %v", rep.Counters)
	}
	if len(rep.Spans) == 0 {
		t.Fatal("no timing spans in report")
	}
	shards := 0
	for _, s := range rep.Spans {
		if s.Name != "sim.run" {
			t.Errorf("unexpected root span %q", s.Name)
		}
		for _, c := range s.Children {
			shards++
			if _, ok := c.Attrs["queue_wait_ns"]; !ok {
				t.Errorf("shard span %q missing queue_wait_ns", c.Name)
			}
		}
	}
	eng := rep.Sections.Engine
	if uint64(shards) != eng.Tasks {
		t.Errorf("%d shard spans but engine reports %d tasks", shards, eng.Tasks)
	}
	if eng.BusyNs <= 0 || eng.Errors != 0 {
		t.Errorf("engine stats malformed: %+v", eng)
	}
	// The executor section must report the kernel mode and split simulation
	// cost into compile and run phases (so cache-hit replays can't be
	// misattributed to simulation time).
	ex := rep.Sections.Executor
	if ex.Mode != "flat" {
		t.Errorf("executor mode = %q, want flat default", ex.Mode)
	}
	if ex.Events == 0 || ex.CompileNs <= 0 || ex.RunNs <= 0 {
		t.Errorf("executor phase split malformed: %+v", ex)
	}
	if rep.Counters["sim.exec.compile_ns"] == 0 || rep.Counters["sim.exec.run_ns"] == 0 ||
		rep.Counters["kernel.compiles"] == 0 || rep.Counters["kernel.run_ns"] == 0 {
		t.Errorf("executor/kernel counters missing: %v", rep.Counters)
	}
	// The grid section must be the full {program x arch x algo} matrix.
	if want := len(predict.AllArchs()) * len(experiments.Algos()); len(rep.Sections.Grid) != want {
		t.Errorf("grid rows = %d, want %d", len(rep.Sections.Grid), want)
	}
	for _, row := range rep.Sections.Grid {
		if row.Program != "ora" || row.Arch == "" || row.Algo == "" || row.CPI <= 0 {
			t.Errorf("degenerate grid row: %+v", row)
		}
	}
	return rep
}

// TestRunReportSchema is the run-report schema check `make report` relies
// on: a suite run with -report must emit one JSON document carrying the
// summary grid, per-shard timing spans, engine stats and — in the default
// streaming mode — broadcast-stage stats and ring gauges, under the stable
// field names asserted here.
func TestRunReportSchema(t *testing.T) {
	rep := reportFor(t)
	if rep.Counters["sim.stream.broadcasts"] == 0 || rep.Counters["sim.stream.batches"] == 0 {
		t.Errorf("stream counters missing: %v", rep.Counters)
	}
	if rep.Gauges["sim.stream.peak_live_bytes"] == 0 {
		t.Errorf("stream ring gauges missing: %v", rep.Gauges)
	}
	if rep.Gauges["sim.stream.live_buffers"] != 0 || rep.Gauges["sim.stream.live_bytes"] != 0 {
		t.Errorf("stream ring not drained: %v", rep.Gauges)
	}
	ss := rep.Sections.Stream
	if ss.Broadcasts == 0 || ss.Batches == 0 || ss.Events == 0 || ss.PeakLiveBytes == 0 {
		t.Errorf("stream stats malformed: %+v", ss)
	}
	if ss.LiveBuffers != 0 || ss.LiveBytes != 0 {
		t.Errorf("stream ring leaked: %+v", ss)
	}
	// Streaming bypasses the trace cache entirely...
	if tc := rep.Sections.TraceCache; tc.Misses != 0 || tc.Live != 0 {
		t.Errorf("streaming run touched the trace cache: %+v", tc)
	}
	// ...and counts consumers as stream cells, not recorded-replay cells.
	ex := rep.Sections.Executor
	if want := uint64(len(predict.AllArchs()) * len(experiments.Algos())); ex.StreamCells != want || ex.Cells != 0 {
		t.Errorf("executor cells = %d recorded / %d streamed, want 0 / %d",
			ex.Cells, ex.StreamCells, want)
	}
}

// TestRunReportSchemaRecorded pins the -stream=off escape hatch: the same
// run must route through the refcounted trace cache and report its
// occupancy, including the peak gauges the streaming ring is measured
// against.
func TestRunReportSchemaRecorded(t *testing.T) {
	rep := reportFor(t, "-stream", "off")
	if rep.Counters["sim.cache.misses"] == 0 {
		t.Errorf("cache counters missing: %v", rep.Counters)
	}
	if _, ok := rep.Gauges["sim.cache.live"]; !ok {
		t.Errorf("cache occupancy gauges missing: %v", rep.Gauges)
	}
	tc := rep.Sections.TraceCache
	if tc.Misses == 0 || tc.Freed != tc.Misses || tc.Live != 0 {
		t.Errorf("trace-cache stats malformed: %+v", tc)
	}
	if tc.PeakLiveBytes == 0 || tc.PeakLiveEvents == 0 {
		t.Errorf("trace-cache peak gauges missing: %+v", tc)
	}
	ex := rep.Sections.Executor
	if want := uint64(len(predict.AllArchs()) * len(experiments.Algos())); ex.Cells != want || ex.StreamCells != 0 {
		t.Errorf("executor cells = %d recorded / %d streamed, want %d / 0",
			ex.Cells, ex.StreamCells, want)
	}
	if ss := rep.Sections.Stream; ss.Broadcasts != 0 {
		t.Errorf("recorded run broadcast streams: %+v", ss)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf, &buf); err == nil {
		t.Error("no experiment id should error")
	}
	if err := run([]string{"bogus"}, &buf, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-programs", "nope", "table2"}, &buf, &buf); err == nil {
		t.Error("unknown program should error")
	}
}

func TestRunAllPaperExperimentsWiring(t *testing.T) {
	// Exercise every experiment id end-to-end at tiny scale to guard the
	// CLI wiring (formatting, flag plumbing, the "all"/"ext" groups).
	var out, errBuf bytes.Buffer
	args := []string{"-scale", "0.02", "-window", "5", "-programs", "ora",
		"table1", "table3", "table4", "fig1", "fig4", "ablation"}
	// fig4 needs a C-suite program; ora is filtered out, leaving the rest.
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Table 1", "Table 3", "Table 4", "Figure 1", "Figure 4", "Ablations"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunExtGroupWiring(t *testing.T) {
	var out, errBuf bytes.Buffer
	args := []string{"-scale", "0.02", "-window", "5", "-programs", "compress",
		"penalty", "crosstrain", "unroll", "hints", "seeds"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"penalty", "cross-training", "unrolling", "hint sources", "seed robustness"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
