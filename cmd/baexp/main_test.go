package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTable1(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"table1"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Mispredicted") {
		t.Errorf("table1 output malformed:\n%s", out.String())
	}
}

func TestRunSmallExperiments(t *testing.T) {
	var out, errBuf bytes.Buffer
	args := []string{"-scale", "0.02", "-window", "5", "-programs", "ora",
		"table2", "fig2", "fig3"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 2", "Figure 2", "Figure 3", "ora", "paper: 5 -> 3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf, &buf); err == nil {
		t.Error("no experiment id should error")
	}
	if err := run([]string{"bogus"}, &buf, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-programs", "nope", "table2"}, &buf, &buf); err == nil {
		t.Error("unknown program should error")
	}
}

func TestRunAllPaperExperimentsWiring(t *testing.T) {
	// Exercise every experiment id end-to-end at tiny scale to guard the
	// CLI wiring (formatting, flag plumbing, the "all"/"ext" groups).
	var out, errBuf bytes.Buffer
	args := []string{"-scale", "0.02", "-window", "5", "-programs", "ora",
		"table1", "table3", "table4", "fig1", "fig4", "ablation"}
	// fig4 needs a C-suite program; ora is filtered out, leaving the rest.
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Table 1", "Table 3", "Table 4", "Figure 1", "Figure 4", "Ablations"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunExtGroupWiring(t *testing.T) {
	var out, errBuf bytes.Buffer
	args := []string{"-scale", "0.02", "-window", "5", "-programs", "compress",
		"penalty", "crosstrain", "unroll", "hints", "seeds"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"penalty", "cross-training", "unrolling", "hint sources", "seed robustness"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
