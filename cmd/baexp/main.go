// Command baexp regenerates the paper's tables and figures.
//
// Usage:
//
//	baexp [flags] table1|table2|table3|table4|fig1|fig2|fig3|fig4|ablation|suite|all
//
// Flags:
//
//	-scale f     trace budget scale (1.0 = ~1.5-2M instruction traces)
//	-seed n      workload seed
//	-window n    TryN window (default 15, the paper's Try15)
//	-programs s  comma-separated subset of the suite (extended family
//	             names like kmp, phased or sc-meld work here too)
//	-cfg s       comma-separated CFG documents (JSON or DOT, see
//	             internal/cfgio) imported as additional workloads
//	-parallel n  experiment shards to run concurrently (0 = GOMAXPROCS,
//	             1 = serial oracle path; output is identical either way)
//	-workers n   total worker-goroutine budget, split between variant-level
//	             parallelism and intra-variant stream shards (0 = leave
//	             -parallel/-shards in charge; output is identical either way)
//	-shards n    intra-variant stream shards per architecture consumer
//	             (0 = derive from -workers, 1 = unsharded; output is
//	             identical at every setting)
//	-kernel s    simulation executor: flat (default, the compiled
//	             struct-of-arrays kernel) or ref (the interface-dispatched
//	             reference simulators); output is identical either way
//	-stream s    trace lifecycle: on (default, generate each variant's
//	             stream once and broadcast batches to all architectures
//	             over a bounded buffer ring) or off (record whole traces
//	             and replay per cell); output is identical either way

//	-v           log per-shard progress to stderr
//	-report f    write a JSON run report (timing spans, engine and trace-
//	             cache stats, counters, the suite summary grid) to file f
//	-pprof addr  serve net/http/pprof and expvar on addr (e.g. :6060) for
//	             the duration of the run; /debug/vars includes the live
//	             run report under "baexp"
//
// Telemetry is observation-only: enabling -report or -pprof does not
// change any experiment output (the parallel-vs-serial oracle runs with
// telemetry on).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"balign/internal/experiments"
	"balign/internal/metrics"
	"balign/internal/obs"
	"balign/internal/predict"
	"balign/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "baexp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("baexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1.0, "trace budget scale")
	seed := fs.Int64("seed", 0, "workload seed")
	window := fs.Int("window", 0, "TryN window (0 = paper's 15)")
	programs := fs.String("programs", "", "comma-separated program subset (suite or extended names)")
	cfgPaths := fs.String("cfg", "", "comma-separated CFG documents (JSON or DOT) to import as workloads")
	parallel := fs.Int("parallel", 0, "concurrent experiment shards (0 = GOMAXPROCS, 1 = serial)")
	workers := fs.Int("workers", 0, "total worker budget split across variants and stream shards (0 = unbudgeted)")
	shards := fs.Int("shards", 0, "intra-variant stream shards per architecture (0 = derive from -workers, 1 = unsharded)")
	kernelMode := fs.String("kernel", "flat", "simulation executor: flat (compiled kernel) or ref (reference simulators)")
	streamMode := fs.String("stream", "on", "trace lifecycle: on (streamed broadcast) or off (record then replay)")
	verbose := fs.Bool("v", false, "log per-shard progress to stderr")
	report := fs.String("report", "", "write a JSON run report to this file")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if _, err := sim.ParseKernelMode(*kernelMode); err != nil {
		return err
	}
	if _, err := sim.ParseStreamMode(*streamMode); err != nil {
		return err
	}
	cfg := experiments.Config{
		Scale: *scale, Seed: *seed, Window: *window,
		Parallelism: *parallel, Workers: *workers, Shards: *shards,
		Verbose: *verbose, Log: stderr,
		Kernel: *kernelMode, Stream: *streamMode,
	}
	if *programs != "" {
		cfg.Programs = strings.Split(*programs, ",")
	}
	if *cfgPaths != "" {
		cfg.CFG = strings.Split(*cfgPaths, ",")
	}
	if *report != "" || *pprofAddr != "" {
		cfg.Obs = obs.New("baexp")
	}
	if *pprofAddr != "" {
		cfg.Obs.Publish("baexp")
		go func() {
			if err := obs.ListenAndServeDebug(*pprofAddr); err != nil {
				fmt.Fprintln(stderr, "baexp: pprof server:", err)
			}
		}()
	}

	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("an experiment id is required (table1..table4, fig1..fig4, ablation, all)")
	}
	ids := rest
	if len(rest) == 1 && rest[0] == "all" {
		ids = []string{"table1", "table2", "table3", "table4", "fig1", "fig2", "fig3", "fig4", "ablation"}
	}
	if len(rest) == 1 && rest[0] == "ext" {
		ids = []string{"penalty", "crosstrain", "unroll", "icache", "hints", "seeds", "meld"}
	}
	for _, id := range ids {
		if err := runOne(id, cfg, stdout); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	if *report != "" {
		if err := writeReport(cfg.Obs, *report); err != nil {
			return fmt.Errorf("writing run report: %w", err)
		}
	}
	return nil
}

// writeReport dumps the run's telemetry snapshot to path.
func writeReport(rec *obs.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runOne(id string, cfg experiments.Config, w io.Writer) error {
	switch id {
	case "table1":
		fmt.Fprintln(w, "== Table 1: branch cost model ==")
		fmt.Fprint(w, experiments.Table1())
	case "table2":
		fmt.Fprintln(w, "== Table 2: measured program attributes ==")
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatTable2(rows))
	case "table3":
		fmt.Fprintln(w, "== Table 3: relative CPI, static architectures ==")
		results, err := experiments.Table3(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatCPITable(results, predict.StaticArchs(), true))
	case "table4":
		fmt.Fprintln(w, "== Table 4: relative CPI, dynamic architectures ==")
		results, err := experiments.Table4(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatCPITable(results, predict.DynamicArchs(), false))
	case "fig1":
		fmt.Fprintln(w, "== Figure 1: ESPRESSO elim_lowering fragment ==")
		results, err := experiments.Figure1(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatFigure1(results))
	case "fig2":
		fmt.Fprintln(w, "== Figure 2: ALVINN input_hidden loop trick ==")
		r, err := experiments.Figure2(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "cycles per loop iteration under FALLTHROUGH: %.2f -> %.2f (paper: 5 -> 3)\n",
			r.CyclesPerIterBefore, r.CyclesPerIterAfter)
		fmt.Fprintf(w, "jumps inserted: %d, branches inverted: %d\n", r.Stats.JumpsInserted, r.Stats.BranchesInverted)
	case "fig3":
		fmt.Fprintln(w, "== Figure 3: loop breaking (Greedy vs Try15) ==")
		rows, err := experiments.Figure3(cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%-8s orig %.0f   greedy %.0f   try15 %.0f   (%.0f%% branch-cost reduction; paper: ~33%%)\n",
				r.Model, r.CostOrig, r.CostGreedy, r.CostTryN, 100*(1-r.CostTryN/r.CostOrig))
		}
	case "fig4":
		fmt.Fprintln(w, "== Figure 4: relative execution time, dual-issue Alpha model ==")
		rows, err := experiments.Figure4(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatFigure4(rows))
	case "suite":
		fmt.Fprintln(w, "== Suite: full evaluation grid (stable encoding) ==")
		summaries, err := experiments.Summaries(cfg, predict.AllArchs())
		if err != nil {
			return err
		}
		fmt.Fprint(w, metrics.EncodeSummaries(summaries))
	case "ablation":
		fmt.Fprintln(w, "== Ablations: chain order, algorithm ladder, TryN window ==")
		rows, err := experiments.Ablation(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatAblation(rows))
	case "penalty":
		fmt.Fprintln(w, "== Extension: mispredict-penalty sensitivity (wide-issue argument) ==")
		prog := "compress"
		if len(cfg.Programs) > 0 {
			prog = cfg.Programs[0]
		}
		rows, err := experiments.PenaltySweep(prog, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatPenaltySweep(prog, rows))
	case "crosstrain":
		fmt.Fprintln(w, "== Extension: profile cross-training (train input != test input) ==")
		rows, err := experiments.CrossTraining(cfg.Programs, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatCrossTraining(rows))
	case "unroll":
		fmt.Fprintln(w, "== Extension: single-block loop unrolling (paper's ALVINN suggestion) ==")
		rows, err := experiments.UnrollStudy(cfg.Programs, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatUnrollStudy(rows))
	case "icache":
		fmt.Fprintln(w, "== Extension: instruction-cache locality (MPKI on a small I-cache) ==")
		rows, err := experiments.ICacheStudy(cfg.Programs, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatICacheStudy(rows))
	case "hints":
		fmt.Fprintln(w, "== Extension: LIKELY hint sources (profile vs compile-time heuristics) ==")
		rows, err := experiments.HintStudy(cfg.Programs, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatHintStudy(rows))
	case "seeds":
		fmt.Fprintln(w, "== Extension: seed robustness (gain across program instances) ==")
		rows, err := experiments.SeedSweep(cfg.Programs, 5, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatSeedSweep(rows))
	case "meld":
		fmt.Fprintln(w, "== Extension: alignment vs branch elimination (cmov if-conversion) ==")
		rows, err := experiments.MeldStudy(cfg.Programs, cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatMeldStudy(rows))
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	fmt.Fprintln(w)
	return nil
}
