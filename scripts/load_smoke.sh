#!/usr/bin/env bash
# load_smoke.sh — end-to-end smoke test for the load harness and the
# sharded balignd deployment.
#
# Builds balignd and baload, boots a 2-shard supervisor (router + two
# shared-nothing shard processes), drives a short constant-rate closed-loop
# run over the full request mix, and gates on: nonzero achieved RPS, zero
# unexpected errors (429/503/504 backpressure excluded), and nonzero cache
# hits through the router. Finishes with a SIGTERM and asserts the whole
# process tree drains cleanly. Run from the repository root: make load-smoke
set -euo pipefail

GO=${GO:-go}
ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$ROOT"

WORK=$(mktemp -d)
. "$ROOT/scripts/daemon_lib.sh"
cleanup() {
    daemon_cleanup
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "load-smoke: FAIL: $*" >&2
    dump_daemon_logs
    exit 1
}

"$GO" build -o "$WORK/balignd" ./cmd/balignd
"$GO" build -o "$WORK/baload" ./cmd/baload

boot_daemon router "$WORK/balignd" -shards 2 -timeout 30s -drain 20s
PID=$DAEMON_PID
BASE="http://$DAEMON_ADDR"

# The aggregated probe answers 200 only when both shards are healthy.
curl -sSf "$BASE/healthz" | grep -q '"shards":2' \
    || fail "aggregated healthz does not report 2 shards"
echo "load-smoke: 2-shard router healthy"

# Short closed-loop run. The gates are the point: the run must achieve a
# nonzero rate and see zero unexpected errors end to end through the
# router. The mix covers both endpoints and all three align encodings but
# leaves out simulate-suite: a single cold suite compute can exceed the
# whole smoke budget on a 1-CPU runner (the suite encoding is covered by
# the race-enabled router byte-identity tests instead).
"$WORK/baload" -base "$BASE" -mode real \
    -schedule constant -rps 25 -duration 4s -workers 8 \
    -corpus 12 -seed 7 -timeout 60s \
    -mix "align-asm=2,align-cfg-json=1,align-cfg-dot=1,simulate-inline=1" \
    -min-rps 1 -max-unexpected 0 \
    -report "$WORK/load_report.json" \
    || fail "baload run failed its gates"

grep -q '"mode": "real"' "$WORK/load_report.json" || fail "report missing mode"
echo "load-smoke: closed-loop run passed its gates"

# Cache-hit survival through the router: the corpus repeats entries, so a
# healthy sharded deployment must show hits.
HITS=$(sed -n 's/^  "cache_hits": \([0-9]*\),$/\1/p' "$WORK/load_report.json")
[ -n "$HITS" ] || fail "report missing cache_hits"
[ "$HITS" -gt 0 ] || fail "no cache hits through the router (got $HITS)"
echo "load-smoke: $HITS cache hits through the router"

# Graceful drain of the whole tree: router first, then both shards.
stop_daemon "$PID"
echo "load-smoke: PASS (clean drain)"
