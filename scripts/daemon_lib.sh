# daemon_lib.sh — shared boot/wait/stop helpers for smoke scripts that
# drive a real balignd process tree. Source from bash with:
#
#   WORK=$(mktemp -d)
#   . "$(dirname "$0")/daemon_lib.sh"
#
# Callers provide fail() and set WORK before sourcing. Every booted daemon
# is tracked in DAEMON_PIDS and killed by daemon_cleanup (wire it into the
# caller's EXIT trap).

DAEMON_PIDS=""

# boot_daemon NAME BIN [ARGS...] — start BIN with an ephemeral port and an
# addr file, wait for it to publish its address, and export
# DAEMON_ADDR/DAEMON_PID. Logs to $WORK/NAME.log; addr file is
# $WORK/NAME.addr (passed to the daemon as -addr-file).
boot_daemon() {
    name=$1; shift
    bin=$1; shift
    addr_file="$WORK/$name.addr"
    rm -f "$addr_file"
    "$bin" -addr 127.0.0.1:0 -addr-file "$addr_file" "$@" \
        >"$WORK/$name.log" 2>&1 &
    DAEMON_PID=$!
    DAEMON_PIDS="$DAEMON_PIDS $DAEMON_PID"

    # Wait (up to ~15s) for the daemon to publish its bound address.
    i=0
    while [ ! -s "$addr_file" ]; do
        i=$((i + 1))
        [ "$i" -gt 150 ] && fail "$name never published its address"
        kill -0 "$DAEMON_PID" 2>/dev/null || fail "$name exited before listening"
        sleep 0.1
    done
    DAEMON_ADDR=$(cat "$addr_file")
    echo "$(basename "$0" .sh): $name up at $DAEMON_ADDR (pid $DAEMON_PID)"
}

# stop_daemon PID — SIGTERM the daemon and require a clean (graceful-drain)
# exit status.
stop_daemon() {
    pid=$1
    kill -TERM "$pid" 2>/dev/null || fail "daemon $pid already gone before SIGTERM"
    st=0
    wait "$pid" || st=$?
    DAEMON_PIDS=$(printf '%s' "$DAEMON_PIDS" | sed "s/ $pid//")
    [ "$st" = 0 ] || fail "daemon $pid exited $st after SIGTERM"
}

# daemon_cleanup — kill anything still tracked; for EXIT traps.
daemon_cleanup() {
    for pid in $DAEMON_PIDS; do
        kill "$pid" 2>/dev/null || true
    done
}

# dump_daemon_logs — append every daemon log to stderr (failure path).
dump_daemon_logs() {
    for f in "$WORK"/*.log; do
        [ -f "$f" ] || continue
        sed "s|^|$(basename "$0" .sh):   $(basename "$f" .log): |" "$f" >&2
    done
}
