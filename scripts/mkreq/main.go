// Command mkreq builds a balignd /v1/align request body from asm and
// profile files, or from a single CFG document (-cfg). The fields are JSON
// strings, so encoding them here keeps scripts/serve_smoke.sh free of
// shell-quoting hazards.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	asmPath := flag.String("asm", "", "assembly source file (required unless -cfg)")
	profPath := flag.String("profile", "", "edge-profile file (optional)")
	cfgPath := flag.String("cfg", "", "CFG document (JSON or DOT) replacing -asm and -profile")
	name := flag.String("name", "smoke", "program name for the request")
	extra := flag.String("extra", "", "JSON object merged into the request (e.g. archs, generator)")
	flag.Parse()

	req := map[string]any{"name": *name}
	switch {
	case *cfgPath != "":
		if *asmPath != "" || *profPath != "" {
			fmt.Fprintln(os.Stderr, "mkreq: -cfg replaces both -asm and -profile")
			os.Exit(2)
		}
		cfgSrc, err := os.ReadFile(*cfgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mkreq:", err)
			os.Exit(1)
		}
		req["cfg"] = string(cfgSrc)
	case *asmPath != "":
		asmSrc, err := os.ReadFile(*asmPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mkreq:", err)
			os.Exit(1)
		}
		req["asm"] = string(asmSrc)
		if *profPath != "" {
			profSrc, err := os.ReadFile(*profPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mkreq:", err)
				os.Exit(1)
			}
			req["profile"] = string(profSrc)
		}
	default:
		fmt.Fprintln(os.Stderr, "mkreq: -asm or -cfg is required")
		os.Exit(2)
	}
	if *extra != "" {
		var more map[string]any
		if err := json.Unmarshal([]byte(*extra), &more); err != nil {
			fmt.Fprintln(os.Stderr, "mkreq: -extra:", err)
			os.Exit(1)
		}
		for k, v := range more {
			req[k] = v
		}
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(req); err != nil {
		fmt.Fprintln(os.Stderr, "mkreq:", err)
		os.Exit(1)
	}
}
