// Command benchserve produces BENCH_serve.json: the serving-layer
// benchmark document. It builds balignd, then measures
//
//  1. a single-node saturation sweep — baload's sweep schedule drives the
//     daemon through rising target rates and the per-slot achieved-vs-
//     target curve shows the knee;
//  2. measured shard scaling — the same short overload burst against
//     `balignd -shards N` for N in 1,2,4;
//  3. modeled shard scaling — the deterministic discrete-event queueing
//     model over the real router ring (see internal/load/model.go), which
//     answers how the same request stream scales with N real cores.
//
// The measured scaling rows are honest about the host: on a single-CPU
// container every shard process time-slices the same core, so measured
// scaling is ~1x by construction and the modeled rows carry the scaling
// claim. On a multi-core host the measured rows stand on their own.
//
//	go run ./scripts/benchserve [-out BENCH_serve.json] [-quick]
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"balign/internal/load"
)

type hostBlock struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu"`
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
}

type slotPoint struct {
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	OK          uint64  `json:"ok"`
	Errors      uint64  `json:"errors"`
	MeanLatNs   int64   `json:"mean_lat_ns"`
}

type saturation struct {
	Description string              `json:"description"`
	Schedule    string              `json:"schedule"`
	Corpus      int                 `json:"corpus_entries"`
	Slots       []slotPoint         `json:"slots"`
	KneeRPS     float64             `json:"knee_rps"`
	Latency     load.LatencySummary `json:"latency"`
	CacheHits   uint64              `json:"cache_hits"`
	Requests    uint64              `json:"requests"`
	Unexpected  uint64              `json:"unexpected_errors"`
}

type measuredRow struct {
	Shards      int                 `json:"shards"`
	Requests    uint64              `json:"requests"`
	AchievedRPS float64             `json:"achieved_rps"`
	SpeedupVs1  float64             `json:"speedup_vs_1"`
	CacheHits   uint64              `json:"cache_hits"`
	Latency     load.LatencySummary `json:"latency"`
	Unexpected  uint64              `json:"unexpected_errors"`
}

type doc struct {
	Description string     `json:"description"`
	Date        string     `json:"date"`
	Host        hostBlock  `json:"host"`
	Command     string     `json:"command"`
	Saturation  saturation `json:"saturation"`
	Scaling     struct {
		Note     string        `json:"note"`
		Measured []measuredRow `json:"measured"`
		Modeled  struct {
			Caveat string              `json:"caveat"`
			Rows   []*load.ModelResult `json:"rows"`
		} `json:"modeled"`
	} `json:"scaling"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

// loadMix is the measurement mix: both endpoints, all three align
// encodings, no simulate-suite (one cold suite compute costs more than an
// entire smoke-scale slot and would turn the sweep into a suite benchmark).
func loadMix() []load.MixItem {
	return []load.MixItem{
		{Kind: load.KindAlignAsm, Weight: 2},
		{Kind: load.KindAlignCFGJSON, Weight: 1},
		{Kind: load.KindAlignCFGDOT, Weight: 1},
		{Kind: load.KindSimInline, Weight: 1},
	}
}

func run(args []string) error {
	out := "BENCH_serve.json"
	quick := false
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-out":
			i++
			if i >= len(args) {
				return fmt.Errorf("-out needs a path")
			}
			out = args[i]
		case "-quick":
			quick = true
		default:
			return fmt.Errorf("unknown flag %q", args[i])
		}
	}

	work, err := os.MkdirTemp("", "benchserve-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)
	bin := filepath.Join(work, "balignd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/balignd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building balignd: %w", err)
	}

	corpus, err := load.BuildCorpus(7, 24, loadMix())
	if err != nil {
		return err
	}

	slotDur := 2 * time.Second
	sweepFrom, sweepStep, sweepTo := 2000.0, 2000.0, 18000.0
	burstRPS := 12000.0
	burstDur := 3 * time.Second
	if quick {
		slotDur = time.Second
		sweepFrom, sweepStep, sweepTo = 1000, 1000, 4000
		burstRPS, burstDur = 4000, 2*time.Second
	}

	d := &doc{
		Description: "Serving-layer benchmark: closed-loop saturation sweep against a single balignd, plus 1/2/4-shard scaling through the consistent-hash router (cmd/baload + balignd -shards). Reproduce with `make bench-serve`.",
		Date:        time.Now().Format("2006-01-02"),
		Host: hostBlock{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPU: cpuModel(),
			Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(),
		},
		Command: "go run ./scripts/benchserve",
	}

	// ---- Phase 1: single-node saturation sweep -------------------------
	fmt.Fprintln(os.Stderr, "benchserve: saturation sweep (single node)")
	sweep := load.Sweep(sweepFrom, sweepStep, sweepTo, slotDur)
	rep, err := runAgainstDaemon(work, bin, nil, sweep, corpus)
	if err != nil {
		return fmt.Errorf("saturation sweep: %w", err)
	}
	sat := saturation{
		Description: "Closed-loop sweep: each slot targets a higher request rate; achieved_rps tracks the target until the daemon saturates, then flattens at capacity (the knee). Mix: align asm/cfg-json/cfg-dot + inline simulate; cold suite computes excluded (they are a compute benchmark, not a serving one).",
		Schedule:    fmt.Sprintf("sweep %g..%g step %g, %s per slot", sweepFrom, sweepTo, sweepStep, slotDur),
		Corpus:      len(corpus.Entries),
		Latency:     rep.Latency,
		CacheHits:   rep.CacheHits,
		Requests:    rep.Requests,
		Unexpected:  rep.UnexpectedErrors,
	}
	for _, s := range rep.Slots {
		sat.Slots = append(sat.Slots, slotPoint{
			TargetRPS: s.TargetRPS, AchievedRPS: s.AchievedRPS,
			OK: s.OK, Errors: s.Errors, MeanLatNs: s.MeanLatNs,
		})
		// The knee: the highest slot whose achieved rate still reached 90%
		// of target.
		if s.AchievedRPS >= 0.9*s.TargetRPS && s.TargetRPS > sat.KneeRPS {
			sat.KneeRPS = s.TargetRPS
		}
	}
	d.Saturation = sat

	// ---- Phase 2: measured shard scaling -------------------------------
	d.Scaling.Note = "Measured rows come from this host, driven well past saturation so achieved_rps reflects capacity through the router. With cpus:1 every shard process time-slices a single core, so measured multi-shard throughput cannot exceed single-shard throughput — the rows document router overhead, not scalability. The modeled rows carry the scaling claim; on a multi-core host the measured rows converge toward them."
	burst := load.Constant(burstRPS, burstDur)
	var base float64
	for _, n := range []int{1, 2, 4} {
		fmt.Fprintf(os.Stderr, "benchserve: measured scaling, %d shard(s)\n", n)
		shardArgs := []string{"-shards", fmt.Sprint(n)}
		rep, err := runAgainstDaemon(work, bin, shardArgs, burst, corpus)
		if err != nil {
			return fmt.Errorf("measured scaling (%d shards): %w", n, err)
		}
		row := measuredRow{
			Shards: n, Requests: rep.Requests, AchievedRPS: rep.AchievedRPS,
			CacheHits: rep.CacheHits, Latency: rep.Latency, Unexpected: rep.UnexpectedErrors,
		}
		if n == 1 {
			base = rep.AchievedRPS
		}
		if base > 0 {
			row.SpeedupVs1 = round2(rep.AchievedRPS / base)
		}
		d.Scaling.Measured = append(d.Scaling.Measured, row)
	}

	// ---- Phase 3: modeled shard scaling --------------------------------
	fmt.Fprintln(os.Stderr, "benchserve: modeled scaling (discrete-event, real ring)")
	modelCorpus, err := load.BuildCorpus(3, 256, nil)
	if err != nil {
		return err
	}
	rows, err := load.ModelScaling(modelCorpus, load.Constant(20000, 3*time.Second), []int{1, 2, 4})
	if err != nil {
		return err
	}
	d.Scaling.Modeled.Caveat = "Deterministic discrete-event queueing model, NOT a measurement: per-shard single-server FIFO queues with per-shard result caches, requests routed over the real consistent-hash ring (internal/serve/router.NewRing) by the real cache keys, service times from the seeded latency model. Offered load (20k rps) overdrives capacity so makespan ratios measure compute scaling. Reproduce with `go run ./cmd/baload -mode model`."
	d.Scaling.Modeled.Rows = rows

	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchserve: wrote %s (knee %.0f rps; modeled speedup x2=%.2f x4=%.2f)\n",
		out, d.Saturation.KneeRPS, rows[1].Speedup, rows[2].Speedup)
	return nil
}

// runAgainstDaemon boots balignd (optionally sharded), runs the schedule
// against it in real mode, and drains it.
func runAgainstDaemon(work, bin string, extraArgs []string, sched load.Schedule, corpus *load.Corpus) (*load.Report, error) {
	addrFile := filepath.Join(work, fmt.Sprintf("addr-%d", time.Now().UnixNano()))
	args := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-timeout", "60s", "-drain", "30s"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(45 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}()

	addr, err := waitForFile(addrFile, 20*time.Second)
	if err != nil {
		return nil, err
	}
	// Sharded boots publish the router address only after every shard is
	// up; one extra health poll guards the single-node path too.
	base := "http://" + addr

	return load.Run(context.Background(), load.RunConfig{
		Schedule: sched,
		Corpus:   corpus,
		Doer:     load.NewHTTPDoer(base, 90*time.Second),
		Clocks:   load.NewWallClocks(),
		Workers:  64,
		Seed:     corpus.Seed,
	})
}

func waitForFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		if b, err := os.ReadFile(path); err == nil {
			if s := strings.TrimSpace(string(b)); s != "" {
				return s, nil
			}
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("timed out waiting for %s", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			name, value, ok := strings.Cut(line, ":")
			if ok && strings.TrimSpace(name) == "model name" {
				return strings.TrimSpace(value)
			}
		}
	}
	return runtime.GOARCH
}
