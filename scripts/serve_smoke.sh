#!/usr/bin/env sh
# serve_smoke.sh — end-to-end smoke test for the balignd daemon.
#
# Builds balignd, boots it on an ephemeral port, waits for /healthz, fires
# one /v1/align and one /v1/simulate request built from the committed serve
# fixtures, then delivers SIGTERM and asserts a clean graceful drain (exit
# status 0). Run from the repository root:  make serve-smoke
set -eu

GO=${GO:-go}
ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$ROOT"

WORK=$(mktemp -d)
PID=
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    [ -f "$WORK/balignd.log" ] && sed 's/^/serve-smoke:   balignd: /' "$WORK/balignd.log" >&2
    exit 1
}

"$GO" build -o "$WORK/balignd" ./cmd/balignd

"$WORK/balignd" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -timeout 30s -drain 20s >"$WORK/balignd.log" 2>&1 &
PID=$!

# Wait (up to ~10s) for the daemon to publish its bound address.
i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon never published its address"
    kill -0 "$PID" 2>/dev/null || fail "daemon exited before listening"
    sleep 0.1
done
ADDR=$(cat "$WORK/addr")
BASE="http://$ADDR"
echo "serve-smoke: balignd up at $ADDR"

curl -sSf "$BASE/healthz" >/dev/null || fail "healthz probe failed"

# Build the align request body from the committed fixtures. The asm and
# profile fields are JSON strings, so the files go through a tiny Go
# JSON-encoder rather than fragile shell quoting.
"$GO" run ./scripts/mkreq \
    -asm internal/serve/testdata/sample.asm \
    -profile internal/serve/testdata/sample.prof \
    >"$WORK/align.json"

STATUS=$(curl -sS -o "$WORK/align.out" -w '%{http_code}' \
    -X POST --data-binary @"$WORK/align.json" "$BASE/v1/align")
[ "$STATUS" = 200 ] || { cat "$WORK/align.out" >&2; fail "/v1/align returned $STATUS"; }
grep -q '"plans"' "$WORK/align.out" || fail "/v1/align response missing plans"
echo "serve-smoke: /v1/align ok"

# Same endpoint through the CFG front door: one document carries both the
# program and its profile (DOT here; JSON is auto-detected too).
"$GO" run ./scripts/mkreq -cfg testdata/cfg/go_scanobject.dot \
    >"$WORK/align_cfg.json"

STATUS=$(curl -sS -o "$WORK/align_cfg.out" -w '%{http_code}' \
    -X POST --data-binary @"$WORK/align_cfg.json" "$BASE/v1/align")
[ "$STATUS" = 200 ] || { cat "$WORK/align_cfg.out" >&2; fail "/v1/align (cfg) returned $STATUS"; }
grep -q '"plans"' "$WORK/align_cfg.out" || fail "/v1/align (cfg) response missing plans"
echo "serve-smoke: /v1/align (cfg) ok"

cat >"$WORK/simulate.json" <<'EOF'
{"programs": ["ora"], "scale": 0.02}
EOF
STATUS=$(curl -sS -o "$WORK/simulate.out" -w '%{http_code}' \
    -X POST --data-binary @"$WORK/simulate.json" "$BASE/v1/simulate")
[ "$STATUS" = 200 ] || { cat "$WORK/simulate.out" >&2; fail "/v1/simulate returned $STATUS"; }
grep -q '"report"' "$WORK/simulate.out" || fail "/v1/simulate response missing report"
echo "serve-smoke: /v1/simulate ok"

# Graceful drain: SIGTERM must produce a clean exit.
kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
PID=
[ "$EXIT" = 0 ] || fail "daemon exited $EXIT after SIGTERM"
echo "serve-smoke: PASS (clean drain)"
