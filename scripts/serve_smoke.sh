#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for the balignd daemon.
#
# Builds balignd, boots it on an ephemeral port, waits for /healthz, fires
# one /v1/align and one /v1/simulate request built from the committed serve
# fixtures, then delivers SIGTERM and asserts a clean graceful drain (exit
# status 0). Run from the repository root:  make serve-smoke
set -euo pipefail

GO=${GO:-go}
ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$ROOT"

WORK=$(mktemp -d)
. "$ROOT/scripts/daemon_lib.sh"
cleanup() {
    daemon_cleanup
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    dump_daemon_logs
    exit 1
}

"$GO" build -o "$WORK/balignd" ./cmd/balignd

boot_daemon balignd "$WORK/balignd" -timeout 30s -drain 20s
PID=$DAEMON_PID
BASE="http://$DAEMON_ADDR"

curl -sSf "$BASE/healthz" >/dev/null || fail "healthz probe failed"

# Build the align request body from the committed fixtures. The asm and
# profile fields are JSON strings, so the files go through a tiny Go
# JSON-encoder rather than fragile shell quoting.
"$GO" run ./scripts/mkreq \
    -asm internal/serve/testdata/sample.asm \
    -profile internal/serve/testdata/sample.prof \
    >"$WORK/align.json"

STATUS=$(curl -sS -o "$WORK/align.out" -w '%{http_code}' \
    -X POST --data-binary @"$WORK/align.json" "$BASE/v1/align")
[ "$STATUS" = 200 ] || { cat "$WORK/align.out" >&2; fail "/v1/align returned $STATUS"; }
grep -q '"plans"' "$WORK/align.out" || fail "/v1/align response missing plans"
echo "serve-smoke: /v1/align ok"

# Same endpoint through the CFG front door: one document carries both the
# program and its profile (DOT here; JSON is auto-detected too).
"$GO" run ./scripts/mkreq -cfg testdata/cfg/go_scanobject.dot \
    >"$WORK/align_cfg.json"

STATUS=$(curl -sS -o "$WORK/align_cfg.out" -w '%{http_code}' \
    -X POST --data-binary @"$WORK/align_cfg.json" "$BASE/v1/align")
[ "$STATUS" = 200 ] || { cat "$WORK/align_cfg.out" >&2; fail "/v1/align (cfg) returned $STATUS"; }
grep -q '"plans"' "$WORK/align_cfg.out" || fail "/v1/align (cfg) response missing plans"
echo "serve-smoke: /v1/align (cfg) ok"

cat >"$WORK/simulate.json" <<'EOF'
{"programs": ["ora"], "scale": 0.02}
EOF
STATUS=$(curl -sS -o "$WORK/simulate.out" -w '%{http_code}' \
    -X POST --data-binary @"$WORK/simulate.json" "$BASE/v1/simulate")
[ "$STATUS" = 200 ] || { cat "$WORK/simulate.out" >&2; fail "/v1/simulate returned $STATUS"; }
grep -q '"report"' "$WORK/simulate.out" || fail "/v1/simulate response missing report"
echo "serve-smoke: /v1/simulate ok"

# Graceful drain: SIGTERM must produce a clean exit.
stop_daemon "$PID"
echo "serve-smoke: PASS (clean drain)"
