// Command benchhost prints the host block the committed BENCH_*.json
// files carry, so benchmark numbers are always recorded with the machine
// shape that produced them — in particular the scheduler width
// (gomaxprocs) and the physical parallelism available (cpus), which the
// streaming-overlap numbers depend on.
//
//	$ go run ./scripts/benchhost
//	{
//	  "goos": "linux",
//	  ...
//	  "gomaxprocs": 4,
//	  "cpus": 4
//	}
//
// The Makefile bench targets print it before running, so a pasted bench
// log carries its provenance.
package main

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
)

// hostBlock mirrors the "host" object in BENCH_kernel.json and
// BENCH_stream.json, field order included.
type hostBlock struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu"`
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUs       int    `json:"cpus"`
}

func main() {
	h := hostBlock{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpuModel(),
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h); err != nil {
		os.Exit(1)
	}
}

// cpuModel reads the first "model name" line from /proc/cpuinfo; on hosts
// without one (non-Linux, restricted containers) it falls back to the
// architecture string so the field is never empty.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			name, value, ok := strings.Cut(line, ":")
			if ok && strings.TrimSpace(name) == "model name" {
				return strings.TrimSpace(value)
			}
		}
	}
	return runtime.GOARCH
}
