module balign

go 1.22
