// Package balign is a branch alignment toolkit: a Go reproduction of
// Calder & Grunwald, "Reducing Branch Costs via Branch Alignment"
// (ASPLOS-VI, 1994).
//
// The package reorders the basic blocks of a program so that frequently
// executed control-flow edges become fall-throughs, guided by an edge
// profile and an architectural cost model, exactly as the paper's link-time
// transformation does. It bundles everything the paper's evaluation needed:
//
//   - a small RISC-like IR with a textual assembler and an interpreting VM;
//   - edge profiling and profile-faithful trace generation;
//   - the FALLTHROUGH, BT/FNT and LIKELY static predictors, direct-mapped
//     and correlation (gshare) pattern history tables, branch target
//     buffers, and a return stack, with trace-driven simulators;
//   - the three alignment algorithms (Pettis-Hansen Greedy, Cost, TryN)
//     and the Table 1 cost models they consult;
//   - a dual-issue Alpha-like pipeline timing model.
//
// # Quick start
//
//	prog, _ := balign.Assemble(src)
//	prof, _, _ := balign.ProfileVM(prog, nil)
//	res, _ := balign.Align(prog, prof, balign.Options{
//	    Algorithm: balign.AlgoTryN,
//	    Model:     balign.ModelFallthrough,
//	})
//	before, _ := balign.SimulateVM(balign.ArchFallthrough, prog, prof, nil)
//	after, _ := balign.SimulateVM(balign.ArchFallthrough, res.Prog, res.Prof, nil)
package balign

import (
	"io"

	"balign/internal/asm"
	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/experiments"
	"balign/internal/ir"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/trace"
	"balign/internal/vm"
)

// Core data types, re-exported for external use.
type (
	// Program is an assembled or generated program.
	Program = ir.Program
	// Proc is one procedure of a program.
	Proc = ir.Proc
	// Block is a basic block.
	Block = ir.Block
	// Profile is a whole-program edge profile.
	Profile = profile.Profile
	// Options configures alignment (algorithm, cost model, chain order,
	// TryN window).
	Options = core.Options
	// AlignResult is an aligned program plus its transferred profile and
	// rewrite statistics.
	AlignResult = core.Result
	// SimResult accumulates a prediction simulation's penalty counts.
	SimResult = predict.Result
	// VM interprets programs.
	VM = vm.VM
	// Event is one dynamic control-transfer event.
	Event = trace.Event
	// ArchID names a simulated branch prediction architecture.
	ArchID = predict.ArchID
	// CostModel prices branches under one architecture (the paper's
	// Table 1 and its dynamic-architecture variants).
	CostModel = cost.Model
	// Attributes are the paper's Table 2 per-program measurements.
	Attributes = metrics.Attributes
)

// Alignment algorithms.
const (
	// AlgoOriginal performs no reordering.
	AlgoOriginal = core.AlgoOriginal
	// AlgoGreedy is Pettis & Hansen's bottom-up chaining.
	AlgoGreedy = core.AlgoGreedy
	// AlgoCost adds the architecture cost model to every link decision.
	AlgoCost = core.AlgoCost
	// AlgoTryN is the paper's Try15 windowed exhaustive search.
	AlgoTryN = core.AlgoTryN
	// AlgoExtTSP maximizes the distance-weighted ExtTSP objective by
	// greedy chain merging with bounded splitting (Newell & Pupyrev).
	AlgoExtTSP = core.AlgoExtTSP
)

// Chain layout orders.
const (
	// OrderHottest lays chains hottest-first.
	OrderHottest = core.OrderHottest
	// OrderBTFNT uses the Pettis-Hansen BT/FNT precedence relation.
	OrderBTFNT = core.OrderBTFNT
)

// Simulated architectures (paper Tables 3 and 4, then the extensions).
const (
	ArchFallthrough = predict.ArchFallthrough
	ArchBTFNT       = predict.ArchBTFNT
	ArchLikely      = predict.ArchLikely
	ArchPHTDirect   = predict.ArchPHTDirect
	ArchPHTGshare   = predict.ArchPHTGshare
	ArchBTB64       = predict.ArchBTB64
	ArchBTB256      = predict.ArchBTB256
	ArchPHTLocal    = predict.ArchPHTLocal
	ArchTAGE        = predict.ArchTAGE
	ArchPerceptron  = predict.ArchPerceptron
)

// Alignment cost models (see internal/cost for the cycle accounting).
var (
	ModelFallthrough CostModel = cost.FallthroughModel{}
	ModelBTFNT       CostModel = cost.BTFNTModel{}
	ModelLikely      CostModel = cost.LikelyModel{}
	ModelPHT         CostModel = cost.PHTModel{}
	ModelBTB         CostModel = cost.BTBModel{}
	ModelTagged      CostModel = cost.TaggedModel{}
)

// Assemble parses assembly source into a validated program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// MustAssemble is Assemble that panics on error.
func MustAssemble(src string) *Program { return asm.MustAssemble(src) }

// ModelFor returns the alignment cost model matching a simulated
// architecture.
func ModelFor(arch ArchID) (CostModel, error) { return cost.ForArch(arch) }

// ProfileVM executes the program on the VM (setup, which may be nil,
// initializes registers and memory first) and returns the edge profile and
// the number of instructions executed.
func ProfileVM(prog *Program, setup func(*VM)) (*Profile, uint64, error) {
	machine := vm.New(prog)
	if setup != nil {
		setup(machine)
	}
	col := profile.NewCollector(prog)
	res, err := machine.Run(nil, col)
	if err != nil {
		return nil, 0, err
	}
	pf := col.Profile()
	pf.Instrs = res.Instrs
	return pf, res.Instrs, nil
}

// Align reorders every procedure of prog guided by the profile. The input
// program is not modified; the result carries the rewritten program, the
// profile transferred onto its new block IDs, and rewrite statistics.
func Align(prog *Program, prof *Profile, opts Options) (*AlignResult, error) {
	return core.AlignProgram(prog, prof, opts)
}

// SimulateVM executes prog on the VM while feeding its control-transfer
// events to the named prediction architecture, returning the simulation
// result and the instruction count. prof is required by the LIKELY
// architecture (per-site hint bits) and ignored by the others.
func SimulateVM(arch ArchID, prog *Program, prof *Profile, setup func(*VM)) (SimResult, uint64, error) {
	sim, err := predict.NewSimulator(arch, prog, prof)
	if err != nil {
		return SimResult{}, 0, err
	}
	machine := vm.New(prog)
	if setup != nil {
		setup(machine)
	}
	res, err := machine.Run(sim, nil)
	if err != nil {
		return SimResult{}, 0, err
	}
	return sim.Result(), res.Instrs, nil
}

// BEP returns a simulation's branch execution penalty in cycles using the
// paper's penalties (misfetch 1 cycle, mispredict 4 cycles).
func BEP(r SimResult) uint64 { return metrics.BEPFromResult(r) }

// RelativeCPI is the paper's metric: (aligned instructions + aligned BEP) /
// original instructions.
func RelativeCPI(origInstrs, alignedInstrs, bep uint64) float64 {
	return metrics.RelativeCPI(origInstrs, alignedInstrs, bep)
}

// FallthroughPct returns the percentage of executed conditional branches
// that fell through in a simulation.
func FallthroughPct(r SimResult) float64 { return metrics.FallthroughPct(r) }

// LayoutCost prices a program's current layout under a cost model: the
// expected branch cycles given the profile's edge weights. Comparing the
// value before and after Align quantifies an alignment in isolation from
// simulation noise.
func LayoutCost(prog *Program, prof *Profile, m CostModel) float64 {
	return cost.ProgramCost(prog, prof, m)
}

// UnrollOptions configures Unroll; see core.UnrollOptions.
type UnrollOptions = core.UnrollOptions

// UnrollStats reports what Unroll did.
type UnrollStats = core.UnrollStats

// DefaultUnrollOptions returns the defaults (4-way, hot single-block loops).
func DefaultUnrollOptions() UnrollOptions { return core.DefaultUnrollOptions() }

// Unroll duplicates hot single-block loops the way the paper sketches for
// ALVINN's input_hidden: Factor copies of the body, the first Factor-1
// exiting through inverted conditionals. Returns the transformed program
// with the profile mapped onto it. Compose with Align for the full effect.
func Unroll(prog *Program, prof *Profile, opts UnrollOptions) (*Program, *Profile, UnrollStats, error) {
	return core.UnrollLoops(prog, prof, opts)
}

// ReorderProcedures lays procedures out hottest-first (the inter-procedural
// counterpart of chain ordering). Call targets are remapped; the profile,
// which is keyed by procedure name, remains valid for the result.
func ReorderProcedures(prog *Program, prof *Profile) (*Program, error) {
	return core.ReorderProcs(prog, prof)
}

// ReorderProceduresExtTSP orders whole procedures by the ExtTSP objective
// over the call graph, with I-cache-scale distance windows, so hot
// caller/callee pairs land close. Call targets are remapped; the profile
// remains valid for the result.
func ReorderProceduresExtTSP(prog *Program, prof *Profile) (*Program, error) {
	return core.ReorderProcsExtTSP(prog, prof)
}

// Summary is one evaluation-grid cell — a (program, architecture, algorithm)
// measurement — in exact, reducible form. See metrics.EncodeSummaries for
// the byte-stable text encoding.
type Summary = metrics.Summary

// SuiteOptions configures RunSuite.
type SuiteOptions struct {
	// Scale multiplies workload trace budgets (0 means 1.0; the repo's
	// tests use small fractions).
	Scale float64
	// Seed perturbs synthetic workload structure and walks.
	Seed int64
	// Window is the TryN group size; 0 means the paper's 15.
	Window int
	// MaxCombos caps TryN window enumeration; 0 means the default.
	MaxCombos int
	// Programs restricts the suite (nil = all 24 programs).
	Programs []string
	// Archs selects the simulated architectures (nil = all seven).
	Archs []ArchID
	// Parallelism bounds concurrently executing experiment shards:
	// 0 = runtime.GOMAXPROCS(0), 1 = the serial oracle path. Output is
	// byte-identical at every setting.
	Parallelism int
	// Verbose enables per-shard progress logging to Log.
	Verbose bool
	// Log receives progress output; nil discards it.
	Log io.Writer
	// Kernel selects the simulation executor: "flat" (default, the
	// compiled struct-of-arrays kernel) or "ref" (the reference
	// simulators). Output is byte-identical either way.
	Kernel string
	// Stream selects the trace lifecycle: "on" (default) generates each
	// variant's stream once and broadcasts it to all architectures over a
	// bounded buffer ring; "off" records whole traces and replays them per
	// cell. Output is byte-identical either way.
	Stream string
}

// RunSuite evaluates the {program x architecture x algorithm} grid on the
// parallel experiment engine and returns one Summary per cell in canonical
// order (suite program order, then architecture, then algorithm). Runs at
// different Parallelism settings return byte-identical results; the engine's
// differential oracle test enforces this.
func RunSuite(opts SuiteOptions) ([]Summary, error) {
	archs := opts.Archs
	if len(archs) == 0 {
		archs = predict.AllArchs()
	}
	cfg := experiments.Config{
		Scale: opts.Scale, Seed: opts.Seed,
		Window: opts.Window, MaxCombos: opts.MaxCombos,
		Programs:    opts.Programs,
		Parallelism: opts.Parallelism,
		Verbose:     opts.Verbose, Log: opts.Log,
		Kernel: opts.Kernel, Stream: opts.Stream,
	}
	return experiments.Summaries(cfg, archs)
}

// EncodeSummaries renders summaries in a stable line-oriented text format;
// two runs agree exactly iff their encodings are byte-identical.
func EncodeSummaries(s []Summary) string { return metrics.EncodeSummaries(s) }
