package balign_test

import (
	"fmt"

	"balign"
)

// The canonical flow: assemble, profile, align, compare.
func Example() {
	prog := balign.MustAssemble(`
mem 16
proc main
    li r1, 1000
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	prof, origInstrs, err := balign.ProfileVM(prog, nil)
	if err != nil {
		panic(err)
	}
	res, err := balign.Align(prog, prof, balign.Options{
		Algorithm: balign.AlgoCost,
		Model:     balign.ModelFallthrough,
	})
	if err != nil {
		panic(err)
	}
	before, _, _ := balign.SimulateVM(balign.ArchFallthrough, prog, prof, nil)
	after, n, _ := balign.SimulateVM(balign.ArchFallthrough, res.Prog, res.Prof, nil)
	fmt.Printf("CPI %.2f -> %.2f\n",
		balign.RelativeCPI(origInstrs, origInstrs, balign.BEP(before)),
		balign.RelativeCPI(origInstrs, n, balign.BEP(after)))
	// Output: CPI 2.33 -> 1.67
}

// LayoutCost prices a layout without running a simulation: the paper's
// Figure 2 arithmetic (5 cycles per iteration before the loop trick, 3
// after) falls straight out of the cost model.
func ExampleLayoutCost() {
	prog := balign.MustAssemble(`
proc main
    li r1, 100
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	prof, _, err := balign.ProfileVM(prog, nil)
	if err != nil {
		panic(err)
	}
	res, err := balign.Align(prog, prof, balign.Options{
		Algorithm: balign.AlgoCost, Model: balign.ModelFallthrough,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("branch cycles: %.0f -> %.0f\n",
		balign.LayoutCost(prog, prof, balign.ModelFallthrough),
		balign.LayoutCost(res.Prog, res.Prof, balign.ModelFallthrough))
	// Output: branch cycles: 496 -> 302
}

// ModelFor maps a simulated architecture to the cost model the alignment
// algorithms should optimize for.
func ExampleModelFor() {
	m, err := balign.ModelFor(balign.ArchBTB256)
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Name())
	// Output: btb
}
