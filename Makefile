GO ?= go

.PHONY: build test verify bench bench-suite tables report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full correctness gate: go vet static analysis over every
# package (including internal/obs and the instrumented engine) plus the
# entire test suite — the parallel-vs-serial oracle, the telemetry-on
# determinism oracle and the vm-vs-walker differential included — under
# the race detector.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# report runs a small suite with run telemetry enabled, emitting a JSON
# run report (per-shard spans, engine stats, trace-cache stats, the
# summary grid), then sanity-checks the report schema via the dedicated
# test in cmd/baexp.
report:
	$(GO) run ./cmd/baexp -scale 0.1 -programs ora,compress -parallel 0 -report out.json suite
	$(GO) test -run TestRunReportSchema ./cmd/baexp

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-suite compares the experiment engine's serial oracle path against
# the 8-way sharded run on the same grid.
bench-suite:
	$(GO) test -bench 'BenchmarkSuite(Serial|Parallel)' -run '^$$' .

tables:
	$(GO) run ./cmd/baexp -scale 0.2 all
