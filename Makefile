GO ?= go

.PHONY: build test verify bench bench-suite tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full correctness gate: static analysis plus the entire test
# suite (including the parallel-vs-serial oracle and the vm-vs-walker
# differential) under the race detector.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-suite compares the experiment engine's serial oracle path against
# the 8-way sharded run on the same grid.
bench-suite:
	$(GO) test -bench 'BenchmarkSuite(Serial|Parallel)' -run '^$$' .

tables:
	$(GO) run ./cmd/baexp -scale 0.2 all
