GO ?= go

.PHONY: build test verify ci fuzz-smoke bench bench-suite bench-kernel tables report

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full correctness gate: go vet static analysis over every
# package (including internal/obs and the instrumented engine) plus the
# entire test suite — the parallel-vs-serial oracle, the telemetry-on
# determinism oracle and the vm-vs-walker differential included — under
# the race detector.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# ci is the continuous-integration gate (mirrored by the GitHub Actions
# workflow): static analysis, a full build, the race-enabled test suite,
# and a short smoke pass over each native fuzz target.
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke

# fuzz-smoke runs each fuzz target briefly — long enough to execute the
# committed seed corpora plus a burst of new inputs, short enough for CI.
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadFile -fuzztime=10s -run '^$$' ./internal/trace
	$(GO) test -fuzz=FuzzAssemble -fuzztime=10s -run '^$$' ./internal/asm

# report runs a small suite with run telemetry enabled, emitting a JSON
# run report (per-shard spans, engine stats, trace-cache stats, the
# summary grid), then sanity-checks the report schema via the dedicated
# test in cmd/baexp.
report:
	$(GO) run ./cmd/baexp -scale 0.1 -programs ora,compress -parallel 0 -report out.json suite
	$(GO) test -run TestRunReportSchema ./cmd/baexp

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-suite compares the experiment engine's serial oracle path against
# the 8-way sharded run on the same grid.
bench-suite:
	$(GO) test -bench 'BenchmarkSuite(Serial|Parallel)' -run '^$$' .

# bench-kernel compares the reference simulators against the compiled flat
# kernel, both end-to-end (full suite runs) and on the simulation grid in
# isolation (pre-recorded traces). These are the BENCH_kernel.json numbers.
bench-kernel:
	$(GO) test -bench 'Benchmark(SuiteKernel|SimulateGrid)' -benchtime 3x -run '^$$' .

tables:
	$(GO) run ./cmd/baexp -scale 0.2 all
