GO ?= go

.PHONY: build test verify ci staticcheck govulncheck fuzz-smoke serve-smoke load-smoke suite-smoke benchhost bench bench-suite bench-kernel bench-stream bench-serve tables report

# Pinned external analyzer versions; CI installs exactly these, local runs
# use whatever is on PATH (or skip with a notice).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the full correctness gate: go vet static analysis over every
# package (including internal/obs and the instrumented engine) plus the
# entire test suite — the parallel-vs-serial oracle, the telemetry-on
# determinism oracle and the vm-vs-walker differential included — under
# the race detector.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# ci is the continuous-integration gate (mirrored by the GitHub Actions
# workflow): static analysis (vet always; staticcheck and govulncheck when
# installed), a full build, the race-enabled test suite, and a short smoke
# pass over each native fuzz target.
ci:
	$(GO) vet ./...
	$(MAKE) staticcheck
	$(MAKE) govulncheck
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke
	$(MAKE) serve-smoke
	$(MAKE) load-smoke
	$(MAKE) suite-smoke

# staticcheck / govulncheck run the pinned external analyzers when present
# on PATH and skip with a notice otherwise, so `make ci` works in offline
# containers; the GitHub Actions workflow installs the pinned versions and
# therefore always runs them.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# fuzz-smoke runs each fuzz target briefly — long enough to execute the
# committed seed corpora plus a burst of new inputs, short enough for CI —
# plus a race-enabled pass over the streaming broadcast stage (producer,
# ring and consumer goroutines under contention).
fuzz-smoke:
	$(GO) test -fuzz=FuzzReadFile -fuzztime=10s -run '^$$' ./internal/trace
	$(GO) test -fuzz=FuzzAssemble -fuzztime=10s -run '^$$' ./internal/asm
	$(GO) test -fuzz=FuzzAlignHandler -fuzztime=10s -run '^$$' ./internal/serve
	$(GO) test -fuzz=FuzzExtTSPSemantics -fuzztime=10s -run '^$$' ./internal/core
	$(GO) test -fuzz=FuzzImportCFG -fuzztime=10s -run '^$$' ./internal/cfgio
	$(GO) test -fuzz=FuzzImportDOT -fuzztime=10s -run '^$$' ./internal/cfgio
	$(GO) test -race -run 'TestBroadcast|TestSimulateStream' ./internal/sim

# serve-smoke boots a real balignd process on an ephemeral port, drives
# /healthz, /v1/align and /v1/simulate over HTTP, then SIGTERMs it and
# asserts a clean graceful drain. Complements the in-process httptest
# coverage in internal/serve with a real listener + signal path.
serve-smoke:
	bash scripts/serve_smoke.sh

# load-smoke is the sharded-serving gate. The race leg runs the router
# correctness suite with the scheduler forced wide: shard affinity (same
# cache key -> same shard for N in 1,2,4), byte-identity of routed vs
# direct responses across all five request encodings, cache-hit survival
# through sharding, and the drain/fault leg (SIGTERM a backend mid-run,
# in-flight completes, one retry succeeds, zero dropped). The script leg
# boots the real process tree (router + 2 shard processes), drives a short
# closed-loop baload run and asserts clean drain. See DESIGN.md §16.
load-smoke:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/serve/router
	GOMAXPROCS=4 $(GO) test -race -run 'TestVirtualReport' ./internal/load
	bash scripts/load_smoke.sh

# suite-smoke reruns the multi-core determinism oracles with the Go
# scheduler forced wide (GOMAXPROCS=4) under the race detector: the
# producer, per-architecture consumers and intra-variant shard goroutines
# genuinely interleave even on smaller CI hosts, and any ordering bug
# surfaces as a byte diff or a race report. The extended-families leg runs
# the adversarial workloads (phase-flipping branches included) and an
# imported CFG document across the stream on/off matrix; the tagged leg
# pins the TAGE/perceptron grid byte-identical across stream on/off, both
# kernel modes and shard counts; the cfgio leg is the importer/exporter
# round-trip oracle on the same machinery.
suite-smoke:
	GOMAXPROCS=4 $(GO) test -race -run 'TestDeterminismAcrossGOMAXPROCS|TestShardedRunActuallyShards' ./internal/experiments
	GOMAXPROCS=4 $(GO) test -race -run 'TestExtendedFamiliesStreamParity' ./internal/experiments
	GOMAXPROCS=4 $(GO) test -race -run 'TestTaggedPredictorStreamParity' ./internal/experiments
	GOMAXPROCS=4 $(GO) test -race -run 'TestImportExportRoundTripOracle|TestEmptyFallBlockRoundTrips' ./internal/cfgio
	GOMAXPROCS=4 $(GO) test -race -run 'TestShardMerge' ./internal/kernel

# benchhost prints the host block (goos/goarch/cpu/go/gomaxprocs/cpus)
# that the committed BENCH_*.json files record; the bench targets emit it
# first so pasted logs carry their provenance.
benchhost:
	@$(GO) run ./scripts/benchhost

# report runs a small suite with run telemetry enabled, emitting a JSON
# run report (per-shard spans, engine stats, trace-cache stats, the
# summary grid), then sanity-checks the report schema via the dedicated
# test in cmd/baexp.
report:
	$(GO) run ./cmd/baexp -scale 0.1 -programs ora,compress -parallel 0 -report out.json suite
	$(GO) test -run TestRunReportSchema ./cmd/baexp

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-suite compares the experiment engine's serial oracle path against
# the 8-way sharded run on the same grid.
bench-suite:
	$(GO) test -bench 'BenchmarkSuite(Serial|Parallel)' -run '^$$' .

# bench-kernel compares the reference simulators against the compiled flat
# kernel, both end-to-end (full suite runs) and on the simulation grid in
# isolation (pre-recorded traces). These are the BENCH_kernel.json numbers.
bench-kernel:
	@$(MAKE) --no-print-directory benchhost
	$(GO) test -bench 'Benchmark(SuiteKernel|SimulateGrid)' -benchtime 3x -run '^$$' .

# bench-stream compares the recorded trace lifecycle (-stream=off) against
# the streaming broadcast pipeline (-stream=on), end-to-end and on walker
# generation in isolation. These are the BENCH_stream.json numbers.
bench-stream:
	@$(MAKE) --no-print-directory benchhost
	$(GO) test -bench 'Benchmark(SuiteStream|WalkerGenerate)' -benchtime 3x -run '^$$' .

# bench-serve regenerates BENCH_serve.json: the single-node saturation
# sweep plus measured and modeled 1/2/4-shard scaling through the
# consistent-hash router. See scripts/benchserve for what each phase means
# and how the 1-CPU caveats are recorded.
bench-serve:
	$(GO) run ./scripts/benchserve

tables:
	$(GO) run ./cmd/baexp -scale 0.2 all
