package experiments

import (
	"fmt"
	"runtime"
	"testing"

	"balign/internal/metrics"
	"balign/internal/obs"
	"balign/internal/predict"
	"balign/internal/sim"
)

// TestDeterminismAcrossGOMAXPROCS is the parallel-determinism oracle: the
// whole-grid summary encoding must be byte-identical at GOMAXPROCS 1, 2 and
// 8, in both stream modes, in both kernel modes, and at every intra-variant
// shard count. Run under -race (make ci does) the GOMAXPROCS>1 legs also
// make the scheduler interleave producer, consumer and shard goroutines for
// real, so ordering bugs surface as either a diff or a race report.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	programs := []string{"ora", "compress"}
	archs := predict.AllArchs()

	run := func(label string, mutate func(*Config)) string {
		t.Helper()
		cfg := fastCfg(programs...)
		mutate(&cfg)
		s, err := Summaries(cfg, archs)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if want := len(programs) * len(archs) * len(Algos()); len(s) != want {
			t.Fatalf("%s: %d summaries, want %d", label, len(s), want)
		}
		return metrics.EncodeSummaries(s)
	}

	want := run("baseline", func(cfg *Config) { cfg.Parallelism = 1 })

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, gmp := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(gmp)
		for _, stream := range []string{"on", "off"} {
			for _, kern := range []string{"flat", "ref"} {
				label := fmt.Sprintf("gomaxprocs=%d stream=%s kernel=%s", gmp, stream, kern)
				got := run(label, func(cfg *Config) {
					cfg.Stream, cfg.Kernel = stream, kern
				})
				if got != want {
					t.Errorf("%s diverges from serial oracle:\n%s", label, firstDiff(want, got))
				}
			}
		}
		// Intra-variant sharding legs: flat streaming with explicit shard
		// counts and with a derived split from a worker budget.
		for _, shards := range []int{2, 3} {
			label := fmt.Sprintf("gomaxprocs=%d shards=%d", gmp, shards)
			got := run(label, func(cfg *Config) { cfg.Shards = shards })
			if got != want {
				t.Errorf("%s diverges from serial oracle:\n%s", label, firstDiff(want, got))
			}
		}
		label := fmt.Sprintf("gomaxprocs=%d workers=24", gmp)
		got := run(label, func(cfg *Config) { cfg.Workers = 24 })
		if got != want {
			t.Errorf("%s diverges from serial oracle:\n%s", label, firstDiff(want, got))
		}
	}
}

// TestShardedRunActuallyShards guards the oracle above against a silently
// unsharded pass: with Shards set, the executor must report the shard count
// and a nonzero forward pass, and the stream section must show the arena
// recycling ring buffers across variants.
func TestShardedRunActuallyShards(t *testing.T) {
	cfg := fastCfg("ora", "compress")
	cfg.Shards = 2
	cfg.Obs = obs.New("shard-oracle")
	if _, err := Summaries(cfg, predict.AllArchs()); err != nil {
		t.Fatal(err)
	}
	rep := cfg.Obs.Report()
	xs, ok := rep.Sections["executor"].(sim.ExecStats)
	if !ok {
		t.Fatalf("executor section missing or wrong type: %#v", rep.Sections["executor"])
	}
	if xs.Shards != 2 {
		t.Errorf("executor ran with %d shards, want 2", xs.Shards)
	}
	if xs.ForwardEvents == 0 || rep.Counters["sim.exec.forward_events"] == 0 {
		t.Error("sharded run recorded no forwarded events")
	}
	ss, ok := rep.Sections["stream"].(sim.StreamStats)
	if !ok {
		t.Fatalf("stream section missing or wrong type: %#v", rep.Sections["stream"])
	}
	if ss.ArenaReuses == 0 {
		t.Error("multi-variant streamed run reused no arena buffers")
	}
	if ss.GenNs == 0 {
		t.Error("streamed run recorded no generation time")
	}
}
