package experiments

import (
	"testing"

	"balign/internal/predict"
)

// TestExtTSPBeatsCostOnDynamicArchs is the PR's acceptance gate: across a
// representative six-program slice of the suite, the ExtTSP layout's total
// branch-event penalty must beat the Cost layout's on every
// dynamic-predictor architecture (both PHTs, both BTBs, and the PAg-style
// local PHT). The distance-weighted objective needs no per-architecture
// model to get there: its single layout reduces taken transfers enough to
// win everywhere the predictor absorbs most mispredicts.
func TestExtTSPBeatsCostOnDynamicArchs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-program evaluation grid")
	}
	archs := append(predict.DynamicArchs(), predict.ArchPHTLocal)
	cfg := Config{
		Scale:    0.3,
		Programs: []string{"ora", "compress", "espresso", "eqntott", "doduc", "li"},
	}
	summaries, err := Summaries(cfg, archs)
	if err != nil {
		t.Fatal(err)
	}
	total := map[string]map[string]uint64{}
	for _, r := range summaries {
		if total[r.Arch] == nil {
			total[r.Arch] = map[string]uint64{}
		}
		total[r.Arch][r.Algo] += r.BEP
	}
	for _, a := range archs {
		m := total[string(a)]
		if m == nil || m["exttsp"] == 0 || m["cost"] == 0 {
			t.Fatalf("%s: missing exttsp/cost rows in grid totals %v", a, m)
		}
		if m["exttsp"] >= m["cost"] {
			t.Errorf("%s: exttsp total BEP %d is not below cost %d", a, m["exttsp"], m["cost"])
		}
	}
}
