package experiments

import (
	"strings"
	"testing"
)

func TestPenaltySweep(t *testing.T) {
	rows, err := PenaltySweep("compress", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// The gain must grow (or at least not shrink) with the mispredict
	// penalty — the paper's wide-issue argument.
	for i := 1; i < len(rows); i++ {
		if rows[i].GainPct < rows[i-1].GainPct-0.5 {
			t.Errorf("gain shrank with penalty: %v", rows)
		}
	}
	if rows[len(rows)-1].GainPct <= 0 {
		t.Errorf("no alignment gain at the largest penalty: %v", rows)
	}
	if s := FormatPenaltySweep("compress", rows); !strings.Contains(s, "mispredict") {
		t.Errorf("format malformed: %s", s)
	}
}

func TestCrossTraining(t *testing.T) {
	rows, err := CrossTraining([]string{"compress"}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Alignment trained on input 0 must still beat the original layout on
	// input 1 (run structure dominates data specifics for these kernels).
	if r.CPICrossIn >= r.CPIOrig {
		t.Errorf("cross-input alignment did not help: orig %.3f, cross %.3f", r.CPIOrig, r.CPICrossIn)
	}
	// And it should be close to the same-input result.
	if r.CPICrossIn > r.CPISameInput*1.15 {
		t.Errorf("cross-input CPI %.3f much worse than same-input %.3f", r.CPICrossIn, r.CPISameInput)
	}
	if s := FormatCrossTraining(rows); !strings.Contains(s, "compress") {
		t.Errorf("format malformed: %s", s)
	}
}

func TestUnrollStudy(t *testing.T) {
	rows, err := UnrollStudy([]string{"alvinn"}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.LoopsHandled == 0 {
		t.Fatal("no loops unrolled in alvinn")
	}
	if r.CPIAligned >= r.CPIOrig {
		t.Errorf("alignment alone did not help: %.3f vs %.3f", r.CPIAligned, r.CPIOrig)
	}
	// Unrolling should not be worse than plain alignment on the loop-bound
	// kernel (the paper expects additional benefit).
	if r.CPIUnrolled > r.CPIAligned+0.01 {
		t.Errorf("unroll+align (%.3f) worse than align alone (%.3f)", r.CPIUnrolled, r.CPIAligned)
	}
	if s := FormatUnrollStudy(rows); !strings.Contains(s, "Unroll+Align") {
		t.Errorf("format malformed: %s", s)
	}
}

func TestICacheStudy(t *testing.T) {
	// This study needs a long enough walk to get past cold misses — a
	// 100k-instruction walk of a flat-profile program barely touches the
	// 8 KB cache in any layout and the MPKI ratio is pure noise.
	cfg := Config{Scale: 0.5, Window: 6, MaxCombos: 1 << 12}
	rows, err := ICacheStudy([]string{"gcc"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.MPKIOrig <= 0 {
		t.Fatal("no I-cache misses measured on gcc")
	}
	// Alignment is roughly I-cache neutral at the paper's cache size (the
	// paper only remarks locality "may also be improved").
	if r.MPKITry > r.MPKIOrig*1.3+1.0 {
		t.Errorf("Try15 MPKI %.2f much worse than orig %.2f", r.MPKITry, r.MPKIOrig)
	}
	if s := FormatICacheStudy(rows); !strings.Contains(s, "MPKI") {
		t.Errorf("format malformed: %s", s)
	}
}

func TestHintStudy(t *testing.T) {
	rows, err := HintStudy([]string{"espresso", "gcc"}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper's reason for choosing profiles: they are much more
		// accurate than compile-time estimates.
		if r.ProfileAcc < r.HeuristicAcc {
			t.Errorf("%s: profile hints (%.3f) less accurate than heuristics (%.3f)",
				r.Program, r.ProfileAcc, r.HeuristicAcc)
		}
		if r.ProfileAcc < 0.7 {
			t.Errorf("%s: profile hint accuracy %.3f implausibly low", r.Program, r.ProfileAcc)
		}
		if r.ProfileBEP > r.HeuristicBEP {
			t.Errorf("%s: profile BEP %d worse than heuristic %d", r.Program, r.ProfileBEP, r.HeuristicBEP)
		}
	}
	if s := FormatHintStudy(rows); !strings.Contains(s, "profile acc") {
		t.Errorf("format malformed: %s", s)
	}
}

func TestSeedSweep(t *testing.T) {
	rows, err := SeedSweep([]string{"ora"}, 4, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Seeds != 4 {
		t.Errorf("Seeds = %d, want 4", r.Seeds)
	}
	if r.MeanGainPct <= 0 {
		t.Errorf("mean gain %.2f%%, want positive across seeds", r.MeanGainPct)
	}
	if r.MinGainPct > r.MeanGainPct || r.MaxGainPct < r.MeanGainPct {
		t.Errorf("min/mean/max inconsistent: %.2f/%.2f/%.2f", r.MinGainPct, r.MeanGainPct, r.MaxGainPct)
	}
	if s := FormatSeedSweep(rows); !strings.Contains(s, "mean gain") {
		t.Errorf("format malformed: %s", s)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if s < 2.1 || s > 2.2 { // sample stdev of this classic set is ~2.138
		t.Errorf("std = %v, want ~2.14", s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty meanStd should be zero")
	}
	if m, s := meanStd([]float64{3}); m != 3 || s != 0 {
		t.Error("single-element meanStd wrong")
	}
}
