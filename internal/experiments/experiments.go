// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (cost model), Table 2 (program attributes), Table 3
// (static architectures), Table 4 (dynamic architectures), Figures 1-3
// (worked examples) and Figure 4 (total execution time on the Alpha-like
// pipeline model), plus the §6.1 ablations (chain ordering, TryN window).
package experiments

import (
	"fmt"

	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/ir"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/trace"
	"balign/internal/workload"
)

// Algo names the three program versions every table compares.
type Algo string

// The paper's three columns per architecture.
const (
	AlgoOrig   Algo = "orig"
	AlgoGreedy Algo = "greedy"
	AlgoTry    Algo = "try15"
)

// Algos returns the column order.
func Algos() []Algo { return []Algo{AlgoOrig, AlgoGreedy, AlgoTry} }

// Config scopes an experiment run.
type Config struct {
	// Scale multiplies workload trace budgets (1.0 = default ~1.5-2M
	// instruction traces; the paper's tables used billions — see DESIGN.md
	// for the scaling argument).
	Scale float64
	// Seed perturbs synthetic workload structure and walks.
	Seed int64
	// Window is the TryN group size; 0 means the paper's 15.
	Window int
	// MaxCombos caps TryN window enumeration; 0 means the default.
	MaxCombos int
	// Programs restricts the suite (nil = all 24 programs).
	Programs []string
}

func (c Config) window() int {
	if c.Window <= 0 {
		return core.DefaultWindow
	}
	return c.Window
}

func (c Config) workloads() ([]*workload.Workload, error) {
	wcfg := workload.Config{Scale: c.Scale, Seed: c.Seed}
	if len(c.Programs) == 0 {
		return workload.Suite(wcfg)
	}
	var out []*workload.Workload
	for _, name := range c.Programs {
		w, err := workload.ByName(name, wcfg)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// Cell is one (architecture, algorithm) measurement.
type Cell struct {
	// CPI is the paper's relative cycles-per-instruction metric.
	CPI float64
	// FallPct is the percentage of executed conditional branches that fell
	// through.
	FallPct float64
	// CondAccuracy is the conditional branch prediction accuracy.
	CondAccuracy float64
}

// ProgramResult is the full evaluation matrix of one program.
type ProgramResult struct {
	Program string
	Class   workload.Class
	Cells   map[predict.ArchID]map[Algo]Cell
	// Stats reports what the TryN rewrite did (per the FALLTHROUGH-model
	// alignment, the most aggressive).
	TryStats core.RewriteStats
}

// variant is one aligned (or original) version of a program.
type variant struct {
	prog *ir.Program
	prof *profile.Profile
}

// trynModelFor maps an architecture to the alignment cost model and chain
// order the paper uses for its Try15 columns.
func trynModelFor(arch predict.ArchID) (cost.Model, core.ChainOrder) {
	m, err := cost.ForArch(arch)
	if err != nil {
		panic(err)
	}
	order := core.OrderHottest
	if arch == predict.ArchBTFNT {
		order = core.OrderBTFNT
	}
	return m, order
}

// variantKeyForTry groups architectures sharing one TryN alignment (both
// PHTs share the PHT model; both BTBs the BTB model).
func variantKeyForTry(arch predict.ArchID) string {
	switch arch {
	case predict.ArchPHTDirect, predict.ArchPHTGshare:
		return "try-pht"
	case predict.ArchBTB64, predict.ArchBTB256:
		return "try-btb"
	default:
		return "try-" + string(arch)
	}
}

// variantKeyForGreedy: the paper lays Greedy chains hottest-first for every
// simulation except BT/FNT, which uses the Pettis-Hansen precedence order.
func variantKeyForGreedy(arch predict.ArchID) string {
	if arch == predict.ArchBTFNT {
		return "greedy-btfnt"
	}
	return "greedy"
}

// Evaluate runs the complete evaluation matrix for one workload over the
// given architectures.
func Evaluate(w *workload.Workload, archs []predict.ArchID, cfg Config) (*ProgramResult, error) {
	pf, origInstrs, err := w.CollectProfile()
	if err != nil {
		return nil, err
	}

	variants := map[string]*variant{
		"orig": {prog: w.Prog, prof: pf},
	}
	buildGreedy := func(order core.ChainOrder) (*variant, error) {
		res, err := core.AlignProgram(w.Prog, pf, core.Options{
			Algorithm: core.AlgoGreedy, Order: order,
		})
		if err != nil {
			return nil, err
		}
		return &variant{prog: res.Prog, prof: res.Prof}, nil
	}

	res := &ProgramResult{
		Program: w.Name,
		Class:   w.Class,
		Cells:   make(map[predict.ArchID]map[Algo]Cell),
	}

	// Which variants does this arch set need?
	type simSpec struct {
		arch predict.ArchID
		algo Algo
	}
	needed := map[string][]simSpec{}
	for _, arch := range archs {
		needed["orig"] = append(needed["orig"], simSpec{arch, AlgoOrig})
		gk := variantKeyForGreedy(arch)
		needed[gk] = append(needed[gk], simSpec{arch, AlgoGreedy})
		tk := variantKeyForTry(arch)
		needed[tk] = append(needed[tk], simSpec{arch, AlgoTry})
	}

	for key := range needed {
		if variants[key] != nil {
			continue
		}
		switch key {
		case "greedy":
			v, err := buildGreedy(core.OrderHottest)
			if err != nil {
				return nil, err
			}
			variants[key] = v
		case "greedy-btfnt":
			v, err := buildGreedy(core.OrderBTFNT)
			if err != nil {
				return nil, err
			}
			variants[key] = v
		default:
			// try-* variants: find an arch that maps here to pick the model.
			var arch predict.ArchID
			for _, spec := range needed[key] {
				arch = spec.arch
				break
			}
			m, order := trynModelFor(arch)
			ares, err := core.AlignProgram(w.Prog, pf, core.Options{
				Algorithm: core.AlgoTryN, Model: m, Order: order,
				Window: cfg.window(), MaxCombos: cfg.MaxCombos,
			})
			if err != nil {
				return nil, err
			}
			variants[key] = &variant{prog: ares.Prog, prof: ares.Prof}
			if arch == predict.ArchFallthrough {
				res.TryStats = ares.Stats
			}
		}
	}

	// One walk per variant, fanned out to every simulator that needs it.
	for key, specs := range needed {
		v := variants[key]
		sims := make([]predict.Simulator, len(specs))
		sinks := make(trace.MultiSink, len(specs))
		for i, spec := range specs {
			sim, err := predict.NewSimulator(spec.arch, v.prog, v.prof)
			if err != nil {
				return nil, err
			}
			sims[i] = sim
			sinks[i] = sim
		}
		instrs, err := w.Run(v.prog, v.prof, sinks, nil)
		if err != nil {
			return nil, fmt.Errorf("evaluating %s/%s: %w", w.Name, key, err)
		}
		for i, spec := range specs {
			r := sims[i].Result()
			cell := Cell{
				CPI:          metrics.RelativeCPI(origInstrs, instrs, metrics.BEPFromResult(r)),
				FallPct:      metrics.FallthroughPct(r),
				CondAccuracy: r.CondAccuracy(),
			}
			if res.Cells[spec.arch] == nil {
				res.Cells[spec.arch] = make(map[Algo]Cell)
			}
			res.Cells[spec.arch][spec.algo] = cell
		}
	}
	return res, nil
}

// ClassAverage computes the arithmetic mean cell over a class of results,
// as the paper's per-group average rows do.
func ClassAverage(results []*ProgramResult, class workload.Class, archs []predict.ArchID) *ProgramResult {
	avg := &ProgramResult{
		Program: "avg-" + string(class),
		Class:   class,
		Cells:   make(map[predict.ArchID]map[Algo]Cell),
	}
	n := 0
	for _, r := range results {
		if r.Class != class {
			continue
		}
		n++
		for _, arch := range archs {
			if avg.Cells[arch] == nil {
				avg.Cells[arch] = make(map[Algo]Cell)
			}
			for _, algo := range Algos() {
				c := avg.Cells[arch][algo]
				rc := r.Cells[arch][algo]
				c.CPI += rc.CPI
				c.FallPct += rc.FallPct
				c.CondAccuracy += rc.CondAccuracy
				avg.Cells[arch][algo] = c
			}
		}
	}
	if n == 0 {
		return avg
	}
	for _, arch := range archs {
		for _, algo := range Algos() {
			c := avg.Cells[arch][algo]
			c.CPI /= float64(n)
			c.FallPct /= float64(n)
			c.CondAccuracy /= float64(n)
			avg.Cells[arch][algo] = c
		}
	}
	return avg
}
