// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (cost model), Table 2 (program attributes), Table 3
// (static architectures), Table 4 (dynamic architectures), Figures 1-3
// (worked examples) and Figure 4 (total execution time on the Alpha-like
// pipeline model), plus the §6.1 ablations (chain ordering, TryN window).
//
// The evaluation grid — every {program x architecture x algorithm} cell —
// runs on the parallel experiment engine in internal/sim: alignment and
// profiling are prepared per program, then each variant's event stream is
// generated once and broadcast batch-by-batch to all of its architectures'
// kernels (Config.Stream = "on", the default, holding only a bounded
// buffer ring in memory), or recorded whole into a shared refcounted cache
// and replayed per cell (Config.Stream = "off", the pre-streaming escape
// hatch). Results reduce in canonical order, so every mode and parallelism
// setting produces byte-identical output; the differential oracle tests
// enforce this.
package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"balign/internal/cfgio"
	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/icache"
	"balign/internal/ir"
	"balign/internal/metrics"
	"balign/internal/obs"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/sim"
	"balign/internal/trace"
	"balign/internal/workload"
)

// Algo names the program versions every table compares.
type Algo string

// The paper's three columns per architecture, plus the Cost heuristic the
// paper describes (previously evaluated only in the §6.1 ablation) and the
// ExtTSP chain-merging layout with cross-procedure ordering.
const (
	AlgoOrig   Algo = "orig"
	AlgoGreedy Algo = "greedy"
	AlgoCost   Algo = "cost"
	AlgoTry    Algo = "try15"
	AlgoExtTSP Algo = "exttsp"
)

// Algos returns the column order (the algorithm ladder, weakest first).
func Algos() []Algo { return []Algo{AlgoOrig, AlgoGreedy, AlgoCost, AlgoTry, AlgoExtTSP} }

// Config scopes an experiment run.
type Config struct {
	// Scale multiplies workload trace budgets (1.0 = default ~1.5-2M
	// instruction traces; the paper's tables used billions — see DESIGN.md
	// for the scaling argument).
	Scale float64
	// Seed perturbs synthetic workload structure and walks.
	Seed int64
	// Window is the TryN group size; 0 means the paper's 15.
	Window int
	// MaxCombos caps TryN window enumeration; 0 means the default.
	MaxCombos int
	// Programs restricts the suite (nil = all 24 programs). Extended
	// workload families (workload.ExtNames) are addressable here too.
	Programs []string
	// CFG lists paths of external CFG documents (JSON or DOT; see
	// internal/cfgio) to import and append to the run's workloads, each
	// walked from its embedded edge profile. With Programs empty, a run
	// with CFG paths evaluates only the imported programs.
	CFG []string
	// Kernel selects the simulation executor: "flat" (default) runs the
	// compiled flattened kernel in internal/kernel; "ref" runs the
	// interface-dispatched reference simulators. Both produce byte-identical
	// results — the kernel oracle tests enforce this.
	Kernel string
	// Stream selects how variant traces reach their simulators: "on"
	// (default) generates each variant's stream once and broadcasts its
	// batches to every architecture concurrently, holding only a bounded
	// buffer ring; "off" records whole traces into the refcounted cache and
	// replays them per cell — the pre-streaming escape hatch. Both produce
	// byte-identical results — the streaming oracle tests enforce this.
	Stream string
	// Parallelism bounds the number of concurrently executing experiment
	// shards. 0 means runtime.GOMAXPROCS(0); 1 selects the serial oracle
	// path. Results are byte-identical at every setting.
	Parallelism int
	// Workers is the run's total worker-goroutine budget, split between
	// variant-level parallelism and intra-variant stream shards (see
	// Config.splitWorkers). 0 leaves Parallelism and Shards in charge.
	// Results are byte-identical at every setting.
	Workers int
	// Shards is the intra-variant stream shard count: in flat streaming
	// mode each architecture consumer fans out to this many kernel shards
	// that split the variant's batches round-robin and merge exactly
	// (sim.Executor.SetShards). 0 derives the count from Workers (1 when
	// Workers is also unset); 1 disables intra-variant sharding. Results
	// are byte-identical at every setting — the shard-merge property tests
	// and parallel-determinism oracle enforce this.
	Shards int
	// Verbose enables per-shard progress logging to Log.
	Verbose bool
	// Log receives -v progress output; nil discards it.
	Log io.Writer
	// Obs receives run telemetry: per-shard engine spans, trace-cache
	// counters and gauges, per-procedure alignment timings, and attached
	// "engine" / "trace_cache" / "grid" report sections. Nil (the
	// default) disables telemetry at zero cost. Telemetry is
	// observation-only, so results are byte-identical with it on or off —
	// the differential oracle tests assert this.
	Obs *obs.Recorder
	// Ctx bounds the whole run: cancelling it (a server request deadline,
	// an interrupted CLI) aborts in-flight shards promptly — including
	// broadcasts blocked on the streaming buffer ring — and the run
	// returns the context's error. Nil means context.Background().
	Ctx context.Context
}

func (c Config) window() int {
	if c.Window <= 0 {
		return core.DefaultWindow
	}
	return c.Window
}

// engine returns the experiment engine configured by c. A Workers budget
// with Parallelism unset bounds the engine by the budget.
func (c Config) engine() *sim.Engine {
	par := c.Parallelism
	if par == 0 && c.Workers > 0 {
		par = c.Workers
	}
	return sim.New(sim.Options{Parallelism: par, Verbose: c.Verbose, Log: c.Log, Obs: c.Obs})
}

// maxStreamShards caps derived intra-variant shard counts: every shard
// forwards predictor state over the batches it does not own, so forwarding
// overhead grows linearly with the shard count and past a handful of shards
// it eats the parallel win.
const maxStreamShards = 4

// splitWorkers resolves the run's worker budget into the variant-level
// engine parallelism and the intra-variant stream shard count, given how
// many consumer goroutines one variant's broadcast runs before sharding
// (its architecture count). Explicit Parallelism / Shards settings always
// win; a Workers budget fills in whichever is unset. With nothing set the
// split is the pre-sharding default: GOMAXPROCS-bounded variant
// parallelism, no intra-variant sharding. The split only chooses how the
// work is scheduled — results are byte-identical for every split.
func (c Config) splitWorkers(consumersPerVariant int) (parallelism, shards int) {
	parallelism = c.Parallelism
	shards = c.Shards
	if shards < 1 {
		shards = 1
		if c.Workers > 0 && consumersPerVariant > 0 {
			// Shard within variants only when the budget exceeds what one
			// variant's producer + unsharded consumers already occupy.
			if s := c.Workers / (consumersPerVariant + 1); s > 1 {
				shards = min(s, maxStreamShards)
			}
		}
	}
	if parallelism == 0 && c.Workers > 0 {
		// Whatever budget sharding did not consume bounds how many variant
		// broadcasts run at once.
		parallelism = max(1, c.Workers/(1+consumersPerVariant*shards))
	}
	return parallelism, shards
}

// runIndexed shards fn(i) over n items on the configured engine. Each call
// must write only its own result slot; the engine guarantees first-error
// semantics match a serial in-order run.
func runIndexed(cfg Config, kind string, labels []string, fn func(i int) error) error {
	tasks := make([]sim.Task, len(labels))
	for i := range labels {
		i := i
		tasks[i] = sim.Task{Label: kind + "/" + labels[i], Run: func(context.Context) error { return fn(i) }}
	}
	return cfg.engine().Run(cfg.Ctx, tasks)
}

func (c Config) workloads() ([]*workload.Workload, error) {
	wcfg := workload.Config{Scale: c.Scale, Seed: c.Seed}
	if len(c.Programs) == 0 && len(c.CFG) == 0 {
		return workload.Suite(wcfg)
	}
	var out []*workload.Workload
	for _, name := range c.Programs {
		w, err := workload.ByName(name, wcfg)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	for _, path := range c.CFG {
		w, err := ImportWorkload(path, wcfg)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// ImportWorkload reads a CFG document (JSON or DOT) from path and wraps it
// as a walker-backed workload named after the document (or, when the
// document is anonymous, the file's base name).
func ImportWorkload(path string, wcfg workload.Config) (*workload.Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: reading CFG %s: %w", path, err)
	}
	prog, pf, err := cfgio.Import(data)
	if err != nil {
		return nil, fmt.Errorf("experiments: importing %s: %w", path, err)
	}
	name := prog.Name
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		prog.Name = name
	}
	return workload.FromProfile(name, prog, pf, wcfg)
}

// Cell is one (architecture, algorithm) measurement.
type Cell struct {
	// CPI is the paper's relative cycles-per-instruction metric.
	CPI float64
	// FallPct is the percentage of executed conditional branches that fell
	// through.
	FallPct float64
	// CondAccuracy is the conditional branch prediction accuracy.
	CondAccuracy float64
	// Instrs is the number of instructions the traced variant retired.
	Instrs uint64
	// BEP is the branch execution penalty in cycles.
	BEP uint64
	// Res holds the exact simulation counts behind the derived metrics.
	Res predict.Result
	// IC is the variant's instruction-cache measurement (shared by every
	// architecture cell of the variant; the fetch stream does not depend on
	// the predictor).
	IC ICacheCell
}

// ProgramResult is the full evaluation matrix of one program.
type ProgramResult struct {
	Program string
	Class   workload.Class
	Cells   map[predict.ArchID]map[Algo]Cell
	// Stats reports what the TryN rewrite did (per the FALLTHROUGH-model
	// alignment, the most aggressive).
	TryStats core.RewriteStats
}

// variant is one aligned (or original) version of a program.
type variant struct {
	prog *ir.Program
	prof *profile.Profile
}

// trynModelFor maps an architecture to the alignment cost model and chain
// order the paper uses for its Try15 columns.
func trynModelFor(arch predict.ArchID) (cost.Model, core.ChainOrder) {
	m, err := cost.ForArch(arch)
	if err != nil {
		panic(err)
	}
	order := core.OrderHottest
	if arch == predict.ArchBTFNT {
		order = core.OrderBTFNT
	}
	return m, order
}

// costGroupOf returns an architecture's registry cost group: the key that
// groups architectures sharing one model-guided alignment (both PHTs share
// the PHT model, both BTBs the BTB model, both tagged predictors the
// tagged model). Architectures reaching the variant builder have already
// been validated, so an unregistered id is an internal invariant breach.
func costGroupOf(arch predict.ArchID) string {
	d, ok := predict.Lookup(arch)
	if !ok {
		panic(fmt.Sprintf("experiments: unregistered architecture %q", arch))
	}
	return string(d.CostGroup)
}

// variantKeyForTry groups architectures sharing one TryN alignment, keyed
// by the registry's cost group.
func variantKeyForTry(arch predict.ArchID) string { return "try-" + costGroupOf(arch) }

// variantKeyForCost groups architectures sharing one Cost alignment, with
// the same model sharing as the TryN columns.
func variantKeyForCost(arch predict.ArchID) string { return "cost-" + costGroupOf(arch) }

// variantKeyForGreedy: the paper lays Greedy chains hottest-first for every
// simulation except BT/FNT, which uses the Pettis-Hansen precedence order.
func variantKeyForGreedy(arch predict.ArchID) string {
	if arch == predict.ArchBTFNT {
		return "greedy-btfnt"
	}
	return "greedy"
}

// simSpec names one simulation of a variant: which architecture consumes
// its trace and which algorithm column the result lands in.
type simSpec struct {
	arch predict.ArchID
	algo Algo
}

// evalUnit is one program's prepared evaluation state: its profile, every
// aligned variant the architecture set needs, and the (variant -> cells)
// fan-out. Preparation is the per-program sequential prefix (profiling and
// alignment); everything downstream of it is a shardable simulation.
//
// After preparation an evalUnit is read-only and safe to share across
// worker goroutines.
type evalUnit struct {
	w          *workload.Workload
	pf         *profile.Profile
	origInstrs uint64
	variants   map[string]*variant
	// keys lists variant keys in canonical (first-need) order; specs maps
	// each key to the cells that replay its trace, in architecture order.
	keys     []string
	specs    map[string][]simSpec
	tryStats core.RewriteStats
	// ic holds each variant's instruction-cache simulation, computed once
	// during preparation (the fetch stream depends only on the variant's
	// layout and trace, not on the predictor architecture) and attached to
	// every cell of the variant during reduction.
	ic map[string]ICacheCell
}

// ICacheCell is one variant's instruction-cache measurement: the exact
// counters of an icache.Sim replay of the variant's trace, plus the derived
// MPKI metric.
type ICacheCell struct {
	Fetches  uint64
	Accesses uint64
	Misses   uint64
	MPKI     float64
}

// newEvalUnit profiles one workload and builds every variant the given
// architectures need.
func newEvalUnit(w *workload.Workload, archs []predict.ArchID, cfg Config) (*evalUnit, error) {
	profStart := cfg.Obs.Now()
	pf, origInstrs, err := w.CollectProfile()
	if err != nil {
		return nil, err
	}
	cfg.Obs.AddSince("exp.profile.ns", profStart)
	cfg.Obs.Add("exp.profile.programs", 1)
	u := &evalUnit{
		w: w, pf: pf, origInstrs: origInstrs,
		variants: map[string]*variant{"orig": {prog: w.Prog, prof: pf}},
		specs:    map[string][]simSpec{},
		ic:       map[string]ICacheCell{},
	}

	add := func(key string, spec simSpec) {
		if _, ok := u.specs[key]; !ok {
			u.keys = append(u.keys, key)
		}
		u.specs[key] = append(u.specs[key], spec)
	}
	for _, arch := range archs {
		add("orig", simSpec{arch, AlgoOrig})
		add(variantKeyForGreedy(arch), simSpec{arch, AlgoGreedy})
		add(variantKeyForCost(arch), simSpec{arch, AlgoCost})
		add(variantKeyForTry(arch), simSpec{arch, AlgoTry})
		add("exttsp", simSpec{arch, AlgoExtTSP})
	}

	buildGreedy := func(order core.ChainOrder) (*variant, error) {
		res, err := core.AlignProgram(w.Prog, pf, core.Options{
			Algorithm: core.AlgoGreedy, Order: order, Obs: cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		return &variant{prog: res.Prog, prof: res.Prof}, nil
	}

	for _, key := range u.keys {
		if u.variants[key] != nil {
			continue
		}
		switch {
		case key == "greedy":
			v, err := buildGreedy(core.OrderHottest)
			if err != nil {
				return nil, err
			}
			u.variants[key] = v
		case key == "greedy-btfnt":
			v, err := buildGreedy(core.OrderBTFNT)
			if err != nil {
				return nil, err
			}
			u.variants[key] = v
		case key == "exttsp":
			// ExtTSP is architecture-independent (its objective encodes
			// fetch locality, not predictor behaviour): one variant serves
			// every architecture. Block layout only: the suite generator
			// emits procedures in call-tree order, which measures better in
			// the i-cache than any reordering (see DESIGN.md §13), so the
			// whole-binary ReorderProcsExtTSP pass stays opt-in
			// (balign -procorder).
			ares, err := core.AlignProgram(w.Prog, pf, core.Options{
				Algorithm: core.AlgoExtTSP, Obs: cfg.Obs,
			})
			if err != nil {
				return nil, err
			}
			u.variants[key] = &variant{prog: ares.Prog, prof: ares.Prof}
		case strings.HasPrefix(key, "cost-"):
			arch := u.specs[key][0].arch
			m, order := trynModelFor(arch)
			ares, err := core.AlignProgram(w.Prog, pf, core.Options{
				Algorithm: core.AlgoCost, Model: m, Order: order, Obs: cfg.Obs,
			})
			if err != nil {
				return nil, err
			}
			u.variants[key] = &variant{prog: ares.Prog, prof: ares.Prof}
		default:
			// try-* variants: the first arch that maps here picks the model.
			arch := u.specs[key][0].arch
			m, order := trynModelFor(arch)
			ares, err := core.AlignProgram(w.Prog, pf, core.Options{
				Algorithm: core.AlgoTryN, Model: m, Order: order,
				Window: cfg.window(), MaxCombos: cfg.MaxCombos, Obs: cfg.Obs,
			})
			if err != nil {
				return nil, err
			}
			u.variants[key] = &variant{prog: ares.Prog, prof: ares.Prof}
			if arch == predict.ArchFallthrough {
				u.tryStats = ares.Stats
			}
		}
	}

	// Instruction-cache pass: replay each variant's trace once through the
	// icache model. The fetch stream is architecture-independent, so one
	// replay per variant covers all of its cells; running it here (in the
	// sequential per-program preparation, from the same deterministic
	// generators as the simulation phase) keeps reports byte-identical at
	// every parallelism and in both stream modes.
	icStart := cfg.Obs.Now()
	for _, key := range u.keys {
		v := u.variants[key]
		sim := icache.New(icache.DefaultConfig())
		if _, err := w.Run(v.prog, v.prof, sim, nil); err != nil {
			return nil, fmt.Errorf("icache %s/%s: %w", w.Name, key, err)
		}
		u.ic[key] = ICacheCell{
			Fetches:  sim.Fetches,
			Accesses: sim.Accesses,
			Misses:   sim.Misses,
			MPKI:     sim.MPKI(),
		}
	}
	cfg.Obs.AddSince("exp.icache.ns", icStart)
	return u, nil
}

// cacheKey names a variant's recorded trace in the shared cache.
func (u *evalUnit) cacheKey(key string) string { return u.w.Name + "/" + key }

// record generates the variant's trace once.
func (u *evalUnit) record(key string) (*sim.Recorded, error) {
	v := u.variants[key]
	return sim.Record(func(sink trace.Sink) (uint64, error) {
		return u.w.Run(v.prog, v.prof, sink, nil)
	})
}

// makeCell derives one cell's paper metrics from its exact simulation
// result; instrs is the traced variant's retired-instruction count.
func makeCell(origInstrs, instrs uint64, r predict.Result) Cell {
	bep := metrics.BEPFromResult(r)
	return Cell{
		CPI:          metrics.RelativeCPI(origInstrs, instrs, bep),
		FallPct:      metrics.FallthroughPct(r),
		CondAccuracy: r.CondAccuracy(),
		Instrs:       instrs,
		BEP:          bep,
		Res:          r,
	}
}

// runCell simulates one (architecture, algorithm) cell by running the
// executor over the variant's cached trace — the recorded-mode (StreamOff)
// cell path.
func runCell(u *evalUnit, key string, spec simSpec, cache *sim.TraceCache, exec *sim.Executor) (Cell, error) {
	ck := u.cacheKey(key)
	rec, err := cache.Acquire(ck, func() (*sim.Recorded, error) { return u.record(key) })
	defer cache.Release(ck)
	if err != nil {
		return Cell{}, fmt.Errorf("evaluating %s/%s: %w", u.w.Name, key, err)
	}
	r, err := exec.Simulate(spec.arch, u.variants[key].prog, u.variants[key].prof, rec)
	if err != nil {
		return Cell{}, err
	}
	return makeCell(u.origInstrs, rec.Instrs, r), nil
}

// runVariant simulates every cell of one variant in a single streamed
// generation: the variant's event stream is generated once and broadcast to
// all of its architectures' kernels concurrently. cells[base:base+len(specs)]
// receives the results in spec order. ctx is the shard's context: when the
// engine cancels (another shard failed, the run's deadline passed) the
// broadcast aborts promptly instead of draining the stream.
func runVariant(ctx context.Context, u *evalUnit, key string, str *sim.Streamer, exec *sim.Executor, cells []Cell, base int) error {
	v := u.variants[key]
	lay, err := trace.CompileLayout(v.prog)
	if err != nil {
		return fmt.Errorf("evaluating %s/%s: %w", u.w.Name, key, err)
	}
	src, err := u.w.Stream(v.prog, v.prof, lay, str.BatchCap())
	if err != nil {
		return fmt.Errorf("evaluating %s/%s: %w", u.w.Name, key, err)
	}
	specs := u.specs[key]
	archs := make([]predict.ArchID, len(specs))
	for i, spec := range specs {
		archs[i] = spec.arch
	}
	results, err := exec.SimulateStream(ctx, str, lay, src, v.prog, v.prof, archs)
	if err != nil {
		return fmt.Errorf("evaluating %s/%s: %w", u.w.Name, key, err)
	}
	instrs := src.Instrs()
	for i, r := range results {
		cells[base+i] = makeCell(u.origInstrs, instrs, r)
	}
	return nil
}

// cellSlot addresses one cell's result across the flattened grid.
type cellSlot struct {
	unit int
	key  string
	spec simSpec
}

// evaluatePrograms runs the full evaluation grid over the given workloads:
// a preparation pass (profile + alignments, sharded per program), then the
// flat {program x architecture x algorithm} cell grid (sharded per cell,
// replaying each variant's cached trace), then a canonical-order reduction.
func evaluatePrograms(ws []*workload.Workload, archs []predict.ArchID, cfg Config) ([]*ProgramResult, error) {
	smode, err := sim.ParseStreamMode(cfg.Stream)
	if err != nil {
		return nil, err
	}
	// Split the worker budget between variant-level parallelism and
	// intra-variant stream shards, then pin the resolved parallelism so
	// every engine this run builds sees the same bound.
	par, shards := cfg.splitWorkers(len(archs))
	cfg.Parallelism = par
	if smode != sim.StreamOn {
		shards = 1
	}
	eng := cfg.engine()
	cache := sim.NewTraceCache()
	cache.Observe(cfg.Obs)
	exec, err := sim.NewExecutor(cfg.Kernel, cfg.Obs)
	if err != nil {
		return nil, err
	}
	exec.SetShards(shards)
	// Sharded consumers interleave Run (slow) and Forward (fast) batches,
	// so a deeper ring keeps the producer from stalling behind whichever
	// shard owns the current batch.
	buffers := 0
	if shards > 1 {
		buffers = sim.DefaultStreamBuffers * shards
	}
	str := sim.NewStreamer(buffers, 0, cfg.Obs)

	// Phase 1: per-program preparation.
	units := make([]*evalUnit, len(ws))
	prep := make([]sim.Task, len(ws))
	for i := range ws {
		i := i
		prep[i] = sim.Task{Label: "prep/" + ws[i].Name, Run: func(context.Context) error {
			u, err := newEvalUnit(ws[i], archs, cfg)
			if err != nil {
				return err
			}
			units[i] = u
			return nil
		}}
	}
	if err := eng.Run(cfg.Ctx, prep); err != nil {
		return nil, err
	}

	// Phase 2: the cell grid, in canonical slot order (unit, then variant
	// key, then spec). Streaming mode shards one task per variant — each
	// generates its stream once and broadcasts it to all of the variant's
	// architectures, filling the variant's contiguous slot range. Recorded
	// mode shards one task per cell, with refcounts preset so every
	// variant's cached trace is freed right after its last cell replays it.
	var slots []cellSlot
	type variantTask struct {
		unit int
		key  string
		base int
	}
	var vtasks []variantTask
	for ui, u := range units {
		for _, key := range u.keys {
			if smode == sim.StreamOff {
				cache.AddRefs(u.cacheKey(key), len(u.specs[key]))
			}
			vtasks = append(vtasks, variantTask{unit: ui, key: key, base: len(slots)})
			for _, spec := range u.specs[key] {
				slots = append(slots, cellSlot{unit: ui, key: key, spec: spec})
			}
		}
	}
	cells := make([]Cell, len(slots))
	var tasks []sim.Task
	if smode == sim.StreamOn {
		tasks = make([]sim.Task, len(vtasks))
		for i := range vtasks {
			vt := vtasks[i]
			u := units[vt.unit]
			tasks[i] = sim.Task{
				Label: fmt.Sprintf("%s/%s", u.w.Name, vt.key),
				Run: func(ctx context.Context) error {
					return runVariant(ctx, u, vt.key, str, exec, cells, vt.base)
				},
			}
		}
	} else {
		tasks = make([]sim.Task, len(slots))
		for i := range slots {
			i := i
			s := slots[i]
			u := units[s.unit]
			tasks[i] = sim.Task{
				Label: fmt.Sprintf("%s/%s/%s", u.w.Name, s.spec.arch, s.spec.algo),
				Run: func(context.Context) error {
					c, err := runCell(u, s.key, s.spec, cache, exec)
					if err != nil {
						return err
					}
					cells[i] = c
					return nil
				},
			}
		}
	}
	if err := eng.Run(cfg.Ctx, tasks); err != nil {
		return nil, err
	}

	// Phase 3: deterministic reduction in canonical slot order.
	results := make([]*ProgramResult, len(units))
	for ui, u := range units {
		results[ui] = &ProgramResult{
			Program:  u.w.Name,
			Class:    u.w.Class,
			Cells:    make(map[predict.ArchID]map[Algo]Cell),
			TryStats: u.tryStats,
		}
	}
	for i, s := range slots {
		r := results[s.unit]
		if r.Cells[s.spec.arch] == nil {
			r.Cells[s.spec.arch] = make(map[Algo]Cell)
		}
		c := cells[i]
		c.IC = units[s.unit].ic[s.key]
		r.Cells[s.spec.arch][s.spec.algo] = c
	}

	st, cst, sst := eng.Stats(), cache.Stats(), str.Stats()
	if smode == sim.StreamOn {
		eng.Logf("sim: %d programs, %d cells, busy %v; streamed %d variants in %d batches (peak ring %d bytes)",
			len(units), len(slots), st.Busy, sst.Broadcasts, sst.Batches, sst.PeakLiveBytes)
	} else {
		eng.Logf("sim: %d programs, %d cells, busy %v; trace cache %d misses / %d hits, %d freed",
			len(units), len(slots), st.Busy, cst.Misses, cst.Hits, cst.Freed)
	}
	// Snapshot the engine, cache and streamer into the run report. A
	// multi-grid run (baexp all) overwrites with each grid's final state;
	// the report's counters still accumulate across grids.
	cfg.Obs.Attach("engine", st)
	cfg.Obs.Attach("trace_cache", cst)
	cfg.Obs.Attach("stream", sst)
	cfg.Obs.Attach("executor", exec.Stats())
	return results, nil
}

// Evaluate runs the complete evaluation matrix for one workload over the
// given architectures.
func Evaluate(w *workload.Workload, archs []predict.ArchID, cfg Config) (*ProgramResult, error) {
	results, err := evaluatePrograms([]*workload.Workload{w}, archs, cfg)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// Summaries evaluates the grid for the configured programs and reduces it
// to canonical metrics.Summary rows (suite program order, then architecture
// order, then algorithm order). This is the byte-comparable form the
// differential parallel-vs-serial oracle checks.
func Summaries(cfg Config, archs []predict.ArchID) ([]metrics.Summary, error) {
	ws, err := cfg.workloads()
	if err != nil {
		return nil, err
	}
	results, err := evaluatePrograms(ws, archs, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]metrics.Summary, 0, len(results)*len(archs)*len(Algos()))
	for _, r := range results {
		for _, arch := range archs {
			for _, algo := range Algos() {
				c := r.Cells[arch][algo]
				s := metrics.NewSummary(r.Program, string(arch), string(algo), 0, c.Instrs, c.Res)
				// NewSummary derives CPI from its own denominator; keep the
				// grid's exact values instead.
				s.CPI, s.FallPct, s.CondAccuracy = c.CPI, c.FallPct, c.CondAccuracy
				s.ICFetches, s.ICAccesses, s.ICMisses = c.IC.Fetches, c.IC.Accesses, c.IC.Misses
				s.ICMPKI = c.IC.MPKI
				out = append(out, s)
			}
		}
	}
	// The canonical summary grid is the run's primary artifact; attach it
	// so a -report run carries results and telemetry in one document.
	cfg.Obs.Attach("grid", out)
	return out, nil
}

// ClassAverage computes the arithmetic mean cell over a class of results,
// as the paper's per-group average rows do.
func ClassAverage(results []*ProgramResult, class workload.Class, archs []predict.ArchID) *ProgramResult {
	avg := &ProgramResult{
		Program: "avg-" + string(class),
		Class:   class,
		Cells:   make(map[predict.ArchID]map[Algo]Cell),
	}
	n := 0
	for _, r := range results {
		if r.Class != class {
			continue
		}
		n++
		for _, arch := range archs {
			if avg.Cells[arch] == nil {
				avg.Cells[arch] = make(map[Algo]Cell)
			}
			for _, algo := range Algos() {
				c := avg.Cells[arch][algo]
				rc := r.Cells[arch][algo]
				c.CPI += rc.CPI
				c.FallPct += rc.FallPct
				c.CondAccuracy += rc.CondAccuracy
				avg.Cells[arch][algo] = c
			}
		}
	}
	if n == 0 {
		return avg
	}
	for _, arch := range archs {
		for _, algo := range Algos() {
			c := avg.Cells[arch][algo]
			c.CPI /= float64(n)
			c.FallPct /= float64(n)
			c.CondAccuracy /= float64(n)
			avg.Cells[arch][algo] = c
		}
	}
	return avg
}
