package experiments

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/workload"
)

// SeedRow summarizes alignment benefit across independently seeded
// instances of one synthetic program: the paper reports single runs; this
// sweep checks the reproduction's conclusions are not artifacts of one
// random program instance.
type SeedRow struct {
	Program string
	Seeds   int
	// MeanGainPct / StdGainPct summarize the relative CPI improvement of
	// TryN over the original layout on FALLTHROUGH, in percent.
	MeanGainPct float64
	StdGainPct  float64
	MinGainPct  float64
	MaxGainPct  float64
}

// SeedSweep evaluates the FALLTHROUGH alignment gain over several seeds.
func SeedSweep(programs []string, seeds int, cfg Config) ([]SeedRow, error) {
	if len(programs) == 0 {
		programs = []string{"ora", "doduc"}
	}
	if seeds <= 0 {
		seeds = 5
	}
	// The {program x seed} grid is flat: every point is independent, so it
	// shards across the engine as one task list and reduces per program.
	type point struct {
		name string
		seed int
	}
	var points []point
	var labels []string
	for _, name := range programs {
		for s := 0; s < seeds; s++ {
			points = append(points, point{name, s})
			labels = append(labels, fmt.Sprintf("%s/seed%d", name, s))
		}
	}
	gainAt := make([]float64, len(points))
	err := runIndexed(cfg, "seeds", labels, func(i int) error {
		p := points[i]
		w, err := workload.ByName(p.name, workload.Config{Scale: cfg.Scale, Seed: cfg.Seed + int64(p.seed)*1001})
		if err != nil {
			return err
		}
		pf, origInstrs, err := w.CollectProfile()
		if err != nil {
			return err
		}
		res, err := core.AlignProgram(w.Prog, pf, core.Options{
			Algorithm: core.AlgoTryN, Model: cost.FallthroughModel{},
			Window: cfg.window(), MaxCombos: cfg.MaxCombos,
		})
		if err != nil {
			return err
		}
		simO, err := predict.NewSimulator(predict.ArchFallthrough, w.Prog, pf)
		if err != nil {
			return err
		}
		if _, err := w.Run(w.Prog, pf, simO, nil); err != nil {
			return err
		}
		simT, err := predict.NewSimulator(predict.ArchFallthrough, res.Prog, res.Prof)
		if err != nil {
			return err
		}
		tryInstrs, err := w.Run(res.Prog, res.Prof, simT, nil)
		if err != nil {
			return err
		}
		cpiO := metrics.RelativeCPI(origInstrs, origInstrs, metrics.BEPFromResult(simO.Result()))
		cpiT := metrics.RelativeCPI(origInstrs, tryInstrs, metrics.BEPFromResult(simT.Result()))
		gainAt[i] = 100 * (1 - cpiT/cpiO)
		return nil
	})
	if err != nil {
		return nil, err
	}

	var rows []SeedRow
	for pi, name := range programs {
		gains := gainAt[pi*seeds : (pi+1)*seeds]
		mean, std := meanStd(gains)
		mn, mx := gains[0], gains[0]
		for _, g := range gains {
			mn = math.Min(mn, g)
			mx = math.Max(mx, g)
		}
		rows = append(rows, SeedRow{
			Program: name, Seeds: seeds,
			MeanGainPct: mean, StdGainPct: std, MinGainPct: mn, MaxGainPct: mx,
		})
	}
	return rows, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)-1))
	return mean, std
}

// FormatSeedSweep renders the sweep.
func FormatSeedSweep(rows []SeedRow) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Program\tseeds\tmean gain%\tstd\tmin\tmax\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			r.Program, r.Seeds, r.MeanGainPct, r.StdGainPct, r.MinGainPct, r.MaxGainPct)
	}
	tw.Flush()
	return sb.String()
}
