package experiments

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/workload"
)

// SeedRow summarizes alignment benefit across independently seeded
// instances of one synthetic program: the paper reports single runs; this
// sweep checks the reproduction's conclusions are not artifacts of one
// random program instance.
type SeedRow struct {
	Program string
	Seeds   int
	// MeanGainPct / StdGainPct summarize the relative CPI improvement of
	// TryN over the original layout on FALLTHROUGH, in percent.
	MeanGainPct float64
	StdGainPct  float64
	MinGainPct  float64
	MaxGainPct  float64
}

// SeedSweep evaluates the FALLTHROUGH alignment gain over several seeds.
func SeedSweep(programs []string, seeds int, cfg Config) ([]SeedRow, error) {
	if len(programs) == 0 {
		programs = []string{"ora", "doduc"}
	}
	if seeds <= 0 {
		seeds = 5
	}
	var rows []SeedRow
	for _, name := range programs {
		var gains []float64
		for s := 0; s < seeds; s++ {
			w, err := workload.ByName(name, workload.Config{Scale: cfg.Scale, Seed: cfg.Seed + int64(s)*1001})
			if err != nil {
				return nil, err
			}
			pf, origInstrs, err := w.CollectProfile()
			if err != nil {
				return nil, err
			}
			res, err := core.AlignProgram(w.Prog, pf, core.Options{
				Algorithm: core.AlgoTryN, Model: cost.FallthroughModel{},
				Window: cfg.window(), MaxCombos: cfg.MaxCombos,
			})
			if err != nil {
				return nil, err
			}
			simO, err := predict.NewSimulator(predict.ArchFallthrough, w.Prog, pf)
			if err != nil {
				return nil, err
			}
			if _, err := w.Run(w.Prog, pf, simO, nil); err != nil {
				return nil, err
			}
			simT, err := predict.NewSimulator(predict.ArchFallthrough, res.Prog, res.Prof)
			if err != nil {
				return nil, err
			}
			tryInstrs, err := w.Run(res.Prog, res.Prof, simT, nil)
			if err != nil {
				return nil, err
			}
			cpiO := metrics.RelativeCPI(origInstrs, origInstrs, metrics.BEPFromResult(simO.Result()))
			cpiT := metrics.RelativeCPI(origInstrs, tryInstrs, metrics.BEPFromResult(simT.Result()))
			gains = append(gains, 100*(1-cpiT/cpiO))
		}
		mean, std := meanStd(gains)
		mn, mx := gains[0], gains[0]
		for _, g := range gains {
			mn = math.Min(mn, g)
			mx = math.Max(mx, g)
		}
		rows = append(rows, SeedRow{
			Program: name, Seeds: seeds,
			MeanGainPct: mean, StdGainPct: std, MinGainPct: mn, MaxGainPct: mx,
		})
	}
	return rows, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)-1))
	return mean, std
}

// FormatSeedSweep renders the sweep.
func FormatSeedSweep(rows []SeedRow) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Program\tseeds\tmean gain%\tstd\tmin\tmax\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			r.Program, r.Seeds, r.MeanGainPct, r.StdGainPct, r.MinGainPct, r.MaxGainPct)
	}
	tw.Flush()
	return sb.String()
}
