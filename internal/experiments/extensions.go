package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/icache"
	"balign/internal/ir"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/workload"
)

// PenaltyRow is one point of the penalty-sensitivity sweep: how the benefit
// of alignment scales as the mispredict penalty grows — the paper's claim
// that "as wide-issue architectures become more popular, branch alignment
// algorithms will have a larger impact".
type PenaltyRow struct {
	MispredictPenalty uint64
	CPIOrig           float64
	CPITry            float64
	// GainPct is the relative CPI improvement in percent.
	GainPct float64
}

// PenaltySweep evaluates one program on the FALLTHROUGH architecture under
// increasing mispredict penalties (2, 4, 8, 12 cycles; misfetch stays 1).
func PenaltySweep(program string, cfg Config) ([]PenaltyRow, error) {
	w, err := workload.ByName(program, workload.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	pf, origInstrs, err := w.CollectProfile()
	if err != nil {
		return nil, err
	}
	res, err := core.AlignProgram(w.Prog, pf, core.Options{
		Algorithm: core.AlgoTryN, Model: cost.FallthroughModel{},
		Window: cfg.window(), MaxCombos: cfg.MaxCombos,
	})
	if err != nil {
		return nil, err
	}

	simOrig, err := predict.NewSimulator(predict.ArchFallthrough, w.Prog, pf)
	if err != nil {
		return nil, err
	}
	if _, err := w.Run(w.Prog, pf, simOrig, nil); err != nil {
		return nil, err
	}
	simTry, err := predict.NewSimulator(predict.ArchFallthrough, res.Prog, res.Prof)
	if err != nil {
		return nil, err
	}
	tryInstrs, err := w.Run(res.Prog, res.Prof, simTry, nil)
	if err != nil {
		return nil, err
	}

	var rows []PenaltyRow
	for _, mp := range []uint64{2, 4, 8, 12} {
		ro := simOrig.Result()
		rt := simTry.Result()
		cpiO := metrics.RelativeCPI(origInstrs, origInstrs, ro.BEP(1, mp))
		cpiT := metrics.RelativeCPI(origInstrs, tryInstrs, rt.BEP(1, mp))
		rows = append(rows, PenaltyRow{
			MispredictPenalty: mp,
			CPIOrig:           cpiO,
			CPITry:            cpiT,
			GainPct:           100 * (1 - cpiT/cpiO),
		})
	}
	return rows, nil
}

// FormatPenaltySweep renders the sweep.
func FormatPenaltySweep(program string, rows []PenaltyRow) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "%s\tmispredict\tCPI orig\tCPI try15\tgain%%\t\n", program)
	for _, r := range rows {
		fmt.Fprintf(tw, "\t%d\t%.3f\t%.3f\t%.1f\t\n", r.MispredictPenalty, r.CPIOrig, r.CPITry, r.GainPct)
	}
	tw.Flush()
	return sb.String()
}

// CrossTrainRow reports profile robustness: the program is aligned with a
// profile from one input and evaluated both on that input and on a
// different one (the honest profile-guided-optimization methodology; the
// paper uses the same input for both, which it acknowledges).
type CrossTrainRow struct {
	Program      string
	CPIOrig      float64 // original layout, evaluation input
	CPISameInput float64 // aligned, evaluated on the training input
	CPICrossIn   float64 // aligned, evaluated on a different input
}

// CrossTraining measures train/test input sensitivity on the FALLTHROUGH
// architecture for kernel workloads (whose inputs are real data).
func CrossTraining(programs []string, cfg Config) ([]CrossTrainRow, error) {
	if len(programs) == 0 {
		programs = []string{"compress", "eqntott", "li"}
	}
	rows := make([]CrossTrainRow, len(programs))
	err := runIndexed(cfg, "crosstrain", programs, func(i int) error {
		name := programs[i]
		train, err := workload.ByName(name, workload.Config{Scale: cfg.Scale, Seed: cfg.Seed, InputSeed: 0})
		if err != nil {
			return err
		}
		test, err := workload.ByName(name, workload.Config{Scale: cfg.Scale, Seed: cfg.Seed, InputSeed: 1})
		if err != nil {
			return err
		}
		pf, _, err := train.CollectProfile()
		if err != nil {
			return err
		}
		res, err := core.AlignProgram(train.Prog, pf, core.Options{
			Algorithm: core.AlgoTryN, Model: cost.FallthroughModel{},
			Window: cfg.window(), MaxCombos: cfg.MaxCombos,
		})
		if err != nil {
			return err
		}

		cpi := func(w *workload.Workload, prog *core.Result, orig bool) (float64, error) {
			var p = w.Prog
			var prof = pf
			if !orig {
				p, prof = prog.Prog, prog.Prof
			}
			sim, err := predict.NewSimulator(predict.ArchFallthrough, p, prof)
			if err != nil {
				return 0, err
			}
			instrs, err := w.Run(p, prof, sim, nil)
			if err != nil {
				return 0, err
			}
			baseline, err := baselineInstrs(w)
			if err != nil {
				return 0, err
			}
			return metrics.RelativeCPI(baseline, instrs, metrics.BEPFromResult(sim.Result())), nil
		}

		row := CrossTrainRow{Program: name}
		if row.CPIOrig, err = cpi(test, res, true); err != nil {
			return err
		}
		if row.CPISameInput, err = cpi(train, res, false); err != nil {
			return err
		}
		if row.CPICrossIn, err = cpi(test, res, false); err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// baselineInstrs runs a workload's original program once to get the
// denominator instruction count on its own input.
func baselineInstrs(w *workload.Workload) (uint64, error) {
	return w.Run(w.Prog, nil, nil, nil)
}

// FormatCrossTraining renders the cross-training rows.
func FormatCrossTraining(rows []CrossTrainRow) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Program\tOrig(test input)\tAligned(train input)\tAligned(test input)\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t\n", r.Program, r.CPIOrig, r.CPISameInput, r.CPICrossIn)
	}
	tw.Flush()
	return sb.String()
}

// UnrollRow compares alignment alone against unroll+alignment on a program
// dominated by single-block loops (the paper's ALVINN suggestion).
type UnrollRow struct {
	Program      string
	CPIOrig      float64
	CPIAligned   float64
	CPIUnrolled  float64 // unroll + align
	LoopsHandled int
}

// UnrollStudy evaluates the loop-unrolling extension on the FALLTHROUGH
// architecture.
func UnrollStudy(programs []string, cfg Config) ([]UnrollRow, error) {
	if len(programs) == 0 {
		programs = []string{"alvinn", "tomcatv"}
	}
	rows := make([]UnrollRow, len(programs))
	err := runIndexed(cfg, "unroll", programs, func(i int) error {
		name := programs[i]
		w, err := workload.ByName(name, workload.Config{Scale: cfg.Scale, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		pf, origInstrs, err := w.CollectProfile()
		if err != nil {
			return err
		}
		opts := core.Options{
			Algorithm: core.AlgoTryN, Model: cost.FallthroughModel{},
			Window: cfg.window(), MaxCombos: cfg.MaxCombos,
		}
		aligned, err := core.AlignProgram(w.Prog, pf, opts)
		if err != nil {
			return err
		}
		up, upf, ustats, err := core.UnrollLoops(w.Prog, pf, core.DefaultUnrollOptions())
		if err != nil {
			return err
		}
		unrolled, err := core.AlignProgram(up, upf, opts)
		if err != nil {
			return err
		}

		cpi := func(prog *core.Result) (float64, error) {
			sim, err := predict.NewSimulator(predict.ArchFallthrough, prog.Prog, prog.Prof)
			if err != nil {
				return 0, err
			}
			instrs, err := w.Run(prog.Prog, prog.Prof, sim, nil)
			if err != nil {
				return 0, err
			}
			return metrics.RelativeCPI(origInstrs, instrs, metrics.BEPFromResult(sim.Result())), nil
		}
		simO, err := predict.NewSimulator(predict.ArchFallthrough, w.Prog, pf)
		if err != nil {
			return err
		}
		if _, err := w.Run(w.Prog, pf, simO, nil); err != nil {
			return err
		}

		row := UnrollRow{Program: name, LoopsHandled: ustats.LoopsUnrolled}
		row.CPIOrig = metrics.RelativeCPI(origInstrs, origInstrs, metrics.BEPFromResult(simO.Result()))
		if row.CPIAligned, err = cpi(aligned); err != nil {
			return err
		}
		if row.CPIUnrolled, err = cpi(unrolled); err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatUnrollStudy renders the unroll study.
func FormatUnrollStudy(rows []UnrollRow) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Program\tOrig\tAligned\tUnroll+Align\tLoops\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%d\t\n", r.Program, r.CPIOrig, r.CPIAligned, r.CPIUnrolled, r.LoopsHandled)
	}
	tw.Flush()
	return sb.String()
}

// ICacheRow reports the instruction-cache side effect of alignment the
// paper's prior work targeted: misses per thousand fetched instructions on
// a small I-cache for the original, Greedy and TryN layouts.
type ICacheRow struct {
	Program    string
	MPKIOrig   float64
	MPKIGreedy float64
	MPKITry    float64
}

// ICacheStudy measures I-cache behaviour before and after alignment. The
// cache is deliberately small (see icache.DefaultConfig) to exert pressure
// at reproduction scale.
func ICacheStudy(programs []string, cfg Config) ([]ICacheRow, error) {
	if len(programs) == 0 {
		programs = []string{"gcc", "cfront", "espresso"}
	}
	rows := make([]ICacheRow, len(programs))
	err := runIndexed(cfg, "icache", programs, func(i int) error {
		name := programs[i]
		w, err := workload.ByName(name, workload.Config{Scale: cfg.Scale, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		pf, _, err := w.CollectProfile()
		if err != nil {
			return err
		}
		mpki := func(prog *ir.Program, prof *profile.Profile) (float64, error) {
			sim := icache.New(icache.DefaultConfig())
			if _, err := w.Run(prog, prof, sim, nil); err != nil {
				return 0, err
			}
			return sim.MPKI(), nil
		}
		row := ICacheRow{Program: name}
		if row.MPKIOrig, err = mpki(w.Prog, pf); err != nil {
			return err
		}
		greedy, err := core.AlignProgram(w.Prog, pf, core.Options{Algorithm: core.AlgoGreedy})
		if err != nil {
			return err
		}
		if row.MPKIGreedy, err = mpki(greedy.Prog, greedy.Prof); err != nil {
			return err
		}
		tryn, err := core.AlignProgram(w.Prog, pf, core.Options{
			Algorithm: core.AlgoTryN, Model: cost.BTFNTModel{},
			Window: cfg.window(), MaxCombos: cfg.MaxCombos,
		})
		if err != nil {
			return err
		}
		if row.MPKITry, err = mpki(tryn.Prog, tryn.Prof); err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatICacheStudy renders the I-cache rows.
func FormatICacheStudy(rows []ICacheRow) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Program\tMPKI orig\tMPKI greedy\tMPKI try15\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t\n", r.Program, r.MPKIOrig, r.MPKIGreedy, r.MPKITry)
	}
	tw.Flush()
	return sb.String()
}
