package experiments

import (
	"strings"
	"testing"

	"balign/internal/metrics"
	"balign/internal/obs"
	"balign/internal/predict"
)

// TestParallelMatchesSerialOracle is the differential oracle the tentpole
// engine is held to: the full {program x architecture x algorithm} grid run
// serially (Parallelism = 1, the plain in-order loop) must be byte-identical
// to the same grid sharded across 8 workers. Any nondeterminism — shared
// state, unseeded RNG, order-dependent reduction — shows up as an encoding
// diff.
func TestParallelMatchesSerialOracle(t *testing.T) {
	programs := []string{"ora", "compress", "db++", "espresso"}
	archs := predict.AllArchs()

	run := func(par int) string {
		cfg := fastCfg(programs...)
		cfg.Parallelism = par
		s, err := Summaries(cfg, archs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if want := len(programs) * len(archs) * len(Algos()); len(s) != want {
			t.Fatalf("parallelism %d: %d summaries, want %d", par, len(s), want)
		}
		return metrics.EncodeSummaries(s)
	}

	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Errorf("parallel grid diverges from serial oracle:\n%s", firstDiff(serial, parallel))
	}
}

// TestParallelismSettingsAgree spot-checks more worker counts on a smaller
// grid, including the GOMAXPROCS default (0).
func TestParallelismSettingsAgree(t *testing.T) {
	archs := predict.StaticArchs()
	var want string
	for i, par := range []int{1, 0, 2, 3, 16} {
		cfg := fastCfg("ora", "compress")
		cfg.Parallelism = par
		s, err := Summaries(cfg, archs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		got := metrics.EncodeSummaries(s)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("parallelism %d diverges from serial oracle:\n%s", par, firstDiff(want, got))
		}
	}
}

// TestTelemetryPreservesDeterminism is the obs-layer half of the
// differential oracle: enabling run telemetry must not perturb the
// byte-determinism guarantee. The same grid runs telemetry-off (the
// baseline) and telemetry-on at parallelism 1, 2 and GOMAXPROCS (0), and
// every encoding must be byte-identical. It also asserts that the
// telemetry-on runs actually recorded something, so a silently disabled
// recorder can't fake a pass.
func TestTelemetryPreservesDeterminism(t *testing.T) {
	archs := predict.StaticArchs()
	baseCfg := fastCfg("ora", "compress")
	baseCfg.Parallelism = 1
	base, err := Summaries(baseCfg, archs)
	if err != nil {
		t.Fatal(err)
	}
	want := metrics.EncodeSummaries(base)

	for _, par := range []int{1, 2, 0} {
		cfg := fastCfg("ora", "compress")
		cfg.Parallelism = par
		cfg.Obs = obs.New("oracle")
		s, err := Summaries(cfg, archs)
		if err != nil {
			t.Fatalf("telemetry-on parallelism %d: %v", par, err)
		}
		if got := metrics.EncodeSummaries(s); got != want {
			t.Errorf("telemetry-on run (parallelism %d) diverges from telemetry-off oracle:\n%s",
				par, firstDiff(want, got))
		}

		rep := cfg.Obs.Report()
		if rep.Counters["sim.tasks"] == 0 {
			t.Errorf("parallelism %d: engine counters empty: %v", par, rep.Counters)
		}
		if rep.Counters["core.plan.tryn.ns"] == 0 || rep.Counters["exp.profile.ns"] == 0 {
			t.Errorf("parallelism %d: alignment/profile timings missing: %v", par, rep.Counters)
		}
		if len(rep.Spans) == 0 {
			t.Errorf("parallelism %d: no engine spans recorded", par)
		}
		if rep.Sections["engine"] == nil || rep.Sections["trace_cache"] == nil || rep.Sections["grid"] == nil {
			t.Errorf("parallelism %d: report sections missing: %v", par, rep.Sections)
		}
	}
}

// firstDiff returns the first line where two encodings disagree.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return "line " + al[i] + "\n  vs " + bl[i]
		}
	}
	return "encodings differ in length"
}
