package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"balign/internal/cost"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/workload"
)

// Table1 renders the paper's Table 1: the branch cost model in cycles.
func Table1() string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Branch\tCost (cycles)")
	fmt.Fprintf(tw, "Unconditional branch\t%.0f\t(instruction + misfetch)\n", cost.CyclesUncond)
	fmt.Fprintf(tw, "Correctly predicted fall-through\t%.0f\t(instruction)\n", cost.CyclesFall)
	fmt.Fprintf(tw, "Correctly predicted taken\t%.0f\t(instruction + misfetch)\n", cost.CyclesTakenPred)
	fmt.Fprintf(tw, "Mispredicted\t%.0f\t(instruction + mispredict)\n", cost.CyclesMispredict)
	tw.Flush()
	return sb.String()
}

// Table2Row is one program's measured attributes (paper Table 2).
type Table2Row struct {
	Program string
	Class   workload.Class
	Attr    metrics.Attributes
}

// Table2 traces every program in the configured suite and measures its
// attributes.
func Table2(cfg Config) ([]Table2Row, error) {
	ws, err := cfg.workloads()
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(ws))
	for i, w := range ws {
		labels[i] = w.Name
	}
	rows := make([]Table2Row, len(ws))
	err = runIndexed(cfg, "table2", labels, func(i int) error {
		w := ws[i]
		col := metrics.NewCollector()
		instrs, err := w.Run(w.Prog, nil, col, nil)
		if err != nil {
			return fmt.Errorf("table2: %s: %w", w.Name, err)
		}
		col.Instrs = instrs
		rows[i] = Table2Row{Program: w.Name, Class: w.Class, Attr: col.Attributes(w.Prog)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable2 renders Table 2 rows in the paper's column layout.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "Program\tInsns\t%%Breaks\tQ-50\tQ-90\tQ-99\tQ-100\tStatic\t%%Taken\t%%CBr\t%%IJ\t%%Br\t%%Call\t%%Ret\t\n")
	for _, r := range rows {
		a := r.Attr
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			r.Program, a.Instrs, a.PctBreaks, a.Q50, a.Q90, a.Q99, a.Q100,
			a.StaticSites, a.PctTaken, a.PctCBr, a.PctIJ, a.PctBr, a.PctCall, a.PctRet)
	}
	tw.Flush()
	return sb.String()
}

// Table3 evaluates the static prediction architectures (paper Table 3):
// relative CPI under FALLTHROUGH, BT/FNT and LIKELY for the original,
// Greedy-aligned and Try15-aligned program, plus fall-through percentages.
func Table3(cfg Config) ([]*ProgramResult, error) {
	return evaluateSuite(cfg, predict.StaticArchs())
}

// Table4 evaluates the dynamic prediction architectures (paper Table 4).
func Table4(cfg Config) ([]*ProgramResult, error) {
	return evaluateSuite(cfg, predict.DynamicArchs())
}

func evaluateSuite(cfg Config, archs []predict.ArchID) ([]*ProgramResult, error) {
	ws, err := cfg.workloads()
	if err != nil {
		return nil, err
	}
	// The engine shards the whole {program x arch x algo} grid; results come
	// back in suite order regardless of parallelism.
	results, err := evaluatePrograms(ws, archs, cfg)
	if err != nil {
		return nil, err
	}
	out := append([]*ProgramResult(nil), results...)
	// Per-class averages, as the paper prints.
	for _, class := range []workload.Class{workload.SPECfp, workload.SPECint, workload.Other} {
		if hasClass(out, class) {
			out = append(out, ClassAverage(out, class, archs))
		}
	}
	return out, nil
}

func hasClass(rs []*ProgramResult, class workload.Class) bool {
	for _, r := range rs {
		if r.Class == class && !strings.HasPrefix(r.Program, "avg-") {
			return true
		}
	}
	return false
}

// algoHeading maps an algorithm to its table-column heading.
var algoHeading = map[Algo]string{
	AlgoOrig:   "Orig",
	AlgoGreedy: "Greedy",
	AlgoCost:   "Cost",
	AlgoTry:    "Try15",
	AlgoExtTSP: "ExtTSP",
}

// FormatCPITable renders Table 3/4-style results: one row per program, an
// arch x algorithm grid of relative CPI columns (one column per entry of
// Algos()), and (when withFallPct) the fall-through percentage columns.
func FormatCPITable(results []*ProgramResult, archs []predict.ArchID, withFallPct bool) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "Program\t")
	for _, arch := range archs {
		for _, algo := range Algos() {
			fmt.Fprintf(tw, "%s:%s\t", arch, algoHeading[algo])
		}
	}
	if withFallPct {
		fmt.Fprintf(tw, "%%FT:Orig\t%%FT:Greedy\t")
		for _, arch := range archs {
			fmt.Fprintf(tw, "%%FT:Try(%s)\t", arch)
		}
	}
	fmt.Fprintln(tw)
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t", r.Program)
		for _, arch := range archs {
			for _, algo := range Algos() {
				fmt.Fprintf(tw, "%.3f\t", r.Cells[arch][algo].CPI)
			}
		}
		if withFallPct {
			first := archs[0]
			fmt.Fprintf(tw, "%.0f\t%.0f\t", r.Cells[first][AlgoOrig].FallPct, r.Cells[first][AlgoGreedy].FallPct)
			for _, arch := range archs {
				fmt.Fprintf(tw, "%.0f\t", r.Cells[arch][AlgoTry].FallPct)
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return sb.String()
}
