package experiments

import (
	"strings"
	"testing"

	"balign/internal/predict"
	"balign/internal/workload"
)

// fastCfg keeps test experiments small: short traces, narrow TryN windows.
func fastCfg(programs ...string) Config {
	return Config{Scale: 0.05, Window: 6, MaxCombos: 1 << 12, Programs: programs}
}

func TestTable1MentionsAllCosts(t *testing.T) {
	s := Table1()
	for _, want := range []string{"Unconditional", "fall-through", "taken", "Mispredicted", "5", "2", "1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2SubsetShape(t *testing.T) {
	rows, err := Table2(fastCfg("ora", "compress", "db++"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Attr.Instrs == 0 || r.Attr.PctBreaks <= 0 || r.Attr.Q100 == 0 {
			t.Errorf("%s: degenerate attributes %+v", r.Program, r.Attr)
		}
		if r.Attr.Q50 > r.Attr.Q90 || r.Attr.Q90 > r.Attr.Q99 || r.Attr.Q99 > r.Attr.Q100 {
			t.Errorf("%s: quantiles not monotone: %+v", r.Program, r.Attr)
		}
	}
	text := FormatTable2(rows)
	if !strings.Contains(text, "ora") || !strings.Contains(text, "%Taken") {
		t.Errorf("FormatTable2 output malformed:\n%s", text)
	}
}

func TestTable3ShapeOnSubset(t *testing.T) {
	cfg := fastCfg("ora", "compress")
	results, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 programs + 2 class averages.
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for _, r := range results {
		if strings.HasPrefix(r.Program, "avg-") {
			continue
		}
		ft := r.Cells[predict.ArchFallthrough]
		// Alignment must help (or at least not hurt) under FALLTHROUGH —
		// the architecture the paper says has the most headroom.
		if ft[AlgoTry].CPI > ft[AlgoOrig].CPI+0.01 {
			t.Errorf("%s: FALLTHROUGH Try15 CPI %.3f worse than Orig %.3f",
				r.Program, ft[AlgoTry].CPI, ft[AlgoOrig].CPI)
		}
		// Try15 raises the fall-through rate under FALLTHROUGH.
		if ft[AlgoTry].FallPct < ft[AlgoOrig].FallPct {
			t.Errorf("%s: fall-through %%%.0f did not improve over %.0f",
				r.Program, ft[AlgoTry].FallPct, ft[AlgoOrig].FallPct)
		}
		// LIKELY has less headroom than FALLTHROUGH.
		lk := r.Cells[predict.ArchLikely]
		gainFT := ft[AlgoOrig].CPI - ft[AlgoTry].CPI
		gainLK := lk[AlgoOrig].CPI - lk[AlgoTry].CPI
		if gainLK > gainFT+0.02 {
			t.Errorf("%s: LIKELY gained more (%.3f) than FALLTHROUGH (%.3f)", r.Program, gainLK, gainFT)
		}
	}
	text := FormatCPITable(results, predict.StaticArchs(), true)
	if !strings.Contains(text, "fallthrough:Orig") {
		t.Errorf("FormatCPITable missing headers:\n%s", text)
	}
}

func TestTable4ShapeOnSubset(t *testing.T) {
	cfg := fastCfg("ora")
	results, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	for _, arch := range predict.DynamicArchs() {
		cells := r.Cells[arch]
		if cells[AlgoOrig].CPI <= 1.0 {
			t.Errorf("%s/%s: Orig CPI %.3f should exceed 1.0 (penalties exist)", r.Program, arch, cells[AlgoOrig].CPI)
		}
		if cells[AlgoTry].CPI > cells[AlgoOrig].CPI+0.05 {
			t.Errorf("%s/%s: Try15 CPI %.3f much worse than Orig %.3f",
				r.Program, arch, cells[AlgoTry].CPI, cells[AlgoOrig].CPI)
		}
	}
	// The BTB architectures should already be efficient: their original
	// CPI should beat FALLTHROUGH's original CPI on the same program.
	t3, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ftOrig := t3[0].Cells[predict.ArchFallthrough][AlgoOrig].CPI
	btbOrig := r.Cells[predict.ArchBTB256][AlgoOrig].CPI
	if btbOrig >= ftOrig {
		t.Errorf("BTB-256 orig CPI %.3f not better than FALLTHROUGH %.3f", btbOrig, ftOrig)
	}
}

func TestAlignmentNarrowsArchitectureGap(t *testing.T) {
	// Paper: "branch alignment reduces the difference in performance
	// between the various branch architectures" — check FALLTHROUGH vs
	// LIKELY converge after Try15.
	cfg := fastCfg("compress")
	results, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	ft, lk := r.Cells[predict.ArchFallthrough], r.Cells[predict.ArchLikely]
	gapBefore := ft[AlgoOrig].CPI - lk[AlgoOrig].CPI
	gapAfter := ft[AlgoTry].CPI - lk[AlgoTry].CPI
	if gapAfter > gapBefore {
		t.Errorf("architecture gap widened: %.3f -> %.3f", gapBefore, gapAfter)
	}
}

func TestFigure1Results(t *testing.T) {
	results, err := Figure1(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want one per static arch", len(results))
	}
	for _, r := range results {
		if r.CostAfter > r.CostBefore {
			t.Errorf("%s: alignment increased cost %.0f -> %.0f", r.Arch, r.CostBefore, r.CostAfter)
		}
		for _, e := range r.After {
			if e.Disposition == "missing" || e.Disposition == "not adjacent" && e.Edge == "31->25" {
				t.Errorf("%s: edge %s ended up %q", r.Arch, e.Edge, e.Disposition)
			}
		}
	}
	// After alignment every static architecture must predict 31->25
	// correctly (the paper lays 25 out as 31's fall-through; an equally
	// valid BT/FNT arrangement keeps it a predicted backward-taken branch,
	// so BT/FNT is allowed the 2-cycle form but never a mispredict).
	for _, r := range results {
		limit := 1.0
		if r.Arch == predict.ArchBTFNT {
			limit = 2.0
		}
		for _, e := range r.After {
			if e.Edge == "31->25" && e.Cycles > limit {
				t.Errorf("%s: 31->25 costs %.0f cycles after alignment (%s), want <= %.0f",
					r.Arch, e.Cycles, e.Disposition, limit)
			}
		}
	}
	if s := FormatFigure1(results); !strings.Contains(s, "25->31") {
		t.Errorf("FormatFigure1 malformed:\n%s", s)
	}
}

func TestFigure2Result(t *testing.T) {
	r, err := Figure2(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 5 cycles/iteration -> 3 cycles/iteration.
	if r.CyclesPerIterBefore < 4.8 || r.CyclesPerIterBefore > 5.3 {
		t.Errorf("before = %.2f cycles/iter, want ~5", r.CyclesPerIterBefore)
	}
	if r.CyclesPerIterAfter < 2.8 || r.CyclesPerIterAfter > 3.3 {
		t.Errorf("after = %.2f cycles/iter, want ~3", r.CyclesPerIterAfter)
	}
}

func TestFigure3Result(t *testing.T) {
	rows, err := Figure3(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CostTryN > r.CostGreedy {
			t.Errorf("%s: TryN %.0f worse than Greedy %.0f", r.Model, r.CostTryN, r.CostGreedy)
		}
		reduction := 1 - r.CostTryN/r.CostOrig
		// Paper reports a ~33% branch-cost reduction on this loop.
		if reduction < 0.25 {
			t.Errorf("%s: reduction %.2f, want >= 0.25 (paper: ~0.33)", r.Model, reduction)
		}
	}
}

func TestFigure4Subset(t *testing.T) {
	rows, err := Figure4(fastCfg("compress", "eqntott"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.RelOrig != 1.0 {
			t.Errorf("%s: RelOrig = %v", r.Program, r.RelOrig)
		}
		if r.RelTry > 1.02 {
			t.Errorf("%s: Try15 relative time %.3f regressed", r.Program, r.RelTry)
		}
		if r.CyclesOrig <= 0 {
			t.Errorf("%s: no cycles measured", r.Program)
		}
	}
	if s := FormatFigure4(rows); !strings.Contains(s, "Pettis&Hansen") {
		t.Errorf("FormatFigure4 malformed:\n%s", s)
	}
}

func TestAblation(t *testing.T) {
	rows, err := Ablation(fastCfg("ora"))
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The ladder must be monotone within tolerance: TryN <= Greedy.
	if r.CostTryN > r.CostGreedy+0.02 {
		t.Errorf("TryN normalized cost %.3f worse than Greedy %.3f", r.CostTryN, r.CostGreedy)
	}
	if r.CostTryN > 1.0 {
		t.Errorf("TryN did not improve on the original layout: %.3f", r.CostTryN)
	}
	// Window 15 should not be worse than window 5.
	if r.Window15 > r.Window5+0.02 {
		t.Errorf("window 15 cost %.3f worse than window 5 %.3f", r.Window15, r.Window5)
	}
	if s := FormatAblation(rows); !strings.Contains(s, "ora") {
		t.Errorf("FormatAblation malformed:\n%s", s)
	}
}

func TestEvaluateClassAverage(t *testing.T) {
	cfg := fastCfg("ora")
	w, err := workload.ByName("ora", workload.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Evaluate(w, predict.StaticArchs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	avg := ClassAverage([]*ProgramResult{r}, workload.SPECfp, predict.StaticArchs())
	got := avg.Cells[predict.ArchFallthrough][AlgoOrig].CPI
	want := r.Cells[predict.ArchFallthrough][AlgoOrig].CPI
	if got != want {
		t.Errorf("single-program average %.4f != program value %.4f", got, want)
	}
}

func TestTryNNeverWorsensBTFNT(t *testing.T) {
	// Regression guard for two bugs found during reproduction: BT/FNT must
	// predict from the static displacement (not the event outcome), and
	// the BT/FNT cost model must charge fall-through executions of a
	// backward branch as mispredicts. With both fixed, TryN aligned for
	// BT/FNT never loses to the original layout on these branchy kernels.
	cfg := Config{Scale: 0.3, Window: 10, MaxCombos: 1 << 12,
		Programs: []string{"eqntott", "li", "compress"}}
	results, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if strings.HasPrefix(r.Program, "avg-") {
			continue
		}
		cells := r.Cells[predict.ArchBTFNT]
		if cells[AlgoTry].CPI > cells[AlgoOrig].CPI+0.01 {
			t.Errorf("%s: BT/FNT Try15 CPI %.3f worse than Orig %.3f",
				r.Program, cells[AlgoTry].CPI, cells[AlgoOrig].CPI)
		}
	}
}
