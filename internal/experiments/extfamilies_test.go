package experiments

import (
	"strings"
	"testing"

	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/workload"
)

// cfgFixture is the committed real-shaped CFG document at the repository
// root, shared with the cmd-level golden tests.
const cfgFixture = "../../testdata/cfg/go_scanobject.dot"

// TestExtendedFamiliesStreamParity extends the executor parity oracle to
// the adversarial workload families and the CFG import path: the summary
// grid over kmp/mp, phased, a melded kernel and an imported document must
// be byte-identical across stream on/off and kernel flat/ref. The phased
// family is the interesting leg — its hot branch flips direction at every
// phase boundary, so any event reordering between the streamed and the
// record-then-replay lifecycles changes predictor state and shows up as a
// byte diff. make suite-smoke reruns this under GOMAXPROCS=4 and -race.
func TestExtendedFamiliesStreamParity(t *testing.T) {
	cfg := fastCfg("phased", "mp", "sc-meld")
	cfg.CFG = []string{cfgFixture}
	archs := predict.DynamicArchs()

	run := func(label, stream, kernel string) string {
		t.Helper()
		c := cfg
		c.Stream, c.Kernel = stream, kernel
		s, err := Summaries(c, archs)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if want := 4 * len(archs) * len(Algos()); len(s) != want {
			t.Fatalf("%s: %d summaries, want %d", label, len(s), want)
		}
		return metrics.EncodeSummaries(s)
	}

	want := run("baseline", "on", "flat")
	if !strings.Contains(want, "phased") || !strings.Contains(want, "go_scanobject") {
		t.Fatalf("summary grid missing extended programs:\n%s", want)
	}
	for _, stream := range []string{"on", "off"} {
		for _, kernel := range []string{"flat", "ref"} {
			if stream == "on" && kernel == "flat" {
				continue // the baseline itself
			}
			label := "stream=" + stream + " kernel=" + kernel
			if got := run(label, stream, kernel); got != want {
				t.Errorf("%s diverges:\n%s", label, firstDiff(want, got))
			}
		}
	}
}

// TestImportWorkloadFromFixture covers the experiments-level import seam
// directly: the committed fixture resolves to a runnable workload named
// after the document's program.
func TestImportWorkloadFromFixture(t *testing.T) {
	w, err := ImportWorkload(cfgFixture, workload.Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "go_scanobject" {
		t.Errorf("imported workload named %q, want go_scanobject", w.Name)
	}
	if _, err := ImportWorkload("no/such/file.cfg.json", workload.Config{Scale: 0.05}); err == nil {
		t.Error("missing document should error")
	}
}

// TestMeldStudyRuns sanity-checks the alignment-vs-elimination ablation:
// both suite kernels have meldable sites, every row prices all four
// layouts, and the melded variants execute (CPI > 0) on every arch.
func TestMeldStudyRuns(t *testing.T) {
	rows, err := MeldStudy(nil, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(meldStudyArchs()); len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Sites < 1 {
			t.Errorf("%s: %d meld sites, want >= 1", r.Program, r.Sites)
		}
		if r.CPIOrig <= 0 || r.CPIAligned <= 0 || r.CPIMeld <= 0 || r.CPIMeldAligned <= 0 {
			t.Errorf("%s/%s: degenerate CPI row %+v", r.Program, r.Arch, r)
		}
	}
	out := FormatMeldStudy(rows)
	for _, want := range []string{"sc", "espresso", "Meld+Align"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted study missing %q:\n%s", want, out)
		}
	}
}
