package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"balign/internal/metrics"
	"balign/internal/predict"
)

// TestTaggedPredictorStreamParity is the acceptance oracle for the modern
// tagged predictors: the TAGE and hashed-perceptron summary grid must be
// byte-identical across stream on/off, kernel flat/ref, GOMAXPROCS {1,4}
// and intra-variant shard counts {1,3}. These predictors carry the most
// replay-sensitive state in the registry (geometric global history, useful
// bits, training margins), so any divergence between the streamed broadcast,
// the record-then-replay path, or a ForwardBatch fast-forward shows up here
// as a byte diff. make suite-smoke reruns this under GOMAXPROCS=4 -race.
func TestTaggedPredictorStreamParity(t *testing.T) {
	archs := []predict.ArchID{predict.ArchTAGE, predict.ArchPerceptron}
	cfg := fastCfg("phased", "mp")

	run := func(label, stream, kernel string, shards int) string {
		t.Helper()
		c := cfg
		c.Stream, c.Kernel, c.Shards = stream, kernel, shards
		s, err := Summaries(c, archs)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if want := 2 * len(archs) * len(Algos()); len(s) != want {
			t.Fatalf("%s: %d summaries, want %d", label, len(s), want)
		}
		return metrics.EncodeSummaries(s)
	}

	want := run("baseline", "on", "flat", 1)
	for _, arch := range archs {
		if !strings.Contains(want, string(arch)) {
			t.Fatalf("summary grid missing %s rows:\n%s", arch, want)
		}
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, gmp := range []int{1, 4} {
		runtime.GOMAXPROCS(gmp)
		for _, shards := range []int{1, 3} {
			for _, stream := range []string{"on", "off"} {
				for _, kernel := range []string{"flat", "ref"} {
					label := fmt.Sprintf("gomaxprocs=%d shards=%d stream=%s kernel=%s",
						gmp, shards, stream, kernel)
					if got := run(label, stream, kernel, shards); got != want {
						t.Errorf("%s diverges:\n%s", label, firstDiff(want, got))
					}
				}
			}
		}
	}
}
