package experiments

import (
	"testing"

	"balign/internal/core"
	"balign/internal/kernel"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/workload"
)

// kernelWorkloads are the eight VM-executed workload kernels: the programs
// whose traces come from real computation rather than a stochastic walk.
var kernelWorkloads = []string{
	"alvinn", "ear", "tomcatv", "compress", "eqntott", "espresso", "li", "sc",
}

// TestKernelMatchesReferenceGrid is the flat-kernel half of the
// differential oracle: the full {program x architecture x algorithm} grid
// run on the reference executor (-kernel=ref) must be byte-identical to the
// same grid on the compiled flat kernel (-kernel=flat), over every workload
// kernel and every static and dynamic architecture.
func TestKernelMatchesReferenceGrid(t *testing.T) {
	archs := predict.AllArchs()
	run := func(mode string) string {
		cfg := fastCfg(kernelWorkloads...)
		cfg.Kernel = mode
		s, err := Summaries(cfg, archs)
		if err != nil {
			t.Fatalf("kernel=%s: %v", mode, err)
		}
		if want := len(kernelWorkloads) * len(archs) * len(Algos()); len(s) != want {
			t.Fatalf("kernel=%s: %d summaries, want %d", mode, len(s), want)
		}
		return metrics.EncodeSummaries(s)
	}
	ref := run("ref")
	flat := run("flat")
	if ref != flat {
		t.Errorf("flat kernel grid diverges from reference:\n%s", firstDiff(ref, flat))
	}
	// The default mode is the flat kernel.
	if def := run(""); def != flat {
		t.Errorf("default kernel mode is not flat:\n%s", firstDiff(flat, def))
	}
}

// TestKernelPerSiteParityAcrossGrid proves the stronger per-site guarantee
// behind the byte-identical reports: for every workload kernel, every
// aligned variant the grid evaluates (orig, Greedy in both chain orders,
// Try15 per cost model — plus the paper's Cost heuristic), and every
// architecture, the flat kernel's per-site penalty counts equal the
// reference simulator's exactly.
func TestKernelPerSiteParityAcrossGrid(t *testing.T) {
	archs := predict.AllArchs()
	for _, name := range kernelWorkloads {
		t.Run(name, func(t *testing.T) {
			cfg := fastCfg(name)
			w, err := workload.ByName(name, workload.Config{Scale: cfg.Scale, Seed: cfg.Seed})
			if err != nil {
				t.Fatalf("ByName: %v", err)
			}
			u, err := newEvalUnit(w, predict.AllArchs(), cfg)
			if err != nil {
				t.Fatalf("newEvalUnit: %v", err)
			}
			// The grid's variants, plus the Cost heuristic the tables
			// ablate (not part of evalUnit's fan-out).
			cm, _ := trynModelFor(predict.ArchFallthrough)
			cres, err := core.AlignProgram(w.Prog, u.pf, core.Options{Algorithm: core.AlgoCost, Model: cm})
			if err != nil {
				t.Fatalf("AlignProgram(cost): %v", err)
			}
			u.variants["cost"] = &variant{prog: cres.Prog, prof: cres.Prof}
			keys := append(append([]string{}, u.keys...), "cost")

			for _, key := range keys {
				v := u.variants[key]
				rec, err := u.record(key)
				if err != nil {
					t.Fatalf("record %s: %v", key, err)
				}
				for _, arch := range archs {
					k, err := kernel.Compile(v.prog, v.prof, arch, nil)
					if err != nil {
						t.Fatalf("%s/%s: Compile: %v", key, arch, err)
					}
					if err := k.Run(rec.Events); err != nil {
						t.Fatalf("%s/%s: Run: %v", key, arch, err)
					}
					sim, err := predict.NewSimulator(arch, v.prog, v.prof)
					if err != nil {
						t.Fatalf("%s/%s: NewSimulator: %v", key, arch, err)
					}
					wantRes, wantCosts := kernel.ReferenceRun(sim, rec.Events)
					if got := k.Result(); got != wantRes {
						t.Errorf("%s/%s: Result mismatch:\n kernel    %+v\n reference %+v",
							key, arch, got, wantRes)
					}
					gotCosts := k.SiteCosts()
					if len(gotCosts) != len(wantCosts) {
						t.Errorf("%s/%s: active site count: kernel %d, reference %d",
							key, arch, len(gotCosts), len(wantCosts))
					}
					for pc, want := range wantCosts {
						if got := gotCosts[pc]; got != want {
							t.Errorf("%s/%s: site %#x: kernel %+v, reference %+v",
								key, arch, pc, got, want)
						}
					}
				}
			}
		})
	}
}
