package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/ir"
	"balign/internal/pipeline"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/workload"
)

// EdgeReport describes how one CFG edge is realized by a layout under a
// static architecture: as a fall-through, a predicted taken branch, a
// mispredicted taken branch, or a detour through an inserted jump.
type EdgeReport struct {
	Edge        string
	Disposition string
	Cycles      float64 // per traversal
}

// Figure1Result reproduces the paper's Figure 1 discussion: the ESPRESSO
// fragment's hot edges before and after alignment, per static architecture,
// plus the total model cost of both layouts.
type Figure1Result struct {
	Arch       predict.ArchID
	Before     []EdgeReport
	After      []EdgeReport
	CostBefore float64
	CostAfter  float64
	Stats      core.RewriteStats
}

// Figure1 aligns the reconstructed elim_lowering fragment with TryN under
// each static architecture's cost model and reports the hot edges the paper
// walks through (25->31, 31->25, 27->29).
func Figure1(cfg Config) ([]Figure1Result, error) {
	frag := workload.Figure1()
	hot := [][2]ir.BlockID{{1, 7}, {7, 1}, {3, 5}} // 25->31, 31->25, 27->29
	names := []string{"25->31", "31->25", "27->29"}

	var out []Figure1Result
	for _, arch := range predict.StaticArchs() {
		m, order := trynModelFor(arch)
		res, err := core.AlignProgram(frag.Prog, frag.Prof, core.Options{
			Algorithm: core.AlgoTryN, Model: m, Order: order,
			Window: cfg.window(), MaxCombos: cfg.MaxCombos,
		})
		if err != nil {
			return nil, err
		}
		r := Figure1Result{
			Arch:       arch,
			CostBefore: cost.ProgramCost(frag.Prog, frag.Prof, m),
			CostAfter:  cost.ProgramCost(res.Prog, res.Prof, m),
			Stats:      res.Stats,
		}
		for i, e := range hot {
			r.Before = append(r.Before, edgeReport(names[i], frag.Prog.Procs[0], frag.Prof.Procs["elim_lowering"], e[0], e[1], m))
			r.After = append(r.After, edgeReportByOrig(names[i], res.Prog.Procs[0], res.Prof.Procs["elim_lowering"], e[0], e[1], m))
		}
		out = append(out, r)
	}
	return out, nil
}

// edgeReport classifies the CFG edge from->to in a procedure whose block
// IDs equal the original IDs.
func edgeReport(name string, p *ir.Proc, pp *profile.ProcProfile, from, to ir.BlockID, m cost.Model) EdgeReport {
	return classifyEdge(name, p, pp, from, to, m)
}

// edgeReportByOrig resolves original block IDs through the rewriter's Orig
// mapping, following a synthesized jump block when the edge was detoured.
func edgeReportByOrig(name string, p *ir.Proc, pp *profile.ProcProfile, fromOrig, toOrig ir.BlockID, m cost.Model) EdgeReport {
	from, to := ir.NoBlock, ir.NoBlock
	for id, b := range p.Blocks {
		if b.Orig == fromOrig {
			from = ir.BlockID(id)
		}
		if b.Orig == toOrig {
			to = ir.BlockID(id)
		}
	}
	if from == ir.NoBlock || to == ir.NoBlock {
		return EdgeReport{Edge: name, Disposition: "missing"}
	}
	return classifyEdge(name, p, pp, from, to, m)
}

func classifyEdge(name string, p *ir.Proc, pp *profile.ProcProfile, from, to ir.BlockID, m cost.Model) EdgeReport {
	rep := EdgeReport{Edge: name}
	b := p.Block(from)
	term, hasTerm := b.Terminator()

	// Detour through a synthesized jump block?
	if f := p.FallSucc(from); f != ir.NoBlock && f != to {
		jb := p.Block(f)
		if jb.Orig == ir.NoBlock {
			if jt, ok := jb.Terminator(); ok && jt.Kind() == ir.Br && jt.TargetBlock == to {
				rep.Disposition = "fall-through + jump"
				rep.Cycles = cost.CyclesFall + cost.CyclesUncond
				return rep
			}
		}
	}

	switch {
	case hasTerm && term.Kind() == ir.CondBr && term.TargetBlock == to:
		// Taken edge: is it predicted under the model?
		backward := p.Block(to).Addr <= b.TermAddr()
		perTraversal := m.CondBranch(0, 1, backward)
		rep.Cycles = perTraversal
		switch {
		case perTraversal <= cost.CyclesTakenPred:
			rep.Disposition = "predicted taken (misfetch)"
		case perTraversal >= cost.CyclesMispredict:
			rep.Disposition = "mispredicted"
		default:
			rep.Disposition = "partly predicted"
		}
		// LIKELY predicts the majority direction, which the weight-free
		// call above cannot see: recover it from the profile.
		if _, ok := m.(cost.LikelyModel); ok {
			c := pp.Branches[from]
			if c.Taken > c.Fall {
				rep.Disposition = "predicted taken (misfetch)"
				rep.Cycles = cost.CyclesTakenPred
			} else {
				rep.Disposition = "mispredicted"
				rep.Cycles = cost.CyclesMispredict
			}
		}
	case hasTerm && term.Kind() == ir.Br && term.TargetBlock == to:
		rep.Disposition = "unconditional branch"
		rep.Cycles = cost.CyclesUncond
	case p.FallSucc(from) == to:
		if hasTerm && term.Kind() == ir.CondBr {
			rep.Disposition = "fall-through of conditional"
			rep.Cycles = cost.CyclesFall
		} else {
			rep.Disposition = "fall-through"
			rep.Cycles = 0
		}
	default:
		rep.Disposition = "not adjacent"
	}
	return rep
}

// FormatFigure1 renders the Figure 1 report.
func FormatFigure1(results []Figure1Result) string {
	var sb strings.Builder
	for _, r := range results {
		fmt.Fprintf(&sb, "architecture %s: model cost %.0f -> %.0f (%.1f%% reduction)\n",
			r.Arch, r.CostBefore, r.CostAfter, 100*(1-r.CostAfter/r.CostBefore))
		tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "edge\tbefore\tafter")
		for i := range r.Before {
			fmt.Fprintf(tw, "%s\t%s (%.0f cyc)\t%s (%.0f cyc)\n",
				r.Before[i].Edge, r.Before[i].Disposition, r.Before[i].Cycles,
				r.After[i].Disposition, r.After[i].Cycles)
		}
		tw.Flush()
		sb.WriteString("\n")
	}
	return sb.String()
}

// Figure2Result reproduces the ALVINN single-block-loop arithmetic: cost
// per loop iteration before and after the loop trick on FALLTHROUGH.
type Figure2Result struct {
	CyclesPerIterBefore float64
	CyclesPerIterAfter  float64
	Stats               core.RewriteStats
}

// Figure2 runs the loop trick on the reconstructed input_hidden fragment.
func Figure2(cfg Config) (*Figure2Result, error) {
	frag := workload.Figure2()
	m := cost.FallthroughModel{}
	res, err := core.AlignProgram(frag.Prog, frag.Prof, core.Options{
		Algorithm: core.AlgoTryN, Model: m,
		Window: cfg.window(), MaxCombos: cfg.MaxCombos, MinWeight: 2,
	})
	if err != nil {
		return nil, err
	}
	iters := float64(frag.Prof.Procs["input_hidden"].Weight(1, 1))
	return &Figure2Result{
		CyclesPerIterBefore: cost.ProgramCost(frag.Prog, frag.Prof, m) / iters,
		CyclesPerIterAfter:  cost.ProgramCost(res.Prog, res.Prof, m) / iters,
		Stats:               res.Stats,
	}, nil
}

// Figure3Result reproduces the Figure 3 loop-breaking comparison: branch
// cost of the original, Greedy-aligned and TryN-aligned loop under a model.
type Figure3Result struct {
	Model      string
	CostOrig   float64
	CostGreedy float64
	CostTryN   float64
}

// Figure3 compares the algorithms on the loop only TryN knows where to
// break.
func Figure3(cfg Config) ([]Figure3Result, error) {
	frag := workload.Figure3()
	var out []Figure3Result
	for _, m := range []cost.Model{cost.BTFNTModel{}, cost.LikelyModel{}} {
		greedy, err := core.AlignProgram(frag.Prog, frag.Prof, core.Options{
			Algorithm: core.AlgoGreedy, Order: core.OrderBTFNT,
		})
		if err != nil {
			return nil, err
		}
		tryn, err := core.AlignProgram(frag.Prog, frag.Prof, core.Options{
			Algorithm: core.AlgoTryN, Model: m, Order: core.OrderBTFNT,
			Window: cfg.window(), MaxCombos: cfg.MaxCombos,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Figure3Result{
			Model:      m.Name(),
			CostOrig:   cost.ProgramCost(frag.Prog, frag.Prof, m),
			CostGreedy: cost.ProgramCost(greedy.Prog, greedy.Prof, m),
			CostTryN:   cost.ProgramCost(tryn.Prog, tryn.Prof, m),
		})
	}
	return out, nil
}

// Figure4Row is one program's relative execution time on the Alpha-like
// dual-issue pipeline model (paper Figure 4): original = 1.0.
type Figure4Row struct {
	Program    string
	RelOrig    float64
	RelGreedy  float64
	RelTry     float64
	CyclesOrig float64
}

// Figure4 measures total modeled execution time for the SPEC92 C programs:
// original, Pettis-Hansen (Greedy, hottest-first chains) and Try15 (with
// the BTB cost model, which the paper's OM implementation found best on the
// real machine).
func Figure4(cfg Config) ([]Figure4Row, error) {
	ws, err := workload.CSuite(workload.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if len(cfg.Programs) > 0 {
		keep := map[string]bool{}
		for _, p := range cfg.Programs {
			keep[p] = true
		}
		var filtered []*workload.Workload
		for _, w := range ws {
			if keep[w.Name] {
				filtered = append(filtered, w)
			}
		}
		ws = filtered
	}

	labels := make([]string, len(ws))
	for i, w := range ws {
		labels[i] = w.Name
	}
	rows := make([]Figure4Row, len(ws))
	err = runIndexed(cfg, "fig4", labels, func(i int) error {
		w := ws[i]
		pf, _, err := w.CollectProfile()
		if err != nil {
			return err
		}
		cycles := func(prog *ir.Program, prof *profile.Profile) (float64, error) {
			sim := pipeline.New(pipeline.DefaultConfig())
			instrs, err := w.Run(prog, prof, sim, nil)
			if err != nil {
				return 0, err
			}
			return sim.Cycles(instrs), nil
		}
		base, err := cycles(w.Prog, pf)
		if err != nil {
			return err
		}
		greedy, err := core.AlignProgram(w.Prog, pf, core.Options{Algorithm: core.AlgoGreedy})
		if err != nil {
			return err
		}
		gc, err := cycles(greedy.Prog, greedy.Prof)
		if err != nil {
			return err
		}
		tryn, err := core.AlignProgram(w.Prog, pf, core.Options{
			Algorithm: core.AlgoTryN, Model: cost.BTBModel{},
			Window: cfg.window(), MaxCombos: cfg.MaxCombos,
		})
		if err != nil {
			return err
		}
		tc, err := cycles(tryn.Prog, tryn.Prof)
		if err != nil {
			return err
		}
		rows[i] = Figure4Row{
			Program: w.Name, RelOrig: 1.0,
			RelGreedy: gc / base, RelTry: tc / base,
			CyclesOrig: base,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatFigure4 renders the Figure 4 series.
func FormatFigure4(rows []Figure4Row) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Program\tOriginal\tPettis&Hansen\tTry15\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t\n", r.Program, r.RelOrig, r.RelGreedy, r.RelTry)
	}
	tw.Flush()
	return sb.String()
}
