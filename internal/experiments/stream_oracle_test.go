package experiments

import (
	"fmt"
	"testing"

	"balign/internal/core"
	"balign/internal/kernel"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/sim"
	"balign/internal/trace"
	"balign/internal/workload"
)

// TestStreamMatchesRecordedGrid is the whole-suite streaming oracle: the
// full {program x architecture x algorithm} grid evaluated with the
// streamed broadcast pipeline (-stream=on) must be byte-identical to the
// same grid evaluated through the recorded trace cache (-stream=off), over
// every workload kernel and every architecture.
func TestStreamMatchesRecordedGrid(t *testing.T) {
	archs := predict.AllArchs()
	run := func(mode string) string {
		cfg := fastCfg(kernelWorkloads...)
		cfg.Stream = mode
		s, err := Summaries(cfg, archs)
		if err != nil {
			t.Fatalf("stream=%s: %v", mode, err)
		}
		if want := len(kernelWorkloads) * len(archs) * len(Algos()); len(s) != want {
			t.Fatalf("stream=%s: %d summaries, want %d", mode, len(s), want)
		}
		return metrics.EncodeSummaries(s)
	}
	on := run("on")
	off := run("off")
	if on != off {
		t.Errorf("streamed grid diverges from recorded:\n%s", firstDiff(on, off))
	}
	// The default mode is streaming.
	if def := run(""); def != on {
		t.Errorf("default stream mode is not on:\n%s", firstDiff(on, def))
	}
}

// TestStreamMatchesRecordedSynthetic repeats the byte-identical check over
// walker-traced synthetic programs at randomized seeds: the compiled
// WalkSource must reproduce the push-style Walker — RNG draw for RNG draw —
// through alignment, work-equivalent truncation and the full grid.
func TestStreamMatchesRecordedSynthetic(t *testing.T) {
	archs := predict.AllArchs()
	for _, seed := range []int64{1, 42, 1337} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			run := func(mode string) string {
				cfg := fastCfg("ora", "doduc", "gcc", "db++")
				cfg.Seed = seed
				cfg.Stream = mode
				s, err := Summaries(cfg, archs)
				if err != nil {
					t.Fatalf("stream=%s: %v", mode, err)
				}
				return metrics.EncodeSummaries(s)
			}
			on := run("on")
			off := run("off")
			if on != off {
				t.Errorf("streamed synthetic grid diverges from recorded:\n%s", firstDiff(on, off))
			}
		})
	}
}

// TestStreamPerSiteParityAcrossGrid proves the stronger per-site guarantee
// behind the byte-identical reports: for every workload kernel, every
// aligned variant the grid evaluates (orig, Greedy in both chain orders,
// Try15 per cost model — plus the paper's Cost heuristic), and every
// architecture, a single streamed generation broadcast to all kernels
// yields per-site cycle maps equal to the reference SiteRecorder replaying
// the recorded trace.
func TestStreamPerSiteParityAcrossGrid(t *testing.T) {
	archs := predict.AllArchs()
	for _, name := range kernelWorkloads {
		t.Run(name, func(t *testing.T) {
			cfg := fastCfg(name)
			w, err := workload.ByName(name, workload.Config{Scale: cfg.Scale, Seed: cfg.Seed})
			if err != nil {
				t.Fatalf("ByName: %v", err)
			}
			u, err := newEvalUnit(w, predict.AllArchs(), cfg)
			if err != nil {
				t.Fatalf("newEvalUnit: %v", err)
			}
			cm, _ := trynModelFor(predict.ArchFallthrough)
			cres, err := core.AlignProgram(w.Prog, u.pf, core.Options{Algorithm: core.AlgoCost, Model: cm})
			if err != nil {
				t.Fatalf("AlignProgram(cost): %v", err)
			}
			u.variants["cost"] = &variant{prog: cres.Prog, prof: cres.Prof}
			keys := append(append([]string{}, u.keys...), "cost")

			str := sim.NewStreamer(0, 0, nil)
			for _, key := range keys {
				v := u.variants[key]
				rec, err := u.record(key)
				if err != nil {
					t.Fatalf("record %s: %v", key, err)
				}
				lay, err := trace.CompileLayout(v.prog)
				if err != nil {
					t.Fatalf("%s: CompileLayout: %v", key, err)
				}
				src, err := u.w.Stream(v.prog, v.prof, lay, str.BatchCap())
				if err != nil {
					t.Fatalf("%s: Stream: %v", key, err)
				}

				// One streamed generation fans out to every architecture...
				kernels := make([]*kernel.Kernel, len(archs))
				consumers := make([]func(*trace.Batch) error, len(archs))
				for i, arch := range archs {
					k, err := kernel.CompileArch(lay, v.prog, v.prof, arch, nil)
					if err != nil {
						t.Fatalf("%s/%s: CompileArch: %v", key, arch, err)
					}
					kernels[i] = k
					consumers[i] = k.RunBatch
				}
				if err := str.Broadcast(nil, src, consumers); err != nil {
					t.Fatalf("%s: Broadcast: %v", key, err)
				}
				if got, want := src.Instrs(), rec.Instrs; got != want {
					t.Errorf("%s: streamed %d instrs, recorded %d", key, got, want)
				}
				src.Close()

				// ...and each must match the reference per-site attribution
				// over the recorded trace exactly.
				for i, arch := range archs {
					ref, err := predict.NewSimulator(arch, v.prog, v.prof)
					if err != nil {
						t.Fatalf("%s/%s: NewSimulator: %v", key, arch, err)
					}
					sr := kernel.NewSiteRecorder(ref)
					rec.Replay(sr)
					if got, want := kernels[i].Result(), sr.Sim.Result(); got != want {
						t.Errorf("%s/%s: Result mismatch:\n stream    %+v\n reference %+v",
							key, arch, got, want)
					}
					gotCycles, wantCycles := kernels[i].SiteCycles(), sr.Cycles()
					if len(gotCycles) != len(wantCycles) {
						t.Errorf("%s/%s: active site count: stream %d, reference %d",
							key, arch, len(gotCycles), len(wantCycles))
					}
					for pc, want := range wantCycles {
						if got := gotCycles[pc]; got != want {
							t.Errorf("%s/%s: site %#x cycles: stream %d, reference %d",
								key, arch, pc, got, want)
						}
					}
				}
			}
		})
	}
}
