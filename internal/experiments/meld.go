package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/ir"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/workload"
)

// MeldRow is one cell row of the alignment-vs-elimination ablation: the
// same program evaluated as laid out (orig), aligned (Try15 with the
// architecture's cost model), branch-melded (if-converted with cmov, no
// realignment), and melded-then-aligned. All CPIs are relative to the
// original program's instruction count, so the melded columns include the
// cost of the extra always-executed cmov instructions — elimination only
// wins when removing the branch buys more than the speculated work costs,
// which is exactly the trade the paper's alignment sidesteps.
type MeldRow struct {
	Program string
	Arch    predict.ArchID
	// Sites is the number of branch sites the if-converter removed.
	Sites          int
	CPIOrig        float64
	CPIAligned     float64
	CPIMeld        float64
	CPIMeldAligned float64
}

// meldStudyArchs spans the static/dynamic divide: static fetch
// architectures price every branch, so elimination helps most; the PHT and
// BTB predict the cheap branches away and leave melding mostly its
// instruction overhead.
func meldStudyArchs() []predict.ArchID {
	return []predict.ArchID{predict.ArchFallthrough, predict.ArchBTFNT, predict.ArchPHTDirect, predict.ArchBTB64}
}

// MeldStudy runs the ablation for each base program that has a registered
// *-meld variant (default: all of them).
func MeldStudy(programs []string, cfg Config) ([]MeldRow, error) {
	if len(programs) == 0 {
		programs = []string{"sc", "espresso"}
	}
	archs := meldStudyArchs()
	rows := make([]MeldRow, len(programs)*len(archs))
	err := runIndexed(cfg, "meld", programs, func(i int) error {
		name := programs[i]
		wcfg := workload.Config{Scale: cfg.Scale, Seed: cfg.Seed}
		base, err := workload.ByName(name, wcfg)
		if err != nil {
			return err
		}
		meld, err := workload.ByName(name+"-meld", wcfg)
		if err != nil {
			return err
		}
		_, sites, err := workload.MeldProgram(base.Prog)
		if err != nil {
			return err
		}
		basePf, origInstrs, err := base.CollectProfile()
		if err != nil {
			return err
		}
		meldPf, _, err := meld.CollectProfile()
		if err != nil {
			return err
		}

		for j, arch := range archs {
			model, err := cost.ForArch(arch)
			if err != nil {
				return err
			}
			opts := core.Options{
				Algorithm: core.AlgoTryN, Model: model,
				Window: cfg.window(), MaxCombos: cfg.MaxCombos,
			}
			alignedBase, err := core.AlignProgram(base.Prog, basePf, opts)
			if err != nil {
				return err
			}
			alignedMeld, err := core.AlignProgram(meld.Prog, meldPf, opts)
			if err != nil {
				return err
			}

			cpi := func(w *workload.Workload, prog *corePair) (float64, error) {
				sim, err := predict.NewSimulator(arch, prog.prog, prog.prof)
				if err != nil {
					return 0, err
				}
				instrs, err := w.Run(prog.prog, prog.prof, sim, nil)
				if err != nil {
					return 0, err
				}
				return metrics.RelativeCPI(origInstrs, instrs, metrics.BEPFromResult(sim.Result())), nil
			}

			row := MeldRow{Program: name, Arch: arch, Sites: sites}
			if row.CPIOrig, err = cpi(base, &corePair{base.Prog, basePf}); err != nil {
				return err
			}
			if row.CPIAligned, err = cpi(base, &corePair{alignedBase.Prog, alignedBase.Prof}); err != nil {
				return err
			}
			if row.CPIMeld, err = cpi(meld, &corePair{meld.Prog, meldPf}); err != nil {
				return err
			}
			if row.CPIMeldAligned, err = cpi(meld, &corePair{alignedMeld.Prog, alignedMeld.Prof}); err != nil {
				return err
			}
			rows[i*len(archs)+j] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// corePair bundles a program variant with the profile keyed to its layout.
type corePair struct {
	prog *ir.Program
	prof *profile.Profile
}

// FormatMeldStudy renders the ablation.
func FormatMeldStudy(rows []MeldRow) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Program\tArch\tSites\tOrig\tAligned\tMeld\tMeld+Align\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t\n",
			r.Program, r.Arch, r.Sites, r.CPIOrig, r.CPIAligned, r.CPIMeld, r.CPIMeldAligned)
	}
	tw.Flush()
	return sb.String()
}
