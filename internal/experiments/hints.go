package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"balign/internal/predict"
	"balign/internal/trace"
	"balign/internal/workload"
)

// HintRow compares LIKELY hint sources on one program: conditional branch
// prediction accuracy with profile-derived hints versus compile-time
// heuristic hints. The paper chooses profiles because they are "much more
// accurate and simple to gather"; this experiment quantifies the gap.
type HintRow struct {
	Program      string
	ProfileAcc   float64 // conditional prediction accuracy, profile hints
	HeuristicAcc float64 // accuracy with compile-time heuristics
	BTFNTAcc     float64 // accuracy of plain BT/FNT for reference
	ProfileBEP   uint64
	HeuristicBEP uint64
}

// HintStudy measures hint-source accuracy on the original program layouts.
func HintStudy(programs []string, cfg Config) ([]HintRow, error) {
	if len(programs) == 0 {
		programs = []string{"espresso", "gcc", "li"}
	}
	rows := make([]HintRow, len(programs))
	err := runIndexed(cfg, "hints", programs, func(i int) error {
		name := programs[i]
		w, err := workload.ByName(name, workload.Config{Scale: cfg.Scale, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		pf, _, err := w.CollectProfile()
		if err != nil {
			return err
		}
		profileSim := predict.NewStaticSim(predict.NewLikely(w.Prog, pf))
		heuristicSim := predict.NewStaticSim(predict.NewHeuristicLikely(w.Prog))
		btfntSim := predict.NewStaticSim(predict.BTFNT{})
		if _, err := w.Run(w.Prog, pf, trace.MultiSink{profileSim, heuristicSim, btfntSim}, nil); err != nil {
			return err
		}
		rp, rh, rb := profileSim.Result(), heuristicSim.Result(), btfntSim.Result()
		rows[i] = HintRow{
			Program:      name,
			ProfileAcc:   rp.CondAccuracy(),
			HeuristicAcc: rh.CondAccuracy(),
			BTFNTAcc:     rb.CondAccuracy(),
			ProfileBEP:   rp.BEP(predict.DefaultMisfetchPenalty, predict.DefaultMispredictPenalty),
			HeuristicBEP: rh.BEP(predict.DefaultMisfetchPenalty, predict.DefaultMispredictPenalty),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatHintStudy renders the hint comparison.
func FormatHintStudy(rows []HintRow) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Program\tprofile acc\theuristic acc\tBT/FNT acc\tprofile BEP\theuristic BEP\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%d\t%d\t\n",
			r.Program, r.ProfileAcc, r.HeuristicAcc, r.BTFNTAcc, r.ProfileBEP, r.HeuristicBEP)
	}
	tw.Flush()
	return sb.String()
}
