package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/workload"
)

// AblationRow compares design choices the paper discusses in §6.1 on one
// program: chain ordering for Greedy, the algorithm ladder
// (Greedy < Cost < TryN) under the FALLTHROUGH model, and TryN window
// sizes (the paper's Try10-vs-Try15 remark).
type AblationRow struct {
	Program string

	// Greedy chain ordering, evaluated as relative CPI on BT/FNT.
	GreedyHottestCPI float64
	GreedyBTFNTCPI   float64

	// Algorithm ladder: model cost under FALLTHROUGH, normalized to the
	// original program's cost (lower is better). ExtTSP optimizes its own
	// distance-weighted objective, not this model, so its column shows how
	// much of the model-targeted win the objective recovers for free.
	CostGreedy float64
	CostCost   float64
	CostTryN   float64
	CostExtTSP float64

	// TryN window sweep: model cost (normalized) for windows 5, 10, 15.
	Window5  float64
	Window10 float64
	Window15 float64
}

// Ablation runs the §6.1 design-choice comparisons over the configured
// programs (default: a representative trio).
func Ablation(cfg Config) ([]AblationRow, error) {
	programs := cfg.Programs
	if len(programs) == 0 {
		programs = []string{"espresso", "eqntott", "doduc"}
	}
	rows := make([]AblationRow, len(programs))
	err := runIndexed(cfg, "ablation", programs, func(i int) error {
		name := programs[i]
		w, err := workload.ByName(name, workload.Config{Scale: cfg.Scale, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		pf, origInstrs, err := w.CollectProfile()
		if err != nil {
			return err
		}
		row := AblationRow{Program: name}

		// Chain ordering on BT/FNT.
		cpiOn := func(opts core.Options) (float64, error) {
			res, err := core.AlignProgram(w.Prog, pf, opts)
			if err != nil {
				return 0, err
			}
			sim, err := predict.NewSimulator(predict.ArchBTFNT, res.Prog, res.Prof)
			if err != nil {
				return 0, err
			}
			instrs, err := w.Run(res.Prog, res.Prof, sim, nil)
			if err != nil {
				return 0, err
			}
			return metrics.RelativeCPI(origInstrs, instrs, metrics.BEPFromResult(sim.Result())), nil
		}
		if row.GreedyHottestCPI, err = cpiOn(core.Options{Algorithm: core.AlgoGreedy, Order: core.OrderHottest}); err != nil {
			return err
		}
		if row.GreedyBTFNTCPI, err = cpiOn(core.Options{Algorithm: core.AlgoGreedy, Order: core.OrderBTFNT}); err != nil {
			return err
		}

		// Algorithm ladder under the FALLTHROUGH model.
		m := cost.FallthroughModel{}
		base := cost.ProgramCost(w.Prog, pf, m)
		ladder := func(opts core.Options) (float64, error) {
			res, err := core.AlignProgram(w.Prog, pf, opts)
			if err != nil {
				return 0, err
			}
			return cost.ProgramCost(res.Prog, res.Prof, m) / base, nil
		}
		if row.CostGreedy, err = ladder(core.Options{Algorithm: core.AlgoGreedy}); err != nil {
			return err
		}
		if row.CostCost, err = ladder(core.Options{Algorithm: core.AlgoCost, Model: m}); err != nil {
			return err
		}
		if row.CostTryN, err = ladder(core.Options{Algorithm: core.AlgoTryN, Model: m, Window: cfg.window(), MaxCombos: cfg.MaxCombos}); err != nil {
			return err
		}
		if row.CostExtTSP, err = ladder(core.Options{Algorithm: core.AlgoExtTSP}); err != nil {
			return err
		}

		// Window sweep.
		for _, win := range []int{5, 10, 15} {
			v, err := ladder(core.Options{Algorithm: core.AlgoTryN, Model: m, Window: win, MaxCombos: cfg.MaxCombos})
			if err != nil {
				return err
			}
			switch win {
			case 5:
				row.Window5 = v
			case 10:
				row.Window10 = v
			case 15:
				row.Window15 = v
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAblation renders the ablation rows.
func FormatAblation(rows []AblationRow) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 1, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Program\tGreedy(hot)CPI\tGreedy(btfnt)CPI\tGreedy\tCost\tTryN\tExtTSP\tW5\tW10\tW15\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t\n",
			r.Program, r.GreedyHottestCPI, r.GreedyBTFNTCPI,
			r.CostGreedy, r.CostCost, r.CostTryN, r.CostExtTSP,
			r.Window5, r.Window10, r.Window15)
	}
	tw.Flush()
	return sb.String()
}
