// Package kernel is the flattened branch-event simulation kernel: the
// compiled fast path of the evaluation harness. The reference path in
// internal/predict dispatches every break event through a trace.Sink
// interface into a simulator that calls an interface-typed direction
// predictor and, for the LIKELY architecture, a map-backed hint table. That
// is flexible but costs two or three dynamic dispatches plus a 48-byte
// event copy per event, millions of times per evaluation cell.
//
// Compile precompiles one (program, architecture) pair into struct-of-arrays
// form:
//
//   - a dense PC-indexed site table (one int32 per instruction slot) mapping
//     event addresses to compact site ids with a single bounds check — no
//     map lookups;
//   - parallel per-site descriptor slices (kind, LIKELY hint bit) and
//     per-site cost accumulators (events, misfetches, mispredicts);
//   - devirtualized predictor state as flat slices: PHT/gshare/local 2-bit
//     counter arrays, BTB lines with their LRU ticks, and a fixed-size
//     return stack.
//
// Run then consumes trace events in batches with no interface dispatch in
// the inner loop. The kernel is held to exact parity with the reference
// simulators — identical predict.Result tallies and identical per-site
// penalty counts on every event stream — by the differential oracles in
// this package and in internal/experiments.
package kernel

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/obs"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/trace"
)

// class is the devirtualized architecture discriminant: the one switch the
// inner loop keys on instead of interface dispatch.
type class uint8

const (
	classFallthrough class = iota
	classBTFNT
	classLikely
	classPHTDirect
	classPHTGshare
	classPHTLocal
	classBTB
	classTAGE
	classPerceptron
)

// Site describes one static control-transfer instruction of the compiled
// program: the row of the descriptor table a dynamic event resolves to.
// The program half of the compile lives in internal/trace (the streaming
// pipeline shares one Layout across all architectures), so Site is the
// layout's descriptor row.
type Site = trace.SiteInfo

// SiteCost accumulates one site's dynamic penalty counts.
type SiteCost struct {
	// Events is the number of break events the site produced.
	Events uint64
	// Misfetches and Mispredicts count the penalty events charged to the
	// site under the paper's rules.
	Misfetches  uint64
	Mispredicts uint64
}

// Cycles returns the site's branch execution penalty in cycles under the
// given penalty weights.
func (c SiteCost) Cycles(misfetchPenalty, mispredictPenalty uint64) uint64 {
	return c.Misfetches*misfetchPenalty + c.Mispredicts*mispredictPenalty
}

// Kernel is one compiled (program, architecture) simulation. Compile it
// once, feed it event batches with Run, read totals with Result and the
// per-site breakdown with SiteCosts. A Kernel is not safe for concurrent
// use; Reset rewinds it for another replay.
type Kernel struct {
	arch  predict.ArchID
	class class
	obs   *obs.Recorder

	// Program tables: the per-program half of the compile, shared across
	// every architecture kernel simulating the same program. lay owns the
	// tables; base/siteOf/sites are its backing slices cached for the inner
	// loops. siteOf packs each instruction slot's site id and static kind
	// into one int32 (id<<siteShift | kind), so the inner loop resolves and
	// validates an event with a single load; empty slots hold -1.
	lay    *trace.Layout
	base   uint64
	siteOf []int32
	sites  []Site // descriptor rows in (proc, block, instr) order

	// Compact per-site hot tables, derived from sites at compile time so
	// the batch inner loops never touch the 40-byte descriptor rows: a
	// one-byte kind for op validation, the PC's instruction slot (the PHT
	// index source), the Call return address, and — for the static
	// direction classes only — the site's fixed prediction bit
	// (FALLTHROUGH: always 0; BT/FNT: target <= PC; LIKELY: the profile's
	// majority direction).
	kindOf []uint8
	slotOf []uint64
	fallOf []uint64
	predOf []uint8
	// takenOf is the per-site taken target, built for classBTB only (the
	// install path writes it into evicted lines).
	takenOf []uint64

	// Per-site cost accumulators: one struct per site so an event's three
	// counter bumps share a cache line.
	costs []SiteCost

	// Direction predictor state (PHT classes).
	counters  []predict.Counter2
	mask      uint64
	ghr       uint64
	histories []uint16
	histMask  uint16
	idxMask   uint64

	// BTB state (classBTB), in structure-of-arrays form so a set's way
	// scan reads one cache line of tags instead of striding over full
	// lines. Semantics replicate predict.BTBEntry exactly, including the
	// global-tick LRU. A tag stores pc+1 so zero means invalid; btbSetMask
	// is btbSets-1 (predict.NewBTB enforces a power-of-two set count, so
	// set selection is a mask, not a modulo).
	btbSets    int
	btbSetMask uint64
	btbWays    int
	btbTags    []uint64
	btbTargets []uint64
	btbLRU     []uint64
	btbCtr     []predict.Counter2
	btbTick    uint64

	// Tagged-predictor state (classTAGE / classPerceptron): the predictor
	// core shared with the reference simulator, driven through its
	// slot/bit methods so both executors evolve identical state.
	tage *predict.TAGE
	perc *predict.HashedPerceptron

	// Return stack (all classes), replicating predict.ReturnStack.
	ras      [predict.ReturnStackDepth]uint64
	rasTop   int
	rasDepth int

	res predict.Result
}

// siteShift is the packed-slot split: the low bits hold the site's static
// ir.Kind, the high bits its site id. It equals the trace package's
// SlotShift because the slot table now lives there.
const siteShift = trace.SlotShift

// classFor resolves an architecture's registry descriptor and maps its
// kernel kind to the devirtualized class. The registry is the single
// source of the architecture set: an id the registry doesn't know cannot
// compile, and one it does know carries its own table geometry, so adding
// an architecture never touches this switch unless it needs a genuinely
// new inner-loop shape.
func classFor(arch predict.ArchID) (class, predict.Desc, error) {
	d, ok := predict.Lookup(arch)
	if !ok {
		return 0, predict.Desc{}, fmt.Errorf("kernel: unknown architecture %q (known: %v)",
			arch, predict.KnownArchNames())
	}
	switch d.Kernel.Kind {
	case predict.KernelFallthrough:
		return classFallthrough, d, nil
	case predict.KernelBTFNT:
		return classBTFNT, d, nil
	case predict.KernelLikely:
		return classLikely, d, nil
	case predict.KernelPHTDirect:
		return classPHTDirect, d, nil
	case predict.KernelPHTGshare:
		return classPHTGshare, d, nil
	case predict.KernelPHTLocal:
		return classPHTLocal, d, nil
	case predict.KernelBTB:
		return classBTB, d, nil
	case predict.KernelTAGE:
		return classTAGE, d, nil
	case predict.KernelPerceptron:
		return classPerceptron, d, nil
	default:
		return 0, predict.Desc{}, fmt.Errorf("kernel: architecture %q has unsupported kernel kind %d",
			arch, d.Kernel.Kind)
	}
}

// Compile flattens prog for the named architecture: the per-program layout
// compile (trace.CompileLayout) followed by the per-architecture state
// compile (CompileArch). Callers simulating one program on several
// architectures should compile the layout once and call CompileArch per
// architecture instead — that split is what the streaming pipeline's
// fan-out rides on.
//
// Addresses must have been assigned (ir.Program.AssignAddresses): the dense
// site table is keyed by instruction slot, and duplicate site addresses are
// reported as errors.
func Compile(prog *ir.Program, prof *profile.Profile, arch predict.ArchID, rec *obs.Recorder) (*Kernel, error) {
	lay, err := trace.CompileLayout(prog)
	if err != nil {
		return nil, err
	}
	return CompileArch(lay, prog, prof, arch, rec)
}

// CompileArch builds the per-architecture half of a kernel on top of an
// already-compiled program layout: the devirtualized class, predictor
// state, and per-site accumulators. The LIKELY architecture derives its
// per-site hint bits from prof (required, as in predict.NewSimulator); the
// other architectures ignore prof. rec receives compile-phase telemetry
// (kernel.compiles, kernel.compile_ns, kernel.sites) and is retained for
// run-phase counters; nil disables telemetry at zero cost.
//
// prog must be the program lay was compiled from; several kernels may share
// one layout concurrently (it is read-only).
func CompileArch(lay *trace.Layout, prog *ir.Program, prof *profile.Profile, arch predict.ArchID, rec *obs.Recorder) (*Kernel, error) {
	if lay == nil {
		return nil, fmt.Errorf("kernel: nil layout")
	}
	cls, desc, err := classFor(arch)
	if err != nil {
		return nil, err
	}
	if cls == classLikely && prof == nil {
		return nil, fmt.Errorf("kernel: LIKELY architecture requires a profile")
	}
	start := rec.Now()

	k := &Kernel{
		arch: arch, class: cls, obs: rec,
		lay: lay, base: lay.Base(), siteOf: lay.Slots(), sites: lay.Sites(),
	}

	n := len(k.sites)
	k.costs = make([]SiteCost, n)
	k.kindOf = make([]uint8, n)
	k.slotOf = make([]uint64, n)
	k.fallOf = make([]uint64, n)
	for i := range k.sites {
		s := &k.sites[i]
		k.kindOf[i] = uint8(s.Kind)
		k.slotOf[i] = s.PC / ir.InstrBytes
		k.fallOf[i] = s.Fall
	}

	// Architecture state, sized by the registry descriptor's kernel spec —
	// the same geometry source the reference constructors read.
	spec := desc.Kernel
	switch cls {
	case classFallthrough:
		k.predOf = make([]uint8, n)
	case classBTFNT:
		k.predOf = make([]uint8, n)
		for i := range k.sites {
			s := &k.sites[i]
			if s.Kind == ir.CondBr && s.TakenTarget <= s.PC {
				k.predOf[i] = 1
			}
		}
	case classLikely:
		k.predOf = make([]uint8, n)
		k.compileLikely(prog, prof)
	case classPHTDirect, classPHTGshare:
		k.counters = newCounters(spec.PHTEntries)
		k.mask = uint64(spec.PHTEntries - 1)
	case classPHTLocal:
		k.histories = make([]uint16, spec.LocalHistEntries)
		k.counters = newCounters(spec.PHTEntries)
		k.histMask = uint16(spec.PHTEntries - 1)
		k.idxMask = uint64(spec.LocalHistEntries - 1)
	case classBTB:
		entries, ways := spec.BTBEntries, spec.BTBWays
		k.btbSets = entries / ways
		k.btbSetMask = uint64(k.btbSets - 1)
		k.btbWays = ways
		k.btbTags = make([]uint64, entries)
		k.btbTargets = make([]uint64, entries)
		k.btbLRU = make([]uint64, entries)
		k.btbCtr = make([]predict.Counter2, entries)
		k.takenOf = make([]uint64, n)
		for i := range k.sites {
			k.takenOf[i] = k.sites[i].TakenTarget
		}
	case classTAGE:
		k.tage = predict.NewTAGE(spec.TAGE)
	case classPerceptron:
		k.perc = predict.NewHashedPerceptron(spec.Perceptron)
	}

	rec.AddSince("kernel.compile_ns", start)
	rec.Add("kernel.compiles", 1)
	rec.Add("kernel.sites", int64(n))
	return k, nil
}

// compileLikely sets the per-site LIKELY hint bits from the profile, with
// exactly predict.NewLikely's rule: a conditional site present in the
// profile with at least one execution predicts its majority direction;
// every other site predicts not taken.
func (k *Kernel) compileLikely(prog *ir.Program, prof *profile.Profile) {
	for _, p := range prog.Procs {
		pp, ok := prof.Procs[p.Name]
		if !ok {
			continue
		}
		for id, b := range p.Blocks {
			term, ok := b.Terminator()
			if !ok || term.Kind() != ir.CondBr {
				continue
			}
			c := pp.Branches[ir.BlockID(id)]
			if c.Total() == 0 {
				continue
			}
			pc := b.TermAddr()
			if si, ok := k.lookup(pc); ok && c.Taken > c.Fall {
				k.predOf[si] = 1
			}
		}
	}
}

// newCounters returns n weakly-not-taken 2-bit counters.
func newCounters(n int) []predict.Counter2 {
	c := make([]predict.Counter2, n)
	for i := range c {
		c[i] = predict.Counter2Init
	}
	return c
}

// lookup resolves a PC to its site id.
func (k *Kernel) lookup(pc uint64) (int32, bool) {
	if pc < k.base || (pc-k.base)%ir.InstrBytes != 0 {
		return 0, false
	}
	slot := (pc - k.base) / ir.InstrBytes
	if slot >= uint64(len(k.siteOf)) {
		return 0, false
	}
	packed := k.siteOf[slot]
	if packed < 0 {
		return 0, false
	}
	return packed >> siteShift, true
}

// Arch returns the compiled architecture id.
func (k *Kernel) Arch() predict.ArchID { return k.arch }

// Layout returns the shared per-program layout the kernel was compiled
// against.
func (k *Kernel) Layout() *trace.Layout { return k.lay }

// NumSites returns the number of compiled control-transfer sites.
func (k *Kernel) NumSites() int { return len(k.sites) }

// Sites returns the site descriptor table in compilation order. The slice
// is the kernel's own backing store; treat it as read-only.
func (k *Kernel) Sites() []Site { return k.sites }

// Result returns the accumulated simulation tallies, field-for-field
// comparable with the reference simulator's predict.Result.
func (k *Kernel) Result() predict.Result { return k.res }

// SiteCost returns the accumulated penalty counts of site i.
func (k *Kernel) SiteCost(i int) SiteCost { return k.costs[i] }

// SiteCosts returns the per-site penalty counts keyed by site PC, for every
// site that produced at least one event — the same key set a reference
// per-PC recorder observes on the same trace.
func (k *Kernel) SiteCosts() map[uint64]SiteCost {
	out := make(map[uint64]SiteCost)
	for i := range k.sites {
		if k.costs[i].Events == 0 {
			continue
		}
		out[k.sites[i].PC] = k.costs[i]
	}
	return out
}

// SiteCycles returns each active site's branch execution penalty in cycles
// under the paper's default penalties, keyed by site PC. Feed it to
// metrics.SiteQuantiles for per-site cost quantiles.
func (k *Kernel) SiteCycles() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for i := range k.sites {
		if k.costs[i].Events == 0 {
			continue
		}
		out[k.sites[i].PC] = k.costs[i].Cycles(predict.DefaultMisfetchPenalty, predict.DefaultMispredictPenalty)
	}
	return out
}

// Reset rewinds the kernel's dynamic state — predictor tables, return
// stack, accumulators — keeping the compiled program tables (for LIKELY,
// the static hint bits survive, as in the reference simulator).
func (k *Kernel) Reset() {
	k.res = predict.Result{}
	for i := range k.costs {
		k.costs[i] = SiteCost{}
	}
	for i := range k.counters {
		k.counters[i] = predict.Counter2Init
	}
	for i := range k.histories {
		k.histories[i] = 0
	}
	k.ghr = 0
	for i := range k.btbTags {
		k.btbTags[i] = 0
		k.btbTargets[i] = 0
		k.btbLRU[i] = 0
		k.btbCtr[i] = 0
	}
	k.btbTick = 0
	if k.tage != nil {
		k.tage.Reset()
	}
	if k.perc != nil {
		k.perc.Reset()
	}
	k.rasTop, k.rasDepth = 0, 0
}
