package kernel

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/trace"
)

// Run consumes one batch of break events, accumulating totals and per-site
// penalties. It may be called repeatedly; predictor state carries across
// batches exactly as a reference simulator's would across Event calls.
//
// Every event must resolve to a compiled site of the matching kind: an
// event whose PC lies outside the program, hits a non-break instruction
// slot, or disagrees with the site's static kind aborts the batch with an
// error (the kernel is compiled for one exact program layout, so any such
// event is a trace/program mismatch, not workload behaviour).
func (k *Kernel) Run(events []trace.Event) error {
	start := k.obs.Now()
	var err error
	if k.class == classBTB {
		err = k.runBTB(events)
	} else {
		err = k.runDirection(events)
	}
	k.obs.AddSince("kernel.run_ns", start)
	k.obs.Add("kernel.runs", 1)
	k.obs.Add("kernel.events", int64(len(events)))
	return err
}

// siteErr diagnoses a failed packed-slot resolution: the cold path behind
// the inner loops' single-load site check.
func (k *Kernel) siteErr(ev *trace.Event) error {
	si, ok := k.lookup(ev.PC)
	if !ok {
		return fmt.Errorf("kernel: event pc %#x (kind %v) does not hit a compiled control-transfer site", ev.PC, ev.Kind)
	}
	return fmt.Errorf("kernel: event kind %v at pc %#x does not match compiled site kind %v",
		ev.Kind, ev.PC, k.sites[si].Kind)
}

// runDirection is the inner loop for every architecture driven by a
// direction predictor plus the return stack (the predict.StaticSim
// charging rules). The loop resolves each event's site with one load from
// the packed slot table, accumulates totals in locals, and keys the
// predictor on the compile-time class — a predicted branch on a
// loop-invariant discriminant, not an interface call.
func (k *Kernel) runDirection(events []trace.Event) error {
	var (
		base     = k.base
		tbl      = k.siteOf
		costs    = k.costs
		cls      = k.class
		res      = k.res
		ghr      = k.ghr
		counters = k.counters
		mask     = k.mask
		predOf   = k.predOf
		hists    = k.histories
		histMask = k.histMask
		idxMask  = k.idxMask
		retErr   error
	)
	// Reslice the predictor tables to their masks so the compiler can prove
	// every masked index in bounds and drop the per-event bounds checks.
	if counters != nil {
		counters = counters[:(mask|uint64(histMask))+1]
	}
	if hists != nil {
		hists = hists[:idxMask+1]
	}
	for i := range events {
		ev := &events[i]
		d := ev.PC - base
		slot := d / ir.InstrBytes
		packed := int32(-1)
		if d%ir.InstrBytes == 0 && slot < uint64(len(tbl)) {
			packed = tbl[slot]
		}
		kind := ir.Kind(ev.Kind)
		if packed < 0 || ir.Kind(packed&(1<<siteShift-1)) != kind {
			retErr = k.siteErr(ev)
			break
		}
		si := packed >> siteShift
		res.Events++
		res.ByKind[kind&7]++
		c := &costs[si]
		c.Events++
		switch kind {
		case ir.CondBr:
			res.Cond++
			taken := ev.Taken
			if taken {
				res.CondTaken++
			}
			var tbit uint8
			if taken {
				tbit = 1
			}
			var pred bool
			switch cls {
			case classFallthrough:
				// pred = false
			case classBTFNT:
				pred = ev.TakenTarget <= ev.PC
			case classLikely:
				pred = predOf[si] != 0
			case classPHTDirect:
				idx := (ev.PC / ir.InstrBytes) & mask
				c := counters[idx]
				pred = c.Taken()
				counters[idx] = counterStepBit(c, tbit)
			case classPHTGshare:
				idx := ((ev.PC / ir.InstrBytes) ^ ghr) & mask
				c := counters[idx]
				pred = c.Taken()
				counters[idx] = counterStepBit(c, tbit)
				ghr = ((ghr << 1) | uint64(tbit)) & mask
			case classPHTLocal:
				lslot := (ev.PC / ir.InstrBytes) & idxMask
				h := hists[lslot] & histMask
				c := counters[h]
				pred = c.Taken()
				counters[h] = counterStepBit(c, tbit)
				hists[lslot] = ((hists[lslot] << 1) | uint16(tbit)) & histMask
			case classTAGE:
				slot := ev.PC / ir.InstrBytes
				pred = k.tage.PredictBit(slot) != 0
				k.tage.UpdateBit(slot, tbit)
			case classPerceptron:
				slot := ev.PC / ir.InstrBytes
				pred = k.perc.PredictBit(slot) != 0
				k.perc.UpdateBit(slot, tbit)
			}
			if pred == taken {
				res.CondCorrect++
				if taken {
					res.Misfetches++
					c.Misfetches++
				}
			} else {
				res.Mispredicts++
				c.Mispredicts++
			}
		case ir.Br:
			res.Misfetches++
			c.Misfetches++
		case ir.Call:
			res.Misfetches++
			c.Misfetches++
			k.rasPush(ev.Fall)
		case ir.IJump:
			res.Mispredicts++
			c.Mispredicts++
		case ir.Ret:
			res.Rets++
			pred, ok := k.rasPop()
			if ok && pred == ev.Target {
				res.RetsCorrect++
			} else {
				res.Mispredicts++
				c.Mispredicts++
			}
		}
	}
	k.res = res
	k.ghr = ghr
	return retErr
}

// runBTB is the inner loop for the branch-target-buffer architectures (the
// predict.BTBSim charging rules), with the BTB flattened into one line
// slice and the same global-tick LRU.
func (k *Kernel) runBTB(events []trace.Event) error {
	var (
		base   = k.base
		tbl    = k.siteOf
		costs  = k.costs
		res    = k.res
		retErr error
	)
	for i := range events {
		ev := &events[i]
		d := ev.PC - base
		slot := d / ir.InstrBytes
		packed := int32(-1)
		if d%ir.InstrBytes == 0 && slot < uint64(len(tbl)) {
			packed = tbl[slot]
		}
		kind := ir.Kind(ev.Kind)
		if packed < 0 || ir.Kind(packed&(1<<siteShift-1)) != kind {
			retErr = k.siteErr(ev)
			break
		}
		si := packed >> siteShift
		res.Events++
		res.ByKind[kind&7]++
		c := &costs[si]
		c.Events++
		switch kind {
		case ir.CondBr:
			res.Cond++
			if ev.Taken {
				res.CondTaken++
			}
			li := k.btbLookup(ev.PC)
			if li >= 0 {
				if k.btbCtr[li].Taken() == ev.Taken {
					res.CondCorrect++
					// Taken and correctly predicted: the stored target of
					// a direct conditional is always right, so no penalty.
				} else {
					res.Mispredicts++
					c.Mispredicts++
				}
				k.btbCtr[li] = counterStep(k.btbCtr[li], ev.Taken)
				if ev.Taken {
					k.btbTargets[li] = ev.Target
				}
			} else if ev.Taken {
				res.Mispredicts++
				c.Mispredicts++
				k.btbInsert(ev.PC, ev.Target)
			} else {
				res.CondCorrect++
			}
		case ir.Br:
			if k.btbLookup(ev.PC) < 0 {
				res.Misfetches++
				c.Misfetches++
				k.btbInsert(ev.PC, ev.Target)
			}
		case ir.Call:
			if k.btbLookup(ev.PC) < 0 {
				res.Misfetches++
				c.Misfetches++
				k.btbInsert(ev.PC, ev.Target)
			}
			k.rasPush(ev.Fall)
		case ir.IJump:
			li := k.btbLookup(ev.PC)
			if li >= 0 && k.btbTargets[li] == ev.Target {
				// hit with the right target: free
			} else {
				res.Mispredicts++
				c.Mispredicts++
				if li >= 0 {
					k.btbCtr[li] = counterStepBit(k.btbCtr[li], 1)
					k.btbTargets[li] = ev.Target
				} else {
					k.btbInsert(ev.PC, ev.Target)
				}
			}
		case ir.Ret:
			res.Rets++
			pred, ok := k.rasPop()
			if ok && pred == ev.Target {
				res.RetsCorrect++
			} else {
				res.Mispredicts++
				c.Mispredicts++
			}
		}
	}
	k.res = res
	return retErr
}

// btbLookup returns the line index holding pc, or -1 on miss. A hit
// refreshes the line's LRU tick, exactly as predict.BTB.Lookup does.
func (k *Kernel) btbLookup(pc uint64) int {
	k.btbTick++
	set := int((pc / ir.InstrBytes) & k.btbSetMask)
	base := set * k.btbWays
	tag := pc + 1
	for w := 0; w < k.btbWays; w++ {
		if k.btbTags[base+w] == tag {
			k.btbLRU[base+w] = k.btbTick
			return base + w
		}
	}
	return -1
}

// btbInsert installs a taken branch, evicting the set's LRU way with the
// same victim scan order as predict.BTB.Insert (first invalid way wins,
// then lowest tick).
func (k *Kernel) btbInsert(pc, target uint64) {
	k.btbTick++
	set := int((pc / ir.InstrBytes) & k.btbSetMask)
	base := set * k.btbWays
	victim := base
	for w := 0; w < k.btbWays; w++ {
		if k.btbTags[base+w] == 0 {
			victim = base + w
			break
		}
		if k.btbLRU[base+w] < k.btbLRU[victim] {
			victim = base + w
		}
	}
	k.btbTags[victim] = pc + 1
	k.btbTargets[victim] = target
	k.btbLRU[victim] = k.btbTick
	k.btbCtr[victim] = 3
}

// rasPush records a return address, wrapping past the fixed capacity as
// hardware return stacks (and predict.ReturnStack) do.
func (k *Kernel) rasPush(addr uint64) {
	k.ras[k.rasTop] = addr
	k.rasTop = (k.rasTop + 1) % len(k.ras)
	if k.rasDepth < len(k.ras) {
		k.rasDepth++
	}
}

// rasPop returns the predicted return address; ok is false on an empty
// stack.
func (k *Kernel) rasPop() (uint64, bool) {
	if k.rasDepth == 0 {
		return 0, false
	}
	k.rasTop = (k.rasTop - 1 + len(k.ras)) % len(k.ras)
	k.rasDepth--
	return k.ras[k.rasTop], true
}
