package kernel

import (
	"fmt"
	"strings"
	"testing"

	"balign/internal/asm"
	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/trace"
)

// allArchs is every architecture the kernel must match the reference on:
// the full registry, paper grids plus extensions.
func allArchs() []predict.ArchID {
	return predict.AllArchs()
}

// mustAssemble builds and lays out a test program.
func mustAssemble(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return prog
}

// recordEvents walks prog with a fixed seed and returns its event stream.
func recordEvents(t *testing.T, prog *ir.Program, maxInstrs uint64) []trace.Event {
	t.Helper()
	var events []trace.Event
	w := &trace.Walker{
		Prog:      prog,
		Model:     trace.UniformModel{P: 0.6},
		Seed:      7,
		MaxInstrs: maxInstrs,
	}
	w.Run(trace.SinkFunc(func(e trace.Event) { events = append(events, e) }), nil)
	return events
}

// profileOf collects an edge profile by walking prog once.
func profileOf(t *testing.T, prog *ir.Program, maxInstrs uint64) *profile.Profile {
	t.Helper()
	col := profile.NewCollector(prog)
	w := &trace.Walker{Prog: prog, Model: trace.UniformModel{P: 0.6}, Seed: 7, MaxInstrs: maxInstrs}
	w.Run(nil, col)
	return col.Profile()
}

// assertParity runs events through both the flat kernel and the reference
// simulator for arch and requires identical totals and per-site costs.
func assertParity(t *testing.T, prog *ir.Program, prof *profile.Profile, arch predict.ArchID, events []trace.Event) {
	t.Helper()
	k, err := Compile(prog, prof, arch, nil)
	if err != nil {
		t.Fatalf("%s: Compile: %v", arch, err)
	}
	if err := k.Run(events); err != nil {
		t.Fatalf("%s: Run: %v", arch, err)
	}
	sim, err := predict.NewSimulator(arch, prog, prof)
	if err != nil {
		t.Fatalf("%s: NewSimulator: %v", arch, err)
	}
	wantRes, wantCosts := ReferenceRun(sim, events)
	if got := k.Result(); got != wantRes {
		t.Errorf("%s: Result mismatch:\n kernel    %+v\n reference %+v", arch, got, wantRes)
	}
	gotCosts := k.SiteCosts()
	if len(gotCosts) != len(wantCosts) {
		t.Errorf("%s: site count mismatch: kernel %d, reference %d", arch, len(gotCosts), len(wantCosts))
	}
	for pc, want := range wantCosts {
		if got := gotCosts[pc]; got != want {
			t.Errorf("%s: site %#x cost mismatch: kernel %+v, reference %+v", arch, pc, got, want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    halt
endproc
`)
	if _, err := Compile(nil, nil, predict.ArchFallthrough, nil); err == nil {
		t.Error("Compile(nil program) succeeded")
	}
	if _, err := Compile(prog, nil, predict.ArchID("no-such-arch"), nil); err == nil {
		t.Error("Compile(unknown arch) succeeded")
	}
	if _, err := Compile(prog, nil, predict.ArchLikely, nil); err == nil {
		t.Error("Compile(likely, nil profile) succeeded")
	}
	if _, err := Compile(prog, profile.New("x"), predict.ArchLikely, nil); err != nil {
		t.Errorf("Compile(likely, empty profile): %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    li   r1, 2
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	k, err := Compile(prog, nil, predict.ArchFallthrough, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	site := k.Sites()[0]
	if site.Kind != ir.CondBr {
		t.Fatalf("expected first site to be the conditional, got %v", site.Kind)
	}
	// A PC that is not a compiled site.
	if err := k.Run([]trace.Event{{PC: site.PC + 0x1000, Kind: ir.CondBr}}); err == nil {
		t.Error("Run with out-of-program PC succeeded")
	}
	// Unaligned PC.
	if err := k.Run([]trace.Event{{PC: site.PC + 1, Kind: ir.CondBr}}); err == nil {
		t.Error("Run with unaligned PC succeeded")
	}
	// Right PC, wrong kind.
	if err := k.Run([]trace.Event{{PC: site.PC, Kind: ir.Ret}}); err == nil {
		t.Error("Run with mismatched event kind succeeded")
	}
	// A valid event still works after the failures above.
	if err := k.Run([]trace.Event{{PC: site.PC, Kind: ir.CondBr, Taken: false, Target: site.PC + ir.InstrBytes}}); err != nil {
		t.Errorf("Run with valid event: %v", err)
	}
}

// TestEmptyProcedure compiles a program whose entry immediately halts — no
// control-transfer sites, no events — alongside a dead procedure that is
// never called.
func TestEmptyProcedure(t *testing.T) {
	prog := mustAssemble(t, `
entry main
proc main
    li r1, 1
    halt
endproc
proc dead
    ret
endproc
`)
	prof := profileOf(t, prog, 100)
	events := recordEvents(t, prog, 100)
	if len(events) != 0 {
		t.Fatalf("halt-only entry produced %d events", len(events))
	}
	for _, arch := range allArchs() {
		k, err := Compile(prog, prof, arch, nil)
		if err != nil {
			t.Fatalf("%s: Compile: %v", arch, err)
		}
		// dead's ret is still a compiled site; it just never fires.
		if k.NumSites() != 1 {
			t.Errorf("%s: NumSites = %d, want 1", arch, k.NumSites())
		}
		if err := k.Run(events); err != nil {
			t.Fatalf("%s: Run: %v", arch, err)
		}
		if res := k.Result(); res != (predict.Result{}) {
			t.Errorf("%s: empty run produced nonzero result %+v", arch, res)
		}
		if costs := k.SiteCosts(); len(costs) != 0 {
			t.Errorf("%s: empty run produced %d active sites", arch, len(costs))
		}
		assertParity(t, prog, prof, arch, events)
	}
}

// TestSingleBlockLoop drives a tight self-loop — one conditional site
// hammered thousands of times — through every architecture.
func TestSingleBlockLoop(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    li   r1, 500
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	prof := profileOf(t, prog, 5000)
	events := recordEvents(t, prog, 5000)
	if len(events) == 0 {
		t.Fatal("loop produced no events")
	}
	for _, arch := range allArchs() {
		assertParity(t, prog, prof, arch, events)
	}
}

// TestReturnStackOverflow nests calls well past the 32-entry return stack,
// forcing the wrap-around overwrite path, and requires the kernel's return
// stack to mispredict exactly where the reference's does.
func TestReturnStackOverflow(t *testing.T) {
	const depth = 40 // > predict.ReturnStackDepth (32)
	var b strings.Builder
	b.WriteString("entry main\nproc main\n    call f0\n    halt\nendproc\n")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "proc f%d\n", i)
		if i < depth-1 {
			fmt.Fprintf(&b, "    call f%d\n", i+1)
		} else {
			b.WriteString("    addi r1, r1, 1\n")
		}
		b.WriteString("    ret\nendproc\n")
	}
	prog := mustAssemble(t, b.String())
	prof := profileOf(t, prog, 10_000)

	var events []trace.Event
	w := &trace.Walker{
		Prog:      prog,
		Model:     trace.UniformModel{P: 0.5},
		Seed:      11,
		MaxInstrs: 10_000,
		MaxDepth:  depth + 4, // let the walker actually reach the bottom
	}
	w.Run(trace.SinkFunc(func(e trace.Event) { events = append(events, e) }), nil)

	rets := 0
	for _, e := range events {
		if e.Kind == ir.Ret {
			rets++
		}
	}
	if rets <= 32 {
		t.Fatalf("walk produced only %d returns; want > 32 to exercise overflow", rets)
	}
	for _, arch := range allArchs() {
		assertParity(t, prog, prof, arch, events)
	}

	// The deep call chain must overflow: with 40 nested calls, the oldest
	// return addresses are overwritten, so some returns must mispredict even
	// though every call pushed.
	sim, err := predict.NewSimulator(predict.ArchFallthrough, prog, prof)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := ReferenceRun(sim, events)
	if res.RetsCorrect >= res.Rets {
		t.Errorf("expected return mispredictions from stack overflow; got %d/%d correct",
			res.RetsCorrect, res.Rets)
	}
}

// TestReset requires a reset kernel to reproduce its first run exactly.
func TestReset(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    li   r1, 200
loop:
    addi r1, r1, -1
    call f
    bnez r1, loop
    halt
endproc
proc f
    addi r2, r2, 1
    ret
endproc
`)
	prof := profileOf(t, prog, 4000)
	events := recordEvents(t, prog, 4000)
	for _, arch := range allArchs() {
		k, err := Compile(prog, prof, arch, nil)
		if err != nil {
			t.Fatalf("%s: Compile: %v", arch, err)
		}
		if err := k.Run(events); err != nil {
			t.Fatalf("%s: Run: %v", arch, err)
		}
		first, firstCosts := k.Result(), k.SiteCosts()
		k.Reset()
		if res := k.Result(); res != (predict.Result{}) {
			t.Fatalf("%s: Reset left result %+v", arch, res)
		}
		if err := k.Run(events); err != nil {
			t.Fatalf("%s: second Run: %v", arch, err)
		}
		if second := k.Result(); second != first {
			t.Errorf("%s: replay after Reset diverged:\n first  %+v\n second %+v", arch, first, second)
		}
		secondCosts := k.SiteCosts()
		for pc, want := range firstCosts {
			if got := secondCosts[pc]; got != want {
				t.Errorf("%s: site %#x cost after Reset: %+v, want %+v", arch, pc, got, want)
			}
		}
	}
}

// TestSiteCycles checks the cycle accounting identity: summing per-site
// cycles reproduces the result-level branch execution penalty.
func TestSiteCycles(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    li   r1, 300
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	events := recordEvents(t, prog, 3000)
	for _, arch := range []predict.ArchID{predict.ArchFallthrough, predict.ArchPHTGshare, predict.ArchBTB64} {
		k, err := Compile(prog, nil, arch, nil)
		if err != nil {
			t.Fatalf("%s: Compile: %v", arch, err)
		}
		if err := k.Run(events); err != nil {
			t.Fatalf("%s: Run: %v", arch, err)
		}
		var sum uint64
		for _, cyc := range k.SiteCycles() {
			sum += cyc
		}
		res := k.Result()
		want := res.Misfetches*predict.DefaultMisfetchPenalty + res.Mispredicts*predict.DefaultMispredictPenalty
		if sum != want {
			t.Errorf("%s: per-site cycles sum %d != result BEP %d", arch, sum, want)
		}
	}
}
