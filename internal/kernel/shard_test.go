package kernel

import (
	"math/rand"
	"reflect"
	"testing"

	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/trace"
	"balign/internal/workload"
)

// TestCounterStepMatchesUpdate holds the packed branchless transition table
// to the reference 2-bit saturating counter, state for state and outcome for
// outcome — including out-of-range states that Update would saturate.
func TestCounterStepMatchesUpdate(t *testing.T) {
	for c := predict.Counter2(0); c < 4; c++ {
		for _, taken := range []bool{false, true} {
			want := c.Update(taken)
			if got := counterStep(c, taken); got != want {
				t.Errorf("counterStep(%d, %v) = %d, want %d", c, taken, got, want)
			}
			var bit uint8
			if taken {
				bit = 1
			}
			if got := counterStepBit(c, bit); got != want {
				t.Errorf("counterStepBit(%d, %d) = %d, want %d", c, bit, got, want)
			}
		}
	}
}

// shardPlan assigns each batch index to an owning shard.
type shardPlan func(batch int) int

// roundRobinPlan owns batch b on shard b mod n — the executor's runtime
// policy, usable when the stream length is unknown.
func roundRobinPlan(n int) shardPlan {
	return func(b int) int { return b % n }
}

// contiguousPlan splits nbatches into n contiguous segments at randomized
// boundaries (some possibly empty), shard k owning segment k.
func contiguousPlan(rng *rand.Rand, nbatches, n int) shardPlan {
	cuts := make([]int, n-1)
	for i := range cuts {
		cuts[i] = rng.Intn(nbatches + 1)
	}
	// Insertion-sort the boundaries; n is tiny.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	return func(b int) int {
		for k, c := range cuts {
			if b < c {
				return k
			}
		}
		return n - 1
	}
}

// runSharded executes batches over n shard kernels under plan — each shard
// Forwarding every batch it does not own and Running every batch it does —
// then merges the shards in a shuffled order and returns the merge target.
func runSharded(t *testing.T, lay *trace.Layout, prog *irProg, arch predict.ArchID,
	batches []*trace.Batch, n int, plan shardPlan, rng *rand.Rand) *Kernel {
	t.Helper()
	shards := make([]*Kernel, n)
	for j := range shards {
		k, err := CompileArch(lay, prog.prog, prog.prof, arch, nil)
		if err != nil {
			t.Fatalf("%s: CompileArch: %v", arch, err)
		}
		shards[j] = k
	}
	for b, batch := range batches {
		owner := plan(b)
		for j, k := range shards {
			var err error
			if j == owner {
				err = k.RunBatch(batch)
			} else {
				err = k.ForwardBatch(batch)
			}
			if err != nil {
				t.Fatalf("%s: shard %d batch %d: %v", arch, j, b, err)
			}
		}
	}
	// Merge in a shuffled order: the sum must be order-independent.
	order := rng.Perm(n)
	dst := shards[order[0]]
	for _, j := range order[1:] {
		if err := dst.Merge(shards[j]); err != nil {
			t.Fatalf("%s: Merge: %v", arch, err)
		}
	}
	return dst
}

// irProg pairs a program with its profile for the shard helpers.
type irProg struct {
	prog *ir.Program
	prof *profile.Profile
}

// assertShardParity requires the sharded-and-merged kernel to reproduce the
// unsharded kernel bit for bit: totals, per-site costs and per-site cycles.
func assertShardParity(t *testing.T, lay *trace.Layout, p *irProg, arch predict.ArchID,
	batches []*trace.Batch, n int, plan shardPlan, rng *rand.Rand, label string) {
	t.Helper()
	whole, err := CompileArch(lay, p.prog, p.prof, arch, nil)
	if err != nil {
		t.Fatalf("%s: CompileArch: %v", arch, err)
	}
	for b, batch := range batches {
		if err := whole.RunBatch(batch); err != nil {
			t.Fatalf("%s: RunBatch %d: %v", arch, b, err)
		}
	}
	merged := runSharded(t, lay, p, arch, batches, n, plan, rng)
	if got, want := merged.Result(), whole.Result(); got != want {
		t.Errorf("%s %s shards=%d: Result mismatch:\n sharded   %+v\n unsharded %+v",
			arch, label, n, got, want)
	}
	if got, want := merged.SiteCosts(), whole.SiteCosts(); !reflect.DeepEqual(got, want) {
		t.Errorf("%s %s shards=%d: per-site costs diverge", arch, label, n)
	}
	if got, want := merged.SiteCycles(), whole.SiteCycles(); !reflect.DeepEqual(got, want) {
		t.Errorf("%s %s shards=%d: per-site cycles diverge", arch, label, n)
	}
}

// TestShardMergeGrid is the shard-merge property test over the full
// architecture grid: for every architecture and shard count, both the
// executor's round-robin partition and randomized contiguous partitions
// must merge bit-exactly back to the unsharded run.
func TestShardMergeGrid(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    li   r1, 16
outer:
    call helper
    addi r1, r1, -1
    bnez r1, outer
    halt
endproc
proc helper
    li   r2, 5
inner:
    addi r2, r2, -1
    bnez r2, inner
    ret
endproc
`)
	prof := profileOf(t, prog, 4000)
	events := recordEvents(t, prog, 4000)
	lay, err := trace.CompileLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Small batches so every shard count produces a real interleaving.
	batches := packBatches(t, lay, events, 37)
	p := &irProg{prog: prog, prof: prof}
	rng := rand.New(rand.NewSource(7))
	for _, arch := range allArchs() {
		for _, n := range []int{1, 2, 3, 5} {
			assertShardParity(t, lay, p, arch, batches, n, roundRobinPlan(n), rng, "roundrobin")
			for trial := 0; trial < 3; trial++ {
				plan := contiguousPlan(rng, len(batches), n)
				assertShardParity(t, lay, p, arch, batches, n, plan, rng, "contiguous")
			}
		}
	}
}

// TestShardMergeWorkloads repeats the shard-merge property over fuzzed
// synthetic workloads: walker-generated traces with every event kind, at
// several seeds, split at randomized boundaries.
func TestShardMergeWorkloads(t *testing.T) {
	for _, seed := range []int64{1, 42, 1337} {
		w, err := workload.ByName("doduc", workload.Config{Scale: 0.02, Seed: seed})
		if err != nil {
			t.Fatalf("ByName: %v", err)
		}
		prof, _, err := w.CollectProfile()
		if err != nil {
			t.Fatalf("CollectProfile: %v", err)
		}
		var events []trace.Event
		if _, err := w.Run(w.Prog, prof, trace.SinkFunc(func(e trace.Event) {
			events = append(events, e)
		}), nil); err != nil {
			t.Fatalf("Run: %v", err)
		}
		lay, err := trace.CompileLayout(w.Prog)
		if err != nil {
			t.Fatalf("CompileLayout: %v", err)
		}
		batches := packBatches(t, lay, events, 256)
		p := &irProg{prog: w.Prog, prof: prof}
		rng := rand.New(rand.NewSource(seed))
		for _, arch := range allArchs() {
			for _, n := range []int{2, 4} {
				assertShardParity(t, lay, p, arch, batches, n, roundRobinPlan(n), rng, "roundrobin")
				plan := contiguousPlan(rng, len(batches), n)
				assertShardParity(t, lay, p, arch, batches, n, plan, rng, "contiguous")
			}
		}
	}
}

// TestForwardBatchRejectsMalformedOps: a shard must fail on exactly the
// batches the unsharded run would have failed on, with ForwardBatch
// sharing RunBatch's diagnostics.
func TestForwardBatchRejectsMalformedOps(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    li   r1, 2
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	lay, err := trace.CompileLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	bad := &trace.Batch{Ops: []int32{9999 << trace.OpShift}}
	prof := profileOf(t, prog, 100)
	for _, arch := range allArchs() {
		k, err := CompileArch(lay, prog, prof, arch, nil)
		if err != nil {
			t.Fatalf("%s: CompileArch: %v", arch, err)
		}
		if err := k.ForwardBatch(bad); err == nil {
			t.Errorf("%s: ForwardBatch accepted an out-of-range site id", arch)
		}
	}
}

// TestMergeRejectsMismatchedKernels: merging across architectures or
// layouts would sum accumulators whose site ids name different
// instructions, so Merge must refuse.
func TestMergeRejectsMismatchedKernels(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    li   r1, 2
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	lay, err := trace.CompileLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	a, err := CompileArch(lay, prog, nil, predict.ArchFallthrough, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(nil); err == nil {
		t.Error("Merge accepted a nil kernel")
	}
	b, err := CompileArch(lay, prog, nil, predict.ArchBTFNT, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Error("Merge accepted a kernel for a different architecture")
	}
	lay2, err := trace.CompileLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompileArch(lay2, prog, nil, predict.ArchFallthrough, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil {
		t.Error("Merge accepted a kernel compiled from a different layout")
	}
}
