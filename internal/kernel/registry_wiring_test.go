package kernel

import (
	"testing"

	"balign/internal/cost"
	"balign/internal/predict"
)

// TestRegistryWiredThroughEveryLayer is the registry completeness check:
// every registered architecture must construct a reference simulator,
// compile into a flat kernel, resolve to an alignment cost model, and sit
// in exactly one of the grid lists. A descriptor that is registered but
// unusable in any layer fails here, not at first use.
func TestRegistryWiredThroughEveryLayer(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    li   r1, 4
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	prof := profileOf(t, prog, 200)

	grids := map[string][]predict.ArchID{
		"static":    predict.StaticArchs(),
		"dynamic":   predict.DynamicArchs(),
		"extension": predict.ExtensionArchs(),
	}

	for _, arch := range predict.AllArchs() {
		d, ok := predict.Lookup(arch)
		if !ok {
			t.Errorf("%s: in AllArchs but not in the registry", arch)
			continue
		}
		if d.ID != arch {
			t.Errorf("%s: descriptor carries id %q", arch, d.ID)
		}

		sim, err := predict.NewSimulator(arch, prog, prof)
		if err != nil {
			t.Errorf("%s: NewSimulator: %v", arch, err)
		} else if sim.Name() == "" {
			t.Errorf("%s: simulator has an empty name", arch)
		}

		k, err := Compile(prog, prof, arch, nil)
		if err != nil {
			t.Errorf("%s: Compile: %v", arch, err)
		} else if events := recordEvents(t, prog, 200); len(events) > 0 {
			if err := k.Run(events); err != nil {
				t.Errorf("%s: compiled kernel Run: %v", arch, err)
			}
		}

		if _, err := cost.ForArch(arch); err != nil {
			t.Errorf("%s: cost.ForArch: %v", arch, err)
		}

		member := 0
		for name, list := range grids {
			for _, id := range list {
				if id == arch {
					member++
					if want := gridName(d.Grid); name != want {
						t.Errorf("%s: listed in %s grid, descriptor says %s", arch, name, want)
					}
				}
			}
		}
		if member != 1 {
			t.Errorf("%s: appears in %d grid lists, want exactly 1", arch, member)
		}
	}
}

func gridName(g predict.Grid) string { return g.String() }
