package kernel

import (
	"balign/internal/predict"
	"balign/internal/trace"
)

// SiteRecorder wraps a reference simulator and attributes every penalty it
// charges to the event's site PC, by differencing the simulator's Result
// around each event. It is the reference half of the per-site parity
// oracle: on the same event stream, a flat Kernel's SiteCosts must equal a
// SiteRecorder's Costs exactly.
type SiteRecorder struct {
	// Sim is the wrapped reference simulator.
	Sim predict.Simulator
	// Costs accumulates per-site penalty counts keyed by event PC.
	Costs map[uint64]SiteCost

	prev predict.Result
}

// NewSiteRecorder wraps sim; sim must be freshly reset.
func NewSiteRecorder(sim predict.Simulator) *SiteRecorder {
	return &SiteRecorder{Sim: sim, Costs: make(map[uint64]SiteCost), prev: sim.Result()}
}

// Event implements trace.Sink.
func (r *SiteRecorder) Event(e trace.Event) {
	r.Sim.Event(e)
	res := r.Sim.Result()
	c := r.Costs[e.PC]
	c.Events++
	c.Misfetches += res.Misfetches - r.prev.Misfetches
	c.Mispredicts += res.Mispredicts - r.prev.Mispredicts
	r.Costs[e.PC] = c
	r.prev = res
}

// Cycles returns each recorded site's penalty in cycles under the paper's
// default penalties, keyed by PC — the reference counterpart of
// Kernel.SiteCycles.
func (r *SiteRecorder) Cycles() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(r.Costs))
	for pc, c := range r.Costs {
		out[pc] = c.Cycles(predict.DefaultMisfetchPenalty, predict.DefaultMispredictPenalty)
	}
	return out
}

// ReferenceRun replays events through a fresh reference simulator for arch,
// returning its final tallies and per-site costs. It is the slow oracle the
// differential tests compare Kernel runs against.
func ReferenceRun(sim predict.Simulator, events []trace.Event) (predict.Result, map[uint64]SiteCost) {
	rec := NewSiteRecorder(sim)
	for i := range events {
		rec.Event(events[i])
	}
	return sim.Result(), rec.Costs
}
