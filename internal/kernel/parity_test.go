package kernel

import (
	"fmt"
	"reflect"
	"testing"

	"balign/internal/ir"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/trace"
	"balign/internal/workload"
)

// quantileFractions are the paper's Q-50/Q-90/Q-99/Q-100 coverage points.
var quantileFractions = []float64{0.50, 0.90, 0.99, 1.0}

// checkFullParity is the complete per-architecture parity predicate: total
// cycles, predictor statistics, per-site penalty counts, and per-site cycle
// quantiles must all match the reference simulator bit for bit.
func checkFullParity(t *testing.T, prog *ir.Program, prof *profile.Profile, arch predict.ArchID, events []trace.Event) {
	t.Helper()
	k, err := Compile(prog, prof, arch, nil)
	if err != nil {
		t.Fatalf("%s: Compile: %v", arch, err)
	}
	if err := k.Run(events); err != nil {
		t.Fatalf("%s: Run: %v", arch, err)
	}
	sim, err := predict.NewSimulator(arch, prog, prof)
	if err != nil {
		t.Fatalf("%s: NewSimulator: %v", arch, err)
	}
	rec := NewSiteRecorder(sim)
	for i := range events {
		rec.Event(events[i])
	}

	// Predictor statistics and totals.
	if got, want := k.Result(), sim.Result(); got != want {
		t.Errorf("%s: Result mismatch:\n kernel    %+v\n reference %+v", arch, got, want)
	}
	// Total cycles (branch execution penalty).
	if got, want := metrics.BEPFromResult(k.Result()), metrics.BEPFromResult(sim.Result()); got != want {
		t.Errorf("%s: total cycles: kernel %d, reference %d", arch, got, want)
	}
	// Per-site penalty counts.
	if got := k.SiteCosts(); !reflect.DeepEqual(got, rec.Costs) {
		t.Errorf("%s: per-site costs diverge (%d kernel sites, %d reference sites)",
			arch, len(got), len(rec.Costs))
	}
	// Per-site cycle quantiles.
	gq := metrics.SiteQuantiles(k.SiteCycles(), quantileFractions)
	wq := metrics.SiteQuantiles(rec.Cycles(), quantileFractions)
	if !reflect.DeepEqual(gq, wq) {
		t.Errorf("%s: site cycle quantiles: kernel %v, reference %v", arch, gq, wq)
	}
}

// TestSyntheticWorkloadParity is the property-based half of the kernel
// oracle: randomized synthetic programs (structure varies per seed via
// internal/workload/synth.go) walked into real event streams, with the flat
// kernel required to match the reference simulator on total cycles,
// per-site costs and quantiles, and every predictor statistic, for every
// architecture including the PAg local-history extension.
func TestSyntheticWorkloadParity(t *testing.T) {
	programs := []string{"doduc", "gcc", "db++"}
	seeds := []int64{1, 2, 3}
	for _, name := range programs {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				w, err := workload.ByName(name, workload.Config{Scale: 0.02, Seed: seed})
				if err != nil {
					t.Fatalf("ByName: %v", err)
				}
				prof, _, err := w.CollectProfile()
				if err != nil {
					t.Fatalf("CollectProfile: %v", err)
				}
				var events []trace.Event
				if _, err := w.Run(w.Prog, nil, trace.SinkFunc(func(e trace.Event) {
					events = append(events, e)
				}), nil); err != nil {
					t.Fatalf("Run: %v", err)
				}
				if len(events) == 0 {
					t.Fatal("workload produced no events")
				}
				for _, arch := range allArchs() {
					checkFullParity(t, w.Prog, prof, arch, events)
				}
			})
		}
	}
}

// TestVMWorkloadParity replays one deterministic VM-executed workload (real
// computation, not a stochastic walk) through the full parity predicate.
func TestVMWorkloadParity(t *testing.T) {
	w, err := workload.ByName("eqntott", workload.Config{Scale: 0.05})
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	prof, _, err := w.CollectProfile()
	if err != nil {
		t.Fatalf("CollectProfile: %v", err)
	}
	var events []trace.Event
	if _, err := w.Run(w.Prog, prof, trace.SinkFunc(func(e trace.Event) {
		events = append(events, e)
	}), nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("workload produced no events")
	}
	for _, arch := range allArchs() {
		checkFullParity(t, w.Prog, prof, arch, events)
	}
}
