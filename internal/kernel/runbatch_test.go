package kernel

import (
	"fmt"
	"reflect"
	"testing"

	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/trace"
	"balign/internal/workload"
)

// packBatches encodes events against lay into batches of at most batchCap
// ops each, mimicking what a streaming source produces.
func packBatches(t *testing.T, lay *trace.Layout, events []trace.Event, batchCap int) []*trace.Batch {
	t.Helper()
	var batches []*trace.Batch
	cur := &trace.Batch{}
	for _, e := range events {
		if err := lay.Append(cur, e); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if cur.Len() >= batchCap {
			batches = append(batches, cur)
			cur = &trace.Batch{}
		}
	}
	if cur.Len() > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// assertBatchParity feeds the same stream to an event-replay kernel and a
// batch-consuming kernel and requires identical results, per-site costs and
// cycles — the RunBatch half of the streaming-vs-recorded oracle.
func assertBatchParity(t *testing.T, prog *ir.Program, arch predict.ArchID, events []trace.Event, batchCap int) {
	t.Helper()
	prof := profileOf(t, prog, 2000)
	ref, err := Compile(prog, prof, arch, nil)
	if err != nil {
		t.Fatalf("%s: Compile: %v", arch, err)
	}
	if err := ref.Run(events); err != nil {
		t.Fatalf("%s: Run: %v", arch, err)
	}

	lay, err := trace.CompileLayout(prog)
	if err != nil {
		t.Fatalf("CompileLayout: %v", err)
	}
	k, err := CompileArch(lay, prog, prof, arch, nil)
	if err != nil {
		t.Fatalf("%s: CompileArch: %v", arch, err)
	}
	for _, b := range packBatches(t, lay, events, batchCap) {
		if err := k.RunBatch(b); err != nil {
			t.Fatalf("%s: RunBatch: %v", arch, err)
		}
	}

	if got, want := k.Result(), ref.Result(); got != want {
		t.Errorf("%s cap=%d: Result mismatch:\n batch %+v\n event %+v", arch, batchCap, got, want)
	}
	if got, want := k.SiteCosts(), ref.SiteCosts(); !reflect.DeepEqual(got, want) {
		t.Errorf("%s cap=%d: per-site costs diverge (%d batch sites, %d event sites)",
			arch, batchCap, len(got), len(want))
	}
	if got, want := k.SiteCycles(), ref.SiteCycles(); !reflect.DeepEqual(got, want) {
		t.Errorf("%s cap=%d: per-site cycles diverge", arch, batchCap)
	}
}

// TestRunBatchMatchesRun checks every architecture over a branchy assembled
// program at several batch granularities, including cap 1 (every event its
// own batch — maximal state-carry stress).
func TestRunBatchMatchesRun(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    li   r1, 8
outer:
    call helper
    addi r1, r1, -1
    bnez r1, outer
    halt
endproc
proc helper
    li   r2, 3
inner:
    addi r2, r2, -1
    bnez r2, inner
    ret
endproc
`)
	events := recordEvents(t, prog, 2000)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	for _, arch := range allArchs() {
		for _, cap := range []int{1, 7, 256, 1 << 16} {
			assertBatchParity(t, prog, arch, events, cap)
		}
	}
}

// TestRunBatchMatchesRunWorkloads repeats batch-vs-event parity over real
// suite workloads (walker-generated structure, all event kinds).
func TestRunBatchMatchesRunWorkloads(t *testing.T) {
	for _, name := range []string{"doduc", "db++"} {
		t.Run(name, func(t *testing.T) {
			w, err := workload.ByName(name, workload.Config{Scale: 0.02})
			if err != nil {
				t.Fatalf("ByName: %v", err)
			}
			prof, _, err := w.CollectProfile()
			if err != nil {
				t.Fatalf("CollectProfile: %v", err)
			}
			var events []trace.Event
			if _, err := w.Run(w.Prog, prof, trace.SinkFunc(func(e trace.Event) {
				events = append(events, e)
			}), nil); err != nil {
				t.Fatalf("Run: %v", err)
			}
			lay, err := trace.CompileLayout(w.Prog)
			if err != nil {
				t.Fatalf("CompileLayout: %v", err)
			}
			for _, arch := range allArchs() {
				ref, err := Compile(w.Prog, prof, arch, nil)
				if err != nil {
					t.Fatalf("%s: Compile: %v", arch, err)
				}
				if err := ref.Run(events); err != nil {
					t.Fatalf("%s: Run: %v", arch, err)
				}
				k, err := CompileArch(lay, w.Prog, prof, arch, nil)
				if err != nil {
					t.Fatalf("%s: CompileArch: %v", arch, err)
				}
				for _, b := range packBatches(t, lay, events, 512) {
					if err := k.RunBatch(b); err != nil {
						t.Fatalf("%s: RunBatch: %v", arch, err)
					}
				}
				if got, want := k.Result(), ref.Result(); got != want {
					t.Errorf("%s: Result mismatch:\n batch %+v\n event %+v", arch, got, want)
				}
				if got, want := k.SiteCosts(), ref.SiteCosts(); !reflect.DeepEqual(got, want) {
					t.Errorf("%s: per-site costs diverge", arch)
				}
			}
		})
	}
}

// TestKernelsShareLayout compiles every architecture against one layout and
// runs them over the same batches — the fan-out shape the broadcast stage
// uses — requiring each to match its independently compiled twin.
func TestKernelsShareLayout(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    li   r1, 5
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	prof := profileOf(t, prog, 500)
	events := recordEvents(t, prog, 500)
	lay, err := trace.CompileLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	batches := packBatches(t, lay, events, 64)
	for _, arch := range allArchs() {
		shared, err := CompileArch(lay, prog, prof, arch, nil)
		if err != nil {
			t.Fatalf("%s: CompileArch: %v", arch, err)
		}
		solo, err := Compile(prog, prof, arch, nil)
		if err != nil {
			t.Fatalf("%s: Compile: %v", arch, err)
		}
		for _, b := range batches {
			if err := shared.RunBatch(b); err != nil {
				t.Fatalf("%s: RunBatch: %v", arch, err)
			}
		}
		if err := solo.Run(events); err != nil {
			t.Fatalf("%s: Run: %v", arch, err)
		}
		if shared.Result() != solo.Result() {
			t.Errorf("%s: shared-layout kernel diverges from solo kernel", arch)
		}
	}
}

// TestRunBatchErrors: ops from a different layout or with missing dynamic
// targets must fail, and a valid batch must still work afterwards.
func TestRunBatchErrors(t *testing.T) {
	prog := mustAssemble(t, `
proc main
    li   r1, 2
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	lay, err := trace.CompileLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	k, err := CompileArch(lay, prog, nil, predict.ArchFallthrough, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Site id far out of range.
	bad := &trace.Batch{Ops: []int32{9999 << trace.OpShift}}
	if err := k.RunBatch(bad); err == nil {
		t.Error("RunBatch accepted an out-of-range site id")
	}
	// Kind bits disagreeing with the compiled site.
	wrongKind := &trace.Batch{Ops: []int32{0<<trace.OpShift | int32(ir.Ret)<<1 | 1}}
	if err := k.RunBatch(wrongKind); err == nil {
		t.Error("RunBatch accepted a kind mismatch")
	}
	// A Ret op with no dynamic target. The program has no ret, so borrow a
	// second program to build one against its own layout and feed it here.
	retProg := mustAssemble(t, `
proc main
    call f
    halt
endproc
proc f
    ret
endproc
`)
	retLay, err := trace.CompileLayout(retProg)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := CompileArch(retLay, retProg, nil, predict.ArchBTB64, nil)
	if err != nil {
		t.Fatal(err)
	}
	retSite := int32(-1)
	for i, s := range retLay.Sites() {
		if s.Kind == ir.Ret {
			retSite = int32(i)
		}
	}
	if retSite < 0 {
		t.Fatal("no ret site compiled")
	}
	noTarget := &trace.Batch{Ops: []int32{retSite<<trace.OpShift | int32(ir.Ret)<<1 | 1}}
	if err := rk.RunBatch(noTarget); err == nil {
		t.Error("RunBatch accepted a ret op with no dynamic target")
	}
	// A valid batch still works after the failures above.
	events := recordEvents(t, prog, 100)
	for i, b := range packBatches(t, lay, events, 1<<16) {
		if err := k.RunBatch(b); err != nil {
			t.Errorf("valid batch %d after errors: %v", i, err)
		}
	}
	if k.Result().Events == 0 {
		t.Error(fmt.Errorf("valid batch accumulated nothing"))
	}
}
