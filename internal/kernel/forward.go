package kernel

import (
	"balign/internal/ir"
	"balign/internal/trace"
)

// ForwardBatch advances the kernel's dynamic predictor state over one packed
// batch without accumulating any tallies: after ForwardBatch(b) the kernel's
// predictor tables, global history, BTB (including its LRU ticks) and return
// stack are bit-for-bit what they would be after RunBatch(b); res and the
// per-site cost accumulators are untouched.
//
// This is the primitive behind intra-variant stream sharding: a shard that
// owns batches S of one variant's stream Forwards every batch not in S and
// Runs every batch in S, so each owned batch executes from exactly the
// predictor state the unsharded run had there. Summing the shards' results
// with Merge then reproduces the unsharded run exactly, for any partition of
// the batch sequence — the shard merge property tests enforce this.
//
// Forwarding is cheaper than running: it skips all result and per-site cost
// accounting, and the architectures without trainable direction state
// (FALLTHROUGH, BT/FNT, LIKELY) only have to maintain the return stack, so
// their forward pass touches nothing but Call and Ret events. The BTB
// architectures gain the least — their lookup/insert metadata (LRU ticks)
// is itself predictor state and must be replayed in full.
//
// Malformed ops abort with the same diagnostics as RunBatch: a shard must
// fail on exactly the batch the unsharded run would have failed on.
func (k *Kernel) ForwardBatch(b *trace.Batch) error {
	start := k.obs.Now()
	var err error
	switch k.class {
	case classBTB:
		err = k.forwardBTBBatch(b)
	case classPHTDirect, classPHTGshare, classPHTLocal, classTAGE, classPerceptron:
		err = k.forwardPHTBatch(b)
	default:
		err = k.forwardStaticBatch(b)
	}
	k.obs.AddSince("kernel.forward_ns", start)
	k.obs.Add("kernel.forward_batches", 1)
	k.obs.Add("kernel.forward_events", int64(b.Len()))
	return err
}

// forwardStaticBatch forwards the architectures whose only dynamic state is
// the return stack (FALLTHROUGH, BT/FNT, LIKELY): conditional and
// unconditional branches change nothing, so the loop reduces to Call
// pushes, Ret pops and dynamic-target bookkeeping.
func (k *Kernel) forwardStaticBatch(b *trace.Batch) error {
	var (
		sites   = k.sites
		targets = b.Targets
		tcur    = 0
	)
	for _, op := range b.Ops {
		si := op >> trace.OpShift
		kind := ir.Kind(op >> 1 & (1<<trace.SlotShift - 1))
		if si < 0 || int(si) >= len(sites) || sites[si].Kind != kind {
			return k.batchOpErr(op, tcur, len(targets))
		}
		switch kind {
		case ir.Call:
			k.rasPush(sites[si].Fall)
		case ir.IJump:
			if tcur >= len(targets) {
				return k.batchOpErr(op, tcur, len(targets))
			}
			tcur++
		case ir.Ret:
			if tcur >= len(targets) {
				return k.batchOpErr(op, tcur, len(targets))
			}
			tcur++
			k.rasPop()
		}
	}
	return nil
}

// forwardPHTBatch forwards the trained direction-predictor architectures
// (PHTs, TAGE, hashed perceptron): counter/weight training, global/local
// history shifts and the return stack, with all charging skipped. The
// tagged predictors' update rules depend on their own prediction (useful
// bits, training margin), so forwarding drives the same predict-and-update
// core the run path does — the state evolution is identical by
// construction, only the tallies are dropped.
func (k *Kernel) forwardPHTBatch(b *trace.Batch) error {
	var (
		sites    = k.sites
		cls      = k.class
		ghr      = k.ghr
		counters = k.counters
		mask     = k.mask
		hists    = k.histories
		histMask = k.histMask
		idxMask  = k.idxMask
		targets  = b.Targets
		tcur     = 0
		retErr   error
	)
loop:
	for _, op := range b.Ops {
		si := op >> trace.OpShift
		kind := ir.Kind(op >> 1 & (1<<trace.SlotShift - 1))
		if si < 0 || int(si) >= len(sites) || sites[si].Kind != kind {
			retErr = k.batchOpErr(op, tcur, len(targets))
			break
		}
		switch kind {
		case ir.CondBr:
			taken := op&1 != 0
			switch cls {
			case classPHTDirect:
				idx := (sites[si].PC / ir.InstrBytes) & mask
				counters[idx] = counterStep(counters[idx], taken)
			case classPHTGshare:
				idx := ((sites[si].PC / ir.InstrBytes) ^ ghr) & mask
				counters[idx] = counterStep(counters[idx], taken)
				var bit uint64
				if taken {
					bit = 1
				}
				ghr = ((ghr << 1) | bit) & mask
			case classPHTLocal:
				lslot := (sites[si].PC / ir.InstrBytes) & idxMask
				h := hists[lslot] & histMask
				counters[h] = counterStep(counters[h], taken)
				var bit uint16
				if taken {
					bit = 1
				}
				hists[lslot] = ((hists[lslot] << 1) | bit) & histMask
			case classTAGE:
				var tbit uint8
				if taken {
					tbit = 1
				}
				k.tage.UpdateBit(sites[si].PC/ir.InstrBytes, tbit)
			case classPerceptron:
				var tbit uint8
				if taken {
					tbit = 1
				}
				k.perc.UpdateBit(sites[si].PC/ir.InstrBytes, tbit)
			}
		case ir.Call:
			k.rasPush(sites[si].Fall)
		case ir.IJump:
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			tcur++
		case ir.Ret:
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			tcur++
			k.rasPop()
		}
	}
	k.ghr = ghr
	return retErr
}

// forwardBTBBatch forwards the branch-target-buffer architectures. The
// BTB's LRU ticks advance on every lookup and insert, so the full
// lookup/insert sequence must be replayed — only the result and per-site
// charging is skipped.
func (k *Kernel) forwardBTBBatch(b *trace.Batch) error {
	var (
		sites   = k.sites
		targets = b.Targets
		tcur    = 0
		retErr  error
	)
loop:
	for _, op := range b.Ops {
		si := op >> trace.OpShift
		kind := ir.Kind(op >> 1 & (1<<trace.SlotShift - 1))
		if si < 0 || int(si) >= len(sites) || sites[si].Kind != kind {
			retErr = k.batchOpErr(op, tcur, len(targets))
			break
		}
		s := &sites[si]
		switch kind {
		case ir.CondBr:
			taken := op&1 != 0
			li := k.btbLookup(s.PC)
			if li >= 0 {
				k.btbCtr[li] = counterStep(k.btbCtr[li], taken)
				if taken {
					k.btbTargets[li] = s.TakenTarget
				}
			} else if taken {
				k.btbInsert(s.PC, s.TakenTarget)
			}
		case ir.Br:
			if k.btbLookup(s.PC) < 0 {
				k.btbInsert(s.PC, s.TakenTarget)
			}
		case ir.Call:
			if k.btbLookup(s.PC) < 0 {
				k.btbInsert(s.PC, s.TakenTarget)
			}
			k.rasPush(s.Fall)
		case ir.IJump:
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			target := targets[tcur]
			tcur++
			li := k.btbLookup(s.PC)
			if li >= 0 {
				if k.btbTargets[li] != target {
					k.btbCtr[li] = counterStep(k.btbCtr[li], true)
					k.btbTargets[li] = target
				}
			} else {
				k.btbInsert(s.PC, target)
			}
		case ir.Ret:
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			tcur++
			k.rasPop()
		}
	}
	return retErr
}
