package kernel

import (
	"fmt"

	"balign/internal/predict"
)

// counterNextTab packs the 2-bit saturating counter's transition table into
// one word: entry (state<<1 | taken) holds the next state, two bits each.
// The table is the branchless twin of predict.Counter2.Update — the kernel
// hot loops step counters with one shift-and-mask instead of two compare
// branches per conditional event. TestCounterStepMatchesUpdate holds it to
// the reference transition function state for state.
const counterNextTab = 0xED84

// counterStep returns Update(taken) for a 2-bit saturating counter,
// branchlessly.
func counterStep(c predict.Counter2, taken bool) predict.Counter2 {
	var t uint8
	if taken {
		t = 1
	}
	return counterStepBit(c, t)
}

// counterStepBit is counterStep with the outcome already in bit form (a
// packed op's low bit).
func counterStepBit(c predict.Counter2, takenBit uint8) predict.Counter2 {
	return predict.Counter2(uint32(counterNextTab) >> ((uint32(c)<<1 | uint32(takenBit)) << 1) & 3)
}

// Merge adds other's SiteCost into c. Like predict.Result.Merge it is a
// plain field sum: exact, commutative and associative.
func (c *SiteCost) Merge(other SiteCost) {
	c.Events += other.Events
	c.Misfetches += other.Misfetches
	c.Mispredicts += other.Mispredicts
}

// Merge folds other's accumulated tallies — the Result totals and every
// per-site cost row — into k. Both kernels must have been compiled from the
// same layout for the same architecture; anything else would sum
// accumulators whose site ids name different instructions.
//
// Merge only touches accumulators, never predictor state, and summing is
// order-independent, so merging the shards of a partitioned stream in any
// order yields exactly the unsharded run's tallies (given each shard ran
// its batches from the forwarded state — see ForwardBatch).
func (k *Kernel) Merge(other *Kernel) error {
	if other == nil {
		return fmt.Errorf("kernel: merging a nil kernel")
	}
	if k.arch != other.arch {
		return fmt.Errorf("kernel: merging %s tallies into a %s kernel", other.arch, k.arch)
	}
	if k.lay != other.lay {
		return fmt.Errorf("kernel: merging kernels compiled from different layouts")
	}
	k.res.Merge(other.res)
	for i := range k.costs {
		k.costs[i].Merge(other.costs[i])
	}
	return nil
}
