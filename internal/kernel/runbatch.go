package kernel

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/trace"
)

// RunBatch consumes one packed batch produced against the kernel's own
// layout, accumulating exactly what Run would over the decoded events.
// Like Run it may be called repeatedly — predictor state carries across
// batches — which is what lets N architecture kernels consume one streamed
// generation incrementally.
//
// The packed form already went through Layout.Append's site resolution, so
// the inner loops read each event's static fields (PC, targets, fall
// address) straight from the shared site table: per event, one int32 load
// replaces a 48-byte Event copy. Malformed ops — a site id out of range, a
// kind disagreeing with the site, a missing dynamic target — abort the
// batch with an error; they mean the batch was built against a different
// layout, not workload behaviour.
func (k *Kernel) RunBatch(b *trace.Batch) error {
	start := k.obs.Now()
	var err error
	switch k.class {
	case classBTB:
		err = k.runBTBBatch(b)
	case classPHTDirect, classPHTGshare, classPHTLocal, classTAGE, classPerceptron:
		err = k.runDirectionBatch(b)
	default:
		err = k.runStaticBatch(b)
	}
	k.obs.AddSince("kernel.run_ns", start)
	k.obs.Add("kernel.batches", 1)
	k.obs.Add("kernel.events", int64(b.Len()))
	return err
}

// batchOpErr diagnoses a malformed packed op: the cold path behind the
// inner loops' site checks.
func (k *Kernel) batchOpErr(op int32, tcur, ntargets int) error {
	si := op >> trace.OpShift
	if si < 0 || int(si) >= len(k.sites) {
		return fmt.Errorf("kernel: batch op references site %d of %d (batch from a different layout?)", si, len(k.sites))
	}
	kind := ir.Kind(op >> 1 & (1<<trace.SlotShift - 1))
	if kind != k.sites[si].Kind {
		return fmt.Errorf("kernel: batch op kind %v at pc %#x does not match compiled site kind %v",
			kind, k.sites[si].PC, k.sites[si].Kind)
	}
	return fmt.Errorf("kernel: batch carries %d dynamic targets but op %d (%v at pc %#x) needs more",
		ntargets, tcur, kind, k.sites[si].PC)
}

// runStaticBatch is the batch loop for the direction architectures with no
// trainable state (FALLTHROUGH, BT/FNT, LIKELY): each site's prediction is
// the compile-time predOf bit, so a conditional event reduces to one table
// load plus the branchless charging arithmetic.
func (k *Kernel) runStaticBatch(b *trace.Batch) error {
	var (
		kindOf  = k.kindOf
		predOf  = k.predOf
		fallOf  = k.fallOf
		costs   = k.costs
		res     = k.res
		targets = b.Targets
		tcur    = 0
		retErr  error
	)
	n := len(kindOf)
	costs = costs[:n]
	fallOf = fallOf[:n]
	predOf = predOf[:n]
loop:
	for _, op := range b.Ops {
		si := int(op >> trace.OpShift)
		kind := ir.Kind(op >> 1 & (1<<trace.SlotShift - 1))
		if uint(si) >= uint(n) || ir.Kind(kindOf[si]) != kind {
			retErr = k.batchOpErr(op, tcur, len(targets))
			break
		}
		res.Events++
		c := &costs[si]
		c.Events++
		switch kind {
		case ir.CondBr:
			res.ByKind[ir.CondBr&7]++
			tbit := uint8(op & 1)
			res.Cond++
			res.CondTaken += uint64(tbit)
			pbit := predOf[si]
			// Branchless charging: eq = predicted correctly; a correct
			// taken conditional misfetches, a wrong one mispredicts.
			eq := uint64(1 ^ (pbit ^ tbit))
			mf := eq & uint64(tbit)
			mp := 1 - eq
			res.CondCorrect += eq
			res.Misfetches += mf
			res.Mispredicts += mp
			c.Misfetches += mf
			c.Mispredicts += mp
		case ir.Br:
			res.ByKind[ir.Br&7]++
			res.Misfetches++
			c.Misfetches++
		case ir.Call:
			res.ByKind[ir.Call&7]++
			res.Misfetches++
			c.Misfetches++
			k.rasPush(fallOf[si])
		case ir.IJump:
			res.ByKind[ir.IJump&7]++
			res.Mispredicts++
			c.Mispredicts++
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			tcur++
		case ir.Ret:
			res.ByKind[ir.Ret&7]++
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			target := targets[tcur]
			tcur++
			res.Rets++
			pred, ok := k.rasPop()
			if ok && pred == target {
				res.RetsCorrect++
			} else {
				res.Mispredicts++
				c.Mispredicts++
			}
		}
	}
	k.res = res
	return retErr
}

// runDirectionBatch is the packed-op twin of runDirection for the trained
// direction-predictor architectures (the PHTs plus the tagged TAGE and
// hashed-perceptron predictors): the same charging rules and predictor
// updates, with every per-event load drawn from the compact per-site
// tables (one-byte kind validation, PC slots) and the conditional-branch
// accounting fully branchless — per event the only unpredictable branches
// left are the kind dispatch itself and, for the tagged classes, the
// predictor core's own table scans.
func (k *Kernel) runDirectionBatch(b *trace.Batch) error {
	var (
		kindOf   = k.kindOf
		slotOf   = k.slotOf
		fallOf   = k.fallOf
		costs    = k.costs
		cls      = k.class
		res      = k.res
		ghr      = k.ghr
		counters = k.counters
		mask     = k.mask
		hists    = k.histories
		histMask = k.histMask
		idxMask  = k.idxMask
		tage     = k.tage
		perc     = k.perc
		targets  = b.Targets
		tcur     = 0
		retErr   error
	)
	// Reslice every per-site table to len(kindOf) and the predictor tables
	// to their masks, so after the single validation compare the compiler
	// can prove each index in bounds and drop the per-event bounds checks.
	n := len(kindOf)
	costs = costs[:n]
	slotOf = slotOf[:n]
	fallOf = fallOf[:n]
	if counters != nil {
		counters = counters[:(mask|uint64(histMask))+1]
	}
	if hists != nil {
		hists = hists[:idxMask+1]
	}
loop:
	for _, op := range b.Ops {
		si := int(op >> trace.OpShift)
		kind := ir.Kind(op >> 1 & (1<<trace.SlotShift - 1))
		if uint(si) >= uint(n) || ir.Kind(kindOf[si]) != kind {
			retErr = k.batchOpErr(op, tcur, len(targets))
			break
		}
		res.Events++
		c := &costs[si]
		c.Events++
		switch kind {
		case ir.CondBr:
			res.ByKind[ir.CondBr&7]++
			tbit := uint8(op & 1)
			res.Cond++
			res.CondTaken += uint64(tbit)
			var pbit uint8
			switch cls {
			case classPHTDirect:
				idx := slotOf[si] & mask
				cc := counters[idx]
				pbit = uint8(cc) >> 1
				counters[idx] = counterStepBit(cc, tbit)
			case classPHTGshare:
				idx := (slotOf[si] ^ ghr) & mask
				cc := counters[idx]
				pbit = uint8(cc) >> 1
				counters[idx] = counterStepBit(cc, tbit)
				ghr = ((ghr << 1) | uint64(tbit)) & mask
			case classPHTLocal:
				lslot := slotOf[si] & idxMask
				h := hists[lslot] & histMask
				cc := counters[h]
				pbit = uint8(cc) >> 1
				counters[h] = counterStepBit(cc, tbit)
				hists[lslot] = ((hists[lslot] << 1) | uint16(tbit)) & histMask
			case classTAGE:
				pbit = tage.PredictBit(slotOf[si])
				tage.UpdateBit(slotOf[si], tbit)
			case classPerceptron:
				pbit = perc.PredictBit(slotOf[si])
				perc.UpdateBit(slotOf[si], tbit)
			}
			// Branchless charging: eq = predicted correctly; a correct
			// taken conditional misfetches, a wrong one mispredicts.
			eq := uint64(1 ^ (pbit ^ tbit))
			mf := eq & uint64(tbit)
			mp := 1 - eq
			res.CondCorrect += eq
			res.Misfetches += mf
			res.Mispredicts += mp
			c.Misfetches += mf
			c.Mispredicts += mp
		case ir.Br:
			res.ByKind[ir.Br&7]++
			res.Misfetches++
			c.Misfetches++
		case ir.Call:
			res.ByKind[ir.Call&7]++
			res.Misfetches++
			c.Misfetches++
			k.rasPush(fallOf[si])
		case ir.IJump:
			res.ByKind[ir.IJump&7]++
			res.Mispredicts++
			c.Mispredicts++
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			tcur++
		case ir.Ret:
			res.ByKind[ir.Ret&7]++
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			target := targets[tcur]
			tcur++
			res.Rets++
			pred, ok := k.rasPop()
			if ok && pred == target {
				res.RetsCorrect++
			} else {
				res.Mispredicts++
				c.Mispredicts++
			}
		}
	}
	k.res = res
	k.ghr = ghr
	return retErr
}

// runBTBBatch is the packed-op twin of runBTB: the branch-target-buffer
// charging rules over the compact site tables, with a conditional's
// installed target taken from takenOf (only the taken direction ever
// touches the BTB's target word). The lookup/insert scans live in local
// closures over the structure-of-arrays BTB state so the global LRU tick
// stays out of the Kernel struct for the whole batch.
func (k *Kernel) runBTBBatch(b *trace.Batch) error {
	var (
		kindOf  = k.kindOf
		slotOf  = k.slotOf
		fallOf  = k.fallOf
		takenOf = k.takenOf
		costs   = k.costs
		res     = k.res
		tags    = k.btbTags
		tgts    = k.btbTargets
		lrus    = k.btbLRU
		ctrs    = k.btbCtr
		tick    = k.btbTick
		ways    = k.btbWays
		setMask = k.btbSetMask
		targets = b.Targets
		tcur    = 0
		retErr  error
	)
	n := len(kindOf)
	costs = costs[:n]
	slotOf = slotOf[:n]
	fallOf = fallOf[:n]
	takenOf = takenOf[:n]
	e := len(tags)
	tgts = tgts[:e]
	lrus = lrus[:e]
	ctrs = ctrs[:e]
	// lookup and insert mirror btbLookup/btbInsert exactly (tags hold pc+1,
	// a hit refreshes the LRU tick, first invalid way wins eviction then
	// lowest tick) — keep all three in sync.
	lookup := func(pc uint64) int {
		tick++
		base := int((pc/ir.InstrBytes)&setMask) * ways
		tag := pc + 1
		for w := 0; w < ways; w++ {
			if tags[base+w] == tag {
				lrus[base+w] = tick
				return base + w
			}
		}
		return -1
	}
	insert := func(pc, target uint64) {
		tick++
		base := int((pc/ir.InstrBytes)&setMask) * ways
		victim := base
		for w := 0; w < ways; w++ {
			if tags[base+w] == 0 {
				victim = base + w
				break
			}
			if lrus[base+w] < lrus[victim] {
				victim = base + w
			}
		}
		tags[victim] = pc + 1
		tgts[victim] = target
		lrus[victim] = tick
		ctrs[victim] = 3
	}
loop:
	for _, op := range b.Ops {
		si := int(op >> trace.OpShift)
		kind := ir.Kind(op >> 1 & (1<<trace.SlotShift - 1))
		if uint(si) >= uint(n) || ir.Kind(kindOf[si]) != kind {
			retErr = k.batchOpErr(op, tcur, len(targets))
			break
		}
		pc := slotOf[si] * ir.InstrBytes
		res.Events++
		c := &costs[si]
		c.Events++
		switch kind {
		case ir.CondBr:
			res.ByKind[ir.CondBr&7]++
			res.Cond++
			tb := uint8(op & 1)
			taken := tb != 0
			res.CondTaken += uint64(tb)
			li := lookup(pc)
			if li >= 0 {
				if ctrs[li].Taken() == taken {
					res.CondCorrect++
					// Taken and correctly predicted: the stored target of
					// a direct conditional is always right, so no penalty.
				} else {
					res.Mispredicts++
					c.Mispredicts++
				}
				ctrs[li] = counterStepBit(ctrs[li], tb)
				if taken {
					tgts[li] = takenOf[si]
				}
			} else if taken {
				res.Mispredicts++
				c.Mispredicts++
				insert(pc, takenOf[si])
			} else {
				res.CondCorrect++
			}
		case ir.Br:
			res.ByKind[ir.Br&7]++
			if lookup(pc) < 0 {
				res.Misfetches++
				c.Misfetches++
				insert(pc, takenOf[si])
			}
		case ir.Call:
			res.ByKind[ir.Call&7]++
			if lookup(pc) < 0 {
				res.Misfetches++
				c.Misfetches++
				insert(pc, takenOf[si])
			}
			k.rasPush(fallOf[si])
		case ir.IJump:
			res.ByKind[ir.IJump&7]++
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			target := targets[tcur]
			tcur++
			li := lookup(pc)
			if li >= 0 && tgts[li] == target {
				// hit with the right target: free
			} else {
				res.Mispredicts++
				c.Mispredicts++
				if li >= 0 {
					ctrs[li] = counterStepBit(ctrs[li], 1)
					tgts[li] = target
				} else {
					insert(pc, target)
				}
			}
		case ir.Ret:
			res.ByKind[ir.Ret&7]++
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			target := targets[tcur]
			tcur++
			res.Rets++
			pred, ok := k.rasPop()
			if ok && pred == target {
				res.RetsCorrect++
			} else {
				res.Mispredicts++
				c.Mispredicts++
			}
		}
	}
	k.res = res
	k.btbTick = tick
	return retErr
}
