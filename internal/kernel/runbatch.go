package kernel

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/trace"
)

// RunBatch consumes one packed batch produced against the kernel's own
// layout, accumulating exactly what Run would over the decoded events.
// Like Run it may be called repeatedly — predictor state carries across
// batches — which is what lets N architecture kernels consume one streamed
// generation incrementally.
//
// The packed form already went through Layout.Append's site resolution, so
// the inner loops read each event's static fields (PC, targets, fall
// address) straight from the shared site table: per event, one int32 load
// replaces a 48-byte Event copy. Malformed ops — a site id out of range, a
// kind disagreeing with the site, a missing dynamic target — abort the
// batch with an error; they mean the batch was built against a different
// layout, not workload behaviour.
func (k *Kernel) RunBatch(b *trace.Batch) error {
	start := k.obs.Now()
	var err error
	if k.class == classBTB {
		err = k.runBTBBatch(b)
	} else {
		err = k.runDirectionBatch(b)
	}
	k.obs.AddSince("kernel.run_ns", start)
	k.obs.Add("kernel.batches", 1)
	k.obs.Add("kernel.events", int64(b.Len()))
	return err
}

// batchOpErr diagnoses a malformed packed op: the cold path behind the
// inner loops' site checks.
func (k *Kernel) batchOpErr(op int32, tcur, ntargets int) error {
	si := op >> trace.OpShift
	if si < 0 || int(si) >= len(k.sites) {
		return fmt.Errorf("kernel: batch op references site %d of %d (batch from a different layout?)", si, len(k.sites))
	}
	kind := ir.Kind(op >> 1 & (1<<trace.SlotShift - 1))
	if kind != k.sites[si].Kind {
		return fmt.Errorf("kernel: batch op kind %v at pc %#x does not match compiled site kind %v",
			kind, k.sites[si].PC, k.sites[si].Kind)
	}
	return fmt.Errorf("kernel: batch carries %d dynamic targets but op %d (%v at pc %#x) needs more",
		ntargets, tcur, kind, k.sites[si].PC)
}

// runDirectionBatch is the packed-op twin of runDirection: the same
// charging rules and predictor updates, with every static event field read
// from the site table.
func (k *Kernel) runDirectionBatch(b *trace.Batch) error {
	var (
		sites    = k.sites
		costs    = k.costs
		cls      = k.class
		res      = k.res
		ghr      = k.ghr
		counters = k.counters
		mask     = k.mask
		likely   = k.siteLikely
		hists    = k.histories
		histMask = k.histMask
		idxMask  = k.idxMask
		targets  = b.Targets
		tcur     = 0
		retErr   error
	)
loop:
	for _, op := range b.Ops {
		si := op >> trace.OpShift
		kind := ir.Kind(op >> 1 & (1<<trace.SlotShift - 1))
		if si < 0 || int(si) >= len(sites) || sites[si].Kind != kind {
			retErr = k.batchOpErr(op, tcur, len(targets))
			break
		}
		s := &sites[si]
		res.Events++
		res.ByKind[kind&7]++
		c := &costs[si]
		c.Events++
		switch kind {
		case ir.CondBr:
			res.Cond++
			taken := op&1 != 0
			if taken {
				res.CondTaken++
			}
			var pred bool
			switch cls {
			case classFallthrough:
				// pred = false
			case classBTFNT:
				pred = s.TakenTarget <= s.PC
			case classLikely:
				pred = likely[si]
			case classPHTDirect:
				idx := (s.PC / ir.InstrBytes) & mask
				pred = counters[idx].Taken()
				counters[idx] = counters[idx].Update(taken)
			case classPHTGshare:
				idx := ((s.PC / ir.InstrBytes) ^ ghr) & mask
				pred = counters[idx].Taken()
				counters[idx] = counters[idx].Update(taken)
				var bit uint64
				if taken {
					bit = 1
				}
				ghr = ((ghr << 1) | bit) & mask
			case classPHTLocal:
				lslot := (s.PC / ir.InstrBytes) & idxMask
				h := hists[lslot] & histMask
				pred = counters[h].Taken()
				counters[h] = counters[h].Update(taken)
				var bit uint16
				if taken {
					bit = 1
				}
				hists[lslot] = ((hists[lslot] << 1) | bit) & histMask
			}
			if pred == taken {
				res.CondCorrect++
				if taken {
					res.Misfetches++
					c.Misfetches++
				}
			} else {
				res.Mispredicts++
				c.Mispredicts++
			}
		case ir.Br:
			res.Misfetches++
			c.Misfetches++
		case ir.Call:
			res.Misfetches++
			c.Misfetches++
			k.rasPush(s.Fall)
		case ir.IJump:
			res.Mispredicts++
			c.Mispredicts++
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			tcur++
		case ir.Ret:
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			target := targets[tcur]
			tcur++
			res.Rets++
			pred, ok := k.rasPop()
			if ok && pred == target {
				res.RetsCorrect++
			} else {
				res.Mispredicts++
				c.Mispredicts++
			}
		}
	}
	k.res = res
	k.ghr = ghr
	return retErr
}

// runBTBBatch is the packed-op twin of runBTB: the branch-target-buffer
// charging rules over static site fields, with a conditional's installed
// target taken from the site table (only the taken direction ever touches
// the BTB's target word).
func (k *Kernel) runBTBBatch(b *trace.Batch) error {
	var (
		sites   = k.sites
		costs   = k.costs
		res     = k.res
		targets = b.Targets
		tcur    = 0
		retErr  error
	)
loop:
	for _, op := range b.Ops {
		si := op >> trace.OpShift
		kind := ir.Kind(op >> 1 & (1<<trace.SlotShift - 1))
		if si < 0 || int(si) >= len(sites) || sites[si].Kind != kind {
			retErr = k.batchOpErr(op, tcur, len(targets))
			break
		}
		s := &sites[si]
		res.Events++
		res.ByKind[kind&7]++
		c := &costs[si]
		c.Events++
		switch kind {
		case ir.CondBr:
			res.Cond++
			taken := op&1 != 0
			if taken {
				res.CondTaken++
			}
			li := k.btbLookup(s.PC)
			if li >= 0 {
				e := &k.btb[li]
				if e.counter.Taken() == taken {
					res.CondCorrect++
					// Taken and correctly predicted: the stored target of
					// a direct conditional is always right, so no penalty.
				} else {
					res.Mispredicts++
					c.Mispredicts++
				}
				e.counter = e.counter.Update(taken)
				if taken {
					e.target = s.TakenTarget
				}
			} else if taken {
				res.Mispredicts++
				c.Mispredicts++
				k.btbInsert(s.PC, s.TakenTarget)
			} else {
				res.CondCorrect++
			}
		case ir.Br:
			if k.btbLookup(s.PC) < 0 {
				res.Misfetches++
				c.Misfetches++
				k.btbInsert(s.PC, s.TakenTarget)
			}
		case ir.Call:
			if k.btbLookup(s.PC) < 0 {
				res.Misfetches++
				c.Misfetches++
				k.btbInsert(s.PC, s.TakenTarget)
			}
			k.rasPush(s.Fall)
		case ir.IJump:
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			target := targets[tcur]
			tcur++
			li := k.btbLookup(s.PC)
			if li >= 0 && k.btb[li].target == target {
				// hit with the right target: free
			} else {
				res.Mispredicts++
				c.Mispredicts++
				if li >= 0 {
					e := &k.btb[li]
					e.counter = e.counter.Update(true)
					e.target = target
				} else {
					k.btbInsert(s.PC, target)
				}
			}
		case ir.Ret:
			if tcur >= len(targets) {
				retErr = k.batchOpErr(op, tcur, len(targets))
				break loop
			}
			target := targets[tcur]
			tcur++
			res.Rets++
			pred, ok := k.rasPop()
			if ok && pred == target {
				res.RetsCorrect++
			} else {
				res.Mispredicts++
				c.Mispredicts++
			}
		}
	}
	k.res = res
	return retErr
}
