// Package obs is the observability layer of the evaluation harness: a
// lightweight run-telemetry recorder with hierarchical timing spans
// (program → arch → algo → stage), monotonic counters, gauges, attachable
// report sections and a machine-readable JSON run report, plus helpers
// exposing Go's standard debug endpoints (net/http/pprof, expvar).
//
// Two constraints of the experiment engine shape the design:
//
//   - Zero overhead when disabled. A nil *Recorder — and the nil *Span it
//     hands out — is a valid no-op recorder: every method is nil-safe, so
//     instrumented code carries no conditionals and telemetry-off runs
//     skip even the clock reads (see Recorder.Now).
//
//   - No feedback into the measured computation. The recorder only
//     observes — clocks, counts, snapshots — and never influences
//     scheduling or results, so the parallel engine's byte-determinism
//     guarantee holds with telemetry on. The differential oracle tests in
//     internal/experiments assert this.
package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"
	"time"
)

// Recorder collects one run's telemetry. Create with New; the zero value
// is not usable but a nil *Recorder is (as a no-op). A Recorder is safe
// for concurrent use: spans, counters and gauges may be recorded from any
// goroutine.
type Recorder struct {
	tool  string
	start time.Time

	mu       sync.Mutex
	spans    []*Span
	counters map[string]int64
	gauges   map[string]int64
	sections map[string]any
}

// New returns an enabled recorder for the named tool, anchored at the
// current time.
func New(tool string) *Recorder {
	return &Recorder{
		tool:     tool,
		start:    time.Now(),
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		sections: make(map[string]any),
	}
}

// Enabled reports whether the recorder actually records. Use it to guard
// work that only produces telemetry inputs (building a label string, say);
// plain recording calls need no guard because they are nil-safe.
func (r *Recorder) Enabled() bool { return r != nil }

// Now returns the current time when the recorder is enabled and the zero
// time otherwise, so disabled telemetry skips the clock read entirely.
// Pair with AddSince.
func (r *Recorder) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// Add increments the named monotonic counter by delta. No-op on a nil
// recorder.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// AddSince adds the nanoseconds elapsed since start to the named counter.
// A zero start — what Now returns on a disabled recorder — is ignored, so
// the Now/AddSince pair costs nothing when telemetry is off.
func (r *Recorder) AddSince(name string, start time.Time) {
	if r == nil || start.IsZero() {
		return
	}
	r.Add(name, int64(time.Since(start)))
}

// Set stores the named gauge's current value. No-op on a nil recorder.
func (r *Recorder) Set(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Attach stores an arbitrary JSON-marshalable value as a named report
// section (an engine stats snapshot, the summary grid, ...). Attaching
// the same name again overwrites the previous value, so a multi-phase run
// reports each section's final state.
func (r *Recorder) Attach(name string, v any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sections[name] = v
	r.mu.Unlock()
}

// Span opens a top-level span. End it with Span.End. Returns nil (a valid
// no-op span) on a nil recorder.
func (r *Recorder) Span(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{r: r, name: name, start: time.Now()}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// Span is one timed region of a run. Spans nest: Child opens a sub-span,
// and the report renders the tree. All methods are nil-safe, so code paths
// instrumented against a disabled recorder pay nothing.
type Span struct {
	r     *Recorder
	name  string
	start time.Time

	// Guarded by r.mu.
	dur      time.Duration
	ended    bool
	attrs    map[string]int64
	children []*Span
}

// Child opens a sub-span of s. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{r: s.r, name: name, start: time.Now()}
	s.r.mu.Lock()
	s.children = append(s.children, c)
	s.r.mu.Unlock()
	return c
}

// SetInt records an integer attribute on the span (a queue wait in
// nanoseconds, a shard count, a utilization in basis points, ...).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64)
	}
	s.attrs[key] = v
	s.r.mu.Unlock()
}

// End closes the span, fixing its duration. A second End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.r.mu.Lock()
	if !s.ended {
		s.dur, s.ended = d, true
	}
	s.r.mu.Unlock()
}

// Report is the machine-readable form of one run's telemetry. Field names
// are the stable JSON schema consumed by `make report` and the schema test
// in cmd/baexp.
type Report struct {
	// Tool names the producing command.
	Tool string `json:"tool"`
	// Start is the wall-clock time the recorder was created.
	Start time.Time `json:"start"`
	// WallNs is the nanoseconds elapsed from Start to the snapshot.
	WallNs int64 `json:"wall_ns"`
	// Counters and Gauges hold the flat metric maps.
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	// Spans is the timing tree, in open order.
	Spans []*SpanReport `json:"spans,omitempty"`
	// Sections holds the attached structured snapshots (engine stats,
	// trace-cache stats, the summary grid, ...).
	Sections map[string]any `json:"sections,omitempty"`
}

// SpanReport is one span of the report's timing tree.
type SpanReport struct {
	Name string `json:"name"`
	// StartNs is the span's start as an offset from the report's Start.
	StartNs int64 `json:"start_ns"`
	// DurNs is the span's duration; for a span still open at snapshot
	// time it is the elapsed time so far and Open is set.
	DurNs    int64            `json:"dur_ns"`
	Open     bool             `json:"open,omitempty"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []*SpanReport    `json:"children,omitempty"`
}

// Report snapshots the recorder. Nil recorders return nil.
func (r *Recorder) Report() *Report {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &Report{
		Tool:     r.tool,
		Start:    r.start,
		WallNs:   int64(now.Sub(r.start)),
		Counters: cloneMap(r.counters),
		Gauges:   cloneMap(r.gauges),
		Sections: make(map[string]any, len(r.sections)),
	}
	for k, v := range r.sections {
		rep.Sections[k] = v
	}
	for _, s := range r.spans {
		rep.Spans = append(rep.Spans, s.report(r.start, now))
	}
	return rep
}

// report renders one span subtree; the caller holds r.mu.
func (s *Span) report(base, now time.Time) *SpanReport {
	sr := &SpanReport{
		Name:    s.name,
		StartNs: int64(s.start.Sub(base)),
		DurNs:   int64(s.dur),
		Attrs:   cloneMap(s.attrs),
	}
	if !s.ended {
		sr.DurNs = int64(now.Sub(s.start))
		sr.Open = true
	}
	for _, c := range s.children {
		sr.Children = append(sr.Children, c.report(base, now))
	}
	return sr
}

func cloneMap(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// WriteJSON writes the report as indented JSON. On a nil recorder it
// writes nothing and returns nil.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	data, err := json.MarshalIndent(r.Report(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Publish registers the recorder's live report as an expvar variable, so
// a debug server's /debug/vars shows current counters, gauges and spans.
// Call at most once per name per process (expvar panics on duplicates).
func (r *Recorder) Publish(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Report() }))
}

// ListenAndServeDebug serves Go's standard debug endpoints —
// /debug/pprof (net/http/pprof) and /debug/vars (expvar) — on addr. It
// blocks like http.ListenAndServe; run it on its own goroutine.
func ListenAndServeDebug(addr string) error {
	return http.ListenAndServe(addr, nil)
}

// DebugHandler returns the handler behind ListenAndServeDebug — the default
// mux carrying /debug/pprof (registered by this package's net/http/pprof
// import) and /debug/vars (expvar) — so a server with its own mux can mount
// the standard debug endpoints under its /debug/ prefix.
func DebugHandler() http.Handler { return http.DefaultServeMux }
