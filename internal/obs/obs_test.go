package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderIsNoOp is the zero-overhead contract: every method on a
// nil recorder (and the nil spans it hands out) must be safe and inert.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	if !r.Now().IsZero() {
		t.Error("nil recorder read the clock")
	}
	r.Add("c", 1)
	r.AddSince("c", r.Now())
	r.Set("g", 2)
	r.Attach("s", 3)
	sp := r.Span("outer")
	if sp != nil {
		t.Fatalf("nil recorder produced a live span")
	}
	sp.SetInt("k", 1)
	inner := sp.Child("inner")
	inner.SetInt("k", 2)
	inner.End()
	sp.End()
	if rep := r.Report(); rep != nil {
		t.Errorf("nil recorder produced a report: %+v", rep)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteJSON wrote %q, err %v", buf.String(), err)
	}
}

func TestCountersGaugesSections(t *testing.T) {
	r := New("test")
	r.Add("sim.tasks", 3)
	r.Add("sim.tasks", 2)
	r.AddSince("core.plan.ns", r.Now().Add(-time.Millisecond))
	r.Set("cache.live", 7)
	r.Set("cache.live", 4)
	r.Attach("engine", map[string]int{"tasks": 5})

	rep := r.Report()
	if rep.Tool != "test" {
		t.Errorf("Tool = %q", rep.Tool)
	}
	if rep.Counters["sim.tasks"] != 5 {
		t.Errorf("counter = %d, want 5", rep.Counters["sim.tasks"])
	}
	if rep.Counters["core.plan.ns"] < int64(time.Millisecond) {
		t.Errorf("AddSince recorded %dns, want >= 1ms", rep.Counters["core.plan.ns"])
	}
	if rep.Gauges["cache.live"] != 4 {
		t.Errorf("gauge = %d, want last-write 4", rep.Gauges["cache.live"])
	}
	if rep.Sections["engine"] == nil {
		t.Error("attached section missing from report")
	}
	if rep.WallNs <= 0 {
		t.Errorf("WallNs = %d", rep.WallNs)
	}
}

func TestSpanTree(t *testing.T) {
	r := New("test")
	outer := r.Span("run")
	outer.SetInt("tasks", 9)
	inner := outer.Child("shard/a")
	inner.SetInt("queue_wait_ns", 123)
	inner.End()
	open := outer.Child("shard/b") // left open deliberately

	rep := r.Report()
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "run" {
		t.Fatalf("span roots = %+v", rep.Spans)
	}
	root := rep.Spans[0]
	if !root.Open {
		t.Error("unended root span not marked open")
	}
	if root.Attrs["tasks"] != 9 {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children = %+v", root.Children)
	}
	a := root.Children[0]
	if a.Name != "shard/a" || a.Open || a.Attrs["queue_wait_ns"] != 123 {
		t.Errorf("child a = %+v", a)
	}
	if !root.Children[1].Open {
		t.Error("open child not marked open")
	}
	open.End()
	outer.End()
	dur := r.Report().Spans[0].DurNs
	outer.End() // double End must not reset the duration
	if got := r.Report().Spans[0].DurNs; got != dur {
		t.Errorf("double End changed duration: %d -> %d", dur, got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New("test")
	run := r.Span("run")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Add("n", 1)
				r.Set("g", int64(j))
				sp := run.Child("shard")
				sp.SetInt("i", int64(j))
				sp.End()
			}
		}()
	}
	wg.Wait()
	run.End()
	rep := r.Report()
	if rep.Counters["n"] != 1600 {
		t.Errorf("counter = %d, want 1600", rep.Counters["n"])
	}
	if len(rep.Spans[0].Children) != 1600 {
		t.Errorf("children = %d, want 1600", len(rep.Spans[0].Children))
	}
}

// TestWriteJSONSchema pins the report's stable JSON field names.
func TestWriteJSONSchema(t *testing.T) {
	r := New("baexp")
	sp := r.Span("sim.run")
	sp.Child("cell").End()
	sp.End()
	r.Add("sim.tasks", 1)
	r.Set("cache.live", 0)
	r.Attach("grid", []string{"row"})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Tool     string           `json:"tool"`
		WallNs   *int64           `json:"wall_ns"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
		Spans    []struct {
			Name     string            `json:"name"`
			DurNs    *int64            `json:"dur_ns"`
			Children []json.RawMessage `json:"children"`
		} `json:"spans"`
		Sections map[string]json.RawMessage `json:"sections"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Tool != "baexp" || rep.WallNs == nil {
		t.Errorf("tool/wall_ns missing: %s", buf.String())
	}
	if rep.Counters["sim.tasks"] != 1 {
		t.Errorf("counters missing: %s", buf.String())
	}
	if _, ok := rep.Gauges["cache.live"]; !ok {
		t.Errorf("gauges missing: %s", buf.String())
	}
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "sim.run" ||
		rep.Spans[0].DurNs == nil || len(rep.Spans[0].Children) != 1 {
		t.Errorf("span tree malformed: %s", buf.String())
	}
	if _, ok := rep.Sections["grid"]; !ok {
		t.Errorf("sections missing: %s", buf.String())
	}
}
