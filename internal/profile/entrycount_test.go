package profile

import (
	"bytes"
	"strings"
	"testing"
)

// The entry block executes once per invocation with no incoming edge to
// show for it; BlockWeight must add EntryCount for block 0 and only there.
func TestBlockWeightIncludesEntryCount(t *testing.T) {
	p := NewProcProfile()
	p.EntryCount = 40
	p.Edges[Edge{0, 1}] = 5
	p.Edges[Edge{1, 0}] = 3
	if w := p.BlockWeight(0); w != 43 {
		t.Errorf("BlockWeight(entry) = %d, want 43 (3 edge + 40 invocations)", w)
	}
	if w := p.BlockWeight(1); w != 5 {
		t.Errorf("BlockWeight(1) = %d, want 5 (no entry increment)", w)
	}
}

func TestEntryCountMergeScaleRoundTrip(t *testing.T) {
	a := New("p")
	a.Proc("main").EntryCount = 10
	a.Proc("main").Edges[Edge{0, 1}] = 4

	b := New("p")
	b.Proc("main").EntryCount = 5
	a.Merge(b)
	if got := a.Proc("main").EntryCount; got != 15 {
		t.Errorf("merged EntryCount = %d, want 15", got)
	}

	a.Scale(1, 2)
	if got := a.Proc("main").EntryCount; got != 7 {
		t.Errorf("scaled EntryCount = %d, want 7 (truncating, never scaled to zero)", got)
	}

	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "entry 7") {
		t.Fatalf("encoded profile missing entry record:\n%s", buf.String())
	}
	back, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Proc("main").EntryCount; got != 7 {
		t.Errorf("round-tripped EntryCount = %d, want 7", got)
	}
}

// Profiles without invocation counts (every profile written before the
// entry record existed) must encode byte-identically to the old format:
// the entry line is emitted only when nonzero.
func TestEntryCountZeroOmittedFromEncoding(t *testing.T) {
	a := New("p")
	a.Proc("main").Edges[Edge{0, 1}] = 4
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "entry") {
		t.Fatalf("zero EntryCount emitted an entry record:\n%s", buf.String())
	}
}

func TestEntryCountReadErrors(t *testing.T) {
	for _, src := range []string{
		"profile p\nentry 3\n",            // entry before proc
		"profile p\nproc main\nentry\n",   // missing count
		"profile p\nproc main\nentry x\n", // bad count
	} {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", src)
		}
	}
}
