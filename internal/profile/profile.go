// Package profile implements edge execution profiles: how many times each
// intraprocedural CFG edge was traversed and how each conditional branch
// resolved. Profiles drive branch alignment (edge weights), the LIKELY
// static predictor (majority outcome per branch site) and the synthetic
// walker (profile-faithful trace regeneration).
package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"balign/internal/ir"
	"balign/internal/trace"
)

// Edge identifies an intraprocedural CFG edge by block IDs.
type Edge struct {
	From ir.BlockID
	To   ir.BlockID
}

// BranchCount records the dynamic outcomes of one conditional branch site.
type BranchCount struct {
	Taken uint64
	Fall  uint64
}

// Total returns the branch's execution count.
func (b BranchCount) Total() uint64 { return b.Taken + b.Fall }

// TakenProb returns the empirical probability the branch is taken; an
// unexecuted branch reports 0.
func (b BranchCount) TakenProb() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Taken) / float64(t)
}

// ProcProfile holds the profile of one procedure.
type ProcProfile struct {
	Edges    map[Edge]uint64
	Branches map[ir.BlockID]BranchCount
	// EntryCount is the procedure's invocation count: how many times control
	// entered at the entry block from a call (or, for the program entry
	// procedure, from program start). Entry blocks have no incoming
	// intraprocedural edge for these executions, so without it the entry
	// block's weight undercounts by one full invocation per call —
	// core.ProcHotness derives it from caller block weights when the
	// collector could not record it directly.
	EntryCount uint64
}

// NewProcProfile returns an empty procedure profile.
func NewProcProfile() *ProcProfile {
	return &ProcProfile{
		Edges:    make(map[Edge]uint64),
		Branches: make(map[ir.BlockID]BranchCount),
	}
}

// Weight returns the traversal count of the edge from -> to.
func (p *ProcProfile) Weight(from, to ir.BlockID) uint64 {
	return p.Edges[Edge{from, to}]
}

// BlockWeight returns the execution count of a block: the sum of its
// incoming edge weights, plus — for the entry block — one execution per
// procedure invocation (EntryCount). The entry increment is NOT immaterial:
// relative-ordering consumers tolerate its absence, but absolute-weight
// consumers (ExtTSP's distance-weighted objective, procedure hotness and
// cross-procedure layout) mis-rank call-heavy entry blocks without it.
func (p *ProcProfile) BlockWeight(id ir.BlockID) uint64 {
	var n uint64
	for e, w := range p.Edges {
		if e.To == id {
			n += w
		}
	}
	if id == ir.EntryBlock {
		n += p.EntryCount
	}
	return n
}

// Profile is a whole-program profile keyed by procedure name (names are
// stable across alignment rewrites, unlike block IDs).
type Profile struct {
	Program string
	// Instrs is the total number of instructions executed while profiling.
	Instrs uint64
	Procs  map[string]*ProcProfile
}

// New returns an empty profile for the named program.
func New(program string) *Profile {
	return &Profile{Program: program, Procs: make(map[string]*ProcProfile)}
}

// Proc returns the profile for the named procedure, creating it on demand.
func (pf *Profile) Proc(name string) *ProcProfile {
	pp, ok := pf.Procs[name]
	if !ok {
		pp = NewProcProfile()
		pf.Procs[name] = pp
	}
	return pp
}

// Merge adds other's counts into pf.
func (pf *Profile) Merge(other *Profile) {
	pf.Instrs += other.Instrs
	for name, opp := range other.Procs {
		pp := pf.Proc(name)
		pp.EntryCount += opp.EntryCount
		for e, w := range opp.Edges {
			pp.Edges[e] += w
		}
		for b, c := range opp.Branches {
			cur := pp.Branches[b]
			cur.Taken += c.Taken
			cur.Fall += c.Fall
			pp.Branches[b] = cur
		}
	}
}

// Scale multiplies every count by num/den, rounding down but never turning a
// nonzero count into zero (alignment treats weight ≥ 1 as "executed").
func (pf *Profile) Scale(num, den uint64) {
	if den == 0 {
		return
	}
	sc := func(v uint64) uint64 {
		if v == 0 {
			return 0
		}
		s := v * num / den
		if s == 0 {
			s = 1
		}
		return s
	}
	pf.Instrs = sc(pf.Instrs)
	for _, pp := range pf.Procs {
		pp.EntryCount = sc(pp.EntryCount)
		for e, w := range pp.Edges {
			pp.Edges[e] = sc(w)
		}
		for b, c := range pp.Branches {
			pp.Branches[b] = BranchCount{Taken: sc(c.Taken), Fall: sc(c.Fall)}
		}
	}
}

// TotalEdgeWeight returns the sum of all edge weights in the profile.
func (pf *Profile) TotalEdgeWeight() uint64 {
	var n uint64
	for _, pp := range pf.Procs {
		for _, w := range pp.Edges {
			n += w
		}
	}
	return n
}

// Collector adapts a Profile to the trace.EdgeSink interface for a specific
// program (needed to map procedure indices to stable names).
type Collector struct {
	prog *ir.Program
	prof *Profile
}

// NewCollector returns a collector that accumulates into a fresh Profile.
func NewCollector(prog *ir.Program) *Collector {
	return &Collector{prog: prog, prof: New(prog.Name)}
}

// Profile returns the accumulated profile.
func (c *Collector) Profile() *Profile { return c.prof }

// Edge implements trace.EdgeSink.
func (c *Collector) Edge(procIdx int, from, to ir.BlockID) {
	c.prof.Proc(c.prog.Procs[procIdx].Name).Edges[Edge{from, to}]++
}

// Branch implements trace.EdgeSink.
func (c *Collector) Branch(procIdx int, block ir.BlockID, taken bool) {
	pp := c.prof.Proc(c.prog.Procs[procIdx].Name)
	cur := pp.Branches[block]
	if taken {
		cur.Taken++
	} else {
		cur.Fall++
	}
	pp.Branches[block] = cur
}

// Instrs implements trace.EdgeSink.
func (c *Collector) Instrs(n uint64) { c.prof.Instrs += n }

var _ trace.EdgeSink = (*Collector)(nil)

// Model returns a trace.Model that reproduces the profiled branch behaviour
// of prog: conditional branches take with their profiled probability and
// indirect jumps follow the profiled target distribution. Branches never
// executed in the profile default to not-taken.
func (pf *Profile) Model(prog *ir.Program) trace.Model {
	return &profileModel{prog: prog, prof: pf}
}

type profileModel struct {
	prog *ir.Program
	prof *Profile
}

// TakenProb implements trace.Model.
func (m *profileModel) TakenProb(procIdx int, block ir.BlockID) float64 {
	pp, ok := m.prof.Procs[m.prog.Procs[procIdx].Name]
	if !ok {
		return 0
	}
	return pp.Branches[block].TakenProb()
}

// IJumpWeights implements trace.Model.
func (m *profileModel) IJumpWeights(procIdx int, block ir.BlockID) []float64 {
	p := m.prog.Procs[procIdx]
	pp, ok := m.prof.Procs[p.Name]
	if !ok {
		return nil
	}
	term, ok := p.Blocks[block].Terminator()
	if !ok || term.Kind() != ir.IJump {
		return nil
	}
	out := make([]float64, len(term.Targets))
	any := false
	for i, t := range term.Targets {
		w := pp.Edges[Edge{block, t}]
		out[i] = float64(w)
		if w > 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// WriteTo serializes the profile in a stable line-oriented text format.
func (pf *Profile) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(m int, err error) error {
		n += int64(m)
		return err
	}
	if err := count(fmt.Fprintf(bw, "program %s\ninstrs %d\n", pf.Program, pf.Instrs)); err != nil {
		return n, err
	}
	names := make([]string, 0, len(pf.Procs))
	for name := range pf.Procs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pp := pf.Procs[name]
		if err := count(fmt.Fprintf(bw, "proc %s\n", name)); err != nil {
			return n, err
		}
		// entry records only appear when nonzero, so profiles written before
		// entry counts existed round-trip byte-identically.
		if pp.EntryCount > 0 {
			if err := count(fmt.Fprintf(bw, "entry %d\n", pp.EntryCount)); err != nil {
				return n, err
			}
		}
		edges := make([]Edge, 0, len(pp.Edges))
		for e := range pp.Edges {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		for _, e := range edges {
			if err := count(fmt.Fprintf(bw, "edge %d %d %d\n", e.From, e.To, pp.Edges[e])); err != nil {
				return n, err
			}
		}
		blocks := make([]ir.BlockID, 0, len(pp.Branches))
		for b := range pp.Branches {
			blocks = append(blocks, b)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, b := range blocks {
			c := pp.Branches[b]
			if err := count(fmt.Fprintf(bw, "branch %d %d %d\n", b, c.Taken, c.Fall)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// Read parses a profile previously written by WriteTo.
func Read(r io.Reader) (*Profile, error) {
	pf := New("")
	var cur *ProcProfile
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		bad := func(msg string) error {
			return fmt.Errorf("profile: line %d: %s: %q", line, msg, sc.Text())
		}
		switch fields[0] {
		case "program":
			if len(fields) == 2 {
				pf.Program = fields[1]
			}
		case "instrs":
			if len(fields) != 2 {
				return nil, bad("instrs takes one value")
			}
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, bad("bad instruction count")
			}
			pf.Instrs = v
		case "proc":
			if len(fields) != 2 {
				return nil, bad("proc takes one name")
			}
			cur = pf.Proc(fields[1])
		case "entry":
			if cur == nil {
				return nil, bad("entry before proc")
			}
			if len(fields) != 2 {
				return nil, bad("entry takes one count")
			}
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, bad("bad entry count")
			}
			cur.EntryCount += v
		case "edge":
			if cur == nil {
				return nil, bad("edge before proc")
			}
			if len(fields) != 4 {
				return nil, bad("edge takes from to weight")
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseUint(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, bad("bad edge numbers")
			}
			cur.Edges[Edge{ir.BlockID(from), ir.BlockID(to)}] += w
		case "branch":
			if cur == nil {
				return nil, bad("branch before proc")
			}
			if len(fields) != 4 {
				return nil, bad("branch takes block taken fall")
			}
			b, err1 := strconv.Atoi(fields[1])
			taken, err2 := strconv.ParseUint(fields[2], 10, 64)
			fall, err3 := strconv.ParseUint(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, bad("bad branch numbers")
			}
			cc := cur.Branches[ir.BlockID(b)]
			cc.Taken += taken
			cc.Fall += fall
			cur.Branches[ir.BlockID(b)] = cc
		default:
			return nil, bad("unknown record")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	return pf, nil
}
