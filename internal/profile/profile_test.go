package profile

import (
	"bytes"
	"strings"
	"testing"

	"balign/internal/ir"
	"balign/internal/trace"
)

func TestBranchCount(t *testing.T) {
	b := BranchCount{Taken: 3, Fall: 1}
	if b.Total() != 4 {
		t.Errorf("Total = %d, want 4", b.Total())
	}
	if got := b.TakenProb(); got != 0.75 {
		t.Errorf("TakenProb = %v, want 0.75", got)
	}
	var zero BranchCount
	if zero.TakenProb() != 0 {
		t.Errorf("zero TakenProb = %v, want 0", zero.TakenProb())
	}
}

func TestProfileMergeAndScale(t *testing.T) {
	a := New("p")
	a.Instrs = 100
	a.Proc("main").Edges[Edge{0, 1}] = 10
	a.Proc("main").Branches[0] = BranchCount{Taken: 7, Fall: 3}

	b := New("p")
	b.Instrs = 50
	b.Proc("main").Edges[Edge{0, 1}] = 5
	b.Proc("main").Edges[Edge{1, 2}] = 1
	b.Proc("f").Edges[Edge{0, 0}] = 2

	a.Merge(b)
	if a.Instrs != 150 {
		t.Errorf("Instrs = %d, want 150", a.Instrs)
	}
	if w := a.Proc("main").Weight(0, 1); w != 15 {
		t.Errorf("Weight(0,1) = %d, want 15", w)
	}
	if w := a.Proc("f").Weight(0, 0); w != 2 {
		t.Errorf("f Weight(0,0) = %d, want 2", w)
	}

	a.Scale(1, 2)
	if a.Instrs != 75 {
		t.Errorf("scaled Instrs = %d, want 75", a.Instrs)
	}
	if w := a.Proc("main").Weight(1, 2); w != 1 {
		t.Errorf("scaled Weight(1,2) = %d, want 1 (never scale nonzero to zero)", w)
	}
	if c := a.Proc("main").Branches[0]; c.Taken != 3 || c.Fall != 1 {
		t.Errorf("scaled branch = %+v, want {3 1}", c)
	}
}

func TestBlockWeight(t *testing.T) {
	p := NewProcProfile()
	p.Edges[Edge{0, 2}] = 5
	p.Edges[Edge{1, 2}] = 7
	p.Edges[Edge{2, 0}] = 1
	if w := p.BlockWeight(2); w != 12 {
		t.Errorf("BlockWeight(2) = %d, want 12", w)
	}
}

func smallProgram() *ir.Program {
	p := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpLi, Rd: 1, Imm: 3}}},
		{Instrs: []ir.Instr{
			{Op: ir.OpAddi, Rd: 1, Rs: 1, Imm: -1},
			{Op: ir.OpBnez, Rd: 1, TargetBlock: 1},
		}},
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "small", Procs: []*ir.Proc{p}, MemWords: 4}
	prog.AssignAddresses(0x1000)
	return prog
}

func TestCollectorViaWalker(t *testing.T) {
	prog := smallProgram()
	col := NewCollector(prog)
	w := &trace.Walker{Prog: prog, Model: trace.UniformModel{P: 0.5}, Seed: 9, MaxInstrs: 10_000}
	instrs, _ := w.Run(nil, col)
	pf := col.Profile()
	if pf.Instrs != instrs {
		t.Errorf("profile instrs = %d, walker reported %d", pf.Instrs, instrs)
	}
	pp := pf.Procs["main"]
	if pp == nil {
		t.Fatal("no main profile")
	}
	bc := pp.Branches[1]
	if bc.Total() == 0 {
		t.Fatal("branch never recorded")
	}
	if pp.Weight(1, 1) != bc.Taken {
		t.Errorf("taken edge weight %d != taken count %d", pp.Weight(1, 1), bc.Taken)
	}
	if pp.Weight(1, 2) != bc.Fall {
		t.Errorf("fall edge weight %d != fall count %d", pp.Weight(1, 2), bc.Fall)
	}
	if pp.Weight(0, 1) == 0 {
		t.Error("fall-through edge 0->1 not recorded")
	}
}

func TestProfileModelReproducesBehaviour(t *testing.T) {
	prog := smallProgram()
	// Collect a profile with a strongly biased model, then walk again with
	// the profile-derived model and check the bias is reproduced.
	col := NewCollector(prog)
	w := &trace.Walker{Prog: prog, Model: trace.UniformModel{P: 0.9}, Seed: 11, MaxInstrs: 100_000}
	w.Run(nil, col)

	model := col.Profile().Model(prog)
	if p := model.TakenProb(0, 1); p < 0.87 || p > 0.93 {
		t.Errorf("profile model TakenProb = %.3f, want ~0.9", p)
	}

	col2 := NewCollector(prog)
	w2 := &trace.Walker{Prog: prog, Model: model, Seed: 12, MaxInstrs: 100_000}
	w2.Run(nil, col2)
	bc := col2.Profile().Procs["main"].Branches[1]
	rate := bc.TakenProb()
	if rate < 0.85 || rate > 0.95 {
		t.Errorf("re-walked taken rate = %.3f, want ~0.9", rate)
	}
}

func TestProfileModelIJumpWeights(t *testing.T) {
	p := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpIJump, Rd: 1, Targets: []ir.BlockID{1, 2}}}},
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "ij", Procs: []*ir.Proc{p}}
	prog.AssignAddresses(0x1000)
	pf := New("ij")
	pf.Proc("main").Edges[Edge{0, 1}] = 30
	pf.Proc("main").Edges[Edge{0, 2}] = 70
	m := pf.Model(prog)
	w := m.IJumpWeights(0, 0)
	if len(w) != 2 || w[0] != 30 || w[1] != 70 {
		t.Errorf("IJumpWeights = %v, want [30 70]", w)
	}
	// Unknown proc -> nil.
	if m.IJumpWeights(0, 1) != nil {
		t.Error("IJumpWeights for non-ijump block should be nil")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	pf := New("prog")
	pf.Instrs = 12345
	pf.Proc("main").Edges[Edge{0, 1}] = 10
	pf.Proc("main").Edges[Edge{1, 1}] = 99
	pf.Proc("main").Branches[1] = BranchCount{Taken: 99, Fall: 10}
	pf.Proc("zeta").Edges[Edge{2, 0}] = 1

	var buf bytes.Buffer
	if _, err := pf.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Program != "prog" || got.Instrs != 12345 {
		t.Errorf("header = %q/%d", got.Program, got.Instrs)
	}
	if w := got.Proc("main").Weight(1, 1); w != 99 {
		t.Errorf("Weight(1,1) = %d, want 99", w)
	}
	if c := got.Proc("main").Branches[1]; c != (BranchCount{Taken: 99, Fall: 10}) {
		t.Errorf("branch = %+v", c)
	}
	if w := got.Proc("zeta").Weight(2, 0); w != 1 {
		t.Errorf("zeta weight = %d, want 1", w)
	}

	// Output must be stable (sorted).
	var buf2 bytes.Buffer
	if _, err := got.WriteTo(&buf2); err != nil {
		t.Fatalf("WriteTo 2: %v", err)
	}
	second := buf2.String()
	var buf3 bytes.Buffer
	pf2, _ := Read(&buf2)
	if _, err := pf2.WriteTo(&buf3); err != nil {
		t.Fatalf("WriteTo 3: %v", err)
	}
	if second != buf3.String() {
		t.Error("serialization not stable across round trips")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"edge before proc", "edge 0 1 5\n", "edge before proc"},
		{"branch before proc", "branch 0 1 2\n", "branch before proc"},
		{"bad edge", "proc m\nedge a b c\n", "bad edge"},
		{"bad branch", "proc m\nbranch x 1 2\n", "bad branch"},
		{"unknown record", "wibble\n", "unknown record"},
		{"bad instrs", "instrs lots\n", "bad instruction count"},
		{"edge arity", "proc m\nedge 1 2\n", "edge takes"},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestTotalEdgeWeight(t *testing.T) {
	pf := New("x")
	pf.Proc("a").Edges[Edge{0, 1}] = 3
	pf.Proc("b").Edges[Edge{0, 1}] = 4
	if w := pf.TotalEdgeWeight(); w != 7 {
		t.Errorf("TotalEdgeWeight = %d, want 7", w)
	}
}
