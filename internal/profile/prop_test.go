package profile

import (
	"bytes"
	"testing"
	"testing/quick"

	"balign/internal/ir"
)

// buildProfile constructs a profile from generated raw data.
func buildProfile(edges []uint16, weights []uint16) *Profile {
	pf := New("q")
	pp := pf.Proc("main")
	for i, e := range edges {
		w := uint64(1)
		if len(weights) > 0 {
			w = uint64(weights[i%len(weights)])%1000 + 1
		}
		from := ir.BlockID(e % 31)
		to := ir.BlockID((e / 31) % 31)
		pp.Edges[Edge{From: from, To: to}] += w
		pf.Instrs += w
	}
	return pf
}

func TestMergeIsCommutativeProperty(t *testing.T) {
	f := func(ea, eb []uint16, wa, wb []uint16) bool {
		a1 := buildProfile(ea, wa)
		b1 := buildProfile(eb, wb)
		a2 := buildProfile(ea, wa)
		b2 := buildProfile(eb, wb)

		a1.Merge(b1) // a + b
		b2.Merge(a2) // b + a

		if a1.Instrs != b2.Instrs {
			return false
		}
		pa, pb := a1.Procs["main"], b2.Procs["main"]
		if (pa == nil) != (pb == nil) {
			return false
		}
		if pa == nil {
			return true
		}
		if len(pa.Edges) != len(pb.Edges) {
			return false
		}
		for e, w := range pa.Edges {
			if pb.Edges[e] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScaleNeverZeroesProperty(t *testing.T) {
	f := func(edges []uint16, weights []uint16, num, den uint8) bool {
		pf := buildProfile(edges, weights)
		n := uint64(num)%8 + 1
		d := uint64(den)%64 + 1
		before := len(pf.Procs["main"].Edges)
		pf.Scale(n, d)
		pp := pf.Procs["main"]
		if len(pp.Edges) != before {
			return false
		}
		for _, w := range pp.Edges {
			if w == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSerializationRoundTripProperty(t *testing.T) {
	f := func(edges []uint16, weights []uint16) bool {
		pf := buildProfile(edges, weights)
		var buf bytes.Buffer
		if _, err := pf.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Instrs != pf.Instrs {
			return false
		}
		for name, pp := range pf.Procs {
			gp := got.Procs[name]
			if gp == nil {
				return len(pp.Edges) == 0 && len(pp.Branches) == 0
			}
			for e, w := range pp.Edges {
				if gp.Edges[e] != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
