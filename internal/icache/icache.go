// Package icache models an instruction cache fed by the control-transfer
// event stream. The paper frames branch alignment as a branch-cost
// optimization, but its prior work (McFarling, Hwu & Chang, Pettis &
// Hansen) motivated the same reordering by instruction-cache locality, and
// the paper remarks that alignment "may also improve" cache behaviour; this
// package lets the experiments measure that side effect.
//
// The simulator reconstructs the full instruction fetch stream from break
// events alone: between one event's destination and the next event's site,
// fetch proceeds sequentially, so every line in between is touched exactly
// once per traversal.
package icache

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/trace"
)

// Config is the cache geometry.
type Config struct {
	// LineBytes is the cache line size in bytes (power of two).
	LineBytes int
	// Sets and Ways define the organization; Sets must be a power of two.
	Sets int
	Ways int
}

// DefaultConfig returns an 8 KB 2-way cache with 32-byte lines, matching
// the class of machine the paper evaluated on (the 21064 had an 8 KB
// I-cache).
func DefaultConfig() Config {
	return Config{LineBytes: 32, Sets: 128, Ways: 2}
}

type line struct {
	valid bool
	tag   uint64
	lru   uint64
}

// Sim is a trace.Sink that simulates the instruction cache.
type Sim struct {
	cfg   Config
	lines []line
	tick  uint64

	cur     uint64 // next sequential fetch address
	started bool

	// Fetches counts instruction fetches; Accesses counts line probes
	// (one per distinct line touched per traversal); Misses counts probe
	// misses.
	Fetches  uint64
	Accesses uint64
	Misses   uint64
}

// New returns a simulator with the given geometry.
func New(cfg Config) *Sim {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("icache: line size %d not a power of two", cfg.LineBytes))
	}
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("icache: set count %d not a power of two", cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic("icache: ways must be positive")
	}
	return &Sim{cfg: cfg, lines: make([]line, cfg.Sets*cfg.Ways)}
}

// SizeBytes returns the cache capacity.
func (s *Sim) SizeBytes() int { return s.cfg.LineBytes * s.cfg.Sets * s.cfg.Ways }

func (s *Sim) access(lineAddr uint64) {
	s.tick++
	s.Accesses++
	set := int(lineAddr % uint64(s.cfg.Sets))
	ways := s.lines[set*s.cfg.Ways : (set+1)*s.cfg.Ways]
	victim := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == lineAddr {
			ways[i].lru = s.tick
			return
		}
		if !ways[i].valid {
			victim = i
		} else if ways[victim].valid && ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	s.Misses++
	ways[victim] = line{valid: true, tag: lineAddr, lru: s.tick}
}

// fetchRange simulates sequential fetch of [from, to] inclusive.
func (s *Sim) fetchRange(from, to uint64) {
	if to < from {
		return
	}
	s.Fetches += (to-from)/ir.InstrBytes + 1
	lb := uint64(s.cfg.LineBytes)
	for l := from / lb; l <= to/lb; l++ {
		s.access(l)
	}
}

// Event implements trace.Sink.
func (s *Sim) Event(ev trace.Event) {
	if !s.started {
		s.cur = ev.PC
		s.started = true
	}
	if ev.PC >= s.cur {
		s.fetchRange(s.cur, ev.PC)
	} else {
		// Out-of-order site (a new walk segment): fetch just the site.
		s.fetchRange(ev.PC, ev.PC)
	}
	if ev.Kind == ir.CondBr && !ev.Taken {
		s.cur = ev.Fall
	} else {
		s.cur = ev.Target
	}
}

// MissRate returns misses per line probe.
func (s *Sim) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MPKI returns misses per thousand fetched instructions, the standard
// I-cache metric.
func (s *Sim) MPKI() float64 {
	if s.Fetches == 0 {
		return 0
	}
	return 1000 * float64(s.Misses) / float64(s.Fetches)
}

// Reset clears the cache and counters.
func (s *Sim) Reset() {
	for i := range s.lines {
		s.lines[i] = line{}
	}
	s.tick, s.Fetches, s.Accesses, s.Misses = 0, 0, 0, 0
	s.started = false
}
