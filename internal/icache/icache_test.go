package icache

import (
	"testing"

	"balign/internal/ir"
	"balign/internal/trace"
)

func TestSequentialFetchTouchesEachLineOnce(t *testing.T) {
	s := New(Config{LineBytes: 32, Sets: 8, Ways: 1})
	// One event 64 instructions (256 bytes, 8 lines) past the start.
	s.Event(trace.Event{PC: 0x1000, Kind: ir.Br, Taken: true, Target: 0x2000, Fall: 0x1004})
	s.Event(trace.Event{PC: 0x2000 + 63*4, Kind: ir.Br, Taken: true, Target: 0x1000, Fall: 0x2000 + 64*4})
	// First event: fetch just 0x1000 (1 line). Second: 0x2000..0x20fc = 8 lines.
	if s.Accesses != 1+8 {
		t.Errorf("Accesses = %d, want 9", s.Accesses)
	}
	if s.Fetches != 1+64 {
		t.Errorf("Fetches = %d, want 65", s.Fetches)
	}
}

func TestHitsAfterWarmup(t *testing.T) {
	s := New(Config{LineBytes: 32, Sets: 8, Ways: 2})
	ev := trace.Event{PC: 0x1000, Kind: ir.Br, Taken: true, Target: 0x1000, Fall: 0x1004}
	for i := 0; i < 10; i++ {
		s.Event(ev)
	}
	if s.Misses != 1 {
		t.Errorf("Misses = %d, want 1 (cold miss only)", s.Misses)
	}
	if s.MissRate() >= 0.2 {
		t.Errorf("MissRate = %v, want small", s.MissRate())
	}
}

func TestConflictMisses(t *testing.T) {
	// Direct-mapped, 4 sets of 32B: addresses 0 and 4*32 alias.
	s := New(Config{LineBytes: 32, Sets: 4, Ways: 1})
	a := trace.Event{PC: 0x0, Kind: ir.Br, Taken: true, Target: 0x80, Fall: 0x4}
	b := trace.Event{PC: 0x80, Kind: ir.Br, Taken: true, Target: 0x0, Fall: 0x84}
	for i := 0; i < 10; i++ {
		s.Event(a)
		s.Event(b)
	}
	if s.Misses < 18 {
		t.Errorf("Misses = %d, want thrashing (~20)", s.Misses)
	}
}

func TestNotTakenFollowsFall(t *testing.T) {
	s := New(DefaultConfig())
	s.Event(trace.Event{PC: 0x1000, Kind: ir.CondBr, Taken: false, Target: 0x8000, Fall: 0x1004})
	s.Event(trace.Event{PC: 0x1010, Kind: ir.CondBr, Taken: true, Target: 0x8000, Fall: 0x1014})
	// The second event's sequential fetch must start at the first's fall
	// address (0x1004), not its taken target.
	if s.Fetches != 1+4 {
		t.Errorf("Fetches = %d, want 5 (0x1000, then 0x1004..0x1010)", s.Fetches)
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, cfg := range []Config{
		{LineBytes: 24, Sets: 8, Ways: 1},
		{LineBytes: 32, Sets: 7, Ways: 1},
		{LineBytes: 32, Sets: 8, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestResetAndMetrics(t *testing.T) {
	s := New(DefaultConfig())
	if s.SizeBytes() != 32*128*2 {
		t.Errorf("SizeBytes = %d", s.SizeBytes())
	}
	s.Event(trace.Event{PC: 0x1000, Kind: ir.Br, Taken: true, Target: 0x2000, Fall: 0x1004})
	if s.MPKI() == 0 {
		t.Error("MPKI should be nonzero after a cold miss")
	}
	s.Reset()
	if s.Fetches != 0 || s.Misses != 0 || s.MissRate() != 0 || s.MPKI() != 0 {
		t.Error("Reset did not clear counters")
	}
}
