package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindOf(t *testing.T) {
	cases := []struct {
		op   Opcode
		want Kind
	}{
		{OpAdd, Op}, {OpLi, Op}, {OpLd, Op}, {OpSt, Op}, {OpNop, Op},
		{OpBeq, CondBr}, {OpBne, CondBr}, {OpBlt, CondBr}, {OpBgez, CondBr},
		{OpBr, Br}, {OpCall, Call}, {OpIJump, IJump}, {OpRet, Ret}, {OpHalt, Halt},
	}
	for _, c := range cases {
		if got := KindOf(c.op); got != c.want {
			t.Errorf("KindOf(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if Op.IsBreak() {
		t.Error("Op.IsBreak() = true, want false")
	}
	for _, k := range []Kind{CondBr, Br, Call, IJump, Ret, Halt} {
		if !k.IsBreak() {
			t.Errorf("%v.IsBreak() = false, want true", k)
		}
	}
	for _, k := range []Kind{CondBr, Br, IJump, Ret, Halt} {
		if !k.EndsBlock() {
			t.Errorf("%v.EndsBlock() = false, want true", k)
		}
	}
	for _, k := range []Kind{Op, Call} {
		if k.EndsBlock() {
			t.Errorf("%v.EndsBlock() = true, want false", k)
		}
	}
}

func TestInvertBranchIsInvolution(t *testing.T) {
	conds := []Opcode{OpBeq, OpBne, OpBlt, OpBle, OpBgt, OpBge, OpBeqz, OpBnez, OpBltz, OpBgez}
	for _, op := range conds {
		inv := InvertBranch(op)
		if KindOf(inv) != CondBr {
			t.Errorf("InvertBranch(%v) = %v, not a conditional", op, inv)
		}
		if back := InvertBranch(inv); back != op {
			t.Errorf("InvertBranch(InvertBranch(%v)) = %v, want %v", op, back, op)
		}
		if inv == op {
			t.Errorf("InvertBranch(%v) = itself", op)
		}
	}
}

func TestInvertBranchPanicsOnNonConditional(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("InvertBranch(OpAdd) did not panic")
		}
	}()
	InvertBranch(OpAdd)
}

// twoBlockProc builds: b0: li; beq -> b1 ; b1: halt.
func twoBlockProc() *Proc {
	return &Proc{
		Name: "main",
		Blocks: []*Block{
			{Orig: 0, Instrs: []Instr{
				{Op: OpLi, Rd: 1, Imm: 5},
				{Op: OpBeq, Rd: 1, Rs: 1, TargetBlock: 1},
			}},
			{Orig: 1, Instrs: []Instr{{Op: OpHalt}}},
		},
	}
}

func TestTerminatorAndFallsThrough(t *testing.T) {
	p := twoBlockProc()
	term, ok := p.Blocks[0].Terminator()
	if !ok || term.Op != OpBeq {
		t.Fatalf("Terminator(b0) = %v, %v; want beq, true", term, ok)
	}
	if !p.Blocks[0].FallsThrough() {
		t.Error("block ending in CondBr should fall through")
	}
	if p.Blocks[1].FallsThrough() {
		t.Error("block ending in halt should not fall through")
	}
	empty := &Block{}
	if _, ok := empty.Terminator(); ok {
		t.Error("empty block reported a terminator")
	}
	if !empty.FallsThrough() {
		t.Error("empty block should fall through")
	}
}

func TestProgramValidateOK(t *testing.T) {
	prog := &Program{Name: "t", Procs: []*Proc{twoBlockProc()}}
	if err := prog.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestProgramValidateErrors(t *testing.T) {
	mk := func(mut func(*Program)) *Program {
		prog := &Program{Name: "t", Procs: []*Proc{twoBlockProc()}}
		mut(prog)
		return prog
	}
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{"bad entry proc", mk(func(p *Program) { p.EntryProc = 3 }), "entry proc"},
		{"branch target out of range", mk(func(p *Program) {
			p.Procs[0].Blocks[0].Instrs[1].TargetBlock = 9
		}), "out of range"},
		{"terminator mid-block", mk(func(p *Program) {
			b := p.Procs[0].Blocks[0]
			b.Instrs = []Instr{{Op: OpRet}, {Op: OpLi, Rd: 1}}
		}), "not last"},
		{"last block falls through", mk(func(p *Program) {
			p.Procs[0].Blocks[1].Instrs = []Instr{{Op: OpLi, Rd: 1}}
		}), "falls through"},
		{"call target out of range", mk(func(p *Program) {
			b := p.Procs[0].Blocks[0]
			b.Instrs = append([]Instr{{Op: OpCall, TargetProc: 7}}, b.Instrs...)
		}), "call target"},
		{"ijump no targets", mk(func(p *Program) {
			p.Procs[0].Blocks[0].Instrs[1] = Instr{Op: OpIJump, Rd: 1}
		}), "no targets"},
		{"empty proc", mk(func(p *Program) {
			p.Procs = append(p.Procs, &Proc{Name: "empty"})
		}), "no blocks"},
	}
	for _, c := range cases {
		err := c.prog.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %q, want substring %q", c.name, err, c.want)
		}
	}
}

func TestAssignAddressesAndBlockAt(t *testing.T) {
	prog := &Program{Procs: []*Proc{twoBlockProc(), {
		Name:   "f",
		Blocks: []*Block{{Instrs: []Instr{{Op: OpRet}}}},
	}}}
	end := prog.AssignAddresses(0x1000)
	wantEnd := uint64(0x1000 + 4*InstrBytes)
	if end != wantEnd {
		t.Fatalf("AssignAddresses end = %#x, want %#x", end, wantEnd)
	}
	if got := prog.Procs[0].Blocks[1].Addr; got != 0x1000+2*InstrBytes {
		t.Errorf("b1 addr = %#x, want %#x", got, 0x1000+2*InstrBytes)
	}
	if got := prog.Procs[1].Blocks[0].Addr; got != 0x1000+3*InstrBytes {
		t.Errorf("f.b0 addr = %#x, want %#x", got, 0x1000+3*InstrBytes)
	}

	cases := []struct {
		addr  uint64
		wantP int
		wantB BlockID
	}{
		{0x1000, 0, 0},
		{0x1000 + InstrBytes, 0, 0},
		{0x1000 + 2*InstrBytes, 0, 1},
		{0x1000 + 3*InstrBytes, 1, 0},
	}
	for _, c := range cases {
		p, b := prog.BlockAt(c.addr)
		if p != c.wantP || b != c.wantB {
			t.Errorf("BlockAt(%#x) = (%d, %d), want (%d, %d)", c.addr, p, b, c.wantP, c.wantB)
		}
	}
	if p, b := prog.BlockAt(0x500); p != -1 || b != NoBlock {
		t.Errorf("BlockAt(below) = (%d, %d), want (-1, NoBlock)", p, b)
	}
	if p, b := prog.BlockAt(wantEnd); p != -1 || b != NoBlock {
		t.Errorf("BlockAt(past end) = (%d, %d), want (-1, NoBlock)", p, b)
	}
}

func TestTermAddr(t *testing.T) {
	p := twoBlockProc()
	prog := &Program{Procs: []*Proc{p}}
	prog.AssignAddresses(0)
	if got, want := p.Blocks[0].TermAddr(), uint64(InstrBytes); got != want {
		t.Errorf("TermAddr(b0) = %d, want %d", got, want)
	}
}

func TestOutEdgesClassification(t *testing.T) {
	// b0: condbr->b2 (taken) + fall->b1; b1: br->b0; b2: ijump [b3, b2]; b3: ret
	p := &Proc{Name: "p", Blocks: []*Block{
		{Instrs: []Instr{{Op: OpBnez, Rd: 1, TargetBlock: 2}}},
		{Instrs: []Instr{{Op: OpBr, TargetBlock: 0}}},
		{Instrs: []Instr{{Op: OpIJump, Rd: 2, Targets: []BlockID{3, 2}}}},
		{Instrs: []Instr{{Op: OpRet}}},
	}}
	edges := p.Edges()
	want := []Edge{
		{0, 2, EdgeTaken}, {0, 1, EdgeFall},
		{1, 0, EdgeUncond},
		{2, 3, EdgeIndirect}, {2, 2, EdgeIndirect},
	}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge[%d] = %v, want %v", i, edges[i], want[i])
		}
	}

	preds := p.Preds()
	if len(preds[0]) != 1 || preds[0][0] != 1 {
		t.Errorf("preds[0] = %v, want [1]", preds[0])
	}
	if len(preds[2]) != 2 {
		t.Errorf("preds[2] = %v, want two entries", preds[2])
	}
}

func TestReachable(t *testing.T) {
	// b0 -> b1 -> halt; b2 unreachable.
	p := &Proc{Name: "p", Blocks: []*Block{
		{Instrs: []Instr{{Op: OpBr, TargetBlock: 1}}},
		{Instrs: []Instr{{Op: OpHalt}}},
		{Instrs: []Instr{{Op: OpRet}}},
	}}
	r := p.Reachable()
	if !r[0] || !r[1] {
		t.Errorf("Reachable = %v, blocks 0 and 1 should be reachable", r)
	}
	if r[2] {
		t.Errorf("Reachable = %v, block 2 should be unreachable", r)
	}
}

func TestCloneIsDeep(t *testing.T) {
	prog := &Program{Name: "t", MemWords: 8, Procs: []*Proc{twoBlockProc()}}
	prog.Procs[0].Blocks[0].Instrs[1] = Instr{Op: OpIJump, Rd: 1, Targets: []BlockID{1}}
	cl := prog.Clone()
	cl.Procs[0].Blocks[0].Instrs[1].Targets[0] = 0
	cl.Procs[0].Blocks[0].Instrs[0].Imm = 99
	if prog.Procs[0].Blocks[0].Instrs[1].Targets[0] != 1 {
		t.Error("Clone shares IJump target slice with original")
	}
	if prog.Procs[0].Blocks[0].Instrs[0].Imm != 5 {
		t.Error("Clone shares instruction storage with original")
	}
}

func TestProcByName(t *testing.T) {
	prog := &Program{Procs: []*Proc{{Name: "a", Blocks: []*Block{{Instrs: []Instr{{Op: OpRet}}}}},
		{Name: "b", Blocks: []*Block{{Instrs: []Instr{{Op: OpRet}}}}}}}
	if i := prog.ProcByName("b"); i != 1 {
		t.Errorf("ProcByName(b) = %d, want 1", i)
	}
	if i := prog.ProcByName("zzz"); i != -1 {
		t.Errorf("ProcByName(zzz) = %d, want -1", i)
	}
	prog.Procs = append(prog.Procs, &Proc{Name: "c", Blocks: []*Block{{Instrs: []Instr{{Op: OpRet}}}}})
	prog.InvalidateIndex()
	if i := prog.ProcByName("c"); i != 2 {
		t.Errorf("ProcByName(c) after InvalidateIndex = %d, want 2", i)
	}
}

func TestFormatInstrCoverage(t *testing.T) {
	p := twoBlockProc()
	prog := &Program{Procs: []*Proc{p}}
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpLi, Rd: 3, Imm: -7}, "li r3, -7"},
		{Instr{Op: OpMov, Rd: 1, Rs: 2}, "mov r1, r2"},
		{Instr{Op: OpAdd, Rd: 1, Rs: 2, Rt: 3}, "add r1, r2, r3"},
		{Instr{Op: OpAddi, Rd: 1, Rs: 2, Imm: 4}, "addi r1, r2, 4"},
		{Instr{Op: OpLd, Rd: 1, Rs: 2, Imm: 8}, "ld r1, 8(r2)"},
		{Instr{Op: OpSt, Rd: 1, Rs: 2, Imm: 8}, "st r1, 8(r2)"},
		{Instr{Op: OpBeq, Rd: 1, Rs: 2, TargetBlock: 1}, "beq r1, r2, .b1"},
		{Instr{Op: OpBnez, Rd: 1, TargetBlock: 0}, "bnez r1, .b0"},
		{Instr{Op: OpBr, TargetBlock: 1}, "br .b1"},
		{Instr{Op: OpCall, TargetProc: 0}, "call main"},
		{Instr{Op: OpIJump, Rd: 2, Targets: []BlockID{0, 1}}, "ijump r2, [.b0, .b1]"},
		{Instr{Op: OpRet}, "ret"},
		{Instr{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := FormatInstr(prog, p, &c.in); got != c.want {
			t.Errorf("FormatInstr(%v) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestFormatProgramMentionsStructure(t *testing.T) {
	prog := &Program{Name: "t", MemWords: 16, Procs: []*Proc{twoBlockProc()}}
	s := prog.Format()
	for _, want := range []string{"mem 16", "proc main", "endproc", "halt"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format() missing %q in:\n%s", want, s)
		}
	}
}

// Property: for any generated (small) proc shape, every edge returned by
// Edges has valid endpoints and every fall edge goes to the next block.
func TestEdgesWellFormedProperty(t *testing.T) {
	f := func(seedMask uint16) bool {
		// Build a proc of 1..8 blocks whose terminators are driven by the
		// bits of seedMask.
		n := int(seedMask%8) + 1
		p := &Proc{Name: "q"}
		for i := 0; i < n; i++ {
			var term Instr
			tgt := BlockID(int(seedMask>>uint(i%13)) % n)
			switch (int(seedMask) >> uint(2*i)) % 4 {
			case 0:
				term = Instr{Op: OpBnez, Rd: 1, TargetBlock: tgt}
			case 1:
				term = Instr{Op: OpBr, TargetBlock: tgt}
			case 2:
				term = Instr{Op: OpRet}
			case 3:
				term = Instr{Op: OpIJump, Rd: 1, Targets: []BlockID{tgt}}
			}
			b := &Block{Instrs: []Instr{{Op: OpNop}, term}}
			p.Blocks = append(p.Blocks, b)
		}
		// Make the last block non-falling to satisfy Validate-style shape.
		p.Blocks[n-1].Instrs = []Instr{{Op: OpRet}}
		for _, e := range p.Edges() {
			if p.Block(e.From) == nil || p.Block(e.To) == nil {
				return false
			}
			if e.Kind == EdgeFall && e.To != e.From+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
