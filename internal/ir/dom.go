package ir

// Dominators computes the immediate dominator of every block reachable from
// the procedure entry, using the Cooper–Harvey–Kennedy iterative algorithm
// over a reverse postorder. Unreachable blocks get NoBlock. The entry block
// is its own immediate dominator.
//
// Branch alignment uses dominance to recognize loop back edges precisely: a
// CFG edge S -> T is a back edge of a natural loop exactly when T dominates
// S, which is the right criterion for the BT/FNT cost model's
// "taken-backward" question while chains are still being formed.
func (p *Proc) Dominators() []BlockID {
	n := len(p.Blocks)
	idom := make([]BlockID, n)
	for i := range idom {
		idom[i] = NoBlock
	}
	if n == 0 {
		return idom
	}

	// Reverse postorder over the CFG from the entry.
	post := make([]BlockID, 0, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		id   BlockID
		next int
	}
	var succScratch []BlockID
	succs := make([][]BlockID, n)
	for i := range succs {
		succScratch = p.Succs(BlockID(i), succScratch[:0])
		succs[i] = append([]BlockID(nil), succScratch...)
	}
	stack := []frame{{id: p.Entry()}}
	state[p.Entry()] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(succs[f.id]) {
			s := succs[f.id][f.next]
			f.next++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{id: s})
			}
			continue
		}
		state[f.id] = 2
		post = append(post, f.id)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]BlockID, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b] = i
	}

	// Predecessor lists restricted to reachable blocks.
	preds := make([][]BlockID, n)
	for _, b := range rpo {
		for _, s := range succs[b] {
			if rpoNum[s] >= 0 {
				preds[s] = append(preds[s], b)
			}
		}
	}

	intersect := func(a, b BlockID) BlockID {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	entry := p.Entry()
	idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom BlockID = NoBlock
			for _, pr := range preds[b] {
				if idom[pr] == NoBlock {
					continue
				}
				if newIdom == NoBlock {
					newIdom = pr
				} else {
					newIdom = intersect(pr, newIdom)
				}
			}
			if newIdom != NoBlock && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b given an idom array
// from Dominators. Every block dominates itself; unreachable blocks
// dominate nothing and are dominated by nothing.
func Dominates(idom []BlockID, a, b BlockID) bool {
	if int(a) >= len(idom) || int(b) >= len(idom) || idom[b] == NoBlock {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == b || next == NoBlock {
			return false
		}
		b = next
	}
}

// Loop describes one natural loop: the header block and the set of blocks
// in the loop body (including the header).
type Loop struct {
	Header BlockID
	Blocks map[BlockID]bool
}

// NaturalLoops finds the procedure's natural loops: for every back edge
// S -> H (H dominates S), the loop body is H plus all blocks that reach S
// without passing through H. Loops sharing a header are merged.
func (p *Proc) NaturalLoops() []Loop {
	idom := p.Dominators()
	byHeader := make(map[BlockID]*Loop)
	var order []BlockID

	var scratch []BlockID
	for id := range p.Blocks {
		s := BlockID(id)
		if idom[s] == NoBlock {
			continue // unreachable
		}
		scratch = p.Succs(s, scratch[:0])
		for _, h := range scratch {
			if !Dominates(idom, h, s) {
				continue
			}
			lp := byHeader[h]
			if lp == nil {
				lp = &Loop{Header: h, Blocks: map[BlockID]bool{h: true}}
				byHeader[h] = lp
				order = append(order, h)
			}
			// Walk predecessors from S back to H.
			if !lp.Blocks[s] {
				stack := []BlockID{s}
				lp.Blocks[s] = true
				preds := p.Preds()
				for len(stack) > 0 {
					b := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, pr := range preds[b] {
						if idom[pr] != NoBlock && !lp.Blocks[pr] {
							lp.Blocks[pr] = true
							stack = append(stack, pr)
						}
					}
				}
			}
		}
	}

	out := make([]Loop, 0, len(order))
	for _, h := range order {
		out = append(out, *byHeader[h])
	}
	return out
}
