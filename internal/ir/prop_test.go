package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomValidProgram builds a structurally valid random program: every
// block ends in a terminator or falls through to an existing next block,
// last blocks never fall through, targets stay in range.
func randomValidProgram(rng *rand.Rand) *Program {
	nProcs := 1 + rng.Intn(3)
	prog := &Program{Name: "rand", MemWords: 8}
	for p := 0; p < nProcs; p++ {
		proc := &Proc{Name: "p" + string(rune('a'+p))}
		nBlocks := 1 + rng.Intn(6)
		for b := 0; b < nBlocks; b++ {
			blk := &Block{Orig: BlockID(b)}
			for i := rng.Intn(4); i > 0; i-- {
				blk.Instrs = append(blk.Instrs, Instr{Op: OpAddi, Rd: 1, Rs: 1, Imm: 1})
			}
			last := b == nBlocks-1
			switch k := rng.Intn(5); {
			case k == 0 && !last:
				blk.Instrs = append(blk.Instrs, Instr{Op: OpBnez, Rd: 1,
					TargetBlock: BlockID(rng.Intn(nBlocks))})
			case k == 1:
				blk.Instrs = append(blk.Instrs, Instr{Op: OpBr,
					TargetBlock: BlockID(rng.Intn(nBlocks))})
			case k == 2:
				blk.Instrs = append(blk.Instrs, Instr{Op: OpRet})
			case k == 3 || last:
				blk.Instrs = append(blk.Instrs, Instr{Op: OpHalt})
			default:
				// fall-through block (only when not last)
			}
			proc.Blocks = append(proc.Blocks, blk)
		}
		prog.Procs = append(prog.Procs, proc)
	}
	prog.AssignAddresses(0x1000)
	return prog
}

func TestBlockAtConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomValidProgram(rng)
		if err := prog.Validate(); err != nil {
			t.Logf("generator produced invalid program: %v", err)
			return false
		}
		for pi, p := range prog.Procs {
			for bi, b := range p.Blocks {
				for ii := range b.Instrs {
					addr := b.Addr + uint64(ii)*InstrBytes
					gp, gb := prog.BlockAt(addr)
					if gp != pi || gb != BlockID(bi) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAddressesMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomValidProgram(rng)
		var last uint64
		first := true
		for _, p := range prog.Procs {
			for _, b := range p.Blocks {
				if !first && b.Addr < last {
					return false
				}
				first = false
				last = b.Addr + uint64(len(b.Instrs))*InstrBytes
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSuccsMatchEdgesProperty(t *testing.T) {
	// For every block, Succs and OutEdges must agree on the successor set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomValidProgram(rng)
		for _, p := range prog.Procs {
			var succs []BlockID
			var edges []Edge
			for id := range p.Blocks {
				succs = p.Succs(BlockID(id), succs[:0])
				edges = p.OutEdges(BlockID(id), edges[:0])
				if len(succs) != len(edges) {
					return false
				}
				for i := range succs {
					if succs[i] != edges[i].To {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCloneEqualsFormatProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomValidProgram(rng)
		return prog.Clone().Format() == prog.Format()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKindStringAll(t *testing.T) {
	for k := Op; k <= Halt; k++ {
		if s := k.String(); s == "" || s == "kind(255)" {
			t.Errorf("Kind(%d).String() = %q", k, s)
		}
	}
	if s := Kind(200).String(); s != "kind(200)" {
		t.Errorf("unknown kind string = %q", s)
	}
	if s := Opcode(250).String(); s != "opcode(250)" {
		t.Errorf("unknown opcode string = %q", s)
	}
}

func TestBlockNameUsesLabels(t *testing.T) {
	p := &Proc{Name: "p", Blocks: []*Block{
		{Label: "start", Instrs: []Instr{{Op: OpBr, TargetBlock: 1}}},
		{Instrs: []Instr{{Op: OpHalt}}},
	}}
	s := FormatProc(nil, p)
	for _, want := range []string{"start:", ".b1:", "br .b1"} {
		if !contains(s, want) {
			t.Errorf("FormatProc missing %q:\n%s", want, s)
		}
	}
	// Out-of-range references degrade gracefully.
	in := Instr{Op: OpBr, TargetBlock: 99}
	if got := FormatInstr(nil, p, &in); got != "br ?99" {
		t.Errorf("FormatInstr out of range = %q", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
