package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamondLoopProc builds:
//
//	0 entry -> 1
//	1 header: cond -> 5 (exit) / fall 2
//	2 cond -> 3 / fall 4  (diamond)
//	3 br 4? no: 3 falls to 4
//	4 br 1 (back edge)
//	5 halt
func diamondLoopProc() *Proc {
	return &Proc{Name: "d", Blocks: []*Block{
		{Instrs: []Instr{{Op: OpLi, Rd: 1, Imm: 3}}},           // 0 -> 1
		{Instrs: []Instr{{Op: OpBeqz, Rd: 1, TargetBlock: 5}}}, // 1: header
		{Instrs: []Instr{{Op: OpBnez, Rd: 2, TargetBlock: 4}}}, // 2: diamond
		{Instrs: []Instr{{Op: OpAddi, Rd: 3, Rs: 3, Imm: 1}}},  // 3 -> 4
		{Instrs: []Instr{{Op: OpBr, TargetBlock: 1}}},          // 4: back edge
		{Instrs: []Instr{{Op: OpHalt}}},                        // 5
	}}
}

func TestDominatorsDiamondLoop(t *testing.T) {
	p := diamondLoopProc()
	idom := p.Dominators()
	want := map[BlockID]BlockID{
		0: 0, // entry
		1: 0,
		2: 1,
		3: 2,
		4: 2, // join of the diamond: idom is the branch block 2
		5: 1,
	}
	for b, w := range want {
		if idom[b] != w {
			t.Errorf("idom[%d] = %d, want %d", b, idom[b], w)
		}
	}
	if !Dominates(idom, 1, 4) {
		t.Error("header 1 should dominate 4")
	}
	if Dominates(idom, 2, 5) {
		t.Error("2 should not dominate exit 5")
	}
	if !Dominates(idom, 3, 3) {
		t.Error("every block dominates itself")
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	p := &Proc{Name: "u", Blocks: []*Block{
		{Instrs: []Instr{{Op: OpHalt}}},
		{Instrs: []Instr{{Op: OpRet}}}, // unreachable
	}}
	idom := p.Dominators()
	if idom[0] != 0 {
		t.Errorf("idom[entry] = %d", idom[0])
	}
	if idom[1] != NoBlock {
		t.Errorf("idom[unreachable] = %d, want NoBlock", idom[1])
	}
	if Dominates(idom, 0, 1) || Dominates(idom, 1, 0) {
		t.Error("unreachable blocks should not participate in dominance")
	}
}

func TestNaturalLoopsDiamondLoop(t *testing.T) {
	p := diamondLoopProc()
	loops := p.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	lp := loops[0]
	if lp.Header != 1 {
		t.Errorf("header = %d, want 1", lp.Header)
	}
	for _, b := range []BlockID{1, 2, 3, 4} {
		if !lp.Blocks[b] {
			t.Errorf("block %d missing from loop body", b)
		}
	}
	for _, b := range []BlockID{0, 5} {
		if lp.Blocks[b] {
			t.Errorf("block %d wrongly in loop body", b)
		}
	}
}

func TestNaturalLoopsSelfLoop(t *testing.T) {
	p := &Proc{Name: "s", Blocks: []*Block{
		{Instrs: []Instr{{Op: OpLi, Rd: 1, Imm: 3}}},
		{Instrs: []Instr{{Op: OpBnez, Rd: 1, TargetBlock: 1}}},
		{Instrs: []Instr{{Op: OpHalt}}},
	}}
	loops := p.NaturalLoops()
	if len(loops) != 1 || loops[0].Header != 1 {
		t.Fatalf("loops = %+v, want one self loop at 1", loops)
	}
	if len(loops[0].Blocks) != 1 || !loops[0].Blocks[1] {
		t.Errorf("self-loop body = %v, want {1}", loops[0].Blocks)
	}
}

func TestNestedLoops(t *testing.T) {
	// 0 -> 1 (outer header cond->4) -> 2 (inner header cond->1? ...)
	// outer: 1..3, inner: 2 self.
	p := &Proc{Name: "n", Blocks: []*Block{
		{Instrs: []Instr{{Op: OpLi, Rd: 1, Imm: 1}}},           // 0
		{Instrs: []Instr{{Op: OpBeqz, Rd: 1, TargetBlock: 4}}}, // 1: outer header
		{Instrs: []Instr{{Op: OpBnez, Rd: 2, TargetBlock: 2}}}, // 2: inner self loop
		{Instrs: []Instr{{Op: OpBr, TargetBlock: 1}}},          // 3: outer back edge
		{Instrs: []Instr{{Op: OpHalt}}},                        // 4
	}}
	loops := p.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2 (outer + inner)", len(loops))
	}
	var outer, inner *Loop
	for i := range loops {
		switch loops[i].Header {
		case 1:
			outer = &loops[i]
		case 2:
			inner = &loops[i]
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("headers = %v", loops)
	}
	if !outer.Blocks[2] || !outer.Blocks[3] {
		t.Errorf("outer loop body %v should contain 2 and 3", outer.Blocks)
	}
	if len(inner.Blocks) != 1 {
		t.Errorf("inner loop body %v should be just the self block", inner.Blocks)
	}
}

// Property: dominance is reflexive and transitive through idom chains, and
// the entry dominates every reachable block.
func TestDominatorsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomValidProgram(rng)
		for _, p := range prog.Procs {
			idom := p.Dominators()
			reach := p.Reachable()
			for id := range p.Blocks {
				b := BlockID(id)
				if !reach[b] {
					if idom[b] != NoBlock {
						return false
					}
					continue
				}
				if !Dominates(idom, p.Entry(), b) {
					return false
				}
				if !Dominates(idom, b, b) {
					return false
				}
				// idom[b] must dominate b and be reachable.
				if b != p.Entry() && !Dominates(idom, idom[b], b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: every natural loop's blocks are dominated by its header, and
// every back edge source is in the loop of its header.
func TestNaturalLoopsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomValidProgram(rng)
		for _, p := range prog.Procs {
			idom := p.Dominators()
			for _, lp := range p.NaturalLoops() {
				for b := range lp.Blocks {
					if !Dominates(idom, lp.Header, b) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
