package ir

// EdgeKind classifies an intraprocedural CFG edge by how control traverses
// it: as the fall-through path, the taken path of a conditional branch, the
// target of an unconditional branch, or one arm of an indirect jump.
type EdgeKind uint8

const (
	// EdgeFall is the not-taken path of a conditional branch or the
	// implicit continuation of a block with no terminator.
	EdgeFall EdgeKind = iota
	// EdgeTaken is the taken path of a conditional branch.
	EdgeTaken
	// EdgeUncond is the target of an unconditional branch.
	EdgeUncond
	// EdgeIndirect is one possible arm of an indirect jump.
	EdgeIndirect
)

// String returns a short name for the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeFall:
		return "fall"
	case EdgeTaken:
		return "taken"
	case EdgeUncond:
		return "uncond"
	case EdgeIndirect:
		return "indirect"
	default:
		return "edge?"
	}
}

// Edge is a directed intraprocedural CFG edge.
type Edge struct {
	From BlockID
	To   BlockID
	Kind EdgeKind
}

// OutEdges appends the classified outgoing edges of block id to dst and
// returns it. Edge order is deterministic: taken/uncond/indirect edges
// first, fall-through last.
func (p *Proc) OutEdges(id BlockID, dst []Edge) []Edge {
	b := p.Block(id)
	if b == nil {
		return dst
	}
	if t, ok := b.Terminator(); ok {
		switch t.Kind() {
		case CondBr:
			dst = append(dst, Edge{From: id, To: t.TargetBlock, Kind: EdgeTaken})
		case Br:
			return append(dst, Edge{From: id, To: t.TargetBlock, Kind: EdgeUncond})
		case IJump:
			for _, tgt := range t.Targets {
				dst = append(dst, Edge{From: id, To: tgt, Kind: EdgeIndirect})
			}
			return dst
		case Ret, Halt:
			return dst
		}
	}
	if f := p.FallSucc(id); f != NoBlock {
		dst = append(dst, Edge{From: id, To: f, Kind: EdgeFall})
	}
	return dst
}

// Edges returns all classified intraprocedural edges of the procedure in
// deterministic order.
func (p *Proc) Edges() []Edge {
	var out []Edge
	for id := range p.Blocks {
		out = p.OutEdges(BlockID(id), out)
	}
	return out
}

// Preds returns, for each block, the list of predecessor block IDs, indexed
// by BlockID.
func (p *Proc) Preds() [][]BlockID {
	preds := make([][]BlockID, len(p.Blocks))
	var scratch []Edge
	for id := range p.Blocks {
		scratch = p.OutEdges(BlockID(id), scratch[:0])
		for _, e := range scratch {
			preds[e.To] = append(preds[e.To], e.From)
		}
	}
	return preds
}

// Reachable returns the set of blocks reachable from the entry block,
// indexed by BlockID.
func (p *Proc) Reachable() []bool {
	seen := make([]bool, len(p.Blocks))
	if len(p.Blocks) == 0 {
		return seen
	}
	stack := []BlockID{p.Entry()}
	seen[p.Entry()] = true
	var scratch []BlockID
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		scratch = p.Succs(id, scratch[:0])
		for _, s := range scratch {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}
