package ir

import (
	"fmt"
	"sort"
)

// BlockID identifies a basic block by its index in the containing
// procedure's Blocks slice. IDs are stable under relabeling only within one
// Proc value; the rewriter produces fresh procedures with fresh IDs and
// records the mapping via Block.Orig.
type BlockID int32

// NoBlock marks an absent block reference (e.g. no fall-through successor).
const NoBlock BlockID = -1

// EntryBlock is the entry block's ID: every procedure enters at its first
// block (Proc.Entry returns it), an invariant consumers like profile entry
// counts rely on.
const EntryBlock BlockID = 0

// Block is a basic block: a maximal straight-line instruction sequence.
// Control enters only at the first instruction. A block ends either with a
// terminator instruction (CondBr, Br, IJump, Ret, Halt) or falls through to
// the next block in layout order.
type Block struct {
	// Label is the (optional) assembler label naming the block.
	Label string
	// Instrs is the instruction sequence, including the terminator if any.
	Instrs []Instr
	// Orig is the block's ID in the program this block was derived from, or
	// NoBlock for synthesized blocks (e.g. jump blocks inserted by the
	// rewriter). For original programs Orig equals the block's own ID.
	Orig BlockID
	// Addr is the address of the block's first instruction, assigned by
	// Program.AssignAddresses.
	Addr uint64
}

// Terminator returns the block's terminating instruction and true, or a zero
// Instr and false when the block falls through.
func (b *Block) Terminator() (*Instr, bool) {
	if len(b.Instrs) == 0 {
		return nil, false
	}
	last := &b.Instrs[len(b.Instrs)-1]
	if last.Kind().EndsBlock() {
		return last, true
	}
	return nil, false
}

// FallsThrough reports whether execution can continue into the next block in
// layout order: the block is empty, ends with a non-terminator, or ends with
// a conditional branch (the not-taken path).
func (b *Block) FallsThrough() bool {
	t, ok := b.Terminator()
	if !ok {
		return true
	}
	return t.Kind() == CondBr
}

// NumInstrs returns the number of instructions in the block.
func (b *Block) NumInstrs() int { return len(b.Instrs) }

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	nb := &Block{Label: b.Label, Orig: b.Orig, Addr: b.Addr}
	nb.Instrs = make([]Instr, len(b.Instrs))
	for i := range b.Instrs {
		nb.Instrs[i] = b.Instrs[i].Clone()
	}
	return nb
}

// TermAddr returns the address of the block's last instruction (the branch
// site address for blocks ending in a branch).
func (b *Block) TermAddr() uint64 {
	if len(b.Instrs) == 0 {
		return b.Addr
	}
	return b.Addr + uint64(len(b.Instrs)-1)*InstrBytes
}

// Proc is a procedure: an entry block (always Blocks[0]) plus the rest of
// its basic blocks in layout order.
type Proc struct {
	Name   string
	Blocks []*Block
}

// Entry returns the procedure's entry block ID (always 0).
func (p *Proc) Entry() BlockID { return EntryBlock }

// Block returns the block with the given ID, or nil when out of range.
func (p *Proc) Block(id BlockID) *Block {
	if id < 0 || int(id) >= len(p.Blocks) {
		return nil
	}
	return p.Blocks[id]
}

// NumInstrs returns the total instruction count of the procedure.
func (p *Proc) NumInstrs() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Succs appends the static successor block IDs of block id to dst and
// returns it: the taken target of a CondBr or Br, all IJump targets, and the
// fall-through (the next block in layout order) when the block falls
// through. Ret and Halt have no intraprocedural successors.
func (p *Proc) Succs(id BlockID, dst []BlockID) []BlockID {
	b := p.Block(id)
	if b == nil {
		return dst
	}
	if t, ok := b.Terminator(); ok {
		switch t.Kind() {
		case CondBr:
			dst = append(dst, t.TargetBlock)
		case Br:
			return append(dst, t.TargetBlock)
		case IJump:
			return append(dst, t.Targets...)
		case Ret, Halt:
			return dst
		}
	}
	if int(id)+1 < len(p.Blocks) {
		dst = append(dst, id+1)
	}
	return dst
}

// FallSucc returns the fall-through successor of block id, or NoBlock when
// the block does not fall through or is the last block.
func (p *Proc) FallSucc(id BlockID) BlockID {
	b := p.Block(id)
	if b == nil || !b.FallsThrough() {
		return NoBlock
	}
	if int(id)+1 >= len(p.Blocks) {
		return NoBlock
	}
	return id + 1
}

// Clone returns a deep copy of the procedure.
func (p *Proc) Clone() *Proc {
	np := &Proc{Name: p.Name, Blocks: make([]*Block, len(p.Blocks))}
	for i, b := range p.Blocks {
		np.Blocks[i] = b.Clone()
	}
	return np
}

// Program is a complete executable: procedures laid out in order, the first
// of which (or the one named by EntryProc) is the entry point, plus a data
// memory size for the VM.
type Program struct {
	Name  string
	Procs []*Proc
	// EntryProc is the index of the procedure where execution starts.
	EntryProc int
	// MemWords is the number of 64-bit data memory words the VM provides.
	MemWords int

	procIndex map[string]int
}

// Proc returns the procedure with the given index, or nil when out of range.
func (pr *Program) Proc(i int) *Proc {
	if i < 0 || i >= len(pr.Procs) {
		return nil
	}
	return pr.Procs[i]
}

// ProcByName returns the index of the named procedure, or -1.
func (pr *Program) ProcByName(name string) int {
	if pr.procIndex == nil {
		pr.procIndex = make(map[string]int, len(pr.Procs))
		for i, p := range pr.Procs {
			pr.procIndex[p.Name] = i
		}
	}
	if i, ok := pr.procIndex[name]; ok {
		return i
	}
	return -1
}

// InvalidateIndex drops the cached name index; call after renaming or
// adding procedures.
func (pr *Program) InvalidateIndex() { pr.procIndex = nil }

// NumInstrs returns the total static instruction count of the program.
func (pr *Program) NumInstrs() int {
	n := 0
	for _, p := range pr.Procs {
		n += p.NumInstrs()
	}
	return n
}

// NumBlocks returns the total basic-block count of the program.
func (pr *Program) NumBlocks() int {
	n := 0
	for _, p := range pr.Procs {
		n += len(p.Blocks)
	}
	return n
}

// Clone returns a deep copy of the program.
func (pr *Program) Clone() *Program {
	np := &Program{
		Name:      pr.Name,
		EntryProc: pr.EntryProc,
		MemWords:  pr.MemWords,
		Procs:     make([]*Proc, len(pr.Procs)),
	}
	for i, p := range pr.Procs {
		np.Procs[i] = p.Clone()
	}
	return np
}

// AssignAddresses lays the program out in memory: procedures in order, each
// block contiguous, InstrBytes per instruction, starting at base. It returns
// the first address past the program.
func (pr *Program) AssignAddresses(base uint64) uint64 {
	addr := base
	for _, p := range pr.Procs {
		for _, b := range p.Blocks {
			b.Addr = addr
			addr += uint64(len(b.Instrs)) * InstrBytes
		}
	}
	return addr
}

// BlockAt returns the procedure index and block ID of the block containing
// the given address, using binary search over the assigned layout. It
// returns (-1, NoBlock) when the address is outside the program. Addresses
// must have been assigned.
func (pr *Program) BlockAt(addr uint64) (int, BlockID) {
	pi := sort.Search(len(pr.Procs), func(i int) bool {
		p := pr.Procs[i]
		if len(p.Blocks) == 0 {
			return true
		}
		return p.Blocks[0].Addr > addr
	}) - 1
	if pi < 0 {
		return -1, NoBlock
	}
	p := pr.Procs[pi]
	bi := sort.Search(len(p.Blocks), func(i int) bool {
		return p.Blocks[i].Addr > addr
	}) - 1
	if bi < 0 {
		return -1, NoBlock
	}
	b := p.Blocks[bi]
	if addr >= b.Addr+uint64(len(b.Instrs))*InstrBytes {
		return -1, NoBlock
	}
	return pi, BlockID(bi)
}

// Validate checks structural invariants of the program and returns the first
// violation found, or nil. Checked invariants:
//
//   - every CondBr/Br target and IJump target is a valid block in its proc;
//   - every Call target is a valid procedure index;
//   - only the last instruction of a block is block-ending;
//   - the last block of a procedure does not fall through (a fall-through
//     off the end of a procedure would run into the next procedure);
//   - the entry procedure index is valid.
func (pr *Program) Validate() error {
	if pr.EntryProc < 0 || pr.EntryProc >= len(pr.Procs) {
		return fmt.Errorf("ir: program %q: entry proc %d out of range [0,%d)",
			pr.Name, pr.EntryProc, len(pr.Procs))
	}
	for pi, p := range pr.Procs {
		if len(p.Blocks) == 0 {
			return fmt.Errorf("ir: proc %q: no blocks", p.Name)
		}
		for bi, b := range p.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Kind().EndsBlock() && ii != len(b.Instrs)-1 {
					return fmt.Errorf("ir: proc %q block %d: %v at position %d is not last",
						p.Name, bi, in.Op, ii)
				}
				switch in.Kind() {
				case CondBr, Br:
					if p.Block(in.TargetBlock) == nil {
						return fmt.Errorf("ir: proc %q block %d: %v target block %d out of range",
							p.Name, bi, in.Op, in.TargetBlock)
					}
				case IJump:
					if len(in.Targets) == 0 {
						return fmt.Errorf("ir: proc %q block %d: ijump with no targets", p.Name, bi)
					}
					for _, t := range in.Targets {
						if p.Block(t) == nil {
							return fmt.Errorf("ir: proc %q block %d: ijump target block %d out of range",
								p.Name, bi, t)
						}
					}
				case Call:
					if in.TargetProc < 0 || in.TargetProc >= len(pr.Procs) {
						return fmt.Errorf("ir: proc %q block %d: call target proc %d out of range",
							p.Name, bi, in.TargetProc)
					}
				}
			}
			if bi == len(p.Blocks)-1 && b.FallsThrough() {
				return fmt.Errorf("ir: proc %q (index %d): last block %d falls through off the end",
					p.Name, pi, bi)
			}
		}
	}
	return nil
}
