// Package ir defines the intermediate representation used throughout the
// branch-alignment system: a small RISC-like instruction set organised into
// basic blocks, procedures and whole programs.
//
// The representation is deliberately close to what a link-time binary
// rewriter (such as OM, used in the original paper) sees: every instruction
// occupies one address slot, conditional branches have an explicit taken
// target and an implicit fall-through to the next block in layout order, and
// procedures are laid out contiguously. Branch alignment reorders the blocks
// of each procedure and patches branches so that the program's semantics are
// preserved while hot edges become fall-throughs.
package ir

import "fmt"

// Kind classifies an instruction by its effect on control flow. The five
// break kinds (CondBr, Br, Call, IJump, Ret) match the five break categories
// the paper traces (CBr, Br, Call, IJ, Ret).
type Kind uint8

const (
	// Op is an ordinary computational instruction with no control effect.
	Op Kind = iota
	// CondBr is a two-way conditional branch: taken edge to an explicit
	// label, fall-through edge to the next block in layout order.
	CondBr
	// Br is an unconditional direct branch.
	Br
	// Call is a direct procedure call; control returns to the following
	// instruction. Calls may appear in the middle of a basic block.
	Call
	// IJump is an indirect jump through a register (jump table / computed
	// goto). Its possible destinations are listed statically so that the
	// CFG stays complete, as a binary rewriter would recover them from
	// relocation and jump-table analysis.
	IJump
	// Ret returns from the current procedure.
	Ret
	// Halt terminates the program.
	Halt
)

// String returns the paper's abbreviation for the break kind.
func (k Kind) String() string {
	switch k {
	case Op:
		return "op"
	case CondBr:
		return "cbr"
	case Br:
		return "br"
	case Call:
		return "call"
	case IJump:
		return "ijump"
	case Ret:
		return "ret"
	case Halt:
		return "halt"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsBreak reports whether the kind breaks sequential control flow when
// executed (taken or not); Op is the only non-break kind. Halt is counted as
// a break for completeness but never appears in traces.
func (k Kind) IsBreak() bool { return k != Op }

// EndsBlock reports whether an instruction of this kind must be the last
// instruction of its basic block. Calls and plain ops may appear mid-block.
func (k Kind) EndsBlock() bool {
	switch k {
	case CondBr, Br, IJump, Ret, Halt:
		return true
	}
	return false
}

// Opcode selects the operation a VM performs for an instruction. Opcodes are
// grouped by Kind: arithmetic/memory opcodes belong to Kind Op, comparison
// opcodes to Kind CondBr, and the control kinds each have a single opcode.
type Opcode uint8

const (
	// Computational opcodes (Kind Op).
	OpNop  Opcode = iota
	OpLi          // rd = imm
	OpMov         // rd = rs
	OpAdd         // rd = rs + rt
	OpSub         // rd = rs - rt
	OpMul         // rd = rs * rt
	OpDiv         // rd = rs / rt (rt==0 -> 0)
	OpMod         // rd = rs % rt (rt==0 -> 0)
	OpAnd         // rd = rs & rt
	OpOr          // rd = rs | rt
	OpXor         // rd = rs ^ rt
	OpShl         // rd = rs << (rt & 63)
	OpShr         // rd = rs >> (rt & 63), arithmetic
	OpAddi        // rd = rs + imm
	OpMuli        // rd = rs * imm
	OpAndi        // rd = rs & imm
	OpLd          // rd = mem[rs + imm]
	OpSt          // mem[rs + imm] = rd
	OpSlt         // rd = rs < rt ? 1 : 0
	OpSlti        // rd = rs < imm ? 1 : 0

	// Conditional branch opcodes (Kind CondBr). Each compares Rd against Rs
	// (the Z-variants compare Rd against zero) and branches to the taken
	// target when the relation holds.
	OpBeq
	OpBne
	OpBlt
	OpBle
	OpBgt
	OpBge
	OpBeqz
	OpBnez
	OpBltz
	OpBgez

	// Control opcodes with dedicated kinds.
	OpBr    // Kind Br
	OpCall  // Kind Call
	OpIJump // Kind IJump: index register Rd selects Targets[Rd]
	OpRet   // Kind Ret
	OpHalt  // Kind Halt

	// Conditional moves (Kind Op), in the style of the Alpha AXP's CMOVxx
	// family. They are the target of branch melding (if-conversion): a
	// conditional branch skipping a side-effect-free block can be rewritten
	// into predicated moves, eliminating the branch entirely. Appended after
	// the control opcodes so existing opcode values are unchanged; KindOf
	// classifies them as ordinary Ops.
	OpCmovz  // rd = rs when rt == 0 (rd unchanged otherwise)
	OpCmovnz // rd = rs when rt != 0 (rd unchanged otherwise)
)

// LastOpcode is the highest defined opcode; tables that enumerate every
// mnemonic iterate OpNop..LastOpcode.
const LastOpcode = OpCmovnz

var opcodeNames = map[Opcode]string{
	OpNop: "nop", OpLi: "li", OpMov: "mov", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpMod: "mod", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpAddi: "addi", OpMuli: "muli",
	OpAndi: "andi", OpLd: "ld", OpSt: "st", OpSlt: "slt", OpSlti: "slti",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBle: "ble", OpBgt: "bgt",
	OpBge: "bge", OpBeqz: "beqz", OpBnez: "bnez", OpBltz: "bltz",
	OpBgez: "bgez", OpBr: "br", OpCall: "call", OpIJump: "ijump",
	OpRet: "ret", OpHalt: "halt", OpCmovz: "cmovz", OpCmovnz: "cmovnz",
}

// String returns the assembler mnemonic for the opcode.
func (o Opcode) String() string {
	if s, ok := opcodeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("opcode(%d)", uint8(o))
}

// KindOf returns the control-flow kind implied by an opcode.
func KindOf(o Opcode) Kind {
	switch {
	case o >= OpBeq && o <= OpBgez:
		return CondBr
	case o == OpBr:
		return Br
	case o == OpCall:
		return Call
	case o == OpIJump:
		return IJump
	case o == OpRet:
		return Ret
	case o == OpHalt:
		return Halt
	default:
		return Op
	}
}

// InvertBranch returns the opcode computing the negated condition of a
// conditional branch opcode. It panics when o is not a CondBr opcode; branch
// alignment uses it to flip the sense of a branch when the taken target
// becomes the fall-through.
func InvertBranch(o Opcode) Opcode {
	switch o {
	case OpBeq:
		return OpBne
	case OpBne:
		return OpBeq
	case OpBlt:
		return OpBge
	case OpBge:
		return OpBlt
	case OpBle:
		return OpBgt
	case OpBgt:
		return OpBle
	case OpBeqz:
		return OpBnez
	case OpBnez:
		return OpBeqz
	case OpBltz:
		return OpBgez
	case OpBgez:
		return OpBltz
	default:
		panic(fmt.Sprintf("ir: InvertBranch of non-conditional opcode %v", o))
	}
}

// NumRegs is the number of general-purpose registers in the VM. Register 0
// is conventionally used as a scratch/zero register by generated code but is
// not hardwired.
const NumRegs = 32

// InstrBytes is the size of one instruction slot in the address space. A
// fixed 4-byte encoding mirrors the Alpha AXP the paper targets.
const InstrBytes = 4

// Instr is a single instruction. Operand meaning depends on the opcode:
//
//	computational: Rd, Rs, Rt registers, Imm immediate
//	cond branch:   Rd (and Rs for two-register forms) compared; taken
//	               target is TargetBlock (a block index within the proc)
//	br:            TargetBlock
//	call:          TargetProc (a procedure index within the program)
//	ijump:         Rd indexes Targets (block indices within the proc)
//	ret, halt:     no operands
type Instr struct {
	Op  Opcode
	Rd  uint8
	Rs  uint8
	Rt  uint8
	Imm int64

	// TargetBlock is the taken target of a CondBr or Br, as a block index
	// within the containing procedure.
	TargetBlock BlockID
	// TargetProc is the callee of a Call, as a procedure index.
	TargetProc int
	// Targets lists the possible destinations of an IJump.
	Targets []BlockID
}

// Kind returns the control-flow kind of the instruction.
func (in *Instr) Kind() Kind { return KindOf(in.Op) }

// Clone returns a deep copy of the instruction.
func (in *Instr) Clone() Instr {
	out := *in
	if in.Targets != nil {
		out.Targets = append([]BlockID(nil), in.Targets...)
	}
	return out
}
