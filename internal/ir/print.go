package ir

import (
	"fmt"
	"strings"
)

// blockName returns a printable name for a block reference within p.
func blockName(p *Proc, id BlockID) string {
	b := p.Block(id)
	if b == nil {
		return fmt.Sprintf("?%d", id)
	}
	if b.Label != "" {
		return b.Label
	}
	return fmt.Sprintf(".b%d", id)
}

// FormatInstr renders one instruction in assembler syntax. prog may be nil
// when the instruction contains no call; p may be nil when it contains no
// branch.
func FormatInstr(prog *Program, p *Proc, in *Instr) string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpLi:
		return fmt.Sprintf("li r%d, %d", in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSlt,
		OpCmovz, OpCmovnz:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs, in.Rt)
	case OpAddi, OpMuli, OpAndi, OpSlti:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs, in.Imm)
	case OpLd:
		return fmt.Sprintf("ld r%d, %d(r%d)", in.Rd, in.Imm, in.Rs)
	case OpSt:
		return fmt.Sprintf("st r%d, %d(r%d)", in.Rd, in.Imm, in.Rs)
	case OpBeq, OpBne, OpBlt, OpBle, OpBgt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.Rd, in.Rs, blockName(p, in.TargetBlock))
	case OpBeqz, OpBnez, OpBltz, OpBgez:
		return fmt.Sprintf("%s r%d, %s", in.Op, in.Rd, blockName(p, in.TargetBlock))
	case OpBr:
		return fmt.Sprintf("br %s", blockName(p, in.TargetBlock))
	case OpCall:
		name := fmt.Sprintf("?proc%d", in.TargetProc)
		if prog != nil {
			if cp := prog.Proc(in.TargetProc); cp != nil {
				name = cp.Name
			}
		}
		return fmt.Sprintf("call %s", name)
	case OpIJump:
		parts := make([]string, len(in.Targets))
		for i, t := range in.Targets {
			parts[i] = blockName(p, t)
		}
		return fmt.Sprintf("ijump r%d, [%s]", in.Rd, strings.Join(parts, ", "))
	case OpRet:
		return "ret"
	case OpHalt:
		return "halt"
	default:
		return fmt.Sprintf("%s ???", in.Op)
	}
}

// FormatProc renders a procedure in assembler syntax.
func FormatProc(prog *Program, p *Proc) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "proc %s\n", p.Name)
	for id, b := range p.Blocks {
		fmt.Fprintf(&sb, "%s:\n", blockName(p, BlockID(id)))
		for ii := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", FormatInstr(prog, p, &b.Instrs[ii]))
		}
	}
	sb.WriteString("endproc\n")
	return sb.String()
}

// Format renders the whole program in assembler syntax that the asm package
// can parse back.
func (pr *Program) Format() string {
	var sb strings.Builder
	if pr.Name != "" {
		fmt.Fprintf(&sb, "; program %s\n", pr.Name)
	}
	if pr.MemWords > 0 {
		fmt.Fprintf(&sb, "mem %d\n", pr.MemWords)
	}
	if pr.EntryProc != 0 && pr.Proc(pr.EntryProc) != nil {
		fmt.Fprintf(&sb, "entry %s\n", pr.Procs[pr.EntryProc].Name)
	}
	for i, p := range pr.Procs {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(FormatProc(pr, p))
	}
	return sb.String()
}
