// Package metrics computes the measurements the paper reports: the Table 2
// program attributes (break density, branch-site quantiles, taken rates,
// break-kind mix), the branch execution penalty (BEP) and the relative
// cycles-per-instruction metric used throughout Tables 3 and 4.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/trace"
)

// Attributes are the per-program measurements of the paper's Table 2.
type Attributes struct {
	// Instrs is the number of instructions traced.
	Instrs uint64
	// PctBreaks is the percentage of instructions that break control flow.
	PctBreaks float64
	// Q50/Q90/Q99/Q100 are the numbers of conditional branch sites that
	// account for 50/90/99/100% of executed conditional branches.
	Q50, Q90, Q99, Q100 int
	// StaticSites is the number of conditional branch sites in the binary.
	StaticSites int
	// PctTaken is the percentage of executed conditional branches taken.
	PctTaken float64
	// Break-kind mix, as percentages of all breaks.
	PctCBr, PctIJ, PctBr, PctCall, PctRet float64
}

// Collector accumulates the dynamic inputs to Attributes from an event
// stream. Attach it as a trace.Sink; set Instrs from the execution result.
type Collector struct {
	Instrs    uint64
	counter   trace.Counter
	siteCount map[uint64]uint64 // conditional site PC -> executions
}

// NewCollector returns an empty attribute collector.
func NewCollector() *Collector {
	return &Collector{siteCount: make(map[uint64]uint64)}
}

// Event implements trace.Sink.
func (c *Collector) Event(e trace.Event) {
	c.counter.Event(e)
	if e.Kind == ir.CondBr {
		c.siteCount[e.PC]++
	}
}

// Counter exposes the underlying per-kind tallies.
func (c *Collector) Counter() trace.Counter { return c.counter }

// Attributes finalizes the measurements; prog supplies the static
// conditional site count.
func (c *Collector) Attributes(prog *ir.Program) Attributes {
	a := Attributes{Instrs: c.Instrs, StaticSites: StaticCondSites(prog)}
	total := c.counter.Total
	if c.Instrs > 0 {
		a.PctBreaks = 100 * float64(total) / float64(c.Instrs)
	}
	if cond := c.counter.CondTaken + c.counter.CondFall; cond > 0 {
		a.PctTaken = 100 * float64(c.counter.CondTaken) / float64(cond)
	}
	if total > 0 {
		a.PctCBr = 100 * float64(c.counter.ByKind[ir.CondBr]) / float64(total)
		a.PctIJ = 100 * float64(c.counter.ByKind[ir.IJump]) / float64(total)
		a.PctBr = 100 * float64(c.counter.ByKind[ir.Br]) / float64(total)
		a.PctCall = 100 * float64(c.counter.ByKind[ir.Call]) / float64(total)
		a.PctRet = 100 * float64(c.counter.ByKind[ir.Ret]) / float64(total)
	}
	qs := SiteQuantiles(c.siteCount, []float64{0.50, 0.90, 0.99, 1.0})
	a.Q50, a.Q90, a.Q99, a.Q100 = qs[0], qs[1], qs[2], qs[3]
	return a
}

// quantileDenom is the fixed denominator the quantile fractions are
// rationalized over: a requested fraction is interpreted to the nearest
// 1e-6, which is exact for the paper's 0.50/0.90/0.99/1.0.
const quantileDenom = 1_000_000

// SiteQuantiles returns, for each requested fraction, the minimum number of
// sites (hottest first) whose executions cover that fraction of the total.
// This is the paper's Q-50/Q-90/Q-99/Q-100 measure.
//
// The cumulative coverage test runs in integer arithmetic — fractions are
// converted to rationals num/quantileDenom and cum/total >= num/denom is
// decided on 128-bit products — so site counts near or above 2^53 and
// exact-boundary fractions cannot be mis-ranked by float rounding. In
// particular a fraction of 1.0 reduces to cum >= total, so Q-100 is always
// exactly the number of sites with nonzero executions.
func SiteQuantiles(siteCount map[uint64]uint64, fractions []float64) []int {
	counts := make([]uint64, 0, len(siteCount))
	var total uint64
	for _, n := range siteCount {
		counts = append(counts, n)
		total += n
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	out := make([]int, len(fractions))
	if total == 0 {
		return out
	}
	for fi, f := range fractions {
		num := fractionNumerator(f)
		var cum uint64
		n := 0
		for _, cnt := range counts {
			if covers(cum, total, num) {
				break
			}
			cum += cnt
			n++
		}
		out[fi] = n
	}
	return out
}

// fractionNumerator converts a coverage fraction to its numerator over
// quantileDenom, clamped to [0, quantileDenom].
func fractionNumerator(f float64) uint64 {
	switch {
	case f <= 0:
		return 0
	case f >= 1:
		return quantileDenom
	}
	return uint64(math.Round(f * quantileDenom))
}

// covers reports cum/total >= num/quantileDenom, i.e. whether the
// accumulated executions already reach the requested coverage. Both sides
// are compared as exact 128-bit products, so there is no rounding at any
// operand magnitude.
func covers(cum, total, num uint64) bool {
	lhsHi, lhsLo := bits.Mul64(cum, quantileDenom)
	rhsHi, rhsLo := bits.Mul64(num, total)
	return lhsHi > rhsHi || (lhsHi == rhsHi && lhsLo >= rhsLo)
}

// StaticCondSites counts the conditional branch instructions in a program.
func StaticCondSites(prog *ir.Program) int {
	n := 0
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			if t, ok := b.Terminator(); ok && t.Kind() == ir.CondBr {
				n++
			}
		}
	}
	return n
}

// RelativeCPI is the paper's evaluation metric: the aligned program's
// instruction count plus its branch execution penalty, divided by the
// original program's instruction count. The original program's own relative
// CPI uses its own instruction count in the numerator, giving
// (orig + BEP_orig) / orig.
func RelativeCPI(origInstrs, alignedInstrs, bep uint64) float64 {
	if origInstrs == 0 {
		return 0
	}
	return float64(alignedInstrs+bep) / float64(origInstrs)
}

// BEPFromResult computes the branch execution penalty of a simulation with
// the paper's penalties (misfetch 1, mispredict 4).
func BEPFromResult(r predict.Result) uint64 {
	return r.BEP(predict.DefaultMisfetchPenalty, predict.DefaultMispredictPenalty)
}

// FallthroughPct returns the percentage of executed conditional branches
// that fell through in a simulation result (the paper's "% of Fall-Through
// Conditional Branches" columns).
func FallthroughPct(r predict.Result) float64 {
	if r.Cond == 0 {
		return 0
	}
	return 100 * float64(r.Cond-r.CondTaken) / float64(r.Cond)
}

// Summary is one cell of the evaluation grid — a (program, architecture,
// algorithm) measurement — in reducible form: the exact simulation counts
// plus the derived paper metrics. Summaries are the unit the parallel
// experiment engine's reducer merges; because every field is either an
// exact integer or a float computed from exact integers by a fixed
// expression, two runs that executed the same simulations produce
// byte-identical encodings regardless of scheduling.
type Summary struct {
	Program string
	Arch    string
	Algo    string

	// Exact counts from the traced simulation.
	Instrs      uint64 // instructions retired by the traced variant
	BEP         uint64 // branch execution penalty in cycles
	Events      uint64
	Misfetches  uint64
	Mispredicts uint64
	Cond        uint64
	CondTaken   uint64
	CondCorrect uint64

	// Exact instruction-cache counts (an icache.Sim replay of the variant's
	// trace; zero when the producer ran no cache simulation) and the derived
	// misses-per-kilo-instruction metric.
	ICFetches  uint64
	ICAccesses uint64
	ICMisses   uint64
	ICMPKI     float64

	// Derived paper metrics.
	CPI          float64
	FallPct      float64
	CondAccuracy float64
}

// NewSummary builds a Summary from one simulation result; origInstrs is the
// original program's instruction count (the relative-CPI denominator).
func NewSummary(program, arch, algo string, origInstrs, instrs uint64, r predict.Result) Summary {
	bep := BEPFromResult(r)
	return Summary{
		Program: program, Arch: arch, Algo: algo,
		Instrs: instrs, BEP: bep,
		Events: r.Events, Misfetches: r.Misfetches, Mispredicts: r.Mispredicts,
		Cond: r.Cond, CondTaken: r.CondTaken, CondCorrect: r.CondCorrect,
		CPI:          RelativeCPI(origInstrs, instrs, bep),
		FallPct:      FallthroughPct(r),
		CondAccuracy: r.CondAccuracy(),
	}
}

// SortSummaries orders summaries canonically by (Program, Arch, Algo) so
// per-shard results merged in any order reduce to one deterministic list.
func SortSummaries(s []Summary) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Program != s[j].Program {
			return s[i].Program < s[j].Program
		}
		if s[i].Arch != s[j].Arch {
			return s[i].Arch < s[j].Arch
		}
		return s[i].Algo < s[j].Algo
	})
}

// EncodeSummaries renders summaries in a stable line-oriented text format.
// Two evaluation runs agree exactly if and only if their encodings are
// byte-identical, which is what the differential parallel-vs-serial oracle
// asserts.
func EncodeSummaries(s []Summary) string {
	var sb strings.Builder
	for _, r := range s {
		fmt.Fprintf(&sb, "%s %s %s instrs=%d bep=%d events=%d misfetch=%d mispredict=%d cond=%d taken=%d correct=%d icfetch=%d icacc=%d icmiss=%d cpi=%.9f fall=%.9f acc=%.9f icmpki=%.9f\n",
			r.Program, r.Arch, r.Algo, r.Instrs, r.BEP, r.Events, r.Misfetches,
			r.Mispredicts, r.Cond, r.CondTaken, r.CondCorrect,
			r.ICFetches, r.ICAccesses, r.ICMisses,
			r.CPI, r.FallPct, r.CondAccuracy, r.ICMPKI)
	}
	return sb.String()
}
