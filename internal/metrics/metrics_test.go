package metrics

import (
	"math"
	"testing"

	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/trace"
)

func TestSiteQuantiles(t *testing.T) {
	sites := map[uint64]uint64{
		1: 50, 2: 30, 3: 10, 4: 5, 5: 4, 6: 1,
	} // total 100
	qs := SiteQuantiles(sites, []float64{0.5, 0.9, 0.99, 1.0})
	if qs[0] != 1 { // hottest site covers exactly 50
		t.Errorf("Q50 = %d, want 1", qs[0])
	}
	if qs[1] != 3 { // 50+30+10 = 90
		t.Errorf("Q90 = %d, want 3", qs[1])
	}
	if qs[2] != 5 { // 98 after 4 sites, 99 needs 5th
		t.Errorf("Q99 = %d, want 5", qs[2])
	}
	if qs[3] != 6 {
		t.Errorf("Q100 = %d, want 6", qs[3])
	}
	if got := SiteQuantiles(nil, []float64{0.5}); got[0] != 0 {
		t.Errorf("empty quantiles = %v", got)
	}
}

// TestSiteQuantilesLargeTotals is the regression test for the
// float-precision bug: with totals near or above 2^53 the old
// float64(cum) >= f*float64(total) comparison rounded away low bits, so
// Q-100 could undercount the hot sites. The integer comparison is exact.
func TestSiteQuantilesLargeTotals(t *testing.T) {
	// total = 2^53 + 1 is not representable in float64: it rounds down to
	// 2^53, which the first site alone already reaches, so the old code
	// reported Q-100 = 1 instead of 2.
	sites := map[uint64]uint64{
		1: 1 << 53,
		2: 1,
	}
	qs := SiteQuantiles(sites, []float64{1.0})
	if qs[0] != 2 {
		t.Errorf("Q100 = %d, want 2 (the number of nonzero sites)", qs[0])
	}

	// Way above 2^53 — also stresses the 128-bit product path, where
	// cum*quantileDenom overflows uint64.
	huge := map[uint64]uint64{
		1: 1 << 62, 2: 1 << 62, 3: 1 << 61, 4: 3, 5: 1,
	}
	qs = SiteQuantiles(huge, []float64{0.5, 1.0})
	if qs[1] != 5 {
		t.Errorf("huge Q100 = %d, want 5", qs[1])
	}
	if qs[0] != 2 { // 2^62+2^62 = 2^63 >= half of (2^63 + 2^61 + 4)? no: half is 2^62+2^60+2, one site is not enough, two are.
		t.Errorf("huge Q50 = %d, want 2", qs[0])
	}
}

// TestSiteQuantilesExactBoundaries pins exact-boundary fractions that
// float arithmetic gets wrong: 0.1 is not representable, so the old code
// computed need = 1.0000000000000002 for total 10 and overcounted.
func TestSiteQuantilesExactBoundaries(t *testing.T) {
	sites := map[uint64]uint64{}
	for pc := uint64(1); pc <= 10; pc++ {
		sites[pc] = 1
	}
	qs := SiteQuantiles(sites, []float64{0.1, 0.2, 0.5, 0.7, 1.0})
	want := []int{1, 2, 5, 7, 10}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("quantile %d = %d, want %d", i, qs[i], want[i])
		}
	}
	// Q-100 must equal the count of nonzero sites on asymmetric weights too.
	skewed := map[uint64]uint64{1: 999_999, 2: 1}
	if got := SiteQuantiles(skewed, []float64{1.0})[0]; got != 2 {
		t.Errorf("skewed Q100 = %d, want 2", got)
	}
	// Fractions outside [0, 1] clamp instead of misbehaving.
	if got := SiteQuantiles(skewed, []float64{-0.5, 1.5}); got[0] != 0 || got[1] != 2 {
		t.Errorf("clamped quantiles = %v, want [0 2]", got)
	}
}

func TestCollectorAttributes(t *testing.T) {
	prog := &ir.Program{Procs: []*ir.Proc{{Name: "m", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpBnez, Rd: 1, TargetBlock: 1}}},
		{Instrs: []ir.Instr{{Op: ir.OpBeqz, Rd: 1, TargetBlock: 1}}},
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}}}
	c := NewCollector()
	c.Instrs = 100
	// 6 conditionals (4 taken), 2 br, 1 call, 1 ret = 10 breaks.
	for i := 0; i < 4; i++ {
		c.Event(trace.Event{Kind: ir.CondBr, Taken: true, PC: 0x10})
	}
	c.Event(trace.Event{Kind: ir.CondBr, Taken: false, PC: 0x20})
	c.Event(trace.Event{Kind: ir.CondBr, Taken: false, PC: 0x20})
	c.Event(trace.Event{Kind: ir.Br, PC: 0x30, Taken: true})
	c.Event(trace.Event{Kind: ir.Br, PC: 0x30, Taken: true})
	c.Event(trace.Event{Kind: ir.Call, PC: 0x40, Taken: true})
	c.Event(trace.Event{Kind: ir.Ret, PC: 0x50, Taken: true})

	a := c.Attributes(prog)
	if a.Instrs != 100 {
		t.Errorf("Instrs = %d", a.Instrs)
	}
	if a.PctBreaks != 10 {
		t.Errorf("PctBreaks = %v, want 10", a.PctBreaks)
	}
	if math.Abs(a.PctTaken-100*4.0/6.0) > 1e-9 {
		t.Errorf("PctTaken = %v", a.PctTaken)
	}
	if a.PctCBr != 60 || a.PctBr != 20 || a.PctCall != 10 || a.PctRet != 10 || a.PctIJ != 0 {
		t.Errorf("mix = %v/%v/%v/%v/%v", a.PctCBr, a.PctIJ, a.PctBr, a.PctCall, a.PctRet)
	}
	if a.StaticSites != 2 {
		t.Errorf("StaticSites = %d, want 2", a.StaticSites)
	}
	if a.Q50 != 1 || a.Q100 != 2 {
		t.Errorf("Q50/Q100 = %d/%d, want 1/2", a.Q50, a.Q100)
	}
}

func TestRelativeCPI(t *testing.T) {
	if got := RelativeCPI(1000, 1000, 375); got != 1.375 {
		t.Errorf("RelativeCPI = %v, want 1.375", got)
	}
	// Aligned program with fewer instructions and same penalty.
	if got := RelativeCPI(1000, 978, 347); got != 1.325 {
		t.Errorf("RelativeCPI = %v, want 1.325", got)
	}
	if RelativeCPI(0, 10, 10) != 0 {
		t.Error("zero-instr guard failed")
	}
}

func TestBEPAndFallthroughPct(t *testing.T) {
	r := predict.Result{Misfetches: 10, Mispredicts: 5, Cond: 100, CondTaken: 30}
	if got := BEPFromResult(r); got != 10+20 {
		t.Errorf("BEP = %d, want 30", got)
	}
	if got := FallthroughPct(r); got != 70 {
		t.Errorf("FallthroughPct = %v, want 70", got)
	}
	if FallthroughPct(predict.Result{}) != 0 {
		t.Error("zero-cond guard failed")
	}
}
