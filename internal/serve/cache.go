package serve

import (
	"container/list"
	"sync"

	"balign/internal/obs"
)

// CacheStats snapshots the result cache. The JSON form is the run report's
// "serve_cache" section.
type CacheStats struct {
	// Hits and Misses count lookups; Puts counts stored bodies and
	// Evictions the entries displaced by the entry/byte bounds.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes gauge the current contents.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// resultCache is the keyed LRU response cache: content hash of the
// canonical request → the exact response bytes previously served. Bodies
// are stored immutable and replayed verbatim, which is what makes the
// cache a determinism amplifier rather than a risk — equal keys always
// yield byte-identical responses, and the concurrency tests assert it.
//
// A nil *resultCache is a valid disabled cache: Get always misses, Put is
// a no-op. All methods are safe for concurrent use.
type resultCache struct {
	obs        *obs.Recorder
	maxEntries int
	maxBytes   int64

	mu      sync.Mutex
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	bytes   int64

	hits      uint64
	misses    uint64
	puts      uint64
	evictions uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns a cache bounded by maxEntries and maxBytes (both
// must be positive). rec receives the serve.cache.* counters and gauges.
func newResultCache(maxEntries int, maxBytes int64, rec *obs.Recorder) *resultCache {
	return &resultCache{
		obs:        rec,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		entries:    make(map[string]*list.Element),
	}
}

// Get returns the stored body for key. The returned slice is shared and
// must not be mutated.
func (c *resultCache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		c.obs.Add("serve.cache.misses", 1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	c.obs.Add("serve.cache.hits", 1)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key. First write wins: a concurrent duplicate
// compute does not replace the bytes already associated with the key, so a
// key's body can never change once cached. Bodies larger than the byte
// bound are not cached at all.
func (c *resultCache) Put(key string, body []byte) {
	if c == nil || int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, body: body})
	c.entries[key] = el
	c.bytes += int64(len(body))
	c.puts++
	c.obs.Add("serve.cache.puts", 1)
	for len(c.entries) > c.maxEntries || c.bytes > c.maxBytes {
		back := c.order.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, ev.key)
		c.bytes -= int64(len(ev.body))
		c.evictions++
		c.obs.Add("serve.cache.evictions", 1)
	}
	c.obs.Set("serve.cache.entries", int64(len(c.entries)))
	c.obs.Set("serve.cache.bytes", c.bytes)
}

// Stats snapshots the cache; the zero value for a disabled (nil) cache.
func (c *resultCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Puts:      c.puts,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
	}
}
