package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"balign/internal/experiments"
	"balign/internal/metrics"
	"balign/internal/obs"
	"balign/internal/predict"
)

var update = flag.Bool("update", false, "rewrite golden files")

// readFixture loads a committed fixture from testdata.
func readFixture(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// newTestServer builds a Server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns the status, headers and body.
func post(t *testing.T, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

// alignRequest is the canonical fixture align body.
func alignRequest(t *testing.T) map[string]any {
	return map[string]any{
		"name":    "sample",
		"asm":     readFixture(t, "sample.asm"),
		"profile": readFixture(t, "sample.prof"),
		"algos":   []string{"orig", "greedy", "cost", "tryn", "exttsp"},
	}
}

// alignCFGRequest is the align body in the CFG document encoding: one
// combined program+profile document instead of asm + profile texts.
func alignCFGRequest(t *testing.T) map[string]any {
	return map[string]any{
		"cfg":   readFixture(t, "sample.cfg.json"),
		"algos": []string{"orig", "greedy", "cost", "tryn", "exttsp"},
	}
}

func simulateInlineVM(t *testing.T) map[string]any {
	return map[string]any{
		"name":    "sample",
		"asm":     readFixture(t, "sample.asm"),
		"profile": readFixture(t, "sample.prof"),
	}
}

func simulateInlineWalk(t *testing.T) map[string]any {
	return map[string]any{
		"name":       "sample",
		"asm":        readFixture(t, "sample.asm"),
		"profile":    readFixture(t, "sample.prof"),
		"generator":  "walk",
		"max_instrs": 1 << 16,
		"seed":       7,
	}
}

func simulateSuite() map[string]any {
	return map[string]any{
		"programs": []string{"ora"},
		"scale":    0.05,
	}
}

// checkGolden compares body to the named golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, name string, body []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", name, err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("%s: response differs from golden (run with -update after intended changes)\n got: %s\nwant: %s",
			name, body, want)
	}
}

// goldenCases is the endpoint/request matrix the golden and parity tests
// share.
func goldenCases(t *testing.T) []struct {
	name string
	path string
	req  map[string]any
} {
	return []struct {
		name string
		path string
		req  map[string]any
	}{
		{"align_default.json", "/v1/align", alignRequest(t)},
		{"align_cfg.json", "/v1/align", alignCFGRequest(t)},
		{"simulate_inline_vm.json", "/v1/simulate", simulateInlineVM(t)},
		{"simulate_inline_walk.json", "/v1/simulate", simulateInlineWalk(t)},
		{"simulate_suite.json", "/v1/simulate", simulateSuite()},
	}
}

// TestGoldenEndpoints pins the exact response bytes of both endpoints on
// the default (flat kernel, streamed) server.
func TestGoldenEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range goldenCases(t) {
		status, hdr, body := post(t, ts.URL+tc.path, tc.req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.name, status, body)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q", tc.name, ct)
		}
		checkGolden(t, tc.name, body)
	}
}

// TestKernelStreamParity asserts the serve layer extends the repository's
// executor parity guarantee: every golden response is byte-identical across
// the kernel (flat/ref) x stream (on/off) matrix.
func TestKernelStreamParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity matrix is not short")
	}
	for _, kernel := range []string{"flat", "ref"} {
		for _, stream := range []string{"on", "off"} {
			if kernel == "flat" && stream == "on" {
				continue // the golden baseline itself
			}
			t.Run(kernel+"_"+stream, func(t *testing.T) {
				_, ts := newTestServer(t, Config{Kernel: kernel, Stream: stream})
				for _, tc := range goldenCases(t) {
					status, _, body := post(t, ts.URL+tc.path, tc.req)
					if status != http.StatusOK {
						t.Fatalf("%s: status %d: %s", tc.name, status, body)
					}
					checkGolden(t, tc.name, body)
				}
			})
		}
	}
}

// TestSuiteReportMatchesBaexp asserts the /v1/simulate suite report is the
// same bytes `baexp suite` renders: both go through
// experiments.Summaries + metrics.EncodeSummaries with the same inputs.
func TestSuiteReportMatchesBaexp(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, body := post(t, ts.URL+"/v1/simulate", simulateSuite())
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	summaries, err := experiments.Summaries(experiments.Config{
		Scale: 0.05, Programs: []string{"ora"},
	}, predict.AllArchs())
	if err != nil {
		t.Fatal(err)
	}
	if want := metrics.EncodeSummaries(summaries); resp.Report != want {
		t.Errorf("suite report differs from baexp encoding\n got: %q\nwant: %q", resp.Report, want)
	}
}

// TestHealthzAndDebug covers the liveness and debug surfaces.
func TestHealthzAndDebug(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "{\"status\":\"ok\"}\n" {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("debug/vars: status %d", resp.StatusCode)
	}

	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || string(body) != "{\"status\":\"draining\"}\n" {
		t.Errorf("draining healthz: %d %q", resp.StatusCode, body)
	}
}

// TestErrorEnvelopes spot-checks the HTTP error mapping: every failure is a
// JSON envelope with a stable code.
func TestErrorEnvelopes(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	cases := []struct {
		name   string
		path   string
		method string
		body   string
		status int
		code   string
	}{
		{"method", "/v1/align", http.MethodGet, "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"bad json", "/v1/align", http.MethodPost, "{", http.StatusBadRequest, "bad_json"},
		{"unknown field", "/v1/align", http.MethodPost, `{"bogus":1}`, http.StatusBadRequest, "bad_json"},
		{"trailing data", "/v1/align", http.MethodPost, `{"asm":"x","profile":"y"} {}`, http.StatusBadRequest, "bad_json"},
		{"missing asm", "/v1/align", http.MethodPost, `{"profile":"y"}`, http.StatusBadRequest, "bad_request"},
		{"bad asm", "/v1/align", http.MethodPost, `{"asm":"bogus !","profile":"y"}`, http.StatusBadRequest, "bad_asm"},
		{"bad arch", "/v1/simulate", http.MethodPost, `{"asm":"x","archs":["vax"]}`, http.StatusBadRequest, "bad_request"},
		{"both modes", "/v1/simulate", http.MethodPost, `{"asm":"x","programs":["ora"]}`, http.StatusBadRequest, "bad_request"},
		{"neither mode", "/v1/simulate", http.MethodPost, `{}`, http.StatusBadRequest, "bad_request"},
		{"too large", "/v1/align", http.MethodPost, `{"asm":"` + string(bytes.Repeat([]byte{'a'}, 4096)) + `"}`,
			http.StatusRequestEntityTooLarge, "body_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			var env errEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("body is not an error envelope: %v (%s)", err, body)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.code)
			}
		})
	}
}

// TestCacheDeterminism hammers one key from many goroutines and asserts
// every response body is byte-identical, then that a follow-up request is
// served from the cache.
func TestCacheDeterminism(t *testing.T) {
	rec := obs.New("test")
	s, ts := newTestServer(t, Config{Obs: rec})
	req := alignRequest(t)

	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, body := post(t, ts.URL+"/v1/align", req)
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, body)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("concurrent identical requests returned different bodies")
		}
	}

	status, hdr, body := post(t, ts.URL+"/v1/align", req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if hdr.Get("X-Balign-Cache") != "hit" {
		t.Errorf("expected a cache hit, got %q", hdr.Get("X-Balign-Cache"))
	}
	if !bytes.Equal(body, bodies[0]) {
		t.Errorf("cached body differs from computed body")
	}
	if st := s.CacheStats(); st.Hits == 0 || st.Entries == 0 {
		t.Errorf("cache stats did not record the traffic: %+v", st)
	}
}

// TestParallelMixedRequests runs a mixed workload under -race: aligns and
// inline simulations interleaved across every server mode knob left at
// defaults.
func TestParallelMixedRequests(t *testing.T) {
	// Enough slots and queue patience that nothing is turned away: this
	// test is about data races under mixed load, not admission control.
	_, ts := newTestServer(t, Config{MaxInFlight: 16, QueueWait: 2 * time.Minute})
	reqs := []struct {
		path string
		req  map[string]any
	}{
		{"/v1/align", alignRequest(t)},
		{"/v1/simulate", simulateInlineVM(t)},
		{"/v1/simulate", simulateInlineWalk(t)},
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tc := reqs[i%len(reqs)]
			status, _, body := post(t, ts.URL+tc.path, tc.req)
			if status != http.StatusOK {
				t.Errorf("%s: status %d: %s", tc.path, status, body)
			}
		}(i)
	}
	wg.Wait()
}

// TestSaturationReturns429 holds the single admission slot with a parked
// request and asserts the next request is rejected with 429 — and that the
// rejection neither corrupts nor evicts already-cached entries.
func TestSaturationReturns429(t *testing.T) {
	s, err := New(Config{MaxInFlight: 1, QueueWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed the cache while the server is idle.
	req := alignRequest(t)
	status, _, cached := post(t, ts.URL+"/v1/align", req)
	if status != http.StatusOK {
		t.Fatalf("seed request: status %d", status)
	}

	s.testBlock = make(chan struct{})
	done := make(chan []byte, 1)
	go func() {
		_, _, body := post(t, ts.URL+"/v1/simulate", simulateInlineVM(t))
		done <- body
	}()
	waitFor(t, func() bool { return s.InFlight() == 1 })

	status, _, body := post(t, ts.URL+"/v1/align", req)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429 (%s)", status, body)
	}
	var env errEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "saturated" {
		t.Errorf("429 envelope = %s (err %v)", body, err)
	}

	close(s.testBlock)
	<-done
	s.testBlock = nil

	// The rejected request must not have disturbed the cached entry.
	status, hdr, body := post(t, ts.URL+"/v1/align", req)
	if status != http.StatusOK || hdr.Get("X-Balign-Cache") != "hit" || !bytes.Equal(body, cached) {
		t.Errorf("cache disturbed by saturation: status %d cache %q identical %v",
			status, hdr.Get("X-Balign-Cache"), bytes.Equal(body, cached))
	}
}

// TestDrainRejectsNewWorkAndFinishesInFlight proves graceful shutdown
// semantics: after BeginDrain new requests get 503 while an already
// admitted request still completes successfully.
func TestDrainRejectsNewWorkAndFinishesInFlight(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.testBlock = make(chan struct{})
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		status, _, body := post(t, ts.URL+"/v1/align", alignRequest(t))
		done <- result{status, body}
	}()
	waitFor(t, func() bool { return s.InFlight() == 1 })

	s.BeginDrain()
	status, hdr, body := post(t, ts.URL+"/v1/align", alignRequest(t))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503 (%s)", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After")
	}

	close(s.testBlock)
	r := <-done
	if r.status != http.StatusOK {
		t.Errorf("in-flight request failed during drain: %d %s", r.status, r.body)
	}
	waitFor(t, func() bool { return s.InFlight() == 0 })
}

// TestSimulateDeadlineFreesStream is the serve-level cancellation
// regression test: a /v1/simulate whose work exceeds the per-request
// deadline must come back 504 promptly — not after draining the whole
// trace — and the shared streamer's ring gauges must be back to zero,
// proving the broadcast released every buffer.
func TestSimulateDeadlineFreesStream(t *testing.T) {
	s, ts := newTestServer(t, Config{Timeout: 150 * time.Millisecond})
	req := simulateInlineWalk(t)
	req["max_instrs"] = 1 << 24
	req["algos"] = []string{"orig"}

	start := time.Now()
	status, _, body := post(t, ts.URL+"/v1/simulate", req)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", status, body)
	}
	var env errEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "deadline_exceeded" {
		t.Errorf("504 envelope = %s (err %v)", body, err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancelled request took %v; cancellation is not prompt", elapsed)
	}
	if st := s.Streamer().Stats(); st.LiveBuffers != 0 || st.LiveBytes != 0 {
		t.Errorf("stream ring not released after cancel: %+v", st)
	}
}

// TestPanicRecovery injects a handler panic and asserts the 500 envelope.
func TestPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var recovered any
	s.panicHook = func(v any) { recovered = v }
	s.mux.HandleFunc("/v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	resp, err := http.Get(ts.URL + "/v1/boom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	var env errEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "internal" {
		t.Errorf("500 envelope = %s (err %v)", body, err)
	}
	if recovered != "kaboom" {
		t.Errorf("panic hook saw %v, want kaboom", recovered)
	}
}

// waitFor polls until cond holds, failing the test after a few seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLRUCacheBounds exercises the cache's entry and byte bounds directly.
func TestLRUCacheBounds(t *testing.T) {
	c := newResultCache(2, 100, nil)
	c.Put("a", bytes.Repeat([]byte{'a'}, 40))
	c.Put("b", bytes.Repeat([]byte{'b'}, 40))
	c.Put("c", bytes.Repeat([]byte{'c'}, 40)) // evicts a (entries fine, bytes 120 > 100)
	if _, ok := c.Get("a"); ok {
		t.Errorf("a survived the byte bound")
	}
	if _, ok := c.Get("b"); !ok {
		t.Errorf("b evicted prematurely")
	}
	// First write wins.
	c.Put("b", []byte("replacement"))
	got, _ := c.Get("b")
	if string(got) == "replacement" {
		t.Errorf("duplicate Put replaced an existing body")
	}
	// Oversized bodies are not cached.
	c.Put("huge", bytes.Repeat([]byte{'h'}, 200))
	if _, ok := c.Get("huge"); ok {
		t.Errorf("oversized body was cached")
	}
	st := c.Stats()
	if st.Evictions == 0 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
	// A nil cache is a valid no-op.
	var nilCache *resultCache
	nilCache.Put("x", []byte("y"))
	if _, ok := nilCache.Get("x"); ok {
		t.Errorf("nil cache hit")
	}
	if st := nilCache.Stats(); st != (CacheStats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
}
