package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
)

// endpointDef ties one POST API endpoint's URL path to its request parser
// and compute method. The table is the single source of truth for what the
// service exposes: New registers handlers from it, and the consistent-hash
// router derives request ownership from the same parsers via RequestKey —
// which is what guarantees a routed request computes the exact cache key
// its backend shard will use.
type endpointDef struct {
	name    string
	path    string
	parse   func([]byte) (any, *apiError)
	compute func(*Server, context.Context, any) (any, *apiError)
}

// endpoints lists the POST API surface in registration order.
var endpoints = []endpointDef{
	{"align", "/v1/align", parseAlignRequest, (*Server).computeAlign},
	{"simulate", "/v1/simulate", parseSimulateRequest, (*Server).computeSimulate},
}

// EndpointPaths returns the POST API paths in registration order — exactly
// the set of paths the shard router proxies by cache key.
func EndpointPaths() []string {
	paths := make([]string, len(endpoints))
	for i, e := range endpoints {
		paths[i] = e.path
	}
	return paths
}

// RequestKey parses body as a request for the endpoint at path and returns
// the sha256 cache key the backend will derive for it: the same
// parse-canonicalize-hash pipeline serveAPI runs, refactored out of the
// handler so the router's shard choice and the backend's cache lookup can
// never disagree. It fails for unknown paths and for bodies the endpoint's
// parser rejects (the backend would answer those with an error envelope, so
// they have no cache key).
func RequestKey(path string, body []byte) (string, error) {
	for _, e := range endpoints {
		if e.path != path {
			continue
		}
		req, aerr := e.parse(body)
		if aerr != nil {
			return "", fmt.Errorf("parsing %s request: %w", e.name, aerr)
		}
		key, aerr := cacheKey(e.name, req)
		if aerr != nil {
			return "", fmt.Errorf("canonicalizing %s request: %w", e.name, aerr)
		}
		return key, nil
	}
	return "", fmt.Errorf("no API endpoint at %q", path)
}

// RawBodyKey is the routing fallback for bodies RequestKey rejects: a
// deterministic content hash of the raw bytes, so even malformed requests
// route stably (and their error envelopes come from one shard, not many).
func RawBodyKey(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// WriteErrorEnvelope writes the service's uniform JSON error envelope
// without touching any server state — the shard router shares it so
// proxied and locally generated failures look alike to clients.
func WriteErrorEnvelope(w http.ResponseWriter, status int, code, msg string) {
	writeError(w, nil, status, code, msg)
}
