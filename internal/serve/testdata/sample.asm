; sample: serve-layer fixture with alignment-sensitive control flow.
; The main loop's conditional is skewed 7:1 toward `common`, so the
; original layout (hot path = taken branch) leaves cycles on the table
; that the alignment algorithms recover; `rare` carries an unconditional
; detour the rewriter can remove.
mem 64
entry main

proc main
    li r1, 200
loop:
    addi r2, r2, 1
    andi r3, r2, 7
    bnez r3, common
    addi r4, r4, 1
    br join
common:
    addi r5, r5, 2
join:
    addi r1, r1, -1
    bnez r1, loop
    call helper
    halt
endproc

proc helper
    li r6, 24
hloop:
    addi r7, r7, 3
    addi r6, r6, -1
    bnez r6, hloop
    ret
endproc
