// Package router scales balignd out horizontally: a consistent-hash
// router that owns no simulation state of its own, forwarding each API
// request to one of N shared-nothing backend shards chosen by the
// request's result-cache key.
//
// Key ownership is the design's load-bearing invariant. The backend's LRU
// result cache is keyed by sha256 of (endpoint, canonical request); the
// router derives the same key from the same parsers (serve.RequestKey)
// and hashes it onto a ring of virtual nodes, so every repetition of a
// request lands on the shard that cached it the first time. Per-shard
// caches therefore keep their hit rates under sharding — no shared cache,
// no invalidation traffic, no coordination at all on the hot path.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the per-shard virtual-node count. 128 points per shard
// keeps the largest/smallest ownership arc within a few percent of even
// for the shard counts this repo targets (1–16).
const DefaultVNodes = 128

// Ring maps request cache keys onto shard slots [0, n). It is immutable
// after construction and safe for concurrent use; shard slots are stable
// identities (the supervisor may restart the process behind a slot and
// swap its address without disturbing key ownership).
type Ring struct {
	shards int
	hashes []uint64 // sorted virtual-node positions
	owner  []int    // owner[i] = shard owning hashes[i]
}

// NewRing builds a ring of shards*vnodes points (vnodes <= 0 means
// DefaultVNodes). shards must be positive.
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("ring needs a positive shard count, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	type point struct {
		hash  uint64
		shard int
	}
	points := make([]point, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			points = append(points, point{hash64(fmt.Sprintf("shard-%d/vnode-%d", s, v)), s})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// A 64-bit collision between two labels is vanishingly unlikely,
		// but the tie must still break deterministically.
		return points[i].shard < points[j].shard
	})
	r := &Ring{
		shards: shards,
		hashes: make([]uint64, len(points)),
		owner:  make([]int, len(points)),
	}
	for i, p := range points {
		r.hashes[i] = p.hash
		r.owner[i] = p.shard
	}
	return r, nil
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Lookup returns the shard owning key: the first virtual node clockwise
// from the key's hash. A pure function of (key, shards, vnodes) — the
// property the router correctness suite pins.
func (r *Ring) Lookup(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap: the lowest point owns the arc above the highest
	}
	return r.owner[i]
}

// hash64 is FNV-1a over the key bytes pushed through a splitmix64
// finalizer: fast, dependency-free, and stable across processes and Go
// versions (unlike hash/maphash). Raw FNV-1a disperses short structured
// labels like "shard-0/vnode-17" poorly — neighboring labels cluster on
// the ring and one shard ends up owning huge arcs — so the finalizer's
// avalanche is what actually balances ownership.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}
