// Router correctness suite (run with -race in make suite-smoke's load leg):
//
//   - shard affinity: the ring is a pure function of (key, shards), so the
//     same cache key always lands on the same shard, across ring instances
//     and processes, for every shard count the repo targets;
//   - byte identity: a response served through the router is byte-identical
//     to the same request served by a standalone backend, for all five
//     request encodings;
//   - cache-hit survival: repeating a request through the router hits the
//     owning shard's result cache — sharding does not cost hit rate;
//   - drain/fault: restarting a backend mid-run loses no requests — the
//     router honors the draining shard's Retry-After, retries once, and
//     every in-flight request completes.
package router_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"balign/internal/load"
	"balign/internal/obs"
	"balign/internal/serve"
	"balign/internal/serve/router"
)

// fiveKindMix weights every request encoding equally so a small corpus
// still covers all of them.
func fiveKindMix() []load.MixItem {
	return []load.MixItem{
		{Kind: load.KindAlignAsm, Weight: 1},
		{Kind: load.KindAlignCFGJSON, Weight: 1},
		{Kind: load.KindAlignCFGDOT, Weight: 1},
		{Kind: load.KindSimInline, Weight: 1},
		{Kind: load.KindSimSuite, Weight: 1},
	}
}

func buildCorpus(t *testing.T, seed int64, size int) *load.Corpus {
	t.Helper()
	c, err := load.BuildCorpus(seed, size, fiveKindMix())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// backend is one live serve.Server on a real listener.
type backend struct {
	srv  *serve.Server
	hs   *http.Server
	ln   net.Listener
	done chan error
}

func (b *backend) url() string { return "http://" + b.ln.Addr().String() }

func startBackend(t *testing.T, addr string) *backend {
	t.Helper()
	srv, err := serve.New(serve.Config{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	b := &backend{srv: srv, ln: ln, hs: &http.Server{Handler: srv.Handler()}, done: make(chan error, 1)}
	go func() { b.done <- b.hs.Serve(ln) }()
	t.Cleanup(func() { b.hs.Close() })
	return b
}

// drainAndStop takes the backend through balignd's graceful path: drain
// flag first, then http.Server.Shutdown waiting out in-flight requests.
func (b *backend) drainAndStop(t *testing.T) {
	t.Helper()
	b.srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.hs.Shutdown(ctx); err != nil {
		t.Errorf("backend shutdown: %v", err)
	}
}

func post(t *testing.T, base, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s%s: %v", base, path, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func startRouter(t *testing.T, cfg router.Config) (*router.Router, string) {
	t.Helper()
	rt, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: rt.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return rt, "http://" + ln.Addr().String()
}

// TestShardAffinityProperty pins the routing invariant: for every shard
// count, a key's shard is a pure function of the key — identical across
// independently built rings (i.e. across router processes and restarts).
func TestShardAffinityProperty(t *testing.T) {
	corpus := buildCorpus(t, 11, 20)
	for _, n := range []int{1, 2, 4} {
		r1, err := router.NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := router.NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range corpus.Entries {
			s1, s2 := r1.Lookup(e.Key), r2.Lookup(e.Key)
			if s1 != s2 {
				t.Fatalf("shards=%d key %s: ring instances disagree (%d vs %d)", n, e.Key[:12], s1, s2)
			}
			if s1 < 0 || s1 >= n {
				t.Fatalf("shards=%d key %s: shard %d out of range", n, e.Key[:12], s1)
			}
			if again := r1.Lookup(e.Key); again != s1 {
				t.Fatalf("shards=%d key %s: lookup not stable (%d then %d)", n, e.Key[:12], s1, again)
			}
		}
		if n == 1 {
			for _, e := range corpus.Entries {
				if r1.Lookup(e.Key) != 0 {
					t.Fatal("single-shard ring must map everything to shard 0")
				}
			}
		}
	}
}

// TestRingBalance guards the vnode hash dispersion: with 128 vnodes per
// shard no shard may own much more than its fair share of keyspace. (Raw
// FNV-1a point hashes failed this badly — max/mean 1.6 at 2 shards.)
func TestRingBalance(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 4, 8} {
		r, err := router.NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for i := 0; i < keys; i++ {
			counts[r.Lookup(fmt.Sprintf("%064x", i*2654435761))]++
		}
		maxC := 0
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		if ratio := float64(maxC) * float64(n) / keys; ratio > 1.35 {
			t.Errorf("shards=%d: max/mean ownership %.3f > 1.35 (counts %v)", n, ratio, counts)
		}
	}
}

// TestRoutedByteIdentity sends every request encoding both to a standalone
// backend and through a 2-shard router, and requires byte-identical
// response bodies plus matching status and cache headers.
func TestRoutedByteIdentity(t *testing.T) {
	corpus := buildCorpus(t, 21, 5)

	direct := startBackend(t, "127.0.0.1:0")
	b0 := startBackend(t, "127.0.0.1:0")
	b1 := startBackend(t, "127.0.0.1:0")
	_, base := startRouter(t, router.Config{Backends: []string{b0.url(), b1.url()}})

	seen := map[string]bool{}
	for _, e := range corpus.Entries {
		if seen[e.Kind] {
			continue
		}
		seen[e.Kind] = true
		dResp, dBody := post(t, direct.url(), e.Path, e.Body)
		rResp, rBody := post(t, base, e.Path, e.Body)
		if dResp.StatusCode != rResp.StatusCode {
			t.Errorf("%s: direct status %d, routed %d", e.Kind, dResp.StatusCode, rResp.StatusCode)
		}
		if !bytes.Equal(dBody, rBody) {
			t.Errorf("%s: routed response differs from direct (%d vs %d bytes)", e.Kind, len(rBody), len(dBody))
		}
		if ct := rResp.Header.Get("Content-Type"); ct != dResp.Header.Get("Content-Type") {
			t.Errorf("%s: Content-Type %q differs from direct", e.Kind, ct)
		}
		if rResp.Header.Get("X-Balign-Shard") == "" {
			t.Errorf("%s: routed response missing X-Balign-Shard", e.Kind)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("corpus covered %d kinds, want all 5", len(seen))
	}
}

// TestCacheHitsSurviveSharding repeats every corpus entry through a 2-shard
// router: the first request computes, the repeat must hit the owning
// shard's result cache and land on the same shard.
func TestCacheHitsSurviveSharding(t *testing.T) {
	corpus := buildCorpus(t, 31, 5)
	b0 := startBackend(t, "127.0.0.1:0")
	b1 := startBackend(t, "127.0.0.1:0")
	rt, base := startRouter(t, router.Config{Backends: []string{b0.url(), b1.url()}})

	shardsHit := map[string]bool{}
	for _, e := range corpus.Entries {
		r1, body1 := post(t, base, e.Path, e.Body)
		if r1.StatusCode != http.StatusOK {
			t.Fatalf("%s: first request got %d: %s", e.Kind, r1.StatusCode, body1)
		}
		if got := r1.Header.Get("X-Balign-Cache"); got != "miss" {
			t.Errorf("%s: first request cache header %q, want miss", e.Kind, got)
		}
		r2, body2 := post(t, base, e.Path, e.Body)
		if got := r2.Header.Get("X-Balign-Cache"); got != "hit" {
			t.Errorf("%s: repeat request cache header %q, want hit", e.Kind, got)
		}
		if s1, s2 := r1.Header.Get("X-Balign-Shard"), r2.Header.Get("X-Balign-Shard"); s1 != s2 {
			t.Errorf("%s: repeat landed on shard %s, first on %s", e.Kind, s2, s1)
		} else {
			shardsHit[s1] = true
		}
		if !bytes.Equal(body1, body2) {
			t.Errorf("%s: cached response differs from computed response", e.Kind)
		}
		if want := rt.ShardFor(e.Path, e.Body); fmt.Sprint(want) != r1.Header.Get("X-Balign-Shard") {
			t.Errorf("%s: ShardFor says %d, response header says %s", e.Kind, want, r1.Header.Get("X-Balign-Shard"))
		}
	}
}

// TestDrainFaultRetry is the fault-injection leg: while a steady stream of
// requests flows through a 2-shard router, one backend is drained (503 +
// Retry-After, in-flight work completing) and restarted on the same
// address. Every request must still succeed — the router absorbs both the
// draining window and the connection-refused window with its single retry.
func TestDrainFaultRetry(t *testing.T) {
	// Align-only corpus: recomputing a lost cache entry after the restart
	// costs milliseconds, so the stream stays live through the fault even
	// on a single-CPU runner under the race detector.
	corpus, err := load.BuildCorpus(41, 6, []load.MixItem{
		{Kind: load.KindAlignAsm, Weight: 1},
		{Kind: load.KindAlignCFGJSON, Weight: 1},
		{Kind: load.KindAlignCFGDOT, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New("router-test")

	b0 := startBackend(t, "127.0.0.1:0")
	b1 := startBackend(t, "127.0.0.1:0")
	addr0 := b0.ln.Addr().String()
	// RetryWait must outlast the deliberate down window below, so a
	// connection-refused retry always lands after the rebind.
	_, base := startRouter(t, router.Config{
		Backends:  []string{b0.url(), b1.url()},
		RetryWait: 300 * time.Millisecond,
		Obs:       rec,
	})

	// Warm every key so the stream is fast cache hits and the drain window
	// reliably overlaps live traffic.
	for _, e := range corpus.Entries {
		if r, body := post(t, base, e.Path, e.Body); r.StatusCode != http.StatusOK {
			t.Fatalf("warmup %s: %d: %s", e.Kind, r.StatusCode, body)
		}
	}

	const workers = 4
	const perWorker = 30
	var wg sync.WaitGroup
	var bad int32
	var badMu sync.Mutex
	var failures []string
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < perWorker; i++ {
				e := corpus.Entries[(w+i)%len(corpus.Entries)]
				resp, err := client.Post(base+e.Path, "application/json", bytes.NewReader(e.Body))
				if err != nil {
					badMu.Lock()
					bad++
					failures = append(failures, fmt.Sprintf("worker %d req %d: %v", w, i, err))
					badMu.Unlock()
					continue
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					badMu.Lock()
					bad++
					failures = append(failures, fmt.Sprintf("worker %d req %d: status %d: %.120s", w, i, resp.StatusCode, out))
					badMu.Unlock()
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(w)
	}

	// Mid-run: drain shard 0 gracefully, hold it down briefly (the
	// connection-refused window), then restart it on the same address so
	// the router's retry — after honoring Retry-After — finds it again.
	time.Sleep(100 * time.Millisecond)
	b0.drainAndStop(t)
	if got := b0.srv.InFlight(); got != 0 {
		t.Errorf("backend finished draining with %d requests in flight", got)
	}
	time.Sleep(50 * time.Millisecond)
	restarted := startBackend(t, addr0)
	if restarted.ln.Addr().String() != addr0 {
		t.Fatalf("restart rebound to %s, want %s", restarted.ln.Addr().String(), addr0)
	}

	wg.Wait()
	if bad != 0 {
		t.Fatalf("%d requests failed across the restart:\n%s", bad, failures[0])
	}
	counters := rec.Report().Counters
	if counters["router.retries"] == 0 {
		t.Error("restart window produced no retries — fault was not exercised")
	}
	if counters["router.retries"] != counters["router.retry_success"] {
		t.Errorf("retries %d but retry_success %d — some retries failed",
			counters["router.retries"], counters["router.retry_success"])
	}
}

// TestRouterDrainEnvelope checks the router's own drain behavior: after
// BeginDrain, API requests get the 503 draining envelope with Retry-After
// and /healthz reports draining.
func TestRouterDrainEnvelope(t *testing.T) {
	b0 := startBackend(t, "127.0.0.1:0")
	rt, base := startRouter(t, router.Config{Backends: []string{b0.url()}})
	rt.BeginDrain()
	if !rt.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	resp, body := post(t, base, "/v1/align", []byte(`{}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining router answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}
	if !bytes.Contains(body, []byte(`"draining"`)) {
		t.Errorf("draining envelope missing code: %s", body)
	}
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz answered %d, want 503", hresp.StatusCode)
	}
}
