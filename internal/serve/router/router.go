package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"balign/internal/obs"
	"balign/internal/serve"
)

// Defaults for the zero Config.
const (
	DefaultTimeout       = 60 * time.Second
	DefaultRetryWait     = 100 * time.Millisecond
	DefaultRetryAfterCap = 2 * time.Second
	DefaultProbeTimeout  = 2 * time.Second
	DefaultMaxBodyBytes  = 8 << 20
)

// Config configures a Router.
type Config struct {
	// Backends are the shard base URLs ("http://127.0.0.1:port"), one per
	// shard slot. Slot order defines key ownership; the supervisor may
	// swap a slot's URL after a restart without moving any keys.
	Backends []string
	// VNodes is the per-shard virtual-node count (<=0 = DefaultVNodes).
	VNodes int
	// MaxBodyBytes caps proxied request bodies (<=0 = DefaultMaxBodyBytes,
	// matching the backend default so the router rejects what the shard
	// would reject anyway, without spending a forward on it).
	MaxBodyBytes int64
	// Timeout bounds one proxied request end to end, retry included; the
	// deadline propagates to the backend through the outgoing request's
	// context (<=0 = DefaultTimeout).
	Timeout time.Duration
	// RetryWait is the pause before the single retry when the shard gave
	// no Retry-After hint (<=0 = DefaultRetryWait). A draining shard's
	// Retry-After is honored, capped at DefaultRetryAfterCap.
	RetryWait time.Duration
	// ProbeTimeout bounds each per-shard /healthz probe
	// (<=0 = DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// Obs receives router.* counters. Nil disables telemetry.
	Obs *obs.Recorder
}

func (c Config) timeout() time.Duration {
	if c.Timeout <= 0 {
		return DefaultTimeout
	}
	return c.Timeout
}

func (c Config) retryWait() time.Duration {
	if c.RetryWait <= 0 {
		return DefaultRetryWait
	}
	return c.RetryWait
}

func (c Config) probeTimeout() time.Duration {
	if c.ProbeTimeout <= 0 {
		return DefaultProbeTimeout
	}
	return c.ProbeTimeout
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return DefaultMaxBodyBytes
	}
	return c.MaxBodyBytes
}

// shard is one backend slot: a stable identity on the ring plus the
// (swappable) address of the process currently serving it.
type shard struct {
	index int
	url   atomic.Pointer[string]
}

// Router forwards API requests to backend shards by result-cache key.
// Create with New; a Router is safe for concurrent use.
type Router struct {
	cfg    Config
	obs    *obs.Recorder
	ring   *Ring
	shards []*shard
	client *http.Client
	mux    *http.ServeMux

	draining atomic.Bool
}

// New validates cfg and returns a ready Router.
func New(cfg Config) (*Router, error) {
	ring, err := NewRing(len(cfg.Backends), cfg.VNodes)
	if err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	rt := &Router{
		cfg:  cfg,
		obs:  cfg.Obs,
		ring: ring,
		mux:  http.NewServeMux(),
		client: &http.Client{
			// No client-level timeout: the per-request context carries the
			// deadline, so slow backends are cancelled with the request.
			Transport: &http.Transport{MaxIdleConnsPerHost: 64},
		},
	}
	for i, u := range cfg.Backends {
		if u == "" {
			return nil, fmt.Errorf("router: backend %d has an empty URL", i)
		}
		sh := &shard{index: i}
		sh.url.Store(&u)
		rt.shards = append(rt.shards, sh)
	}
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/shardz", rt.handleShardz)
	rt.mux.Handle("/debug/", obs.DebugHandler())
	for _, path := range serve.EndpointPaths() {
		path := path
		rt.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			rt.proxy(w, r, path)
		})
	}
	return rt, nil
}

// Handler returns the router's root handler.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.obs.Add("router.requests", 1)
		rt.mux.ServeHTTP(w, r)
	})
}

// Shards returns the shard count.
func (rt *Router) Shards() int { return rt.ring.Shards() }

// Backend returns shard i's current base URL.
func (rt *Router) Backend(i int) string { return *rt.shards[i].url.Load() }

// SetBackend swaps shard i's base URL — the supervisor calls this after
// restarting a crashed shard on a fresh ephemeral port. Key ownership is
// by slot, so the swap moves no keys.
func (rt *Router) SetBackend(i int, url string) error {
	if i < 0 || i >= len(rt.shards) {
		return fmt.Errorf("router: no shard %d", i)
	}
	if url == "" {
		return fmt.Errorf("router: shard %d: empty URL", i)
	}
	rt.shards[i].url.Store(&url)
	rt.obs.Add("router.backend_swaps", 1)
	return nil
}

// ShardFor reports which shard slot owns the request (path, body) — the
// exact routing decision proxy makes, exposed for tests and tooling.
func (rt *Router) ShardFor(path string, body []byte) int {
	key, err := serve.RequestKey(path, body)
	if err != nil {
		key = serve.RawBodyKey(body)
	}
	return rt.ring.Lookup(key)
}

// BeginDrain puts the router into draining mode: /healthz reports 503 and
// new API requests are rejected, while forwards already in flight run to
// completion (http.Server.Shutdown waits for them).
func (rt *Router) BeginDrain() {
	if !rt.draining.Swap(true) {
		rt.obs.Add("router.drains", 1)
	}
}

// Draining reports whether BeginDrain has been called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// proxy is the forwarding pipeline for one API request: body cap, key
// derivation, shard choice, forward with deadline propagation, single
// retry across a shard restart, byte-exact response passthrough.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, path string) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rt.obs.Add("router.errors", 1)
		serve.WriteErrorEnvelope(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	if rt.draining.Load() {
		w.Header().Set("Retry-After", "1")
		rt.obs.Add("router.errors", 1)
		serve.WriteErrorEnvelope(w, http.StatusServiceUnavailable, "draining",
			"router is draining; retry against another instance")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.maxBodyBytes()))
	r.Body.Close()
	if err != nil {
		rt.obs.Add("router.errors", 1)
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			serve.WriteErrorEnvelope(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return
		}
		serve.WriteErrorEnvelope(w, http.StatusBadRequest, "bad_body",
			fmt.Sprintf("reading request body: %v", err))
		return
	}

	// Key ownership: the backend's own parse/canonicalize/hash pipeline.
	// Unparseable bodies still route deterministically (by raw content
	// hash) so their error envelopes come from one shard.
	key, kerr := serve.RequestKey(path, body)
	if kerr != nil {
		key = serve.RawBodyKey(body)
		rt.obs.Add("router.raw_keys", 1)
	}
	idx := rt.ring.Lookup(key)
	rt.obs.Add(fmt.Sprintf("router.shard.%d.requests", idx), 1)

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.timeout())
	defer cancel()

	status, hdr, respBody, err := rt.forward(ctx, idx, path, body)
	if retryable, wait := rt.retryDecision(status, respBody, err, hdr); retryable {
		rt.obs.Add("router.retries", 1)
		if sleepCtx(ctx, wait) {
			// Re-resolve the shard URL: a restarted shard may be listening
			// on a fresh ephemeral port by now.
			s2, h2, b2, e2 := rt.forward(ctx, idx, path, body)
			if e2 == nil {
				status, hdr, respBody, err = s2, h2, b2, nil
				rt.obs.Add("router.retry_success", 1)
			} else {
				err = e2
			}
		}
	}
	if err != nil {
		rt.obs.Add("router.errors", 1)
		if ctx.Err() != nil {
			serve.WriteErrorEnvelope(w, http.StatusGatewayTimeout, "deadline_exceeded",
				"request deadline exceeded")
			return
		}
		serve.WriteErrorEnvelope(w, http.StatusBadGateway, "backend_unreachable",
			fmt.Sprintf("shard %d: %v", idx, err))
		return
	}

	// Byte-exact passthrough: the routed response is the shard's response.
	for _, h := range []string{"Content-Type", "X-Balign-Cache", "Retry-After"} {
		if v := hdr.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Balign-Shard", strconv.Itoa(idx))
	w.WriteHeader(status)
	w.Write(respBody)
	rt.obs.Add("router.forwarded", 1)
}

// forward sends one POST to shard idx and reads the full response.
func (rt *Router) forward(ctx context.Context, idx int, path string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		rt.Backend(idx)+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("reading shard response: %w", err)
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// retryDecision implements the single-retry policy: retry on any transport
// error (requests are deterministic computations keyed by content, so a
// duplicate send is always safe) and on a shard's draining 503 — the two
// shapes a shard restart presents. The wait honors the shard's Retry-After
// hint, capped, and falls back to the configured retry wait.
func (rt *Router) retryDecision(status int, body []byte, err error, hdr http.Header) (bool, time.Duration) {
	wait := rt.cfg.retryWait()
	if err != nil {
		return true, wait
	}
	if status != http.StatusServiceUnavailable {
		return false, 0
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if jsonErr := json.Unmarshal(body, &env); jsonErr != nil || env.Error.Code != "draining" {
		return false, 0
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
			hinted := time.Duration(secs) * time.Second
			if hinted > DefaultRetryAfterCap {
				hinted = DefaultRetryAfterCap
			}
			if hinted > wait {
				wait = hinted
			}
		}
	}
	return true, wait
}

// sleepCtx sleeps d unless ctx expires first; reports whether the full
// wait completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// shardHealth is one shard's probe outcome in the /shardz report.
type shardHealth struct {
	Index  int    `json:"index"`
	URL    string `json:"url"`
	Status string `json:"status"` // ok | draining | unreachable
	Detail string `json:"detail,omitempty"`
}

// probeShards checks every shard's /healthz concurrently.
func (rt *Router) probeShards(ctx context.Context) []shardHealth {
	out := make([]shardHealth, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := rt.Backend(i)
			h := shardHealth{Index: i, URL: url}
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.probeTimeout())
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/healthz", nil)
			if err != nil {
				h.Status, h.Detail = "unreachable", err.Error()
				out[i] = h
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				h.Status, h.Detail = "unreachable", err.Error()
				out[i] = h
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				h.Status = "ok"
			case http.StatusServiceUnavailable:
				h.Status = "draining"
			default:
				h.Status, h.Detail = "unreachable", fmt.Sprintf("healthz status %d", resp.StatusCode)
			}
			out[i] = h
		}(i)
	}
	wg.Wait()
	return out
}

// handleHealthz is the aggregated liveness probe: 200 only when the router
// is serving and every shard's own /healthz answers ok; 503 while draining
// or with any shard down, so a load balancer in front of several routers
// drops a degraded instance.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		serve.WriteErrorEnvelope(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if rt.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	health := rt.probeShards(r.Context())
	ok := 0
	for _, h := range health {
		if h.Status == "ok" {
			ok++
		}
	}
	if ok == len(health) {
		fmt.Fprintf(w, "{\"status\":\"ok\",\"shards\":%d}\n", len(health))
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintf(w, "{\"status\":\"degraded\",\"shards\":%d,\"healthy\":%d}\n", len(health), ok)
}

// handleShardz reports per-shard health as JSON.
func (rt *Router) handleShardz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		serve.WriteErrorEnvelope(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	health := rt.probeShards(r.Context())
	out, err := json.MarshalIndent(struct {
		Draining bool          `json:"draining"`
		Shards   []shardHealth `json:"shards"`
	}{rt.draining.Load(), health}, "", "  ")
	if err != nil {
		serve.WriteErrorEnvelope(w, http.StatusInternalServerError, "internal",
			fmt.Sprintf("encoding shard health: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(out, '\n'))
}
