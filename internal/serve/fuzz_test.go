package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// FuzzAlignHandler throws arbitrary bodies at POST /v1/align and asserts
// the hardening contract: the handler never panics (the recovery
// middleware's hook re-panics so a handler panic surfaces as a fuzz crash
// instead of a silent 500), and every response — success or failure — is
// valid JSON, with non-200s always carrying the error envelope.
func FuzzAlignHandler(f *testing.F) {
	s, err := New(Config{
		CacheEntries: -1, // no result cache: every input exercises the full path
		Timeout:      5 * time.Second,
		MaxBodyBytes: 1 << 16,
	})
	if err != nil {
		f.Fatal(err)
	}
	s.panicHook = func(v any) { panic(v) }
	handler := s.Handler()

	// Seed with a fully valid request built from the committed fixtures,
	// plus the committed corpus under testdata/fuzz/FuzzAlignHandler.
	asmSrc, err := os.ReadFile(filepath.Join("testdata", "sample.asm"))
	if err != nil {
		f.Fatal(err)
	}
	profSrc, err := os.ReadFile(filepath.Join("testdata", "sample.prof"))
	if err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(map[string]any{
		"name": "sample", "asm": string(asmSrc), "profile": string(profSrc),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"asm":"proc main\n halt\nendproc\n","profile":"program p\ninstrs 1\n"}`))
	f.Add([]byte(`{"asm":"`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/align", bytes.NewReader(body))
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, req)

		resp := w.Result()
		defer resp.Body.Close()
		out := w.Body.Bytes()
		if !json.Valid(out) {
			t.Fatalf("status %d: response is not valid JSON: %q", resp.StatusCode, out)
		}
		if resp.StatusCode == http.StatusOK {
			return
		}
		var env errEnvelope
		if err := json.Unmarshal(out, &env); err != nil {
			t.Fatalf("status %d: not an error envelope: %v (%q)", resp.StatusCode, err, out)
		}
		if env.Error.Code == "" || env.Error.Message == "" {
			t.Fatalf("status %d: empty error envelope fields: %q", resp.StatusCode, out)
		}
	})
}
