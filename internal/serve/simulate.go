package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"balign/internal/asm"
	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/experiments"
	"balign/internal/ir"
	"balign/internal/metrics"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/sim"
	"balign/internal/trace"
	"balign/internal/vm"
	"balign/internal/workload"
)

// Inline trace budgets: VM programs run to completion under a step cap,
// stochastic walks are event-budgeted like the suite's synthetic workloads.
const (
	defaultVMSteps   = 1 << 22
	defaultWalkSteps = 1 << 20
	maxInlineSteps   = 1 << 26
)

// SimulateRequest is the /v1/simulate body. It has two mutually exclusive
// shapes:
//
//   - suite mode: Programs names workloads from the paper's suite; the
//     evaluation grid runs through internal/experiments exactly as
//     `baexp suite` does, and Report is byte-identical to its output.
//
//   - inline mode: Asm (plus optionally Profile) supplies the program; it
//     is aligned per algorithm and stream-simulated across the requested
//     architectures.
//
// The executor kernel and trace lifecycle are server configuration, not
// request fields: responses are byte-identical across flat/ref and
// streamed/recorded servers, and the golden tests pin that four-way parity.
type SimulateRequest struct {
	// Suite mode.
	Programs []string `json:"programs,omitempty"`
	// Scale multiplies the suite trace budgets (0 = 1.0).
	Scale float64 `json:"scale,omitempty"`

	// Inline mode.
	Name string `json:"name,omitempty"`
	Asm  string `json:"asm,omitempty"`
	// Profile is the edge profile in batrace's text format. Optional with
	// the vm generator (a training run collects one); required for walk.
	Profile string `json:"profile,omitempty"`
	// Generator picks how inline traces are produced: "vm" executes the
	// program, "walk" samples the profile's behaviour model.
	Generator string `json:"generator"`
	// MaxInstrs bounds one inline generation (0 = a generator-specific
	// default; capped at 1<<26).
	MaxInstrs uint64 `json:"max_instrs,omitempty"`

	// Shared.
	// Seed perturbs suite workloads and inline walks.
	Seed int64 `json:"seed,omitempty"`
	// Archs lists simulated architectures (default: all, paper order).
	Archs []string `json:"archs"`
	// Algos lists alignment columns: orig, greedy, cost, try15, exttsp
	// (default all).
	Algos []string `json:"algos"`
	// Window is the TryN window size (0 = the paper's 15).
	Window int `json:"window,omitempty"`
}

// SummaryJSON is one evaluation cell in the response: metrics.Summary with
// a stable JSON schema.
type SummaryJSON struct {
	Program      string  `json:"program"`
	Arch         string  `json:"arch"`
	Algo         string  `json:"algo"`
	Instrs       uint64  `json:"instrs"`
	BEP          uint64  `json:"bep"`
	Events       uint64  `json:"events"`
	Misfetches   uint64  `json:"misfetches"`
	Mispredicts  uint64  `json:"mispredicts"`
	Cond         uint64  `json:"cond"`
	CondTaken    uint64  `json:"cond_taken"`
	CondCorrect  uint64  `json:"cond_correct"`
	ICFetches    uint64  `json:"ic_fetches,omitempty"`
	ICAccesses   uint64  `json:"ic_accesses,omitempty"`
	ICMisses     uint64  `json:"ic_misses,omitempty"`
	CPI          float64 `json:"cpi"`
	FallPct      float64 `json:"fall_pct"`
	CondAccuracy float64 `json:"cond_accuracy"`
	ICMPKI       float64 `json:"ic_mpki,omitempty"`
}

// SimulateResponse is the /v1/simulate result: the cell grid in canonical
// (program, arch, algo) order plus its stable text encoding — the same
// bytes `baexp suite` prints for the same inputs in suite mode.
type SimulateResponse struct {
	Mode      string        `json:"mode"`
	Summaries []SummaryJSON `json:"summaries"`
	Report    string        `json:"report"`
}

var validSimAlgos = map[string]bool{
	"orig": true, "greedy": true, "cost": true, "try15": true, "exttsp": true,
}

// parseSimulateRequest decodes and canonicalizes a simulate body.
func parseSimulateRequest(body []byte) (any, *apiError) {
	req := &SimulateRequest{}
	if aerr := decodeStrict(body, req); aerr != nil {
		return nil, aerr
	}
	suite := len(req.Programs) > 0
	inline := req.Asm != ""
	switch {
	case suite && inline:
		return nil, badRequest("bad_request", "programs and asm are mutually exclusive")
	case !suite && !inline:
		return nil, badRequest("bad_request", "either programs (suite mode) or asm (inline mode) is required")
	}
	if suite {
		if req.Name != "" || req.Profile != "" || req.Generator != "" || req.MaxInstrs != 0 {
			return nil, badRequest("bad_request", "name, profile, generator and max_instrs are inline-mode fields")
		}
		known := make(map[string]bool)
		for _, n := range workload.AllNames() {
			known[n] = true
		}
		for _, p := range req.Programs {
			if !known[p] {
				return nil, badRequest("bad_request", "unknown suite program %q (known: %s)",
					p, strings.Join(workload.AllNames(), ", "))
			}
		}
		if req.Scale < 0 || req.Scale > 4 {
			return nil, badRequest("bad_request", "scale %g out of range (0,4]", req.Scale)
		}
	} else {
		if req.Scale != 0 {
			return nil, badRequest("bad_request", "scale is a suite-mode field")
		}
		switch req.Generator {
		case "":
			req.Generator = "vm"
		case "vm":
		case "walk":
			if req.Profile == "" {
				return nil, badRequest("bad_request", "the walk generator requires a profile")
			}
		default:
			return nil, badRequest("bad_request", "unknown generator %q (known: vm, walk)", req.Generator)
		}
		if req.MaxInstrs > maxInlineSteps {
			return nil, badRequest("bad_request", "max_instrs %d exceeds the cap %d", req.MaxInstrs, maxInlineSteps)
		}
	}
	if len(req.Archs) == 0 {
		for _, a := range predict.AllArchs() {
			req.Archs = append(req.Archs, string(a))
		}
	}
	seen := make(map[string]bool)
	for _, a := range req.Archs {
		if _, ok := predict.Lookup(predict.ArchID(a)); !ok {
			return nil, badRequest("bad_request", "unknown architecture %q (known: %s)",
				a, strings.Join(predict.KnownArchNames(), ", "))
		}
		if seen[a] {
			return nil, badRequest("bad_request", "duplicate architecture %q", a)
		}
		seen[a] = true
	}
	if len(req.Algos) == 0 {
		req.Algos = []string{"orig", "greedy", "cost", "try15", "exttsp"}
	}
	seen = make(map[string]bool)
	for _, a := range req.Algos {
		if !validSimAlgos[a] {
			return nil, badRequest("bad_request", "unknown algorithm %q (known: cost, exttsp, greedy, orig, try15)", a)
		}
		if seen[a] {
			return nil, badRequest("bad_request", "duplicate algorithm %q", a)
		}
		seen[a] = true
	}
	if req.Window < 0 || req.Window > 24 {
		return nil, badRequest("bad_request", "window %d out of range [0,24]", req.Window)
	}
	return req, nil
}

// computeSimulate dispatches on the request mode.
func (s *Server) computeSimulate(ctx context.Context, reqAny any) (any, *apiError) {
	req := reqAny.(*SimulateRequest)
	var (
		summaries []metrics.Summary
		mode      string
		aerr      *apiError
	)
	if len(req.Programs) > 0 {
		mode = "suite"
		summaries, aerr = s.simulateSuite(ctx, req)
	} else {
		mode = "inline"
		summaries, aerr = s.simulateInline(ctx, req)
	}
	if aerr != nil {
		return nil, aerr
	}
	resp := &SimulateResponse{
		Mode:      mode,
		Summaries: make([]SummaryJSON, len(summaries)),
		Report:    metrics.EncodeSummaries(summaries),
	}
	for i, sm := range summaries {
		resp.Summaries[i] = SummaryJSON{
			Program: sm.Program, Arch: sm.Arch, Algo: sm.Algo,
			Instrs: sm.Instrs, BEP: sm.BEP, Events: sm.Events,
			Misfetches: sm.Misfetches, Mispredicts: sm.Mispredicts,
			Cond: sm.Cond, CondTaken: sm.CondTaken, CondCorrect: sm.CondCorrect,
			ICFetches: sm.ICFetches, ICAccesses: sm.ICAccesses, ICMisses: sm.ICMisses,
			CPI: sm.CPI, FallPct: sm.FallPct, CondAccuracy: sm.CondAccuracy,
			ICMPKI: sm.ICMPKI,
		}
	}
	return resp, nil
}

// simulateSuite runs named workloads through the experiment grid — the
// exact code path behind `baexp suite`, so the encoded report is
// byte-identical to that command's output for the same inputs.
func (s *Server) simulateSuite(ctx context.Context, req *SimulateRequest) ([]metrics.Summary, *apiError) {
	archs := make([]predict.ArchID, len(req.Archs))
	for i, a := range req.Archs {
		archs[i] = predict.ArchID(a)
	}
	cfg := experiments.Config{
		Scale:       req.Scale,
		Seed:        req.Seed,
		Window:      req.Window,
		Programs:    req.Programs,
		Kernel:      s.cfg.Kernel,
		Stream:      s.cfg.Stream,
		Parallelism: s.cfg.Parallelism,
		Obs:         s.obs,
		Ctx:         ctx,
	}
	summaries, err := experiments.Summaries(cfg, archs)
	if err != nil {
		return nil, &apiError{status: 422, code: "simulate_failed", msg: err.Error()}
	}
	keep := make(map[string]bool, len(req.Algos))
	for _, a := range req.Algos {
		keep[a] = true
	}
	kept := summaries[:0]
	for _, sm := range summaries {
		if keep[sm.Algo] {
			kept = append(kept, sm)
		}
	}
	return kept, nil
}

// inlineVariant is one aligned (or original) layout of the inline program
// together with the (arch, algo) cells that consume its trace.
type inlineVariant struct {
	prog  *ir.Program
	prof  *profile.Profile
	archs []predict.ArchID
	algos []string // index-aligned with archs
}

// simulateInline assembles the request's program, aligns it per algorithm —
// grouping architectures that the paper gives one shared alignment (both
// PHTs, both BTBs) — and simulates each variant's trace across its
// architectures, streamed or recorded per the server's configuration.
func (s *Server) simulateInline(ctx context.Context, req *SimulateRequest) ([]metrics.Summary, *apiError) {
	prog, err := asm.Assemble(req.Asm)
	if err != nil {
		return nil, badRequest("bad_asm", "%v", err)
	}
	name := req.Name
	if name == "" {
		name = prog.Name
	}
	budget := req.MaxInstrs
	if budget == 0 {
		if req.Generator == "walk" {
			budget = defaultWalkSteps
		} else {
			budget = defaultVMSteps
		}
	}

	// The training run: read the supplied profile, or collect one by
	// executing the original program. Either way origInstrs — the
	// relative-CPI denominator — comes from the original layout's own
	// generation, mirroring the suite's CollectProfile semantics.
	var (
		pf         *profile.Profile
		origInstrs uint64
		origRuns   int
	)
	if req.Profile != "" {
		pf, err = profile.Read(strings.NewReader(req.Profile))
		if err != nil {
			return nil, badRequest("bad_profile", "%v", err)
		}
	}
	switch req.Generator {
	case "walk":
		w := &trace.Walker{Prog: prog, Model: pf.Model(prog), Seed: req.Seed, MaxInstrs: budget}
		origInstrs, origRuns = w.Run(nil, nil)
	default:
		machine := vm.New(prog)
		machine.MaxSteps = budget
		var edges trace.EdgeSink
		var col *profile.Collector
		if pf == nil {
			col = profile.NewCollector(prog)
			edges = col
		}
		res, err := machine.Run(nil, edges)
		if err != nil {
			return nil, &apiError{status: 422, code: "run_failed", msg: err.Error()}
		}
		origInstrs = res.Instrs
		if col != nil {
			pf = col.Profile()
			pf.Instrs = origInstrs
		}
	}

	variants, order, aerr := buildInlineVariants(ctx, prog, pf, req)
	if aerr != nil {
		return nil, aerr
	}

	var summaries []metrics.Summary
	for _, key := range order {
		if err := ctx.Err(); err != nil {
			return nil, ctxError(err)
		}
		v := variants[key]
		instrs, results, aerr := s.simulateVariant(ctx, v, req, budget, origRuns)
		if aerr != nil {
			return nil, aerr
		}
		for i, r := range results {
			summaries = append(summaries, metrics.NewSummary(
				name, string(v.archs[i]), v.algos[i], origInstrs, instrs, r))
		}
	}
	// Canonical response order matches the suite's convention — rows
	// grouped by architecture, algorithms within — using the request's
	// arch/algo order, so bodies are deterministic across scheduling.
	archPos := make(map[string]int, len(req.Archs))
	for i, a := range req.Archs {
		archPos[a] = i
	}
	algoPos := make(map[string]int, len(req.Algos))
	for i, a := range req.Algos {
		algoPos[a] = i
	}
	sort.SliceStable(summaries, func(i, j int) bool {
		if summaries[i].Arch != summaries[j].Arch {
			return archPos[summaries[i].Arch] < archPos[summaries[j].Arch]
		}
		return algoPos[summaries[i].Algo] < algoPos[summaries[j].Algo]
	})
	return summaries, nil
}

// buildInlineVariants aligns the program once per distinct (algorithm,
// model/order group) and fans the requested architectures onto the shared
// variants, in first-need order.
func buildInlineVariants(ctx context.Context, prog *ir.Program, pf *profile.Profile,
	req *SimulateRequest) (map[string]*inlineVariant, []string, *apiError) {

	variants := make(map[string]*inlineVariant)
	var order []string
	add := func(key string, arch predict.ArchID, algo string) *inlineVariant {
		v, ok := variants[key]
		if !ok {
			v = &inlineVariant{}
			variants[key] = v
			order = append(order, key)
		}
		v.archs = append(v.archs, arch)
		v.algos = append(v.algos, algo)
		return v
	}
	// Variant grouping mirrors the suite: Greedy lays chains hottest-first
	// except for BT/FNT (Pettis-Hansen precedence order); Cost and Try15
	// align under each architecture's cost model, with architectures that
	// share a cost group in the registry (both PHTs, both BTBs, both tagged
	// predictors) sharing one variant; ExtTSP's objective is
	// architecture-independent, so one variant serves every architecture.
	keyFor := func(algo string, arch predict.ArchID) string {
		switch algo {
		case "orig":
			return "orig"
		case "exttsp":
			return "exttsp"
		case "greedy":
			if arch == predict.ArchBTFNT {
				return "greedy-btfnt"
			}
			return "greedy"
		default:
			// Archs were validated against the registry on request decode.
			d, _ := predict.Lookup(arch)
			return algo + "-" + string(d.CostGroup)
		}
	}
	for _, algo := range req.Algos {
		for _, a := range req.Archs {
			arch := predict.ArchID(a)
			v := add(keyFor(algo, arch), arch, algo)
			if v.prog != nil {
				continue
			}
			switch algo {
			case "orig":
				v.prog, v.prof = prog, pf
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, nil, ctxError(err)
			}
			opts := core.Options{Window: req.Window}
			switch algo {
			case "greedy":
				opts.Algorithm = core.AlgoGreedy
			case "exttsp":
				opts.Algorithm = core.AlgoExtTSP
			default: // cost, try15: model-guided, per architecture group
				m, err := cost.ForArch(arch)
				if err != nil {
					return nil, nil, badRequest("bad_request", "%v", err)
				}
				if algo == "cost" {
					opts.Algorithm = core.AlgoCost
				} else {
					opts.Algorithm = core.AlgoTryN
				}
				opts.Model = m
			}
			if algo != "exttsp" {
				if arch == predict.ArchBTFNT {
					opts.Order = core.OrderBTFNT
				} else {
					opts.Order = core.OrderHottest
				}
			}
			res, err := core.AlignProgram(prog, pf, opts)
			if err != nil {
				return nil, nil, &apiError{status: 422, code: "align_failed", msg: err.Error()}
			}
			v.prog, v.prof = res.Prog, res.Prof
		}
	}
	return variants, order, nil
}

// simulateVariant traces one variant and simulates it on all of its
// architectures, streaming through the server's shared broadcast stage or
// recording and replaying, per the server's stream mode. Both paths yield
// identical results — the repository's stream-vs-recorded oracles extend
// to the serve layer via the golden parity tests.
func (s *Server) simulateVariant(ctx context.Context, v *inlineVariant, req *SimulateRequest,
	budget uint64, origRuns int) (uint64, []predict.Result, *apiError) {

	gen := func(sink trace.Sink) (uint64, error) {
		if req.Generator == "walk" {
			w := &trace.Walker{Prog: v.prog, Model: v.prof.Model(v.prog), Seed: req.Seed, MaxInstrs: budget}
			if origRuns > 0 {
				// Work-equivalence with the original walk, as the suite's
				// workloads do for aligned variants.
				w.MaxRuns = origRuns
				w.MaxInstrs = budget * 3
			}
			instrs, _ := w.Run(sink, nil)
			return instrs, nil
		}
		machine := vm.New(v.prog)
		machine.MaxSteps = budget
		res, err := machine.Run(sink, nil)
		return res.Instrs, err
	}

	smode, _ := sim.ParseStreamMode(s.cfg.Stream)
	if smode == sim.StreamOff {
		rec, err := sim.Record(gen)
		if err != nil {
			return 0, nil, &apiError{status: 422, code: "simulate_failed", msg: err.Error()}
		}
		results := make([]predict.Result, len(v.archs))
		for i, arch := range v.archs {
			if err := ctx.Err(); err != nil {
				return 0, nil, ctxError(err)
			}
			r, err := s.exec.Simulate(arch, v.prog, v.prof, rec)
			if err != nil {
				return 0, nil, &apiError{status: 422, code: "simulate_failed", msg: err.Error()}
			}
			results[i] = r
		}
		return rec.Instrs, results, nil
	}

	lay, err := trace.CompileLayout(v.prog)
	if err != nil {
		return 0, nil, &apiError{status: 422, code: "simulate_failed", msg: err.Error()}
	}
	src := trace.NewFuncSource(lay, s.str.BatchCap(), gen)
	results, err := s.exec.SimulateStream(ctx, s.str, lay, src, v.prog, v.prof, v.archs)
	if err != nil {
		if aerr := ctx.Err(); aerr != nil {
			return 0, nil, ctxError(aerr)
		}
		return 0, nil, &apiError{status: 422, code: "simulate_failed", msg: fmt.Sprintf("%v", err)}
	}
	return src.Instrs(), results, nil
}
