// Package serve is the alignment-as-a-service layer: a hardened HTTP JSON
// server exposing the repository's whole pipeline — assemble → align →
// cost-model pricing → trace-driven simulation — as two POST endpoints,
// plus the standard health and debug surfaces.
//
//	POST /v1/align     assemble a program, align it under a cost model,
//	                   return the plan with per-algorithm and per-site
//	                   cost deltas (and optionally the rewritten assembly)
//	POST /v1/simulate  align and stream-simulate across requested
//	                   architectures — either inline assembly + profile or
//	                   named suite programs; the suite report is
//	                   byte-identical to `baexp suite` output
//	GET  /healthz      liveness (503 while draining)
//	GET  /debug/*      expvar + net/http/pprof via internal/obs
//
// Hardening, in request order: a drain flag that 503s new work during
// graceful shutdown, a bounded admission semaphore with queue-wait
// measurement and 429 on saturation, a per-request deadline whose context
// cancellation is threaded through the experiment engine down to the
// streaming broadcast ring, a request body size limit, a keyed LRU result
// cache (content hash of the canonical request), and panic-to-500 recovery.
// Every failure is a JSON error envelope; every stage feeds serve.*
// counters and gauges in the observability recorder.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"balign/internal/obs"
	"balign/internal/sim"
)

// Defaults for the zero Config. The admission default is deliberately
// larger than GOMAXPROCS: one request rarely saturates every core (the
// per-request engine parallelism defaults to 1), so a little oversubscription
// keeps the cores busy while the semaphore still bounds memory.
const (
	DefaultMaxInFlight  = 8
	DefaultQueueWait    = 250 * time.Millisecond
	DefaultTimeout      = 60 * time.Second
	DefaultMaxBodyBytes = 8 << 20
	DefaultCacheEntries = 256
	DefaultCacheBytes   = 64 << 20
)

// Config configures a Server. The zero value is usable: every field has a
// default.
type Config struct {
	// MaxInFlight bounds concurrently executing align/simulate requests
	// (the admission semaphore); <=0 means DefaultMaxInFlight.
	MaxInFlight int
	// QueueWait is how long an arriving request may wait for an admission
	// slot before being rejected with 429; 0 means DefaultQueueWait and a
	// negative value means reject immediately when saturated.
	QueueWait time.Duration
	// Timeout is the per-request deadline; the context it cancels is
	// threaded through alignment and simulation down to the streaming
	// broadcast ring. <=0 means DefaultTimeout.
	Timeout time.Duration
	// MaxBodyBytes caps request bodies; <=0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// CacheEntries / CacheBytes bound the keyed LRU result cache; <=0
	// means the defaults. CacheEntries = -1 disables the cache (used by
	// tests; CacheBytes is then ignored).
	CacheEntries int
	CacheBytes   int64
	// Kernel and Stream are the default simulation executor and trace
	// lifecycle for requests that do not specify their own ("" = flat/on).
	// Responses are byte-identical across all four combinations — the
	// serve golden tests extend the repo's parity-oracle family with this.
	Kernel string
	Stream string
	// Parallelism is the per-request experiment-engine shard bound
	// (0 = GOMAXPROCS). Cross-request parallelism comes from MaxInFlight;
	// per-request sharding mainly helps latency on an idle server.
	Parallelism int
	// Obs receives serve.* counters and gauges plus the engine, cache and
	// stream telemetry of request work. Nil disables telemetry.
	Obs *obs.Recorder
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight <= 0 {
		return DefaultMaxInFlight
	}
	return c.MaxInFlight
}

func (c Config) queueWait() time.Duration {
	if c.QueueWait == 0 {
		return DefaultQueueWait
	}
	if c.QueueWait < 0 {
		return 0
	}
	return c.QueueWait
}

func (c Config) timeout() time.Duration {
	if c.Timeout <= 0 {
		return DefaultTimeout
	}
	return c.Timeout
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return DefaultMaxBodyBytes
	}
	return c.MaxBodyBytes
}

// Server is the alignment service. Create with New; a Server is safe for
// concurrent use and designed to be shared by one http.Server.
type Server struct {
	cfg   Config
	obs   *obs.Recorder
	mux   *http.ServeMux
	cache *resultCache
	slots chan struct{}
	str   *sim.Streamer
	exec  *sim.Executor

	draining atomic.Bool
	inflight atomic.Int64

	// panicHook observes recovered handler panics (test seam; the response
	// is a 500 envelope either way).
	panicHook func(any)
	// testBlock, when non-nil, parks every admitted request until the
	// channel closes — the deterministic way the saturation and drain
	// tests hold a slot without timing games.
	testBlock chan struct{}
}

// New validates cfg and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if _, err := sim.ParseStreamMode(cfg.Stream); err != nil {
		return nil, err
	}
	exec, err := sim.NewExecutor(cfg.Kernel, cfg.Obs)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		obs:   cfg.Obs,
		mux:   http.NewServeMux(),
		slots: make(chan struct{}, cfg.maxInFlight()),
		str:   sim.NewStreamer(0, 0, cfg.Obs),
		exec:  exec,
	}
	if cfg.CacheEntries >= 0 {
		entries, bytes := cfg.CacheEntries, cfg.CacheBytes
		if entries == 0 {
			entries = DefaultCacheEntries
		}
		if bytes <= 0 {
			bytes = DefaultCacheBytes
		}
		s.cache = newResultCache(entries, bytes, cfg.Obs)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.Handle("/debug/", obs.DebugHandler())
	for _, e := range endpoints {
		e := e
		s.mux.HandleFunc(e.path, func(w http.ResponseWriter, r *http.Request) {
			s.serveAPI(w, r, e)
		})
	}
	return s, nil
}

// Handler returns the server's root handler (panic recovery included).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.obs.Add("serve.panics", 1)
				if s.panicHook != nil {
					s.panicHook(v)
				}
				// Best effort: if the handler already wrote, this write
				// fails silently, which is the most we can do mid-response.
				writeError(w, s.obs, http.StatusInternalServerError, "internal",
					"internal error (panic recovered)")
			}
		}()
		s.obs.Add("serve.requests", 1)
		s.mux.ServeHTTP(w, r)
	})
}

// BeginDrain puts the server into draining mode: /healthz reports 503 (so
// load balancers stop routing here) and new align/simulate requests are
// rejected with 503, while requests already admitted run to completion.
// Call it before http.Server.Shutdown, which then waits for the in-flight
// work the drain flag is protecting.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.obs.Add("serve.drains", 1)
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight returns the number of admitted requests currently executing.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Streamer exposes the server's shared broadcast stage (its stats back the
// ring-release assertions in the cancellation tests and the run report).
func (s *Server) Streamer() *sim.Streamer { return s.str }

// CacheStats snapshots the result cache ({} when the cache is disabled).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// apiError is a failure with its HTTP mapping. Everything the endpoints
// return to clients flows through the JSON error envelope.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: code, msg: fmt.Sprintf(format, args...)}
}

// ctxError maps a request-context failure onto its HTTP status: the
// deadline is the server's (504), an early client disconnect is not an
// error of ours at all but still needs an envelope.
func ctxError(err error) *apiError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &apiError{status: http.StatusGatewayTimeout, code: "deadline_exceeded",
			msg: "request deadline exceeded"}
	}
	return &apiError{status: http.StatusServiceUnavailable, code: "cancelled",
		msg: "request cancelled"}
}

// errEnvelope is the uniform JSON error shape; the fuzz target asserts
// every non-200 response decodes into it.
type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, rec *obs.Recorder, status int, code, msg string) {
	rec.Add("serve.errors", 1)
	rec.Add(fmt.Sprintf("serve.status.%d", status), 1)
	var env errEnvelope
	env.Error.Code = code
	env.Error.Message = msg
	body, err := json.Marshal(env)
	if err != nil {
		// Unreachable for this fixed shape; keep the envelope contract
		// anyway.
		body = []byte(`{"error":{"code":"internal","message":"error encoding failed"}}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func (s *Server) writeAPIError(w http.ResponseWriter, endpoint string, aerr *apiError) {
	s.obs.Add("serve."+endpoint+".errors", 1)
	writeError(w, s.obs, aerr.status, aerr.code, aerr.msg)
}

// handleHealthz is the liveness/readiness probe: 200 while serving, 503
// once draining so load balancers drop the instance before shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, s.obs, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// admit acquires an admission slot, waiting at most the configured queue
// wait. The wait — successful or not — is recorded as queue-wait time.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	start := time.Now()
	defer func() { s.obs.Add("serve.admission.wait_ns", int64(time.Since(start))) }()
	release = func() {
		<-s.slots
		s.obs.Set("serve.inflight", s.inflight.Add(-1))
	}
	admitted := func() (func(), bool) {
		s.obs.Add("serve.admission.admitted", 1)
		s.obs.Set("serve.inflight", s.inflight.Add(1))
		return release, true
	}
	select {
	case s.slots <- struct{}{}:
		return admitted()
	default:
	}
	wait := s.cfg.queueWait()
	if wait <= 0 {
		s.obs.Add("serve.admission.rejected", 1)
		return nil, false
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case s.slots <- struct{}{}:
		return admitted()
	case <-timer.C:
	case <-ctx.Done():
	}
	s.obs.Add("serve.admission.rejected", 1)
	return nil, false
}

// serveAPI runs the shared request pipeline for one POST endpoint: method
// and drain checks, admission, deadline, body limit, parse, cache lookup,
// compute, cache fill. The endpoint's parser returns the canonical request
// value — its JSON marshalling (together with the endpoint name) is the
// cache key, so two bodies that decode identically share one cached result
// (and, via RequestKey, so the shard router owns exactly the keys this
// handler caches). compute returns the response value to be marshalled;
// cached entries replay the exact stored bytes, so equal keys always
// produce byte-identical bodies.
func (s *Server) serveAPI(w http.ResponseWriter, r *http.Request, e endpointDef) {
	endpoint := e.name
	s.obs.Add("serve."+endpoint+".requests", 1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeAPIError(w, endpoint, &apiError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", msg: "use POST"})
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		s.writeAPIError(w, endpoint, &apiError{status: http.StatusServiceUnavailable,
			code: "draining", msg: "server is draining; retry against another instance"})
		return
	}
	release, ok := s.admit(r.Context())
	if !ok {
		w.Header().Set("Retry-After", "1")
		s.writeAPIError(w, endpoint, &apiError{status: http.StatusTooManyRequests,
			code: "saturated", msg: "server is at its in-flight request limit"})
		return
	}
	defer release()
	if s.testBlock != nil {
		<-s.testBlock
	}

	body, err := readBody(w, r, s.cfg.maxBodyBytes())
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			s.writeAPIError(w, endpoint, &apiError{status: http.StatusRequestEntityTooLarge,
				code: "body_too_large", msg: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit)})
			return
		}
		s.writeAPIError(w, endpoint, badRequest("bad_body", "reading request body: %v", err))
		return
	}
	req, aerr := e.parse(body)
	if aerr != nil {
		s.writeAPIError(w, endpoint, aerr)
		return
	}

	key, aerr := cacheKey(endpoint, req)
	if aerr != nil {
		s.writeAPIError(w, endpoint, aerr)
		return
	}
	if cached, ok := s.cache.Get(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Balign-Cache", "hit")
		w.Write(cached)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.timeout())
	defer cancel()
	resp, aerr := e.compute(s, ctx, req)
	if aerr != nil {
		// The deadline wins attribution: a compute error observed after
		// the context expired is almost always cancellation fallout.
		if ctxErr := ctx.Err(); ctxErr != nil {
			aerr = ctxError(ctxErr)
		}
		s.writeAPIError(w, endpoint, aerr)
		return
	}
	out, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		s.writeAPIError(w, endpoint, &apiError{status: http.StatusInternalServerError,
			code: "internal", msg: fmt.Sprintf("encoding response: %v", err)})
		return
	}
	out = append(out, '\n')
	s.cache.Put(key, out)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Balign-Cache", "miss")
	w.Write(out)
}

// readBody drains the request body under the size limit.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
}

// cacheKey derives the content hash naming one request's result: the
// endpoint plus the canonical JSON of the parsed request, so semantically
// identical bodies (whitespace, field order) share an entry.
func cacheKey(endpoint string, req any) (string, *apiError) {
	canon, err := json.Marshal(req)
	if err != nil {
		return "", badRequest("bad_request", "canonicalizing request: %v", err)
	}
	sum := sha256.Sum256(append([]byte(endpoint+"\x00"), canon...))
	return hex.EncodeToString(sum[:]), nil
}

// decodeStrict parses JSON into dst, rejecting unknown fields and trailing
// garbage — the strictness the fuzz target leans on.
func decodeStrict(body []byte, dst any) *apiError {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("bad_json", "decoding request: %v", err)
	}
	var extra any
	if err := dec.Decode(&extra); err == nil || !errors.Is(err, io.EOF) {
		return badRequest("bad_json", "trailing data after request object")
	}
	return nil
}
