package serve

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRequestKeyMatchesHandlerCache pins the key-ownership contract the
// shard router depends on: RequestKey derives the exact key the handler's
// result cache uses, stable across calls, distinct across endpoints, and
// insensitive to JSON field order (canonicalization happens post-parse).
func TestRequestKeyMatchesHandlerCache(t *testing.T) {
	asmSrc := readFixture(t, "sample.asm")
	profSrc := readFixture(t, "sample.prof")
	body := mustJSON(t, map[string]any{"asm": asmSrc, "profile": profSrc})
	reordered := mustJSON(t, map[string]any{"profile": profSrc, "asm": asmSrc})

	k1, err := RequestKey("/v1/align", body)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := RequestKey("/v1/align", reordered)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("JSON field order changed the cache key")
	}
	if len(k1) != 64 || strings.Trim(k1, "0123456789abcdef") != "" {
		t.Errorf("key %q is not sha256 hex", k1)
	}

	sim, err := RequestKey("/v1/simulate", mustJSON(t, map[string]any{
		"name": "p", "asm": asmSrc, "profile": profSrc, "generator": "walk",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if sim == k1 {
		t.Error("align and simulate share a cache key for similar bodies")
	}

	if _, err := RequestKey("/v1/nope", body); err == nil {
		t.Error("unknown path produced a key")
	}
	if _, err := RequestKey("/v1/align", []byte("{not json")); err == nil {
		t.Error("unparseable body produced a parsed key")
	}

	raw1, raw2 := RawBodyKey([]byte("{not json")), RawBodyKey([]byte("{not json"))
	if raw1 != raw2 || len(raw1) != 64 {
		t.Errorf("RawBodyKey not a stable sha256 hex: %q vs %q", raw1, raw2)
	}
	if raw1 == RawBodyKey([]byte("other")) {
		t.Error("distinct raw bodies collide")
	}
}

// TestEndpointPaths pins the path set the router proxies.
func TestEndpointPaths(t *testing.T) {
	paths := EndpointPaths()
	want := map[string]bool{"/v1/align": true, "/v1/simulate": true}
	if len(paths) != len(want) {
		t.Fatalf("EndpointPaths = %v, want the two API paths", paths)
	}
	for _, p := range paths {
		if !want[p] {
			t.Errorf("unexpected endpoint path %q", p)
		}
	}
}
