package serve

import (
	"context"
	"sort"
	"strings"

	"balign/internal/asm"
	"balign/internal/cfgio"
	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/profile"
)

// AlignRequest is the /v1/align body: an assembly program, its edge profile
// (batrace text format), and the alignment options to evaluate. Parsing
// fills every defaultable field, so the canonicalized request — and with it
// the cache key — is identical whether defaults were spelled out or
// omitted.
type AlignRequest struct {
	// Name labels the program in the response ("" = the assembly's own
	// program name).
	Name string `json:"name,omitempty"`
	// Asm is the program in the assembler's text format.
	Asm string `json:"asm"`
	// Profile is the edge profile in batrace's text format.
	Profile string `json:"profile"`
	// CFG is a combined program+profile document (JSON or DOT, see
	// internal/cfgio; the encoding is auto-detected). Mutually exclusive
	// with Asm/Profile.
	CFG string `json:"cfg,omitempty"`
	// Arch selects the architecture cost model pricing every plan
	// (default btfnt).
	Arch string `json:"arch"`
	// Algos lists the alignment algorithms to plan: orig, greedy, cost,
	// tryn, exttsp (default greedy, cost, tryn, exttsp).
	Algos []string `json:"algos"`
	// Order is the chain layout order: hottest or btfnt (default hottest).
	Order string `json:"order"`
	// Window is the TryN window size (0 = the paper's 15).
	Window int `json:"window,omitempty"`
	// EmitAsm includes each plan's rewritten assembly in the response.
	EmitAsm bool `json:"emit_asm,omitempty"`
}

// AlignResponse is the /v1/align result: the original layout's cost under
// the chosen model and one plan per requested algorithm.
type AlignResponse struct {
	Name string `json:"name"`
	Arch string `json:"arch"`
	// Model is the cost model's name (several architectures share one).
	Model string `json:"model"`
	// Cost is the original layout's expected branch cycles.
	Cost float64 `json:"cost"`
	// Plans is in the request's algorithm order.
	Plans []AlignPlan `json:"plans"`
}

// AlignPlan is one algorithm's outcome: the aligned layout's cost, the
// rewriter's work, and the per-procedure / per-site cost deltas that let a
// caller see where the cycles went.
type AlignPlan struct {
	Algo string `json:"algo"`
	// Cost is the aligned layout's expected branch cycles; Delta is
	// Cost minus the original layout's (negative = improvement).
	Cost  float64 `json:"cost"`
	Delta float64 `json:"delta"`
	Stats struct {
		JumpsInserted    int   `json:"jumps_inserted"`
		JumpsRemoved     int   `json:"jumps_removed"`
		BranchesInverted int   `json:"branches_inverted"`
		DynInstrDelta    int64 `json:"dyn_instr_delta"`
	} `json:"stats"`
	// Procs covers every profiled procedure, in program order.
	Procs []ProcDelta `json:"procs"`
	// Asm is the rewritten program (only when emit_asm was set).
	Asm string `json:"asm,omitempty"`
}

// ProcDelta is one procedure's cost movement under a plan.
type ProcDelta struct {
	Proc  string  `json:"proc"`
	Orig  float64 `json:"cost_orig"`
	Cost  float64 `json:"cost"`
	Delta float64 `json:"delta"`
	// Sites itemizes the procedure's branch sites (matched across the
	// rewrite by block provenance). Inserted jump blocks appear with
	// block -1 and cost_orig 0; original branches the rewriter removed
	// appear with cost 0.
	Sites []SiteDelta `json:"sites"`
}

// SiteDelta is one branch site's cost movement: the site is identified by
// its block ID and branch address in the ORIGINAL layout (block -1 and the
// aligned-layout address for branches the rewriter synthesized).
type SiteDelta struct {
	Block int     `json:"block"`
	PC    uint64  `json:"pc"`
	Kind  string  `json:"kind"`
	Orig  float64 `json:"cost_orig"`
	Cost  float64 `json:"cost"`
	Delta float64 `json:"delta"`
}

// validAlignAlgos maps request algorithm names onto core algorithms.
var validAlignAlgos = map[string]core.Algorithm{
	"orig":   core.AlgoOriginal,
	"greedy": core.AlgoGreedy,
	"cost":   core.AlgoCost,
	"tryn":   core.AlgoTryN,
	"exttsp": core.AlgoExtTSP,
}

// parseAlignRequest decodes and canonicalizes an align body.
func parseAlignRequest(body []byte) (any, *apiError) {
	req := &AlignRequest{}
	if aerr := decodeStrict(body, req); aerr != nil {
		return nil, aerr
	}
	if req.CFG != "" {
		if req.Asm != "" || req.Profile != "" {
			return nil, badRequest("bad_request", "cfg replaces both asm and profile")
		}
	} else {
		if req.Asm == "" {
			return nil, badRequest("bad_request", "asm is required")
		}
		if req.Profile == "" {
			return nil, badRequest("bad_request", "profile is required")
		}
	}
	if req.Arch == "" {
		req.Arch = string(predict.ArchBTFNT)
	}
	if _, err := cost.ForArch(predict.ArchID(req.Arch)); err != nil {
		return nil, badRequest("bad_request", "%v", err)
	}
	if len(req.Algos) == 0 {
		req.Algos = []string{"greedy", "cost", "tryn", "exttsp"}
	}
	for _, a := range req.Algos {
		if _, ok := validAlignAlgos[a]; !ok {
			return nil, badRequest("bad_request", "unknown algorithm %q (known: cost, exttsp, greedy, orig, tryn)", a)
		}
	}
	switch req.Order {
	case "":
		req.Order = "hottest"
	case "hottest", "btfnt":
	default:
		return nil, badRequest("bad_request", "unknown chain order %q (known: hottest, btfnt)", req.Order)
	}
	if req.Window < 0 || req.Window > 24 {
		return nil, badRequest("bad_request", "window %d out of range [0,24]", req.Window)
	}
	return req, nil
}

// computeAlign assembles, aligns under each requested algorithm, and prices
// every layout — whole program, per procedure, per branch site — under the
// requested architecture's cost model.
func (s *Server) computeAlign(ctx context.Context, reqAny any) (any, *apiError) {
	req := reqAny.(*AlignRequest)
	var prog *ir.Program
	var pf *profile.Profile
	if req.CFG != "" {
		var err error
		prog, pf, err = cfgio.Import([]byte(req.CFG))
		if err != nil {
			return nil, badRequest("bad_cfg", "%v", err)
		}
	} else {
		var err error
		prog, err = asm.Assemble(req.Asm)
		if err != nil {
			return nil, badRequest("bad_asm", "%v", err)
		}
		pf, err = profile.Read(strings.NewReader(req.Profile))
		if err != nil {
			return nil, badRequest("bad_profile", "%v", err)
		}
	}
	model, err := cost.ForArch(predict.ArchID(req.Arch))
	if err != nil {
		return nil, badRequest("bad_request", "%v", err)
	}

	name := req.Name
	if name == "" {
		name = prog.Name
	}
	resp := &AlignResponse{
		Name:  name,
		Arch:  req.Arch,
		Model: model.Name(),
		Cost:  cost.ProgramCost(prog, pf, model),
	}

	order := core.OrderHottest
	if req.Order == "btfnt" {
		order = core.OrderBTFNT
	}
	for _, algoName := range req.Algos {
		if err := ctx.Err(); err != nil {
			return nil, ctxError(err)
		}
		algo := validAlignAlgos[algoName]
		opts := core.Options{
			Algorithm: algo,
			Order:     order,
			Window:    req.Window,
			Obs:       s.obs,
		}
		if algo == core.AlgoCost || algo == core.AlgoTryN {
			opts.Model = model
		}
		res, err := core.AlignProgram(prog, pf, opts)
		if err != nil {
			return nil, &apiError{status: 422, code: "align_failed", msg: err.Error()}
		}
		plan := AlignPlan{
			Algo: algoName,
			Cost: cost.ProgramCost(res.Prog, res.Prof, model),
		}
		plan.Delta = plan.Cost - resp.Cost
		plan.Stats.JumpsInserted = res.Stats.JumpsInserted
		plan.Stats.JumpsRemoved = res.Stats.JumpsRemoved
		plan.Stats.BranchesInverted = res.Stats.BranchesInverted
		plan.Stats.DynInstrDelta = res.Stats.DynInstrDelta
		plan.Procs = procDeltas(prog, pf, res.Prog, res.Prof, model)
		if req.EmitAsm {
			plan.Asm = res.Prog.Format()
		}
		resp.Plans = append(resp.Plans, plan)
	}
	if resp.Plans == nil {
		resp.Plans = []AlignPlan{}
	}
	return resp, nil
}

// procDeltas diffs every profiled procedure's branch-site costs between the
// original and aligned layouts. Sites are matched by block provenance
// (ir.Block.Orig); a site only in the original layout was removed by the
// rewriter, a site only in the aligned layout (provenance NoBlock) was
// inserted by it. Per-procedure totals therefore reconcile exactly with
// cost.ProcCost on both sides.
func procDeltas(orig *ir.Program, origPf *profile.Profile,
	aligned *ir.Program, alignedPf *profile.Profile, model cost.Model) []ProcDelta {

	deltas := make([]ProcDelta, 0, len(orig.Procs))
	for _, op := range orig.Procs {
		opp, ok := origPf.Procs[op.Name]
		if !ok {
			continue
		}
		ai := aligned.ProcByName(op.Name)
		if ai < 0 {
			continue
		}
		ap := aligned.Procs[ai]
		app := alignedPf.Procs[op.Name]
		if app == nil {
			continue
		}

		pd := ProcDelta{Proc: op.Name, Sites: []SiteDelta{}}
		origSites := cost.ProcSiteCosts(op, opp, model)
		alignedSites := cost.ProcSiteCosts(ap, app, model)
		// Aligned cost by provenance; synthesized blocks keyed separately.
		byOrig := make(map[ir.BlockID]float64, len(alignedSites))
		kindByOrig := make(map[ir.BlockID]ir.Kind, len(alignedSites))
		var inserted []cost.SiteCost
		for _, sc := range alignedSites {
			pd.Cost += sc.Cost
			if sc.Orig == ir.NoBlock {
				inserted = append(inserted, sc)
				continue
			}
			byOrig[sc.Orig] += sc.Cost
			kindByOrig[sc.Orig] = sc.Kind
		}
		matched := make(map[ir.BlockID]bool, len(origSites))
		for _, sc := range origSites {
			pd.Orig += sc.Cost
			matched[sc.Block] = true
			after := byOrig[sc.Orig] // orig program: Orig == Block
			kind := sc.Kind
			if k, ok := kindByOrig[sc.Orig]; ok {
				kind = k
			}
			pd.Sites = append(pd.Sites, SiteDelta{
				Block: int(sc.Block), PC: sc.PC, Kind: kind.String(),
				Orig: sc.Cost, Cost: after, Delta: after - sc.Cost,
			})
		}
		// Aligned sites whose provenance block had no costed branch in the
		// original layout (a fall-through block that gained a jump, say)
		// still need an entry, or the site sums would not reconcile.
		for _, sc := range alignedSites {
			if sc.Orig == ir.NoBlock || matched[sc.Orig] {
				continue
			}
			matched[sc.Orig] = true
			pd.Sites = append(pd.Sites, SiteDelta{
				Block: int(sc.Orig), PC: 0, Kind: sc.Kind.String(),
				Orig: 0, Cost: byOrig[sc.Orig], Delta: byOrig[sc.Orig],
			})
		}
		for _, sc := range inserted {
			pd.Sites = append(pd.Sites, SiteDelta{
				Block: -1, PC: sc.PC, Kind: sc.Kind.String(),
				Orig: 0, Cost: sc.Cost, Delta: sc.Cost,
			})
		}
		sort.SliceStable(pd.Sites, func(i, j int) bool {
			bi, bj := pd.Sites[i].Block, pd.Sites[j].Block
			if (bi < 0) != (bj < 0) {
				return bj < 0 // real blocks first, synthesized last
			}
			if bi != bj {
				return bi < bj
			}
			return pd.Sites[i].PC < pd.Sites[j].PC
		})
		pd.Delta = pd.Cost - pd.Orig
		deltas = append(deltas, pd)
	}
	return deltas
}
