package workload

import "fmt"

// Extended workload classes. The paper's Table 2 suite (Names/Suite) is
// pinned at 24 programs; the families below are additional stress workloads
// reachable by name (ByName, AllNames) and through the experiments grid's
// program selection, without perturbing any paper-suite output.
const (
	// Adversarial groups the post-paper stress families: string-matching
	// kernels with analytically known branch behaviour (mp/kmp), workloads
	// that flip hot-edge direction at phase boundaries (phased), and
	// branch-melding (if-conversion) variants of suite kernels (*-meld).
	Adversarial Class = "Adversarial"
	// Imported marks workloads built from an external CFG document by
	// internal/cfgio rather than from a Spec.
	Imported Class = "Imported"
)

// extSpecs lists the extended families in presentation order. Kernel specs
// only — every extended workload executes on the VM, so stream on/off and
// flat/ref parity hold by the same oracles that cover the suite kernels.
var extSpecs = []Spec{
	{Name: "mp", Class: Adversarial, Kernel: mpKernel},
	{Name: "kmp", Class: Adversarial, Kernel: kmpKernel},
	{Name: "phased", Class: Adversarial, Kernel: phasedKernel},
	{Name: "sc-meld", Class: Adversarial, Kernel: scMeldKernel},
	{Name: "espresso-meld", Class: Adversarial, Kernel: espressoMeldKernel},
}

// ExtNames returns the extended (non-paper) workload names.
func ExtNames() []string {
	names := make([]string, 0, len(extSpecs))
	for _, s := range extSpecs {
		names = append(names, s.Name)
	}
	return names
}

// AllNames returns every buildable workload name: the paper suite in Table 2
// order followed by the extended families.
func AllNames() []string {
	return append(Names(), ExtNames()...)
}

// byNameSpec finds a spec in either registry.
func byNameSpec(name string) (Spec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range extSpecs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// ExtSuite builds all extended workloads.
func ExtSuite(cfg Config) ([]*Workload, error) {
	out := make([]*Workload, 0, len(extSpecs))
	for _, s := range extSpecs {
		w, err := build(s, cfg)
		if err != nil {
			return nil, fmt.Errorf("workload: building %s: %w", s.Name, err)
		}
		out = append(out, w)
	}
	return out, nil
}
