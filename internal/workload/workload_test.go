package workload

import (
	"math"
	"testing"

	"balign/internal/core"
	"balign/internal/cost"
	"balign/internal/metrics"
	"balign/internal/profile"
	"balign/internal/trace"
)

func TestNamesMatchesPaperSuite(t *testing.T) {
	names := Names()
	if len(names) != 24 {
		t.Fatalf("suite has %d programs, want the paper's 24", len(names))
	}
	want := map[string]bool{"alvinn": true, "gcc": true, "tex": true, "db++": true, "tomcatv": true}
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for n := range want {
		if !got[n] {
			t.Errorf("missing program %q", n)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("not-a-benchmark", Config{}); err == nil {
		t.Error("unknown name should error")
	}
}

func TestKernelsRunAndProfile(t *testing.T) {
	for _, name := range []string{"alvinn", "tomcatv", "compress", "eqntott", "espresso", "li", "ear", "sc"} {
		w, err := ByName(name, Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !w.IsKernel() {
			t.Errorf("%s: expected kernel workload", name)
		}
		pf, instrs, err := w.CollectProfile()
		if err != nil {
			t.Fatalf("%s: profile: %v", name, err)
		}
		if instrs < 100_000 {
			t.Errorf("%s: only %d instructions; kernels should run long enough to matter", name, instrs)
		}
		if len(pf.Procs) == 0 || pf.TotalEdgeWeight() == 0 {
			t.Errorf("%s: empty profile", name)
		}
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func() uint64 {
		w, err := ByName("compress", Config{})
		if err != nil {
			t.Fatal(err)
		}
		_, instrs, err := w.CollectProfile()
		if err != nil {
			t.Fatal(err)
		}
		return instrs
	}
	if a, b := run(), run(); a != b {
		t.Errorf("kernel instruction counts differ across runs: %d vs %d", a, b)
	}
}

func TestSyntheticMatchesSpecTargets(t *testing.T) {
	// Check a few representative synthetic programs against their Table 2
	// targets with generous tolerances: the generator is calibrated, not
	// exact.
	for _, name := range []string{"doduc", "gcc", "swm256", "cfront"} {
		var spec Spec
		for _, s := range specs {
			if s.Name == name {
				spec = s
			}
		}
		w, err := ByName(name, Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		col := metrics.NewCollector()
		instrs, err := w.Run(w.Prog, nil, col, nil)
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		col.Instrs = instrs
		a := col.Attributes(w.Prog)

		if rel := math.Abs(a.PctBreaks-spec.PctBreaks) / spec.PctBreaks; rel > 0.5 {
			t.Errorf("%s: PctBreaks = %.2f, target %.2f (rel err %.2f)", name, a.PctBreaks, spec.PctBreaks, rel)
		}
		if diff := math.Abs(a.PctTaken - spec.PctTaken); diff > 15 {
			t.Errorf("%s: PctTaken = %.1f, target %.1f", name, a.PctTaken, spec.PctTaken)
		}
		wantCBrPct := 100 * spec.MixCBr
		if diff := math.Abs(a.PctCBr - wantCBrPct); diff > 20 {
			t.Errorf("%s: PctCBr = %.1f, target %.1f", name, a.PctCBr, wantCBrPct)
		}
		if spec.MixIJ > 0.01 && a.PctIJ == 0 {
			t.Errorf("%s: no indirect jumps despite target %.1f%%", name, 100*spec.MixIJ)
		}
		if a.StaticSites < spec.CondSites/3 || a.StaticSites > spec.CondSites*3 {
			t.Errorf("%s: StaticSites = %d, target %d", name, a.StaticSites, spec.CondSites)
		}
	}
}

func TestSyntheticDeterministicAndSeedSensitive(t *testing.T) {
	build := func(seed int64) *Workload {
		w, err := ByName("ora", Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b := build(0), build(0)
	if a.Prog.Format() != b.Prog.Format() {
		t.Error("same seed produced different programs")
	}
	c := build(99)
	if a.Prog.Format() == c.Prog.Format() {
		t.Error("different seeds produced identical programs")
	}
}

func TestSyntheticAlignedRunNeedsProfile(t *testing.T) {
	w, err := ByName("ora", Config{})
	if err != nil {
		t.Fatal(err)
	}
	other := w.Prog.Clone()
	other.AssignAddresses(0x1000)
	if _, err := w.Run(other, nil, nil, nil); err == nil {
		t.Error("tracing a non-original program without profile should error")
	}
}

func TestSyntheticAlignmentRoundTrip(t *testing.T) {
	// End-to-end: profile a synthetic program, align it, walk the aligned
	// program with the transferred profile, and confirm the event volume is
	// comparable and the model cost improved.
	w, err := ByName("ear", Config{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	pf, _, err := w.CollectProfile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AlignProgram(w.Prog, pf, core.Options{
		Algorithm: core.AlgoTryN, Model: cost.FallthroughModel{}, Window: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := cost.ProgramCost(w.Prog, pf, cost.FallthroughModel{})
	after := cost.ProgramCost(res.Prog, res.Prof, cost.FallthroughModel{})
	if after >= before {
		t.Errorf("alignment did not reduce model cost: %.0f -> %.0f", before, after)
	}

	var cnt trace.Counter
	instrs, err := w.Run(res.Prog, res.Prof, &cnt, nil)
	if err != nil {
		t.Fatalf("aligned walk: %v", err)
	}
	if instrs == 0 || cnt.Total == 0 {
		t.Fatal("aligned walk produced nothing")
	}
	// Taken rate should drop substantially under FALLTHROUGH-model
	// alignment.
	var origCnt trace.Counter
	if _, err := w.Run(w.Prog, nil, &origCnt, nil); err != nil {
		t.Fatal(err)
	}
	origTaken := float64(origCnt.CondTaken) / float64(origCnt.CondTaken+origCnt.CondFall)
	newTaken := float64(cnt.CondTaken) / float64(cnt.CondTaken+cnt.CondFall)
	if newTaken >= origTaken {
		t.Errorf("aligned taken rate %.3f not below original %.3f", newTaken, origTaken)
	}
}

func TestFragments(t *testing.T) {
	for _, f := range []Fragment{Figure1(), Figure2(), Figure3()} {
		if err := f.Prog.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", f.Name, err)
		}
		if f.Prof.TotalEdgeWeight() == 0 {
			t.Errorf("%s: empty profile", f.Name)
		}
		// Every profiled edge must exist in the CFG.
		for name, pp := range f.Prof.Procs {
			idx := f.Prog.ProcByName(name)
			if idx < 0 {
				t.Fatalf("%s: profile proc %q not in program", f.Name, name)
			}
			p := f.Prog.Procs[idx]
			valid := map[profile.Edge]bool{}
			for _, e := range p.Edges() {
				valid[profile.Edge{From: e.From, To: e.To}] = true
			}
			for e := range pp.Edges {
				if !valid[e] {
					t.Errorf("%s: profiled edge %v not a CFG edge", f.Name, e)
				}
			}
		}
	}
}

func TestFigure2LoopTrickNumbers(t *testing.T) {
	// The paper: the original single-block loop costs 5 cycles per
	// iteration under FALLTHROUGH (1 + 4 mispredict); inverted with a jump
	// it costs 3 (1 + 2). Check our cost model and alignment agree.
	f := Figure2()
	m := cost.FallthroughModel{}
	before := cost.ProgramCost(f.Prog, f.Prof, m)
	res, err := core.AlignProgram(f.Prog, f.Prof, core.Options{Algorithm: core.AlgoCost, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	after := cost.ProgramCost(res.Prog, res.Prof, m)
	iters := 95 * 30.0
	// Before: loop branch taken (5) per iteration dominates.
	if before < 5*iters {
		t.Errorf("before = %.0f, want >= %.0f", before, 5*iters)
	}
	// After: ~3 per iteration plus small terms.
	if after > 3.2*iters {
		t.Errorf("after = %.0f, want about 3 cycles/iteration (%.0f)", after, 3*iters)
	}
	if res.Stats.JumpsInserted == 0 {
		t.Error("loop trick should insert a jump")
	}
}

func TestFigure3Improvement(t *testing.T) {
	f := Figure3()
	for _, m := range []cost.Model{cost.BTFNTModel{}, cost.LikelyModel{}} {
		before := cost.ProgramCost(f.Prog, f.Prof, m)
		res, err := core.AlignProgram(f.Prog, f.Prof, core.Options{
			Algorithm: core.AlgoTryN, Model: m, Window: 8,
			Order: core.OrderBTFNT,
		})
		if err != nil {
			t.Fatal(err)
		}
		after := cost.ProgramCost(res.Prog, res.Prof, m)
		// Paper: 36,002 -> 27,004 cycles, a ~25% reduction in branch cost.
		if after >= before*0.8 {
			t.Errorf("%s: cost %.0f -> %.0f; want >= 20%% reduction", m.Name(), before, after)
		}
	}
}

func TestCSuite(t *testing.T) {
	ws, err := CSuite(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 8 {
		t.Errorf("C suite has %d programs, want 8", len(ws))
	}
}
