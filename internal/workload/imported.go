package workload

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/profile"
)

// FromProfile wraps an externally imported program (typically from
// internal/cfgio) and its edge profile as a walker-backed workload, so real
// CFGs flow through the same alignment/trace/simulation grid as the
// built-in suite. The profile doubles as the behaviour model for the
// original program's walks; aligned variants are walked from the
// transferred profile exactly as for synthetic workloads.
//
// name appears in result tables; pf.Instrs (or the estimate the importer
// computed) becomes the trace budget for each walk, scaled by cfg.Scale.
func FromProfile(name string, prog *ir.Program, pf *profile.Profile, cfg Config) (*Workload, error) {
	if prog == nil || pf == nil {
		return nil, fmt.Errorf("workload: imported %q needs both program and profile", name)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("workload: imported %q invalid: %w", name, err)
	}
	budget := uint64(float64(pf.Instrs) * cfg.scale())
	if budget == 0 {
		return nil, fmt.Errorf("workload: imported %q has no instruction estimate; set instrs in the CFG document", name)
	}
	return &Workload{
		Name: name, Class: Imported, Prog: prog,
		native: pf.Model(prog), budget: budget,
		seed: cfg.Seed + 1 + cfg.InputSeed*7919,
	}, nil
}
