package workload

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/vm"
)

// Branch melding (if-conversion): rewriting a conditional branch that skips
// a short block of pure register operations into straight-line code using
// the cmovz/cmovnz conditional moves, in the style of the Alpha AXP
// compilers the paper targets. The melded variants of suite kernels put an
// alignment-vs-elimination column in the grid: alignment reduces the cost
// of a branch, melding removes the branch entirely, and the simulators
// price both.

// meldScratchPred and meldScratchVal are the registers the rewriter claims
// for the saved predicate and the speculated value; procedures that use
// either are left unmelded.
const (
	meldScratchPred = 31
	meldScratchVal  = 30
)

// meldMaxBlock bounds the speculated block: melding trades len(F) extra
// always-executed instructions for one branch, so long blocks are not worth
// converting (and are where if-conversion loses in real compilers too).
const meldMaxBlock = 4

// MeldProgram returns a copy of prog with every meldable site if-converted,
// plus the number of sites melded. A site is meldable when a block B ends
// in a conditional branch over exactly its successor F — B's taken target
// is F+1, F falls through, F has no other predecessors — and F contains at
// most meldMaxBlock pure register instructions (no loads, stores, calls or
// control flow, which can fault or have side effects when executed
// speculatively). The rewrite replaces the branch with a predicate
// computation into r31 and turns each F instruction `op rd, ...` into
// `op r30, ...; cmov* rd, r30, r31`, then deletes F.
//
// The melded program computes bit-identical results to the original: the
// conditional moves leave destinations untouched exactly when the original
// branch would have skipped the block.
func MeldProgram(prog *ir.Program) (*ir.Program, int, error) {
	out := prog.Clone()
	melded := 0
	for _, p := range out.Procs {
		n, err := meldProc(p)
		if err != nil {
			return nil, 0, fmt.Errorf("meld: proc %q: %w", p.Name, err)
		}
		melded += n
	}
	out.AssignAddresses(0x1000)
	if err := out.Validate(); err != nil {
		return nil, 0, fmt.Errorf("meld: rewritten program invalid: %w", err)
	}
	return out, melded, nil
}

func meldProc(p *ir.Proc) (int, error) {
	if usesRegs(p, meldScratchVal, meldScratchPred) {
		return 0, nil // scratch registers live somewhere; leave untouched
	}
	melded := 0
	for {
		site := findMeldSite(p)
		if site < 0 {
			return melded, nil
		}
		if err := meldAt(p, ir.BlockID(site)); err != nil {
			return melded, err
		}
		melded++
	}
}

// findMeldSite returns the block ID of the first meldable branch block, or
// -1 when none remain.
func findMeldSite(p *ir.Proc) int {
	for bi, b := range p.Blocks {
		f := ir.BlockID(bi + 1)
		term, ok := b.Terminator()
		if !ok || term.Kind() != ir.CondBr || term.TargetBlock != f+1 {
			continue
		}
		if int(f)+1 >= len(p.Blocks) {
			continue
		}
		fb := p.Blocks[f]
		if _, hasTerm := fb.Terminator(); hasTerm {
			continue // F must fall through into the join block
		}
		if len(fb.Instrs) == 0 || len(fb.Instrs) > meldMaxBlock {
			continue
		}
		if !allPureOps(fb.Instrs) {
			continue
		}
		if countPreds(p, f) != 1 {
			continue // someone else jumps into F; the branch is not its only guard
		}
		return bi
	}
	return -1
}

// allPureOps reports whether every instruction is a register-only operation
// that is safe to execute unconditionally: no memory access (a speculated
// load or store could fault on an address the skipped path never computes),
// no control flow, and no reads of the scratch registers between ops.
func allPureOps(instrs []ir.Instr) bool {
	for i := range instrs {
		switch instrs[i].Op {
		case ir.OpNop, ir.OpLi, ir.OpMov, ir.OpAdd, ir.OpSub, ir.OpMul,
			ir.OpDiv, ir.OpMod, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl,
			ir.OpShr, ir.OpAddi, ir.OpMuli, ir.OpAndi, ir.OpSlt, ir.OpSlti:
		default:
			return false
		}
	}
	return true
}

// countPreds counts the control-flow predecessors of block f: branch and
// ijump targets plus the fall-through from f-1.
func countPreds(p *ir.Proc, f ir.BlockID) int {
	preds := 0
	for bi, b := range p.Blocks {
		if ir.BlockID(bi)+1 == f && b.FallsThrough() {
			preds++
		}
		term, ok := b.Terminator()
		if !ok {
			continue
		}
		switch term.Kind() {
		case ir.CondBr, ir.Br:
			if term.TargetBlock == f {
				preds++
			}
		case ir.IJump:
			for _, t := range term.Targets {
				if t == f {
					preds++
				}
			}
		}
	}
	if f == p.Entry() {
		preds++
	}
	return preds
}

// meldAt if-converts the site whose branch block is bi: predicate into r31,
// each speculated instruction through r30 + cmov, then deletes block bi+1
// and renumbers every block reference in the procedure.
func meldAt(p *ir.Proc, bi ir.BlockID) error {
	b := p.Blocks[bi]
	f := bi + 1
	fb := p.Blocks[f]
	term := b.Instrs[len(b.Instrs)-1]

	pred, cmov, err := meldPredicate(&term)
	if err != nil {
		return err
	}
	// Replace the branch with: predicate computation, then the speculated
	// block routed through r30 and conditionally committed.
	instrs := append([]ir.Instr(nil), b.Instrs[:len(b.Instrs)-1]...)
	instrs = append(instrs, pred...)
	for i := range fb.Instrs {
		in := fb.Instrs[i].Clone()
		if in.Op == ir.OpNop {
			continue
		}
		dest := in.Rd
		in.Rd = meldScratchVal
		instrs = append(instrs,
			in,
			ir.Instr{Op: cmov, Rd: dest, Rs: meldScratchVal, Rt: meldScratchPred})
	}
	b.Instrs = instrs

	// Delete F and renumber: every block ID > f shifts down by one. No
	// reference to f itself can remain — B no longer branches, and F had no
	// other predecessors.
	p.Blocks = append(p.Blocks[:f], p.Blocks[f+1:]...)
	for _, blk := range p.Blocks {
		if blk.Orig > f {
			blk.Orig--
		}
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			switch in.Kind() {
			case ir.CondBr, ir.Br:
				if in.TargetBlock == f {
					return fmt.Errorf("block %d still targeted after meld", f)
				}
				if in.TargetBlock > f {
					in.TargetBlock--
				}
			case ir.IJump:
				for j, t := range in.Targets {
					if t == f {
						return fmt.Errorf("block %d still targeted after meld", f)
					}
					if t > f {
						in.Targets[j]--
					}
				}
			}
		}
	}
	return nil
}

// meldPredicate returns the instructions that materialize the branch
// condition of term into r31, and the conditional-move opcode that commits
// a speculated value exactly when the branch would NOT have been taken
// (i.e. when the skipped block would have executed).
func meldPredicate(term *ir.Instr) ([]ir.Instr, ir.Opcode, error) {
	p := uint8(meldScratchPred)
	one := func(in ir.Instr) []ir.Instr { return []ir.Instr{in} }
	switch term.Op {
	case ir.OpBeqz: // taken when rd == 0; F runs when r31 != 0
		return one(ir.Instr{Op: ir.OpMov, Rd: p, Rs: term.Rd}), ir.OpCmovnz, nil
	case ir.OpBnez: // taken when rd != 0; F runs when r31 == 0
		return one(ir.Instr{Op: ir.OpMov, Rd: p, Rs: term.Rd}), ir.OpCmovz, nil
	case ir.OpBeq: // taken when rd == rs; F runs when difference != 0
		return one(ir.Instr{Op: ir.OpSub, Rd: p, Rs: term.Rd, Rt: term.Rs}), ir.OpCmovnz, nil
	case ir.OpBne: // taken when rd != rs; F runs when difference == 0
		return one(ir.Instr{Op: ir.OpSub, Rd: p, Rs: term.Rd, Rt: term.Rs}), ir.OpCmovz, nil
	case ir.OpBlt: // r31 = (rd < rs): 1 when taken; F runs when 0
		return one(ir.Instr{Op: ir.OpSlt, Rd: p, Rs: term.Rd, Rt: term.Rs}), ir.OpCmovz, nil
	case ir.OpBge: // r31 = (rd < rs): 0 when taken; F runs when 1
		return one(ir.Instr{Op: ir.OpSlt, Rd: p, Rs: term.Rd, Rt: term.Rs}), ir.OpCmovnz, nil
	case ir.OpBgt: // r31 = (rs < rd): 1 when taken; F runs when 0
		return one(ir.Instr{Op: ir.OpSlt, Rd: p, Rs: term.Rs, Rt: term.Rd}), ir.OpCmovz, nil
	case ir.OpBle: // r31 = (rs < rd): 0 when taken; F runs when 1
		return one(ir.Instr{Op: ir.OpSlt, Rd: p, Rs: term.Rs, Rt: term.Rd}), ir.OpCmovnz, nil
	case ir.OpBltz: // r31 = (rd < 0): 1 when taken; F runs when 0
		return one(ir.Instr{Op: ir.OpSlti, Rd: p, Rs: term.Rd, Imm: 0}), ir.OpCmovz, nil
	case ir.OpBgez: // r31 = (rd < 0): 0 when taken; F runs when 1
		return one(ir.Instr{Op: ir.OpSlti, Rd: p, Rs: term.Rd, Imm: 0}), ir.OpCmovnz, nil
	default:
		return nil, ir.OpNop, fmt.Errorf("unmeldable branch opcode %v", term.Op)
	}
}

// usesRegs reports whether any instruction in the procedure reads or writes
// any of the given registers.
func usesRegs(p *ir.Proc, regs ...uint8) bool {
	hit := func(r uint8) bool {
		for _, q := range regs {
			if r == q {
				return true
			}
		}
		return false
	}
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if hit(in.Rd) || hit(in.Rs) || hit(in.Rt) {
				// Rd/Rs/Rt default to 0 on ops that don't use them, and r0
				// is never a scratch register, so no false positives.
				return true
			}
		}
	}
	return false
}

// meldVariant builds the named suite workload, if-converts it, and requires
// that at least one site actually melded — a *-meld workload that silently
// degenerates to its base kernel would make the ablation column a lie.
func meldVariant(base string, cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	// Look up in the paper suite only — a meld variant of a meld variant
	// would also create an initialization cycle through extSpecs.
	var s Spec
	for _, cand := range specs {
		if cand.Name == base {
			s = cand
			break
		}
	}
	if s.Kernel == nil {
		return nil, nil, 0, fmt.Errorf("meld: no suite kernel workload %q", base)
	}
	prog, setup, repeat, err := s.Kernel(cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	melded, n, err := MeldProgram(prog)
	if err != nil {
		return nil, nil, 0, err
	}
	if n == 0 {
		return nil, nil, 0, fmt.Errorf("meld: %s has no meldable sites", base)
	}
	melded.Name = base + "-meld"
	return melded, setup, repeat, nil
}

func scMeldKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	return meldVariant("sc", cfg)
}

func espressoMeldKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	return meldVariant("espresso", cfg)
}
