package workload

import (
	"math"
	"math/rand"

	"balign/internal/ir"
	"balign/internal/metrics"
	"balign/internal/trace"
)

// synthModel carries the generated program's stochastic behaviour: the
// walker consults it for conditional outcome probabilities and indirect
// target distributions.
type synthModel struct {
	taken map[uint64]float64
	ij    map[uint64][]float64
}

func modelKey(proc int, block ir.BlockID) uint64 {
	return uint64(proc)<<32 | uint64(uint32(block))
}

func newSynthModel() *synthModel {
	return &synthModel{taken: make(map[uint64]float64), ij: make(map[uint64][]float64)}
}

// TakenProb implements trace.Model.
func (m *synthModel) TakenProb(proc int, block ir.BlockID) float64 {
	return m.taken[modelKey(proc, block)]
}

// IJumpWeights implements trace.Model.
func (m *synthModel) IJumpWeights(proc int, block ir.BlockID) []float64 {
	return m.ij[modelKey(proc, block)]
}

// genKnobs are the internal generation parameters derived from a Spec and
// refined by one calibration pass.
type genKnobs struct {
	segsPerLoop  int
	alphaDiamond float64 // fraction of segments that are diamonds
	betaSwitch   float64 // fraction of segments that are switches
	gammaCall    float64 // fraction of segments that are call sites
	meanTrips    float64 // mean loop trip count
	diamondTaken float64 // mean taken probability of diamond conditionals
	opsPerIter   float64 // non-break instructions per loop iteration
}

// deriveKnobs computes first-order knobs from the spec targets; see the
// accounting in the comments (per loop iteration: one back-edge conditional,
// S*alpha diamond conditionals, S*beta indirect jumps, S*gamma call/return
// pairs).
func deriveKnobs(s Spec) genKnobs {
	k := genKnobs{segsPerLoop: 3}
	S := float64(k.segsPerLoop)

	rBr := s.MixBr / s.MixCBr
	// Each diamond emits an unconditional branch on roughly half its
	// executions (arms are placed in random orientation).
	k.alphaDiamond = clampF(rBr/(0.5*S-S*rBr+1e-9), 0.02, 0.8)
	cbrPerIter := 1 + S*k.alphaDiamond
	k.betaSwitch = clampF(s.MixIJ/s.MixCBr*cbrPerIter/S, 0, 0.5)
	k.gammaCall = clampF(s.MixCall/s.MixCBr*cbrPerIter/S, 0, 0.5)

	// Taken rate: back edges are taken trips/(trips+1) of the time,
	// diamonds diamondTaken of the time.
	target := s.PctTaken / 100
	k.meanTrips = 20
	pLoop := k.meanTrips / (k.meanTrips + 1)
	k.diamondTaken = (target*cbrPerIter - pLoop) / (S * k.alphaDiamond)
	if k.diamondTaken < 0.08 {
		// Even never-taken diamonds leave the rate too high: shorten loops.
		k.diamondTaken = 0.08
		x := target*cbrPerIter - S*k.alphaDiamond*k.diamondTaken
		x = clampF(x, 0.45, 0.99)
		k.meanTrips = clampF(x/(1-x), 2, 400)
	} else if k.diamondTaken > 0.92 {
		k.diamondTaken = 0.92
		x := target*cbrPerIter - S*k.alphaDiamond*k.diamondTaken
		x = clampF(x, 0.45, 0.995)
		k.meanTrips = clampF(x/(1-x), 2, 400)
	}

	evPerIter := cbrPerIter + S*k.betaSwitch + 2*S*k.gammaCall
	k.opsPerIter = evPerIter*(100/s.PctBreaks-1) - S*k.betaSwitch // arms add a little
	if k.opsPerIter < 1 {
		k.opsPerIter = 1
	}
	return k
}

func clampF(v, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, v)) }

// synthesize generates a program matching the spec's statistics, with one
// calibration round: generate, walk briefly, measure break density and
// taken rate, correct the knobs, regenerate.
func synthesize(s Spec, seed int64) (*ir.Program, trace.Model) {
	knobs := deriveKnobs(s)
	prog, model := generate(s, knobs, seed)

	// Calibration walk.
	col := metrics.NewCollector()
	w := &trace.Walker{Prog: prog, Model: model, Seed: seed + 7, MaxInstrs: 200_000}
	instrs, _ := w.Run(col, nil)
	col.Instrs = instrs
	attr := col.Attributes(prog)

	if attr.PctBreaks > 0.1 && s.PctBreaks > 0 {
		// opsPerIter scales inversely with break density.
		ratio := (100/s.PctBreaks - 1) / math.Max(100/attr.PctBreaks-1, 0.1)
		knobs.opsPerIter = clampF(knobs.opsPerIter*ratio, 1, 500)
	}
	if attr.PctTaken > 1 && s.PctTaken > 0 {
		diff := (s.PctTaken - attr.PctTaken) / 100
		knobs.diamondTaken = clampF(knobs.diamondTaken+diff/math.Max(knobs.alphaDiamond*3, 0.2), 0.03, 0.97)
		// Nudge loop length in the same direction.
		x := clampF(knobs.meanTrips/(knobs.meanTrips+1)+diff/2, 0.4, 0.995)
		knobs.meanTrips = clampF(x/(1-x), 2, 400)
	}
	return generate(s, knobs, seed)
}

// generate builds the program: a dispatch loop in main selecting leaf
// procedures with Zipf-distributed frequency, each leaf a run of loops whose
// bodies contain diamond/switch/call segments, plus small utility callees.
func generate(s Spec, k genKnobs, seed int64) (*ir.Program, trace.Model) {
	rng := rand.New(rand.NewSource(seed))
	model := newSynthModel()
	prog := &ir.Program{Name: s.Name, MemWords: 16}

	nLeaves := s.Procs
	if nLeaves < 1 {
		nLeaves = 1
	}
	nUtils := 2
	if nLeaves >= 8 {
		nUtils = 4
	}

	// Procedure indices: 0 = main, 1..nLeaves = leaves, then utilities.
	leafProc := func(i int) int { return 1 + i }
	utilProc := func(i int) int { return 1 + nLeaves + i }

	// Zipf hotness over leaves.
	weights := make([]float64, nLeaves)
	var wsum float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s.HotSkew)
		wsum += weights[i]
	}

	// --- main: dispatch chain ---
	// d_i: cond -> call_i (with the conditional taken probability chosen so
	// leaf i is selected with its Zipf share), fall -> d_{i+1}; the last
	// dispatch falls to a call of the last leaf. call blocks jump back to
	// the head of the chain.
	main := &ir.Proc{Name: "main"}
	prog.Procs = append(prog.Procs, main)
	mb := &blockBuilder{proc: main, procIdx: 0, model: model, rng: rng}

	dispatch := make([]ir.BlockID, nLeaves) // dispatch test blocks
	callBlk := make([]ir.BlockID, nLeaves)
	for i := 0; i < nLeaves; i++ {
		dispatch[i] = mb.newBlock()
	}
	for i := 0; i < nLeaves; i++ {
		callBlk[i] = mb.newBlock()
	}
	remaining := wsum
	for i := 0; i < nLeaves; i++ {
		p := weights[i] / remaining
		remaining -= weights[i]
		if i == nLeaves-1 {
			// Last test falls through to its call unconditionally; emit a
			// branch to the call block (kept simple as an uncond edge).
			mb.setInstrs(dispatch[i], []ir.Instr{{Op: ir.OpBr, TargetBlock: callBlk[i]}})
			continue
		}
		mb.setInstrs(dispatch[i], []ir.Instr{
			{Op: ir.OpBnez, Rd: uint8(1 + i%8), TargetBlock: callBlk[i]},
		})
		model.taken[modelKey(0, dispatch[i])] = p
	}
	for i := 0; i < nLeaves; i++ {
		mb.setInstrs(callBlk[i], []ir.Instr{
			{Op: ir.OpCall, TargetProc: leafProc(i)},
			{Op: ir.OpBr, TargetBlock: dispatch[0]},
		})
	}

	// --- leaves ---
	// Distribute the conditional-site budget over leaves (hot leaves are
	// not necessarily bigger; spread evenly with mild variation).
	sitesPerLeaf := s.CondSites / nLeaves
	if sitesPerLeaf < 1 {
		sitesPerLeaf = 1
	}
	segTypes := []float64{k.alphaDiamond, k.betaSwitch, k.gammaCall}
	for i := 0; i < nLeaves; i++ {
		leaf := &ir.Proc{Name: leafName(i)}
		prog.Procs = append(prog.Procs, leaf)
		lb := &blockBuilder{proc: leaf, procIdx: leafProc(i), model: model, rng: rng}
		// Loops per leaf: each loop contributes ~1+S*alpha conditional
		// sites.
		sitesPerLoop := 1 + float64(k.segsPerLoop)*k.alphaDiamond
		nLoops := int(math.Round(float64(sitesPerLeaf)/sitesPerLoop + rng.Float64() - 0.5))
		if nLoops < 1 {
			nLoops = 1
		}
		for l := 0; l < nLoops; l++ {
			lb.emitLoop(k, segTypes, nUtils, func(u int) int { return utilProc(u) })
		}
		lb.endBlock(ir.Instr{Op: ir.OpRet})
	}

	// --- utilities ---
	for u := 0; u < nUtils; u++ {
		util := &ir.Proc{Name: utilName(u)}
		prog.Procs = append(prog.Procs, util)
		ub := &blockBuilder{proc: util, procIdx: utilProc(u), model: model, rng: rng}
		b := ub.newBlock()
		n := 2 + rng.Intn(6)
		instrs := make([]ir.Instr, 0, n+1)
		for j := 0; j < n; j++ {
			instrs = append(instrs, opInstr(rng))
		}
		instrs = append(instrs, ir.Instr{Op: ir.OpRet})
		ub.setInstrs(b, instrs)
	}

	prog.AssignAddresses(0x1000)
	return prog, model
}

func leafName(i int) string {
	return "leaf" + itoa(i)
}

func utilName(i int) string {
	return "util" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// opInstr returns a random harmless computational instruction.
func opInstr(rng *rand.Rand) ir.Instr {
	r := uint8(1 + rng.Intn(ir.NumRegs-1))
	switch rng.Intn(3) {
	case 0:
		return ir.Instr{Op: ir.OpAddi, Rd: r, Rs: r, Imm: 1}
	case 1:
		return ir.Instr{Op: ir.OpXor, Rd: r, Rs: r, Rt: r}
	default:
		return ir.Instr{Op: ir.OpMuli, Rd: r, Rs: r, Imm: 3}
	}
}

// blockBuilder incrementally constructs a procedure's blocks.
type blockBuilder struct {
	proc    *ir.Proc
	procIdx int
	model   *synthModel
	rng     *rand.Rand
	open    ir.BlockID // block currently accepting instructions, or NoBlock
	hasOpen bool
}

func (b *blockBuilder) newBlock() ir.BlockID {
	b.proc.Blocks = append(b.proc.Blocks, &ir.Block{Orig: ir.BlockID(len(b.proc.Blocks))})
	b.open = ir.BlockID(len(b.proc.Blocks) - 1)
	b.hasOpen = true
	return b.open
}

func (b *blockBuilder) setInstrs(id ir.BlockID, instrs []ir.Instr) {
	b.proc.Blocks[id].Instrs = instrs
}

// cur returns the open block, creating one if needed.
func (b *blockBuilder) cur() ir.BlockID {
	if !b.hasOpen {
		return b.newBlock()
	}
	return b.open
}

// add appends instructions to the open block.
func (b *blockBuilder) add(instrs ...ir.Instr) {
	id := b.cur()
	b.proc.Blocks[id].Instrs = append(b.proc.Blocks[id].Instrs, instrs...)
}

// endBlock appends a terminator and closes the block.
func (b *blockBuilder) endBlock(term ir.Instr) ir.BlockID {
	id := b.cur()
	b.proc.Blocks[id].Instrs = append(b.proc.Blocks[id].Instrs, term)
	b.hasOpen = false
	return id
}

// pad appends n random computational instructions.
func (b *blockBuilder) pad(n int) {
	for i := 0; i < n; i++ {
		b.add(opInstr(b.rng))
	}
}

// emitLoop generates one loop: header padding, segments (diamond / switch /
// call / plain), and a backward conditional branch. Loops are emitted in the
// "rotated" source form compilers commonly produce: body first, conditional
// at the bottom targeting the body head.
func (b *blockBuilder) emitLoop(k genKnobs, segTypes []float64, nUtils int, utilProc func(int) int) {
	rng := b.rng
	trips := clampF(k.meanTrips*math.Exp(rng.Float64()*2-1), 2, 500)

	// Ops budget per iteration, split across segments.
	ops := int(math.Round(k.opsPerIter * (0.6 + 0.8*rng.Float64())))
	if ops < 1 {
		ops = 1
	}

	b.pad(1 + ops/4)
	bodyHead := b.cur()

	nSegs := k.segsPerLoop
	perSeg := ops / (nSegs + 1)
	for s := 0; s < nSegs; s++ {
		b.pad(perSeg)
		r := rng.Float64()
		switch {
		case r < segTypes[0]:
			b.emitDiamond(k, perSeg)
		case r < segTypes[0]+segTypes[1]:
			b.emitSwitch(perSeg)
		case r < segTypes[0]+segTypes[1]+segTypes[2]:
			b.add(ir.Instr{Op: ir.OpCall, TargetProc: utilProc(rng.Intn(nUtils))})
		}
	}
	b.pad(ops - perSeg*nSegs)

	// Backward conditional: taken -> bodyHead.
	back := b.endBlock(ir.Instr{Op: ir.OpBnez, Rd: uint8(1 + rng.Intn(8)), TargetBlock: bodyHead})
	b.model.taken[modelKey(b.procIdx, back)] = trips / (trips + 1)
}

// emitDiamond generates an if/else: the conditional's arms are oriented
// randomly (taken-to-then or taken-to-else), so generated code is not
// pre-aligned and alignment has real work to do.
func (b *blockBuilder) emitDiamond(k genKnobs, armOps int) {
	rng := b.rng
	pTaken := clampF(k.diamondTaken+rng.NormFloat64()*0.15, 0.02, 0.98)

	condBlk := b.cur()
	thenBlk := ir.BlockID(len(b.proc.Blocks)) // fall arm
	elseBlk := thenBlk + 1                    // taken arm
	joinBlk := thenBlk + 2
	_ = thenBlk

	b.endBlock(ir.Instr{Op: condOp(rng), TargetBlock: elseBlk})
	b.model.taken[modelKey(b.procIdx, condBlk)] = pTaken

	// then (fall) arm: ops, jump over else to join.
	b.newBlock()
	b.pad(1 + armOps/2)
	b.endBlock(ir.Instr{Op: ir.OpBr, TargetBlock: joinBlk})

	// else (taken) arm: ops, falls through to join.
	b.newBlock()
	b.pad(1 + armOps/2)
	b.hasOpen = false // falls through to join

	b.newBlock() // join
}

// emitSwitch generates an indirect jump over 2-5 arms with a random target
// distribution.
func (b *blockBuilder) emitSwitch(armOps int) {
	rng := b.rng
	nArms := 2 + rng.Intn(4)
	swBlk := b.cur()

	arms := make([]ir.BlockID, nArms)
	base := ir.BlockID(len(b.proc.Blocks))
	for i := range arms {
		arms[i] = base + ir.BlockID(i)
	}
	join := base + ir.BlockID(nArms)

	b.endBlock(ir.Instr{Op: ir.OpIJump, Rd: uint8(1 + rng.Intn(8)), Targets: arms})
	weights := make([]float64, nArms)
	for i := range weights {
		weights[i] = math.Pow(rng.Float64(), 2) + 0.02
	}
	b.model.ij[modelKey(b.procIdx, swBlk)] = weights

	for i := 0; i < nArms; i++ {
		b.newBlock()
		b.pad(1 + armOps/nArms)
		if i < nArms-1 {
			b.endBlock(ir.Instr{Op: ir.OpBr, TargetBlock: join})
		} else {
			b.hasOpen = false // last arm falls into join
		}
	}
	b.newBlock() // join
}

func condOp(rng *rand.Rand) ir.Opcode {
	ops := []ir.Opcode{ir.OpBeqz, ir.OpBnez, ir.OpBltz, ir.OpBgez}
	op := ops[rng.Intn(len(ops))]
	return op
}
