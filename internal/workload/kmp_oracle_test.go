package workload

import (
	"reflect"
	"testing"

	"balign/internal/ir"
	"balign/internal/predict"
	"balign/internal/trace"
	"balign/internal/vm"
)

// The KMP property oracle: the string-matching kernel's break-event stream
// is exactly determined by the algorithm, so every pipeline quantity has an
// independent expectation. Layer 1 checks the VM's event stream against the
// pure-Go reference trace, event for event. Layer 2 re-implements each
// dynamic architecture from its documented behaviour, drives it from the
// reference trace, and demands exact integer agreement with the real
// simulators — per-site for the PHTs, aggregate for all.

// kmpVMEvents executes the kernel and returns its break-event stream.
func kmpVMEvents(t *testing.T, strong bool, pat, text []int64) ([]trace.Event, *ir.Program, int64) {
	t.Helper()
	prog, setup, err := BuildKMP(strong, pat, text)
	if err != nil {
		t.Fatalf("BuildKMP: %v", err)
	}
	var events []trace.Event
	machine := vm.New(prog)
	setup(machine)
	_, err = machine.Run(trace.SinkFunc(func(ev trace.Event) { events = append(events, ev) }), nil)
	if err != nil {
		t.Fatalf("vm run: %v", err)
	}
	return events, prog, machine.Mem()[kmpOutCount]
}

// refVMEvents maps the reference break trace onto the program's addresses,
// producing the exact event stream the VM must emit.
func refVMEvents(t *testing.T, prog *ir.Program, ref []KMPEvent) []trace.Event {
	t.Helper()
	pcs, targets, err := KMPSitePCs(prog)
	if err != nil {
		t.Fatalf("KMPSitePCs: %v", err)
	}
	out := make([]trace.Event, 0, len(ref))
	for _, e := range ref {
		pc := pcs[e.Site]
		ev := trace.Event{PC: pc, Taken: true, Fall: pc + ir.InstrBytes}
		switch e.Site {
		case KMPSiteBrBorder, KMPSiteBrMatch:
			ev.Kind = ir.Br
			ev.Target = targets[e.Site]
			ev.TakenTarget = targets[e.Site]
		default:
			ev.Kind = ir.CondBr
			ev.Taken = e.Taken
			ev.TakenTarget = targets[e.Site]
			if e.Taken {
				ev.Target = targets[e.Site]
			} else {
				// Original layout: blocks are contiguous, so the fall-through
				// block starts right after the branch.
				ev.Target = pc + ir.InstrBytes
			}
		}
		out = append(out, ev)
	}
	return out
}

// countMatches is the slowest, most obviously correct matcher: the oracle
// for the kernels' match counts.
func countMatches(pat, text []int64) int64 {
	var n int64
	for i := 0; i+len(pat) <= len(text); i++ {
		ok := true
		for j := range pat {
			if text[i+j] != pat[j] {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}

func TestKMPTraceMatchesReference(t *testing.T) {
	for _, strong := range []bool{false, true} {
		for seed := int64(0); seed < 4; seed++ {
			pat := KMPRandomSymbols(seed*17+3, 5, 2)
			text := KMPRandomSymbols(seed*29+11, 300, 2)
			got, prog, matches := kmpVMEvents(t, strong, pat, text)
			ref, refMatches := KMPBreakTrace(strong, pat, text)
			want := refVMEvents(t, prog, ref)
			if matches != refMatches || matches != countMatches(pat, text) {
				t.Fatalf("strong=%v seed=%d: matches vm=%d ref=%d naive=%d",
					strong, seed, matches, refMatches, countMatches(pat, text))
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("strong=%v seed=%d: event stream diverges (vm %d events, ref %d)",
					strong, seed, len(got), len(want))
			}
		}
	}
}

// --- independent architecture models, driven by the reference trace ---

// modelResult mirrors the aggregate counters the real simulators produce.
type modelResult struct {
	mispredicts, misfetches, cond, condTaken, condCorrect uint64
}

// phtOracle models a PHT architecture over the reference trace: predict is
// resolved per event, so the aggregate accounting (including the "correct
// taken conditional misfetches" rule) and the per-site mispredict counts
// come from the same pass. index maps a site to its counter slot; for the
// direct-mapped table the kernel's sites never alias (a handful of distinct
// addresses in 4096 entries), so each site is an independent 2-bit counter
// — which is what makes closed forms possible.
func phtOracle(ref []KMPEvent, entries int, index func(site int, ghr uint64) uint64) (modelResult, [kmpNumSites]uint64) {
	counters := make([]predict.Counter2, entries)
	for i := range counters {
		counters[i] = predict.Counter2Init
	}
	var ghr uint64
	var r modelResult
	var mispredicts [kmpNumSites]uint64
	for _, e := range ref {
		if e.Site == KMPSiteBrBorder || e.Site == KMPSiteBrMatch {
			r.misfetches++ // unconditional br: always a misfetch
			continue
		}
		r.cond++
		if e.Taken {
			r.condTaken++
		}
		idx := index(e.Site, ghr)
		if counters[idx].Taken() == e.Taken {
			r.condCorrect++
			if e.Taken {
				r.misfetches++ // correct taken cond: fall-through was fetched
			}
		} else {
			r.mispredicts++
			mispredicts[e.Site]++
		}
		counters[idx] = counters[idx].Update(e.Taken)
		ghr = (ghr << 1) & uint64(entries-1)
		if e.Taken {
			ghr |= 1
		}
	}
	return r, mispredicts
}

// directOracle is phtOracle with site-indexed counters (no aliasing).
func directOracle(ref []KMPEvent) (modelResult, [kmpNumSites]uint64) {
	return phtOracle(ref, kmpNumSites, func(site int, _ uint64) uint64 { return uint64(site) })
}

// gshareOracle is phtOracle with the 4096-entry gshare index: a shared
// 12-bit global history XORed with the site address, so sites interact
// through both the history and (potentially) aliased counters.
func gshareOracle(ref []KMPEvent, pcs [kmpNumSites]uint64) (modelResult, [kmpNumSites]uint64) {
	const entries = 4096
	return phtOracle(ref, entries, func(site int, ghr uint64) uint64 {
		return ((pcs[site] / ir.InstrBytes) ^ ghr) & (entries - 1)
	})
}

// btbOracle re-implements the BTB architecture from its documented
// behaviour for the two break kinds kmp contains (cond, br). The kernel's
// six branch addresses occupy six distinct sets in both simulated
// geometries (64-entry/2-way and 256-entry/4-way), so eviction never
// triggers and the model needs no replacement policy — it does verify that
// premise before relying on it.
type btbLine struct {
	target  uint64
	counter predict.Counter2
}

func btbOracle(t *testing.T, ref []KMPEvent, pcs, targets [kmpNumSites]uint64, entries, ways int) modelResult {
	t.Helper()
	sets := uint64(entries / ways)
	bySet := map[uint64]int{}
	for _, pc := range pcs {
		bySet[(pc/ir.InstrBytes)%sets]++
	}
	for set, n := range bySet {
		if n > ways {
			t.Fatalf("btb oracle premise broken: %d sites share set %d (%d ways)", n, set, ways)
		}
	}
	lines := make(map[uint64]*btbLine) // keyed by full pc: exact, given no eviction
	var r modelResult
	for _, e := range ref {
		pc := pcs[e.Site]
		if e.Site == KMPSiteBrBorder || e.Site == KMPSiteBrMatch {
			if lines[pc] == nil { // br: hit free, miss misfetch + insert
				r.misfetches++
				lines[pc] = &btbLine{target: targets[e.Site], counter: 3}
			}
			continue
		}
		r.cond++
		if e.Taken {
			r.condTaken++
		}
		ln := lines[pc]
		switch {
		case ln != nil:
			if ln.counter.Taken() == e.Taken {
				r.condCorrect++ // hit with correct direction: free
			} else {
				r.mispredicts++
			}
			ln.counter = ln.counter.Update(e.Taken)
			if e.Taken {
				ln.target = targets[e.Site]
			}
		case e.Taken: // miss on a taken cond: fall-through was predicted
			r.mispredicts++
			lines[pc] = &btbLine{target: targets[e.Site], counter: 3}
		default: // miss on a not-taken cond: free
			r.condCorrect++
		}
	}
	return r
}

// simulate runs the real architecture simulator over the VM's event stream.
func simulate(t *testing.T, id predict.ArchID, events []trace.Event) predict.Result {
	t.Helper()
	sim, err := predict.NewSimulator(id, nil, nil)
	if err != nil {
		t.Fatalf("NewSimulator(%s): %v", id, err)
	}
	for _, ev := range events {
		sim.Event(ev)
	}
	return sim.Result()
}

func TestKMPDynamicArchOracle(t *testing.T) {
	for _, strong := range []bool{false, true} {
		for seed := int64(0); seed < 3; seed++ {
			pat := KMPRandomSymbols(seed*101+7, 7, 2)
			text := KMPRandomSymbols(seed*211+13, 2000, 2)
			events, prog, _ := kmpVMEvents(t, strong, pat, text)
			ref, _ := KMPBreakTrace(strong, pat, text)
			pcs, targets, err := KMPSitePCs(prog)
			if err != nil {
				t.Fatalf("KMPSitePCs: %v", err)
			}

			check := func(id predict.ArchID, want modelResult) {
				got := simulate(t, id, events)
				if got.Mispredicts != want.mispredicts || got.Misfetches != want.misfetches ||
					got.Cond != want.cond || got.CondTaken != want.condTaken ||
					got.CondCorrect != want.condCorrect {
					t.Errorf("strong=%v seed=%d %s: pipeline {mp:%d mf:%d cond:%d taken:%d ok:%d} != oracle {mp:%d mf:%d cond:%d taken:%d ok:%d}",
						strong, seed, id,
						got.Mispredicts, got.Misfetches, got.Cond, got.CondTaken, got.CondCorrect,
						want.mispredicts, want.misfetches, want.cond, want.condTaken, want.condCorrect)
				}
			}

			direct, _ := directOracle(ref)
			gshare, _ := gshareOracle(ref, pcs)
			check(predict.ArchPHTDirect, direct)
			check(predict.ArchPHTGshare, gshare)
			check(predict.ArchBTB64, btbOracle(t, ref, pcs, targets, 64, 2))
			check(predict.ArchBTB256, btbOracle(t, ref, pcs, targets, 256, 4))
		}
	}
}

// TestKMPClosedFormSiteCounts pins the hand-derived per-site mispredict
// counts for the direct-mapped PHT on the fully deterministic family
// pattern = a^m, text = a^n (every comparison succeeds):
//
//   - site C (comparison): always taken; the weakly-not-taken initial
//     counter mispredicts exactly the first execution → 1;
//   - site B (border bottom): j never goes negative → never taken, counter
//     never leaves the not-taken half → 0;
//   - site L (outer): not taken n times, then taken once at exit → 1;
//   - site M (match check): taken m-1 times (prefix build-up), then not
//     taken for every remaining position (a match at each of the n-m+1
//     windows, fail[m] = m-1 keeps j at m after each advance). The taken
//     run costs 1 (initial counter), the direction flip costs 2 (counter
//     saturated at 3 walks down through 2) → 3 for m ≥ 3, n-m+1 ≥ 2.
//
// Both failure-table variants agree here: for a^m the weak and strict
// tables differ only at indices the run never consults (fail[j] for j < m
// is only read on a mismatch, which never happens).
func TestKMPClosedFormSiteCounts(t *testing.T) {
	const m, n = 4, 40
	pat := make([]int64, m)
	text := make([]int64, n)
	for _, strong := range []bool{false, true} {
		ref, matches := KMPBreakTrace(strong, pat, text)
		if want := int64(n - m + 1); matches != want {
			t.Fatalf("strong=%v: a^%d in a^%d: %d matches, want %d", strong, m, n, matches, want)
		}
		_, bySite := directOracle(ref)
		want := [kmpNumSites]uint64{
			KMPSiteL: 1,
			KMPSiteB: 0,
			KMPSiteC: 1,
			KMPSiteM: 3,
		}
		if bySite != want {
			t.Errorf("strong=%v: per-site pht-direct mispredicts %v, want %v", strong, bySite, want)
		}
	}
}

// TestKMPMetamorphicRelabeling checks the symmetry the paper's analysis
// relies on: matching is invariant under any permutation of the alphabet
// applied to both pattern and text, so the full reference trace and the
// full pipeline results must be unchanged.
func TestKMPMetamorphicRelabeling(t *testing.T) {
	relabel := func(s []int64, perm map[int64]int64) []int64 {
		out := make([]int64, len(s))
		for i, v := range s {
			out[i] = perm[v]
		}
		return out
	}
	perm := map[int64]int64{0: 2, 1: 5, 2: 9, 3: 0}
	for _, strong := range []bool{false, true} {
		pat := KMPRandomSymbols(97, 6, 4)
		text := KMPRandomSymbols(131, 1500, 4)
		ref, matches := KMPBreakTrace(strong, pat, text)
		ref2, matches2 := KMPBreakTrace(strong, relabel(pat, perm), relabel(text, perm))
		if matches != matches2 || !reflect.DeepEqual(ref, ref2) {
			t.Fatalf("strong=%v: reference trace not invariant under relabeling", strong)
		}
		ev1, _, _ := kmpVMEvents(t, strong, pat, text)
		ev2, _, _ := kmpVMEvents(t, strong, relabel(pat, perm), relabel(text, perm))
		if !reflect.DeepEqual(ev1, ev2) {
			t.Fatalf("strong=%v: VM event stream not invariant under relabeling", strong)
		}
		for _, id := range predict.DynamicArchs() {
			r1, r2 := simulate(t, id, ev1), simulate(t, id, ev2)
			if r1 != r2 {
				t.Errorf("strong=%v %s: results differ under relabeling: %+v vs %+v", strong, id, r1, r2)
			}
		}
	}
}
