package workload

import (
	"fmt"

	"balign/internal/asm"
	"balign/internal/ir"
	"balign/internal/vm"
)

// The phased workload is an adversarial family for profile-guided layout:
// its hot branch has a ~90% taken rate in even phases and ~10% in odd
// phases, flipping at every phase boundary. Aggregate profiles see a
// near-balanced branch and gain little from alignment, while the dynamic
// predictors pay a retraining cost at each boundary — the gap between
// static and dynamic columns in the grid is the point of the family.

const (
	phasedBitsBase = 0     // per-element Bernoulli bits (0/1)
	phasedParamN   = 16384 // elements per phase
	phasedParamP   = 16385 // number of phases
	phasedOutTally = 16386 // taken tally written by the kernel
	phasedMaxN     = 16384
)

// phasedSrc iterates p phases over the same n bits, XORing each bit with the
// phase parity so the hot branch's taken direction flips every phase.
const phasedSrc = `
mem 32768
proc main
    ld r3, 16384(r0)   ; n: elements per phase
    ld r4, 16385(r0)   ; p: phases
    li r5, 0           ; phase index
    li r9, 0           ; taken tally
phase:
    bge r5, r4, done
    li r1, 0           ; element index
    andi r6, r5, 1     ; phase parity
elem:
    bge r1, r3, nextphase
    ld r7, 0(r1)       ; element bit
    xor r7, r7, r6     ; odd phases invert the direction
    beqz r7, skip      ; the phase-flipping hot branch
    addi r9, r9, 1
skip:
    addi r1, r1, 1
    br elem
nextphase:
    addi r5, r5, 1
    br phase
done:
    st r9, 16386(r0)
    halt
endproc
`

// BuildPhased assembles the phase-flip kernel over the given 0/1 bits,
// running phases passes over them. Bits are sampled once; the direction
// flip comes from the kernel's parity XOR, not from re-sampling.
func BuildPhased(bits []int64, phases int) (*ir.Program, func(*vm.VM), error) {
	n := len(bits)
	if n == 0 || n > phasedMaxN {
		return nil, nil, fmt.Errorf("phased: %d bits out of range [1,%d]", n, phasedMaxN)
	}
	if phases < 1 {
		return nil, nil, fmt.Errorf("phased: need at least 1 phase, got %d", phases)
	}
	for i, b := range bits {
		if b != 0 && b != 1 {
			return nil, nil, fmt.Errorf("phased: bit %d is %d, want 0 or 1", i, b)
		}
	}
	prog, err := asm.Assemble(phasedSrc)
	if err != nil {
		return nil, nil, err
	}
	prog.Name = "phased"
	data := append([]int64(nil), bits...)
	setup := func(v *vm.VM) {
		v.SetMem(phasedBitsBase, data)
		v.SetMem(phasedParamN, []int64{int64(n), int64(phases)})
	}
	return prog, setup, nil
}

func phasedKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	const n = 2048
	phases := int(12 * cfg.scale())
	if phases < 2 {
		phases = 2
	}
	bits := make([]int64, n)
	x := cfg.Seed*9176156261 + cfg.InputSeed*15485863 + 307
	for i := range bits {
		x = x*6364136223846793005 + 1442695040888963407
		if int64(uint64(x)>>33)%10 < 9 {
			bits[i] = 1 // hot direction ~90% of elements
		}
	}
	prog, setup, err := BuildPhased(bits, phases)
	return prog, setup, 4, err
}
