package workload

import (
	"balign/internal/asm"
	"balign/internal/ir"
	"balign/internal/vm"
)

// The kernels below are real programs executed by the VM. Each stands in
// for one paper benchmark, reproducing the control-flow character the paper
// attributes to it (ALVINN's single-block inner loops, ESPRESSO's irregular
// bit-set conditionals, LI's dispatch indirection, ...). Their data is
// synthesized deterministically in the setup hooks.

// alvinnKernel models the neural-net forward passes the paper singles out:
// input_hidden and hidden_output are tight matrix-vector loops; the paper
// notes ~6% of all ALVINN branches come from the single 11-instruction
// inner-loop block of input_hidden (Figure 2).
func alvinnKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	const src = `
mem 8192
proc main
    li r20, 24         ; passes
pass:
    call input_hidden
    call hidden_output
    addi r20, r20, -1
    bnez r20, pass
    halt
endproc

; hidden[j] = sum_i in[i]*w[j][i]; in at 0, w at 128, hidden at 4000
proc input_hidden
    li r1, 0           ; j
    li r10, 24         ; NH
hloop:
    li r2, 0           ; i
    li r11, 96         ; NI
    li r3, 0           ; acc
    muli r4, r1, 96
    addi r4, r4, 128
iloop:
    ld r5, 0(r2)
    add r6, r4, r2
    ld r7, 0(r6)
    mul r8, r5, r7
    add r3, r3, r8
    addi r8, r8, 0
    mov r12, r3
    add r13, r12, r5
    xor r13, r13, r7
    addi r2, r2, 1
    blt r2, r11, iloop ; 11-instruction loop block, as in the paper
    addi r9, r1, 4000
    st r3, 0(r9)
    addi r1, r1, 1
    blt r1, r10, hloop
    ret
endproc

; out[k] = sum_j hidden[j]*w2[k][j]; w2 at 4100, out at 4400
proc hidden_output
    li r1, 0           ; k
    li r10, 4          ; NO
oloop:
    li r2, 0           ; j
    li r11, 24         ; NH
    li r3, 0
    muli r4, r1, 24
    addi r4, r4, 4100
jloop:
    addi r5, r2, 4000
    ld r5, 0(r5)
    add r6, r4, r2
    ld r7, 0(r6)
    mul r8, r5, r7
    add r3, r3, r8
    addi r2, r2, 1
    blt r2, r11, jloop
    addi r9, r1, 4400
    st r3, 0(r9)
    addi r1, r1, 1
    blt r1, r10, oloop
    ret
endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, 0, err
	}
	setup := func(v *vm.VM) {
		words := make([]int64, 4100)
		x := int64(12345) + cfg.InputSeed*2654435761
		for i := range words {
			x = x*6364136223846793005 + 1442695040888963407
			words[i] = (x >> 33) % 100
		}
		v.SetMem(0, words)
	}
	return prog, setup, 1, nil
}

// tomcatvKernel models the vectorizable FORTRAN mesh relaxation: regular
// nested loops over a 2D grid, branches almost always taken.
func tomcatvKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	const src = `
mem 8192
proc main
    li r20, 6          ; sweeps
sweep:
    call relax
    addi r20, r20, -1
    bnez r20, sweep
    halt
endproc

; 4-point stencil over a 64x64 grid at 0..4095
proc relax
    li r1, 1           ; i
    li r10, 63
irow:
    li r2, 1           ; j
    muli r3, r1, 64
jcol:
    add r4, r3, r2     ; idx
    addi r5, r4, -64
    ld r6, 0(r5)       ; up
    addi r5, r4, 64
    ld r7, 0(r5)       ; down
    ld r8, -1(r4)      ; left
    ld r9, 1(r4)       ; right
    add r6, r6, r7
    add r6, r6, r8
    add r6, r6, r9
    li r7, 4
    div r6, r6, r7
    st r6, 0(r4)
    addi r2, r2, 1
    blt r2, r10, jcol
    addi r1, r1, 1
    blt r1, r10, irow
    ret
endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, 0, err
	}
	setup := func(v *vm.VM) {
		words := make([]int64, 4096)
		for i := range words {
			words[i] = int64((i*37 + i/64*11 + int(cfg.InputSeed)*13) % 997)
		}
		v.SetMem(0, words)
	}
	return prog, setup, 1, nil
}

// compressKernel models the SPECint compress loop: a run-length encoder
// whose branch behaviour is driven by the data's run structure.
func compressKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	const src = `
mem 16384
; input bytes at 0..4095, output pairs written from 8192
proc main
    li r20, 20         ; repetitions
rep:
    call rle
    addi r20, r20, -1
    bnez r20, rep
    halt
endproc

proc rle
    li r1, 0           ; read index
    li r2, 8192        ; write index
    li r10, 4096       ; n
    ld r3, 0(r1)       ; current value
    li r4, 1           ; run length
    addi r1, r1, 1
scan:
    bge r1, r10, flushlast
    ld r5, 0(r1)
    addi r1, r1, 1
    add r11, r11, r5   ; running checksum, as compress's hashing would
    xor r12, r12, r5
    shl r13, r5, r5
    add r12, r12, r13
    beq r5, r3, extend
    st r3, 0(r2)       ; emit (value, runlen)
    st r4, 1(r2)
    addi r2, r2, 2
    mov r3, r5
    li r4, 1
    br scan
extend:
    addi r4, r4, 1
    br scan
flushlast:
    st r3, 0(r2)
    st r4, 1(r2)
    ret
endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, 0, err
	}
	setup := func(v *vm.VM) {
		words := make([]int64, 4096)
		x := int64(99) + cfg.InputSeed*2654435761
		run := 0
		var val int64
		for i := range words {
			if run == 0 {
				x = x*6364136223846793005 + 1442695040888963407
				val = (x >> 40) % 6
				run = int((x>>20)%7) + 1
			}
			words[i] = val
			run--
		}
		v.SetMem(0, words)
	}
	return prog, setup, 1, nil
}

// eqntottKernel models eqntott's dominant cost: comparison sorting of bit
// vectors (the famous cmppt inner loop). An insertion sort over 600 keys
// with a called comparator.
func eqntottKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	const src = `
mem 4096
; keys at 0..599
proc main
    li r20, 1
rep:
    call isort
    addi r20, r20, -1
    bnez r20, rep
    halt
endproc

proc isort
    li r1, 1           ; i
    li r10, 600        ; n
outer:
    ld r2, 0(r1)       ; key
    mov r3, r1         ; j
inner:
    beqz r3, place
    addi r4, r3, -1
    ld r5, 0(r4)
    ble r5, r2, place
    st r5, 0(r3)
    mov r3, r4
    br inner
place:
    st r2, 0(r3)
    addi r1, r1, 1
    blt r1, r10, outer
    ret
endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, 0, err
	}
	setup := func(v *vm.VM) {
		words := make([]int64, 600)
		x := int64(7) + cfg.InputSeed*2654435761
		for i := range words {
			x = x*6364136223846793005 + 1442695040888963407
			words[i] = (x >> 30) % 10000
		}
		v.SetMem(0, words)
	}
	return prog, setup, 1, nil
}

// espressoKernel models espresso's cube/cover bit-set manipulation:
// word-wise set operations with irregular, data-dependent conditionals
// (the routine shown in the paper's Figure 1 is of this kind).
func espressoKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	const src = `
mem 8192
; set A at 0..511, set B at 512..1023, result at 1024..1535
proc main
    li r20, 120
rep:
    call cover
    addi r20, r20, -1
    bnez r20, rep
    halt
endproc

; for each word: intersect; if empty, skip; else merge and count bits
proc cover
    li r1, 0           ; index
    li r10, 512
    li r15, 0          ; nonempty count
wloop:
    ld r2, 0(r1)
    addi r3, r1, 512
    ld r3, 0(r3)
    and r4, r2, r3
    beqz r4, skip
    or r5, r2, r3
    addi r6, r1, 1024
    st r5, 0(r6)
    addi r15, r15, 1
    ; count low 8 bits of the intersection
    li r7, 8
bits:
    andi r8, r4, 1
    beqz r8, nobit
    addi r15, r15, 1
nobit:
    li r9, 1
    shr r4, r4, r9
    addi r7, r7, -1
    bnez r7, bits
skip:
    addi r1, r1, 1
    blt r1, r10, wloop
    st r15, 2000(r0)
    ret
endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, 0, err
	}
	setup := func(v *vm.VM) {
		words := make([]int64, 1024)
		x := int64(31337) + cfg.InputSeed*2654435761
		for i := range words {
			x = x*6364136223846793005 + 1442695040888963407
			if (x>>45)%3 == 0 {
				words[i] = 0 // sparse sets: many empty intersections
			} else {
				words[i] = (x >> 17) & 0xffff
			}
		}
		v.SetMem(0, words)
	}
	return prog, setup, 1, nil
}

// liKernel models the Lisp interpreter: a fetch-decode-execute loop whose
// decode mixes conditional chains with an indirect dispatch table, running
// a small bytecode program (iterated arithmetic with a bytecode-level loop).
//
// Bytecode (one word per cell, at 3000): opcode, operand pairs.
//
//	0 HALT | 1 PUSHI k | 2 ADD | 3 SUB | 4 DUP | 5 JNZ addr | 6 STORE a
func liKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	const src = `
mem 8192
; bytecode at 3000, value stack at 4000 (r21 = sp), pc = r20
proc main
    li r22, 200        ; outer repetitions of the bytecode program
outer:
    li r20, 3000
    li r21, 4000
floop:
    ld r1, 0(r20)      ; opcode
    ld r2, 1(r20)      ; operand
    addi r20, r20, 2
    beqz r1, fdone     ; HALT
    li r3, 1
    beq r1, r3, push
    li r3, 2
    beq r1, r3, doadd
    addi r4, r1, -3    ; 0:SUB 1:DUP 2:JNZ 3:STORE
    ijump r4, [dosub, dodup, dojnz, dostore]
push:
    st r2, 0(r21)
    addi r21, r21, 1
    br floop
doadd:
    addi r21, r21, -2
    ld r5, 0(r21)
    ld r6, 1(r21)
    add r5, r5, r6
    st r5, 0(r21)
    addi r21, r21, 1
    br floop
dosub:
    addi r21, r21, -2
    ld r5, 0(r21)
    ld r6, 1(r21)
    sub r5, r5, r6
    st r5, 0(r21)
    addi r21, r21, 1
    br floop
dodup:
    addi r7, r21, -1
    ld r5, 0(r7)
    st r5, 0(r21)
    addi r21, r21, 1
    br floop
dojnz:
    addi r21, r21, -1
    ld r5, 0(r21)
    beqz r5, floop
    mov r20, r2        ; branch taken in the bytecode
    br floop
dostore:
    addi r21, r21, -1
    ld r5, 0(r21)
    st r5, 0(r2)
    br floop
fdone:
    addi r22, r22, -1
    bnez r22, outer
    halt
endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, 0, err
	}
	setup := func(v *vm.VM) {
		// Bytecode: push 40; loop: dup, push 1, sub, dup, jnz loop; store; halt.
		// Computes a countdown from 40 and stores the final 0.
		n := int64(40 + (cfg.InputSeed%7+7)%7)
		bc := []int64{
			1, n, // PUSHI n
			// loop at 3004:
			4, 0, // DUP
			1, 1, // PUSHI 1
			3, 0, // SUB  (n-1 ... wait order: stack [n, n, 1] -> SUB -> n, n-1)
			4, 0, // DUP
			5, 3004, // JNZ loop
			6, 100, // STORE mem[100]
			0, 0, // HALT
		}
		v.SetMem(3000, bc)
	}
	return prog, setup, 1, nil
}
