package workload

import (
	"fmt"

	"balign/internal/asm"
	"balign/internal/ir"
	"balign/internal/vm"
)

// Diagnostic is a small program with a known, characteristic branch
// behaviour, used to validate the predictor simulators: each predictor
// family has patterns it must handle well and patterns that defeat it.
type Diagnostic struct {
	Name string
	Prog *ir.Program
	// Setup initializes VM state; may be nil.
	Setup func(*vm.VM)
	// Description states the expected behaviour.
	Description string
}

// Diagnostics returns the corpus.
func Diagnostics() []Diagnostic {
	mk := func(name, desc, src string, setup func(*vm.VM)) Diagnostic {
		prog, err := asm.Assemble(src)
		if err != nil {
			panic(fmt.Sprintf("workload: diagnostic %s: %v", name, err))
		}
		prog.Name = "diag-" + name
		return Diagnostic{Name: name, Prog: prog, Setup: setup, Description: desc}
	}
	return []Diagnostic{
		mk("alternating",
			"one branch strictly alternating T/N/T/N: near-perfect for "+
				"history predictors (gshare, local), ~50% for 2-bit counters",
			`
proc main
    li r1, 4000       ; iterations
loop:
    andi r2, r1, 1
    beqz r2, even     ; alternates every iteration
    addi r3, r3, 1
even:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`, nil),
		mk("biased",
			"a branch taken ~94% of the time: every predictor should reach "+
				"its bias rate or better",
			`
mem 8
proc main
    li r1, 4000
loop:
    li r4, 16
    mod r2, r1, r4
    beqz r2, rare     ; 1 in 16
    addi r3, r3, 1
    br next
rare:
    addi r5, r5, 1
next:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`, nil),
		mk("correlated",
			"the second branch's outcome equals the first's: global history "+
				"(gshare) predicts it near-perfectly, a direct-mapped PHT "+
				"cannot when the first is data-random",
			`
mem 4096
proc main
    li r1, 4000
loop:
    ld r2, 0(r10)     ; pseudo-random bit from memory
    addi r10, r10, 1
    andi r10, r10, 2047
    beqz r2, skipa    ; branch A: data random
    addi r3, r3, 1
skipa:
    beqz r2, skipb    ; branch B: perfectly correlated with A
    addi r4, r4, 1
skipb:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`, func(v *vm.VM) {
				words := make([]int64, 2048)
				x := int64(777)
				for i := range words {
					x = x*6364136223846793005 + 1442695040888963407
					words[i] = (x >> 62) & 1
				}
				v.SetMem(0, words)
			}),
		mk("random",
			"a data-random 50/50 branch: no predictor should do much better "+
				"than 50% on it (history predictors find no signal)",
			`
mem 4096
proc main
    li r1, 4000
loop:
    ld r2, 0(r10)
    addi r10, r10, 1
    andi r10, r10, 2047
    beqz r2, skip
    addi r3, r3, 1
skip:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`, func(v *vm.VM) {
				words := make([]int64, 2048)
				x := int64(31415)
				for i := range words {
					x = x*6364136223846793005 + 1442695040888963407
					words[i] = (x >> 62) & 1
				}
				v.SetMem(0, words)
			}),
		mk("nested",
			"nested counted loops: BT/FNT and 2-bit counters both excel "+
				"(back edges are taken except on exit)",
			`
proc main
    li r1, 64         ; outer
outer:
    li r2, 64         ; inner
inner:
    addi r3, r3, 1
    addi r2, r2, -1
    bnez r2, inner
    addi r1, r1, -1
    bnez r1, outer
    halt
endproc
`, nil),
	}
}

// DiagnosticByName returns the named diagnostic program.
func DiagnosticByName(name string) (Diagnostic, error) {
	for _, d := range Diagnostics() {
		if d.Name == name {
			return d, nil
		}
	}
	return Diagnostic{}, fmt.Errorf("workload: unknown diagnostic %q", name)
}
