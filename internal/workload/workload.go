// Package workload provides the benchmark suite standing in for the paper's
// traced programs (SPEC92 plus C++ applications). Two kinds of workload are
// provided:
//
//   - kernels: hand-written assembly programs with real semantics (sorting,
//     neural-net inner loops, compression, an expression interpreter, ...)
//     executed by the VM, so their traces are genuine executions and their
//     aligned variants are checked to compute identical results;
//   - synthetic programs: control-flow graphs generated to match each paper
//     program's Table 2 statistics (break density, taken rate, break-kind
//     mix, branch-site skew), traced by the profile-faithful walker.
//
// The paper's inputs are proprietary benchmark suites we do not have; the
// predictor and alignment machinery observe only the dynamic break stream
// and the CFG, which both kinds of workload produce faithfully.
package workload

import (
	"fmt"
	"sync"

	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
	"balign/internal/vm"
)

// Class groups programs the way the paper's tables do.
type Class string

// The paper's three program groups.
const (
	SPECfp  Class = "SPECfp92"
	SPECint Class = "SPECint92"
	Other   Class = "Other"
)

// Config scales and seeds the suite.
type Config struct {
	// Scale multiplies each workload's default trace budget; 1.0 gives the
	// default ~1M-instruction traces, larger values longer traces. Values
	// <= 0 mean 1.0.
	Scale float64
	// Seed perturbs all stochastic structure and walks; the default 0 is a
	// valid fixed seed.
	Seed int64
	// InputSeed varies the *data* a kernel workload runs on without
	// changing the program, enabling train-on-one-input /
	// evaluate-on-another experiments. Synthetic workloads fold it into
	// their walk seed.
	InputSeed int64
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1.0
	}
	return c.Scale
}

// Workload is one benchmark program: its original binary plus the machinery
// to execute or walk any layout-variant of it.
type Workload struct {
	Name  string
	Class Class
	// Prog is the original (pre-alignment) program, addresses assigned.
	Prog *ir.Program

	// VM kernels.
	setup  func(*vm.VM)
	repeat int

	// Synthetic programs.
	native trace.Model
	budget uint64
	seed   int64
	// runs is the number of complete program runs the original walk
	// finished within the budget; walks of aligned variants stop after the
	// same number of runs so comparisons are work-equivalent. It is set
	// lazily by the first original-program walk, which may race with
	// concurrent variant walks when the experiment engine shards one
	// workload's cells — hence the mutex.
	runsMu sync.Mutex
	runs   int
}

// origRuns returns the recorded original-walk run count (0 if no original
// walk has completed yet).
func (w *Workload) origRuns() int {
	w.runsMu.Lock()
	defer w.runsMu.Unlock()
	return w.runs
}

// noteOrigRuns records the run count of the first completed original walk.
func (w *Workload) noteOrigRuns(runs int) {
	w.runsMu.Lock()
	if w.runs == 0 {
		w.runs = runs
	}
	w.runsMu.Unlock()
}

// IsKernel reports whether the workload executes on the VM (true) or the
// stochastic walker (false).
func (w *Workload) IsKernel() bool { return w.native == nil }

// Run traces prog — the workload's original program or an aligned variant
// of it — delivering break events to sink and CFG observations to edges
// (either may be nil), and returns the number of instructions executed.
//
// For walker-backed workloads, pf must be an edge profile keyed to prog's
// block IDs when prog is not the original program (alignment returns the
// transferred profile); for the original program pf may be nil to use the
// generator's native behaviour model.
func (w *Workload) Run(prog *ir.Program, pf *profile.Profile, sink trace.Sink, edges trace.EdgeSink) (uint64, error) {
	if w.IsKernel() {
		var total uint64
		reps := w.repeat
		if reps <= 0 {
			reps = 1
		}
		for i := 0; i < reps; i++ {
			machine := vm.New(prog)
			if w.setup != nil {
				w.setup(machine)
			}
			res, err := machine.Run(sink, edges)
			if err != nil {
				return total, fmt.Errorf("workload %s: %w", w.Name, err)
			}
			total += res.Instrs
		}
		return total, nil
	}

	var model trace.Model
	switch {
	case pf != nil:
		model = pf.Model(prog)
	case prog == w.Prog:
		model = w.native
	default:
		return 0, fmt.Errorf("workload %s: tracing a non-original program requires its profile", w.Name)
	}
	walker := &trace.Walker{
		Prog:      prog,
		Model:     model,
		Seed:      w.seed,
		MaxInstrs: w.budget,
	}
	if origRuns := w.origRuns(); prog != w.Prog && origRuns > 0 {
		// Work-equivalence: walk the variant for as many complete runs as
		// the original managed, with a generous instruction ceiling.
		walker.MaxRuns = origRuns
		walker.MaxInstrs = w.budget * 3
	}
	instrs, runs := walker.Run(sink, edges)
	if prog == w.Prog {
		w.noteOrigRuns(runs)
	}
	return instrs, nil
}

// Stream traces prog exactly as Run does — same model, seed, budget and
// work-equivalence rules — but as a pull-style trace.Source of packed
// batches against prog's layout, so the stream can be broadcast to many
// simulators without materializing the trace. batchCap 0 selects
// trace.DefaultBatchCap.
//
// VM kernels run on a generator goroutine behind a trace.FuncSource;
// walker-backed workloads use the compiled trace.WalkSource directly. The
// event stream is byte-identical to what Run would deliver — the
// streaming-vs-recorded oracles enforce this.
func (w *Workload) Stream(prog *ir.Program, pf *profile.Profile, lay *trace.Layout, batchCap int) (trace.Source, error) {
	if w.IsKernel() {
		return trace.NewFuncSource(lay, batchCap, func(sink trace.Sink) (uint64, error) {
			return w.Run(prog, pf, sink, nil)
		}), nil
	}

	var model trace.Model
	switch {
	case pf != nil:
		model = pf.Model(prog)
	case prog == w.Prog:
		model = w.native
	default:
		return nil, fmt.Errorf("workload %s: streaming a non-original program requires its profile", w.Name)
	}
	walker := &trace.Walker{
		Prog:      prog,
		Model:     model,
		Seed:      w.seed,
		MaxInstrs: w.budget,
	}
	if origRuns := w.origRuns(); prog != w.Prog && origRuns > 0 {
		walker.MaxRuns = origRuns
		walker.MaxInstrs = w.budget * 3
	}
	ws, err := trace.NewWalkSource(walker, lay, batchCap)
	if err != nil {
		return nil, err
	}
	if prog == w.Prog {
		return &origWalkSource{WalkSource: ws, w: w}, nil
	}
	return ws, nil
}

// origWalkSource wraps the original program's walk source so that, like
// Run, exhausting it records the completed-run count that makes later
// variant walks work-equivalent.
type origWalkSource struct {
	*trace.WalkSource
	w *Workload
}

func (s *origWalkSource) Fill(b *trace.Batch) (bool, error) {
	ok, err := s.WalkSource.Fill(b)
	if !ok && err == nil {
		s.w.noteOrigRuns(s.WalkSource.Runs())
	}
	return ok, err
}

// CollectProfile traces the original program and returns its edge profile
// (the "training run" of profile-guided alignment).
func (w *Workload) CollectProfile() (*profile.Profile, uint64, error) {
	col := profile.NewCollector(w.Prog)
	instrs, err := w.Run(w.Prog, nil, nil, col)
	if err != nil {
		return nil, 0, err
	}
	pf := col.Profile()
	pf.Instrs = instrs
	return pf, instrs, nil
}

// Names returns the suite program names in the paper's Table 2 order.
func Names() []string {
	names := make([]string, 0, len(specs))
	for _, s := range specs {
		names = append(names, s.Name)
	}
	return names
}

// ByName builds the named workload, searching the paper suite first and the
// extended families (ExtNames) second.
func ByName(name string, cfg Config) (*Workload, error) {
	if s, ok := byNameSpec(name); ok {
		return build(s, cfg)
	}
	return nil, fmt.Errorf("workload: unknown program %q (known: %v)", name, AllNames())
}

// Suite builds all workloads in Table 2 order.
func Suite(cfg Config) ([]*Workload, error) {
	out := make([]*Workload, 0, len(specs))
	for _, s := range specs {
		w, err := build(s, cfg)
		if err != nil {
			return nil, fmt.Errorf("workload: building %s: %w", s.Name, err)
		}
		out = append(out, w)
	}
	return out, nil
}

// CSuite builds the SPEC92 C programs used in the paper's Figure 4 Alpha
// measurements (alvinn and ear were compiled from C too).
func CSuite(cfg Config) ([]*Workload, error) {
	var out []*Workload
	for _, name := range []string{"alvinn", "ear", "compress", "eqntott", "espresso", "gcc", "li", "sc"} {
		w, err := ByName(name, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func build(s Spec, cfg Config) (*Workload, error) {
	if s.Kernel != nil {
		prog, setup, repeat, err := s.Kernel(cfg)
		if err != nil {
			return nil, err
		}
		if err := prog.Validate(); err != nil {
			return nil, fmt.Errorf("kernel %s invalid: %w", s.Name, err)
		}
		return &Workload{Name: s.Name, Class: s.Class, Prog: prog, setup: setup, repeat: repeat}, nil
	}
	prog, model := synthesize(s, cfg.Seed+s.seedOffset())
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("synthesized %s invalid: %w", s.Name, err)
	}
	budget := uint64(float64(s.TraceInstrs) * cfg.scale())
	return &Workload{
		Name: s.Name, Class: s.Class, Prog: prog,
		native: model, budget: budget,
		seed: cfg.Seed + s.seedOffset() + 1 + cfg.InputSeed*7919,
	}, nil
}
