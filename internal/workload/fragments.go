package workload

import (
	"balign/internal/asm"
	"balign/internal/ir"
	"balign/internal/profile"
)

// This file reconstructs the code fragments the paper uses as figures. The
// published figures are partially illegible in the archival text, so the
// fragments reproduce the *phenomena* the paper describes around them (the
// hot mutual branch pair 25<->31, the hot taken branch 27->29, the node 28
// with two taken out-edges that forces a jump; the ALVINN single-block
// loop; the Figure 3 loop that only Try15 knows where to break).

// Fragment is a small program plus a hand-assigned edge profile matching a
// paper figure.
type Fragment struct {
	Name string
	Prog *ir.Program
	Prof *profile.Profile
}

// edge sets one profiled edge and, for conditional sources, the implied
// branch outcome counts.
func addEdge(pp *profile.ProcProfile, p *ir.Proc, from, to ir.BlockID, w uint64) {
	pp.Edges[profile.Edge{From: from, To: to}] += w
	if term, ok := p.Blocks[from].Terminator(); ok && term.Kind() == ir.CondBr {
		c := pp.Branches[from]
		if term.TargetBlock == to {
			c.Taken += w
		} else {
			c.Fall += w
		}
		pp.Branches[from] = c
	}
}

// Figure1 reconstructs the ESPRESSO elim_lowering fragment of the paper's
// Figure 1: eight blocks named after the paper's node numbers 25..32. Hot
// taken edges 25->31, 31->25 and 27->29 are mispredicted by the naive
// layout under the static architectures; node 28 has two hot taken
// out-edges, so any alignment must leave one behind a jump. Edge weights
// are percentages of edge transitions, scaled by 100 executions.
func Figure1() Fragment {
	src := `
proc elim_lowering
start:
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, 1
n25:
    addi r1, r1, 1
    addi r2, r2, 1
    bnez r5, n31       ; 25 -> 31 (hot taken)
n26:
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, 1
    bnez r6, n28       ; 26 -> 28
n27:
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, 1
    bnez r7, n29       ; 27 -> 29 (hot taken)
n28:
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, 1
    bnez r8, n30       ; 28: two hot taken successors (30 and fall 29)
n29:
    addi r1, r1, 1
    br n31             ; 29 -> 31
n30:
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, 1
    addi r5, r5, 1
    addi r6, r6, 1
    addi r7, r7, 1
    bnez r9, n32       ; 30 -> 32
n31:
    addi r1, r1, 1
    addi r2, r2, 1
    bnez r10, n25      ; 31 -> 25 (hot taken: mutual pair with 25 -> 31)
n32:
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, 1
    addi r5, r5, 1
    addi r6, r6, 1
    addi r7, r7, 1
    addi r8, r8, 1
    halt
endproc
`
	prog := asm.MustAssemble(src)
	prog.Name = "fig1-espresso"
	pf := profile.New(prog.Name)
	pp := pf.Proc("elim_lowering")
	p := prog.Procs[0]
	// Block ids follow label order: start=0, 25=1, 26=2, 27=3, 28=4,
	// 29=5, 30=6, 31=7, 32=8.
	addEdge(pp, p, 0, 1, 5)  // entry falls into 25
	addEdge(pp, p, 1, 7, 16) // 25 -> 31 taken, hot
	addEdge(pp, p, 1, 2, 5)  // 25 -> 26 fall
	addEdge(pp, p, 2, 4, 2)  // 26 -> 28 taken
	addEdge(pp, p, 2, 3, 4)  // 26 -> 27 fall
	addEdge(pp, p, 3, 5, 4)  // 27 -> 29 taken, hot relative to fall
	addEdge(pp, p, 3, 4, 1)  // 27 -> 28 fall
	addEdge(pp, p, 4, 6, 3)  // 28 -> 30 taken
	addEdge(pp, p, 4, 5, 3)  // 28 -> 29 fall (equally hot: jump needed)
	addEdge(pp, p, 5, 7, 7)  // 29 -> 31 via unconditional branch
	addEdge(pp, p, 6, 8, 2)  // 30 -> 32 taken
	addEdge(pp, p, 6, 7, 1)  // 30 -> 31 fall
	addEdge(pp, p, 7, 1, 16) // 31 -> 25 taken, hot mutual edge
	addEdge(pp, p, 7, 8, 8)  // 31 -> 32 fall
	pf.Instrs = pf.TotalEdgeWeight() * 4
	return Fragment{Name: "fig1", Prog: prog, Prof: pf}
}

// Figure2 reconstructs ALVINN's input_hidden: a single 11-instruction basic
// block looping on itself, the case where inverting the conditional and
// adding a jump beats the FALLTHROUGH architecture's mispredicted backward
// branch (5 cycles per iteration down to 3).
func Figure2() Fragment {
	src := `
proc input_hidden
n3:
    addi r1, r1, 1
n4:
    ld r5, 0(r2)
    add r6, r4, r2
    ld r7, 0(r6)
    mul r8, r5, r7
    add r3, r3, r8
    addi r8, r8, 0
    mov r12, r3
    add r13, r12, r5
    xor r13, r13, r7
    addi r2, r2, 1
    bnez r9, n4        ; the paper's single-block loop: ~100% of executions
n5:
    halt
endproc
`
	prog := asm.MustAssemble(src)
	prog.Name = "fig2-alvinn"
	pf := profile.New(prog.Name)
	pp := pf.Proc("input_hidden")
	p := prog.Procs[0]
	addEdge(pp, p, 0, 1, 30)    // entry into the loop
	addEdge(pp, p, 1, 1, 95*30) // self loop: 95 iterations per entry
	addEdge(pp, p, 1, 2, 30)    // exit
	pf.Instrs = 11 * 96 * 30
	return Fragment{Name: "fig2", Prog: prog, Prof: pf}
}

// Figure3 reconstructs the paper's Figure 3 loop: entry -> A, loop body
// A -> B -> C with the unconditional back branch C -> A and the rare exit
// A -> D. Greedy aligns nothing useful here; Try15 finds the rotation that
// removes the unconditional branch and makes the loop branch backward,
// cutting the branch cost by roughly a third under BT/FNT and LIKELY.
func Figure3() Fragment {
	src := `
proc loop3
entry:
    li r1, 9000
a:
    addi r2, r2, 1
    addi r3, r3, 1
    beqz r1, d
b:
    addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, 1
c:
    addi r2, r2, 1
    br a
d:
    halt
endproc
`
	prog := asm.MustAssemble(src)
	prog.Name = "fig3-loop"
	pf := profile.New(prog.Name)
	pp := pf.Proc("loop3")
	p := prog.Procs[0]
	// Paper weights: A->D 1, A->B 8999, B->C 9000 (9000 in the figure; the
	// one-off discrepancy with A->B is from the paper's own rounding),
	// C->A 9000, entry 1.
	addEdge(pp, p, 0, 1, 1)    // entry -> A
	addEdge(pp, p, 1, 4, 1)    // A -> D exit
	addEdge(pp, p, 1, 2, 8999) // A -> B
	addEdge(pp, p, 2, 3, 8999) // B -> C
	addEdge(pp, p, 3, 1, 8999) // C -> A (unconditional)
	pf.Instrs = pf.TotalEdgeWeight() * 3
	return Fragment{Name: "fig3", Prog: prog, Prof: pf}
}
