package workload

import (
	"reflect"
	"testing"

	"balign/internal/ir"
	"balign/internal/trace"
	"balign/internal/vm"
)

func TestExtNamesDisjointFromSuite(t *testing.T) {
	names := map[string]bool{}
	for _, n := range Names() {
		names[n] = true
	}
	for _, n := range ExtNames() {
		if names[n] {
			t.Errorf("extended name %q collides with the paper suite", n)
		}
		names[n] = true
	}
	if got, want := len(AllNames()), len(Names())+len(ExtNames()); got != want {
		t.Errorf("AllNames has %d entries, want %d", got, want)
	}
}

func TestExtSuiteBuildsAndRuns(t *testing.T) {
	ws, err := ExtSuite(Config{})
	if err != nil {
		t.Fatalf("ExtSuite: %v", err)
	}
	if len(ws) != len(ExtNames()) {
		t.Fatalf("ExtSuite built %d workloads, want %d", len(ws), len(ExtNames()))
	}
	for _, w := range ws {
		if !w.IsKernel() {
			t.Errorf("%s: extended workloads must be VM kernels", w.Name)
			continue
		}
		if w.Class != Adversarial {
			t.Errorf("%s: class %q, want %q", w.Name, w.Class, Adversarial)
		}
		pf, instrs, err := w.CollectProfile()
		if err != nil {
			t.Errorf("%s: profile collection: %v", w.Name, err)
			continue
		}
		if instrs < 10000 {
			t.Errorf("%s: only %d instructions; too small to exercise the predictors", w.Name, instrs)
		}
		if len(pf.Procs) == 0 {
			t.Errorf("%s: empty profile", w.Name)
		}
	}
}

func TestExtByName(t *testing.T) {
	for _, name := range ExtNames() {
		if _, err := ByName(name, Config{}); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("kmp-nonesuch", Config{}); err == nil {
		t.Error("ByName accepted an unknown name")
	}
}

// runKernel executes a workload's program once on a fresh VM and returns
// the machine (for memory inspection) plus the event stream.
func runKernel(t *testing.T, prog *ir.Program, setup func(*vm.VM)) (*vm.VM, []trace.Event) {
	t.Helper()
	machine := vm.New(prog)
	if setup != nil {
		setup(machine)
	}
	var events []trace.Event
	_, err := machine.Run(trace.SinkFunc(func(ev trace.Event) { events = append(events, ev) }), nil)
	if err != nil {
		t.Fatalf("vm run: %v", err)
	}
	return machine, events
}

// TestMeldParity is the correctness contract of the if-converter: for each
// meld variant, the base kernel and the melded kernel must leave identical
// data memory, while the melded one executes strictly fewer conditional
// branch events (the melded sites are gone from the stream).
func TestMeldParity(t *testing.T) {
	for _, base := range []string{"sc", "espresso"} {
		cfg := Config{InputSeed: 3}
		s, ok := byNameSpec(base)
		if !ok {
			t.Fatalf("suite workload %q missing", base)
		}
		orig, origSetup, _, err := s.Kernel(cfg)
		if err != nil {
			t.Fatalf("%s: %v", base, err)
		}
		melded, n, err := MeldProgram(orig)
		if err != nil {
			t.Fatalf("%s: MeldProgram: %v", base, err)
		}
		if n == 0 {
			t.Fatalf("%s: no sites melded; the variant is vacuous", base)
		}

		vmO, evO := runKernel(t, orig, origSetup)
		vmM, evM := runKernel(t, melded, origSetup)
		if !reflect.DeepEqual(vmO.Mem(), vmM.Mem()) {
			t.Errorf("%s: melded program computes different memory contents", base)
		}
		conds := func(evs []trace.Event) (n int) {
			for _, e := range evs {
				if e.Kind == ir.CondBr {
					n++
				}
			}
			return n
		}
		co, cm := conds(evO), conds(evM)
		if cm >= co {
			t.Errorf("%s: melded variant has %d cond events, base has %d; melding should remove branches",
				base, cm, co)
		}

		// The registered *-meld workload must be this same transformation
		// (modulo the program-name comment Format emits).
		w, err := ByName(base+"-meld", cfg)
		if err != nil {
			t.Fatalf("ByName(%s-meld): %v", base, err)
		}
		melded.Name = base + "-meld"
		if got := w.Prog.Format(); got != melded.Format() {
			t.Errorf("%s-meld workload program differs from MeldProgram output", base)
		}
	}
}

// TestMeldProgramIdempotentWhenNoSites checks the rewriter leaves programs
// without meldable sites untouched (kmp's skipped blocks contain loads).
func TestMeldProgramIdempotentWhenNoSites(t *testing.T) {
	pat := KMPRandomSymbols(1, 4, 2)
	text := KMPRandomSymbols(2, 100, 2)
	prog, _, err := BuildKMP(true, pat, text)
	if err != nil {
		t.Fatal(err)
	}
	out, n, err := MeldProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("melded %d sites in kmp; its skipped blocks all touch memory", n)
	}
	if out.Format() != prog.Format() {
		t.Error("MeldProgram changed a program with no meldable sites")
	}
}

// TestPhasedFlipsDirection checks the family's defining property: the hot
// branch's per-phase taken rate alternates between ~0.9 and ~0.1, and the
// aggregate rate sits near 0.5 — the profile sees a balanced branch.
func TestPhasedFlipsDirection(t *testing.T) {
	const n, phases = 512, 6
	bits := make([]int64, n)
	x := int64(42)
	ones := 0
	for i := range bits {
		x = x*6364136223846793005 + 1442695040888963407
		if int64(uint64(x)>>33)%10 < 9 {
			bits[i] = 1
			ones++
		}
	}
	prog, setup, err := BuildPhased(bits, phases)
	if err != nil {
		t.Fatal(err)
	}
	machine, events := runKernel(t, prog, setup)
	if got, want := machine.Mem()[phasedOutTally], int64(phases/2)*int64(ones)+int64(phases/2)*int64(n-ones); got != want {
		t.Fatalf("taken tally %d, want %d", got, want)
	}

	// Locate the hot branch: the only beqz site. Its per-phase taken counts
	// must alternate n-ones (even phases) and ones (odd phases) — note the
	// kernel takes the branch when the XORed bit is ZERO.
	var hotPC uint64
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			if term, ok := b.Terminator(); ok && term.Op == ir.OpBeqz {
				hotPC = b.Addr + uint64(len(b.Instrs)-1)*ir.InstrBytes
			}
		}
	}
	if hotPC == 0 {
		t.Fatal("hot beqz site not found")
	}
	var perPhase []int
	seen := 0
	taken := 0
	for _, e := range events {
		if e.PC != hotPC {
			continue
		}
		if e.Taken {
			taken++
		}
		seen++
		if seen == n {
			perPhase = append(perPhase, taken)
			seen, taken = 0, 0
		}
	}
	if len(perPhase) != phases {
		t.Fatalf("saw %d complete phases, want %d", len(perPhase), phases)
	}
	for ph, got := range perPhase {
		want := n - ones // even phase: bit 1 (common) XOR 0 = 1 -> beqz not taken
		if ph%2 == 1 {
			want = ones // odd phase: bit 1 XOR 1 = 0 -> taken
		}
		if got != want {
			t.Errorf("phase %d: %d taken, want %d", ph, got, want)
		}
	}
}
