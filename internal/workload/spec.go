package workload

import (
	"balign/internal/ir"
	"balign/internal/vm"
)

// Spec describes one suite program: either a pointer to a hand-written
// kernel, or the statistical targets a synthetic program is generated to
// match. The targets follow the paper's Table 2; counts are scaled down
// (static sites by roughly 10x, trace lengths from billions to millions of
// instructions) as documented in DESIGN.md — the reported metrics are rates
// and ratios, which survive the scaling.
type Spec struct {
	Name  string
	Class Class

	// Synthetic generation targets.
	PctBreaks float64 // % of executed instructions that break control flow
	PctTaken  float64 // % of executed conditional branches taken
	// Break-kind mix as fractions of all breaks; returns mirror calls.
	MixCBr, MixIJ, MixBr, MixCall float64
	// CondSites is the approximate number of static conditional branch
	// sites to generate.
	CondSites int
	// HotSkew is the Zipf exponent concentrating execution in few
	// procedures: large values give the paper's "three branches are 50% of
	// all executions" behaviour (doduc), small values the flat gcc profile.
	HotSkew float64
	// Procs is the number of leaf procedures.
	Procs int
	// TraceInstrs is the default walk budget.
	TraceInstrs uint64

	// Kernel, when non-nil, builds a real program instead: it returns the
	// program, a VM setup hook, and a repeat count.
	Kernel func(Config) (*ir.Program, func(*vm.VM), int, error)
}

func (s Spec) seedOffset() int64 {
	var h int64 = 1469598103934665603
	for _, c := range s.Name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h & 0xffffff
}

// specs lists the suite in the paper's Table 2 order. Kernels cover the
// programs whose inner loops the paper discusses directly (ALVINN,
// ESPRESSO) plus representatives of each behaviour class; the remaining
// programs are synthesized to their Table 2 statistics.
var specs = []Spec{
	// --- SPECfp92 ---
	{Name: "alvinn", Class: SPECfp, Kernel: alvinnKernel},
	{Name: "doduc", Class: SPECfp, PctBreaks: 8.0, PctTaken: 65,
		MixCBr: 0.80, MixIJ: 0.002, MixBr: 0.10, MixCall: 0.05,
		CondSites: 700, HotSkew: 1.8, Procs: 40, TraceInstrs: 1_500_000},
	{Name: "ear", Class: SPECfp, Kernel: earKernel},
	{Name: "fpppp", Class: SPECfp, PctBreaks: 3.0, PctTaken: 72,
		MixCBr: 0.75, MixIJ: 0.001, MixBr: 0.12, MixCall: 0.065,
		CondSites: 70, HotSkew: 1.4, Procs: 10, TraceInstrs: 1_500_000},
	{Name: "hydro2d", Class: SPECfp, PctBreaks: 6.0, PctTaken: 85,
		MixCBr: 0.82, MixIJ: 0.001, MixBr: 0.06, MixCall: 0.06,
		CondSites: 160, HotSkew: 1.3, Procs: 20, TraceInstrs: 1_500_000},
	{Name: "mdljsp2", Class: SPECfp, PctBreaks: 7.5, PctTaken: 78,
		MixCBr: 0.84, MixIJ: 0.001, MixBr: 0.08, MixCall: 0.04,
		CondSites: 100, HotSkew: 1.5, Procs: 14, TraceInstrs: 1_500_000},
	{Name: "nasa7", Class: SPECfp, PctBreaks: 4.5, PctTaken: 90,
		MixCBr: 0.85, MixIJ: 0.001, MixBr: 0.05, MixCall: 0.05,
		CondSites: 100, HotSkew: 1.2, Procs: 12, TraceInstrs: 1_500_000},
	{Name: "ora", Class: SPECfp, PctBreaks: 6.5, PctTaken: 60,
		MixCBr: 0.70, MixIJ: 0.001, MixBr: 0.10, MixCall: 0.10,
		CondSites: 50, HotSkew: 1.8, Procs: 6, TraceInstrs: 1_500_000},
	{Name: "spice", Class: SPECfp, PctBreaks: 9.0, PctTaken: 72,
		MixCBr: 0.78, MixIJ: 0.005, MixBr: 0.11, MixCall: 0.05,
		CondSites: 970, HotSkew: 1.1, Procs: 50, TraceInstrs: 1_500_000},
	{Name: "su2cor", Class: SPECfp, PctBreaks: 5.0, PctTaken: 82,
		MixCBr: 0.80, MixIJ: 0.001, MixBr: 0.08, MixCall: 0.06,
		CondSites: 150, HotSkew: 1.3, Procs: 18, TraceInstrs: 1_500_000},
	{Name: "swm256", Class: SPECfp, PctBreaks: 2.5, PctTaken: 96,
		MixCBr: 0.88, MixIJ: 0.001, MixBr: 0.04, MixCall: 0.04,
		CondSites: 40, HotSkew: 1.5, Procs: 6, TraceInstrs: 1_500_000},
	{Name: "tomcatv", Class: SPECfp, Kernel: tomcatvKernel},
	{Name: "wave5", Class: SPECfp, PctBreaks: 6.0, PctTaken: 80,
		MixCBr: 0.80, MixIJ: 0.001, MixBr: 0.08, MixCall: 0.06,
		CondSites: 830, HotSkew: 1.3, Procs: 40, TraceInstrs: 1_500_000},

	// --- SPECint92 ---
	{Name: "compress", Class: SPECint, Kernel: compressKernel},
	{Name: "eqntott", Class: SPECint, Kernel: eqntottKernel},
	{Name: "espresso", Class: SPECint, Kernel: espressoKernel},
	{Name: "gcc", Class: SPECint, PctBreaks: 16.0, PctTaken: 60,
		MixCBr: 0.72, MixIJ: 0.015, MixBr: 0.12, MixCall: 0.07,
		CondSites: 1600, HotSkew: 0.7, Procs: 80, TraceInstrs: 2_000_000},
	{Name: "li", Class: SPECint, Kernel: liKernel},
	{Name: "sc", Class: SPECint, Kernel: scKernel},

	// --- Other (C++ and large C applications) ---
	{Name: "cfront", Class: Other, PctBreaks: 17.0, PctTaken: 58,
		MixCBr: 0.60, MixIJ: 0.030, MixBr: 0.11, MixCall: 0.13,
		CondSites: 1500, HotSkew: 0.8, Procs: 70, TraceInstrs: 2_000_000},
	{Name: "db++", Class: Other, PctBreaks: 18.0, PctTaken: 60,
		MixCBr: 0.58, MixIJ: 0.040, MixBr: 0.10, MixCall: 0.14,
		CondSites: 30, HotSkew: 1.2, Procs: 8, TraceInstrs: 2_000_000},
	{Name: "groff", Class: Other, PctBreaks: 16.0, PctTaken: 59,
		MixCBr: 0.62, MixIJ: 0.035, MixBr: 0.10, MixCall: 0.12,
		CondSites: 700, HotSkew: 0.9, Procs: 50, TraceInstrs: 2_000_000},
	{Name: "idl", Class: Other, PctBreaks: 17.5, PctTaken: 57,
		MixCBr: 0.57, MixIJ: 0.050, MixBr: 0.10, MixCall: 0.14,
		CondSites: 300, HotSkew: 1.0, Procs: 30, TraceInstrs: 2_000_000},
	{Name: "tex", Class: Other, PctBreaks: 15.0, PctTaken: 63,
		MixCBr: 0.70, MixIJ: 0.010, MixBr: 0.12, MixCall: 0.08,
		CondSites: 630, HotSkew: 1.0, Procs: 45, TraceInstrs: 2_000_000},
}
