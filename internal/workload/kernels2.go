package workload

import (
	"balign/internal/asm"
	"balign/internal/ir"
	"balign/internal/vm"
)

// earKernel models the EAR auditory model: a cascade of FIR filters run per
// channel over a sample stream — highly regular floating-point-style loops
// whose branches are nearly always taken.
func earKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	const src = `
mem 16384
; samples at 0..2047, coefficients at 4096 (8 per channel), outputs at 8192
proc main
    li r20, 3          ; passes
pass:
    li r19, 0          ; channel
    li r18, 8          ; channels
chan:
    call filter
    addi r19, r19, 1
    blt r19, r18, chan
    addi r20, r20, -1
    bnez r20, pass
    halt
endproc

; FIR: out[n] = sum_k c[ch][k] * x[n-k], taps = 8
proc filter
    li r1, 8           ; n starts past the taps
    li r10, 2048
    muli r11, r19, 8
    addi r11, r11, 4096 ; coefficient base for this channel
sample:
    li r2, 0           ; k
    li r3, 0           ; acc
    li r12, 8          ; taps
tap:
    sub r4, r1, r2     ; n-k
    ld r5, 0(r4)
    add r6, r11, r2
    ld r7, 0(r6)
    mul r8, r5, r7
    add r3, r3, r8
    addi r2, r2, 1
    blt r2, r12, tap
    muli r9, r19, 2048
    add r9, r9, r1
    andi r9, r9, 8191
    st r3, 8192(r9)
    addi r1, r1, 1
    blt r1, r10, sample
    ret
endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, 0, err
	}
	setup := func(v *vm.VM) {
		words := make([]int64, 4160)
		x := int64(271828) + cfg.InputSeed*2654435761
		for i := range words {
			x = x*6364136223846793005 + 1442695040888963407
			words[i] = (x >> 40) % 256
		}
		v.SetMem(0, words)
	}
	return prog, setup, 1, nil
}

// scKernel models the sc spreadsheet recalculation loop: a grid of cells,
// each with a formula type dispatched through a jump table, recomputed over
// several passes — the integer-code blend of conditionals, indirection and
// calls the paper's SPECint set shows.
func scKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	const src = `
mem 8192
; cell values at 0..999 (40x25), formula kinds at 1024..2023, scratch at 4096
proc main
    li r20, 25         ; recalculation passes
pass:
    call recalc
    addi r20, r20, -1
    bnez r20, pass
    halt
endproc

proc recalc
    li r1, 1           ; cell index (skip col 0)
    li r10, 1000
cell:
    addi r2, r1, 1024
    ld r3, 0(r2)       ; formula kind 0..3
    ijump r3, [kconst, ksum, kprod, kmax]
kconst:
    br next
ksum:
    addi r4, r1, -1
    ld r5, 0(r4)
    ld r6, 0(r1)
    add r6, r6, r5
    st r6, 0(r1)
    br next
kprod:
    addi r4, r1, -1
    ld r5, 0(r4)
    ld r6, 0(r1)
    mul r6, r6, r5
    andi r6, r6, 65535
    st r6, 0(r1)
    br next
kmax:
    addi r4, r1, -1
    ld r5, 0(r4)
    ld r6, 0(r1)
    bge r6, r5, next   ; keep current if already the max
    st r5, 0(r1)
next:
    addi r1, r1, 1
    blt r1, r10, cell
    call audit
    ret
endproc

; audit pass: count nonzero cells (branchy scan)
proc audit
    li r1, 0
    li r10, 1000
    li r15, 0
aloop:
    ld r2, 0(r1)
    beqz r2, azero
    addi r15, r15, 1
azero:
    addi r1, r1, 1
    blt r1, r10, aloop
    st r15, 4096(r0)
    ret
endproc
`
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, 0, err
	}
	setup := func(v *vm.VM) {
		words := make([]int64, 2024)
		x := int64(1618) + cfg.InputSeed*2654435761
		for i := 0; i < 1000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			words[i] = (x >> 35) % 100
		}
		for i := 1024; i < 2024; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			words[i] = (x >> 45) & 3
		}
		v.SetMem(0, words)
	}
	return prog, setup, 1, nil
}
