package workload

import (
	"fmt"

	"balign/internal/asm"
	"balign/internal/ir"
	"balign/internal/vm"
)

// The mp/kmp workloads are the Morris-Pratt and Knuth-Morris-Pratt
// string-matching kernels whose branch behaviour Nicaud, Pivoteau &
// Vialette analyse (PAPERS.md): the same matching loop, differing only in
// the failure table (borders for MP, strict borders for KMP), searching a
// parameterized random text for a parameterized random pattern. The
// comparison branch's outcome stream is exactly determined by the algorithm,
// so per-site mispredict counts have independent expectations — the
// kmp_oracle_test.go property tests assert the full pipeline against a pure
// Go reference (KMPBreakTrace) and against closed-form counts for
// structured inputs.

// Memory layout of the kmp kernel (64K words):
const (
	kmpPatBase  = 0     // pattern symbols, one word each
	kmpFailBase = 8192  // failure table fail[0..m], fail[0] = -1
	kmpTextBase = 16384 // text symbols
	kmpOutCount = 32768 // match count written by the kernel
	kmpParamN   = 32770 // text length, read by the kernel
	kmpParamM   = 32771 // pattern length, read by the kernel

	kmpMaxText    = 16383 // text region capacity
	kmpMaxPattern = 4096
)

// kmpSrc is the shared MP/KMP matching loop. Branch sites, in the paper's
// terms: the text-exhausted check (outer), the border-bottom check and the
// comparison branch (inner), and the match check (advance).
const kmpSrc = `
mem 65536
proc main
    ld r3, 32770(r0)   ; n
    ld r4, 32771(r0)   ; m
    li r1, 0           ; i: text index
    li r2, 0           ; j: pattern index
    li r9, 0           ; match count
outer:
    bge r1, r3, done   ; site L: text exhausted
inner:
    bltz r2, advance   ; site B: border chain bottomed out (j < 0)
    ld r5, 16384(r1)   ; text[i]
    ld r6, 0(r2)       ; pat[j]
    beq r5, r6, advance ; site C: the comparison branch
    ld r2, 8192(r2)    ; j = fail[j]
    br inner
advance:
    addi r1, r1, 1
    addi r2, r2, 1
    bne r2, r4, outer  ; site M: no full match yet (j != m)
    addi r9, r9, 1
    ld r2, 8192(r4)    ; restart: j = fail[m]
    br outer
done:
    st r9, 32768(r0)
    halt
endproc
`

// BuildKMP assembles the matching kernel for the given pattern and text.
// strong selects the KMP (strict border) failure table; false selects MP.
// The returned setup hook loads pattern, failure table, text and the length
// parameters into VM memory.
func BuildKMP(strong bool, pattern, text []int64) (*ir.Program, func(*vm.VM), error) {
	m, n := len(pattern), len(text)
	if m == 0 || m > kmpMaxPattern {
		return nil, nil, fmt.Errorf("kmp: pattern length %d out of range [1,%d]", m, kmpMaxPattern)
	}
	if n > kmpMaxText {
		return nil, nil, fmt.Errorf("kmp: text length %d exceeds %d", n, kmpMaxText)
	}
	prog, err := asm.Assemble(kmpSrc)
	if err != nil {
		return nil, nil, err
	}
	if strong {
		prog.Name = "kmp"
	} else {
		prog.Name = "mp"
	}
	fail := KMPFailure(pattern, strong)
	pat := append([]int64(nil), pattern...)
	txt := append([]int64(nil), text...)
	setup := func(v *vm.VM) {
		v.SetMem(kmpPatBase, pat)
		v.SetMem(kmpFailBase, fail)
		v.SetMem(kmpTextBase, txt)
		v.SetMem(kmpParamN, []int64{int64(n), int64(m)})
	}
	return prog, setup, nil
}

// KMPFailure computes the failure table fail[0..m] with fail[0] = -1: the
// Morris-Pratt border table, or the KMP strict-border table when strong is
// set (a border is strict when the next pattern symbol differs, so the
// restarted comparison cannot immediately fail the same way). fail[m] is the
// plain border length in both variants — after a full match there is no
// next symbol to strengthen against.
func KMPFailure(pattern []int64, strong bool) []int64 {
	m := len(pattern)
	pi := make([]int64, m+1)
	pi[0] = -1
	k := int64(-1)
	for q := 1; q <= m; q++ {
		for k >= 0 && pattern[k] != pattern[q-1] {
			k = pi[k]
		}
		k++
		pi[q] = k
	}
	if !strong {
		return pi
	}
	out := make([]int64, m+1)
	out[0] = -1
	for j := 1; j < m; j++ {
		if pi[j] >= 0 && pattern[j] == pattern[pi[j]] {
			out[j] = out[pi[j]]
		} else {
			out[j] = pi[j]
		}
	}
	out[m] = pi[m]
	return out
}

// KMP break-trace site identifiers, in kernel source order.
const (
	KMPSiteL        = iota // outer: bge (text exhausted)
	KMPSiteB               // inner: bltz (border chain bottom)
	KMPSiteC               // inner: beq (comparison)
	KMPSiteBrBorder        // br inner (after following the failure link)
	KMPSiteM               // advance: bne (no full match)
	KMPSiteBrMatch         // br outer (after recording a match)
	kmpNumSites
)

// KMPEvent is one break event of the matching kernel's execution: the site
// that executed and, for conditional sites, whether it was taken.
type KMPEvent struct {
	Site  int
	Taken bool
}

// KMPBreakTrace executes the matching algorithm in pure Go, mirroring the
// kernel's control flow decision for decision, and returns the complete
// break-event stream plus the match count. It shares no code with the
// VM/trace pipeline — the property tests use it as an independent oracle
// for per-site branch behaviour.
func KMPBreakTrace(strong bool, pattern, text []int64) ([]KMPEvent, int64) {
	fail := KMPFailure(pattern, strong)
	n, m := len(text), len(pattern)
	var events []KMPEvent
	var matches int64
	emit := func(site int, taken bool) { events = append(events, KMPEvent{Site: site, Taken: taken}) }
	i, j := 0, 0
	for {
		if i >= n { // site L
			// The VM emits no break event for the final halt, so neither
			// does the reference.
			emit(KMPSiteL, true)
			return events, matches
		}
		emit(KMPSiteL, false)
		for { // inner
			if j < 0 { // site B
				emit(KMPSiteB, true)
				break
			}
			emit(KMPSiteB, false)
			if text[i] == pattern[j] { // site C
				emit(KMPSiteC, true)
				break
			}
			emit(KMPSiteC, false)
			j = int(fail[j])
			emit(KMPSiteBrBorder, true)
		}
		i++
		j++
		if j != m { // site M
			emit(KMPSiteM, true)
			continue
		}
		emit(KMPSiteM, false)
		matches++
		j = int(fail[m])
		emit(KMPSiteBrMatch, true)
	}
}

// KMPSitePCs maps each KMP site to the address of its break instruction in
// prog (an original-layout BuildKMP program, blocks in source order) and,
// for direct branches, the address of its taken target. It locates sites by
// break kind in source order rather than by hard-coded addresses, so layout
// details (filler counts, address base) are not baked into the tests.
func KMPSitePCs(prog *ir.Program) (pcs [kmpNumSites]uint64, targets [kmpNumSites]uint64, err error) {
	p := prog.Procs[0]
	type site struct {
		pc, target uint64
	}
	var conds, brs []site
	for _, b := range p.Blocks {
		term, ok := b.Terminator()
		if !ok || (term.Kind() != ir.CondBr && term.Kind() != ir.Br) {
			continue
		}
		pc := b.Addr + uint64(len(b.Instrs)-1)*ir.InstrBytes
		tb := p.Block(term.TargetBlock)
		if tb == nil {
			return pcs, targets, fmt.Errorf("kmp: branch target %d missing", term.TargetBlock)
		}
		if term.Kind() == ir.CondBr {
			conds = append(conds, site{pc, tb.Addr})
		} else {
			brs = append(brs, site{pc, tb.Addr})
		}
	}
	if len(conds) != 4 || len(brs) != 2 {
		return pcs, targets, fmt.Errorf("kmp: unexpected break shape: %d conds, %d brs", len(conds), len(brs))
	}
	order := []int{KMPSiteL, KMPSiteB, KMPSiteC, KMPSiteM}
	for i, s := range order {
		pcs[s], targets[s] = conds[i].pc, conds[i].target
	}
	pcs[KMPSiteBrBorder], targets[KMPSiteBrBorder] = brs[0].pc, brs[0].target
	pcs[KMPSiteBrMatch], targets[KMPSiteBrMatch] = brs[1].pc, brs[1].target
	return pcs, targets, nil
}

// kmpInput derives the default parameterized inputs for the registered
// mp/kmp workloads: a binary alphabet (the hardest case for the comparison
// branch), pattern length 12, text length 15000, both drawn from seeded
// LCGs so Config.Seed and Config.InputSeed vary the data without changing
// the program.
func kmpInput(cfg Config, salt int64) (pattern, text []int64) {
	const (
		m     = 12
		n     = 15000
		alpha = 2
	)
	pattern = KMPRandomSymbols(cfg.Seed*2654435761+cfg.InputSeed*7919+salt, m, alpha)
	text = KMPRandomSymbols(cfg.Seed*40503+cfg.InputSeed*104729+salt+1, n, alpha)
	return pattern, text
}

// KMPRandomSymbols draws length symbols uniformly from [0, alpha) using the
// kernel-standard LCG.
func KMPRandomSymbols(seed int64, length, alpha int) []int64 {
	out := make([]int64, length)
	x := seed
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = int64(uint64(x)>>33) % int64(alpha)
	}
	return out
}

func mpKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	pat, text := kmpInput(cfg, 101)
	prog, setup, err := BuildKMP(false, pat, text)
	return prog, setup, 8, err
}

func kmpKernel(cfg Config) (*ir.Program, func(*vm.VM), int, error) {
	pat, text := kmpInput(cfg, 101) // same inputs as mp: the ablation pair
	prog, setup, err := BuildKMP(true, pat, text)
	return prog, setup, 8, err
}
