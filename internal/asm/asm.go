// Package asm assembles a textual assembly language into ir.Programs and
// disassembles them back. The syntax round-trips with ir.Program.Format.
//
// A program is a sequence of directives and procedures:
//
//	; comment (also # comment)
//	mem 1024            ; data memory size in 64-bit words
//	entry main          ; entry procedure (default: first proc)
//
//	proc main
//	    li   r1, 10
//	loop:
//	    addi r2, r2, 1
//	    blt  r2, r1, loop
//	    call helper
//	    halt
//	endproc
//
// Labels start new basic blocks; block-ending instructions (branches, ret,
// halt, ijump) implicitly end the current block. Branch targets name labels
// inside the same procedure; call targets name procedures; ijump lists its
// possible targets in brackets: `ijump r2, [a, b, c]`.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"balign/internal/ir"
)

// Error describes an assembly failure with its source line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// mnemonic table: name -> opcode.
var mnemonics = func() map[string]ir.Opcode {
	m := make(map[string]ir.Opcode)
	for op := ir.OpNop; op <= ir.LastOpcode; op++ {
		m[op.String()] = op
	}
	return m
}()

type pendingInstr struct {
	in   ir.Instr
	line int
	// symbolic targets, resolved in a second pass
	labelTarget string   // CondBr/Br
	procTarget  string   // Call
	ijTargets   []string // IJump
}

type pendingBlock struct {
	label  string
	line   int
	instrs []pendingInstr
}

type pendingProc struct {
	name   string
	line   int
	blocks []*pendingBlock
}

// Assemble parses src into a validated ir.Program with addresses assigned
// from base address 0x1000.
func Assemble(src string) (*ir.Program, error) {
	prog := &ir.Program{MemWords: 1024}
	var procs []*pendingProc
	var cur *pendingProc
	var curBlock *pendingBlock
	entryName := ""

	newBlock := func(label string, line int) {
		curBlock = &pendingBlock{label: label, line: line}
		cur.blocks = append(cur.blocks, curBlock)
	}

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := lineNo + 1
		text := raw
		if i := strings.IndexAny(text, ";#"); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}

		fields := splitOperands(text)
		if len(fields) == 0 {
			// Nothing but separators (e.g. a stray comma).
			return nil, errf(line, "empty statement %q", text)
		}
		head := fields[0]

		switch head {
		case "mem":
			if len(fields) != 2 {
				return nil, errf(line, "mem takes one argument")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, errf(line, "bad mem size %q", fields[1])
			}
			prog.MemWords = n
			continue
		case "entry":
			if len(fields) != 2 {
				return nil, errf(line, "entry takes one argument")
			}
			entryName = fields[1]
			continue
		case "proc":
			if cur != nil {
				return nil, errf(line, "nested proc (missing endproc?)")
			}
			if len(fields) != 2 {
				return nil, errf(line, "proc takes one argument")
			}
			cur = &pendingProc{name: fields[1], line: line}
			curBlock = nil
			continue
		case "endproc":
			if cur == nil {
				return nil, errf(line, "endproc outside proc")
			}
			procs = append(procs, cur)
			cur, curBlock = nil, nil
			continue
		}

		if cur == nil {
			return nil, errf(line, "instruction or label outside proc: %q", text)
		}

		// Label? A label may share a line with an instruction: "loop: nop".
		if strings.HasSuffix(head, ":") {
			name := strings.TrimSuffix(head, ":")
			if name == "" {
				return nil, errf(line, "empty label")
			}
			newBlock(name, line)
			if len(fields) == 1 {
				continue
			}
			fields = fields[1:]
			head = fields[0]
		}

		op, ok := mnemonics[head]
		if !ok {
			return nil, errf(line, "unknown mnemonic %q", head)
		}
		pi, err := parseInstr(op, fields[1:], line)
		if err != nil {
			return nil, err
		}
		if curBlock == nil || blockEnded(curBlock) {
			newBlock("", line)
		}
		curBlock.instrs = append(curBlock.instrs, pi)
	}
	if cur != nil {
		return nil, errf(len(lines), "missing endproc for proc %q", cur.name)
	}
	if len(procs) == 0 {
		return nil, errf(1, "no procedures")
	}

	// Resolve pass.
	procIdx := make(map[string]int, len(procs))
	for i, p := range procs {
		if _, dup := procIdx[p.name]; dup {
			return nil, errf(p.line, "duplicate proc %q", p.name)
		}
		procIdx[p.name] = i
	}
	for _, pp := range procs {
		labelIdx := make(map[string]ir.BlockID)
		for bi, b := range pp.blocks {
			if b.label == "" {
				continue
			}
			if _, dup := labelIdx[b.label]; dup {
				return nil, errf(b.line, "duplicate label %q in proc %q", b.label, pp.name)
			}
			labelIdx[b.label] = ir.BlockID(bi)
		}
		p := &ir.Proc{Name: pp.name}
		for _, b := range pp.blocks {
			nb := &ir.Block{Label: b.label, Orig: ir.BlockID(len(p.Blocks))}
			for i := range b.instrs {
				pi := &b.instrs[i]
				in := pi.in
				switch in.Kind() {
				case ir.CondBr, ir.Br:
					id, ok := labelIdx[pi.labelTarget]
					if !ok {
						return nil, errf(pi.line, "undefined label %q in proc %q", pi.labelTarget, pp.name)
					}
					in.TargetBlock = id
				case ir.Call:
					idx, ok := procIdx[pi.procTarget]
					if !ok {
						return nil, errf(pi.line, "undefined proc %q", pi.procTarget)
					}
					in.TargetProc = idx
				case ir.IJump:
					for _, lt := range pi.ijTargets {
						id, ok := labelIdx[lt]
						if !ok {
							return nil, errf(pi.line, "undefined label %q in proc %q", lt, pp.name)
						}
						in.Targets = append(in.Targets, id)
					}
				}
				nb.Instrs = append(nb.Instrs, in)
			}
			p.Blocks = append(p.Blocks, nb)
		}
		if len(p.Blocks) == 0 {
			return nil, errf(pp.line, "proc %q has no instructions", pp.name)
		}
		prog.Procs = append(prog.Procs, p)
	}

	if entryName != "" {
		idx, ok := procIdx[entryName]
		if !ok {
			return nil, errf(1, "entry proc %q not defined", entryName)
		}
		prog.EntryProc = idx
	}
	prog.AssignAddresses(0x1000)
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return prog, nil
}

// MustAssemble is Assemble that panics on error; intended for package-level
// fixture programs whose source is a compile-time constant.
func MustAssemble(src string) *ir.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func blockEnded(b *pendingBlock) bool {
	if len(b.instrs) == 0 {
		return false
	}
	return b.instrs[len(b.instrs)-1].in.Kind().EndsBlock()
}

// splitOperands splits "addi r2, r2, 1" into ["addi", "r2", "r2", "1"],
// keeping bracketed ijump target lists as single fields stripped later.
func splitOperands(text string) []string {
	var out []string
	cur := strings.Builder{}
	depth := 0
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case r == '[':
			depth++
			cur.WriteRune(r)
		case r == ']':
			depth--
			cur.WriteRune(r)
		case depth == 0 && (r == ',' || r == ' ' || r == '\t'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

func parseReg(s string, line int) (uint8, error) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, errf(line, "expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= ir.NumRegs {
		return 0, errf(line, "bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string, line int) (int64, error) {
	n, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, errf(line, "bad immediate %q", s)
	}
	return n, nil
}

// parseMem parses "imm(rN)" into (imm, reg).
func parseMem(s string, line int) (int64, uint8, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, errf(line, "expected imm(rN), got %q", s)
	}
	imm, err := parseImm(s[:open], line)
	if err != nil {
		return 0, 0, err
	}
	reg, err := parseReg(s[open+1:len(s)-1], line)
	if err != nil {
		return 0, 0, err
	}
	return imm, reg, nil
}

func parseInstr(op ir.Opcode, args []string, line int) (pendingInstr, error) {
	pi := pendingInstr{in: ir.Instr{Op: op}, line: line}
	need := func(n int) error {
		if len(args) != n {
			return errf(line, "%v takes %d operand(s), got %d", op, n, len(args))
		}
		return nil
	}
	var err error
	switch op {
	case ir.OpNop, ir.OpRet, ir.OpHalt:
		err = need(0)
	case ir.OpLi:
		if err = need(2); err == nil {
			if pi.in.Rd, err = parseReg(args[0], line); err == nil {
				pi.in.Imm, err = parseImm(args[1], line)
			}
		}
	case ir.OpMov:
		if err = need(2); err == nil {
			if pi.in.Rd, err = parseReg(args[0], line); err == nil {
				pi.in.Rs, err = parseReg(args[1], line)
			}
		}
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSlt, ir.OpCmovz, ir.OpCmovnz:
		if err = need(3); err == nil {
			if pi.in.Rd, err = parseReg(args[0], line); err == nil {
				if pi.in.Rs, err = parseReg(args[1], line); err == nil {
					pi.in.Rt, err = parseReg(args[2], line)
				}
			}
		}
	case ir.OpAddi, ir.OpMuli, ir.OpAndi, ir.OpSlti:
		if err = need(3); err == nil {
			if pi.in.Rd, err = parseReg(args[0], line); err == nil {
				if pi.in.Rs, err = parseReg(args[1], line); err == nil {
					pi.in.Imm, err = parseImm(args[2], line)
				}
			}
		}
	case ir.OpLd, ir.OpSt:
		if err = need(2); err == nil {
			if pi.in.Rd, err = parseReg(args[0], line); err == nil {
				pi.in.Imm, pi.in.Rs, err = parseMem(args[1], line)
			}
		}
	case ir.OpBeq, ir.OpBne, ir.OpBlt, ir.OpBle, ir.OpBgt, ir.OpBge:
		if err = need(3); err == nil {
			if pi.in.Rd, err = parseReg(args[0], line); err == nil {
				if pi.in.Rs, err = parseReg(args[1], line); err == nil {
					pi.labelTarget = args[2]
				}
			}
		}
	case ir.OpBeqz, ir.OpBnez, ir.OpBltz, ir.OpBgez:
		if err = need(2); err == nil {
			if pi.in.Rd, err = parseReg(args[0], line); err == nil {
				pi.labelTarget = args[1]
			}
		}
	case ir.OpBr:
		if err = need(1); err == nil {
			pi.labelTarget = args[0]
		}
	case ir.OpCall:
		if err = need(1); err == nil {
			pi.procTarget = args[0]
		}
	case ir.OpIJump:
		if err = need(2); err == nil {
			if pi.in.Rd, err = parseReg(args[0], line); err == nil {
				list := args[1]
				if !strings.HasPrefix(list, "[") || !strings.HasSuffix(list, "]") {
					return pi, errf(line, "ijump targets must be bracketed, got %q", list)
				}
				for _, t := range strings.Split(list[1:len(list)-1], ",") {
					t = strings.TrimSpace(t)
					if t != "" {
						pi.ijTargets = append(pi.ijTargets, t)
					}
				}
				if len(pi.ijTargets) == 0 {
					return pi, errf(line, "ijump with empty target list")
				}
			}
		}
	default:
		err = errf(line, "unhandled opcode %v", op)
	}
	return pi, err
}
