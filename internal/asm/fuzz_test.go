package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble throws arbitrary source at the assembler: malformed
// directives, dangling labels, out-of-range operands, unterminated procs
// and binary garbage must all return errors (with a line number), never
// panic. Anything that assembles must be a valid, laid-out program that
// survives a format/re-assemble round trip.
func FuzzAssemble(f *testing.F) {
	f.Add("proc main\n    halt\nendproc\n")
	f.Add("mem 1024\nentry main\nproc main\n    li r1, 10\nloop:\n    addi r1, r1, -1\n    bnez r1, loop\n    call helper\n    halt\nendproc\nproc helper\n    ret\nendproc\n")
	f.Add("proc main\n    ijump r2, [a, b]\na:\n    halt\nb:\n    halt\nendproc\n")
	f.Add("proc main\n    br nowhere\nendproc\n")
	f.Add("proc main\n    li r99, 1\n    halt\nendproc\n")
	f.Add("proc unterminated\n    halt\n")
	f.Add("entry ghost\nproc main\n    halt\nendproc\n")
	f.Add("mem -5\nproc main\n    halt\nendproc\n")
	f.Add("\x00\x01\x02 garbage \xff")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			var aerr *Error
			// Assembler failures must be diagnosable: either a positioned
			// asm.Error or a validation error naming the construct.
			if !strings.Contains(err.Error(), "asm:") && !strings.Contains(err.Error(), "ir:") {
				t.Fatalf("undiagnosable error type %T: %v", aerr, err)
			}
			return
		}
		if prog == nil {
			t.Fatal("nil program with nil error")
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("assembled program fails validation: %v", err)
		}
		// Round trip: the formatted program must re-assemble.
		if _, err := Assemble(prog.Format()); err != nil {
			t.Fatalf("formatted program does not re-assemble: %v\n%s", err, prog.Format())
		}
	})
}
