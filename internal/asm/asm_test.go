package asm

import (
	"strings"
	"testing"

	"balign/internal/ir"
)

const sample = `
; countdown loop with a call
mem 64
entry main

proc main
    li   r1, 10
    li   r2, 0
loop:
    addi r2, r2, 1
    call helper
    blt  r2, r1, loop
    halt
endproc

proc helper
    addi r3, r3, 1
    ret
endproc
`

func TestAssembleSample(t *testing.T) {
	prog, err := Assemble(sample)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if prog.MemWords != 64 {
		t.Errorf("MemWords = %d, want 64", prog.MemWords)
	}
	if len(prog.Procs) != 2 {
		t.Fatalf("len(Procs) = %d, want 2", len(prog.Procs))
	}
	main := prog.Procs[0]
	if main.Name != "main" || len(main.Blocks) != 3 {
		t.Fatalf("main has %d blocks, want 3 (entry, loop, exit)", len(main.Blocks))
	}
	// Block 1 is "loop" and ends with blt whose taken target is itself.
	loop := main.Blocks[1]
	if loop.Label != "loop" {
		t.Errorf("block 1 label = %q, want loop", loop.Label)
	}
	term, ok := loop.Terminator()
	if !ok || term.Op != ir.OpBlt || term.TargetBlock != 1 {
		t.Errorf("loop terminator = %+v, want blt -> block 1", term)
	}
	// The call must be mid-block (calls don't end blocks).
	foundCall := false
	for _, in := range loop.Instrs[:len(loop.Instrs)-1] {
		if in.Op == ir.OpCall {
			foundCall = true
			if in.TargetProc != 1 {
				t.Errorf("call target proc = %d, want 1", in.TargetProc)
			}
		}
	}
	if !foundCall {
		t.Error("call not found mid-block in loop")
	}
	if err := prog.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if prog.Procs[0].Blocks[0].Addr == 0 {
		t.Error("addresses not assigned")
	}
}

func TestAssembleEntryDirective(t *testing.T) {
	prog, err := Assemble(`
proc a
    ret
endproc
proc b
    halt
endproc
entry b
`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if prog.EntryProc != 1 {
		t.Errorf("EntryProc = %d, want 1", prog.EntryProc)
	}
}

func TestRoundTrip(t *testing.T) {
	prog, err := Assemble(sample)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	text := prog.Format()
	prog2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble formatted output: %v\n%s", err, text)
	}
	if prog2.Format() != text {
		t.Errorf("round-trip not stable:\nfirst:\n%s\nsecond:\n%s", text, prog2.Format())
	}
	if prog2.NumInstrs() != prog.NumInstrs() {
		t.Errorf("instr count changed: %d -> %d", prog.NumInstrs(), prog2.NumInstrs())
	}
}

func TestRoundTripIJumpAndAllOps(t *testing.T) {
	src := `
proc main
    nop
    li r1, 3
    mov r2, r1
    add r3, r1, r2
    sub r3, r3, r1
    mul r3, r3, r2
    div r3, r3, r2
    mod r4, r3, r2
    and r4, r4, r1
    or  r4, r4, r1
    xor r4, r4, r1
    shl r4, r4, r1
    shr r4, r4, r1
    addi r4, r4, 1
    muli r4, r4, 2
    andi r4, r4, 7
    slt r5, r1, r2
    slti r5, r1, 9
    ld r6, 0(r1)
    st r6, 8(r1)
    li r7, 0
    ijump r7, [a, b]
a:
    beq r1, r2, b
    bne r1, r2, b
    blt r1, r2, b
    ble r1, r2, b
    bgt r1, r2, b
    bge r1, r2, b
    beqz r1, b
    bnez r1, b
    bltz r1, b
    bgez r1, b
    br b
b:
    halt
endproc
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	text := prog.Format()
	prog2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if got, want := prog2.Format(), text; got != want {
		t.Errorf("round trip changed output:\n%s\nvs\n%s", got, want)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", "proc p\n frob r1\nendproc", "unknown mnemonic"},
		{"outside proc", "li r1, 1", "outside proc"},
		{"nested proc", "proc a\nproc b\nendproc\nendproc", "nested proc"},
		{"missing endproc", "proc a\n ret\n", "missing endproc"},
		{"undefined label", "proc a\n br nowhere\nendproc", "undefined label"},
		{"undefined proc", "proc a\n call nothing\n halt\nendproc", "undefined proc"},
		{"duplicate label", "proc a\nx:\n nop\n br x\nx:\n ret\nendproc", "duplicate label"},
		{"duplicate proc", "proc a\n ret\nendproc\nproc a\n ret\nendproc", "duplicate proc"},
		{"bad register", "proc a\n li r99, 1\n ret\nendproc", "bad register"},
		{"bad immediate", "proc a\n li r1, xyz\n ret\nendproc", "bad immediate"},
		{"wrong arity", "proc a\n add r1, r2\n ret\nendproc", "operand"},
		{"bad mem operand", "proc a\n ld r1, r2\n ret\nendproc", "expected imm(rN)"},
		{"entry undefined", "proc a\n ret\nendproc\nentry zz", "entry proc"},
		{"empty ijump", "proc a\n ijump r1, []\n ret\nendproc", "empty target list"},
		{"falls off end", "proc a\n li r1, 1\nendproc", "falls through"},
		{"no procs", "; nothing\n", "no procedures"},
		{"bad mem directive", "mem many\nproc a\n ret\nendproc", "bad mem size"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%s: Assemble succeeded, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %q, want substring %q", c.name, err, c.want)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble of bad source did not panic")
		}
	}()
	MustAssemble("garbage")
}

func TestCommentsAndBlankLines(t *testing.T) {
	prog, err := Assemble("# hash comment\nproc p ; trailing\n nop ; mid\n halt\nendproc\n")
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if prog.Procs[0].NumInstrs() != 2 {
		t.Errorf("instr count = %d, want 2", prog.Procs[0].NumInstrs())
	}
}

func TestLabelOnlyBlocksMerge(t *testing.T) {
	// A label immediately following another label creates an empty block
	// that falls through; ensure structure is still valid.
	prog, err := Assemble(`
proc p
a:
b:
    nop
    br a
endproc
`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if err := prog.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}
