// Package load is the closed-loop load harness behind cmd/baload: RPS
// schedules (constant, ramp, sweep-to-saturation, burst), a seeded
// deterministic request corpus covering every balignd request encoding,
// bounded closed-loop workers, log-bucketed latency histograms with
// p50/p99/p999, and a stable JSON report.
//
// The harness runs in two modes sharing one code path:
//
//   - real: wall clock + HTTP transport against a live balignd or router,
//     producing the BENCH_serve.json saturation and scaling numbers;
//   - virtual: per-worker virtual clocks + a seeded fake transport, which
//     makes the whole run — request mix, pacing, histogram, report bytes —
//     a pure function of the seed. The determinism oracle pins the report
//     byte-identical across runs and GOMAXPROCS settings.
//
// Determinism in virtual mode does not come from serializing the workers:
// request i is handled by worker i%W, every per-request decision (corpus
// pick, fake latency, fake status) is a pure function of (seed, i), and
// all aggregates are order-independent integer sums — so any interleaving
// of the worker goroutines produces the same report bytes.
package load

import (
	"context"
	"time"
)

// Clock is the generator's notion of time since run start. Workers only
// ever sleep forward to absolute offsets, which keeps the wall and virtual
// implementations interchangeable.
type Clock interface {
	// Now returns the time elapsed since the run started.
	Now() time.Duration
	// SleepUntil blocks until offset t (no-op if already past); it reports
	// false if ctx expired first.
	SleepUntil(ctx context.Context, t time.Duration) bool
	// Advance moves time forward by d. The fake transport uses it to model
	// request latency; the wall clock ignores it (real latency elapses on
	// its own).
	Advance(d time.Duration)
}

// ClockFactory yields one Clock per worker. The wall factory hands every
// worker the same shared clock; the virtual factory hands each worker its
// own, so a worker's timeline is independent of scheduler interleaving.
type ClockFactory func() Clock

// wallClock is real time relative to a fixed start.
type wallClock struct{ start time.Time }

// NewWallClocks returns a factory sharing one wall clock anchored at now.
func NewWallClocks() ClockFactory {
	c := &wallClock{start: time.Now()}
	return func() Clock { return c }
}

func (c *wallClock) Now() time.Duration { return time.Since(c.start) }

func (c *wallClock) SleepUntil(ctx context.Context, t time.Duration) bool {
	d := t - c.Now()
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func (c *wallClock) Advance(time.Duration) {}

// virtualClock is a single worker's deterministic timeline: sleeping jumps
// straight to the target offset, and fake request latency is added
// explicitly. Not safe for sharing across goroutines — by design each
// worker owns one.
type virtualClock struct{ now time.Duration }

// NewVirtualClocks returns a factory handing each worker a fresh virtual
// clock starting at zero.
func NewVirtualClocks() ClockFactory {
	return func() Clock { return &virtualClock{} }
}

func (c *virtualClock) Now() time.Duration { return c.now }

func (c *virtualClock) SleepUntil(ctx context.Context, t time.Duration) bool {
	if t > c.now {
		c.now = t
	}
	return ctx.Err() == nil
}

func (c *virtualClock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}
