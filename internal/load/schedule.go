package load

import (
	"fmt"
	"time"
)

// Slot is one constant-RPS segment of a schedule.
type Slot struct {
	// Dur is the slot's length (JSON: integer nanoseconds).
	Dur time.Duration `json:"dur_ns"`
	// RPS is the target request rate during the slot.
	RPS float64 `json:"rps"`
}

// Schedule is a piecewise-constant RPS target: the trace-synthesizer shape
// (vhive invitro) with four builders over one representation. Arrival
// times are a pure function of the schedule, so two runs of the same
// schedule always issue the same request sequence.
type Schedule struct {
	Kind  string `json:"kind"`
	Slots []Slot `json:"slots"`
}

// Constant holds rps for dur.
func Constant(rps float64, dur time.Duration) Schedule {
	return Schedule{Kind: "constant", Slots: []Slot{{Dur: dur, RPS: rps}}}
}

// Ramp climbs linearly from `from` to `to` over `slots` equal slots of
// slotDur each.
func Ramp(from, to float64, slots int, slotDur time.Duration) Schedule {
	if slots < 1 {
		slots = 1
	}
	s := Schedule{Kind: "ramp"}
	for i := 0; i < slots; i++ {
		frac := 0.0
		if slots > 1 {
			frac = float64(i) / float64(slots-1)
		}
		s.Slots = append(s.Slots, Slot{Dur: slotDur, RPS: from + (to-from)*frac})
	}
	return s
}

// Sweep steps from `from` by `step` up to and including `to` (the
// sweep-to-saturation mode: drive each step for slotDur and read the knee
// where achieved RPS stops following the target).
func Sweep(from, step, to float64, slotDur time.Duration) Schedule {
	if step <= 0 {
		step = from
	}
	s := Schedule{Kind: "sweep"}
	for rps := from; rps <= to+1e-9; rps += step {
		s.Slots = append(s.Slots, Slot{Dur: slotDur, RPS: rps})
	}
	return s
}

// Burst alternates base-rate slots with burst-rate slots: each period
// starts with (period - burstDur) at base RPS and ends with burstDur at
// burst RPS, repeated for total.
func Burst(base, burst float64, period, burstDur, total time.Duration) Schedule {
	if burstDur >= period {
		burstDur = period / 2
	}
	s := Schedule{Kind: "burst"}
	for at := time.Duration(0); at < total; at += period {
		calm := period - burstDur
		if at+calm > total {
			calm = total - at
		}
		s.Slots = append(s.Slots, Slot{Dur: calm, RPS: base})
		if at+period <= total {
			s.Slots = append(s.Slots, Slot{Dur: burstDur, RPS: burst})
		}
	}
	return s
}

// Duration returns the schedule's total length.
func (s Schedule) Duration() time.Duration {
	var d time.Duration
	for _, sl := range s.Slots {
		d += sl.Dur
	}
	return d
}

// Validate rejects schedules the runner cannot pace.
func (s Schedule) Validate() error {
	if len(s.Slots) == 0 {
		return fmt.Errorf("schedule has no slots")
	}
	for i, sl := range s.Slots {
		if sl.Dur <= 0 {
			return fmt.Errorf("slot %d: non-positive duration %v", i, sl.Dur)
		}
		if sl.RPS < 0 {
			return fmt.Errorf("slot %d: negative rps %g", i, sl.RPS)
		}
		if sl.RPS > 1e6 {
			return fmt.Errorf("slot %d: rps %g over the 1e6 cap", i, sl.RPS)
		}
	}
	return nil
}

// arrival is one scheduled request: its offset from run start and the slot
// it belongs to.
type arrival struct {
	at   time.Duration
	slot int
}

// arrivals expands the schedule into per-request target times: slot k of
// rate R and length D contributes round(R*D.Seconds()) arrivals spaced
// evenly through the slot. Pure integer/float arithmetic on fixed inputs —
// identical across runs.
func (s Schedule) arrivals() []arrival {
	var out []arrival
	var start time.Duration
	for i, sl := range s.Slots {
		n := int(sl.RPS*sl.Dur.Seconds() + 0.5)
		for k := 0; k < n; k++ {
			off := time.Duration(float64(k) / sl.RPS * float64(time.Second))
			out = append(out, arrival{at: start + off, slot: i})
		}
		start += sl.Dur
	}
	return out
}

// ParseSchedule builds a schedule from the baload flag set: kind plus the
// generic rate/step/slot knobs, with per-kind interpretation.
func ParseSchedule(kind string, rps, rpsMax, step float64, slotDur, total time.Duration) (Schedule, error) {
	if rps <= 0 {
		return Schedule{}, fmt.Errorf("rps must be positive, got %g", rps)
	}
	switch kind {
	case "constant":
		return Constant(rps, total), nil
	case "ramp":
		if rpsMax <= 0 {
			rpsMax = rps * 4
		}
		slots := int(total / slotDur)
		if slots < 1 {
			slots = 1
		}
		return Ramp(rps, rpsMax, slots, slotDur), nil
	case "sweep":
		if rpsMax <= 0 {
			rpsMax = rps * 8
		}
		if step <= 0 {
			step = rps
		}
		return Sweep(rps, step, rpsMax, slotDur), nil
	case "burst":
		if rpsMax <= 0 {
			rpsMax = rps * 4
		}
		return Burst(rps, rpsMax, 4*slotDur, slotDur, total), nil
	default:
		return Schedule{}, fmt.Errorf("unknown schedule %q (known: burst, constant, ramp, sweep)", kind)
	}
}
