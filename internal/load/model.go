package load

import (
	"fmt"
	"time"

	"balign/internal/serve/router"
)

// This file is a deterministic discrete-event queueing model of the
// sharded balignd deployment: each shard is a single-server FIFO queue with
// its own result cache, and requests route over the *real* consistent-hash
// ring (router.NewRing + the same cache keys the backend derives), so the
// model's shard placement and per-shard hit rates are exactly what the live
// router produces. Service times come from the same seeded latency model as
// FakeDoer.
//
// Its purpose in BENCH_serve.json is the scaling column on hosts where
// measured scaling is meaningless (a 1-CPU container time-slices all shards
// onto one core): the model answers "how would this request stream scale
// with N real cores", clearly labeled as modeled rather than measured.

// ModelResult is one modeled deployment point.
type ModelResult struct {
	Shards      int            `json:"shards"`
	Requests    uint64         `json:"requests"`
	CacheHits   uint64         `json:"cache_hits"`
	MakespanNs  int64          `json:"makespan_ns"`
	Throughput  float64        `json:"throughput_rps"`
	Speedup     float64        `json:"speedup_vs_1"`
	Latency     LatencySummary `json:"latency"`
	MaxQueueLen int            `json:"max_queue_len"`
	// Imbalance is max/mean per-shard request count — ring skew.
	Imbalance float64 `json:"imbalance"`
}

// RunModel simulates the schedule's request stream against n shards and
// returns the modeled point. Deterministic: same (corpus, schedule, n) →
// identical result.
func RunModel(c *Corpus, sched Schedule, shards int) (*ModelResult, error) {
	ring, err := router.NewRing(shards, router.DefaultVNodes)
	if err != nil {
		return nil, err
	}
	arr := sched.arrivals()
	if len(arr) == 0 {
		return nil, fmt.Errorf("model: schedule yields zero requests")
	}
	picks, _ := c.Plan(len(arr))

	free := make([]time.Duration, shards) // when each shard's server frees up
	queued := make([]int, shards)         // current queue depth per shard
	counts := make([]uint64, shards)      // per-shard request totals
	seen := make([]map[int]bool, shards)  // per-shard cache contents (by entry)
	for i := range seen {
		seen[i] = map[int]bool{}
	}
	var hist Hist
	var hits uint64
	var makespan time.Duration
	maxQ := 0

	// Arrivals are time-ordered (schedule expansion emits them sorted), so a
	// single forward pass is an exact FIFO simulation.
	type inflight struct {
		done  time.Duration
		shard int
	}
	var running []inflight
	for i, a := range arr {
		e := c.Entries[picks[i]]
		sh := ring.Lookup(e.Key)
		counts[sh]++

		// Retire completions up to this arrival to track queue depth.
		live := running[:0]
		for _, f := range running {
			if f.done > a.at {
				live = append(live, f)
			} else {
				queued[f.shard]--
			}
		}
		running = live

		hit := seen[sh][picks[i]]
		seen[sh][picks[i]] = true
		rng := splitmix64(uint64(c.Seed)*0x9e3779b97f4a7c15 ^ (uint64(i)+1)*0xda942042e4dd58b5)
		var svcNs uint64
		if hit {
			hits++
			svcNs = fakeHitBaseNs + rng%120_000
		} else {
			svcNs = fakeMissBaseNs + rng%1_500_000
			switch e.Kind {
			case KindSimSuite:
				svcNs += fakeSuiteExtra + (rng>>16)%4_000_000
			case KindSimInline:
				svcNs += fakeInlineExtra + (rng>>16)%2_000_000
			}
		}
		start := a.at
		if free[sh] > start {
			start = free[sh]
		}
		done := start + time.Duration(svcNs)
		free[sh] = done
		queued[sh]++
		if queued[sh] > maxQ {
			maxQ = queued[sh]
		}
		running = append(running, inflight{done: done, shard: sh})
		hist.Observe(done - a.at) // queueing delay + service = client latency
		if done > makespan {
			makespan = done
		}
	}

	res := &ModelResult{
		Shards:      shards,
		Requests:    uint64(len(arr)),
		CacheHits:   hits,
		MakespanNs:  int64(makespan),
		Latency:     hist.Summary(),
		MaxQueueLen: maxQ,
	}
	if makespan > 0 {
		res.Throughput = round2(float64(len(arr)) / makespan.Seconds())
	}
	var maxC uint64
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(len(arr)) / float64(shards)
	if mean > 0 {
		res.Imbalance = round2(float64(maxC) / mean)
	}
	return res, nil
}

// ModelScaling runs the model at each shard count and fills Speedup
// relative to the 1-shard makespan.
func ModelScaling(c *Corpus, sched Schedule, shardCounts []int) ([]*ModelResult, error) {
	var base int64
	out := make([]*ModelResult, 0, len(shardCounts))
	for _, n := range shardCounts {
		r, err := RunModel(c, sched, n)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			base = r.MakespanNs
		}
		out = append(out, r)
	}
	for _, r := range out {
		if base > 0 && r.MakespanNs > 0 {
			r.Speedup = round2(float64(base) / float64(r.MakespanNs))
		}
	}
	return out, nil
}
