package load

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"time"
)

// Outcome is everything the runner records about one completed request.
type Outcome struct {
	// Status is the HTTP status code, or 0 on a transport error.
	Status int
	// CacheHit reports the backend's X-Balign-Cache: hit header.
	CacheHit bool
	// Latency is the request's service time.
	Latency time.Duration
	// Err is the transport error, nil on any HTTP response.
	Err error
}

// Doer issues one request from the corpus. idx is the global request index;
// clk is the issuing worker's clock (the fake transport advances it by the
// modeled latency, the HTTP transport ignores it — real time elapses).
type Doer interface {
	Do(ctx context.Context, clk Clock, idx int, e Entry) Outcome
}

// HTTPDoer drives a live balignd or router over HTTP.
type HTTPDoer struct {
	Base    string // e.g. http://127.0.0.1:8080 — no trailing slash
	Client  *http.Client
	Timeout time.Duration // per-request deadline; 0 means no extra deadline
}

// NewHTTPDoer builds an HTTP transport with a connection pool sized for
// closed-loop workers.
func NewHTTPDoer(base string, timeout time.Duration) *HTTPDoer {
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     90 * time.Second,
	}
	return &HTTPDoer{Base: base, Client: &http.Client{Transport: tr}, Timeout: timeout}
}

func (d *HTTPDoer) Do(ctx context.Context, clk Clock, idx int, e Entry) Outcome {
	if d.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.Timeout)
		defer cancel()
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.Base+e.Path, bytes.NewReader(e.Body))
	if err != nil {
		return Outcome{Err: err, Latency: time.Since(start)}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.Client.Do(req)
	if err != nil {
		return Outcome{Err: err, Latency: time.Since(start)}
	}
	// Drain so the connection is reusable; the runner only needs headers.
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return Outcome{
		Status:   resp.StatusCode,
		CacheHit: resp.Header.Get("X-Balign-Cache") == "hit",
		Latency:  time.Since(start),
	}
}

// FakeDoer is the virtual-mode transport: it never touches the network and
// computes every outcome as a pure function of (seed, idx) plus the
// precomputed would-be-cache-hit plan. Latency is synthesized and applied
// to the worker's virtual clock, so pacing, saturation behavior and the
// histogram all exercise the real runner code paths deterministically.
type FakeDoer struct {
	Seed int64
	// Hits[idx] is the plan's would-be cache-hit flag for request idx.
	Hits []bool
	// ErrEvery injects one deterministic 429 per this many requests
	// (0 disables); exercises the error-classification buckets.
	ErrEvery int
}

// Fake latency model: cache hits are fast and tight, misses pay a
// kind-dependent compute cost with deterministic jitter.
const (
	fakeHitBaseNs   = 180_000   // 180µs floor for a cache hit
	fakeMissBaseNs  = 2_500_000 // 2.5ms floor for an align compute
	fakeSuiteExtra  = 9_000_000 // suite simulations are the heavy tail
	fakeInlineExtra = 3_000_000 // inline simulations sit in between
)

func (d *FakeDoer) Do(ctx context.Context, clk Clock, idx int, e Entry) Outcome {
	if err := ctx.Err(); err != nil {
		return Outcome{Err: err}
	}
	rng := splitmix64(uint64(d.Seed)*0x9e3779b97f4a7c15 ^ (uint64(idx)+1)*0xda942042e4dd58b5)
	if d.ErrEvery > 0 && idx%d.ErrEvery == d.ErrEvery-1 {
		lat := time.Duration(50_000 + rng%100_000)
		clk.Advance(lat)
		return Outcome{Status: http.StatusTooManyRequests, Latency: lat}
	}
	hit := idx < len(d.Hits) && d.Hits[idx]
	var ns uint64
	if hit {
		ns = fakeHitBaseNs + rng%120_000
	} else {
		ns = fakeMissBaseNs + rng%1_500_000
		switch e.Kind {
		case KindSimSuite:
			ns += fakeSuiteExtra + (rng>>16)%4_000_000
		case KindSimInline:
			ns += fakeInlineExtra + (rng>>16)%2_000_000
		}
	}
	lat := time.Duration(ns)
	clk.Advance(lat)
	return Outcome{Status: http.StatusOK, CacheHit: hit, Latency: lat}
}

// errString renders a transport error into a stable bucket label.
func errString(err error) string {
	if err == nil {
		return ""
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline"
	}
	return "transport"
}
