package load

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Latencies below this are stored in exact 1ns buckets; above it, buckets
// are log-spaced with histSubBits sub-buckets per octave (≈6% relative
// resolution), which keeps the whole 1ns..2.5h range in under a thousand
// counters.
const (
	histExactMax = 16 // values [0, histExactMax) get exact buckets
	histSubBits  = 4  // sub-buckets per octave = 1<<histSubBits
	histExactExp = 4  // log2(histExactMax)
	histMaxExp   = 43 // top octave ≈ 2.4h — beyond any sane request latency
	histBuckets  = histExactMax + (histMaxExp-histExactExp+1)<<histSubBits
)

// Hist is a log-bucketed latency histogram with lock-free concurrent
// observation. Counts, the total and the exact max are all plain integer
// accumulators, so a histogram filled by any interleaving of workers holds
// identical state — the property the deterministic-report oracle rests on.
type Hist struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
	sumNs  atomic.Uint64
	maxNs  atomic.Uint64
}

// bucketOf maps a latency in ns onto its bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < histExactMax {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= histExactExp
	if exp > histMaxExp {
		exp = histMaxExp
		v = 1<<uint(histMaxExp+1) - 1
	}
	sub := (v >> uint(exp-histSubBits)) & (1<<histSubBits - 1)
	return histExactMax + (exp-histExactExp)<<histSubBits + int(sub)
}

// bucketUpper returns the largest ns value a bucket can hold — what
// quantiles report, making them conservative (never under-reported).
func bucketUpper(idx int) int64 {
	if idx < histExactMax {
		return int64(idx)
	}
	idx -= histExactMax
	exp := histExactExp + idx>>histSubBits
	sub := uint64(idx & (1<<histSubBits - 1))
	base := uint64(1) << uint(exp)
	step := base >> histSubBits
	return int64(base + (sub+1)*step - 1)
}

// Observe records one latency.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketOf(ns)].Add(1)
	h.total.Add(1)
	h.sumNs.Add(uint64(ns))
	for {
		cur := h.maxNs.Load()
		if uint64(ns) <= cur || h.maxNs.CompareAndSwap(cur, uint64(ns)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.total.Load() }

// MaxNs returns the exact largest observed latency in ns.
func (h *Hist) MaxNs() int64 { return int64(h.maxNs.Load()) }

// MeanNs returns the mean latency in ns (integer division; 0 when empty).
func (h *Hist) MeanNs() int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return int64(h.sumNs.Load() / n)
}

// QuantileNs returns the latency at quantile num/den (e.g. 999/1000 for
// p999) as the owning bucket's upper bound, with the exact max for the
// final bucket. Integer arithmetic throughout: equal histograms always
// answer equal quantiles.
func (h *Hist) QuantileNs(num, den uint64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	rank := (n*num + den - 1) / den
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			upper := bucketUpper(i)
			if m := h.MaxNs(); m < upper {
				return m
			}
			return upper
		}
	}
	return h.MaxNs()
}

// Summary snapshots the standard report quantiles.
func (h *Hist) Summary() LatencySummary {
	if h.Count() == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		P50Ns:  h.QuantileNs(50, 100),
		P90Ns:  h.QuantileNs(90, 100),
		P99Ns:  h.QuantileNs(99, 100),
		P999Ns: h.QuantileNs(999, 1000),
		MaxNs:  h.MaxNs(),
		MeanNs: h.MeanNs(),
	}
}

// LatencySummary is the report's fixed quantile set, in nanoseconds.
type LatencySummary struct {
	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`
	MaxNs  int64 `json:"max_ns"`
	MeanNs int64 `json:"mean_ns"`
}
