package load

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"balign/internal/serve"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestHistBucketsRoundTrip(t *testing.T) {
	for _, ns := range []int64{0, 1, 15, 16, 17, 255, 1000, 123456, 1e6, 987654321, 1e12} {
		idx := bucketOf(ns)
		upper := bucketUpper(idx)
		if upper < ns {
			t.Errorf("bucketUpper(bucketOf(%d)) = %d, below the value", ns, upper)
		}
		if ns >= histExactMax {
			if float64(upper) > float64(ns)*1.07+1 {
				t.Errorf("bucket upper %d overshoots %d by more than ~7%%", upper, ns)
			}
		} else if upper != ns {
			t.Errorf("exact range: bucketUpper(bucketOf(%d)) = %d, want exact", ns, upper)
		}
	}
	// Bucket uppers must be strictly increasing, or quantiles would be
	// non-monotone.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		u := bucketUpper(i)
		if u <= prev {
			t.Fatalf("bucketUpper(%d)=%d not greater than bucketUpper(%d)=%d", i, u, i-1, prev)
		}
		prev = u
	}
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("Count = %d, want 1000", got)
	}
	p50 := h.QuantileNs(50, 100)
	if p50 < 450_000 || p50 > 560_000 {
		t.Errorf("p50 = %dns, want ≈500µs (log-bucket resolution)", p50)
	}
	p999 := h.QuantileNs(999, 1000)
	if p999 < 990_000 || p999 > int64(1_000_000) {
		t.Errorf("p999 = %dns, want ≈999µs capped at exact max", p999)
	}
	if max := h.MaxNs(); max != 1_000_000 {
		t.Errorf("MaxNs = %d, want exactly 1ms", max)
	}
}

func TestScheduleArrivals(t *testing.T) {
	s := Constant(100, 2*time.Second)
	arr := s.arrivals()
	if len(arr) != 200 {
		t.Fatalf("constant 100rps x 2s: %d arrivals, want 200", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].at < arr[i-1].at {
			t.Fatal("arrivals not time-ordered")
		}
	}
	sweep := Sweep(10, 10, 40, time.Second)
	if len(sweep.Slots) != 4 {
		t.Fatalf("sweep 10..40 step 10: %d slots, want 4", len(sweep.Slots))
	}
	if err := (Schedule{}).Validate(); err == nil {
		t.Error("empty schedule validated")
	}
	if err := Constant(-1, time.Second).Validate(); err == nil {
		t.Error("negative rps validated")
	}
	if _, err := ParseSchedule("nope", 10, 0, 0, time.Second, time.Second); err == nil {
		t.Error("unknown schedule kind parsed")
	}
}

func TestMixSequenceInterleaves(t *testing.T) {
	seq, err := mixSequence(DefaultMix(), 10)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, k := range seq {
		kinds[k] = true
	}
	// Any 10-entry prefix of the default mix must already carry most kinds
	// — the property that keeps small corpora representative.
	if len(kinds) < 4 {
		t.Errorf("10-entry prefix covers %d kinds (%v), want >=4", len(kinds), seq)
	}
}

func TestCorpusDeterministicAndParseable(t *testing.T) {
	c1, err := BuildCorpus(7, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildCorpus(7, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Entries) != 10 {
		t.Fatalf("corpus size %d, want 10", len(c1.Entries))
	}
	keys := map[string]bool{}
	for i := range c1.Entries {
		a, b := c1.Entries[i], c2.Entries[i]
		if !bytes.Equal(a.Body, b.Body) || a.Key != b.Key || a.Kind != b.Kind {
			t.Fatalf("entry %d differs across identical builds", i)
		}
		// BuildCorpus already validated the body through serve.RequestKey;
		// re-derive to pin the key contract.
		key, err := serve.RequestKey(a.Path, a.Body)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if key != a.Key {
			t.Fatalf("entry %d: stored key %s != derived %s", i, a.Key, key)
		}
		keys[key] = true
	}
	if len(keys) != 10 {
		t.Errorf("only %d distinct cache keys across 10 entries", len(keys))
	}
}

// virtualRun executes the fixed oracle workload and returns the report
// bytes. Everything is pinned: seed, corpus, schedule, workers, error
// injection.
func virtualRun(t *testing.T) []byte {
	t.Helper()
	corpus, err := BuildCorpus(1234, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := Ramp(50, 200, 4, 500*time.Millisecond)
	rep, err := Run(context.Background(), RunConfig{
		Schedule: sched,
		Corpus:   corpus,
		Doer:     &FakeDoer{Seed: 1234, ErrEvery: 50},
		Clocks:   NewVirtualClocks(),
		Workers:  8,
		Seed:     1234,
		Virtual:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestVirtualReportDeterministic is the load-report oracle: the same seed
// must produce byte-identical report JSON across repeated runs and across
// GOMAXPROCS settings — scheduling interleavings must not leak into the
// report.
func TestVirtualReportDeterministic(t *testing.T) {
	base := virtualRun(t)
	if again := virtualRun(t); !bytes.Equal(base, again) {
		t.Fatal("two identical virtual runs produced different report bytes")
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		if got := virtualRun(t); !bytes.Equal(base, got) {
			t.Errorf("GOMAXPROCS=%d changed the report bytes", procs)
		}
	}
}

// TestVirtualReportGolden pins the oracle report against a committed
// fixture, so accidental report-schema or semantics drift fails CI.
// Refresh deliberately with: go test ./internal/load -run Golden -update
func TestVirtualReportGolden(t *testing.T) {
	got := virtualRun(t)
	path := filepath.Join("testdata", "report_virtual.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("virtual report differs from golden (run with -update after intended changes)\n got: %.400s\nwant: %.400s", got, want)
	}
}

// TestVirtualRunAccounting checks the report's integer bookkeeping: every
// request lands in exactly one outcome bucket and the injected 429s are
// classified as expected backpressure, not unexpected errors.
func TestVirtualRunAccounting(t *testing.T) {
	corpus, err := BuildCorpus(5, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), RunConfig{
		Schedule: Constant(100, time.Second),
		Corpus:   corpus,
		Doer:     &FakeDoer{Seed: 5, ErrEvery: 10},
		Clocks:   NewVirtualClocks(),
		Workers:  4,
		Virtual:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 100 {
		t.Fatalf("requests = %d, want 100", rep.Requests)
	}
	if rep.Errors.Status429 != 10 {
		t.Errorf("injected 429s = %d, want 10", rep.Errors.Status429)
	}
	if rep.UnexpectedErrors != 0 {
		t.Errorf("unexpected errors = %d; 429 is backpressure, not failure", rep.UnexpectedErrors)
	}
	if rep.OK+rep.Errors.Status429 != rep.Requests {
		t.Errorf("ok %d + 429 %d != requests %d", rep.OK, rep.Errors.Status429, rep.Requests)
	}
	if rep.Host != nil || rep.WallDurNs != 0 {
		t.Error("virtual report leaked host/wall fields")
	}
	var slotTotal uint64
	for _, s := range rep.Slots {
		slotTotal += s.Requests
	}
	if slotTotal != rep.Requests {
		t.Errorf("slot totals %d != requests %d", slotTotal, rep.Requests)
	}
	var kindTotal uint64
	for _, k := range rep.Kinds {
		kindTotal += k.Requests
	}
	if kindTotal != rep.Requests {
		t.Errorf("kind totals %d != requests %d", kindTotal, rep.Requests)
	}
}

// TestRunRealModeAgainstServer drives the real HTTP path against a live
// serve.Server: requests succeed, repeats hit the cache, and the report
// carries host metadata.
func TestRunRealModeAgainstServer(t *testing.T) {
	srv, err := serve.New(serve.Config{MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	corpus, err := BuildCorpus(9, 4, []MixItem{
		{Kind: KindAlignAsm, Weight: 1},
		{Kind: KindAlignCFGJSON, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), RunConfig{
		Schedule: Constant(60, time.Second),
		Corpus:   corpus,
		Doer:     NewHTTPDoer(ts.URL, 10*time.Second),
		Clocks:   NewWallClocks(),
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnexpectedErrors != 0 {
		t.Fatalf("unexpected errors against live server: %d (%+v)", rep.UnexpectedErrors, rep.Errors)
	}
	if rep.OK != rep.Requests {
		t.Errorf("ok %d != requests %d", rep.OK, rep.Requests)
	}
	if rep.CacheHits == 0 {
		t.Error("60 requests over 4 distinct bodies produced no cache hits")
	}
	if rep.Host == nil || rep.Host.CPUs <= 0 {
		t.Error("real-mode report missing host block")
	}
	if rep.Mode != "real" {
		t.Errorf("mode = %q, want real", rep.Mode)
	}
}

// TestModelScalingProperties pins the modeled-scaling invariants the
// benchmark leans on: cache hits identical at every shard count (key
// affinity preserves per-shard caches) and makespan non-increasing as
// shards are added under an overloaded schedule.
func TestModelScalingProperties(t *testing.T) {
	corpus, err := BuildCorpus(3, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	results, err := ModelScaling(corpus, Constant(20000, time.Second), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, r := range results[1:] {
		if r.CacheHits != results[0].CacheHits {
			t.Errorf("shards=%d cache hits %d != single-shard %d — sharding must not cost hit rate",
				r.Shards, r.CacheHits, results[0].CacheHits)
		}
		if r.MakespanNs > results[i].MakespanNs {
			t.Errorf("shards=%d makespan %d worse than shards=%d %d under overload",
				r.Shards, r.MakespanNs, results[i].Shards, results[i].MakespanNs)
		}
	}
	if sp := results[1].Speedup; sp < 1.5 {
		t.Errorf("modeled 2-shard speedup %.2f < 1.5 — ring imbalance regressed", sp)
	}
	if sp := results[2].Speedup; sp < 2.5 {
		t.Errorf("modeled 4-shard speedup %.2f < 2.5 — ring imbalance regressed", sp)
	}
	// Determinism: the model must reproduce exactly.
	again, err := RunModel(corpus, Constant(20000, time.Second), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := *results[1]
	want.Speedup = 0 // ModelScaling fills Speedup afterwards; RunModel leaves it zero
	if fmt.Sprintf("%+v", *again) != fmt.Sprintf("%+v", want) {
		t.Errorf("RunModel is not deterministic:\n got %+v\nwant %+v", *again, want)
	}
}
