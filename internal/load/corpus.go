package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"balign/internal/asm"
	"balign/internal/cfgio"
	"balign/internal/profile"
	"balign/internal/serve"
	"balign/internal/vm"
)

// Request-kind names: the five request encodings balignd accepts, which
// the mix distributes traffic over.
const (
	KindAlignAsm     = "align-asm"       // /v1/align, asm + profile texts
	KindAlignCFGJSON = "align-cfg-json"  // /v1/align, combined CFG JSON doc
	KindAlignCFGDOT  = "align-cfg-dot"   // /v1/align, combined CFG DOT doc
	KindSimInline    = "simulate-inline" // /v1/simulate, inline walk
	KindSimSuite     = "simulate-suite"  // /v1/simulate, named suite program
)

// MixItem weights one request kind in the corpus.
type MixItem struct {
	Kind   string `json:"kind"`
	Weight int    `json:"weight"`
}

// DefaultMix skews toward align traffic (the cheap, cacheable hot path)
// with a simulate tail — the realistic shape for an alignment service,
// not a synthetic no-op mix.
func DefaultMix() []MixItem {
	return []MixItem{
		{KindAlignAsm, 40},
		{KindAlignCFGJSON, 15},
		{KindAlignCFGDOT, 15},
		{KindSimInline, 20},
		{KindSimSuite, 10},
	}
}

// ParseMix reads a "kind=weight,kind=weight" flag value.
func ParseMix(spec string) ([]MixItem, error) {
	if spec == "" {
		return DefaultMix(), nil
	}
	known := map[string]bool{
		KindAlignAsm: true, KindAlignCFGJSON: true, KindAlignCFGDOT: true,
		KindSimInline: true, KindSimSuite: true,
	}
	var mix []MixItem
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("mix entry %q is not kind=weight", part)
		}
		if !known[kv[0]] {
			return nil, fmt.Errorf("unknown request kind %q (known: %s, %s, %s, %s, %s)",
				kv[0], KindAlignAsm, KindAlignCFGDOT, KindAlignCFGJSON, KindSimInline, KindSimSuite)
		}
		var w int
		if _, err := fmt.Sscanf(kv[1], "%d", &w); err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q has a bad weight", part)
		}
		mix = append(mix, MixItem{kv[0], w})
	}
	return mix, nil
}

// Entry is one concrete request in the corpus: an endpoint path, the exact
// body bytes, and the cache key the backend will derive for it (also the
// router's shard-choice key).
type Entry struct {
	Kind string
	Path string
	Body []byte
	Key  string
}

// Corpus is a seeded deterministic request set. Building it twice with the
// same (seed, size, mix) yields byte-identical entries.
type Corpus struct {
	Seed    int64
	Entries []Entry
}

// splitmix64 is the corpus and plan PRNG: a pure function of its input, so
// every per-request decision derives from (seed, index) alone.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// corpusProgramAsm renders one parameterized corpus program: the
// serve-fixture shape (a skewed hot loop with a removable detour) with the
// loop bound, skew mask and detour increment varied per entry so distinct
// entries have distinct cache keys and genuinely different alignment work.
func corpusProgramAsm(name string, bound, mask, inc int) string {
	return fmt.Sprintf(`; baload corpus program %s (bound %d, mask %d, inc %d)
mem 64
entry main

proc main
    li r1, %d
loop:
    addi r2, r2, 1
    andi r3, r2, %d
    bnez r3, common
    addi r4, r4, %d
    br join
common:
    addi r5, r5, 2
join:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`, name, bound, mask, inc, bound, mask, inc)
}

// buildProgram assembles one corpus program and collects its exact edge
// profile by executing it in the VM — the same training-run semantics the
// serve layer uses, so the profile is always flow-conserved and CFG
// exports validate.
func buildProgram(name string, rng uint64) (asmText, profText string, cfgJSON, cfgDOT []byte, err error) {
	bound := 100 + int(rng%256)
	mask := []int{1, 3, 7, 15}[(rng>>8)%4]
	inc := 1 + int((rng>>16)%3)
	asmText = corpusProgramAsm(name, bound, mask, inc)
	prog, err := asm.Assemble(asmText)
	if err != nil {
		return "", "", nil, nil, fmt.Errorf("corpus program %s: %w", name, err)
	}
	machine := vm.New(prog)
	machine.MaxSteps = 1 << 20
	col := profile.NewCollector(prog)
	res, err := machine.Run(nil, col)
	if err != nil {
		return "", "", nil, nil, fmt.Errorf("profiling corpus program %s: %w", name, err)
	}
	pf := col.Profile()
	pf.Instrs = res.Instrs
	var buf bytes.Buffer
	if _, err := pf.WriteTo(&buf); err != nil {
		return "", "", nil, nil, err
	}
	profText = buf.String()
	if cfgJSON, err = cfgio.ExportJSON(prog, pf); err != nil {
		return "", "", nil, nil, fmt.Errorf("exporting corpus program %s: %w", name, err)
	}
	if cfgDOT, err = cfgio.ExportDOT(prog, pf); err != nil {
		return "", "", nil, nil, fmt.Errorf("exporting corpus program %s: %w", name, err)
	}
	return asmText, profText, cfgJSON, cfgDOT, nil
}

// mixSequence interleaves the kinds by smooth weighted round-robin, so any
// prefix of the corpus — even one smaller than the weight total — carries
// every kind in roughly mix proportion.
func mixSequence(mix []MixItem, n int) ([]string, error) {
	total := 0
	for _, m := range mix {
		total += m.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("mix has zero total weight")
	}
	cur := make([]int, len(mix))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		best := -1
		for j, m := range mix {
			if m.Weight == 0 {
				continue
			}
			cur[j] += m.Weight
			if best < 0 || cur[j] > cur[best] {
				best = j
			}
		}
		cur[best] -= total
		out[i] = mix[best].Kind
	}
	return out, nil
}

// BuildCorpus generates size entries distributed over the mix weights, each
// parameterized from splitmix64(seed, i). Every entry's body is validated
// through the serve parsers by deriving its cache key.
func BuildCorpus(seed int64, size int, mix []MixItem) (*Corpus, error) {
	if size <= 0 {
		return nil, fmt.Errorf("corpus size must be positive, got %d", size)
	}
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	kindSeq, err := mixSequence(mix, size)
	if err != nil {
		return nil, err
	}
	c := &Corpus{Seed: seed, Entries: make([]Entry, 0, size)}
	for i := 0; i < size; i++ {
		kind := kindSeq[i]
		rng := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(i))
		name := fmt.Sprintf("c%04d", i)
		entry, err := buildEntry(kind, name, rng)
		if err != nil {
			return nil, err
		}
		key, err := serve.RequestKey(entry.Path, entry.Body)
		if err != nil {
			return nil, fmt.Errorf("corpus entry %d (%s) does not parse: %w", i, kind, err)
		}
		entry.Key = key
		c.Entries = append(c.Entries, entry)
	}
	return c, nil
}

// buildEntry renders one request body for its kind.
func buildEntry(kind, name string, rng uint64) (Entry, error) {
	marshal := func(path string, req map[string]any) (Entry, error) {
		body, err := json.Marshal(req) // map keys marshal sorted: deterministic
		if err != nil {
			return Entry{}, err
		}
		return Entry{Kind: kind, Path: path, Body: body}, nil
	}
	switch kind {
	case KindSimSuite:
		// Seed variation keeps suite entries from collapsing onto one
		// cache key; the tiny scale bounds the per-request grid work.
		return marshal("/v1/simulate", map[string]any{
			"programs": []string{"ora"},
			"scale":    0.02,
			"seed":     int64(rng % 64),
		})
	case KindSimInline:
		asmText, profText, _, _, err := buildProgram(name, rng)
		if err != nil {
			return Entry{}, err
		}
		return marshal("/v1/simulate", map[string]any{
			"name":       name,
			"asm":        asmText,
			"profile":    profText,
			"generator":  "walk",
			"max_instrs": 16384,
			"seed":       int64(rng % 1024),
		})
	case KindAlignAsm, KindAlignCFGJSON, KindAlignCFGDOT:
		asmText, profText, cfgJSON, cfgDOT, err := buildProgram(name, rng)
		if err != nil {
			return Entry{}, err
		}
		switch kind {
		case KindAlignCFGJSON:
			return marshal("/v1/align", map[string]any{"cfg": string(cfgJSON)})
		case KindAlignCFGDOT:
			return marshal("/v1/align", map[string]any{"cfg": string(cfgDOT)})
		default:
			return marshal("/v1/align", map[string]any{
				"name": name, "asm": asmText, "profile": profText,
			})
		}
	default:
		return Entry{}, fmt.Errorf("unknown corpus kind %q", kind)
	}
}

// Plan assigns n requests onto corpus entries: picks[i] is a pure function
// of (corpus seed, i), and hits[i] reports whether an earlier request
// already picked the same entry — the would-be cache-hit flag the fake
// transport replays (the first request for a key computes, repeats hit the
// per-shard result cache).
func (c *Corpus) Plan(n int) (picks []int, hits []bool) {
	picks = make([]int, n)
	hits = make([]bool, n)
	seen := make([]bool, len(c.Entries))
	for i := 0; i < n; i++ {
		p := int(splitmix64(uint64(c.Seed)^0xc0ffee+uint64(i)*0x2545f4914f6cdd1d) % uint64(len(c.Entries)))
		picks[i] = p
		hits[i] = seen[p]
		seen[p] = true
	}
	return picks, hits
}
