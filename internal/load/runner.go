package load

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// RunConfig is one load-generation run.
type RunConfig struct {
	Schedule Schedule
	Corpus   *Corpus
	Doer     Doer
	Clocks   ClockFactory
	Workers  int
	// Seed drives the request→entry plan (defaults to the corpus seed).
	Seed int64
	// Virtual marks a virtual-clock run: the report omits wall-time and
	// host fields so its bytes are machine-independent.
	Virtual bool
}

// slotAgg accumulates one schedule slot's order-independent counters.
type slotAgg struct {
	sent     atomic.Uint64
	ok       atomic.Uint64
	errs     atomic.Uint64
	lastEnd  atomic.Uint64 // max completion offset (ns) seen in this slot
	totalLat atomic.Uint64
}

// kindAgg accumulates one request kind's counters and latency histogram.
type kindAgg struct {
	hist Hist
	sent atomic.Uint64
	hits atomic.Uint64
}

// Run executes the schedule against the corpus and returns the report.
// Closed-loop semantics: each of Workers workers owns the arrival indices
// i ≡ worker (mod Workers) and issues them in order, sleeping until each
// arrival time but never overlapping its own requests — so when the target
// rate exceeds capacity the achieved rate saturates instead of piling up
// unbounded in-flight work.
func Run(ctx context.Context, cfg RunConfig) (*Report, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 16
	}
	if cfg.Corpus == nil || len(cfg.Corpus.Entries) == 0 {
		return nil, fmt.Errorf("load: empty corpus")
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	if cfg.Clocks == nil {
		cfg.Clocks = NewWallClocks()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cfg.Corpus.Seed
	}

	arr := cfg.Schedule.arrivals()
	if len(arr) == 0 {
		return nil, fmt.Errorf("load: schedule yields zero requests")
	}
	plan := *cfg.Corpus
	plan.Seed = seed
	picks, hits := plan.Plan(len(arr))
	if fd, ok := cfg.Doer.(*FakeDoer); ok && fd.Hits == nil {
		fd.Hits = hits
	}

	slots := make([]slotAgg, len(cfg.Schedule.Slots))
	kinds := map[string]*kindAgg{}
	for _, e := range cfg.Corpus.Entries {
		if kinds[e.Kind] == nil {
			kinds[e.Kind] = &kindAgg{}
		}
	}
	var (
		overall   Hist
		sent      atomic.Uint64
		okCount   atomic.Uint64
		cacheHits atomic.Uint64
		status429 atomic.Uint64
		status503 atomic.Uint64
		status504 atomic.Uint64
		badStatus atomic.Uint64 // unexpected 4xx/5xx
		transport atomic.Uint64
		deadline  atomic.Uint64
		lateness  atomic.Uint64 // total ns issued after target time
	)

	wallStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clk := cfg.Clocks()
			for i := w; i < len(arr); i += cfg.Workers {
				a := arr[i]
				if !clk.SleepUntil(ctx, a.at) {
					return
				}
				issuedAt := clk.Now()
				e := cfg.Corpus.Entries[picks[i]]
				out := cfg.Doer.Do(ctx, clk, i, e)
				if out.Err != nil && ctx.Err() != nil && errString(out.Err) != "deadline" {
					return // run cancelled, not a request failure
				}

				sent.Add(1)
				if late := issuedAt - a.at; late > 0 {
					lateness.Add(uint64(late))
				}
				sa := &slots[a.slot]
				sa.sent.Add(1)
				sa.totalLat.Add(uint64(out.Latency))
				end := uint64(issuedAt + out.Latency)
				for {
					cur := sa.lastEnd.Load()
					if end <= cur || sa.lastEnd.CompareAndSwap(cur, end) {
						break
					}
				}
				ka := kinds[e.Kind]
				ka.sent.Add(1)
				ka.hist.Observe(out.Latency)
				overall.Observe(out.Latency)

				switch {
				case out.Err != nil:
					sa.errs.Add(1)
					if errString(out.Err) == "deadline" {
						deadline.Add(1)
					} else {
						transport.Add(1)
					}
				case out.Status == 200:
					sa.ok.Add(1)
					okCount.Add(1)
					if out.CacheHit {
						cacheHits.Add(1)
						ka.hits.Add(1)
					}
				case out.Status == 429:
					sa.errs.Add(1)
					status429.Add(1)
				case out.Status == 503:
					sa.errs.Add(1)
					status503.Add(1)
				case out.Status == 504:
					sa.errs.Add(1)
					status504.Add(1)
				default:
					sa.errs.Add(1)
					badStatus.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	return buildReport(cfg, seed, arr, slots, kinds, reportTotals{
		overall: &overall, sent: sent.Load(), ok: okCount.Load(),
		cacheHits: cacheHits.Load(), s429: status429.Load(),
		s503: status503.Load(), s504: status504.Load(),
		badStatus: badStatus.Load(), transport: transport.Load(),
		deadline: deadline.Load(), latenessNs: lateness.Load(),
		wallDur: time.Since(wallStart),
	}), nil
}
