package load

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"time"
)

// Report is the JSON document baload emits (and BENCH_serve.json embeds).
// All latency fields are integer nanoseconds; all rates are computed from
// integer counters, so a virtual-mode report is bit-reproducible.
type Report struct {
	Mode     string   `json:"mode"` // "real" or "virtual"
	Seed     int64    `json:"seed"`
	Schedule Schedule `json:"schedule"`
	Workers  int      `json:"workers"`
	Corpus   int      `json:"corpus_entries"`

	Requests  uint64 `json:"requests"`
	OK        uint64 `json:"ok"`
	CacheHits uint64 `json:"cache_hits"`

	// Errors splits non-200 outcomes into expected backpressure statuses
	// and genuinely unexpected failures.
	Errors ErrorBreakdown `json:"errors"`
	// UnexpectedErrors is the gate baload -max-unexpected checks: everything
	// that is not 200 and not expected backpressure (429/503/504).
	UnexpectedErrors uint64 `json:"unexpected_errors"`

	// AchievedRPS is requests / schedule duration (virtual: scheduled time;
	// real: wall time), the number the saturation sweep knees on.
	AchievedRPS float64 `json:"achieved_rps"`
	// TargetRPS is the schedule's request count over its nominal duration.
	TargetRPS float64 `json:"target_rps"`
	// LatenessNs is total time requests were issued after their scheduled
	// arrival — the closed-loop congestion signal.
	LatenessNs uint64 `json:"lateness_ns"`

	Latency LatencySummary         `json:"latency"`
	Kinds   map[string]*KindReport `json:"kinds"`
	Slots   []SlotReport           `json:"slots"`

	// WallDurNs and Host are real-mode only (omitted in virtual mode so the
	// report is machine- and run-independent).
	WallDurNs int64 `json:"wall_dur_ns,omitempty"`
	Host      *Host `json:"host,omitempty"`
}

// ErrorBreakdown buckets failures by cause.
type ErrorBreakdown struct {
	Status429 uint64 `json:"status_429"`
	Status503 uint64 `json:"status_503"`
	Status504 uint64 `json:"status_504"`
	BadStatus uint64 `json:"bad_status"`
	Transport uint64 `json:"transport"`
	Deadline  uint64 `json:"deadline"`
}

// KindReport is one request kind's slice of the run.
type KindReport struct {
	Requests  uint64         `json:"requests"`
	CacheHits uint64         `json:"cache_hits"`
	Latency   LatencySummary `json:"latency"`
}

// SlotReport is one schedule slot's achieved-vs-target view.
type SlotReport struct {
	TargetRPS   float64 `json:"target_rps"`
	Requests    uint64  `json:"requests"`
	OK          uint64  `json:"ok"`
	Errors      uint64  `json:"errors"`
	AchievedRPS float64 `json:"achieved_rps"`
	MeanLatNs   int64   `json:"mean_lat_ns"`
}

// Host describes the machine a real-mode run executed on.
type Host struct {
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	CPUs     int    `json:"cpus"`
	GoVer    string `json:"go"`
	Hostname string `json:"hostname,omitempty"`
}

// reportTotals carries the runner's overall counters into buildReport.
type reportTotals struct {
	overall    *Hist
	sent, ok   uint64
	cacheHits  uint64
	s429, s503 uint64
	s504       uint64
	badStatus  uint64
	transport  uint64
	deadline   uint64
	latenessNs uint64
	wallDur    time.Duration
}

func buildReport(cfg RunConfig, seed int64, arr []arrival, slots []slotAgg, kinds map[string]*kindAgg, t reportTotals) *Report {
	r := &Report{
		Mode:      "real",
		Seed:      seed,
		Schedule:  cfg.Schedule,
		Workers:   cfg.Workers,
		Corpus:    len(cfg.Corpus.Entries),
		Requests:  t.sent,
		OK:        t.ok,
		CacheHits: t.cacheHits,
		Errors: ErrorBreakdown{
			Status429: t.s429, Status503: t.s503, Status504: t.s504,
			BadStatus: t.badStatus, Transport: t.transport, Deadline: t.deadline,
		},
		UnexpectedErrors: t.badStatus + t.transport + t.deadline,
		LatenessNs:       t.latenessNs,
		Latency:          t.overall.Summary(),
		Kinds:            map[string]*KindReport{},
	}
	nominal := cfg.Schedule.Duration()
	if nominal > 0 {
		r.TargetRPS = round2(float64(len(arr)) / nominal.Seconds())
	}
	// Achieved rate: wall time for a real run; nominal schedule time for a
	// virtual one (virtual runs finish "instantly" in wall terms).
	denom := t.wallDur
	if cfg.Virtual {
		r.Mode = "virtual"
		denom = nominal
	}
	if denom > 0 {
		r.AchievedRPS = round2(float64(t.sent) / denom.Seconds())
	}
	if !cfg.Virtual {
		r.WallDurNs = int64(t.wallDur)
		host := &Host{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(), GoVer: runtime.Version()}
		if hn, err := os.Hostname(); err == nil {
			host.Hostname = hn
		}
		r.Host = host
	}

	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		ka := kinds[k]
		if ka.sent.Load() == 0 {
			continue
		}
		r.Kinds[k] = &KindReport{
			Requests:  ka.sent.Load(),
			CacheHits: ka.hits.Load(),
			Latency:   ka.hist.Summary(),
		}
	}

	r.Slots = make([]SlotReport, len(slots))
	var slotStartNs int64
	for i := range slots {
		sa := &slots[i]
		sr := SlotReport{
			TargetRPS: round2(cfg.Schedule.Slots[i].RPS),
			Requests:  sa.sent.Load(),
			OK:        sa.ok.Load(),
			Errors:    sa.errs.Load(),
		}
		// Achieved rate is completion-based: requests divided by the time
		// from the slot's nominal start to its last completion. Below
		// saturation that elapsed time is the slot duration and achieved
		// tracks target; past saturation the closed loop falls behind, the
		// last completion lands after the slot boundary, and achieved drops
		// below target — dividing by the nominal duration instead would
		// report achieved == target for any run that eventually finishes.
		if d := cfg.Schedule.Slots[i].Dur; d > 0 {
			elapsed := d
			if end := int64(sa.lastEnd.Load()); end > slotStartNs+int64(d) {
				elapsed = time.Duration(end - slotStartNs)
			}
			sr.AchievedRPS = round2(float64(sr.Requests) / elapsed.Seconds())
			slotStartNs += int64(d)
		}
		if sr.Requests > 0 {
			sr.MeanLatNs = int64(sa.totalLat.Load() / sr.Requests)
		}
		r.Slots[i] = sr
	}
	return r
}

// round2 keeps rates to two decimals so report bytes don't wobble on float
// formatting of long fractions.
func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

// JSON renders the report with stable formatting (two-space indent,
// trailing newline) — the bytes the determinism oracle compares.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
