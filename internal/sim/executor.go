package sim

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"balign/internal/ir"
	"balign/internal/kernel"
	"balign/internal/obs"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/trace"
)

// KernelMode selects how a grid cell's simulation executes.
type KernelMode string

const (
	// KernelFlat runs the compiled flattened kernel (internal/kernel): the
	// default fast path.
	KernelFlat KernelMode = "flat"
	// KernelRef runs the interface-dispatched reference simulators in
	// internal/predict: the slow oracle path the kernel is differentially
	// tested against.
	KernelRef KernelMode = "ref"
)

// ParseKernelMode parses a -kernel flag value; the empty string selects the
// flat default. The error enumerates KernelModes, so the message cannot
// drift from the accepted set.
func ParseKernelMode(s string) (KernelMode, error) {
	if s == "" {
		return KernelFlat, nil
	}
	for _, m := range KernelModes() {
		if s == string(m) {
			return m, nil
		}
	}
	return "", fmt.Errorf("sim: unknown kernel mode %q (known: %s)", s, modeList(KernelModes()))
}

// ExecStats splits an executor's work into its compile and run phases. The
// JSON form is the run report's "executor" section. Keeping the phases
// separate is what lets cache-hit replays be attributed correctly: a cell
// that replays an already-recorded trace still pays a per-cell compile
// (simulator construction or kernel compilation), and lumping that into run
// time would overstate simulation cost.
type ExecStats struct {
	// Mode is the executor's kernel mode (flat or ref).
	Mode string `json:"mode"`
	// Cells is the number of Simulate calls completed (recorded-replay
	// cells); StreamCells counts per-architecture consumers completed by
	// SimulateStream.
	Cells       uint64 `json:"cells"`
	StreamCells uint64 `json:"stream_cells"`
	// Events is the total number of break events simulated.
	Events uint64 `json:"events"`
	// CompileNs is the summed simulator-construction / kernel-compilation
	// time; RunNs the summed event-consumption time.
	CompileNs int64 `json:"compile_ns"`
	RunNs     int64 `json:"run_ns"`
	// Shards is the configured intra-variant shard count (1 = unsharded).
	// ForwardNs and ForwardEvents sum the shards' state-forwarding passes
	// over batches they do not own — the sharding overhead that buys the
	// parallel accumulation (see kernel.ForwardBatch).
	Shards        int    `json:"shards"`
	ForwardNs     int64  `json:"forward_ns"`
	ForwardEvents uint64 `json:"forward_events"`
}

// Executor runs one evaluation cell's simulation — one architecture over
// one recorded trace — in either kernel mode. It is safe for concurrent
// use; the engine's shards share one executor so the compile/run split
// aggregates across the grid.
type Executor struct {
	mode   KernelMode
	obs    *obs.Recorder
	shards int

	cells         atomic.Uint64
	streamCells   atomic.Uint64
	events        atomic.Uint64
	compileNs     atomic.Int64
	runNs         atomic.Int64
	forwardNs     atomic.Int64
	forwardEvents atomic.Uint64
}

// NewExecutor returns an executor in the given mode ("" = flat). rec
// receives the sim.exec.* phase counters and, in flat mode, the kernel.*
// compile/run counters; nil disables telemetry.
func NewExecutor(mode string, rec *obs.Recorder) (*Executor, error) {
	m, err := ParseKernelMode(mode)
	if err != nil {
		return nil, err
	}
	return &Executor{mode: m, obs: rec}, nil
}

// Mode returns the resolved kernel mode.
func (x *Executor) Mode() KernelMode { return x.mode }

// SetShards sets the intra-variant shard count SimulateStream uses in flat
// mode: each architecture gets n kernel consumers that split the stream's
// batches round-robin, every shard forwarding predictor state over batches
// it does not own and accumulating over batches it does, so the merged
// tallies are bit-identical to the unsharded run (see kernel.ForwardBatch
// and kernel.Merge). Values below 2 mean unsharded; the ref mode always
// runs unsharded. SetShards must be called before the executor is shared
// across goroutines — it is configuration, not a runtime control.
func (x *Executor) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	x.shards = n
}

// Shards returns the configured intra-variant shard count (minimum 1).
func (x *Executor) Shards() int {
	if x.shards < 1 {
		return 1
	}
	return x.shards
}

// Stats returns a snapshot of the executor's phase-split counters.
func (x *Executor) Stats() ExecStats {
	return ExecStats{
		Mode:          string(x.mode),
		Cells:         x.cells.Load(),
		StreamCells:   x.streamCells.Load(),
		Events:        x.events.Load(),
		CompileNs:     x.compileNs.Load(),
		RunNs:         x.runNs.Load(),
		Shards:        x.Shards(),
		ForwardNs:     x.forwardNs.Load(),
		ForwardEvents: x.forwardEvents.Load(),
	}
}

// Simulate runs arch over rec's events for the given program variant and
// returns the exact simulation tallies. Both modes produce identical
// results on every input — the differential oracles in internal/kernel and
// internal/experiments enforce this bit-for-bit.
func (x *Executor) Simulate(arch predict.ArchID, prog *ir.Program, prof *profile.Profile, rec *Recorded) (predict.Result, error) {
	cstart := time.Now()
	var res predict.Result
	switch x.mode {
	case KernelRef:
		s, err := predict.NewSimulator(arch, prog, prof)
		if err != nil {
			return predict.Result{}, err
		}
		x.noteCompile(cstart)
		rstart := time.Now()
		rec.Replay(s)
		x.noteRun(rstart, len(rec.Events))
		res = s.Result()
	default:
		k, err := kernel.Compile(prog, prof, arch, x.obs)
		if err != nil {
			return predict.Result{}, err
		}
		x.noteCompile(cstart)
		rstart := time.Now()
		if err := k.Run(rec.Events); err != nil {
			return predict.Result{}, err
		}
		x.noteRun(rstart, len(rec.Events))
		res = k.Result()
	}
	x.cells.Add(1)
	return res, nil
}

// SimulateStream runs every architecture over one streamed generation of a
// variant: src's batches are broadcast through str, each architecture
// consuming them incrementally against the shared per-program layout. The
// returned results are index-aligned with archs and identical to what
// Simulate would produce over the recorded stream — the streaming-vs-
// recorded oracles enforce this byte for byte.
//
// In flat mode with SetShards(S>1), each architecture fans out to S shard
// consumers on their own goroutines. Shard j owns the batches whose stream
// index is ≡ j (mod S): it accumulates tallies over those with RunBatch and
// replays only predictor state over the rest with ForwardBatch, so each
// owned batch executes from exactly the predictor state the unsharded run
// had there. The shards' accumulators are then folded with kernel.Merge —
// a plain field sum — which makes the sharded result bit-identical to the
// unsharded one for every shard count; the shard-merge property tests and
// the parallel-determinism oracle enforce this.
//
// SimulateStream owns src: it is closed before returning, so an aborted
// broadcast cannot leave a generator goroutine blocked.
//
// ctx bounds the broadcast: cancelling it (a request deadline, a failing
// sibling shard) aborts the stream promptly and SimulateStream returns the
// context's error with every ring buffer released. A nil ctx means
// context.Background().
func (x *Executor) SimulateStream(ctx context.Context, str *Streamer, lay *trace.Layout, src trace.Source,
	prog *ir.Program, prof *profile.Profile, archs []predict.ArchID) ([]predict.Result, error) {
	defer src.Close()
	n := len(archs)
	if n == 0 {
		return nil, nil
	}
	shards := x.Shards()
	if x.mode == KernelRef {
		// The reference simulators have no state-forwarding primitive;
		// they always consume whole streams.
		shards = 1
	}
	nc := n * shards
	consumers := make([]func(*trace.Batch) error, nc)
	finish := make([]func() (predict.Result, error), n)
	// Per-consumer accumulators, each written only by its own goroutine and
	// read after Broadcast returns (its WaitGroup orders the accesses).
	runNs := make([]int64, nc)
	events := make([]uint64, nc)
	forwardNs := make([]int64, nc)
	forwardEvents := make([]uint64, nc)

	cstart := time.Now()
	switch x.mode {
	case KernelRef:
		for i, arch := range archs {
			s, err := predict.NewSimulator(arch, prog, prof)
			if err != nil {
				return nil, err
			}
			consumers[i] = func(b *trace.Batch) error {
				start := time.Now()
				err := lay.Decode(b, func(e trace.Event) { s.Event(e) })
				runNs[i] += int64(time.Since(start))
				events[i] += uint64(b.Len())
				return err
			}
			finish[i] = func() (predict.Result, error) { return s.Result(), nil }
		}
	default:
		for i, arch := range archs {
			ks := make([]*kernel.Kernel, shards)
			for j := range ks {
				k, err := kernel.CompileArch(lay, prog, prof, arch, x.obs)
				if err != nil {
					return nil, err
				}
				ks[j] = k
				c := i*shards + j
				// Each consumer sees every batch in stream order, so a
				// local index decides ownership: batch b belongs to shard
				// b mod shards.
				var batchIdx int
				consumers[c] = func(b *trace.Batch) error {
					own := shards == 1 || batchIdx%shards == j
					batchIdx++
					start := time.Now()
					if !own {
						err := k.ForwardBatch(b)
						forwardNs[c] += int64(time.Since(start))
						forwardEvents[c] += uint64(b.Len())
						return err
					}
					err := k.RunBatch(b)
					runNs[c] += int64(time.Since(start))
					events[c] += uint64(b.Len())
					return err
				}
			}
			finish[i] = func() (predict.Result, error) {
				for j := 1; j < len(ks); j++ {
					if err := ks[0].Merge(ks[j]); err != nil {
						return predict.Result{}, err
					}
				}
				return ks[0].Result(), nil
			}
		}
	}
	x.noteCompile(cstart)

	if err := str.Broadcast(ctx, src, consumers); err != nil {
		return nil, err
	}
	results := make([]predict.Result, n)
	for i := range finish {
		r, err := finish[i]()
		if err != nil {
			return nil, err
		}
		results[i] = r
	}
	var totalNs, totalFwdNs int64
	var totalEvents, totalFwdEvents uint64
	for i := range runNs {
		totalNs += runNs[i]
		totalEvents += events[i]
		totalFwdNs += forwardNs[i]
		totalFwdEvents += forwardEvents[i]
	}
	x.runNs.Add(totalNs)
	x.events.Add(totalEvents)
	x.forwardNs.Add(totalFwdNs)
	x.forwardEvents.Add(totalFwdEvents)
	x.obs.Add("sim.exec.run_ns", totalNs)
	x.obs.Add("sim.exec.events", int64(totalEvents))
	x.obs.Add("sim.exec.forward_ns", totalFwdNs)
	x.obs.Add("sim.exec.forward_events", int64(totalFwdEvents))
	x.streamCells.Add(uint64(nc))
	x.obs.Add("sim.exec.stream_cells", int64(nc))
	return results, nil
}

func (x *Executor) noteCompile(start time.Time) {
	d := int64(time.Since(start))
	x.compileNs.Add(d)
	x.obs.Add("sim.exec.compile_ns", d)
}

func (x *Executor) noteRun(start time.Time, events int) {
	d := int64(time.Since(start))
	x.runNs.Add(d)
	x.events.Add(uint64(events))
	x.obs.Add("sim.exec.run_ns", d)
	x.obs.Add("sim.exec.events", int64(events))
}
