package sim

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"balign/internal/obs"
	"balign/internal/trace"
)

// StreamMode selects how a variant's event stream reaches its simulators.
type StreamMode string

const (
	// StreamOn generates each variant's stream once and broadcasts its
	// batches to every architecture kernel concurrently, never holding more
	// than the buffer ring in memory: the default.
	StreamOn StreamMode = "on"
	// StreamOff records each variant's whole trace into the refcounted
	// TraceCache and replays it once per architecture: the pre-streaming
	// escape hatch and differential oracle.
	StreamOff StreamMode = "off"
)

// StreamModes lists the valid stream modes in preference order.
func StreamModes() []StreamMode { return []StreamMode{StreamOn, StreamOff} }

// KernelModes lists the valid kernel modes in preference order.
func KernelModes() []KernelMode { return []KernelMode{KernelFlat, KernelRef} }

// modeList renders a mode list for error messages, so the message can never
// drift from the actual set of accepted values.
func modeList[T ~string](modes []T) string {
	names := make([]string, len(modes))
	for i, m := range modes {
		names[i] = string(m)
	}
	return strings.Join(names, ", ")
}

// ParseStreamMode parses a -stream flag value; the empty string selects the
// streaming default.
func ParseStreamMode(s string) (StreamMode, error) {
	if s == "" {
		return StreamOn, nil
	}
	for _, m := range StreamModes() {
		if s == string(m) {
			return m, nil
		}
	}
	return "", fmt.Errorf("sim: unknown stream mode %q (known: %s)", s, modeList(StreamModes()))
}

// DefaultStreamBuffers is the default broadcast ring size. Four in-flight
// batches keep the producer ahead of the slowest consumer without letting
// the ring's footprint grow past a fraction of a megabyte per variant.
const DefaultStreamBuffers = 4

// StreamStats counts broadcast traffic and buffer-ring occupancy. The JSON
// form is the run report's "stream" section.
type StreamStats struct {
	// Broadcasts is the number of variant streams fanned out.
	Broadcasts uint64 `json:"broadcasts"`
	// Batches and Events count what the producers generated (each batch is
	// delivered to every consumer but counted once here).
	Batches uint64 `json:"batches"`
	Events  uint64 `json:"events"`
	// StallsNs is the time producers spent blocked waiting for a free
	// buffer — the backpressure signal: consumers were the bottleneck.
	StallsNs int64 `json:"stalls_ns"`
	// GenNs is the time producers spent inside Source.Fill — the
	// generation half of the pipeline, measured at the same boundary the
	// consumer half reports as sim.exec.run_ns, so overlap is visible as
	// gen_ns + run_ns exceeding wall time.
	GenNs int64 `json:"gen_ns"`
	// LiveBuffers and LiveBytes gauge the ring buffers currently pinned
	// across in-flight broadcasts; PeakLiveBytes is the high-water mark —
	// the streaming replacement for the trace cache's live-bytes gauge.
	LiveBuffers   int64  `json:"live_buffers"`
	LiveBytes     uint64 `json:"live_bytes"`
	PeakLiveBytes uint64 `json:"peak_live_bytes"`
	// ArenaReuses counts ring buffers served from the streamer's arena
	// instead of freshly allocated: broadcasts after the first reuse the
	// previous variants' buffers, so steady-state streaming allocates no
	// batch memory at all.
	ArenaReuses uint64 `json:"arena_reuses"`
}

// Streamer is the broadcast stage of the streaming pipeline: it pulls
// batches from one trace.Source at a time per Broadcast call and fans each
// batch out to all consumers over a bounded ring of reusable buffers, so a
// variant is simulated by N architectures in one generation pass with peak
// memory bounded by the ring, not the trace.
//
// One Streamer is shared across an experiment grid (Broadcast is safe for
// concurrent use); its counters aggregate every broadcast and surface as
// the sim.stream.* telemetry and the report's "stream" section.
type Streamer struct {
	obs      *obs.Recorder
	buffers  int
	batchCap int

	broadcasts    atomic.Uint64
	batches       atomic.Uint64
	events        atomic.Uint64
	stallsNs      atomic.Int64
	genNs         atomic.Int64
	liveBuffers   atomic.Int64
	liveBytes     atomic.Int64
	peakLiveBytes atomic.Int64
	arenaReuses   atomic.Uint64

	// arena holds idle ring buffers between broadcasts so successive
	// variants reuse one another's batch memory. Idle buffers are not
	// accounted in the live gauges — those gauge what in-flight broadcasts
	// have pinned, and must drain to zero when no broadcast is running.
	mu    sync.Mutex
	arena []*sharedBatch
}

// NewStreamer returns a streamer with the given ring size and per-batch
// event capacity (0 selects DefaultStreamBuffers / trace.DefaultBatchCap).
// rec receives the sim.stream.* counters and gauges; nil disables telemetry.
func NewStreamer(buffers, batchCap int, rec *obs.Recorder) *Streamer {
	if buffers <= 0 {
		buffers = DefaultStreamBuffers
	}
	if batchCap <= 0 {
		batchCap = trace.DefaultBatchCap
	}
	return &Streamer{obs: rec, buffers: buffers, batchCap: batchCap}
}

// BatchCap returns the per-batch event capacity sources should be built
// with.
func (s *Streamer) BatchCap() int { return s.batchCap }

// sharedBatch is one ring buffer: a batch plus the fan-out refcount and its
// last-accounted footprint.
type sharedBatch struct {
	b    trace.Batch
	refs atomic.Int32
	size uint64
}

// takeBuffer hands out a ring buffer — from the arena when one is idle,
// freshly allocated otherwise — and accounts it into the live gauges.
func (s *Streamer) takeBuffer() *sharedBatch {
	s.mu.Lock()
	var sb *sharedBatch
	if n := len(s.arena); n > 0 {
		sb = s.arena[n-1]
		s.arena[n-1] = nil
		s.arena = s.arena[:n-1]
	}
	s.mu.Unlock()
	if sb == nil {
		sb = &sharedBatch{}
		sb.b.Ops = make([]int32, 0, s.batchCap)
		sb.size = sb.b.SizeBytes()
	} else {
		s.arenaReuses.Add(1)
		s.obs.Add("sim.stream.arena_reuses", 1)
	}
	s.accountBytes(int64(sb.size))
	s.accountBuffers(1)
	return sb
}

// returnBuffer drains a ring buffer out of the live gauges and parks it in
// the arena for the next broadcast. The batch's backing arrays are kept at
// their grown capacity — that is the reuse.
func (s *Streamer) returnBuffer(sb *sharedBatch) {
	s.accountBytes(-int64(sb.size))
	s.accountBuffers(-1)
	s.mu.Lock()
	s.arena = append(s.arena, sb)
	s.mu.Unlock()
}

// Broadcast pulls src dry and delivers every batch to all consumers, in
// order, each batch shared read-only. A consumer returning an error stops
// receiving work (its remaining deliveries are drained and released) and
// aborts the producer at the next batch boundary. The first failure — the
// context's, else the source's, else the lowest-indexed consumer's — is
// returned.
//
// Cancelling ctx aborts the broadcast promptly: the producer observes the
// cancellation both between batches and while blocked on the buffer ring,
// and consumers stop doing work at their next batch boundary (batches are
// bounded by the batch capacity, so no consumer runs unbounded after the
// cancel). Either way every ring buffer is drained and released before
// Broadcast returns, so the live-bytes and live-buffer gauges return to
// their pre-call values. A nil ctx means context.Background().
//
// The caller keeps ownership of src (including Close); Broadcast never
// returns while any consumer is still running.
func (s *Streamer) Broadcast(ctx context.Context, src trace.Source, consumers []func(*trace.Batch) error) error {
	if len(consumers) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(consumers)
	free := make(chan *sharedBatch, s.buffers)
	for i := 0; i < s.buffers; i++ {
		free <- s.takeBuffer()
	}
	// Per-consumer queues sized to the ring: with only s.buffers buffers in
	// existence a queue can never fill, so the producer blocks only on the
	// free ring — that wait is the backpressure (stall) measurement.
	chans := make([]chan *sharedBatch, n)
	for i := range chans {
		chans[i] = make(chan *sharedBatch, s.buffers)
	}

	var failed atomic.Bool
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range consumers {
		i, consume := i, consumers[i]
		go func() {
			defer wg.Done()
			for sb := range chans[i] {
				// A cancelled context stops this consumer's work at the
				// batch boundary; already-queued batches are still drained
				// and released below so the ring empties out.
				if errs[i] == nil && ctx.Err() == nil {
					if err := consume(&sb.b); err != nil {
						errs[i] = err
						failed.Store(true)
					}
				}
				if sb.refs.Add(-1) == 0 {
					free <- sb
				}
			}
		}()
	}

	var (
		prodErr  error
		batches  uint64
		events   uint64
		stallsNs int64
		genNs    int64
	)
	for !failed.Load() {
		if err := ctx.Err(); err != nil {
			prodErr = err
			break
		}
		var sb *sharedBatch
		select {
		case sb = <-free:
		default:
			// Blocked on the ring: this wait is the backpressure (stall)
			// measurement, and also where a cancelled request must not hang
			// behind a slow consumer — hence the ctx arm.
			start := time.Now()
			select {
			case sb = <-free:
				stallsNs += int64(time.Since(start))
			case <-ctx.Done():
				stallsNs += int64(time.Since(start))
				prodErr = ctx.Err()
			}
		}
		if prodErr != nil {
			// Cancelled while waiting for a buffer; none was taken, so
			// nothing needs returning to the ring.
			break
		}
		gstart := time.Now()
		ok, err := src.Fill(&sb.b)
		genNs += int64(time.Since(gstart))
		if size := sb.b.SizeBytes(); size != sb.size {
			s.accountBytes(int64(size) - int64(sb.size))
			sb.size = size
		}
		if err != nil {
			prodErr = err
		}
		if !ok || err != nil {
			free <- sb
			break
		}
		batches++
		events += uint64(sb.b.Len())
		sb.refs.Store(int32(n))
		for i := range chans {
			chans[i] <- sb
		}
	}
	for i := range chans {
		close(chans[i])
	}
	wg.Wait()
	for i := 0; i < s.buffers; i++ {
		s.returnBuffer(<-free)
	}

	s.broadcasts.Add(1)
	s.batches.Add(batches)
	s.events.Add(events)
	s.stallsNs.Add(stallsNs)
	s.genNs.Add(genNs)
	s.obs.Add("sim.stream.broadcasts", 1)
	s.obs.Add("sim.stream.batches", int64(batches))
	s.obs.Add("sim.stream.events", int64(events))
	s.obs.Add("sim.stream.stalls_ns", stallsNs)
	s.obs.Add("sim.stream.gen_ns", genNs)

	if prodErr != nil {
		return prodErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// accountBytes moves the pinned-bytes gauge and maintains its high-water
// mark.
func (s *Streamer) accountBytes(delta int64) {
	if delta == 0 {
		return
	}
	live := s.liveBytes.Add(delta)
	for {
		peak := s.peakLiveBytes.Load()
		if live <= peak || s.peakLiveBytes.CompareAndSwap(peak, live) {
			break
		}
	}
	s.obs.Set("sim.stream.live_bytes", live)
	s.obs.Set("sim.stream.peak_live_bytes", s.peakLiveBytes.Load())
}

// accountBuffers moves the live-buffer gauge.
func (s *Streamer) accountBuffers(delta int64) {
	s.obs.Set("sim.stream.live_buffers", s.liveBuffers.Add(delta))
}

// Stats returns a snapshot of the streamer's counters.
func (s *Streamer) Stats() StreamStats {
	live := s.liveBytes.Load()
	peak := s.peakLiveBytes.Load()
	if live < 0 {
		live = 0
	}
	if peak < 0 {
		peak = 0
	}
	return StreamStats{
		Broadcasts:    s.broadcasts.Load(),
		Batches:       s.batches.Load(),
		Events:        s.events.Load(),
		StallsNs:      s.stallsNs.Load(),
		GenNs:         s.genNs.Load(),
		LiveBuffers:   s.liveBuffers.Load(),
		LiveBytes:     uint64(live),
		PeakLiveBytes: uint64(peak),
		ArenaReuses:   s.arenaReuses.Load(),
	}
}
