package sim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"balign/internal/obs"
	"balign/internal/predict"
	"balign/internal/trace"
)

// TestSimulateStreamShardedMatchesUnsharded: the executor's intra-variant
// sharding must be invisible in the results — for every shard count the
// streamed results equal the unsharded run's, while the executor's stats
// prove sharding actually happened (forwarded batches, n*S stream cells).
func TestSimulateStreamShardedMatchesUnsharded(t *testing.T) {
	f := newStreamFixture(t)
	archs := predict.AllArchs()

	base, err := NewExecutor("", nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.SimulateStream(nil, NewStreamer(0, 256, nil), f.lay, f.source(256), f.w.Prog, f.prof, archs)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 3, 5} {
		x, err := NewExecutor("", nil)
		if err != nil {
			t.Fatal(err)
		}
		x.SetShards(shards)
		got, err := x.SimulateStream(nil, NewStreamer(0, 256, nil), f.lay, f.source(256), f.w.Prog, f.prof, archs)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i, arch := range archs {
			if got[i] != want[i] {
				t.Errorf("shards=%d %s: sharded and unsharded results differ:\n sharded   %+v\n unsharded %+v",
					shards, arch, got[i], want[i])
			}
		}
		xs := x.Stats()
		if xs.Shards != shards {
			t.Errorf("Stats().Shards = %d, want %d", xs.Shards, shards)
		}
		if want := uint64(len(archs) * shards); xs.StreamCells != want {
			t.Errorf("shards=%d: StreamCells = %d, want %d", shards, xs.StreamCells, want)
		}
		if xs.ForwardEvents == 0 {
			t.Errorf("shards=%d: no events forwarded — sharding silently disabled", shards)
		}
		// Every shard runs its owned batches and forwards the rest, so per
		// consumer run+forward events equals the stream, and across shards
		// the run events equal the stream exactly once per architecture.
		if base.Stats().Events != xs.Events {
			t.Errorf("shards=%d: run events %d differ from unsharded %d", shards, xs.Events, base.Stats().Events)
		}
	}

	// Ref mode has no forwarding primitive: SetShards must be a no-op there.
	r, err := NewExecutor("ref", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.SetShards(4)
	got, err := r.SimulateStream(nil, NewStreamer(0, 256, nil), f.lay, f.source(256), f.w.Prog, f.prof, archs)
	if err != nil {
		t.Fatal(err)
	}
	for i, arch := range archs {
		if got[i] != want[i] {
			t.Errorf("ref sharded %s: results differ", arch)
		}
	}
	if xs := r.Stats(); xs.StreamCells != uint64(len(archs)) {
		t.Errorf("ref mode fanned out to %d stream cells, want %d (unsharded)", xs.StreamCells, len(archs))
	}
}

// TestShardSlowConsumerStallIsolation: a slow consumer must not run the
// other consumers in lockstep — each drains its own queue independently, so
// the fast consumer gets ahead by up to the ring depth while the producer's
// stall (the backpressure telemetry) charges the slow one.
func TestShardSlowConsumerStallIsolation(t *testing.T) {
	f := newStreamFixture(t)
	rec := obs.New("test")
	str := NewStreamer(4, 4096, rec)
	var fast, slow atomic.Int64
	var maxLead atomic.Int64
	err := str.Broadcast(nil, f.source(4096), []func(*trace.Batch) error{
		func(*trace.Batch) error {
			lead := fast.Add(1) - slow.Load()
			for {
				m := maxLead.Load()
				if lead <= m || maxLead.CompareAndSwap(m, lead) {
					break
				}
			}
			return nil
		},
		func(*trace.Batch) error {
			time.Sleep(100 * time.Microsecond)
			slow.Add(1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Load() == 0 || slow.Load() != fast.Load() {
		t.Fatalf("consumers saw %d/%d batches", fast.Load(), slow.Load())
	}
	if maxLead.Load() < 2 {
		t.Errorf("fast consumer's max lead over the slow one = %d batches; want >= 2 (independent progress up to the ring)",
			maxLead.Load())
	}
	if str.Stats().StallsNs == 0 {
		t.Error("producer never stalled against the slow consumer")
	}
	if rec.Report().Counters["sim.stream.stalls_ns"] == 0 {
		t.Error("sim.stream.stalls_ns counter did not increment")
	}
}

// TestStreamGaugesDrainOnError: a consumer failure mid-broadcast must still
// return every ring buffer — live buffer/byte gauges (and their obs
// mirrors) read zero afterwards, while the peak stays as the high-water
// record.
func TestStreamGaugesDrainOnError(t *testing.T) {
	f := newStreamFixture(t)
	rec := obs.New("test")
	str := NewStreamer(2, 64, rec)
	var n atomic.Int64
	err := str.Broadcast(nil, f.source(64), []func(*trace.Batch) error{
		func(*trace.Batch) error {
			if n.Add(1) == 3 {
				return errors.New("shard died")
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("Broadcast with failing consumer succeeded")
	}
	st := str.Stats()
	if st.LiveBuffers != 0 || st.LiveBytes != 0 {
		t.Errorf("gauges not drained after error: %d buffers, %d bytes live", st.LiveBuffers, st.LiveBytes)
	}
	if st.PeakLiveBytes == 0 {
		t.Error("peak gauge lost after error")
	}
	g := rec.Report().Gauges
	if g["sim.stream.live_bytes"] != 0 || g["sim.stream.live_buffers"] != 0 {
		t.Errorf("obs gauges not drained: live_bytes=%d live_buffers=%d",
			g["sim.stream.live_bytes"], g["sim.stream.live_buffers"])
	}
}

// TestSimulateStreamShardedCancel: cancelling a sharded broadcast must
// abort promptly and drain the gauges to zero, exactly like the unsharded
// path.
func TestSimulateStreamShardedCancel(t *testing.T) {
	f := newStreamFixture(t)
	x, err := NewExecutor("", nil)
	if err != nil {
		t.Fatal(err)
	}
	x.SetShards(3)
	str := NewStreamer(2, 16, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err = x.SimulateStream(ctx, str, f.lay, f.source(16), f.w.Prog, f.prof, predict.AllArchs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateStream error = %v, want context.Canceled", err)
	}
	if st := str.Stats(); st.LiveBuffers != 0 || st.LiveBytes != 0 {
		t.Errorf("gauges not drained after cancel: %d buffers, %d bytes live", st.LiveBuffers, st.LiveBytes)
	}
}

// TestStreamArenaReuse: back-to-back broadcasts on one streamer must serve
// the second from the arena — no fresh ring allocation — with the gauges
// drained between and after.
func TestStreamArenaReuse(t *testing.T) {
	f := newStreamFixture(t)
	str := NewStreamer(3, 128, nil)
	consume := []func(*trace.Batch) error{func(*trace.Batch) error { return nil }}
	if err := str.Broadcast(nil, f.source(128), consume); err != nil {
		t.Fatal(err)
	}
	first := str.Stats()
	if first.ArenaReuses != 0 {
		t.Errorf("first broadcast reused %d buffers from an empty arena", first.ArenaReuses)
	}
	if first.LiveBuffers != 0 || first.LiveBytes != 0 {
		t.Errorf("gauges not drained between broadcasts: %+v", first)
	}
	if err := str.Broadcast(nil, f.source(128), consume); err != nil {
		t.Fatal(err)
	}
	second := str.Stats()
	if second.ArenaReuses != 3 {
		t.Errorf("second broadcast reused %d ring buffers, want all 3", second.ArenaReuses)
	}
	if second.LiveBuffers != 0 || second.LiveBytes != 0 {
		t.Errorf("gauges not drained after reuse: %+v", second)
	}
}
