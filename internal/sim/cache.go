package sim

import (
	"sync"
	"sync/atomic"

	"balign/internal/trace"
)

// Recorded is one variant's complete control-transfer trace, generated once
// and replayed read-only by every simulator that needs it. Replaying a
// recorded trace is much cheaper than regenerating it (no RNG, no CFG
// traversal), which is what lets the engine shard the architecture axis of
// the evaluation grid.
type Recorded struct {
	// Events is the break-event stream in program order.
	Events []trace.Event
	// Instrs is the number of instructions the traced execution retired.
	Instrs uint64
}

// Replay feeds the recorded events to sink in their original order.
func (r *Recorded) Replay(sink trace.Sink) {
	for i := range r.Events {
		sink.Event(r.Events[i])
	}
}

// Record runs gen with a recording sink and captures its event stream; gen
// returns the instruction count of the traced execution.
func Record(gen func(sink trace.Sink) (uint64, error)) (*Recorded, error) {
	var rec trace.Recorder
	instrs, err := gen(&rec)
	if err != nil {
		return nil, err
	}
	return &Recorded{Events: rec.Events, Instrs: instrs}, nil
}

// CacheStats counts trace cache traffic.
type CacheStats struct {
	// Hits is the number of Acquire calls served from an already (or
	// concurrently) generated trace.
	Hits uint64
	// Misses is the number of Acquire calls that had to generate.
	Misses uint64
	// Freed is the number of traces dropped after their last Release.
	Freed uint64
	// Live is the number of traces currently held.
	Live int
}

// TraceCache shares recorded traces between the simulators of one
// experiment grid. Entries are reference-counted so memory stays bounded by
// the number of variants in flight rather than the whole grid:
//
//  1. the grid builder calls AddRefs(key, n) with the number of cells that
//     will replay the variant;
//  2. each cell calls Acquire (the first caller generates, concurrent
//     callers block until generation finishes, later callers hit) and
//     Release when done;
//  3. after the final Release the events are dropped.
//
// A TraceCache is safe for concurrent use. The zero value is not usable;
// call NewTraceCache.
type TraceCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
	freed   atomic.Uint64
}

type cacheEntry struct {
	refs    int
	started bool
	done    chan struct{}
	rec     *Recorded
	err     error
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: make(map[string]*cacheEntry)}
}

func (c *TraceCache) ensure(key string) *cacheEntry {
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{done: make(chan struct{})}
		c.entries[key] = e
	}
	return e
}

// AddRefs pre-registers n future Acquire/Release pairs for key. Without a
// preceding AddRefs, the entry is dropped at its first Release.
func (c *TraceCache) AddRefs(key string, n int) {
	c.mu.Lock()
	c.ensure(key).refs += n
	c.mu.Unlock()
}

// Acquire returns the recorded trace for key, generating it with gen if
// this is the first request. Concurrent acquirers of the same key block
// until the single generation finishes and share its result (or error).
func (c *TraceCache) Acquire(key string, gen func() (*Recorded, error)) (*Recorded, error) {
	c.mu.Lock()
	e := c.ensure(key)
	first := !e.started
	e.started = true
	c.mu.Unlock()

	if first {
		c.misses.Add(1)
		e.rec, e.err = gen()
		close(e.done)
	} else {
		c.hits.Add(1)
		<-e.done
	}
	return e.rec, e.err
}

// Release drops one reference to key; after the last reference the trace is
// removed from the cache (replayers holding the *Recorded keep it alive
// until they finish).
func (c *TraceCache) Release(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	e.refs--
	if e.refs <= 0 {
		delete(c.entries, key)
		c.freed.Add(1)
	}
}

// Stats returns a snapshot of the cache counters.
func (c *TraceCache) Stats() CacheStats {
	c.mu.Lock()
	live := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Freed:  c.freed.Load(),
		Live:   live,
	}
}
