package sim

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"balign/internal/obs"
	"balign/internal/trace"
)

// Recorded is one variant's complete control-transfer trace, generated once
// and replayed read-only by every simulator that needs it. Replaying a
// recorded trace is much cheaper than regenerating it (no RNG, no CFG
// traversal), which is what lets the engine shard the architecture axis of
// the evaluation grid.
type Recorded struct {
	// Events is the break-event stream in program order.
	Events []trace.Event
	// Instrs is the number of instructions the traced execution retired.
	Instrs uint64
}

// SizeBytes estimates the trace's memory footprint (the event backing
// array plus the header), which is what the cache's LiveBytes gauge sums.
func (r *Recorded) SizeBytes() uint64 {
	return uint64(len(r.Events))*uint64(unsafe.Sizeof(trace.Event{})) +
		uint64(unsafe.Sizeof(Recorded{}))
}

// Replay feeds the recorded events to sink in their original order.
func (r *Recorded) Replay(sink trace.Sink) {
	for i := range r.Events {
		sink.Event(r.Events[i])
	}
}

// Record runs gen with a recording sink and captures its event stream; gen
// returns the instruction count of the traced execution.
func Record(gen func(sink trace.Sink) (uint64, error)) (*Recorded, error) {
	var rec trace.Recorder
	instrs, err := gen(&rec)
	if err != nil {
		return nil, err
	}
	return &Recorded{Events: rec.Events, Instrs: instrs}, nil
}

// CacheStats counts trace cache traffic and current occupancy. The JSON
// form is part of the run-report schema (the report's "trace_cache"
// section).
type CacheStats struct {
	// Hits is the number of Acquire calls served from an already (or
	// concurrently) generated trace.
	Hits uint64 `json:"hits"`
	// Misses is the number of Acquire calls that had to generate.
	Misses uint64 `json:"misses"`
	// Errors is the number of generations that failed. A failed
	// generation does not poison its key: the next Acquire retries.
	Errors uint64 `json:"errors"`
	// Freed is the number of traces dropped after their last Release.
	Freed uint64 `json:"freed"`
	// Live is the number of traces currently held.
	Live int `json:"live"`
	// LiveEvents and LiveBytes are the break events and estimated bytes
	// currently held by live traces; PeakLiveEvents and PeakLiveBytes are
	// their high-water marks over the run — the number the streaming
	// pipeline's bounded buffer ring is measured against.
	LiveEvents     uint64 `json:"live_events"`
	LiveBytes      uint64 `json:"live_bytes"`
	PeakLiveEvents uint64 `json:"peak_live_events"`
	PeakLiveBytes  uint64 `json:"peak_live_bytes"`
}

// TraceCache shares recorded traces between the simulators of one
// experiment grid. It is the recorded-mode (StreamOff) half of the trace
// lifecycle: the streaming pipeline's Streamer replaces it as the default
// — same generate-once-per-variant contract, but holding a bounded buffer
// ring instead of whole traces — and this cache remains as the escape
// hatch and differential oracle. Entries are reference-counted so memory
// stays bounded by the number of variants in flight rather than the whole
// grid:
//
//  1. the grid builder calls AddRefs(key, n) with the number of cells that
//     will replay the variant;
//  2. each cell calls Acquire (the first caller generates, concurrent
//     callers block until generation finishes, later callers hit) and
//     Release when done;
//  3. after the final Release the events are dropped.
//
// A TraceCache is safe for concurrent use. The zero value is not usable;
// call NewTraceCache.
type TraceCache struct {
	obs            *obs.Recorder
	mu             sync.Mutex
	entries        map[string]*cacheEntry
	liveEvents     uint64
	liveBytes      uint64
	peakLiveEvents uint64
	peakLiveBytes  uint64
	hits           atomic.Uint64
	misses         atomic.Uint64
	errors         atomic.Uint64
	freed          atomic.Uint64
}

type cacheEntry struct {
	refs    int
	started bool
	done    chan struct{}
	rec     *Recorded
	err     error
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: make(map[string]*cacheEntry)}
}

// Observe attaches a telemetry recorder: the cache then maintains the
// sim.cache.* counters and occupancy gauges. A nil recorder (the default)
// disables telemetry at zero cost.
func (c *TraceCache) Observe(r *obs.Recorder) { c.obs = r }

func (c *TraceCache) ensure(key string) *cacheEntry {
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{done: make(chan struct{})}
		c.entries[key] = e
	}
	return e
}

// AddRefs pre-registers n future Acquire/Release pairs for key. Without a
// preceding AddRefs, the entry is dropped at its first Release.
func (c *TraceCache) AddRefs(key string, n int) {
	c.mu.Lock()
	c.ensure(key).refs += n
	c.mu.Unlock()
}

// Acquire returns the recorded trace for key, generating it with gen if
// this is the first request. Concurrent acquirers of the same key block
// until the single generation finishes and share its result (or error).
//
// A generation error is returned to the first caller and to every
// acquirer already blocked on it, but it is not cached: the failed entry
// is reset (its refcount carries over), so a later Acquire retries the
// generation rather than failing forever on a transient error.
func (c *TraceCache) Acquire(key string, gen func() (*Recorded, error)) (*Recorded, error) {
	c.mu.Lock()
	e := c.ensure(key)
	if e.started {
		c.mu.Unlock()
		c.hits.Add(1)
		c.obs.Add("sim.cache.hits", 1)
		<-e.done
		return e.rec, e.err
	}
	e.started = true
	c.mu.Unlock()

	c.misses.Add(1)
	c.obs.Add("sim.cache.misses", 1)
	rec, err := gen()

	c.mu.Lock()
	e.rec, e.err = rec, err
	current := c.entries[key] == e
	if err != nil {
		c.errors.Add(1)
		c.obs.Add("sim.cache.errors", 1)
		if current {
			// Detach the failed entry so the next Acquire retries;
			// acquirers already blocked on e.done still see this error.
			c.entries[key] = &cacheEntry{refs: e.refs, done: make(chan struct{})}
		}
	} else if current && rec != nil {
		c.liveEvents += uint64(len(rec.Events))
		c.liveBytes += rec.SizeBytes()
		if c.liveEvents > c.peakLiveEvents {
			c.peakLiveEvents = c.liveEvents
		}
		if c.liveBytes > c.peakLiveBytes {
			c.peakLiveBytes = c.liveBytes
		}
	}
	c.setGaugesLocked()
	c.mu.Unlock()
	close(e.done)
	return rec, err
}

// Release drops one reference to key; after the last reference the trace is
// removed from the cache (replayers holding the *Recorded keep it alive
// until they finish).
func (c *TraceCache) Release(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	e.refs--
	if e.refs <= 0 {
		delete(c.entries, key)
		c.freed.Add(1)
		c.obs.Add("sim.cache.freed", 1)
		if e.rec != nil {
			c.liveEvents -= uint64(len(e.rec.Events))
			c.liveBytes -= e.rec.SizeBytes()
		}
		c.setGaugesLocked()
	}
}

// setGaugesLocked refreshes the occupancy gauges; the caller holds c.mu.
func (c *TraceCache) setGaugesLocked() {
	if c.obs == nil {
		return
	}
	c.obs.Set("sim.cache.live", int64(len(c.entries)))
	c.obs.Set("sim.cache.live_events", int64(c.liveEvents))
	c.obs.Set("sim.cache.live_bytes", int64(c.liveBytes))
	c.obs.Set("sim.cache.peak_live_events", int64(c.peakLiveEvents))
	c.obs.Set("sim.cache.peak_live_bytes", int64(c.peakLiveBytes))
}

// Stats returns a snapshot of the cache counters.
func (c *TraceCache) Stats() CacheStats {
	c.mu.Lock()
	live := len(c.entries)
	liveEvents, liveBytes := c.liveEvents, c.liveBytes
	peakEvents, peakBytes := c.peakLiveEvents, c.peakLiveBytes
	c.mu.Unlock()
	return CacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Errors:         c.errors.Load(),
		Freed:          c.freed.Load(),
		Live:           live,
		LiveEvents:     liveEvents,
		LiveBytes:      liveBytes,
		PeakLiveEvents: peakEvents,
		PeakLiveBytes:  peakBytes,
	}
}
