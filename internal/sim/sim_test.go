package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"balign/internal/ir"
	"balign/internal/obs"
	"balign/internal/trace"
)

func TestRunExecutesEveryTask(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		eng := New(Options{Parallelism: par})
		var ran [50]atomic.Int32
		tasks := make([]Task, len(ran))
		for i := range tasks {
			i := i
			tasks[i] = Task{Label: fmt.Sprintf("t%d", i), Run: func(context.Context) error {
				ran[i].Add(1)
				return nil
			}}
		}
		if err := eng.Run(context.Background(), tasks); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i := range ran {
			if n := ran[i].Load(); n != 1 {
				t.Errorf("par=%d: task %d ran %d times", par, i, n)
			}
		}
		if st := eng.Stats(); st.Tasks != uint64(len(tasks)) {
			t.Errorf("par=%d: stats report %d tasks, want %d", par, st.Tasks, len(tasks))
		}
	}
}

func TestRunBoundsParallelism(t *testing.T) {
	const par = 3
	eng := New(Options{Parallelism: par})
	var active, peak atomic.Int32
	var mu sync.Mutex
	tasks := make([]Task, 40)
	for i := range tasks {
		tasks[i] = Task{Label: "t", Run: func(context.Context) error {
			n := active.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			active.Add(-1)
			return nil
		}}
	}
	if err := eng.Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > par {
		t.Errorf("peak concurrency %d exceeds parallelism %d", p, par)
	}
}

func TestRunFirstErrorInTaskOrder(t *testing.T) {
	// Two failing tasks: the reported error must be the one a serial run
	// would hit first, regardless of parallel completion order.
	errA := errors.New("task 3 failed")
	errB := errors.New("task 7 failed")
	for _, par := range []int{1, 8} {
		eng := New(Options{Parallelism: par})
		tasks := make([]Task, 10)
		for i := range tasks {
			i := i
			tasks[i] = Task{Label: fmt.Sprintf("t%d", i), Run: func(context.Context) error {
				switch i {
				case 3:
					return errA
				case 7:
					return errB
				}
				return nil
			}}
		}
		err := eng.Run(context.Background(), tasks)
		if !errors.Is(err, errA) {
			t.Errorf("par=%d: got %v, want the task-order-first error %v", par, err, errA)
		}
	}
}

// TestRunReportsRootCauseNotCancellation is the regression test for the
// error-masking bug: when a later task fails and cancels the context, an
// earlier in-flight task that aborts with ctx.Err() used to land
// context.Canceled in a lower error slot, and Run reported that instead of
// the root cause. The serial oracle would have reported the real error.
func TestRunReportsRootCauseNotCancellation(t *testing.T) {
	boom := errors.New("root cause")
	for trial := 0; trial < 20; trial++ {
		eng := New(Options{Parallelism: 2})
		started := make(chan struct{})
		tasks := []Task{
			{Label: "victim", Run: func(ctx context.Context) error {
				close(started)
				// Aborts only because the culprit's failure cancelled the
				// run; its ctx.Err() must not mask the culprit's error.
				<-ctx.Done()
				return ctx.Err()
			}},
			{Label: "culprit", Run: func(ctx context.Context) error {
				<-started
				return boom
			}},
		}
		if err := eng.Run(context.Background(), tasks); !errors.Is(err, boom) {
			t.Fatalf("trial %d: Run = %v, want root cause %v", trial, err, boom)
		}
	}
}

// TestRunWrappedCancellationDoesNotMask covers the realistic shape of the
// bug: tasks wrap ctx.Err() with context (as runCell does with %w).
func TestRunWrappedCancellationDoesNotMask(t *testing.T) {
	boom := errors.New("root cause")
	eng := New(Options{Parallelism: 2})
	started := make(chan struct{})
	tasks := []Task{
		{Label: "victim", Run: func(ctx context.Context) error {
			close(started)
			<-ctx.Done()
			return fmt.Errorf("evaluating shard: %w", ctx.Err())
		}},
		{Label: "culprit", Run: func(ctx context.Context) error {
			<-started
			return boom
		}},
	}
	if err := eng.Run(context.Background(), tasks); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want root cause %v", err, boom)
	}
}

func TestRunCancellationStopsWork(t *testing.T) {
	eng := New(Options{Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	tasks := []Task{{Label: "t", Run: func(context.Context) error {
		ran.Add(1)
		return nil
	}}}
	if err := eng.Run(ctx, tasks); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("task ran despite pre-cancelled context")
	}
}

func TestRunErrorCancelsRemainingTasks(t *testing.T) {
	// Serial path: tasks after the failing one must not run.
	eng := New(Options{Parallelism: 1})
	var ran []int
	boom := errors.New("boom")
	tasks := make([]Task, 6)
	for i := range tasks {
		i := i
		tasks[i] = Task{Label: "t", Run: func(context.Context) error {
			ran = append(ran, i)
			if i == 2 {
				return boom
			}
			return nil
		}}
	}
	if err := eng.Run(context.Background(), tasks); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 3 {
		t.Errorf("serial run executed %v, want exactly tasks 0..2", ran)
	}
}

// TestRunTelemetrySpans checks the engine's obs integration: one run span
// per Run call, one child span per shard with a queue-wait attribute, and
// the task counters.
func TestRunTelemetrySpans(t *testing.T) {
	for _, par := range []int{1, 4} {
		rec := obs.New("test")
		eng := New(Options{Parallelism: par, Obs: rec})
		tasks := make([]Task, 6)
		for i := range tasks {
			tasks[i] = Task{Label: fmt.Sprintf("t%d", i), Run: func(context.Context) error { return nil }}
		}
		if err := eng.Run(context.Background(), tasks); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		rep := rec.Report()
		if rep.Counters["sim.tasks"] != int64(len(tasks)) {
			t.Errorf("par=%d: sim.tasks = %d, want %d", par, rep.Counters["sim.tasks"], len(tasks))
		}
		if len(rep.Spans) != 1 || rep.Spans[0].Name != "sim.run" {
			t.Fatalf("par=%d: spans = %+v", par, rep.Spans)
		}
		run := rep.Spans[0]
		if run.Open {
			t.Errorf("par=%d: run span left open", par)
		}
		if run.Attrs["tasks"] != int64(len(tasks)) {
			t.Errorf("par=%d: run attrs = %v", par, run.Attrs)
		}
		if len(run.Children) != len(tasks) {
			t.Fatalf("par=%d: %d shard spans, want %d", par, len(run.Children), len(tasks))
		}
		for _, c := range run.Children {
			if _, ok := c.Attrs["queue_wait_ns"]; !ok || c.Open {
				t.Errorf("par=%d: shard span %s missing queue wait or left open: %+v", par, c.Name, c)
			}
		}
		st := eng.Stats()
		if st.Tasks != uint64(len(tasks)) || st.Errors != 0 {
			t.Errorf("par=%d: stats = %+v", par, st)
		}
	}
}

func TestVerboseLogging(t *testing.T) {
	var sb strings.Builder
	eng := New(Options{Parallelism: 1, Verbose: true, Log: &sb})
	tasks := []Task{{Label: "alpha", Run: func(context.Context) error { return nil }}}
	if err := eng.Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "alpha") {
		t.Errorf("verbose log missing shard label:\n%s", sb.String())
	}
}

func TestTraceCacheGeneratesOnce(t *testing.T) {
	c := NewTraceCache()
	c.AddRefs("k", 8)
	var gens atomic.Int32
	gen := func() (*Recorded, error) {
		gens.Add(1)
		return &Recorded{Events: []trace.Event{{PC: 4, Kind: ir.Br}}, Instrs: 7}, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec, err := c.Acquire("k", gen)
			if err != nil || rec.Instrs != 7 || len(rec.Events) != 1 {
				t.Errorf("Acquire = %+v, %v", rec, err)
			}
			c.Release("k")
		}()
	}
	wg.Wait()
	if n := gens.Load(); n != 1 {
		t.Errorf("generator ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 7 {
		t.Errorf("stats = %+v, want 1 miss / 7 hits", st)
	}
	if st.Live != 0 || st.Freed != 1 {
		t.Errorf("entry not freed after final release: %+v", st)
	}
}

func TestTraceCacheRefcountLifecycle(t *testing.T) {
	c := NewTraceCache()
	c.AddRefs("k", 2)
	gen := func() (*Recorded, error) { return &Recorded{Instrs: 1}, nil }
	if _, err := c.Acquire("k", gen); err != nil {
		t.Fatal(err)
	}
	c.Release("k")
	if st := c.Stats(); st.Live != 1 {
		t.Fatalf("entry dropped with a reference outstanding: %+v", st)
	}
	c.Release("k")
	if st := c.Stats(); st.Live != 0 || st.Freed != 1 {
		t.Fatalf("entry not dropped at refcount zero: %+v", st)
	}
	// Re-acquiring after the drop regenerates.
	c.AddRefs("k", 1)
	if _, err := c.Acquire("k", gen); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Errorf("re-acquire after drop did not regenerate: %+v", st)
	}
}

func TestTraceCachePropagatesGenerationError(t *testing.T) {
	// Acquirers blocked while a generation is in flight share its error;
	// the generator runs once for that cohort.
	c := NewTraceCache()
	c.AddRefs("bad", 2)
	boom := errors.New("walk failed")
	genStarted := make(chan struct{})
	var gens atomic.Int32
	gen := func() (*Recorded, error) {
		gens.Add(1)
		close(genStarted)
		// Hold the generation open until the second acquirer is bound to
		// it: a waiter counts its hit before blocking on the entry's done
		// channel, so once Hits > 0 the error below is observed as shared
		// rather than retried.
		for c.Stats().Hits == 0 {
			time.Sleep(time.Microsecond)
		}
		return nil, boom
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = c.Acquire("bad", gen)
	}()
	go func() {
		defer wg.Done()
		<-genStarted // only acquire once the failing generation is in flight
		_, errs[1] = c.Acquire("bad", func() (*Recorded, error) {
			return nil, errors.New("generator re-ran while a generation was in flight")
		})
	}()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("acquirer %d err = %v, want %v", i, err, boom)
		}
	}
	if n := gens.Load(); n != 1 {
		t.Errorf("generator ran %d times for one cohort, want 1", n)
	}
}

// TestTraceCacheRetriesAfterError is the regression test for the
// error-poisoning bug: a failed generation used to stick to its key for as
// long as references remained, failing every later acquirer even when the
// failure was transient. Now the entry resets on error and the next
// Acquire retries.
func TestTraceCacheRetriesAfterError(t *testing.T) {
	c := NewTraceCache()
	c.AddRefs("k", 3)
	boom := errors.New("transient failure")
	gens := 0
	if _, err := c.Acquire("k", func() (*Recorded, error) {
		gens++
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("first acquire err = %v, want %v", err, boom)
	}
	c.Release("k")

	// The key is not poisoned: the next Acquire retries the generation.
	rec, err := c.Acquire("k", func() (*Recorded, error) {
		gens++
		return &Recorded{Events: []trace.Event{{PC: 4, Kind: ir.Br}}, Instrs: 9}, nil
	})
	if err != nil || rec == nil || rec.Instrs != 9 {
		t.Fatalf("retry acquire = %+v, %v", rec, err)
	}
	c.Release("k")

	// And the retried result is cached for later acquirers.
	rec, err = c.Acquire("k", func() (*Recorded, error) {
		t.Error("generator re-ran after a successful retry")
		return nil, nil
	})
	if err != nil || rec == nil || rec.Instrs != 9 {
		t.Fatalf("cached acquire = %+v, %v", rec, err)
	}
	c.Release("k")

	if gens != 2 {
		t.Errorf("generator ran %d times, want 2 (fail, retry)", gens)
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.Errors != 1 {
		t.Errorf("stats = %+v, want 2 misses / 1 hit / 1 error", st)
	}
	if st.Live != 0 || st.Freed != 1 {
		t.Errorf("entry not freed after final release: %+v", st)
	}
	if st.LiveEvents != 0 || st.LiveBytes != 0 {
		t.Errorf("freed cache still reports held data: %+v", st)
	}
}

// TestTraceCacheTracksHeldData covers the occupancy stats the obs layer
// reports: events and bytes held rise with live traces and fall to zero
// after the last release.
func TestTraceCacheTracksHeldData(t *testing.T) {
	c := NewTraceCache()
	c.AddRefs("k", 2)
	rec := &Recorded{Events: make([]trace.Event, 5), Instrs: 1}
	if _, err := c.Acquire("k", func() (*Recorded, error) { return rec, nil }); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.LiveEvents != 5 {
		t.Errorf("LiveEvents = %d, want 5", st.LiveEvents)
	}
	if st.LiveBytes < rec.SizeBytes() || st.Live != 1 {
		t.Errorf("held stats = %+v", st)
	}
	c.Release("k")
	c.Release("k")
	st = c.Stats()
	if st.Live != 0 || st.LiveEvents != 0 || st.LiveBytes != 0 {
		t.Errorf("released cache still reports held data: %+v", st)
	}
}

func TestRecordAndReplay(t *testing.T) {
	rec, err := Record(func(sink trace.Sink) (uint64, error) {
		sink.Event(trace.Event{PC: 0x1000, Kind: ir.CondBr, Taken: true, Target: 0x2000})
		sink.Event(trace.Event{PC: 0x1004, Kind: ir.Ret, Taken: true, Target: 0x3000})
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Instrs != 42 || len(rec.Events) != 2 {
		t.Fatalf("recorded %+v", rec)
	}
	var got trace.Recorder
	rec.Replay(&got)
	if len(got.Events) != 2 || got.Events[0].PC != 0x1000 || got.Events[1].Kind != ir.Ret {
		t.Errorf("replayed events %+v", got.Events)
	}
}
