package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"balign/internal/ir"
	"balign/internal/trace"
)

func TestRunExecutesEveryTask(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		eng := New(Options{Parallelism: par})
		var ran [50]atomic.Int32
		tasks := make([]Task, len(ran))
		for i := range tasks {
			i := i
			tasks[i] = Task{Label: fmt.Sprintf("t%d", i), Run: func(context.Context) error {
				ran[i].Add(1)
				return nil
			}}
		}
		if err := eng.Run(context.Background(), tasks); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i := range ran {
			if n := ran[i].Load(); n != 1 {
				t.Errorf("par=%d: task %d ran %d times", par, i, n)
			}
		}
		if st := eng.Stats(); st.Tasks != uint64(len(tasks)) {
			t.Errorf("par=%d: stats report %d tasks, want %d", par, st.Tasks, len(tasks))
		}
	}
}

func TestRunBoundsParallelism(t *testing.T) {
	const par = 3
	eng := New(Options{Parallelism: par})
	var active, peak atomic.Int32
	var mu sync.Mutex
	tasks := make([]Task, 40)
	for i := range tasks {
		tasks[i] = Task{Label: "t", Run: func(context.Context) error {
			n := active.Add(1)
			mu.Lock()
			if n > peak.Load() {
				peak.Store(n)
			}
			mu.Unlock()
			active.Add(-1)
			return nil
		}}
	}
	if err := eng.Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > par {
		t.Errorf("peak concurrency %d exceeds parallelism %d", p, par)
	}
}

func TestRunFirstErrorInTaskOrder(t *testing.T) {
	// Two failing tasks: the reported error must be the one a serial run
	// would hit first, regardless of parallel completion order.
	errA := errors.New("task 3 failed")
	errB := errors.New("task 7 failed")
	for _, par := range []int{1, 8} {
		eng := New(Options{Parallelism: par})
		tasks := make([]Task, 10)
		for i := range tasks {
			i := i
			tasks[i] = Task{Label: fmt.Sprintf("t%d", i), Run: func(context.Context) error {
				switch i {
				case 3:
					return errA
				case 7:
					return errB
				}
				return nil
			}}
		}
		err := eng.Run(context.Background(), tasks)
		if !errors.Is(err, errA) {
			t.Errorf("par=%d: got %v, want the task-order-first error %v", par, err, errA)
		}
	}
}

func TestRunCancellationStopsWork(t *testing.T) {
	eng := New(Options{Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	tasks := []Task{{Label: "t", Run: func(context.Context) error {
		ran.Add(1)
		return nil
	}}}
	if err := eng.Run(ctx, tasks); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("task ran despite pre-cancelled context")
	}
}

func TestRunErrorCancelsRemainingTasks(t *testing.T) {
	// Serial path: tasks after the failing one must not run.
	eng := New(Options{Parallelism: 1})
	var ran []int
	boom := errors.New("boom")
	tasks := make([]Task, 6)
	for i := range tasks {
		i := i
		tasks[i] = Task{Label: "t", Run: func(context.Context) error {
			ran = append(ran, i)
			if i == 2 {
				return boom
			}
			return nil
		}}
	}
	if err := eng.Run(context.Background(), tasks); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 3 {
		t.Errorf("serial run executed %v, want exactly tasks 0..2", ran)
	}
}

func TestVerboseLogging(t *testing.T) {
	var sb strings.Builder
	eng := New(Options{Parallelism: 1, Verbose: true, Log: &sb})
	tasks := []Task{{Label: "alpha", Run: func(context.Context) error { return nil }}}
	if err := eng.Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "alpha") {
		t.Errorf("verbose log missing shard label:\n%s", sb.String())
	}
}

func TestTraceCacheGeneratesOnce(t *testing.T) {
	c := NewTraceCache()
	c.AddRefs("k", 8)
	var gens atomic.Int32
	gen := func() (*Recorded, error) {
		gens.Add(1)
		return &Recorded{Events: []trace.Event{{PC: 4, Kind: ir.Br}}, Instrs: 7}, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec, err := c.Acquire("k", gen)
			if err != nil || rec.Instrs != 7 || len(rec.Events) != 1 {
				t.Errorf("Acquire = %+v, %v", rec, err)
			}
			c.Release("k")
		}()
	}
	wg.Wait()
	if n := gens.Load(); n != 1 {
		t.Errorf("generator ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 7 {
		t.Errorf("stats = %+v, want 1 miss / 7 hits", st)
	}
	if st.Live != 0 || st.Freed != 1 {
		t.Errorf("entry not freed after final release: %+v", st)
	}
}

func TestTraceCacheRefcountLifecycle(t *testing.T) {
	c := NewTraceCache()
	c.AddRefs("k", 2)
	gen := func() (*Recorded, error) { return &Recorded{Instrs: 1}, nil }
	if _, err := c.Acquire("k", gen); err != nil {
		t.Fatal(err)
	}
	c.Release("k")
	if st := c.Stats(); st.Live != 1 {
		t.Fatalf("entry dropped with a reference outstanding: %+v", st)
	}
	c.Release("k")
	if st := c.Stats(); st.Live != 0 || st.Freed != 1 {
		t.Fatalf("entry not dropped at refcount zero: %+v", st)
	}
	// Re-acquiring after the drop regenerates.
	c.AddRefs("k", 1)
	if _, err := c.Acquire("k", gen); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Errorf("re-acquire after drop did not regenerate: %+v", st)
	}
}

func TestTraceCachePropagatesGenerationError(t *testing.T) {
	c := NewTraceCache()
	c.AddRefs("bad", 2)
	boom := errors.New("walk failed")
	if _, err := c.Acquire("bad", func() (*Recorded, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first acquire err = %v", err)
	}
	// Second acquirer sees the same error without re-running the generator.
	if _, err := c.Acquire("bad", func() (*Recorded, error) {
		t.Error("generator re-ran after error")
		return nil, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("second acquire err = %v", err)
	}
}

func TestRecordAndReplay(t *testing.T) {
	rec, err := Record(func(sink trace.Sink) (uint64, error) {
		sink.Event(trace.Event{PC: 0x1000, Kind: ir.CondBr, Taken: true, Target: 0x2000})
		sink.Event(trace.Event{PC: 0x1004, Kind: ir.Ret, Taken: true, Target: 0x3000})
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Instrs != 42 || len(rec.Events) != 2 {
		t.Fatalf("recorded %+v", rec)
	}
	var got trace.Recorder
	rec.Replay(&got)
	if len(got.Events) != 2 || got.Events[0].PC != 0x1000 || got.Events[1].Kind != ir.Ret {
		t.Errorf("replayed events %+v", got.Events)
	}
}
