package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"balign/internal/ir"
	"balign/internal/obs"
	"balign/internal/predict"
	"balign/internal/profile"
	"balign/internal/trace"
	"balign/internal/workload"
)

func TestParseStreamMode(t *testing.T) {
	cases := []struct {
		in   string
		want StreamMode
		err  bool
	}{
		{"", StreamOn, false},
		{"on", StreamOn, false},
		{"off", StreamOff, false},
		{"yes", "", true},
		{"ON", "", true},
		{"record", "", true},
	}
	for _, c := range cases {
		got, err := ParseStreamMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseStreamMode(%q) error = %v, want error %v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseStreamMode(%q) = %q, want %q", c.in, got, c.want)
		}
		if err != nil && !strings.Contains(err.Error(), "on, off") {
			t.Errorf("ParseStreamMode(%q) error %q does not enumerate the valid modes", c.in, err)
		}
	}
}

// TestParseKernelModeEnumeratesModes pins the error-message contract: the
// message must list every accepted value.
func TestParseKernelModeEnumeratesModes(t *testing.T) {
	_, err := ParseKernelMode("bogus")
	if err == nil {
		t.Fatal("ParseKernelMode(bogus) succeeded")
	}
	for _, m := range KernelModes() {
		if !strings.Contains(err.Error(), string(m)) {
			t.Errorf("error %q does not mention mode %q", err, m)
		}
	}
}

// streamFixture records one workload trace and exposes it both as a
// Recorded (for Simulate) and as a replaying Source factory (for
// SimulateStream), so the two paths consume identical streams.
type streamFixture struct {
	w    *workload.Workload
	prof *profile.Profile
	rec  *Recorded
	lay  *trace.Layout
}

func newStreamFixture(t *testing.T) *streamFixture {
	t.Helper()
	w, err := workload.ByName("eqntott", workload.Config{Scale: 0.05})
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	prof, _, err := w.CollectProfile()
	if err != nil {
		t.Fatalf("CollectProfile: %v", err)
	}
	rec, err := Record(func(sink trace.Sink) (uint64, error) {
		return w.Run(w.Prog, prof, sink, nil)
	})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	lay, err := trace.CompileLayout(w.Prog)
	if err != nil {
		t.Fatalf("CompileLayout: %v", err)
	}
	return &streamFixture{w: w, prof: prof, rec: rec, lay: lay}
}

// source returns a fresh Source replaying the fixture's recorded stream.
func (f *streamFixture) source(batchCap int) trace.Source {
	return trace.NewFuncSource(f.lay, batchCap, func(sink trace.Sink) (uint64, error) {
		f.rec.Replay(sink)
		return f.rec.Instrs, nil
	})
}

// TestSimulateStreamMatchesSimulate is the executor half of the streaming
// oracle: for both kernel modes, one broadcast generation over all
// architectures must reproduce per-cell recorded replay exactly.
func TestSimulateStreamMatchesSimulate(t *testing.T) {
	f := newStreamFixture(t)
	archs := predict.AllArchs()
	for _, mode := range []KernelMode{KernelFlat, KernelRef} {
		t.Run(string(mode), func(t *testing.T) {
			rec := obs.New("test")
			x, err := NewExecutor(string(mode), rec)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]predict.Result, len(archs))
			for i, arch := range archs {
				r, err := x.Simulate(arch, f.w.Prog, f.prof, f.rec)
				if err != nil {
					t.Fatalf("%s: Simulate: %v", arch, err)
				}
				want[i] = r
			}

			str := NewStreamer(0, 512, rec)
			got, err := x.SimulateStream(nil, str, f.lay, f.source(512), f.w.Prog, f.prof, archs)
			if err != nil {
				t.Fatalf("SimulateStream: %v", err)
			}
			for i, arch := range archs {
				if got[i] != want[i] {
					t.Errorf("%s: streamed and recorded results differ:\n stream %+v\n record %+v",
						arch, got[i], want[i])
				}
			}

			st := str.Stats()
			if st.Broadcasts != 1 {
				t.Errorf("Broadcasts = %d, want 1", st.Broadcasts)
			}
			if st.Events != uint64(len(f.rec.Events)) {
				t.Errorf("stream Events = %d, want %d", st.Events, len(f.rec.Events))
			}
			if wantBatches := (uint64(len(f.rec.Events)) + 511) / 512; st.Batches != wantBatches {
				t.Errorf("Batches = %d, want %d", st.Batches, wantBatches)
			}
			if st.PeakLiveBytes == 0 {
				t.Error("PeakLiveBytes = 0, want ring footprint recorded")
			}
			if st.LiveBuffers != 0 || st.LiveBytes != 0 {
				t.Errorf("ring not released: %d buffers, %d bytes live", st.LiveBuffers, st.LiveBytes)
			}
			if xs := x.Stats(); xs.StreamCells != uint64(len(archs)) {
				t.Errorf("StreamCells = %d, want %d", xs.StreamCells, len(archs))
			}
		})
	}
}

// TestSimulateStreamBoundedMemory pins the headline memory property: the
// ring's peak footprint must be far below the recorded trace's.
func TestSimulateStreamBoundedMemory(t *testing.T) {
	f := newStreamFixture(t)
	x, err := NewExecutor("", nil)
	if err != nil {
		t.Fatal(err)
	}
	str := NewStreamer(4, 1024, nil)
	if _, err := x.SimulateStream(nil, str, f.lay, f.source(1024), f.w.Prog, f.prof, predict.AllArchs()); err != nil {
		t.Fatal(err)
	}
	peak, whole := str.Stats().PeakLiveBytes, f.rec.SizeBytes()
	if peak*5 > whole {
		t.Errorf("streaming peak %d bytes is not >=5x below the recorded trace's %d bytes", peak, whole)
	}
}

// TestBroadcastConsumerError: a failing consumer must abort the broadcast
// without deadlock and surface its error.
func TestBroadcastConsumerError(t *testing.T) {
	f := newStreamFixture(t)
	str := NewStreamer(2, 64, nil)
	var healthyBatches atomic.Int64
	err := str.Broadcast(nil, f.source(64), []func(*trace.Batch) error{
		func(*trace.Batch) error { healthyBatches.Add(1); return nil },
		func(*trace.Batch) error { return fmt.Errorf("consumer blew up") },
	})
	if err == nil || !strings.Contains(err.Error(), "consumer blew up") {
		t.Fatalf("Broadcast error = %v, want consumer failure", err)
	}
	if st := str.Stats(); st.LiveBuffers != 0 {
		t.Errorf("ring not released after failure: %d buffers live", st.LiveBuffers)
	}
	if healthyBatches.Load() == 0 {
		t.Error("healthy consumer saw no batches before the abort")
	}
}

// TestBroadcastSourceError: a failing source propagates and wins over
// consumer state.
func TestBroadcastSourceError(t *testing.T) {
	f := newStreamFixture(t)
	boom := trace.NewFuncSource(f.lay, 16, func(sink trace.Sink) (uint64, error) {
		// A PC with no layout slot makes the packing sink fail the fill.
		sink.Event(trace.Event{PC: 0xbad0_0000, Kind: ir.CondBr})
		return 0, nil
	})
	defer boom.Close()
	str := NewStreamer(0, 16, nil)
	err := str.Broadcast(nil, boom, []func(*trace.Batch) error{func(*trace.Batch) error { return nil }})
	if err == nil {
		t.Fatal("Broadcast with failing source succeeded")
	}
}

// TestBroadcastBackpressure: a consumer slower than the producer must stall
// the producer (bounded ring), and the stall must be measured.
func TestBroadcastBackpressure(t *testing.T) {
	f := newStreamFixture(t)
	str := NewStreamer(2, 32, nil)
	err := str.Broadcast(nil, f.source(32), []func(*trace.Batch) error{
		func(*trace.Batch) error { time.Sleep(200 * time.Microsecond); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	st := str.Stats()
	if st.Batches == 0 {
		t.Fatal("no batches broadcast")
	}
	if st.StallsNs == 0 {
		t.Error("producer never stalled against a deliberately slow consumer")
	}
}

// TestBroadcastConcurrent runs several broadcasts in parallel over one
// shared Streamer — the engine's per-variant task shape — and checks the
// aggregate accounting balances. Run with -race this doubles as the
// broadcast stage's data-race probe.
func TestBroadcastConcurrent(t *testing.T) {
	f := newStreamFixture(t)
	str := NewStreamer(3, 128, obs.New("test"))
	const grids = 4
	errc := make(chan error, grids)
	var events atomic.Uint64
	for g := 0; g < grids; g++ {
		go func() {
			errc <- str.Broadcast(nil, f.source(128), []func(*trace.Batch) error{
				func(b *trace.Batch) error { events.Add(uint64(b.Len())); return nil },
				func(b *trace.Batch) error { return nil },
				func(b *trace.Batch) error { return nil },
			})
		}()
	}
	for g := 0; g < grids; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	st := str.Stats()
	if st.Broadcasts != grids {
		t.Errorf("Broadcasts = %d, want %d", st.Broadcasts, grids)
	}
	if want := uint64(grids) * uint64(len(f.rec.Events)); st.Events != want || events.Load() != want {
		t.Errorf("events: streamer %d, consumer %d, want %d", st.Events, events.Load(), want)
	}
	if st.LiveBuffers != 0 || st.LiveBytes != 0 {
		t.Errorf("ring not fully released: %d buffers, %d bytes", st.LiveBuffers, st.LiveBytes)
	}
}

// TestCachePeakGauges: the demoted recorded-mode cache must report its
// high-water marks so streaming's bounded ring has a baseline to compare
// against.
func TestCachePeakGauges(t *testing.T) {
	c := NewTraceCache()
	c.AddRefs("a", 1)
	c.AddRefs("b", 1)
	mk := func(n int) func() (*Recorded, error) {
		return func() (*Recorded, error) {
			return &Recorded{Events: make([]trace.Event, n), Instrs: uint64(n)}, nil
		}
	}
	if _, err := c.Acquire("a", mk(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire("b", mk(50)); err != nil {
		t.Fatal(err)
	}
	c.Release("a")
	c.Release("b")
	st := c.Stats()
	if st.Live != 0 || st.LiveEvents != 0 {
		t.Errorf("cache not drained: %+v", st)
	}
	if st.PeakLiveEvents != 150 {
		t.Errorf("PeakLiveEvents = %d, want 150", st.PeakLiveEvents)
	}
	if st.PeakLiveBytes == 0 {
		t.Error("PeakLiveBytes = 0")
	}
}

// TestBroadcastContextCancel is the regression test for prompt context
// cancellation: a broadcast whose producer is stalled against a slow
// consumer must observe the cancel while blocked on the buffer ring, return
// well before the consumer would have drained the stream, and still release
// every ring buffer (the live-bytes gauge returns to zero).
func TestBroadcastContextCancel(t *testing.T) {
	f := newStreamFixture(t)
	str := NewStreamer(2, 32, nil)
	ctx, cancel := context.WithCancel(context.Background())

	// At 32 events per batch the fixture stream is hundreds of batches; a
	// consumer sleeping 10ms per batch would take seconds to drain it, so a
	// prompt return is attributable only to the cancellation.
	var consumed atomic.Int64
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- str.Broadcast(ctx, f.source(32), []func(*trace.Batch) error{
			func(*trace.Batch) error {
				consumed.Add(1)
				time.Sleep(10 * time.Millisecond)
				return nil
			},
		})
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Broadcast error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Broadcast did not return within 2s of cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Broadcast took %v, want prompt abort", elapsed)
	}
	if consumed.Load() == 0 {
		t.Error("consumer saw no batches before the cancel (test raced the stream start)")
	}
	st := str.Stats()
	if st.LiveBuffers != 0 || st.LiveBytes != 0 {
		t.Errorf("ring not released after cancel: %d buffers, %d bytes live", st.LiveBuffers, st.LiveBytes)
	}
}

// TestBroadcastPreCancelledContext: a broadcast handed an already-cancelled
// context must do no consumer work and release the ring.
func TestBroadcastPreCancelledContext(t *testing.T) {
	f := newStreamFixture(t)
	str := NewStreamer(0, 64, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := f.source(64)
	defer src.Close()
	var consumed atomic.Int64
	err := str.Broadcast(ctx, src, []func(*trace.Batch) error{
		func(*trace.Batch) error { consumed.Add(1); return nil },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Broadcast error = %v, want context.Canceled", err)
	}
	if consumed.Load() != 0 {
		t.Errorf("consumer ran %d batches under a pre-cancelled context", consumed.Load())
	}
	if st := str.Stats(); st.LiveBuffers != 0 || st.LiveBytes != 0 {
		t.Errorf("ring not released: %d buffers, %d bytes live", st.LiveBuffers, st.LiveBytes)
	}
}
