// Package sim is the parallel experiment engine behind the evaluation
// harness. The paper's tables sweep a {program x architecture x algorithm}
// grid of trace-driven simulations; every cell of that grid is independent,
// so the engine shards cells across a bounded worker pool (one worker per
// runtime.GOMAXPROCS by default) with context cancellation and
// deterministic first-error propagation.
//
// Two properties make the parallel harness trustworthy:
//
//   - every task writes only its own result slot and the caller reduces the
//     slots in canonical (task-list) order, so a parallel run's output is
//     byte-identical to the serial run's;
//   - Parallelism = 1 degenerates to a plain in-order loop on the calling
//     goroutine — the serial oracle the differential tests compare against.
//
// The companion TraceCache (cache.go) ensures each program variant's trace
// is generated exactly once and replayed read-only by every simulator that
// needs it.
package sim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"balign/internal/obs"
)

// Options configures an Engine.
type Options struct {
	// Parallelism bounds the number of concurrently executing tasks.
	// 0 (or negative) means runtime.GOMAXPROCS(0); 1 selects the serial
	// oracle path (a plain loop, no goroutines).
	Parallelism int
	// Verbose enables per-shard progress logging to Log.
	Verbose bool
	// Log receives progress output when Verbose is set; nil discards it.
	Log io.Writer
	// Obs receives run telemetry: one span per Run with a child span per
	// shard (queue wait, run time) plus engine counters. Nil disables
	// telemetry at zero cost; telemetry never influences scheduling or
	// results, so byte-determinism holds either way.
	Obs *obs.Recorder
}

// Task is one shard of an experiment grid: an independent unit of work with
// a label for progress logging and timing attribution.
type Task struct {
	Label string
	Run   func(ctx context.Context) error
}

// Stats summarizes what an engine has executed so far. The JSON form is
// part of the run-report schema (the report's "engine" section).
type Stats struct {
	// Tasks is the number of shards that ran to completion.
	Tasks uint64 `json:"tasks"`
	// Errors is the number of shards that returned a root-cause error
	// (cancellation fallout from another shard's failure is not counted).
	Errors uint64 `json:"errors"`
	// Busy is the summed wall-clock time of all completed shards; on a
	// multi-core run it exceeds elapsed time by roughly the achieved
	// parallelism.
	Busy time.Duration `json:"busy_ns"`
	// QueueWait is the summed time shards spent waiting between Run
	// submission and the start of their execution — the engine's
	// queue-wait-vs-run-time split.
	QueueWait time.Duration `json:"queue_wait_ns"`
}

// Engine executes task grids with bounded parallelism. The zero value is
// not usable; call New. An Engine may be reused across many Run calls and
// is safe for concurrent use.
type Engine struct {
	opts    Options
	logMu   sync.Mutex
	tasks   atomic.Uint64
	errs    atomic.Uint64
	busyNs  atomic.Int64
	queueNs atomic.Int64
}

// New returns an engine with the given options.
func New(opts Options) *Engine { return &Engine{opts: opts} }

// Parallelism returns the resolved worker count.
func (e *Engine) Parallelism() int {
	if e.opts.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.opts.Parallelism
}

// Serial reports whether the engine runs the serial oracle path.
func (e *Engine) Serial() bool { return e.Parallelism() == 1 }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Tasks:     e.tasks.Load(),
		Errors:    e.errs.Load(),
		Busy:      time.Duration(e.busyNs.Load()),
		QueueWait: time.Duration(e.queueNs.Load()),
	}
}

// Logf writes one progress line when the engine is verbose. It is safe for
// concurrent use and a no-op otherwise.
func (e *Engine) Logf(format string, args ...any) {
	if !e.opts.Verbose || e.opts.Log == nil {
		return
	}
	e.logMu.Lock()
	fmt.Fprintf(e.opts.Log, format+"\n", args...)
	e.logMu.Unlock()
}

// Run executes every task, at most Parallelism at a time, and returns the
// first error in task order (the same error a serial in-order run would
// return first, since later tasks are cancelled). A nil ctx means
// context.Background().
//
// With Parallelism = 1 the tasks run in order on the calling goroutine and
// execution stops at the first error — the serial oracle path.
func (e *Engine) Run(ctx context.Context, tasks []Task) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(tasks) == 0 {
		return ctx.Err()
	}
	workers := e.Parallelism()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	start := time.Now()
	busy0 := e.busyNs.Load()
	span := e.opts.Obs.Span("sim.run")
	span.SetInt("tasks", int64(len(tasks)))
	span.SetInt("workers", int64(workers))
	err := e.run(ctx, tasks, workers, span, start)
	if span != nil {
		wall := time.Since(start)
		busy := e.busyNs.Load() - busy0
		span.SetInt("busy_ns", busy)
		if wall > 0 {
			// Worker utilization in basis points: 10000 means every
			// worker was busy for the whole run.
			span.SetInt("util_bp", busy*10000/(int64(workers)*int64(wall)))
		}
		span.End()
	}
	return err
}

func (e *Engine) run(ctx context.Context, tasks []Task, workers int, span *obs.Span, queued time.Time) error {
	if e.Serial() || len(tasks) == 1 {
		for i := range tasks {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := e.exec(ctx, &tasks[i], span, queued); err != nil {
				e.errs.Add(1)
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Every task writes only its own error slot and the scan below picks
	// the lowest-indexed one, so the reported error is the one a serial
	// in-order run would have hit first. A failing task cancels the
	// context; in-flight tasks then typically abort with ctx.Err(), and
	// those cancellation-fallout errors must NOT be recorded — an aborted
	// earlier task would otherwise land context.Canceled in a lower slot
	// and mask the root cause. The cancelled flag is ordered before
	// cancel(), and a task can only observe the cancelled context after
	// cancel(), so any task returning context.Canceled while the flag is
	// set is fallout, not a root cause. (A task failing with its own real
	// error after cancellation is still recorded: serially it would have
	// failed too.)
	errs := make([]error, len(tasks))
	var cancelled atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if err := e.exec(ctx, &tasks[i], span, queued); err != nil {
					if cancelled.Load() && errors.Is(err, context.Canceled) {
						continue
					}
					errs[i] = err
					e.errs.Add(1)
					cancelled.Store(true)
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

func (e *Engine) exec(ctx context.Context, t *Task, parent *obs.Span, queued time.Time) error {
	start := time.Now()
	wait := start.Sub(queued)
	sp := parent.Child(t.Label)
	sp.SetInt("queue_wait_ns", int64(wait))
	err := t.Run(ctx)
	sp.End()
	elapsed := time.Since(start)
	e.tasks.Add(1)
	e.busyNs.Add(int64(elapsed))
	e.queueNs.Add(int64(wait))
	e.opts.Obs.Add("sim.tasks", 1)
	if err != nil {
		e.opts.Obs.Add("sim.task_errors", 1)
		e.Logf("sim: shard %s failed after %v: %v", t.Label, elapsed.Round(time.Microsecond), err)
		return err
	}
	e.Logf("sim: shard %s done in %v", t.Label, elapsed.Round(time.Microsecond))
	return nil
}
