// Package sim is the parallel experiment engine behind the evaluation
// harness. The paper's tables sweep a {program x architecture x algorithm}
// grid of trace-driven simulations; every cell of that grid is independent,
// so the engine shards cells across a bounded worker pool (one worker per
// runtime.GOMAXPROCS by default) with context cancellation and
// deterministic first-error propagation.
//
// Two properties make the parallel harness trustworthy:
//
//   - every task writes only its own result slot and the caller reduces the
//     slots in canonical (task-list) order, so a parallel run's output is
//     byte-identical to the serial run's;
//   - Parallelism = 1 degenerates to a plain in-order loop on the calling
//     goroutine — the serial oracle the differential tests compare against.
//
// The companion TraceCache (cache.go) ensures each program variant's trace
// is generated exactly once and replayed read-only by every simulator that
// needs it.
package sim

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures an Engine.
type Options struct {
	// Parallelism bounds the number of concurrently executing tasks.
	// 0 (or negative) means runtime.GOMAXPROCS(0); 1 selects the serial
	// oracle path (a plain loop, no goroutines).
	Parallelism int
	// Verbose enables per-shard progress logging to Log.
	Verbose bool
	// Log receives progress output when Verbose is set; nil discards it.
	Log io.Writer
}

// Task is one shard of an experiment grid: an independent unit of work with
// a label for progress logging and timing attribution.
type Task struct {
	Label string
	Run   func(ctx context.Context) error
}

// Stats summarizes what an engine has executed so far.
type Stats struct {
	// Tasks is the number of shards that ran to completion.
	Tasks uint64
	// Busy is the summed wall-clock time of all completed shards; on a
	// multi-core run it exceeds elapsed time by roughly the achieved
	// parallelism.
	Busy time.Duration
}

// Engine executes task grids with bounded parallelism. The zero value is
// not usable; call New. An Engine may be reused across many Run calls and
// is safe for concurrent use.
type Engine struct {
	opts   Options
	logMu  sync.Mutex
	tasks  atomic.Uint64
	busyNs atomic.Int64
}

// New returns an engine with the given options.
func New(opts Options) *Engine { return &Engine{opts: opts} }

// Parallelism returns the resolved worker count.
func (e *Engine) Parallelism() int {
	if e.opts.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.opts.Parallelism
}

// Serial reports whether the engine runs the serial oracle path.
func (e *Engine) Serial() bool { return e.Parallelism() == 1 }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{Tasks: e.tasks.Load(), Busy: time.Duration(e.busyNs.Load())}
}

// Logf writes one progress line when the engine is verbose. It is safe for
// concurrent use and a no-op otherwise.
func (e *Engine) Logf(format string, args ...any) {
	if !e.opts.Verbose || e.opts.Log == nil {
		return
	}
	e.logMu.Lock()
	fmt.Fprintf(e.opts.Log, format+"\n", args...)
	e.logMu.Unlock()
}

// Run executes every task, at most Parallelism at a time, and returns the
// first error in task order (the same error a serial in-order run would
// return first, since later tasks are cancelled). A nil ctx means
// context.Background().
//
// With Parallelism = 1 the tasks run in order on the calling goroutine and
// execution stops at the first error — the serial oracle path.
func (e *Engine) Run(ctx context.Context, tasks []Task) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(tasks) == 0 {
		return ctx.Err()
	}
	if e.Serial() || len(tasks) == 1 {
		for i := range tasks {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := e.exec(ctx, &tasks[i]); err != nil {
				return err
			}
		}
		return nil
	}

	workers := e.Parallelism()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if err := e.exec(ctx, &tasks[i]); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

func (e *Engine) exec(ctx context.Context, t *Task) error {
	start := time.Now()
	err := t.Run(ctx)
	elapsed := time.Since(start)
	e.tasks.Add(1)
	e.busyNs.Add(int64(elapsed))
	if err != nil {
		e.Logf("sim: shard %s failed after %v: %v", t.Label, elapsed.Round(time.Microsecond), err)
		return err
	}
	e.Logf("sim: shard %s done in %v", t.Label, elapsed.Round(time.Microsecond))
	return nil
}
