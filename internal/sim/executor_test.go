package sim

import (
	"testing"

	"balign/internal/obs"
	"balign/internal/predict"
	"balign/internal/trace"
	"balign/internal/workload"
)

func TestParseKernelMode(t *testing.T) {
	cases := []struct {
		in   string
		want KernelMode
		err  bool
	}{
		{"", KernelFlat, false},
		{"flat", KernelFlat, false},
		{"ref", KernelRef, false},
		{"fast", "", true},
		{"FLAT", "", true},
	}
	for _, c := range cases {
		got, err := ParseKernelMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseKernelMode(%q) error = %v, want error %v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseKernelMode(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := NewExecutor("bogus", nil); err == nil {
		t.Error("NewExecutor with bogus mode succeeded")
	}
}

// TestExecutorModesAgree runs the same cell through both executors and
// requires identical results, then checks the phase-split stats account for
// the work: each mode's compile and run phases must both be populated so
// cache-hit replays are never misattributed to simulation cost.
func TestExecutorModesAgree(t *testing.T) {
	w, err := workload.ByName("eqntott", workload.Config{Scale: 0.05})
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	prof, _, err := w.CollectProfile()
	if err != nil {
		t.Fatalf("CollectProfile: %v", err)
	}
	rec, err := Record(func(sink trace.Sink) (uint64, error) {
		return w.Run(w.Prog, prof, sink, nil)
	})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}

	archs := predict.AllArchs()
	results := map[KernelMode][]predict.Result{}
	for _, mode := range []KernelMode{KernelRef, KernelFlat} {
		x, err := NewExecutor(string(mode), obs.New("test"))
		if err != nil {
			t.Fatalf("NewExecutor(%s): %v", mode, err)
		}
		for _, arch := range archs {
			r, err := x.Simulate(arch, w.Prog, prof, rec)
			if err != nil {
				t.Fatalf("%s/%s: Simulate: %v", mode, arch, err)
			}
			results[mode] = append(results[mode], r)
		}
		st := x.Stats()
		if st.Mode != string(mode) {
			t.Errorf("%s: Stats.Mode = %q", mode, st.Mode)
		}
		if st.Cells != uint64(len(archs)) {
			t.Errorf("%s: Stats.Cells = %d, want %d", mode, st.Cells, len(archs))
		}
		if want := uint64(len(archs)) * uint64(len(rec.Events)); st.Events != want {
			t.Errorf("%s: Stats.Events = %d, want %d", mode, st.Events, want)
		}
		if st.CompileNs <= 0 || st.RunNs <= 0 {
			t.Errorf("%s: phase split not populated: compile %dns, run %dns", mode, st.CompileNs, st.RunNs)
		}
	}
	for i, arch := range archs {
		if results[KernelRef][i] != results[KernelFlat][i] {
			t.Errorf("%s: ref and flat executors disagree:\n ref  %+v\n flat %+v",
				arch, results[KernelRef][i], results[KernelFlat][i])
		}
	}
}

// TestExecutorSimulateErrors verifies both modes surface construction
// failures (LIKELY without a profile) as errors, not panics.
func TestExecutorSimulateErrors(t *testing.T) {
	w, err := workload.ByName("eqntott", workload.Config{Scale: 0.02})
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	rec, err := Record(func(sink trace.Sink) (uint64, error) {
		return w.Run(w.Prog, nil, sink, nil)
	})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	for _, mode := range []KernelMode{KernelRef, KernelFlat} {
		x, err := NewExecutor(string(mode), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := x.Simulate(predict.ArchLikely, w.Prog, nil, rec); err == nil {
			t.Errorf("%s: Simulate(likely, nil profile) succeeded", mode)
		}
	}
}
