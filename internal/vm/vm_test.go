package vm

import (
	"strings"
	"testing"

	"balign/internal/asm"
	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
)

func mustRun(t *testing.T, src string, setup func(*VM)) (*VM, Result, *trace.Recorder) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	vm := New(prog)
	if setup != nil {
		setup(vm)
	}
	var rec trace.Recorder
	res, err := vm.Run(&rec, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return vm, res, &rec
}

func TestArithmetic(t *testing.T) {
	vm, _, _ := mustRun(t, `
proc main
    li   r1, 6
    li   r2, 7
    mul  r3, r1, r2      ; 42
    addi r4, r3, -2      ; 40
    sub  r5, r4, r1      ; 34
    div  r6, r4, r2      ; 5
    mod  r7, r4, r2      ; 5
    and  r8, r1, r2      ; 6
    or   r9, r1, r2      ; 7
    xor  r10, r1, r2     ; 1
    li   r11, 2
    shl  r12, r1, r11    ; 24
    shr  r13, r12, r11   ; 6
    slt  r14, r1, r2     ; 1
    slti r15, r2, 3      ; 0
    muli r16, r1, 10     ; 60
    andi r17, r2, 3      ; 3
    mov  r18, r16
    halt
endproc
`, nil)
	want := map[int]int64{3: 42, 4: 40, 5: 34, 6: 5, 7: 5, 8: 6, 9: 7, 10: 1,
		12: 24, 13: 6, 14: 1, 15: 0, 16: 60, 17: 3, 18: 60}
	for r, v := range want {
		if got := vm.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestDivModByZero(t *testing.T) {
	vm, _, _ := mustRun(t, `
proc main
    li r1, 10
    li r2, 0
    div r3, r1, r2
    mod r4, r1, r2
    halt
endproc
`, nil)
	if vm.Reg(3) != 0 || vm.Reg(4) != 0 {
		t.Errorf("div/mod by zero = %d/%d, want 0/0", vm.Reg(3), vm.Reg(4))
	}
}

func TestLoadStore(t *testing.T) {
	vm, _, _ := mustRun(t, `
mem 16
proc main
    li r1, 3
    li r2, 99
    st r2, 2(r1)    ; mem[5] = 99
    ld r3, 2(r1)
    halt
endproc
`, nil)
	if vm.Mem()[5] != 99 || vm.Reg(3) != 99 {
		t.Errorf("mem[5] = %d, r3 = %d, want 99/99", vm.Mem()[5], vm.Reg(3))
	}
}

func TestMemoryBoundsErrors(t *testing.T) {
	for _, src := range []string{
		"mem 4\nproc main\n li r1, 100\n ld r2, 0(r1)\n halt\nendproc",
		"mem 4\nproc main\n li r1, -1\n st r1, 0(r1)\n halt\nendproc",
	} {
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		if _, err := New(prog).Run(nil, nil); err == nil ||
			!strings.Contains(err.Error(), "out of bounds") {
			t.Errorf("Run = %v, want out-of-bounds error", err)
		}
	}
}

func TestLoopCountsAndTrace(t *testing.T) {
	// Sum 1..10: loop executes 10 times, bnez taken 9 times, fall once.
	_, res, rec := mustRun(t, `
proc main
    li r1, 10
    li r2, 0
loop:
    add r2, r2, r1
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`, nil)
	var taken, fall int
	for _, e := range rec.Events {
		if e.Kind != ir.CondBr {
			continue
		}
		if e.Taken {
			taken++
		} else {
			fall++
		}
	}
	if taken != 9 || fall != 1 {
		t.Errorf("taken/fall = %d/%d, want 9/1", taken, fall)
	}
	// 2 setup + 10 * 3 loop + 1 halt = 33 instructions.
	if res.Instrs != 33 {
		t.Errorf("Instrs = %d, want 33", res.Instrs)
	}
	if !res.Halted {
		t.Error("Halted = false, want true")
	}
}

func TestCallRetEvents(t *testing.T) {
	_, _, rec := mustRun(t, `
proc main
    call f
    call f
    halt
endproc
proc f
    addi r1, r1, 1
    ret
endproc
`, nil)
	var kinds []ir.Kind
	for _, e := range rec.Events {
		kinds = append(kinds, e.Kind)
	}
	want := []ir.Kind{ir.Call, ir.Ret, ir.Call, ir.Ret}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	// Each ret must target the instruction after its call.
	if rec.Events[1].Target != rec.Events[0].Fall {
		t.Errorf("first ret target %#x != call fall %#x", rec.Events[1].Target, rec.Events[0].Fall)
	}
	if rec.Events[3].Target != rec.Events[2].Fall {
		t.Errorf("second ret target %#x != call fall %#x", rec.Events[3].Target, rec.Events[2].Fall)
	}
}

func TestEntryProcReturnEndsProgram(t *testing.T) {
	_, res, _ := mustRun(t, `
proc main
    li r1, 1
    ret
endproc
`, nil)
	if res.Halted {
		t.Error("Halted = true for entry-proc return, want false")
	}
	if res.Instrs != 2 {
		t.Errorf("Instrs = %d, want 2", res.Instrs)
	}
}

func TestIJumpDispatch(t *testing.T) {
	src := `
mem 8
proc main
    ld r1, 0(r0)        ; selector from memory
    ijump r1, [case0, case1, case2]
case0:
    li r2, 100
    halt
case1:
    li r2, 200
    halt
case2:
    li r2, 300
    halt
endproc
`
	for sel, want := range map[int64]int64{0: 100, 1: 200, 2: 300} {
		vm, _, rec := mustRun(t, src, func(v *VM) { v.SetMem(0, []int64{sel}) })
		if vm.Reg(2) != want {
			t.Errorf("sel %d: r2 = %d, want %d", sel, vm.Reg(2), want)
		}
		found := false
		for _, e := range rec.Events {
			if e.Kind == ir.IJump {
				found = true
			}
		}
		if !found {
			t.Errorf("sel %d: no IJump event", sel)
		}
	}
}

func TestIJumpOutOfRange(t *testing.T) {
	prog, err := asm.Assemble(`
proc main
    li r1, 5
    ijump r1, [a]
a:
    halt
endproc
`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if _, err := New(prog).Run(nil, nil); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("Run = %v, want ijump range error", err)
	}
}

func TestMaxStepsGuard(t *testing.T) {
	prog, err := asm.Assemble(`
proc main
spin:
    br spin
endproc
`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	vm := New(prog)
	vm.MaxSteps = 100
	if _, err := vm.Run(nil, nil); err == nil || !strings.Contains(err.Error(), "steps") {
		t.Errorf("Run = %v, want step-limit error", err)
	}
}

func TestAllConditionalOps(t *testing.T) {
	// Each branch below is taken; landing at fail sets r9=1.
	_, _, _ = mustRun(t, "proc main\n halt\nendproc", nil) // keep imports honest
	src := `
proc main
    li r1, 1
    li r2, 2
    beq r1, r1, t1
    br fail
t1: bne r1, r2, t2
    br fail
t2: blt r1, r2, t3
    br fail
t3: ble r1, r1, t4
    br fail
t4: bgt r2, r1, t5
    br fail
t5: bge r2, r2, t6
    br fail
t6: li r3, 0
    beqz r3, t7
    br fail
t7: bnez r1, t8
    br fail
t8: li r4, -1
    bltz r4, t9
    br fail
t9: bgez r3, done
    br fail
fail:
    li r9, 1
    halt
done:
    li r9, 0
    halt
endproc
`
	vm, _, _ := mustRun(t, src, nil)
	if vm.Reg(9) != 0 {
		t.Error("a conditional branch evaluated incorrectly (reached fail)")
	}
}

func TestVMEdgeProfileMatchesTrace(t *testing.T) {
	prog, err := asm.Assemble(`
proc main
    li r1, 5
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	col := profile.NewCollector(prog)
	var c trace.Counter
	res, err := New(prog).Run(&c, col)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pf := col.Profile()
	if pf.Instrs != res.Instrs {
		t.Errorf("profile instrs %d != result instrs %d", pf.Instrs, res.Instrs)
	}
	pp := pf.Procs["main"]
	if pp.Weight(1, 1) != 4 {
		t.Errorf("loop back edge weight = %d, want 4", pp.Weight(1, 1))
	}
	if pp.Weight(1, 2) != 1 {
		t.Errorf("exit edge weight = %d, want 1", pp.Weight(1, 2))
	}
	if c.CondTaken != 4 || c.CondFall != 1 {
		t.Errorf("trace taken/fall = %d/%d, want 4/1", c.CondTaken, c.CondFall)
	}
}

func TestDeterministicReplay(t *testing.T) {
	src := `
mem 32
proc main
    li r1, 17
    li r3, 0
loop:
    mod r2, r1, r3
    addi r3, r3, 1
    blt r3, r1, loop
    halt
endproc
`
	run := func() []trace.Event {
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		var rec trace.Recorder
		if _, err := New(prog).Run(&rec, nil); err != nil {
			t.Fatalf("run: %v", err)
		}
		return rec.Events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestVMTakenTargetStatic(t *testing.T) {
	// The VM must report the static taken target on both outcomes of a
	// conditional branch.
	prog, err := asm.Assemble(`
proc main
    li r1, 2
loop:
    addi r1, r1, -1
    bnez r1, loop
    halt
endproc
`)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Recorder
	if _, err := New(prog).Run(&rec, nil); err != nil {
		t.Fatal(err)
	}
	loopAddr := prog.Procs[0].Blocks[1].Addr
	var sawTaken, sawFall bool
	for _, e := range rec.Events {
		if e.Kind != ir.CondBr {
			continue
		}
		if e.TakenTarget != loopAddr {
			t.Errorf("TakenTarget = %#x, want %#x (taken=%v)", e.TakenTarget, loopAddr, e.Taken)
		}
		if e.Taken {
			sawTaken = true
			if e.Target != loopAddr {
				t.Errorf("taken event Target = %#x, want %#x", e.Target, loopAddr)
			}
		} else {
			sawFall = true
			if e.Target == loopAddr {
				t.Error("fall event Target should be the next block")
			}
		}
	}
	if !sawTaken || !sawFall {
		t.Fatalf("need both outcomes: taken=%v fall=%v", sawTaken, sawFall)
	}
}
