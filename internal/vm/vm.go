// Package vm interprets ir.Programs, producing the dynamic control-transfer
// event stream and edge profile that real instrumented execution (ATOM in
// the paper) would produce. The VM is the ground truth for workload kernels
// with real semantics: the same program aligned two different ways must
// compute the same result, and the VM's traces are what the predictor
// simulators consume.
package vm

import (
	"fmt"

	"balign/internal/ir"
	"balign/internal/trace"
)

// DefaultMaxSteps bounds execution to catch runaway programs.
const DefaultMaxSteps = 1 << 32

// Result summarizes one execution.
type Result struct {
	// Instrs is the number of instructions executed.
	Instrs uint64
	// Halted is true when the program executed a halt (as opposed to the
	// entry procedure returning).
	Halted bool
}

// VM executes a program. The zero value is not usable; call New.
type VM struct {
	prog     *ir.Program
	regs     [ir.NumRegs]int64
	mem      []int64
	MaxSteps uint64
}

// New returns a VM for prog with zeroed registers and memory of
// prog.MemWords words. The program must have addresses assigned.
func New(prog *ir.Program) *VM {
	return &VM{
		prog:     prog,
		mem:      make([]int64, prog.MemWords),
		MaxSteps: DefaultMaxSteps,
	}
}

// Reg returns the value of register r.
func (vm *VM) Reg(r int) int64 { return vm.regs[r] }

// SetReg sets register r to v (useful for passing inputs to kernels).
func (vm *VM) SetReg(r int, v int64) { vm.regs[r] = v }

// Mem returns the VM's data memory.
func (vm *VM) Mem() []int64 { return vm.mem }

// SetMem stores words into memory starting at the given word offset.
func (vm *VM) SetMem(offset int, words []int64) {
	copy(vm.mem[offset:], words)
}

type frame struct {
	proc  int
	block ir.BlockID
	index int
}

// Run executes the program from its entry procedure until halt, return from
// the entry procedure, or an execution error. Break events go to sink and
// CFG observations to edges; either may be nil.
func (vm *VM) Run(sink trace.Sink, edges trace.EdgeSink) (Result, error) {
	if sink == nil {
		sink = trace.SinkFunc(func(trace.Event) {})
	}
	if edges == nil {
		edges = trace.NopEdgeSink{}
	}
	var res Result
	var stack []frame
	proc := vm.prog.EntryProc
	block := vm.prog.Procs[proc].Entry()
	index := 0

	for {
		if res.Instrs >= vm.MaxSteps {
			return res, fmt.Errorf("vm: exceeded %d steps (runaway program?)", vm.MaxSteps)
		}
		p := vm.prog.Procs[proc]
		b := p.Blocks[block]
		if index >= len(b.Instrs) {
			next := block + 1
			if int(next) >= len(p.Blocks) {
				return res, fmt.Errorf("vm: proc %q: fell off the end from block %d", p.Name, block)
			}
			edges.Edge(proc, block, next)
			block, index = next, 0
			continue
		}
		in := &b.Instrs[index]
		pc := b.Addr + uint64(index)*ir.InstrBytes
		res.Instrs++
		edges.Instrs(1)

		switch in.Op {
		case ir.OpNop:
			index++
		case ir.OpLi:
			vm.regs[in.Rd] = in.Imm
			index++
		case ir.OpMov:
			vm.regs[in.Rd] = vm.regs[in.Rs]
			index++
		case ir.OpAdd:
			vm.regs[in.Rd] = vm.regs[in.Rs] + vm.regs[in.Rt]
			index++
		case ir.OpSub:
			vm.regs[in.Rd] = vm.regs[in.Rs] - vm.regs[in.Rt]
			index++
		case ir.OpMul:
			vm.regs[in.Rd] = vm.regs[in.Rs] * vm.regs[in.Rt]
			index++
		case ir.OpDiv:
			if vm.regs[in.Rt] == 0 {
				vm.regs[in.Rd] = 0
			} else {
				vm.regs[in.Rd] = vm.regs[in.Rs] / vm.regs[in.Rt]
			}
			index++
		case ir.OpMod:
			if vm.regs[in.Rt] == 0 {
				vm.regs[in.Rd] = 0
			} else {
				vm.regs[in.Rd] = vm.regs[in.Rs] % vm.regs[in.Rt]
			}
			index++
		case ir.OpAnd:
			vm.regs[in.Rd] = vm.regs[in.Rs] & vm.regs[in.Rt]
			index++
		case ir.OpOr:
			vm.regs[in.Rd] = vm.regs[in.Rs] | vm.regs[in.Rt]
			index++
		case ir.OpXor:
			vm.regs[in.Rd] = vm.regs[in.Rs] ^ vm.regs[in.Rt]
			index++
		case ir.OpShl:
			vm.regs[in.Rd] = vm.regs[in.Rs] << (uint64(vm.regs[in.Rt]) & 63)
			index++
		case ir.OpShr:
			vm.regs[in.Rd] = vm.regs[in.Rs] >> (uint64(vm.regs[in.Rt]) & 63)
			index++
		case ir.OpAddi:
			vm.regs[in.Rd] = vm.regs[in.Rs] + in.Imm
			index++
		case ir.OpMuli:
			vm.regs[in.Rd] = vm.regs[in.Rs] * in.Imm
			index++
		case ir.OpAndi:
			vm.regs[in.Rd] = vm.regs[in.Rs] & in.Imm
			index++
		case ir.OpSlt:
			vm.regs[in.Rd] = b2i(vm.regs[in.Rs] < vm.regs[in.Rt])
			index++
		case ir.OpSlti:
			vm.regs[in.Rd] = b2i(vm.regs[in.Rs] < in.Imm)
			index++
		case ir.OpLd:
			addr := vm.regs[in.Rs] + in.Imm
			if addr < 0 || addr >= int64(len(vm.mem)) {
				return res, fmt.Errorf("vm: proc %q pc %#x: load out of bounds: %d (mem %d words)",
					p.Name, pc, addr, len(vm.mem))
			}
			vm.regs[in.Rd] = vm.mem[addr]
			index++
		case ir.OpSt:
			addr := vm.regs[in.Rs] + in.Imm
			if addr < 0 || addr >= int64(len(vm.mem)) {
				return res, fmt.Errorf("vm: proc %q pc %#x: store out of bounds: %d (mem %d words)",
					p.Name, pc, addr, len(vm.mem))
			}
			vm.mem[addr] = vm.regs[in.Rd]
			index++
		case ir.OpCmovz:
			if vm.regs[in.Rt] == 0 {
				vm.regs[in.Rd] = vm.regs[in.Rs]
			}
			index++
		case ir.OpCmovnz:
			if vm.regs[in.Rt] != 0 {
				vm.regs[in.Rd] = vm.regs[in.Rs]
			}
			index++

		case ir.OpBeq, ir.OpBne, ir.OpBlt, ir.OpBle, ir.OpBgt, ir.OpBge,
			ir.OpBeqz, ir.OpBnez, ir.OpBltz, ir.OpBgez:
			taken := vm.evalCond(in)
			var dest ir.BlockID
			if taken {
				dest = in.TargetBlock
			} else {
				dest = block + 1
				if int(dest) >= len(p.Blocks) {
					return res, fmt.Errorf("vm: proc %q: conditional fall-through off the end of block %d",
						p.Name, block)
				}
			}
			sink.Event(trace.Event{
				PC: pc, Kind: ir.CondBr, Taken: taken,
				Target:      p.Blocks[dest].Addr,
				TakenTarget: p.Blocks[in.TargetBlock].Addr,
				Fall:        pc + ir.InstrBytes,
			})
			edges.Branch(proc, block, taken)
			edges.Edge(proc, block, dest)
			block, index = dest, 0

		case ir.OpBr:
			dest := in.TargetBlock
			sink.Event(trace.Event{
				PC: pc, Kind: ir.Br, Taken: true,
				Target: p.Blocks[dest].Addr, TakenTarget: p.Blocks[dest].Addr,
				Fall: pc + ir.InstrBytes,
			})
			edges.Edge(proc, block, dest)
			block, index = dest, 0

		case ir.OpCall:
			callee := vm.prog.Procs[in.TargetProc]
			calleeAddr := callee.Blocks[callee.Entry()].Addr
			sink.Event(trace.Event{
				PC: pc, Kind: ir.Call, Taken: true,
				Target: calleeAddr, TakenTarget: calleeAddr,
				Fall: pc + ir.InstrBytes,
			})
			stack = append(stack, frame{proc, block, index + 1})
			proc, block, index = in.TargetProc, callee.Entry(), 0

		case ir.OpIJump:
			sel := vm.regs[in.Rd]
			if sel < 0 || sel >= int64(len(in.Targets)) {
				return res, fmt.Errorf("vm: proc %q pc %#x: ijump index %d out of range [0,%d)",
					p.Name, pc, sel, len(in.Targets))
			}
			dest := in.Targets[sel]
			sink.Event(trace.Event{
				PC: pc, Kind: ir.IJump, Taken: true,
				Target: p.Blocks[dest].Addr, TakenTarget: p.Blocks[dest].Addr,
				Fall: pc + ir.InstrBytes,
			})
			edges.Edge(proc, block, dest)
			block, index = dest, 0

		case ir.OpRet:
			if len(stack) == 0 {
				return res, nil // entry procedure returned: normal exit
			}
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			retP := vm.prog.Procs[fr.proc]
			retB := retP.Blocks[fr.block]
			retAddr := retB.Addr + uint64(fr.index)*ir.InstrBytes
			sink.Event(trace.Event{
				PC: pc, Kind: ir.Ret, Taken: true,
				Target: retAddr, TakenTarget: retAddr,
				Fall: pc + ir.InstrBytes,
			})
			proc, block, index = fr.proc, fr.block, fr.index

		case ir.OpHalt:
			res.Halted = true
			return res, nil

		default:
			return res, fmt.Errorf("vm: proc %q pc %#x: unknown opcode %v", p.Name, pc, in.Op)
		}
	}
}

func (vm *VM) evalCond(in *ir.Instr) bool {
	a := vm.regs[in.Rd]
	switch in.Op {
	case ir.OpBeq:
		return a == vm.regs[in.Rs]
	case ir.OpBne:
		return a != vm.regs[in.Rs]
	case ir.OpBlt:
		return a < vm.regs[in.Rs]
	case ir.OpBle:
		return a <= vm.regs[in.Rs]
	case ir.OpBgt:
		return a > vm.regs[in.Rs]
	case ir.OpBge:
		return a >= vm.regs[in.Rs]
	case ir.OpBeqz:
		return a == 0
	case ir.OpBnez:
		return a != 0
	case ir.OpBltz:
		return a < 0
	case ir.OpBgez:
		return a >= 0
	default:
		panic(fmt.Sprintf("vm: evalCond on %v", in.Op))
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
