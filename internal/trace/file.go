package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"balign/internal/ir"
)

// File format: the magic header followed by one varint-packed record per
// event. Fall is always PC+4 and is not stored; PC is delta-encoded against
// the previous event's PC and Target against the event's own PC (branch
// displacements are short), so typical events take 3-6 bytes instead of 26.
var fileMagic = []byte("BATRACE1")

// FileWriter streams events to an io.Writer in the balign trace format. It
// implements Sink; call Flush when done.
type FileWriter struct {
	w           *bufio.Writer
	lastPC      uint64
	count       uint64
	wroteHeader bool
	err         error
}

// NewFileWriter returns a writer targeting w.
func NewFileWriter(w io.Writer) *FileWriter {
	return &FileWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Event implements Sink. Encoding errors are sticky and reported by Flush.
func (fw *FileWriter) Event(e Event) {
	if fw.err != nil {
		return
	}
	if !fw.wroteHeader {
		if _, err := fw.w.Write(fileMagic); err != nil {
			fw.err = err
			return
		}
		fw.wroteHeader = true
	}
	var buf [3*binary.MaxVarintLen64 + 1]byte
	n := binary.PutVarint(buf[:], int64(e.PC)-int64(fw.lastPC))
	fw.lastPC = e.PC
	// Kind in the low 3 bits, taken flag in bit 3.
	meta := byte(e.Kind) & 0x7
	if e.Taken {
		meta |= 0x8
	}
	buf[n] = meta
	n++
	n += binary.PutVarint(buf[n:], int64(e.Target)-int64(e.PC))
	if e.Kind == ir.CondBr {
		// Conditionals also carry their static taken target (what BT/FNT
		// inspects); for the other kinds it equals Target.
		n += binary.PutVarint(buf[n:], int64(e.TakenTarget)-int64(e.PC))
	}
	if _, err := fw.w.Write(buf[:n]); err != nil {
		fw.err = err
		return
	}
	fw.count++
}

// Count returns the number of events written.
func (fw *FileWriter) Count() uint64 { return fw.count }

// Flush writes buffered data and returns the first error encountered.
func (fw *FileWriter) Flush() error {
	if fw.err != nil {
		return fw.err
	}
	if !fw.wroteHeader {
		if _, err := fw.w.Write(fileMagic); err != nil {
			return err
		}
		fw.wroteHeader = true
	}
	return fw.w.Flush()
}

// ReadFile replays a trace file, invoking fn for every event in order. It
// stops early if fn returns an error.
func ReadFile(r io.Reader, fn func(Event) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != string(fileMagic) {
		return fmt.Errorf("trace: bad magic %q", head)
	}
	var lastPC uint64
	for {
		dpc, err := binary.ReadVarint(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("trace: reading pc: %w", err)
		}
		meta, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("trace: reading meta: %w", err)
		}
		dt, err := binary.ReadVarint(br)
		if err != nil {
			return fmt.Errorf("trace: reading target: %w", err)
		}
		pc := uint64(int64(lastPC) + dpc)
		lastPC = pc
		kind := ir.Kind(meta & 0x7)
		if kind == ir.Op || kind > ir.Halt {
			return fmt.Errorf("trace: invalid event kind %d", kind)
		}
		ev := Event{
			PC:     pc,
			Kind:   kind,
			Taken:  meta&0x8 != 0,
			Target: uint64(int64(pc) + dt),
			Fall:   pc + ir.InstrBytes,
		}
		if kind == ir.CondBr {
			dtt, err := binary.ReadVarint(br)
			if err != nil {
				return fmt.Errorf("trace: reading taken target: %w", err)
			}
			ev.TakenTarget = uint64(int64(pc) + dtt)
		} else {
			ev.TakenTarget = ev.Target
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

// Replay feeds every event of a trace file to a sink.
func Replay(r io.Reader, sink Sink) (uint64, error) {
	var n uint64
	err := ReadFile(r, func(e Event) error {
		sink.Event(e)
		n++
		return nil
	})
	return n, err
}
