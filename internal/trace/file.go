package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"balign/internal/ir"
)

// File format: the magic header followed by one varint-packed record per
// event. Fall is always PC+4 and is not stored; PC is delta-encoded against
// the previous event's PC and Target against the event's own PC (branch
// displacements are short), so typical events take 3-6 bytes instead of 26.
var fileMagic = []byte("BATRACE1")

// FileWriter streams events to an io.Writer in the balign trace format. It
// implements Sink; call Flush when done.
type FileWriter struct {
	w           *bufio.Writer
	lastPC      uint64
	count       uint64
	wroteHeader bool
	err         error
}

// NewFileWriter returns a writer targeting w.
func NewFileWriter(w io.Writer) *FileWriter {
	return &FileWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// Event implements Sink. Encoding errors are sticky and reported by Flush.
func (fw *FileWriter) Event(e Event) {
	if fw.err != nil {
		return
	}
	if !fw.wroteHeader {
		if _, err := fw.w.Write(fileMagic); err != nil {
			fw.err = err
			return
		}
		fw.wroteHeader = true
	}
	var buf [3*binary.MaxVarintLen64 + 1]byte
	n := binary.PutVarint(buf[:], int64(e.PC)-int64(fw.lastPC))
	fw.lastPC = e.PC
	// Kind in the low 3 bits, taken flag in bit 3.
	meta := byte(e.Kind) & 0x7
	if e.Taken {
		meta |= 0x8
	}
	buf[n] = meta
	n++
	n += binary.PutVarint(buf[n:], int64(e.Target)-int64(e.PC))
	if e.Kind == ir.CondBr {
		// Conditionals also carry their static taken target (what BT/FNT
		// inspects); for the other kinds it equals Target.
		n += binary.PutVarint(buf[n:], int64(e.TakenTarget)-int64(e.PC))
	}
	if _, err := fw.w.Write(buf[:n]); err != nil {
		fw.err = err
		return
	}
	fw.count++
}

// Count returns the number of events written.
func (fw *FileWriter) Count() uint64 { return fw.count }

// Flush writes buffered data and returns the first error encountered.
func (fw *FileWriter) Flush() error {
	if fw.err != nil {
		return fw.err
	}
	if !fw.wroteHeader {
		if _, err := fw.w.Write(fileMagic); err != nil {
			return err
		}
		fw.wroteHeader = true
	}
	return fw.w.Flush()
}

// minEventBytes is the smallest possible encoded event: a one-byte pc
// delta, the meta byte, and a one-byte target delta. It bounds how many
// events any input of a known size can possibly contain, which is what
// ReadAll's pre-allocation trusts instead of the input's own claims.
const minEventBytes = 3

// offsetReader tracks the absolute byte offset of a buffered stream so
// decode errors can name the offending position.
type offsetReader struct {
	br  *bufio.Reader
	off int64
}

func (r *offsetReader) readByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

// readVarint decodes one zig-zag varint with binary.ReadVarint's exact
// semantics (io.EOF only when no byte was consumed, io.ErrUnexpectedEOF
// mid-value, overflow after more than 10 bytes), advancing the offset by
// the bytes consumed.
func (r *offsetReader) readVarint() (int64, error) {
	var ux uint64
	var s uint
	for i := 0; ; i++ {
		b, err := r.br.ReadByte()
		if err != nil {
			if i > 0 && errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		r.off++
		if i == binary.MaxVarintLen64 {
			return 0, errors.New("varint overflows a 64-bit integer")
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, errors.New("varint overflows a 64-bit integer")
			}
			ux |= uint64(b) << s
			x := int64(ux >> 1)
			if ux&1 != 0 {
				x = ^x
			}
			return x, nil
		}
		ux |= uint64(b&0x7f) << s
		s += 7
	}
}

// ReadFile replays a trace file, invoking fn for every event in order. It
// stops early if fn returns an error. Decode errors carry the byte offset
// of the field that failed.
func ReadFile(r io.Reader, fn func(Event) error) error {
	or := &offsetReader{br: bufio.NewReaderSize(r, 1<<16)}
	head := make([]byte, len(fileMagic))
	if n, err := io.ReadFull(or.br, head); err != nil {
		return fmt.Errorf("trace: reading header at offset %d: %w", n, err)
	}
	or.off = int64(len(head))
	if string(head) != string(fileMagic) {
		return fmt.Errorf("trace: bad magic %q at offset 0", head)
	}
	var lastPC uint64
	for {
		fieldOff := or.off
		dpc, err := or.readVarint()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("trace: reading pc at offset %d: %w", fieldOff, err)
		}
		fieldOff = or.off
		meta, err := or.readByte()
		if err != nil {
			return fmt.Errorf("trace: reading meta at offset %d: %w", fieldOff, err)
		}
		fieldOff = or.off
		dt, err := or.readVarint()
		if err != nil {
			return fmt.Errorf("trace: reading target at offset %d: %w", fieldOff, err)
		}
		pc := uint64(int64(lastPC) + dpc)
		lastPC = pc
		kind := ir.Kind(meta & 0x7)
		if kind == ir.Op || kind > ir.Halt {
			return fmt.Errorf("trace: invalid event kind %d at offset %d", kind, fieldOff-1)
		}
		ev := Event{
			PC:     pc,
			Kind:   kind,
			Taken:  meta&0x8 != 0,
			Target: uint64(int64(pc) + dt),
			Fall:   pc + ir.InstrBytes,
		}
		if kind == ir.CondBr {
			fieldOff = or.off
			dtt, err := or.readVarint()
			if err != nil {
				return fmt.Errorf("trace: reading taken target at offset %d: %w", fieldOff, err)
			}
			ev.TakenTarget = uint64(int64(pc) + dtt)
		} else {
			ev.TakenTarget = ev.Target
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

// maxPreallocEvents caps ReadAll's up-front allocation (~48 MiB of events)
// regardless of how large the input claims to be; bigger traces grow by
// appending.
const maxPreallocEvents = 1 << 20

// ReadAll decodes an entire trace into memory. sizeHint, when positive, is
// the input's total size in bytes (e.g. from os.FileInfo); the event slice
// is pre-allocated for at most the number of events that many bytes can
// encode — never more than a fixed cap — so a corrupt or hostile input
// cannot induce an allocation larger than itself.
func ReadAll(r io.Reader, sizeHint int64) ([]Event, error) {
	var capHint int64
	if sizeHint > int64(len(fileMagic)) {
		capHint = (sizeHint - int64(len(fileMagic))) / minEventBytes
	}
	if capHint > maxPreallocEvents {
		capHint = maxPreallocEvents
	}
	events := make([]Event, 0, capHint)
	err := ReadFile(r, func(e Event) error {
		events = append(events, e)
		return nil
	})
	return events, err
}

// Replay feeds every event of a trace file to a sink.
func Replay(r io.Reader, sink Sink) (uint64, error) {
	var n uint64
	err := ReadFile(r, func(e Event) error {
		sink.Event(e)
		n++
		return nil
	})
	return n, err
}
