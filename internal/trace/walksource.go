package trace

import (
	"fmt"
	"math/rand"

	"balign/internal/ir"
)

// WalkSource is the compiled, suspendable form of Walker: the same seeded
// random walk, but emitting packed Batch words instead of Events through a
// Sink. Compilation collapses each basic block into a short list of steps
// (runs of straight-line instructions folded into a counter, one step per
// control transfer with its batch words and destinations precomputed), so
// the per-event work is a step dispatch plus an int32 append rather than
// per-instruction switching, Event construction and two interface calls.
//
// The walk is byte-identical to Walker.Run over the same program, model
// and seed: decoding the produced batches through the Layout reproduces
// the Walker's event stream field for field, because the step interpreter
// preserves the Walker's exact RNG/Model call sequence and its
// MaxInstrs/MaxRuns/restart/depth-cap semantics (including the corner
// where a depth-capped call skips the instruction-budget check).
type WalkSource struct {
	steps     [][][]walkStep // per proc, per block
	model     Model
	rng       *rand.Rand
	maxInstrs uint64
	maxRuns   int
	maxDepth  int
	batchCap  int

	entryProc  int32
	entryBlock ir.BlockID

	// Suspended walk state between Fill calls.
	stack  []walkFrame
	proc   int32
	block  ir.BlockID
	step   int32
	instrs uint64
	runs   int
	done   bool
}

// walkOp discriminates the compiled step kinds.
type walkOp uint8

const (
	walkCond walkOp = iota
	walkBr
	walkCall
	walkIJump
	walkRet
	walkHalt
	walkFall // ran past the block's instructions: fall to the next block
	walkEnd  // ran past the proc's last block: restart the program
)

// walkStep is one compiled unit of a block: the straight-line instructions
// since the previous transfer (ops) followed by at most one control
// transfer with everything about it precomputed.
type walkStep struct {
	op  walkOp
	ops uint32 // straight-line instructions executed before the transfer
	// forceTaken marks a conditional whose fall-through would run off the
	// proc's block list; the Walker forces those taken (RNG still drawn).
	forceTaken bool
	opTaken    int32 // packed batch word for the taken outcome
	opFall     int32 // packed batch word for a conditional's fall-through
	destTaken  ir.BlockID
	destFall   ir.BlockID
	calleeProc int32
	fallPC     uint64 // site PC + 4: a call's return address
	targets    []walkTarget
}

// walkTarget is one precomputed indirect-jump destination.
type walkTarget struct {
	block ir.BlockID
	addr  uint64
}

// walkFrame is one suspended call site.
type walkFrame struct {
	proc    int32
	block   ir.BlockID
	step    int32
	retAddr uint64
}

// NewWalkSource compiles w's program against lay and returns a Source
// producing the exact batch-packed form of the event stream w.Run would
// emit. batchCap <= 0 means DefaultBatchCap. The walker spec is captured
// at construction; the Source does not observe later mutation of w.
func NewWalkSource(w *Walker, lay *Layout, batchCap int) (*WalkSource, error) {
	if batchCap <= 0 {
		batchCap = DefaultBatchCap
	}
	maxDepth := w.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	prog := w.Prog
	if prog == nil {
		return nil, fmt.Errorf("trace: nil program")
	}
	s := &WalkSource{
		model:      w.Model,
		rng:        rand.New(rand.NewSource(w.Seed)),
		maxInstrs:  w.MaxInstrs,
		maxRuns:    w.MaxRuns,
		maxDepth:   maxDepth,
		batchCap:   batchCap,
		entryProc:  int32(prog.EntryProc),
		entryBlock: prog.Procs[prog.EntryProc].Entry(),
	}
	s.steps = make([][][]walkStep, len(prog.Procs))
	for pi, p := range prog.Procs {
		blocks := make([][]walkStep, len(p.Blocks))
		for bi, b := range p.Blocks {
			steps, err := compileBlock(prog, lay, pi, bi, b, p)
			if err != nil {
				return nil, err
			}
			blocks[bi] = steps
		}
		s.steps[pi] = blocks
	}
	s.proc = s.entryProc
	s.block = s.entryBlock
	return s, nil
}

// compileBlock folds one block's instructions into its step list. Every
// block ends with a trailing walkFall/walkEnd step carrying the
// straight-line instructions after its last transfer, so resuming past the
// final instruction (a call in last position, or an empty block) follows
// the Walker's fall-through path.
func compileBlock(prog *ir.Program, lay *Layout, pi, bi int, b *ir.Block, p *ir.Proc) ([]walkStep, error) {
	var steps []walkStep
	ops := uint32(0)
	for ii := range b.Instrs {
		in := &b.Instrs[ii]
		kind := in.Kind()
		if kind == ir.Op {
			ops++
			continue
		}
		pc := b.Addr + uint64(ii)*ir.InstrBytes
		st := walkStep{ops: ops, fallPC: pc + ir.InstrBytes}
		ops = 0
		if kind != ir.Halt {
			si, ok := lay.Lookup(pc)
			if !ok {
				return nil, fmt.Errorf("trace: walk site pc %#x (kind %v) missing from layout", pc, kind)
			}
			st.opTaken = si<<OpShift | int32(kind)<<1 | 1
			st.opFall = si<<OpShift | int32(kind)<<1
		}
		switch kind {
		case ir.CondBr:
			st.op = walkCond
			st.destTaken = in.TargetBlock
			if bi+1 >= len(p.Blocks) {
				st.forceTaken = true
			} else {
				st.destFall = ir.BlockID(bi + 1)
			}
		case ir.Br:
			st.op = walkBr
			st.destTaken = in.TargetBlock
		case ir.Call:
			st.op = walkCall
			st.calleeProc = int32(in.TargetProc)
			st.destTaken = prog.Procs[in.TargetProc].Entry()
		case ir.IJump:
			st.op = walkIJump
			st.targets = make([]walkTarget, len(in.Targets))
			for ti, tb := range in.Targets {
				st.targets[ti] = walkTarget{block: tb, addr: p.Blocks[tb].Addr}
			}
		case ir.Ret:
			st.op = walkRet
		case ir.Halt:
			st.op = walkHalt
		default:
			return nil, fmt.Errorf("trace: walk compile hit unknown kind %v", kind)
		}
		steps = append(steps, st)
	}
	tail := walkStep{ops: ops}
	if bi+1 < len(p.Blocks) {
		tail.op = walkFall
		tail.destFall = ir.BlockID(bi + 1)
	} else {
		tail.op = walkEnd
	}
	return append(steps, tail), nil
}

// Fill implements Source, resuming the suspended walk and packing events
// into b until the batch is full or the walk ends.
func (s *WalkSource) Fill(b *Batch) (bool, error) {
	b.Reset()
	if s.done {
		return false, nil
	}
	var (
		procs     = s.steps
		model     = s.model
		rng       = s.rng
		max       = s.maxInstrs
		maxRuns   = s.maxRuns
		maxDepth  = s.maxDepth
		batchCap  = s.batchCap
		stack     = s.stack
		proc      = s.proc
		block     = s.block
		stepIdx   = s.step
		instrs    = s.instrs
		runs      = s.runs
		done      = false
		blockStep = procs[proc][block]
	)
loop:
	for {
		if len(b.Ops) >= batchCap {
			break
		}
		st := &blockStep[stepIdx]
		if st.ops != 0 {
			// The Walker checks the instruction budget after every
			// instruction, so a straight-line run executes until the budget
			// is reached — or exactly one instruction if a depth-capped
			// call already overshot it.
			if instrs >= max {
				instrs++
				done = true
				break
			}
			if need := max - instrs; uint64(st.ops) >= need {
				instrs = max
				done = true
				break
			}
			instrs += uint64(st.ops)
		}
		switch st.op {
		case walkCond:
			instrs++
			taken := rng.Float64() < model.TakenProb(int(proc), block)
			if st.forceTaken {
				taken = true
			}
			if taken {
				b.Ops = append(b.Ops, st.opTaken)
				block = st.destTaken
			} else {
				b.Ops = append(b.Ops, st.opFall)
				block = st.destFall
			}
			blockStep = procs[proc][block]
			stepIdx = 0
			if instrs >= max {
				done = true
				break loop
			}

		case walkBr:
			instrs++
			b.Ops = append(b.Ops, st.opTaken)
			block = st.destTaken
			blockStep = procs[proc][block]
			stepIdx = 0
			if instrs >= max {
				done = true
				break loop
			}

		case walkCall:
			instrs++
			b.Ops = append(b.Ops, st.opTaken)
			if len(stack) >= maxDepth {
				// Depth cap: skip the callee body. The Walker's continue
				// bypasses its budget check here; preserve that.
				stepIdx++
				continue
			}
			stack = append(stack, walkFrame{proc: proc, block: block, step: stepIdx + 1, retAddr: st.fallPC})
			proc = st.calleeProc
			block = st.destTaken
			blockStep = procs[proc][block]
			stepIdx = 0
			if instrs >= max {
				done = true
				break loop
			}

		case walkIJump:
			instrs++
			idx := pickIndex(rng, model.IJumpWeights(int(proc), block), len(st.targets))
			t := st.targets[idx]
			b.Ops = append(b.Ops, st.opTaken)
			b.Targets = append(b.Targets, t.addr)
			block = t.block
			blockStep = procs[proc][block]
			stepIdx = 0
			if instrs >= max {
				done = true
				break loop
			}

		case walkRet:
			instrs++
			if len(stack) == 0 {
				// Entry procedure returned: one complete run, no event.
				runs++
				if instrs >= max || (maxRuns > 0 && runs >= maxRuns) {
					done = true
					break loop
				}
				proc, block, stepIdx = s.entryProc, s.entryBlock, 0
				blockStep = procs[proc][block]
				continue
			}
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			b.Ops = append(b.Ops, st.opTaken)
			b.Targets = append(b.Targets, fr.retAddr)
			proc, block, stepIdx = fr.proc, fr.block, fr.step
			blockStep = procs[proc][block]
			if instrs >= max {
				done = true
				break loop
			}

		case walkHalt:
			instrs++
			runs++
			if instrs >= max || (maxRuns > 0 && runs >= maxRuns) {
				done = true
				break loop
			}
			stack = stack[:0]
			proc, block, stepIdx = s.entryProc, s.entryBlock, 0
			blockStep = procs[proc][block]

		case walkFall:
			block = st.destFall
			blockStep = procs[proc][block]
			stepIdx = 0

		case walkEnd:
			// Ran off the proc's block list: the Walker treats a malformed
			// layout as program end and restarts (counting a run, no
			// instruction).
			runs++
			if instrs >= max || (maxRuns > 0 && runs >= maxRuns) {
				done = true
				break loop
			}
			stack = stack[:0]
			proc, block, stepIdx = s.entryProc, s.entryBlock, 0
			blockStep = procs[proc][block]
		}
	}
	s.stack = stack
	s.proc, s.block, s.step = proc, block, stepIdx
	s.instrs, s.runs = instrs, runs
	s.done = done
	return len(b.Ops) > 0, nil
}

// Instrs implements Source.
func (s *WalkSource) Instrs() uint64 { return s.instrs }

// Runs returns the number of complete program runs the walk has finished;
// final once Fill has returned false (the Walker's second return value).
func (s *WalkSource) Runs() int { return s.runs }

// Close implements Source; a WalkSource holds no resources.
func (s *WalkSource) Close() {}
