// Package trace defines the dynamic control-transfer event stream that
// connects program execution (the VM or the synthetic walker) to the branch
// prediction simulators, mirroring what the paper gathered with ATOM.
//
// Every break in control flow — conditional branch, unconditional branch,
// direct call, indirect jump, return — produces one Event carrying the site
// address, the actual destination and, for conditionals, the outcome.
// Predictors consume only this stream, so any producer (real execution,
// profile-faithful random walk) can drive any architecture simulator.
package trace

import "balign/internal/ir"

// Event is one dynamic break in control flow.
type Event struct {
	// PC is the address of the control-transfer instruction.
	PC uint64
	// Kind is the instruction's break kind (CondBr, Br, Call, IJump, Ret).
	Kind ir.Kind
	// Taken reports the outcome of a conditional branch; it is true for all
	// other kinds (they always transfer control).
	Taken bool
	// Target is the address control actually went to.
	Target uint64
	// TakenTarget is the destination encoded in the instruction: for a
	// conditional branch, its taken target regardless of the outcome (the
	// displacement a BT/FNT predictor inspects); for every other kind it
	// equals Target.
	TakenTarget uint64
	// Fall is the address of the next sequential instruction (PC + 4); the
	// fetch unit fetches from here while the branch is decoded.
	Fall uint64
}

// Sink consumes control-transfer events in program order.
type Sink interface {
	Event(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Event implements Sink.
func (f SinkFunc) Event(e Event) { f(e) }

// MultiSink fans one event stream out to several sinks in order.
type MultiSink []Sink

// Event implements Sink.
func (m MultiSink) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// EdgeSink consumes control-flow-graph-level observations: intraprocedural
// block-to-block transitions, conditional branch outcomes and instruction
// counts. Profile collection implements this interface.
type EdgeSink interface {
	// Edge records one traversal of the intraprocedural edge from -> to in
	// procedure procIdx.
	Edge(procIdx int, from, to ir.BlockID)
	// Branch records the outcome of the conditional branch terminating
	// the given block.
	Branch(procIdx int, block ir.BlockID, taken bool)
	// Instrs adds n executed instructions.
	Instrs(n uint64)
}

// NopEdgeSink discards all edge observations.
type NopEdgeSink struct{}

// Edge implements EdgeSink.
func (NopEdgeSink) Edge(int, ir.BlockID, ir.BlockID) {}

// Branch implements EdgeSink.
func (NopEdgeSink) Branch(int, ir.BlockID, bool) {}

// Instrs implements EdgeSink.
func (NopEdgeSink) Instrs(uint64) {}

// Counter is a Sink that tallies events by kind and outcome; it provides the
// raw numbers behind the paper's Table 2 break-mix columns.
type Counter struct {
	Total     uint64
	ByKind    [8]uint64 // indexed by ir.Kind
	CondTaken uint64
	CondFall  uint64
}

// Event implements Sink.
func (c *Counter) Event(e Event) {
	c.Total++
	c.ByKind[e.Kind]++
	if e.Kind == ir.CondBr {
		if e.Taken {
			c.CondTaken++
		} else {
			c.CondFall++
		}
	}
}

// Recorder is a Sink that stores every event; intended for tests and small
// examples, not multi-million-event runs.
type Recorder struct {
	Events []Event
}

// Event implements Sink.
func (r *Recorder) Event(e Event) { r.Events = append(r.Events, e) }
