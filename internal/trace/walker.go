package trace

import (
	"fmt"
	"math/rand"

	"balign/internal/ir"
)

// Model supplies the stochastic behaviour of a program's data-dependent
// control flow: the probability that each conditional branch is taken and
// the distribution over each indirect jump's targets. A Model plus a CFG is
// exactly the information an edge profile captures, so walks driven by a
// profile-derived model reproduce the profiled behaviour statistically.
type Model interface {
	// TakenProb returns the probability in [0,1] that the conditional
	// branch terminating the given block is taken.
	TakenProb(procIdx int, block ir.BlockID) float64
	// IJumpWeights returns relative weights over the indirect jump's
	// Targets slice (same length and order). A nil return means uniform.
	IJumpWeights(procIdx int, block ir.BlockID) []float64
}

// UniformModel is a Model that takes every conditional branch with a fixed
// probability and selects indirect targets uniformly. Useful for tests.
type UniformModel struct{ P float64 }

// TakenProb implements Model.
func (u UniformModel) TakenProb(int, ir.BlockID) float64 { return u.P }

// IJumpWeights implements Model.
func (u UniformModel) IJumpWeights(int, ir.BlockID) []float64 { return nil }

// DefaultMaxDepth is the walker's default call-stack depth cap.
const DefaultMaxDepth = 64

// Walker performs a seeded random walk over a program's control flow graph,
// emitting the same event stream real execution would produce. It stands in
// for tracing workloads whose data we do not have: the walk respects block
// sizes, call structure and the Model's branch statistics, which is all the
// branch-prediction simulators observe.
//
// When the walked program halts or its entry procedure returns, the walk
// restarts from the entry point (a fresh "run") until MaxInstrs have been
// executed, so short programs still produce long traces.
type Walker struct {
	Prog      *ir.Program
	Model     Model
	Seed      int64
	MaxInstrs uint64
	// MaxRuns, when positive, stops the walk after that many complete
	// program runs even if MaxInstrs has not been reached. Comparing an
	// original and an aligned program over the same number of runs makes
	// the comparison work-equivalent: the aligned program is allowed to
	// finish the same work in fewer instructions.
	MaxRuns int
	// MaxDepth caps the call stack; calls at the cap are executed as
	// straight-line instructions (the callee is skipped). Zero means
	// DefaultMaxDepth.
	MaxDepth int
}

type frame struct {
	proc  int
	block ir.BlockID
	index int
}

// Run walks the program, sending break events to sink and CFG observations
// to edges (either may be nil). It returns the number of instructions
// executed and the number of complete program runs.
func (w *Walker) Run(sink Sink, edges EdgeSink) (instrs uint64, runs int) {
	if sink == nil {
		sink = SinkFunc(func(Event) {})
	}
	if edges == nil {
		edges = NopEdgeSink{}
	}
	maxDepth := w.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	rng := rand.New(rand.NewSource(w.Seed))

	var stack []frame
	proc := w.Prog.EntryProc
	block := w.Prog.Procs[proc].Entry()
	index := 0

	restart := func() bool {
		runs++
		if instrs >= w.MaxInstrs {
			return false
		}
		if w.MaxRuns > 0 && runs >= w.MaxRuns {
			return false
		}
		stack = stack[:0]
		proc = w.Prog.EntryProc
		block = w.Prog.Procs[proc].Entry()
		index = 0
		return true
	}

	for {
		p := w.Prog.Procs[proc]
		b := p.Blocks[block]
		if index >= len(b.Instrs) {
			// Empty block or resumed past the end: fall through.
			next := block + 1
			if int(next) >= len(p.Blocks) {
				// Malformed layout; treat as program end.
				if !restart() {
					return instrs, runs
				}
				continue
			}
			edges.Edge(proc, block, next)
			block, index = next, 0
			continue
		}
		in := &b.Instrs[index]
		pc := b.Addr + uint64(index)*ir.InstrBytes
		instrs++
		edges.Instrs(1)

		switch in.Kind() {
		case ir.Op:
			index++

		case ir.Call:
			callee := w.Prog.Procs[in.TargetProc]
			calleeAddr := callee.Blocks[callee.Entry()].Addr
			sink.Event(Event{
				PC: pc, Kind: ir.Call, Taken: true,
				Target: calleeAddr, TakenTarget: calleeAddr,
				Fall: pc + ir.InstrBytes,
			})
			if len(stack) >= maxDepth {
				index++ // depth cap: skip the callee body
				continue
			}
			stack = append(stack, frame{proc, block, index + 1})
			proc, block, index = in.TargetProc, callee.Entry(), 0

		case ir.CondBr:
			taken := rng.Float64() < w.Model.TakenProb(proc, block)
			var dest ir.BlockID
			if taken {
				dest = in.TargetBlock
			} else {
				dest = block + 1
				if int(dest) >= len(p.Blocks) {
					// Fall off the end; treat as not possible -> force taken.
					dest, taken = in.TargetBlock, true
				}
			}
			sink.Event(Event{
				PC: pc, Kind: ir.CondBr, Taken: taken,
				Target:      p.Blocks[dest].Addr,
				TakenTarget: p.Blocks[in.TargetBlock].Addr,
				Fall:        pc + ir.InstrBytes,
			})
			edges.Branch(proc, block, taken)
			edges.Edge(proc, block, dest)
			block, index = dest, 0

		case ir.Br:
			dest := in.TargetBlock
			sink.Event(Event{
				PC: pc, Kind: ir.Br, Taken: true,
				Target: p.Blocks[dest].Addr, TakenTarget: p.Blocks[dest].Addr,
				Fall: pc + ir.InstrBytes,
			})
			edges.Edge(proc, block, dest)
			block, index = dest, 0

		case ir.IJump:
			dest := in.Targets[w.pickTarget(rng, proc, block, len(in.Targets))]
			sink.Event(Event{
				PC: pc, Kind: ir.IJump, Taken: true,
				Target: p.Blocks[dest].Addr, TakenTarget: p.Blocks[dest].Addr,
				Fall: pc + ir.InstrBytes,
			})
			edges.Edge(proc, block, dest)
			block, index = dest, 0

		case ir.Ret:
			if len(stack) == 0 {
				if !restart() {
					return instrs, runs
				}
				continue
			}
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			retP := w.Prog.Procs[fr.proc]
			retB := retP.Blocks[fr.block]
			retAddr := retB.Addr + uint64(fr.index)*ir.InstrBytes
			sink.Event(Event{
				PC: pc, Kind: ir.Ret, Taken: true,
				Target: retAddr, TakenTarget: retAddr,
				Fall: pc + ir.InstrBytes,
			})
			proc, block, index = fr.proc, fr.block, fr.index

		case ir.Halt:
			if !restart() {
				return instrs, runs
			}

		default:
			panic(fmt.Sprintf("trace: walker hit unknown kind %v", in.Kind()))
		}

		if instrs >= w.MaxInstrs {
			return instrs, runs
		}
	}
}

// pickTarget samples an indirect-jump target index using the model weights.
func (w *Walker) pickTarget(rng *rand.Rand, proc int, block ir.BlockID, n int) int {
	return pickIndex(rng, w.Model.IJumpWeights(proc, block), n)
}

// pickIndex samples an index in [0, n) from the given relative weights,
// falling back to uniform when the weights are missing, mis-sized or
// degenerate. Shared by Walker and WalkSource so both consume the RNG
// identically.
func pickIndex(rng *rand.Rand, weights []float64, n int) int {
	if len(weights) != n {
		return rng.Intn(n)
	}
	total := 0.0
	for _, wt := range weights {
		if wt > 0 {
			total += wt
		}
	}
	if total <= 0 {
		return rng.Intn(n)
	}
	x := rng.Float64() * total
	for i, wt := range weights {
		if wt <= 0 {
			continue
		}
		x -= wt
		if x < 0 {
			return i
		}
	}
	return n - 1
}
