package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"balign/internal/ir"
)

// This file is the batch layer of the streaming event pipeline: instead of
// materializing a workload's entire control-transfer history as []Event
// (48 bytes per event, alive until every simulator has replayed it), a
// producer emits fixed-size Batches of packed int32 ops that every consumer
// shares read-only, so peak memory is bounded by the buffer ring rather
// than the trace length.
//
// The encoding reuses the simulation kernel's packed-slot idea: a
// per-program Layout resolves every control-transfer site to a compact id
// once, and each dynamic event is then one int32 — id<<OpShift | kind<<1 |
// taken — plus, for the two kinds whose destination is data-dependent
// (IJump, Ret), one uint64 in a side array. Every other Event field (PC,
// TakenTarget, Fall, a conditional's fall-through target) is a static
// property of the site and lives in the Layout's site table, so batches
// decode back to byte-identical Events.

// Packed-word splits. The Layout's slot table packs id<<SlotShift | kind
// (the kernel's historical encoding); a Batch op additionally carries the
// outcome bit: id<<OpShift | kind<<1 | taken.
const (
	SlotShift = 3
	OpShift   = 4
)

// SiteInfo describes one static control-transfer site of a laid-out
// program: everything about its events that does not depend on the dynamic
// outcome.
type SiteInfo struct {
	// PC is the instruction's address.
	PC uint64
	// TakenTarget is the statically encoded destination: a conditional's
	// taken target, an unconditional branch's destination, a call's callee
	// entry. Zero for IJump and Ret, whose targets are data-dependent.
	TakenTarget uint64
	// FallTarget is the address a conditional branch transfers to when it
	// falls through — the next block's address, which equals Fall except
	// for a conditional that is not its block's final instruction. Zero
	// for every other kind.
	FallTarget uint64
	// Fall is the next sequential instruction address (PC + 4).
	Fall uint64
	// Kind is the site's static break kind (CondBr, Br, Call, IJump, Ret).
	Kind ir.Kind
	// Proc and Block locate the site in the program.
	Proc  int32
	Block ir.BlockID
}

// Layout is the per-program half of the compile split: the dense
// PC-indexed site table shared by every consumer of one program variant's
// event stream (the streaming walker, the batch-encoding sink, and all N
// per-architecture simulation kernels). Compile it once per program
// variant; it is read-only afterwards and safe for concurrent use.
type Layout struct {
	base  uint64
	slots []int32 // id<<SlotShift | kind per instruction slot; -1 empty
	sites []SiteInfo
}

// CompileLayout scans prog's control-transfer instructions into a Layout.
// Addresses must have been assigned (ir.Program.AssignAddresses): the
// table is keyed by instruction slot, and duplicate site addresses are
// reported as errors.
func CompileLayout(prog *ir.Program) (*Layout, error) {
	if prog == nil {
		return nil, fmt.Errorf("trace: nil program")
	}
	lo, hi := addrRange(prog)
	l := &Layout{base: lo}
	slots := uint64(0)
	if hi > lo {
		slots = (hi - lo) / ir.InstrBytes
	}
	l.slots = make([]int32, slots)
	for i := range l.slots {
		l.slots[i] = -1
	}
	for pi, p := range prog.Procs {
		for bi, b := range p.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				kind := in.Kind()
				switch kind {
				case ir.CondBr, ir.Br, ir.Call, ir.IJump, ir.Ret:
				default:
					continue
				}
				pc := b.Addr + uint64(ii)*ir.InstrBytes
				slot := (pc - lo) / ir.InstrBytes
				if pc < lo || slot >= uint64(len(l.slots)) {
					return nil, fmt.Errorf("trace: site pc %#x outside program range [%#x, %#x)", pc, lo, hi)
				}
				if l.slots[slot] != -1 {
					return nil, fmt.Errorf("trace: duplicate site address %#x (addresses not assigned?)", pc)
				}
				s := SiteInfo{
					PC: pc, Fall: pc + ir.InstrBytes,
					Kind: kind, Proc: int32(pi), Block: ir.BlockID(bi),
				}
				switch kind {
				case ir.CondBr:
					s.TakenTarget = p.Blocks[in.TargetBlock].Addr
					if int(bi)+1 < len(p.Blocks) {
						s.FallTarget = p.Blocks[bi+1].Addr
					}
				case ir.Br:
					s.TakenTarget = p.Blocks[in.TargetBlock].Addr
				case ir.Call:
					callee := prog.Procs[in.TargetProc]
					s.TakenTarget = callee.Blocks[callee.Entry()].Addr
				}
				l.slots[slot] = int32(len(l.sites))<<SlotShift | int32(kind)
				l.sites = append(l.sites, s)
			}
		}
	}
	return l, nil
}

// addrRange returns the [lo, hi) address range spanned by prog's
// instructions.
func addrRange(prog *ir.Program) (lo, hi uint64) {
	first := true
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			if len(b.Instrs) == 0 {
				continue
			}
			end := b.Addr + uint64(len(b.Instrs))*ir.InstrBytes
			if first || b.Addr < lo {
				lo = b.Addr
			}
			if first || end > hi {
				hi = end
			}
			first = false
		}
	}
	return lo, hi
}

// Base returns the lowest instruction address of the laid-out program.
func (l *Layout) Base() uint64 { return l.base }

// Slots returns the packed slot table (id<<SlotShift | kind per
// instruction slot, -1 for non-site slots). The slice is the layout's own
// backing store; treat it as read-only.
func (l *Layout) Slots() []int32 { return l.slots }

// Sites returns the site descriptor table in compilation order, read-only.
func (l *Layout) Sites() []SiteInfo { return l.sites }

// NumSites returns the number of compiled control-transfer sites.
func (l *Layout) NumSites() int { return len(l.sites) }

// Lookup resolves a PC to its site id.
func (l *Layout) Lookup(pc uint64) (int32, bool) {
	if pc < l.base || (pc-l.base)%ir.InstrBytes != 0 {
		return 0, false
	}
	slot := (pc - l.base) / ir.InstrBytes
	if slot >= uint64(len(l.slots)) {
		return 0, false
	}
	packed := l.slots[slot]
	if packed < 0 {
		return 0, false
	}
	return packed >> SlotShift, true
}

// Batch is one fixed-capacity run of packed events. Ops holds one int32
// per event (id<<OpShift | kind<<1 | taken); Targets holds the
// data-dependent destinations of the batch's IJump and Ret events in
// event order. A Batch is reused across fills — buffers keep their
// capacity — and shared read-only between consumers.
type Batch struct {
	Ops     []int32
	Targets []uint64
}

// Len returns the number of events in the batch.
func (b *Batch) Len() int { return len(b.Ops) }

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() {
	b.Ops = b.Ops[:0]
	b.Targets = b.Targets[:0]
}

// SizeBytes reports the batch's backing-store footprint (capacities, not
// lengths): what a live buffer pins in memory.
func (b *Batch) SizeBytes() uint64 {
	return uint64(cap(b.Ops))*4 + uint64(cap(b.Targets))*8 + uint64(unsafe.Sizeof(Batch{}))
}

// Append packs one event onto b, resolving its site through the layout.
// The event must hit a compiled site of the matching kind with the
// statically expected destination; anything else is a trace/program
// mismatch, not workload behaviour, and is reported as an error.
func (l *Layout) Append(b *Batch, e Event) error {
	si, ok := l.Lookup(e.PC)
	if !ok {
		return fmt.Errorf("trace: event pc %#x (kind %v) does not hit a compiled control-transfer site", e.PC, e.Kind)
	}
	s := &l.sites[si]
	if s.Kind != e.Kind {
		return fmt.Errorf("trace: event kind %v at pc %#x does not match compiled site kind %v", e.Kind, e.PC, s.Kind)
	}
	var takenBit int32
	if e.Taken {
		takenBit = 1
	}
	switch e.Kind {
	case ir.IJump, ir.Ret:
		b.Targets = append(b.Targets, e.Target)
	case ir.CondBr:
		want := s.FallTarget
		if e.Taken {
			want = s.TakenTarget
		}
		if e.Target != want {
			return fmt.Errorf("trace: conditional at pc %#x went to %#x, compiled site expects %#x", e.PC, e.Target, want)
		}
	default:
		if e.Target != s.TakenTarget {
			return fmt.Errorf("trace: %v at pc %#x went to %#x, compiled site expects %#x", e.Kind, e.PC, e.Target, s.TakenTarget)
		}
	}
	b.Ops = append(b.Ops, si<<OpShift|int32(e.Kind)<<1|takenBit)
	return nil
}

// Decode expands the packed batch back into Events in order, calling fn
// for each. The reconstruction is exact: decoding a batch encoded from an
// event stream reproduces that stream field for field.
func (l *Layout) Decode(b *Batch, fn func(Event)) error {
	sites := l.sites
	tcur := 0
	for _, op := range b.Ops {
		si := op >> OpShift
		if si < 0 || int(si) >= len(sites) {
			return fmt.Errorf("trace: batch op references site %d of %d", si, len(sites))
		}
		s := &sites[si]
		taken := op&1 != 0
		e := Event{
			PC: s.PC, Kind: ir.Kind(op >> 1 & (1<<SlotShift - 1)), Taken: taken,
			TakenTarget: s.TakenTarget, Fall: s.Fall,
		}
		switch e.Kind {
		case ir.IJump, ir.Ret:
			if tcur >= len(b.Targets) {
				return fmt.Errorf("trace: batch has %d dynamic targets but op %v needs more", len(b.Targets), e.Kind)
			}
			e.Target = b.Targets[tcur]
			e.TakenTarget = e.Target
			tcur++
		case ir.CondBr:
			if taken {
				e.Target = s.TakenTarget
			} else {
				e.Target = s.FallTarget
			}
		default:
			e.Target = s.TakenTarget
		}
		fn(e)
	}
	if tcur != len(b.Targets) {
		return fmt.Errorf("trace: batch carries %d dynamic targets, ops consumed %d", len(b.Targets), tcur)
	}
	return nil
}

// Source yields one program variant's event stream as a sequence of packed
// batches. Sources are single-use and not safe for concurrent Fill calls;
// the broadcast stage serializes them.
type Source interface {
	// Fill overwrites b with the next run of events (up to the source's
	// batch capacity) and reports whether the batch holds any. A false
	// return means the stream is exhausted or failed; the accompanying
	// error distinguishes the two.
	Fill(b *Batch) (bool, error)
	// Instrs returns the number of instructions the generation has
	// retired; it is final once Fill has returned false.
	Instrs() uint64
	// Close releases the source's resources. It is safe to call more than
	// once and after exhaustion; an abandoned push-style source keeps its
	// generator running in the background (discarding events) until the
	// generator finishes its current run.
	Close()
}

// DefaultBatchCap is the default events-per-batch capacity. 8192 packed
// ops are 32 KiB — far smaller than a CPU's last-level cache slice, far
// larger than the per-batch handoff overhead.
const DefaultBatchCap = 8192

// funcSource adapts a push-style generator — anything that drives a Sink,
// like the VM — into a pull-style Source by running it on its own
// goroutine with a small ring of handoff buffers.
type funcSource struct {
	full chan *Batch
	free chan *Batch
	done chan struct{}

	closeOnce sync.Once
	instrs    atomic.Uint64

	// err is written by the generator goroutine before it closes full and
	// read by Fill only after full is closed, so the channel close orders
	// the accesses.
	err error
}

// NewFuncSource returns a Source producing the events gen pushes into its
// sink, packed against lay in batches of batchCap (0 means
// DefaultBatchCap). gen runs on its own goroutine; its returned
// instruction count becomes the source's Instrs. If gen's stream does not
// match the layout, the stream fails with the encoding error.
func NewFuncSource(lay *Layout, batchCap int, gen func(Sink) (uint64, error)) Source {
	if batchCap <= 0 {
		batchCap = DefaultBatchCap
	}
	s := &funcSource{
		full: make(chan *Batch, 2),
		free: make(chan *Batch, 3),
		done: make(chan struct{}),
	}
	for i := 0; i < 3; i++ {
		s.free <- &Batch{Ops: make([]int32, 0, batchCap)}
	}
	go func() {
		sink := &batchSink{lay: lay, cap: batchCap, src: s}
		sink.cur = <-s.free
		instrs, err := gen(sink)
		if err == nil {
			err = sink.err
		}
		if err == nil && !sink.aborted && sink.cur.Len() > 0 {
			sink.flush()
		}
		s.err = err
		s.instrs.Store(instrs)
		close(s.full)
	}()
	return s
}

// batchSink is the generator-side adapter: it packs pushed events into the
// current batch and hands full batches to the consumer.
type batchSink struct {
	lay *Layout
	cap int
	src *funcSource
	cur *Batch
	err error
	// aborted is set when the consumer closed the source; the sink then
	// discards events so the generator can run to completion unobserved.
	aborted bool
}

// Event implements Sink.
func (k *batchSink) Event(e Event) {
	if k.aborted || k.err != nil {
		return
	}
	if err := k.lay.Append(k.cur, e); err != nil {
		k.err = err
		return
	}
	if k.cur.Len() >= k.cap {
		k.flush()
	}
}

// flush hands the current batch to the consumer and takes a fresh buffer,
// aborting if the consumer has closed the source.
func (k *batchSink) flush() {
	select {
	case k.src.full <- k.cur:
	case <-k.src.done:
		k.aborted = true
		return
	}
	select {
	case k.cur = <-k.src.free:
		k.cur.Reset()
	case <-k.src.done:
		k.aborted = true
		k.cur = &Batch{}
	}
}

// Fill implements Source.
func (s *funcSource) Fill(b *Batch) (bool, error) {
	fb, ok := <-s.full
	if !ok {
		b.Reset()
		return false, s.err
	}
	*b, *fb = *fb, *b
	fb.Reset()
	select {
	case s.free <- fb:
	default:
	}
	return true, nil
}

// Instrs implements Source.
func (s *funcSource) Instrs() uint64 { return s.instrs.Load() }

// Close implements Source.
func (s *funcSource) Close() {
	s.closeOnce.Do(func() { close(s.done) })
}
