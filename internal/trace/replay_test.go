package trace_test

import (
	"bytes"
	"fmt"
	"testing"

	"balign/internal/ir"
	"balign/internal/profile"
	"balign/internal/trace"
	"balign/internal/workload"
)

// multiEdgeSink fans edge observations out to several sinks.
type multiEdgeSink []trace.EdgeSink

func (m multiEdgeSink) Edge(procIdx int, from, to ir.BlockID) {
	for _, s := range m {
		s.Edge(procIdx, from, to)
	}
}

func (m multiEdgeSink) Branch(procIdx int, block ir.BlockID, taken bool) {
	for _, s := range m {
		s.Branch(procIdx, block, taken)
	}
}

func (m multiEdgeSink) Instrs(n uint64) {
	for _, s := range m {
		s.Instrs(n)
	}
}

// TestWalkerReplaysVMExactly is the differential test between the repo's two
// trace producers: the VM (real semantics) and the Walker (CFG walk driven
// by a behaviour model). A ScriptModel recorded from the VM execution forces
// the walker down the identical path, so the two must emit byte-identical
// event streams, identical edge profiles and identical instruction counts.
// Divergence means one producer mis-handles some control-flow shape — the
// exact class of bug that would silently skew every simulated table.
func TestWalkerReplaysVMExactly(t *testing.T) {
	ws, err := workload.Suite(workload.Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	tested := 0
	for _, w := range ws {
		if !w.IsKernel() {
			continue
		}
		tested++
		t.Run(w.Name, func(t *testing.T) {
			// Record the VM execution: events, edge profile and the script.
			script := trace.NewScriptModel(w.Prog)
			var vmEvents trace.Recorder
			vmProf := profile.NewCollector(w.Prog)
			vmInstrs, err := w.Run(w.Prog, nil, &vmEvents, multiEdgeSink{script, vmProf})
			if err != nil {
				t.Fatal(err)
			}

			// Replay through the walker under the scripted model. The VM
			// emits no event for its final halt, so an instruction budget of
			// exactly vmInstrs ends the walk at the same point.
			var wkEvents trace.Recorder
			wkProf := profile.NewCollector(w.Prog)
			walker := &trace.Walker{
				Prog:      w.Prog,
				Model:     script,
				MaxInstrs: vmInstrs,
				MaxDepth:  1 << 12,
			}
			wkInstrs, _ := walker.Run(&wkEvents, wkProf)

			if script.Mismatches != 0 {
				t.Errorf("walker consulted the script %d times past the recording — paths diverged", script.Mismatches)
			}
			if wkInstrs != vmInstrs {
				t.Errorf("instruction counts differ: vm %d, walker %d", vmInstrs, wkInstrs)
			}
			if err := compareEvents(vmEvents.Events, wkEvents.Events); err != nil {
				t.Errorf("event streams differ: %v", err)
			}

			var vmBuf, wkBuf bytes.Buffer
			vp, kp := vmProf.Profile(), wkProf.Profile()
			vp.Instrs, kp.Instrs = 0, 0 // compared separately above
			if _, err := vp.WriteTo(&vmBuf); err != nil {
				t.Fatal(err)
			}
			if _, err := kp.WriteTo(&wkBuf); err != nil {
				t.Fatal(err)
			}
			if vmBuf.String() != wkBuf.String() {
				t.Errorf("edge profiles differ:\nvm:\n%s\nwalker:\n%s", vmBuf.String(), wkBuf.String())
			}
		})
	}
	if tested == 0 {
		t.Fatal("suite contains no kernel workloads — differential test ran nothing")
	}
}

// compareEvents reports the first position where two event streams disagree.
func compareEvents(a, b []trace.Event) error {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Errorf("event %d: vm %+v, walker %+v", i, a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Errorf("lengths differ: vm %d, walker %d", len(a), len(b))
	}
	return nil
}
