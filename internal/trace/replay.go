package trace

import (
	"fmt"

	"balign/internal/ir"
)

// siteKey addresses one control-flow site: a block within a procedure.
type siteKey struct {
	proc  int
	block ir.BlockID
}

// ScriptModel is a Model that replays a recorded execution exactly instead
// of sampling: TakenProb answers 1 or 0 following the recorded outcome
// sequence of each conditional site, and IJumpWeights answers a one-hot
// vector selecting each indirect jump's recorded target. Driving the Walker
// with a ScriptModel recorded from a VM execution therefore forces the walk
// down the identical control-flow path, which is what the vm-vs-walker
// differential test exploits: any divergence in the two event streams is a
// bug in one of the trace producers, not workload noise.
//
// Record by passing the model as the EdgeSink of the recording execution;
// each replayed site consumes its outcomes in FIFO order. A ScriptModel is
// single-use: call Reset to replay again.
type ScriptModel struct {
	prog *ir.Program
	// ijIndex maps each indirect-jump site's successor block to its index
	// in the instruction's Targets slice.
	ijIndex map[siteKey]map[ir.BlockID]int

	cond   map[siteKey][]bool
	ij     map[siteKey][]int
	condAt map[siteKey]int
	ijAt   map[siteKey]int

	// Mismatches counts replay requests past the end of a site's recorded
	// outcomes (a diagnostic for diverged walks; the replay then predicts
	// fall-through / target 0).
	Mismatches int
}

// NewScriptModel returns an empty script for prog, ready to record.
func NewScriptModel(prog *ir.Program) *ScriptModel {
	m := &ScriptModel{
		prog:    prog,
		ijIndex: make(map[siteKey]map[ir.BlockID]int),
		cond:    make(map[siteKey][]bool),
		ij:      make(map[siteKey][]int),
		condAt:  make(map[siteKey]int),
		ijAt:    make(map[siteKey]int),
	}
	for pi, p := range prog.Procs {
		for bi, b := range p.Blocks {
			t, ok := b.Terminator()
			if !ok || t.Kind() != ir.IJump {
				continue
			}
			idx := make(map[ir.BlockID]int, len(t.Targets))
			for i, tgt := range t.Targets {
				// First occurrence wins: the walker's pickTarget returns the
				// lowest matching index for a one-hot vector anyway.
				if _, seen := idx[tgt]; !seen {
					idx[tgt] = i
				}
			}
			m.ijIndex[siteKey{pi, ir.BlockID(bi)}] = idx
		}
	}
	return m
}

// Edge implements EdgeSink: indirect-jump traversals are scripted; other
// edge kinds are implied by the branch outcomes and the CFG.
func (m *ScriptModel) Edge(procIdx int, from, to ir.BlockID) {
	key := siteKey{procIdx, from}
	idx, ok := m.ijIndex[key]
	if !ok {
		return
	}
	i, ok := idx[to]
	if !ok {
		panic(fmt.Sprintf("trace: scripted ijump %d/%d has no target block %d", procIdx, from, to))
	}
	m.ij[key] = append(m.ij[key], i)
}

// Branch implements EdgeSink, recording one conditional outcome.
func (m *ScriptModel) Branch(procIdx int, block ir.BlockID, taken bool) {
	key := siteKey{procIdx, block}
	m.cond[key] = append(m.cond[key], taken)
}

// Instrs implements EdgeSink.
func (m *ScriptModel) Instrs(uint64) {}

// TakenProb implements Model: 1 for a recorded taken outcome, 0 for a
// recorded fall-through (the walker samples rng.Float64() < p, and
// Float64 is always < 1 and never < 0, so the outcome is forced).
func (m *ScriptModel) TakenProb(procIdx int, block ir.BlockID) float64 {
	key := siteKey{procIdx, block}
	at := m.condAt[key]
	if at >= len(m.cond[key]) {
		m.Mismatches++
		return 0
	}
	m.condAt[key] = at + 1
	if m.cond[key][at] {
		return 1
	}
	return 0
}

// IJumpWeights implements Model: a one-hot vector over the site's Targets
// selecting the recorded successor.
func (m *ScriptModel) IJumpWeights(procIdx int, block ir.BlockID) []float64 {
	key := siteKey{procIdx, block}
	at := m.ijAt[key]
	if at >= len(m.ij[key]) {
		m.Mismatches++
		at = -1
	} else {
		m.ijAt[key] = at + 1
	}
	t, _ := m.prog.Procs[procIdx].Blocks[block].Terminator()
	weights := make([]float64, len(t.Targets))
	if at < 0 {
		weights[0] = 1
		return weights
	}
	weights[m.ij[key][at]] = 1
	return weights
}

// Reset rewinds every site's replay cursor to the beginning (the recording
// is kept).
func (m *ScriptModel) Reset() {
	m.condAt = make(map[siteKey]int)
	m.ijAt = make(map[siteKey]int)
	m.Mismatches = 0
}
