package trace

import (
	"bytes"
	"strings"
	"testing"

	"balign/internal/ir"
)

// validTraceBytes encodes a small real trace for fuzz seeding.
func validTraceBytes(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	fw := NewFileWriter(&buf)
	fw.Event(Event{PC: 0x1000, Kind: ir.CondBr, Taken: true, Target: 0x1010, TakenTarget: 0x1010, Fall: 0x1004})
	fw.Event(Event{PC: 0x1010, Kind: ir.Call, Taken: true, Target: 0x2000, TakenTarget: 0x2000, Fall: 0x1014})
	fw.Event(Event{PC: 0x2004, Kind: ir.Ret, Taken: true, Target: 0x1014, TakenTarget: 0x1014, Fall: 0x2008})
	if err := fw.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFile hammers the trace decoder with arbitrary bytes: malformed
// varints, truncated headers and records, and hostile field values must all
// surface as errors — never a panic, and never an allocation larger than
// the input itself can justify.
func FuzzReadFile(f *testing.F) {
	valid := validTraceBytes(f)
	f.Add([]byte{})
	f.Add([]byte("BATRACE1"))
	f.Add([]byte("NOTMAGIC")) // wrong magic, right length
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                                 // truncated record
	f.Add(append(append([]byte{}, valid...), 0x80, 0x80, 0x80)) // trailing unterminated varint
	f.Add(append([]byte("BATRACE1"), 0, 0, 0))                  // kind 0 (Op) is invalid
	f.Add(append([]byte("BATRACE1"), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x01)) // 11-byte varint overflow
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadAll(bytes.NewReader(data), int64(len(data)))
		// Every decoded event consumed at least minEventBytes of input past
		// the header, error or not.
		max := 0
		if len(data) > len(fileMagic) {
			max = (len(data) - len(fileMagic)) / minEventBytes
		}
		if len(events) > max {
			t.Fatalf("decoded %d events from %d input bytes (max %d)", len(events), len(data), max)
		}
		if err != nil {
			// Decode errors must locate the failure.
			if !strings.Contains(err.Error(), "offset") {
				t.Fatalf("decode error without byte offset: %v", err)
			}
			return
		}
		// Whatever decoded cleanly must re-encode and re-decode to the same
		// events.
		var buf bytes.Buffer
		fw := NewFileWriter(&buf)
		for _, e := range events {
			fw.Event(e)
		}
		if err := fw.Flush(); err != nil {
			t.Fatalf("re-encoding decoded events: %v", err)
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("re-decoding re-encoded events: %v", err)
		}
		if len(got) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(got))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, events[i], got[i])
			}
		}
	})
}
