package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"balign/internal/ir"
)

func TestFileRoundTrip(t *testing.T) {
	events := []Event{
		{PC: 0x1000, Kind: ir.CondBr, Taken: true, Target: 0x0f00, TakenTarget: 0x0f00, Fall: 0x1004},
		{PC: 0x1010, Kind: ir.CondBr, Taken: false, Target: 0x2000, TakenTarget: 0x0800, Fall: 0x1014},
		{PC: 0x1014, Kind: ir.Br, Taken: true, Target: 0x1020, TakenTarget: 0x1020, Fall: 0x1018},
		{PC: 0x1020, Kind: ir.Call, Taken: true, Target: 0x8000, TakenTarget: 0x8000, Fall: 0x1024},
		{PC: 0x8004, Kind: ir.Ret, Taken: true, Target: 0x1024, TakenTarget: 0x1024, Fall: 0x8008},
		{PC: 0x1030, Kind: ir.IJump, Taken: true, Target: 0x4000, TakenTarget: 0x4000, Fall: 0x1034},
	}
	var buf bytes.Buffer
	fw := NewFileWriter(&buf)
	for _, e := range events {
		fw.Event(e)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if fw.Count() != uint64(len(events)) {
		t.Errorf("Count = %d, want %d", fw.Count(), len(events))
	}

	var got []Event
	if err := ReadFile(&buf, func(e Event) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestFileEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFileWriter(&buf)
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(&buf, SinkFunc(func(Event) {}))
	if err != nil || n != 0 {
		t.Errorf("Replay(empty) = %d, %v", n, err)
	}
}

func TestFileBadMagic(t *testing.T) {
	err := ReadFile(strings.NewReader("NOTATRACEFILE"), func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("err = %v, want bad magic", err)
	}
}

func TestFileTruncated(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFileWriter(&buf)
	fw.Event(Event{PC: 0x1000, Kind: ir.Br, Taken: true, Target: 0x2000, TakenTarget: 0x2000, Fall: 0x1004})
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	err := ReadFile(bytes.NewReader(data[:len(data)-1]), func(Event) error { return nil })
	if err == nil {
		t.Error("truncated trace read without error")
	}
}

func TestFileInvalidKind(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(fileMagic)
	// dpc=0 varint, meta=0 (Op: invalid in a break trace), dt=0.
	buf.Write([]byte{0, 0, 0})
	err := ReadFile(&buf, func(Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("err = %v, want invalid kind", err)
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(pcs []uint32, kinds []uint8) bool {
		var events []Event
		for i, pc := range pcs {
			k := ir.CondBr
			if len(kinds) > 0 {
				switch kinds[i%len(kinds)] % 5 {
				case 0:
					k = ir.CondBr
				case 1:
					k = ir.Br
				case 2:
					k = ir.Call
				case 3:
					k = ir.IJump
				case 4:
					k = ir.Ret
				}
			}
			p := uint64(pc &^ 3)
			tgt := uint64((pc * 7) &^ 3)
			events = append(events, Event{
				PC: p, Kind: k, Taken: pc%2 == 0 || k != ir.CondBr,
				Target: tgt, TakenTarget: tgt, Fall: p + ir.InstrBytes,
			})
		}
		var buf bytes.Buffer
		fw := NewFileWriter(&buf)
		for _, e := range events {
			fw.Event(e)
		}
		if fw.Flush() != nil {
			return false
		}
		var got []Event
		if ReadFile(&buf, func(e Event) error { got = append(got, e); return nil }) != nil {
			return false
		}
		if len(got) != len(events) {
			return false
		}
		for i := range events {
			want := events[i]
			if want.Kind != ir.CondBr {
				want.Taken = true
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFileCompactness(t *testing.T) {
	// Sequential branch events should encode in only a few bytes each.
	var buf bytes.Buffer
	fw := NewFileWriter(&buf)
	for i := 0; i < 1000; i++ {
		pc := 0x1000 + uint64(i)*8
		fw.Event(Event{PC: pc, Kind: ir.CondBr, Taken: i%2 == 0, Target: pc - 64, TakenTarget: pc - 64, Fall: pc + 4})
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if per := float64(buf.Len()) / 1000; per > 8 {
		t.Errorf("encoding uses %.1f bytes/event, want compact (< 8)", per)
	}
}
