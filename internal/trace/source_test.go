package trace_test

import (
	"fmt"
	"strings"
	"testing"

	"balign/internal/ir"
	"balign/internal/trace"
	"balign/internal/workload"
)

// drainSource pulls src dry, decoding every batch through lay into a flat
// event slice. batchCap only bounds the buffer the caller hands in; the
// source's own capacity governs batch sizes.
func drainSource(t *testing.T, lay *trace.Layout, src trace.Source) []trace.Event {
	t.Helper()
	var events []trace.Event
	var b trace.Batch
	for {
		ok, err := src.Fill(&b)
		if err != nil {
			t.Fatalf("Fill: %v", err)
		}
		if !ok {
			if b.Len() != 0 {
				t.Fatalf("exhausted Fill returned a non-empty batch (%d events)", b.Len())
			}
			return events
		}
		if b.Len() == 0 {
			t.Fatal("Fill returned ok with an empty batch")
		}
		if err := lay.Decode(&b, func(e trace.Event) { events = append(events, e) }); err != nil {
			t.Fatalf("Decode: %v", err)
		}
	}
}

// walkParityCase runs Walker and WalkSource over the same spec and requires
// byte-identical decoded events plus matching instruction and run counts.
func walkParityCase(t *testing.T, w *trace.Walker, batchCap int) {
	t.Helper()
	var rec trace.Recorder
	// WalkSource captures the walker spec at construction, so build an
	// identical copy for the reference run (Run mutates nothing, but the
	// shared Model may be stateful — these cases use stateless models).
	ref := *w
	wantInstrs, wantRuns := ref.Run(&rec, nil)

	lay, err := trace.CompileLayout(w.Prog)
	if err != nil {
		t.Fatalf("CompileLayout: %v", err)
	}
	src, err := trace.NewWalkSource(w, lay, batchCap)
	if err != nil {
		t.Fatalf("NewWalkSource: %v", err)
	}
	defer src.Close()
	got := drainSource(t, lay, src)

	if src.Instrs() != wantInstrs {
		t.Errorf("instrs: source %d, walker %d", src.Instrs(), wantInstrs)
	}
	if src.Runs() != wantRuns {
		t.Errorf("runs: source %d, walker %d", src.Runs(), wantRuns)
	}
	if err := compareEvents(rec.Events, got); err != nil {
		t.Errorf("cap=%d: %v", batchCap, err)
	}
}

// TestWalkSourceMatchesWalkerSynthetic drives the compiled streaming walker
// over hand-built control-flow shapes — loops, calls, indirect jumps,
// depth-capped recursion — across seeds and batch capacities, requiring the
// decoded stream to equal the Walker's exactly.
func TestWalkSourceMatchesWalkerSynthetic(t *testing.T) {
	progs := map[string]*ir.Program{
		"loop":  loopTestProgram(),
		"calls": callTestProgram(),
		"ijump": ijumpTestProgram(),
		"rec":   recursiveTestProgram(),
	}
	for name, prog := range progs {
		for _, seed := range []int64{1, 7, 99} {
			for _, cap := range []int{1, 7, 64, 8192} {
				t.Run(fmt.Sprintf("%s/seed%d/cap%d", name, seed, cap), func(t *testing.T) {
					w := &trace.Walker{
						Prog: prog, Model: trace.UniformModel{P: 0.6},
						Seed: seed, MaxInstrs: 5000, MaxDepth: 8,
					}
					walkParityCase(t, w, cap)
				})
			}
		}
	}
}

// TestWalkSourceMatchesWalkerSuite repeats the parity check over the real
// experiment suite's synthetic programs (randomized structure per seed).
func TestWalkSourceMatchesWalkerSuite(t *testing.T) {
	for _, seed := range []int64{0, 3} {
		ws, err := workload.Suite(workload.Config{Scale: 0.02, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			t.Run(fmt.Sprintf("%s/seed%d", w.Name, seed), func(t *testing.T) {
				walker := &trace.Walker{
					Prog: w.Prog, Model: trace.UniformModel{P: 0.55},
					Seed: seed*31 + 5, MaxInstrs: 20_000,
				}
				walkParityCase(t, walker, 512)
			})
		}
	}
}

// TestWalkSourceTruncationBoundaries sweeps tiny instruction budgets so
// every stop position — mid straight-line run, on a transfer, on a restart —
// is exercised against the Walker's exact semantics.
func TestWalkSourceTruncationBoundaries(t *testing.T) {
	progs := map[string]*ir.Program{
		"loop": loopTestProgram(), "calls": callTestProgram(), "rec": recursiveTestProgram(),
	}
	for name, prog := range progs {
		t.Run(name, func(t *testing.T) {
			for budget := uint64(1); budget <= 40; budget++ {
				w := &trace.Walker{
					Prog: prog, Model: trace.UniformModel{P: 0.5},
					Seed: int64(budget), MaxInstrs: budget, MaxDepth: 4,
				}
				walkParityCase(t, w, 3)
			}
		})
	}
}

// TestWalkSourceMaxRuns checks the work-equivalence stop condition: the
// source must stop after exactly MaxRuns complete runs, like the Walker.
func TestWalkSourceMaxRuns(t *testing.T) {
	for _, maxRuns := range []int{1, 2, 7} {
		w := &trace.Walker{
			Prog: loopTestProgram(), Model: trace.UniformModel{P: 0.0},
			Seed: 1, MaxInstrs: 1 << 30, MaxRuns: maxRuns,
		}
		walkParityCase(t, w, 16)
	}
}

// TestFuncSourceMatchesGen streams a push-style generator (here the Walker
// itself driving a Sink) through NewFuncSource and requires the decoded
// batches to reproduce the generator's stream and instruction count.
func TestFuncSourceMatchesGen(t *testing.T) {
	prog := callTestProgram()
	mk := func() *trace.Walker {
		return &trace.Walker{Prog: prog, Model: trace.UniformModel{P: 0.7}, Seed: 11, MaxInstrs: 3000}
	}
	var rec trace.Recorder
	wantInstrs, _ := mk().Run(&rec, nil)

	lay, err := trace.CompileLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	src := trace.NewFuncSource(lay, 64, func(sink trace.Sink) (uint64, error) {
		instrs, _ := mk().Run(sink, nil)
		return instrs, nil
	})
	defer src.Close()
	got := drainSource(t, lay, src)
	if err := compareEvents(rec.Events, got); err != nil {
		t.Error(err)
	}
	if src.Instrs() != wantInstrs {
		t.Errorf("instrs: source %d, generator %d", src.Instrs(), wantInstrs)
	}
}

// TestFuncSourceEarlyClose abandons a stream mid-way; the source must not
// deadlock its generator goroutine and repeated Close must be safe.
func TestFuncSourceEarlyClose(t *testing.T) {
	prog := loopTestProgram()
	lay, err := trace.CompileLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	genDone := make(chan struct{})
	src := trace.NewFuncSource(lay, 8, func(sink trace.Sink) (uint64, error) {
		defer close(genDone)
		w := &trace.Walker{Prog: prog, Model: trace.UniformModel{P: 0.9}, Seed: 2, MaxInstrs: 100_000}
		instrs, _ := w.Run(sink, nil)
		return instrs, nil
	})
	var b trace.Batch
	if ok, err := src.Fill(&b); !ok || err != nil {
		t.Fatalf("first Fill = %v, %v", ok, err)
	}
	src.Close()
	src.Close()
	<-genDone // generator must run to completion, discarding events
}

// TestFuncSourceGenError propagates a generator failure through Fill.
func TestFuncSourceGenError(t *testing.T) {
	lay, err := trace.CompileLayout(loopTestProgram())
	if err != nil {
		t.Fatal(err)
	}
	src := trace.NewFuncSource(lay, 8, func(trace.Sink) (uint64, error) {
		return 0, fmt.Errorf("generator exploded")
	})
	defer src.Close()
	var b trace.Batch
	for {
		ok, err := src.Fill(&b)
		if ok {
			continue
		}
		if err == nil || !strings.Contains(err.Error(), "generator exploded") {
			t.Fatalf("Fill error = %v, want generator failure", err)
		}
		return
	}
}

// TestFuncSourceLayoutMismatch: a generator emitting an event the layout
// does not know must fail the stream with the encoding error.
func TestFuncSourceLayoutMismatch(t *testing.T) {
	lay, err := trace.CompileLayout(loopTestProgram())
	if err != nil {
		t.Fatal(err)
	}
	src := trace.NewFuncSource(lay, 8, func(sink trace.Sink) (uint64, error) {
		sink.Event(trace.Event{PC: 0x9999_0000, Kind: ir.CondBr})
		return 1, nil
	})
	defer src.Close()
	var b trace.Batch
	for {
		ok, err := src.Fill(&b)
		if ok {
			continue
		}
		if err == nil || !strings.Contains(err.Error(), "control-transfer site") {
			t.Fatalf("Fill error = %v, want layout-mismatch failure", err)
		}
		return
	}
}

// TestLayoutAppendDecodeRoundTrip packs a real walked stream through
// Layout.Append and requires Decode to reproduce it field for field.
func TestLayoutAppendDecodeRoundTrip(t *testing.T) {
	for name, prog := range map[string]*ir.Program{
		"calls": callTestProgram(), "ijump": ijumpTestProgram(),
	} {
		t.Run(name, func(t *testing.T) {
			var rec trace.Recorder
			w := &trace.Walker{Prog: prog, Model: trace.UniformModel{P: 0.4}, Seed: 9, MaxInstrs: 2000}
			w.Run(&rec, nil)
			if len(rec.Events) == 0 {
				t.Fatal("no events")
			}
			lay, err := trace.CompileLayout(prog)
			if err != nil {
				t.Fatal(err)
			}
			var b trace.Batch
			for _, e := range rec.Events {
				if err := lay.Append(&b, e); err != nil {
					t.Fatalf("Append(%+v): %v", e, err)
				}
			}
			var got []trace.Event
			if err := lay.Decode(&b, func(e trace.Event) { got = append(got, e) }); err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if err := compareEvents(rec.Events, got); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestLayoutAppendRejectsMismatches: events that do not fit the compiled
// program — unknown PC, wrong kind, impossible target — must be rejected.
func TestLayoutAppendRejectsMismatches(t *testing.T) {
	prog := callTestProgram()
	lay, err := trace.CompileLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Recorder
	w := &trace.Walker{Prog: prog, Model: trace.UniformModel{P: 0.5}, Seed: 1, MaxInstrs: 50}
	w.Run(&rec, nil)
	if len(rec.Events) == 0 {
		t.Fatal("no events")
	}
	good := rec.Events[0]
	cases := map[string]trace.Event{
		"unknown pc": {PC: 0xdead_0000, Kind: good.Kind, Target: good.Target},
		"wrong kind": func() trace.Event {
			e := good
			if e.Kind == ir.Ret {
				e.Kind = ir.Call
			} else {
				e.Kind = ir.Ret
			}
			return e
		}(),
		"wrong target": func() trace.Event {
			e := good
			e.Kind = good.Kind
			e.Target = good.Target + 4096
			return e
		}(),
	}
	for name, ev := range cases {
		if ev.Kind == ir.IJump || ev.Kind == ir.Ret {
			continue // dynamic-target kinds accept any target by design
		}
		var b trace.Batch
		if err := lay.Append(&b, ev); err == nil {
			t.Errorf("%s: Append accepted %+v", name, ev)
		}
	}
}

// TestCompileLayoutErrors covers the compile-time failure modes.
func TestCompileLayoutErrors(t *testing.T) {
	if _, err := trace.CompileLayout(nil); err == nil {
		t.Error("CompileLayout(nil) succeeded")
	}
	// Two procs whose blocks share addresses (AssignAddresses never ran).
	dup := &ir.Program{Procs: []*ir.Proc{
		{Name: "a", Blocks: []*ir.Block{{Instrs: []ir.Instr{{Op: ir.OpRet}}}}},
		{Name: "b", Blocks: []*ir.Block{{Instrs: []ir.Instr{{Op: ir.OpRet}}}}},
	}}
	if _, err := trace.CompileLayout(dup); err == nil {
		t.Error("CompileLayout accepted duplicate site addresses")
	}
}

// loopTestProgram: straight-line header, a self-loop conditional, halt.
func loopTestProgram() *ir.Program {
	p := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpLi, Rd: 1, Imm: 5}}},
		{Instrs: []ir.Instr{
			{Op: ir.OpAddi, Rd: 2, Rs: 2, Imm: 1},
			{Op: ir.OpBnez, Rd: 1, TargetBlock: 1},
		}},
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "loop", Procs: []*ir.Proc{p}, MemWords: 4}
	prog.AssignAddresses(0x1000)
	return prog
}

// callTestProgram: a loop whose body calls a callee that branches
// internally, exercising call/return plus a mid-block conditional (whose
// fall-through target differs from PC+4).
func callTestProgram() *ir.Program {
	callee := &ir.Proc{Name: "f", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpAddi, Rd: 3, Rs: 3, Imm: 1},
			{Op: ir.OpBnez, Rd: 3, TargetBlock: 2},
			{Op: ir.OpAddi, Rd: 4, Rs: 4, Imm: 1}, // reachable only via resume
		}},
		{Instrs: []ir.Instr{{Op: ir.OpAddi, Rd: 5, Rs: 5, Imm: 2}}},
		{Instrs: []ir.Instr{{Op: ir.OpRet}}},
	}}
	main := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpLi, Rd: 1, Imm: 3}}},
		{Instrs: []ir.Instr{
			{Op: ir.OpCall, TargetProc: 1},
			{Op: ir.OpAddi, Rd: 2, Rs: 2, Imm: 1},
			{Op: ir.OpBnez, Rd: 1, TargetBlock: 1},
		}},
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "calls", Procs: []*ir.Proc{main, callee}}
	prog.AssignAddresses(0x1000)
	return prog
}

// ijumpTestProgram: an indirect jump dispatching over three targets that
// each loop back through a shared conditional.
func ijumpTestProgram() *ir.Program {
	p := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpIJump, Rd: 1, Targets: []ir.BlockID{1, 2, 3}}}},
		{Instrs: []ir.Instr{{Op: ir.OpAddi, Rd: 2, Rs: 2, Imm: 1}, {Op: ir.OpBr, TargetBlock: 4}}},
		{Instrs: []ir.Instr{{Op: ir.OpAddi, Rd: 3, Rs: 3, Imm: 1}, {Op: ir.OpBr, TargetBlock: 4}}},
		{Instrs: []ir.Instr{{Op: ir.OpAddi, Rd: 4, Rs: 4, Imm: 1}}},
		{Instrs: []ir.Instr{{Op: ir.OpBnez, Rd: 2, TargetBlock: 0}}},
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "ijump", Procs: []*ir.Proc{p}}
	prog.AssignAddresses(0x1000)
	return prog
}

// recursiveTestProgram: mutual recursion that hits the depth cap, including
// a call in final block position (resume past the block's end).
func recursiveTestProgram() *ir.Program {
	f := &ir.Proc{Name: "f", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpAddi, Rd: 1, Rs: 1, Imm: 1},
			{Op: ir.OpCall, TargetProc: 1},
		}},
		{Instrs: []ir.Instr{{Op: ir.OpRet}}},
	}}
	main := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpCall, TargetProc: 1}, {Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "rec", Procs: []*ir.Proc{main, f}}
	prog.AssignAddresses(0x1000)
	return prog
}
