package trace

import (
	"testing"

	"balign/internal/ir"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Event(Event{Kind: ir.CondBr, Taken: true})
	c.Event(Event{Kind: ir.CondBr, Taken: false})
	c.Event(Event{Kind: ir.Br, Taken: true})
	c.Event(Event{Kind: ir.Call, Taken: true})
	c.Event(Event{Kind: ir.Ret, Taken: true})
	c.Event(Event{Kind: ir.IJump, Taken: true})
	if c.Total != 6 {
		t.Errorf("Total = %d, want 6", c.Total)
	}
	if c.ByKind[ir.CondBr] != 2 || c.ByKind[ir.Br] != 1 || c.ByKind[ir.Call] != 1 ||
		c.ByKind[ir.Ret] != 1 || c.ByKind[ir.IJump] != 1 {
		t.Errorf("ByKind = %v", c.ByKind)
	}
	if c.CondTaken != 1 || c.CondFall != 1 {
		t.Errorf("CondTaken/Fall = %d/%d, want 1/1", c.CondTaken, c.CondFall)
	}
}

func TestMultiSinkAndRecorder(t *testing.T) {
	var a, b Recorder
	m := MultiSink{&a, &b}
	m.Event(Event{PC: 4})
	m.Event(Event{PC: 8})
	if len(a.Events) != 2 || len(b.Events) != 2 {
		t.Fatalf("recorders got %d/%d events, want 2/2", len(a.Events), len(b.Events))
	}
	if a.Events[1].PC != 8 {
		t.Errorf("recorded PC = %d, want 8", a.Events[1].PC)
	}
}

// loopProgram builds: main: b0 (li, li) ; b1 loop body ends bnez->b1 ; b2 halt.
func loopProgram() *ir.Program {
	p := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Orig: 0, Instrs: []ir.Instr{{Op: ir.OpLi, Rd: 1, Imm: 5}}},
		{Orig: 1, Instrs: []ir.Instr{
			{Op: ir.OpAddi, Rd: 2, Rs: 2, Imm: 1},
			{Op: ir.OpBnez, Rd: 1, TargetBlock: 1},
		}},
		{Orig: 2, Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "loop", Procs: []*ir.Proc{p}, MemWords: 4}
	prog.AssignAddresses(0x1000)
	return prog
}

func TestWalkerDeterministic(t *testing.T) {
	prog := loopProgram()
	run := func() []Event {
		var rec Recorder
		w := &Walker{Prog: prog, Model: UniformModel{P: 0.9}, Seed: 42, MaxInstrs: 500}
		w.Run(&rec, nil)
		return rec.Events
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("walker produced no events")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWalkerRespectsBudgetAndRestarts(t *testing.T) {
	prog := loopProgram()
	w := &Walker{Prog: prog, Model: UniformModel{P: 0.0}, Seed: 1, MaxInstrs: 100}
	var c Counter
	instrs, runs := w.Run(&c, nil)
	if instrs < 100 {
		t.Errorf("instrs = %d, want >= 100", instrs)
	}
	// P=0 means each run executes li, addi, bnez (not taken), halt = 4
	// instructions and restarts; expect many runs.
	if runs < 10 {
		t.Errorf("runs = %d, want many restarts", runs)
	}
	if c.CondTaken != 0 {
		t.Errorf("CondTaken = %d, want 0 with P=0", c.CondTaken)
	}
}

func TestWalkerTakenProbability(t *testing.T) {
	prog := loopProgram()
	w := &Walker{Prog: prog, Model: UniformModel{P: 0.8}, Seed: 7, MaxInstrs: 200_000}
	var c Counter
	w.Run(&c, nil)
	total := c.CondTaken + c.CondFall
	if total == 0 {
		t.Fatal("no conditional events")
	}
	rate := float64(c.CondTaken) / float64(total)
	if rate < 0.77 || rate > 0.83 {
		t.Errorf("taken rate = %.3f, want ~0.80", rate)
	}
}

func TestWalkerCallsAndReturns(t *testing.T) {
	callee := &ir.Proc{Name: "f", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpAddi, Rd: 3, Rs: 3, Imm: 1}, {Op: ir.OpRet}}},
	}}
	main := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpCall, TargetProc: 1}, {Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "c", Procs: []*ir.Proc{main, callee}}
	prog.AssignAddresses(0x1000)
	var rec Recorder
	w := &Walker{Prog: prog, Model: UniformModel{}, Seed: 3, MaxInstrs: 4}
	w.Run(&rec, nil)
	if len(rec.Events) != 2 {
		t.Fatalf("events = %d, want 2 (call, ret): %+v", len(rec.Events), rec.Events)
	}
	call, ret := rec.Events[0], rec.Events[1]
	if call.Kind != ir.Call || ret.Kind != ir.Ret {
		t.Fatalf("kinds = %v, %v; want call, ret", call.Kind, ret.Kind)
	}
	if ret.Target != call.Fall {
		t.Errorf("ret target %#x != call fall %#x", ret.Target, call.Fall)
	}
	if call.Target != callee.Blocks[0].Addr {
		t.Errorf("call target %#x != callee entry %#x", call.Target, callee.Blocks[0].Addr)
	}
}

func TestWalkerIJumpWeights(t *testing.T) {
	p := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpIJump, Rd: 1, Targets: []ir.BlockID{1, 2}}}},
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
		{Instrs: []ir.Instr{{Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "ij", Procs: []*ir.Proc{p}}
	prog.AssignAddresses(0x1000)

	// Weight target index 1 (block 2) at 100%.
	model := weightedModel{weights: []float64{0, 1}}
	var rec Recorder
	w := &Walker{Prog: prog, Model: model, Seed: 5, MaxInstrs: 50}
	w.Run(&rec, nil)
	if len(rec.Events) == 0 {
		t.Fatal("no events")
	}
	for _, e := range rec.Events {
		if e.Kind != ir.IJump {
			continue
		}
		if e.Target != p.Blocks[2].Addr {
			t.Errorf("ijump went to %#x, want always block 2 (%#x)", e.Target, p.Blocks[2].Addr)
		}
	}
}

type weightedModel struct{ weights []float64 }

func (m weightedModel) TakenProb(int, ir.BlockID) float64      { return 0.5 }
func (m weightedModel) IJumpWeights(int, ir.BlockID) []float64 { return m.weights }

func TestWalkerDepthCap(t *testing.T) {
	// Mutually recursive: main calls f, f calls f. Depth cap must keep the
	// walk alive and terminate at the budget.
	f := &ir.Proc{Name: "f", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpCall, TargetProc: 1}, {Op: ir.OpRet}}},
	}}
	main := &ir.Proc{Name: "main", Blocks: []*ir.Block{
		{Instrs: []ir.Instr{{Op: ir.OpCall, TargetProc: 1}, {Op: ir.OpHalt}}},
	}}
	prog := &ir.Program{Name: "rec", Procs: []*ir.Proc{main, f}}
	prog.AssignAddresses(0x1000)
	w := &Walker{Prog: prog, Model: UniformModel{}, Seed: 1, MaxInstrs: 1000, MaxDepth: 8}
	instrs, _ := w.Run(nil, nil)
	if instrs < 1000 {
		t.Errorf("instrs = %d, want budget reached despite recursion", instrs)
	}
}

func TestWalkerMaxRuns(t *testing.T) {
	prog := loopProgram()
	w := &Walker{Prog: prog, Model: UniformModel{P: 0.0}, Seed: 1,
		MaxInstrs: 1 << 30, MaxRuns: 7}
	instrs, runs := w.Run(nil, nil)
	if runs != 7 {
		t.Errorf("runs = %d, want exactly MaxRuns", runs)
	}
	// P=0: each run is li + addi + bnez(fall) + halt = 4 instructions.
	if instrs != 7*4 {
		t.Errorf("instrs = %d, want 28", instrs)
	}
}

func TestWalkerTakenTargetStatic(t *testing.T) {
	// Not-taken conditional events must still carry the static taken
	// target (what a BT/FNT predictor inspects).
	prog := loopProgram()
	var rec Recorder
	w := &Walker{Prog: prog, Model: UniformModel{P: 0.0}, Seed: 1, MaxInstrs: 10}
	w.Run(&rec, nil)
	loopAddr := prog.Procs[0].Blocks[1].Addr
	found := false
	for _, e := range rec.Events {
		if e.Kind == ir.CondBr && !e.Taken {
			found = true
			if e.TakenTarget != loopAddr {
				t.Errorf("not-taken event TakenTarget = %#x, want static target %#x", e.TakenTarget, loopAddr)
			}
			if e.Target == e.TakenTarget {
				t.Errorf("not-taken event's actual target should differ from the taken target here")
			}
		}
	}
	if !found {
		t.Fatal("no not-taken conditional events recorded")
	}
}
