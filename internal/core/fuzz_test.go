package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"balign/internal/asm"
	"balign/internal/cost"
	"balign/internal/vm"
)

// genProgram builds a random but always-terminating assembly program:
// nested bounded loops, data-dependent diamonds, switches and calls. The
// programs execute real computations on the VM, so alignment correctness is
// checked against actual results, not just structural invariants.
type progGen struct {
	rng  *rand.Rand
	sb   strings.Builder
	lbl  int
	regs int // next scratch register
}

func (g *progGen) label() string {
	g.lbl++
	return fmt.Sprintf("L%d", g.lbl)
}

func (g *progGen) reg() int {
	// Registers 1..19 are scratch; 20+ reserved for loop counters.
	r := 1 + g.regs%19
	g.regs++
	return r
}

func (g *progGen) emit(format string, args ...any) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

// body emits a statement sequence at the given loop-nesting depth; depth
// limits both loop nesting (counter registers) and recursion.
func (g *progGen) body(depth, stmts int) {
	for s := 0; s < stmts; s++ {
		switch g.rng.Intn(6) {
		case 0: // straight-line ops
			r := g.reg()
			g.emit("    addi r%d, r%d, %d", r, r, g.rng.Intn(7)-3)
			g.emit("    xor r%d, r%d, r%d", g.reg(), r, g.reg())
		case 1: // bounded loop
			if depth >= 3 {
				g.emit("    addi r%d, r%d, 1", g.reg(), g.reg())
				continue
			}
			cnt := 20 + depth
			top := g.label()
			g.emit("    li r%d, %d", cnt, 2+g.rng.Intn(5))
			g.emit("%s:", top)
			g.body(depth+1, 1+g.rng.Intn(2))
			g.emit("    addi r%d, r%d, -1", cnt, cnt)
			g.emit("    bnez r%d, %s", cnt, top)
		case 2: // diamond on a data-dependent value
			r := g.reg()
			els, join := g.label(), g.label()
			g.emit("    andi r%d, r%d, %d", r, g.reg(), 1+g.rng.Intn(7))
			g.emit("    beqz r%d, %s", r, els)
			g.emit("    addi r%d, r%d, 5", g.reg(), g.reg())
			g.emit("    br %s", join)
			g.emit("%s:", els)
			g.emit("    addi r%d, r%d, -5", g.reg(), g.reg())
			g.emit("%s:", join)
		case 3: // switch via ijump
			r := g.reg()
			arms := 2 + g.rng.Intn(3)
			labels := make([]string, arms)
			for i := range labels {
				labels[i] = g.label()
			}
			join := g.label()
			// andi with mask arms-1 always yields a value <= arms-1, so the
			// selector is in range for any arm count.
			g.emit("    andi r%d, r%d, %d", r, g.reg(), arms-1)
			g.emit("    ijump r%d, [%s]", r, strings.Join(labels, ", "))
			for i, l := range labels {
				g.emit("%s:", l)
				g.emit("    addi r%d, r%d, %d", g.reg(), g.reg(), i)
				if i != arms-1 {
					g.emit("    br %s", join)
				}
			}
			g.emit("%s:", join)
		case 4: // memory op
			r := g.reg()
			g.emit("    andi r%d, r%d, 63", r, g.reg())
			g.emit("    st r%d, 0(r%d)", g.reg(), r)
			g.emit("    ld r%d, 0(r%d)", g.reg(), r)
		case 5: // early-ish exit guard (never actually triggers on r31)
			skip := g.label()
			g.emit("    beqz r31, %s", skip)
			g.emit("    halt")
			g.emit("%s:", skip)
		}
	}
}

func genProgramSrc(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	nProcs := 1 + g.rng.Intn(3)
	g.emit("mem 128")
	g.emit("proc main")
	g.body(0, 3+g.rng.Intn(4))
	for p := 1; p <= nProcs; p++ {
		if g.rng.Intn(2) == 0 {
			g.emit("    call f%d", p)
		}
	}
	g.emit("    halt")
	g.emit("endproc")
	for p := 1; p <= nProcs; p++ {
		g.emit("proc f%d", p)
		g.body(1, 2+g.rng.Intn(3))
		g.emit("    ret")
		g.emit("endproc")
	}
	return g.sb.String()
}

func fuzzOptions() []Options {
	return []Options{
		{Algorithm: AlgoGreedy},
		{Algorithm: AlgoGreedy, Order: OrderBTFNT},
		{Algorithm: AlgoCost, Model: cost.FallthroughModel{}},
		{Algorithm: AlgoCost, Model: cost.BTFNTModel{}},
		{Algorithm: AlgoCost, Model: cost.PHTModel{}},
		{Algorithm: AlgoTryN, Model: cost.FallthroughModel{}, Window: 6},
		{Algorithm: AlgoTryN, Model: cost.BTFNTModel{}, Window: 6, Order: OrderBTFNT},
		{Algorithm: AlgoTryN, Model: cost.LikelyModel{}, Window: 4},
		{Algorithm: AlgoTryN, Model: cost.BTBModel{}, Window: 10},
		{Algorithm: AlgoExtTSP},
		{Algorithm: AlgoExtTSP, Model: cost.PHTModel{}},
	}
}

// TestFuzzAlignmentSemantics aligns dozens of random executable programs
// with every algorithm/model combination and checks, for each: the aligned
// program validates; it computes identical registers and memory; the
// dynamic instruction delta predicted by the rewriter matches execution;
// and the transferred profile matches a fresh profile of the aligned
// program exactly.
func TestFuzzAlignmentSemantics(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		src := genProgramSrc(int64(seed))
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		pf := profileByVM(t, prog, nil)
		wantRegs, wantMem, origInstrs := runVM(t, prog, nil)

		for oi, opts := range fuzzOptions() {
			res, err := AlignProgram(prog, pf, opts)
			if err != nil {
				t.Fatalf("seed %d opts %d: align: %v", seed, oi, err)
			}
			if err := res.Prog.Validate(); err != nil {
				t.Fatalf("seed %d opts %d: invalid: %v", seed, oi, err)
			}
			gotRegs, gotMem, gotInstrs := runVM(t, res.Prog, nil)
			for r := range wantRegs {
				if gotRegs[r] != wantRegs[r] {
					t.Fatalf("seed %d opts %d: r%d = %d, want %d", seed, oi, r, gotRegs[r], wantRegs[r])
				}
			}
			for a := range wantMem {
				if gotMem[a] != wantMem[a] {
					t.Fatalf("seed %d opts %d: mem[%d] = %d, want %d", seed, oi, a, gotMem[a], wantMem[a])
				}
			}
			if int64(gotInstrs) != int64(origInstrs)+res.Stats.DynInstrDelta {
				t.Fatalf("seed %d opts %d: instr delta mismatch: got %d, orig %d, delta %d",
					seed, oi, gotInstrs, origInstrs, res.Stats.DynInstrDelta)
			}
			fresh := profileByVM(t, res.Prog, nil)
			for name, want := range fresh.Procs {
				got := res.Prof.Procs[name]
				if got == nil {
					t.Fatalf("seed %d opts %d: missing transferred proc %q", seed, oi, name)
				}
				for e, w := range want.Edges {
					if got.Edges[e] != w {
						t.Fatalf("seed %d opts %d: proc %s edge %v: transferred %d, fresh %d",
							seed, oi, name, e, got.Edges[e], w)
					}
				}
				for b, c := range want.Branches {
					if got.Branches[b] != c {
						t.Fatalf("seed %d opts %d: proc %s branch %d: transferred %+v, fresh %+v",
							seed, oi, name, b, got.Branches[b], c)
					}
				}
			}
		}
	}
}

// TestFuzzAlignmentNeverWorsensModelCost checks the model-guided algorithms
// never increase the cost they optimize for (Greedy has no such guarantee,
// but Cost and TryN justify every decision against the model).
func TestFuzzAlignmentNeverWorsensModelCost(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	models := []cost.Model{cost.FallthroughModel{}, cost.BTFNTModel{},
		cost.LikelyModel{}, cost.PHTModel{}, cost.BTBModel{}}
	for seed := 100; seed < 100+seeds; seed++ {
		src := genProgramSrc(int64(seed))
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pf := profileByVM(t, prog, nil)
		for _, m := range models {
			before := cost.ProgramCost(prog, pf, m)
			res, err := AlignProgram(prog, pf, Options{Algorithm: AlgoTryN, Model: m, Window: 6})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, m.Name(), err)
			}
			after := cost.ProgramCost(res.Prog, res.Prof, m)
			// Allow a tiny tolerance: the in-flight backward estimate can
			// differ from final placement.
			if after > before*1.05+1 {
				t.Errorf("seed %d %s: TryN worsened model cost %.1f -> %.1f", seed, m.Name(), before, after)
			}
		}
	}
}

// TestFuzzIdempotence: aligning an already-aligned program again must not
// change semantics and should not significantly change cost.
func TestFuzzIdempotence(t *testing.T) {
	for seed := 200; seed < 210; seed++ {
		prog, err := asm.Assemble(genProgramSrc(int64(seed)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pf := profileByVM(t, prog, nil)
		m := cost.FallthroughModel{}
		once, err := AlignProgram(prog, pf, Options{Algorithm: AlgoTryN, Model: m, Window: 6})
		if err != nil {
			t.Fatal(err)
		}
		twice, err := AlignProgram(once.Prog, once.Prof, Options{Algorithm: AlgoTryN, Model: m, Window: 6})
		if err != nil {
			t.Fatal(err)
		}
		wantRegs, _, _ := runVM(t, prog, nil)
		gotRegs, _, _ := runVM(t, twice.Prog, nil)
		for r := range wantRegs {
			if gotRegs[r] != wantRegs[r] {
				t.Fatalf("seed %d: double alignment broke semantics (r%d)", seed, r)
			}
		}
		c1 := cost.ProgramCost(once.Prog, once.Prof, m)
		c2 := cost.ProgramCost(twice.Prog, twice.Prof, m)
		if c2 > c1*1.10+1 {
			t.Errorf("seed %d: realignment worsened cost %.1f -> %.1f", seed, c1, c2)
		}
	}
}

// TestFuzzFormatRoundTripAfterAlignment: aligned programs must survive the
// assembler round trip with identical semantics (the balign tool writes
// assembly back out).
func TestFuzzFormatRoundTrip(t *testing.T) {
	for seed := 300; seed < 312; seed++ {
		prog, err := asm.Assemble(genProgramSrc(int64(seed)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pf := profileByVM(t, prog, nil)
		res, err := AlignProgram(prog, pf, Options{Algorithm: AlgoGreedy})
		if err != nil {
			t.Fatal(err)
		}
		reparsed, err := asm.Assemble(res.Prog.Format())
		if err != nil {
			t.Fatalf("seed %d: reassemble aligned program: %v\n%s", seed, err, res.Prog.Format())
		}
		wantRegs, wantMem, _ := runVM(t, res.Prog, nil)
		gotRegs, gotMem, _ := runVM(t, reparsed, nil)
		for r := range wantRegs {
			if gotRegs[r] != wantRegs[r] {
				t.Fatalf("seed %d: round trip changed r%d", seed, r)
			}
		}
		for a := range wantMem {
			if gotMem[a] != wantMem[a] {
				t.Fatalf("seed %d: round trip changed mem[%d]", seed, a)
			}
		}
	}
}

var _ = vm.New // keep the import for helpers defined in core_test.go
