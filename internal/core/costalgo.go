package core

import (
	"math"

	"balign/internal/cost"
	"balign/internal/ir"
	"balign/internal/profile"
)

// nodeInfo summarizes one alignable node (a block with out-degree one or
// two) for the cost-model-guided algorithms.
type nodeInfo struct {
	id     ir.BlockID
	isCond bool
	// Conditional: t/f are the taken and fall-through targets with their
	// weights. Single-exit (unconditional branch or pure fall-through): t
	// is the successor and wT its weight; f is unused.
	t, f   ir.BlockID
	wT, wF uint64
	valid  bool
	// domBackT/domBackF report whether the edge to t (resp. f) is a loop
	// back edge — the target dominates this node — in which case every
	// sensible chain layout places the target before the branch and the
	// BT/FNT model may count the branch as predicted.
	domBackT, domBackF bool
	// posHint, when non-nil, gives each block's position in a previous
	// layout of the same procedure; TryN's placement-feedback pass uses it
	// as the backward estimate instead of the original block order.
	posHint []int
}

// backTo estimates whether target (one of ni.t / ni.f) will lie at or
// before ni in the final layout: certain for loop back edges (dominance),
// the original block order otherwise. The paper notes exactly this
// difficulty for BT/FNT: final positions are unknown while chains form.
func (ni *nodeInfo) backTo(target ir.BlockID) bool {
	if ni.posHint != nil {
		return ni.posHint[target] <= ni.posHint[ni.id]
	}
	if target == ni.t && ni.domBackT {
		return true
	}
	if target == ni.f && ni.domBackF {
		return true
	}
	return backwardEst(ni.id, target)
}

// buildNodeInfos computes nodeInfo for every block of p.
func buildNodeInfos(p *ir.Proc, pp *profile.ProcProfile) []nodeInfo {
	idom := p.Dominators()
	infos := make([]nodeInfo, len(p.Blocks))
	for id, b := range p.Blocks {
		bid := ir.BlockID(id)
		ni := &infos[id]
		ni.id = bid
		term, ok := b.Terminator()
		switch {
		case ok && term.Kind() == ir.CondBr:
			ni.valid, ni.isCond = true, true
			ni.t = term.TargetBlock
			ni.f = bid + 1
			if ni.t == ni.f {
				c := pp.Branches[bid]
				ni.wT, ni.wF = c.Taken, c.Fall
			} else {
				ni.wT = pp.Weight(bid, ni.t)
				ni.wF = pp.Weight(bid, ni.f)
			}
			ni.domBackT = ir.Dominates(idom, ni.t, bid)
			ni.domBackF = ir.Dominates(idom, ni.f, bid)
		case ok && term.Kind() == ir.Br:
			ni.valid = true
			ni.t = term.TargetBlock
			ni.wT = pp.Weight(bid, ni.t)
			ni.domBackT = ir.Dominates(idom, ni.t, bid)
		case !ok && b.FallsThrough() && int(bid)+1 < len(p.Blocks):
			ni.valid = true
			ni.t = bid + 1
			ni.wT = pp.Weight(bid, ni.t)
			ni.domBackT = ir.Dominates(idom, ni.t, bid)
		}
	}
	return infos
}

// backwardEst is the position fallback when dominance says nothing: in the
// original layout, loop targets usually precede their branches.
func backwardEst(src, dst ir.BlockID) bool { return dst <= src }

// alignCost prices the node with fallTarget as its layout fall-through.
// Single-exit nodes cost nothing when aligned (the branch disappears or was
// never there); conditionals pay the model's branch cost with the other
// successor as the taken direction.
func (ni *nodeInfo) alignCost(m cost.Model, fallTarget ir.BlockID) float64 {
	if !ni.isCond {
		return 0
	}
	if fallTarget == ni.f {
		return m.CondBranch(ni.wF, ni.wT, ni.backTo(ni.t))
	}
	// Inverted: old taken target becomes the fall-through.
	return m.CondBranch(ni.wT, ni.wF, ni.backTo(ni.f))
}

// jumpCost prices a single-exit node left unaligned: its edge is reached
// through an unconditional branch.
func (ni *nodeInfo) jumpCost(m cost.Model) float64 { return m.Uncond(ni.wT) }

// neitherCost prices a conditional with neither successor as fall-through:
// the conditional branch plus a synthesized jump carrying the colder (or
// hotter, whichever orientation is cheaper) direction.
func (ni *nodeInfo) neitherCost(m cost.Model) float64 {
	keep := m.CondBranch(ni.wF, ni.wT, ni.backTo(ni.t)) + m.Uncond(ni.wF)
	inv := m.CondBranch(ni.wT, ni.wF, ni.backTo(ni.f)) + m.Uncond(ni.wT)
	return math.Min(keep, inv)
}

// bestUnaligned prices the node's cheapest arrangement in which `exclude`
// is NOT its fall-through: for conditionals, aligning the other successor
// or aligning neither; for single-exit nodes, the jump.
func (ni *nodeInfo) bestUnaligned(m cost.Model, exclude ir.BlockID) float64 {
	if !ni.isCond {
		return ni.jumpCost(m)
	}
	best := ni.neitherCost(m)
	other := ni.f
	if exclude == ni.f {
		other = ni.t
	}
	// A self edge can never be a fall-through.
	if other != ni.id && other != exclude {
		if c := ni.alignCost(m, other); c < best {
			best = c
		}
	}
	return best
}

// benefit is the local gain of making d the fall-through of node ni versus
// ni's best arrangement without d as fall-through.
func (ni *nodeInfo) benefit(m cost.Model, d ir.BlockID) float64 {
	return ni.bestUnaligned(m, d) - ni.alignCost(m, d)
}

// costLayout implements the paper's Cost algorithm: edges are processed
// hottest first as in Greedy, but a link is made only when the architecture
// cost model says it is locally worthwhile and the source is the most
// cost-effective predecessor of the destination. Afterwards, conditionals
// left without a committed fall-through are checked for the loop trick:
// when aligning neither edge (conditional + jump) is cheaper than the
// natural fall-through, the node is marked forceJump.
func costLayout(p *ir.Proc, pp *profile.ProcProfile, opts Options) ([]ir.BlockID, map[ir.BlockID]bool) {
	m := opts.Model
	c := newChains(p)
	infos := buildNodeInfos(p, pp)
	preds := alignablePreds(p)
	edges := alignableEdges(p, pp.Weight, 1)

	for _, e := range edges {
		if !c.canLink(e.from, e.to) {
			continue
		}
		ni := &infos[e.from]
		if !ni.valid {
			continue
		}
		// Is some other predecessor a better home for e.to?
		best := e.from
		bestGain := ni.benefit(m, e.to)
		for _, pr := range preds[e.to] {
			if pr == e.from || !infos[pr].valid || !c.canLink(pr, e.to) {
				continue
			}
			if g := infos[pr].benefit(m, e.to); g > bestGain ||
				(g == bestGain && pr < best) {
				best, bestGain = pr, g
			}
		}
		if best != e.from {
			continue
		}
		if bestGain < 0 {
			continue
		}
		c.link(e.from, e.to)
	}

	forceJump := make(map[ir.BlockID]bool)
	for i := range infos {
		ni := &infos[i]
		if !ni.valid || !ni.isCond || c.next[ni.id] != ir.NoBlock {
			continue
		}
		natural := ni.alignCost(m, ni.f)
		if ni.neitherCost(m) < natural {
			forceJump[ni.id] = true
		}
	}
	return orderChains(c, pp, opts.Order), forceJump
}

// alignablePreds returns, for each block, the predecessors whose edge to it
// could become a fall-through (conditional-taken, fall-through or
// unconditional edges only).
func alignablePreds(p *ir.Proc) [][]ir.BlockID {
	preds := make([][]ir.BlockID, len(p.Blocks))
	var scratch []ir.Edge
	for id := range p.Blocks {
		scratch = p.OutEdges(ir.BlockID(id), scratch[:0])
		for _, e := range scratch {
			if e.Kind == ir.EdgeIndirect {
				continue
			}
			preds[e.To] = append(preds[e.To], e.From)
		}
	}
	return preds
}
