package core

import (
	"fmt"

	"balign/internal/cost"
	"balign/internal/ir"
	"balign/internal/obs"
	"balign/internal/profile"
)

// Algorithm selects a branch alignment algorithm.
type Algorithm string

const (
	// AlgoOriginal performs no reordering (the paper's "Orig" columns).
	AlgoOriginal Algorithm = "orig"
	// AlgoGreedy is the Pettis & Hansen bottom-up chaining algorithm: link
	// the hottest edges first, no architecture cost model.
	AlgoGreedy Algorithm = "greedy"
	// AlgoCost is the paper's Cost heuristic: greedy edge processing, but
	// every link is justified against the architecture cost model, the best
	// predecessor of each block is preferred, and loops may be restructured
	// with inserted jumps when that is cheaper.
	AlgoCost Algorithm = "cost"
	// AlgoTryN is the paper's Try15 heuristic generalized to a configurable
	// window: the N hottest undecided edges are taken at a time and all
	// combinations of their nodes' alignment choices are evaluated under
	// the cost model.
	AlgoTryN Algorithm = "tryn"
	// AlgoExtTSP is Newell & Pupyrev's distance-weighted layout objective
	// (short-forward / short-backward / long-jump scoring) optimized by
	// chain merging with bounded chain splitting. It needs no architecture
	// cost model: the objective itself encodes fetch locality.
	AlgoExtTSP Algorithm = "exttsp"
)

// DefaultWindow is the paper's Try15 window size.
const DefaultWindow = 15

// DefaultMaxCombos bounds the exhaustive enumeration of one TryN window;
// conflict clusters whose combination count would exceed it are split, which
// trades optimality within the window for bounded time exactly as the
// paper's Try10 variant does.
const DefaultMaxCombos = 1 << 18

// DefaultMinWeight is the TryN edge filter: the paper only examines edges
// executed more than once.
const DefaultMinWeight = 2

// Options configures alignment.
type Options struct {
	// Algorithm is the alignment algorithm (default AlgoGreedy).
	Algorithm Algorithm
	// Model is the architecture cost model consulted by AlgoCost and
	// AlgoTryN and by the rewriter's jump-orientation decisions. Nil is
	// allowed for AlgoOriginal/AlgoGreedy (which do not use one) and
	// selects original-orientation jumps.
	Model cost.Model
	// Order is the chain layout order (default OrderHottest).
	Order ChainOrder
	// Window is the TryN group size (default DefaultWindow).
	Window int
	// MaxCombos caps one window's enumeration (default DefaultMaxCombos).
	MaxCombos int
	// MinWeight is the TryN minimum edge weight (default DefaultMinWeight).
	MinWeight uint64
	// Obs receives per-procedure alignment telemetry: plan (chain/cost/
	// tryN) and rewrite timings plus procedure counters, under
	// core.plan.<algorithm>.* / core.rewrite.* names. Nil disables
	// telemetry at zero cost (not even clock reads); telemetry never
	// influences layout decisions.
	Obs *obs.Recorder
}

func (o *Options) window() int {
	if o.Window <= 0 {
		return DefaultWindow
	}
	return o.Window
}

func (o *Options) maxCombos() int {
	if o.MaxCombos <= 0 {
		return DefaultMaxCombos
	}
	return o.MaxCombos
}

func (o *Options) minWeight() uint64 {
	if o.MinWeight == 0 {
		return DefaultMinWeight
	}
	return o.MinWeight
}

// Result is the outcome of aligning a program.
type Result struct {
	// Prog is the aligned program with addresses assigned.
	Prog *ir.Program
	// Prof is the input profile transferred onto the aligned program's
	// block IDs (same traversal counts, new keys, jump-block detours
	// included); its Instrs field is adjusted by the expected dynamic
	// instruction delta from inserted/removed jumps.
	Prof *profile.Profile
	// Stats aggregates the rewriter's work across all procedures.
	Stats RewriteStats
}

// AlignProgram aligns every procedure of prog using the profile pf and
// returns the rewritten program, the transferred profile and rewrite
// statistics. Procedures without profile data keep their original layout.
// The input program and profile are not modified.
func AlignProgram(prog *ir.Program, pf *profile.Profile, opts Options) (*Result, error) {
	// Feed entry blocks their invocation counts (derived from caller block
	// weights) so absolute-weight consumers — ExtTSP distances, chain
	// weights, downstream procedure ordering on the aligned result — see
	// full-strength entry executions. The input profile is not modified;
	// the enriched counts flow into the transferred output profile.
	pf = withEntryCounts(prog, pf)
	out := &ir.Program{
		Name:      prog.Name,
		EntryProc: prog.EntryProc,
		MemWords:  prog.MemWords,
	}
	npf := profile.New(pf.Program)
	res := &Result{Prog: out, Prof: npf}

	for _, p := range prog.Procs {
		pp, ok := pf.Procs[p.Name]
		if !ok || opts.Algorithm == AlgoOriginal || opts.Algorithm == "" {
			out.Procs = append(out.Procs, p.Clone())
			if ok {
				npf.Procs[p.Name] = clonePP(pp)
			}
			continue
		}
		planStart := opts.Obs.Now()
		layout, forceJump, err := planLayout(p, pp, opts)
		if err != nil {
			return nil, fmt.Errorf("core: aligning %q: %w", p.Name, err)
		}
		opts.Obs.AddSince("core.plan."+string(opts.Algorithm)+".ns", planStart)
		opts.Obs.Add("core.plan."+string(opts.Algorithm)+".procs", 1)
		rewriteStart := opts.Obs.Now()
		np, npp, stats, err := rewriteProc(p, pp, layout, opts.Model, forceJump)
		if err != nil {
			return nil, fmt.Errorf("core: rewriting %q: %w", p.Name, err)
		}
		opts.Obs.AddSince("core.rewrite.ns", rewriteStart)
		// Cost guard for the model-guided algorithms: the chaining passes
		// optimize link decisions locally and can, on rare shapes, produce a
		// whole-procedure layout the guiding model prices worse than the
		// incumbent. Realignment must never regress its own objective, so
		// keep the original layout in that case.
		if opts.Model != nil && (opts.Algorithm == AlgoCost || opts.Algorithm == AlgoTryN) {
			assignProcAddrs(np, p.Blocks[0].Addr)
			if cost.ProcCost(np, npp, opts.Model) > cost.ProcCost(p, pp, opts.Model) {
				opts.Obs.Add("core.costguard.kept", 1)
				out.Procs = append(out.Procs, p.Clone())
				npf.Procs[p.Name] = clonePP(pp)
				continue
			}
		}
		out.Procs = append(out.Procs, np)
		npf.Procs[p.Name] = npp
		res.Stats.Add(stats)
	}

	newInstrs := int64(pf.Instrs) + res.Stats.DynInstrDelta
	if newInstrs < 0 {
		newInstrs = 0
	}
	npf.Instrs = uint64(newInstrs)

	out.AssignAddresses(0x1000)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: aligned program invalid: %w", err)
	}
	return res, nil
}

// planLayout runs the selected algorithm over one procedure and returns the
// block layout plus any "align neither edge" decisions.
func planLayout(p *ir.Proc, pp *profile.ProcProfile, opts Options) ([]ir.BlockID, map[ir.BlockID]bool, error) {
	switch opts.Algorithm {
	case AlgoGreedy:
		return greedyLayout(p, pp, opts), nil, nil
	case AlgoCost:
		if opts.Model == nil {
			return nil, nil, fmt.Errorf("algorithm %q requires a cost model", opts.Algorithm)
		}
		layout, force := costLayout(p, pp, opts)
		return layout, force, nil
	case AlgoTryN:
		if opts.Model == nil {
			return nil, nil, fmt.Errorf("algorithm %q requires a cost model", opts.Algorithm)
		}
		layout, force := tryNLayout(p, pp, opts)
		return layout, force, nil
	case AlgoExtTSP:
		return extTSPLayout(p, pp), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", opts.Algorithm)
	}
}

// greedyLayout implements Pettis & Hansen's bottom-up chaining: process
// edges in descending weight order, linking source to destination whenever
// the source is a chain tail and the destination a chain head of different
// chains.
func greedyLayout(p *ir.Proc, pp *profile.ProcProfile, opts Options) []ir.BlockID {
	c := newChains(p)
	edges := alignableEdges(p, pp.Weight, 1)
	for _, e := range edges {
		if c.canLink(e.from, e.to) {
			c.link(e.from, e.to)
		}
	}
	return orderChains(c, pp, opts.Order)
}

// finishLinks greedily links any remaining feasible edges (used by Cost and
// TryN after their model-guided passes so cold blocks still form reasonable
// chains rather than arbitrary singletons). Edges whose source made an
// explicit "neither" decision are skipped.
func finishLinks(c *chains, p *ir.Proc, pp *profile.ProcProfile, skip map[ir.BlockID]bool) {
	edges := alignableEdges(p, pp.Weight, 1)
	for _, e := range edges {
		if skip[e.from] {
			continue
		}
		if c.canLink(e.from, e.to) {
			c.link(e.from, e.to)
		}
	}
}

// assignProcAddrs lays one procedure's blocks out contiguously from base so
// direction-sensitive cost models (BT/FNT) can price a candidate layout
// before whole-program address assignment. Only intra-procedure relative
// positions matter to ProcCost, so any base works.
func assignProcAddrs(p *ir.Proc, base uint64) {
	addr := base
	for _, b := range p.Blocks {
		b.Addr = addr
		addr += uint64(len(b.Instrs)) * ir.InstrBytes
	}
}

func clonePP(pp *profile.ProcProfile) *profile.ProcProfile {
	np := profile.NewProcProfile()
	np.EntryCount = pp.EntryCount
	for e, w := range pp.Edges {
		np.Edges[e] = w
	}
	for b, cnt := range pp.Branches {
		np.Branches[b] = cnt
	}
	return np
}

// withEntryCounts returns a view of pf whose procedure profiles carry entry
// invocation counts, deriving missing ones from caller block weights
// (ProcHotness). Profiles that already record every entry count are
// returned as-is; otherwise the returned profile shares pf's maps and pf is
// not modified.
func withEntryCounts(prog *ir.Program, pf *profile.Profile) *profile.Profile {
	needs := false
	for _, p := range prog.Procs {
		if pp, ok := pf.Procs[p.Name]; ok && pp.EntryCount == 0 {
			needs = true
			break
		}
	}
	if !needs {
		return pf
	}
	hot := ProcHotness(prog, pf)
	out := &profile.Profile{
		Program: pf.Program,
		Instrs:  pf.Instrs,
		Procs:   make(map[string]*profile.ProcProfile, len(pf.Procs)),
	}
	for name, pp := range pf.Procs {
		out.Procs[name] = pp
	}
	for pi, p := range prog.Procs {
		pp, ok := pf.Procs[p.Name]
		if !ok || pp.EntryCount > 0 || hot[pi] == 0 {
			continue
		}
		out.Procs[p.Name] = &profile.ProcProfile{
			Edges:      pp.Edges,
			Branches:   pp.Branches,
			EntryCount: hot[pi],
		}
	}
	return out
}
