package core

import (
	"fmt"

	"balign/internal/cost"
	"balign/internal/ir"
	"balign/internal/profile"
)

// RewriteStats reports what the rewriter did to one procedure.
type RewriteStats struct {
	// JumpsInserted counts unconditional branch blocks synthesized to
	// preserve fall-through semantics.
	JumpsInserted int
	// JumpsRemoved counts unconditional branches deleted because their
	// target now follows them.
	JumpsRemoved int
	// BranchesInverted counts conditional branches whose sense was flipped.
	BranchesInverted int
	// DynInstrDelta is the expected change in dynamically executed
	// instructions: +weight for every inserted jump's traversals, -weight
	// for every removed jump's traversals.
	DynInstrDelta int64
}

// Add accumulates other into s.
func (s *RewriteStats) Add(other RewriteStats) {
	s.JumpsInserted += other.JumpsInserted
	s.JumpsRemoved += other.JumpsRemoved
	s.BranchesInverted += other.BranchesInverted
	s.DynInstrDelta += other.DynInstrDelta
}

// rewriteProc materializes a block layout for p: blocks are emitted in
// layout order, conditional branches are inverted when their taken target
// becomes the fall-through, unconditional branches to the next block are
// deleted, and jump blocks are synthesized where a fall-through edge no
// longer reaches the next block. The edge profile pp (keyed by p's block
// IDs) is transferred to the new block IDs, with jump-block detours and
// outcome swaps applied.
//
// model chooses the orientation of a conditional branch when neither
// successor follows it (the cheaper of branch-to-taken + jump-to-fall vs the
// inverse); a nil model keeps the original orientation, which is what the
// Greedy algorithm — defined without a cost model — does.
//
// forceJump (nil allowed) lists conditional-branch blocks the alignment
// algorithm decided to align with *neither* successor as the fall-through:
// the branch gets a jump block even when a successor happens to follow in
// the layout. This realizes the paper's loop trick — inverting the sense of
// a hot self-loop's conditional and following it with a jump is cheaper than
// a mispredicted taken branch on the FALLTHROUGH architecture (3 cycles per
// iteration instead of 5).
func rewriteProc(p *ir.Proc, pp *profile.ProcProfile, layout []ir.BlockID, model cost.Model, forceJump map[ir.BlockID]bool) (*ir.Proc, *profile.ProcProfile, RewriteStats, error) {
	var stats RewriteStats
	if len(layout) != len(p.Blocks) {
		return nil, nil, stats, fmt.Errorf("core: layout has %d blocks, proc %q has %d",
			len(layout), p.Name, len(p.Blocks))
	}
	pos := make([]int, len(p.Blocks))
	seen := make([]bool, len(p.Blocks))
	for i, b := range layout {
		if b < 0 || int(b) >= len(p.Blocks) || seen[b] {
			return nil, nil, stats, fmt.Errorf("core: layout for %q is not a permutation", p.Name)
		}
		seen[b] = true
		pos[b] = i
	}
	if layout[0] != p.Entry() {
		return nil, nil, stats, fmt.Errorf("core: layout for %q does not start with the entry block", p.Name)
	}

	np := &ir.Proc{Name: p.Name}
	oldToNew := make([]ir.BlockID, len(p.Blocks))
	inverted := make([]bool, len(p.Blocks))
	// jumpVia[old src] = (old dst, new jump block) for edges routed through
	// a synthesized jump block.
	type jumpRoute struct {
		oldDst ir.BlockID
		via    ir.BlockID
	}
	jumpVia := make(map[ir.BlockID]jumpRoute)

	// branchWeights returns the taken/fall weights of the conditional
	// branch ending old block b with taken target T and fall target F.
	branchWeights := func(b, t, f ir.BlockID) (wTaken, wFall uint64) {
		if t == f {
			c := pp.Branches[b]
			return c.Taken, c.Fall
		}
		return pp.Weight(b, t), pp.Weight(b, f)
	}

	// appendJump synthesizes a jump block targeting old block dst (patched
	// to new IDs later) and records the detour for edge transfer.
	appendJump := func(src, dst ir.BlockID, w uint64) {
		jb := &ir.Block{
			Orig:   ir.NoBlock,
			Instrs: []ir.Instr{{Op: ir.OpBr, TargetBlock: dst}},
		}
		np.Blocks = append(np.Blocks, jb)
		jumpVia[src] = jumpRoute{oldDst: dst, via: ir.BlockID(len(np.Blocks) - 1)}
		stats.JumpsInserted++
		stats.DynInstrDelta += int64(w)
	}

	for i, old := range layout {
		b := p.Blocks[old]
		nb := b.Clone()
		np.Blocks = append(np.Blocks, nb)
		oldToNew[old] = ir.BlockID(len(np.Blocks) - 1)

		var nxt ir.BlockID = ir.NoBlock
		if i+1 < len(layout) {
			nxt = layout[i+1]
		}

		// emitNeither realizes a conditional with neither successor as the
		// layout fall-through: the branch plus a synthesized jump block,
		// oriented whichever way the model prices cheaper.
		emitNeither := func(term *ir.Instr, old, t, f ir.BlockID, i int) {
			wT, wF := branchWeights(old, t, f)
			invertIt := false
			if model != nil && t != f {
				keep := model.CondBranch(wF, wT, pos[t] <= i) + model.Uncond(wF)
				inv := model.CondBranch(wT, wF, pos[f] <= i) + model.Uncond(wT)
				invertIt = inv < keep
			}
			if invertIt {
				term.Op = ir.InvertBranch(term.Op)
				term.TargetBlock = f
				inverted[old] = true
				stats.BranchesInverted++
				appendJump(old, t, wT)
			} else {
				appendJump(old, f, wF)
			}
		}

		term, hasTerm := nb.Terminator()
		switch {
		case hasTerm && term.Kind() == ir.CondBr:
			t := term.TargetBlock
			f := old + 1 // valid programs: a CondBr block always falls through to old+1
			switch {
			case forceJump[old]:
				// Explicit "align neither edge" decision from the
				// alignment algorithm (the paper's loop trick).
				emitNeither(term, old, t, f, i)
			case nxt == f:
				// Fall-through preserved; taken target patched later.
			case nxt == t && t != f:
				term.Op = ir.InvertBranch(term.Op)
				term.TargetBlock = f
				inverted[old] = true
				stats.BranchesInverted++
			default:
				emitNeither(term, old, t, f, i)
			}

		case hasTerm && term.Kind() == ir.Br:
			if term.TargetBlock == nxt {
				nb.Instrs = nb.Instrs[:len(nb.Instrs)-1]
				stats.JumpsRemoved++
				stats.DynInstrDelta -= int64(pp.Weight(old, nxt))
			}

		case !hasTerm && b.FallsThrough():
			f := old + 1
			if int(f) < len(p.Blocks) && nxt != f {
				appendJump(old, f, pp.Weight(old, f))
			}
		}
	}

	// Patch all branch targets from old to new block IDs.
	for _, nb := range np.Blocks {
		for ii := range nb.Instrs {
			in := &nb.Instrs[ii]
			switch in.Kind() {
			case ir.CondBr, ir.Br:
				in.TargetBlock = oldToNew[in.TargetBlock]
			case ir.IJump:
				for k, t := range in.Targets {
					in.Targets[k] = oldToNew[t]
				}
			}
		}
	}

	// Transfer the profile. The entry block keeps ID 0 across the rewrite
	// (layouts start with the entry), so the invocation count carries over.
	npp := profile.NewProcProfile()
	npp.EntryCount = pp.EntryCount
	for e, w := range pp.Edges {
		if int(e.From) >= len(oldToNew) || int(e.To) >= len(oldToNew) {
			continue
		}
		src := oldToNew[e.From]
		if route, ok := jumpVia[e.From]; ok && route.oldDst == e.To {
			npp.Edges[profile.Edge{From: src, To: route.via}] += w
			npp.Edges[profile.Edge{From: route.via, To: oldToNew[e.To]}] += w
			continue
		}
		npp.Edges[profile.Edge{From: src, To: oldToNew[e.To]}] += w
	}
	for old, c := range pp.Branches {
		if int(old) >= len(oldToNew) {
			continue
		}
		if inverted[old] {
			c.Taken, c.Fall = c.Fall, c.Taken
		}
		npp.Branches[oldToNew[old]] = c
	}
	return np, npp, stats, nil
}
