package core

import (
	"fmt"
	"sort"

	"balign/internal/ir"
	"balign/internal/profile"
)

// ProcHotness estimates each procedure's dynamic call frequency from an
// edge profile: the execution count of every block containing a call,
// accumulated per callee. (The paper's tool chain had exact call counts
// from ATOM; block weights are the equivalent information our profile
// keeps.)
func ProcHotness(prog *ir.Program, pf *profile.Profile) []uint64 {
	hot := make([]uint64, len(prog.Procs))
	for _, p := range prog.Procs {
		pp, ok := pf.Procs[p.Name]
		if !ok {
			continue
		}
		blockWeight := make(map[ir.BlockID]uint64)
		for e, w := range pp.Edges {
			blockWeight[e.To] += w
		}
		for id, b := range p.Blocks {
			w := blockWeight[ir.BlockID(id)]
			if id == int(p.Entry()) && w == 0 {
				w = 1 // entry executes at least once per call
			}
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Kind() == ir.Call && in.TargetProc >= 0 && in.TargetProc < len(hot) {
					hot[in.TargetProc] += w
				}
			}
		}
	}
	return hot
}

// ReorderProcs lays procedures out hottest-first — the inter-procedural
// counterpart of chain ordering, analogous to Pettis & Hansen's procedure
// positioning (which the paper deliberately leaves out; provided here as an
// extension). The entry procedure always stays first; call targets are
// remapped, so semantics are unchanged. The profile needs no transfer: it
// is keyed by procedure name.
func ReorderProcs(prog *ir.Program, pf *profile.Profile) (*ir.Program, error) {
	hot := ProcHotness(prog, pf)
	order := make([]int, len(prog.Procs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if ia == prog.EntryProc {
			return true
		}
		if ib == prog.EntryProc {
			return false
		}
		if hot[ia] != hot[ib] {
			return hot[ia] > hot[ib]
		}
		return ia < ib
	})

	oldToNew := make([]int, len(prog.Procs))
	out := &ir.Program{Name: prog.Name, MemWords: prog.MemWords}
	for newIdx, oldIdx := range order {
		out.Procs = append(out.Procs, prog.Procs[oldIdx].Clone())
		oldToNew[oldIdx] = newIdx
	}
	out.EntryProc = oldToNew[prog.EntryProc]

	for _, p := range out.Procs {
		for _, b := range p.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Kind() == ir.Call {
					in.TargetProc = oldToNew[in.TargetProc]
				}
			}
		}
	}
	out.AssignAddresses(0x1000)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: reordered program invalid: %w", err)
	}
	return out, nil
}
