package core

import (
	"fmt"
	"sort"

	"balign/internal/ir"
	"balign/internal/profile"
)

// ProcHotness estimates each procedure's dynamic invocation count from an
// edge profile: the execution count of every block containing a call,
// accumulated per callee, plus one initial invocation for the program entry
// procedure. (The paper's tool chain had exact call counts from ATOM; block
// weights are the equivalent information our profile keeps.)
//
// Entry-block weights come from ProcProfile.EntryCount when the profile
// carries it; otherwise they are derived by a second pass that feeds the
// first pass's invocation counts back into entry-block weights, so calls
// made from entry blocks are counted at full strength instead of the
// at-least-once floor the bootstrap pass uses.
func ProcHotness(prog *ir.Program, pf *profile.Profile) []uint64 {
	hot := procHotnessPass(prog, pf, nil)
	hot = procHotnessPass(prog, pf, hot)
	if prog.EntryProc >= 0 && prog.EntryProc < len(hot) {
		hot[prog.EntryProc]++
	}
	return hot
}

// procHotnessPass accumulates callee invocation counts over one sweep.
// entry supplies per-procedure entry-block weights for procedures whose
// profile lacks an EntryCount; a nil entry falls back to the at-least-once
// bootstrap floor.
func procHotnessPass(prog *ir.Program, pf *profile.Profile, entry []uint64) []uint64 {
	hot := make([]uint64, len(prog.Procs))
	for pi, p := range prog.Procs {
		pp, ok := pf.Procs[p.Name]
		if !ok {
			continue
		}
		blockWeight := make(map[ir.BlockID]uint64)
		for e, w := range pp.Edges {
			blockWeight[e.To] += w
		}
		for id, b := range p.Blocks {
			w := blockWeight[ir.BlockID(id)]
			if ir.BlockID(id) == p.Entry() {
				switch {
				case pp.EntryCount > 0:
					w += pp.EntryCount
				case entry != nil:
					w += entry[pi]
				}
				if w == 0 {
					w = 1 // entry executes at least once per call
				}
			}
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Kind() == ir.Call && in.TargetProc >= 0 && in.TargetProc < len(hot) {
					hot[in.TargetProc] += w
				}
			}
		}
	}
	return hot
}

// checkCallTargets verifies that every call in prog names a remappable
// procedure, returning a descriptive error for indirect calls
// (TargetProc < 0, which carry no static callee to remap) and for
// out-of-range targets (a malformed program that would otherwise corrupt
// the remap or panic).
func checkCallTargets(prog *ir.Program) error {
	for _, p := range prog.Procs {
		for bid, b := range p.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Kind() != ir.Call {
					continue
				}
				if in.TargetProc < 0 {
					return fmt.Errorf("core: proc %q block %d instr %d: indirect call (TargetProc %d) cannot be remapped across a procedure reorder",
						p.Name, bid, ii, in.TargetProc)
				}
				if in.TargetProc >= len(prog.Procs) {
					return fmt.Errorf("core: proc %q block %d instr %d: call target %d out of range (program has %d procs)",
						p.Name, bid, ii, in.TargetProc, len(prog.Procs))
				}
			}
		}
	}
	return nil
}

// applyProcOrder rebuilds prog with its procedures in the given order
// (a permutation of procedure indices), remapping every call target and
// reassigning addresses. The entry procedure may move; EntryProc is
// remapped with everything else.
func applyProcOrder(prog *ir.Program, order []int) (*ir.Program, error) {
	if err := checkCallTargets(prog); err != nil {
		return nil, err
	}
	oldToNew := make([]int, len(prog.Procs))
	out := &ir.Program{Name: prog.Name, MemWords: prog.MemWords}
	for newIdx, oldIdx := range order {
		out.Procs = append(out.Procs, prog.Procs[oldIdx].Clone())
		oldToNew[oldIdx] = newIdx
	}
	out.EntryProc = oldToNew[prog.EntryProc]

	for _, p := range out.Procs {
		for _, b := range p.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Kind() == ir.Call {
					in.TargetProc = oldToNew[in.TargetProc]
				}
			}
		}
	}
	out.AssignAddresses(0x1000)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: reordered program invalid: %w", err)
	}
	return out, nil
}

// ReorderProcs lays procedures out hottest-first — the inter-procedural
// counterpart of chain ordering, analogous to Pettis & Hansen's procedure
// positioning (which the paper deliberately leaves out; provided here as an
// extension). The entry procedure always stays first; call targets are
// remapped, so semantics are unchanged. The profile needs no transfer: it
// is keyed by procedure name. Programs containing indirect calls
// (TargetProc < 0) or out-of-range call targets are rejected with a
// descriptive error — their call sites cannot be remapped.
func ReorderProcs(prog *ir.Program, pf *profile.Profile) (*ir.Program, error) {
	if err := checkCallTargets(prog); err != nil {
		return nil, err
	}
	hot := ProcHotness(prog, pf)
	order := make([]int, len(prog.Procs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if ia == prog.EntryProc {
			return true
		}
		if ib == prog.EntryProc {
			return false
		}
		if hot[ia] != hot[ib] {
			return hot[ia] > hot[ib]
		}
		return ia < ib
	})
	return applyProcOrder(prog, order)
}

// Procedure-ordering distance windows: the block-level ExtTSP windows model
// a fetch window and a BTB reach; across procedures the relevant locality
// radius is the instruction cache, so the windows scale up accordingly
// (8 KB I-cache default in internal/icache).
const (
	procForwardWindow  = 8192
	procBackwardWindow = 4096
	procJumpWeight     = 0.2
)

// ReorderProcsExtTSP orders whole procedures by the ExtTSP objective over
// the call graph: each procedure is a node sized by its code bytes, each
// call site an edge weighted by its block's execution count (entry counts
// included), and the chain-merging optimizer maximizes the
// distance-weighted score with I-cache-scale windows so hot caller/callee
// pairs land close. The entry procedure stays first. Like ReorderProcs it
// rejects indirect and out-of-range call targets with a descriptive error.
func ReorderProcsExtTSP(prog *ir.Program, pf *profile.Profile) (*ir.Program, error) {
	if err := checkCallTargets(prog); err != nil {
		return nil, err
	}
	hot := ProcHotness(prog, pf)
	sizes := make([]uint64, len(prog.Procs))
	edges := make([]tspEdge, 0, len(prog.Procs))
	for pi, p := range prog.Procs {
		for _, b := range p.Blocks {
			sizes[pi] += uint64(len(b.Instrs)) * ir.InstrBytes
		}
		pp, ok := pf.Procs[p.Name]
		if !ok {
			continue
		}
		for bid, b := range p.Blocks {
			w := pp.BlockWeight(ir.BlockID(bid))
			if ir.BlockID(bid) == p.Entry() && pp.EntryCount == 0 {
				w += hot[pi] // derived invocation count (profile lacks one)
			}
			if w == 0 {
				continue
			}
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Kind() == ir.Call && in.TargetProc != pi {
					edges = append(edges, tspEdge{from: pi, to: in.TargetProc, weight: w})
				}
			}
		}
	}
	params := tspParams{
		forwardWindow:  procForwardWindow,
		backwardWindow: procBackwardWindow,
		fallWeight:     extTSPFallWeight,
		jumpWeight:     procJumpWeight,
		maxSplit:       extTSPMaxSplit,
		orderBySlot:    true,
	}
	order := extTSPOrder(sizes, edges, prog.EntryProc, params)
	return applyProcOrder(prog, order)
}
